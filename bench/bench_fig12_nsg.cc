// Fig 12 reproduction: SONG generalizes to other graph indexes. Build an
// NSG index (MRNG edge selection + navigating node) over SIFT, then compare
// SONG searching that NSG index (simulated GPU) against NSG's own CPU
// search (single thread, the reference Algorithm-1 implementation starting
// from the navigating node). Paper: 30-37x speedup at recall > 0.8.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/recall.h"
#include "core/timer.h"
#include "graph/graph_search.h"
#include "graph/nsg_builder.h"

using song::bench::BenchContext;
using song::bench::BenchEnv;
using song::bench::Curve;
using song::bench::CurvePoint;
using song::bench::DefaultQueueSizes;
using song::bench::PrintCurve;
using song::bench::PrintHeader;

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  BenchContext ctx("sift", env);
  constexpr size_t kTop = 10;
  const song::Workload& w = ctx.workload();

  song::NsgBuildOptions nsg_opts;
  nsg_opts.degree = 16;
  nsg_opts.num_threads = env.threads;
  std::printf("building NSG index over %zu points...\n", w.data.num());
  const song::NsgIndex nsg = song::NsgBuilder::Build(w.data, w.metric,
                                                     nsg_opts);
  std::printf("navigating node: %u\n", nsg.navigating_node);

  PrintHeader("Fig 12: SONG on an NSG index, sift top-10");

  // SONG (simulated GPU) over the NSG graph, entry = navigating node.
  song::SongSearcher searcher(&w.data, &nsg.graph, w.metric,
                              nsg.navigating_node);
  Curve song_curve;
  song_curve.label = "SONG-NSG";
  for (const size_t qs : DefaultQueueSizes(kTop)) {
    song::SongSearchOptions options =
        song::SongSearchOptions::HashTableSelDel();
    options.queue_size = qs;
    const song::SimulatedRun run = SimulateBatch(
        searcher, w.queries, kTop, options, env.gpu, env.threads);
    CurvePoint pt;
    pt.param = qs;
    pt.recall = song::MeanRecallAtK(run.batch.Ids(), w.ground_truth, kTop);
    pt.qps = run.SimQps();
    pt.cpu_qps = run.batch.Qps();
    song_curve.points.push_back(pt);
  }
  PrintCurve(song_curve, "queue");

  // NSG's own CPU search (single thread).
  Curve nsg_curve;
  nsg_curve.label = "NSG";
  song::VisitedBuffer visited;
  for (const size_t ef : DefaultQueueSizes(kTop)) {
    std::vector<std::vector<song::idx_t>> ids(w.queries.num());
    song::Timer timer;
    for (size_t q = 0; q < w.queries.num(); ++q) {
      const auto found = GraphSearch(
          w.data, w.metric, nsg.graph, nsg.navigating_node,
          w.queries.Row(static_cast<song::idx_t>(q)), ef, kTop, &visited);
      for (const song::Neighbor& n : found) ids[q].push_back(n.id);
    }
    const double seconds = timer.ElapsedSeconds();
    CurvePoint pt;
    pt.param = ef;
    pt.recall = song::MeanRecallAtK(ids, w.ground_truth, kTop);
    pt.qps = static_cast<double>(w.queries.num()) / seconds;
    pt.cpu_qps = pt.qps;
    nsg_curve.points.push_back(pt);
  }
  PrintCurve(nsg_curve, "ef");

  for (const double r : {0.8, 0.9, 0.95}) {
    const double s = song::bench::QpsAtRecall(song_curve, r);
    const double n = song::bench::QpsAtRecall(nsg_curve, r);
    if (s > 0 && n > 0) {
      std::printf("speedup at recall %.2f: %.1fx\n", r, s / n);
    }
  }
  return 0;
}
