// Table II reproduction: SONG's speedup over Faiss-IVFPQ at fixed recall
// targets (0.5 .. 0.95) for top-10. "N/A" marks recalls the quantization
// baseline cannot reach — the paper reports the same effect on GloVe200,
// NYTimes and GIST.
//
// Two views are printed:
//  * at repro scale (8k-12k points): IVF lists hold only ~30 codes, so
//    scanning more of them is nearly free and Faiss is competitive wherever
//    it can reach the recall at all — the same low-recall competitiveness
//    Fig 5 shows;
//  * projected to the paper's dataset sizes: IVF scan work grows linearly
//    with n at a fixed scan fraction (recall-vs-fraction is roughly
//    scale-invariant for IVF), while graph-search work grows ~log n. The
//    Faiss counters are scaled by (paper_n / repro_n) at the measured scan
//    fraction and SONG's by ln(paper_n)/ln(repro_n); this is the regime the
//    paper's 4.8-20.2x numbers live in.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "baselines/flat_index.h"
#include "core/recall.h"

using song::bench::BenchContext;
using song::bench::BenchEnv;
using song::bench::Curve;
using song::bench::CurvePoint;
using song::bench::DefaultNprobes;
using song::bench::DefaultQueueSizes;
using song::bench::PrintHeader;
using song::bench::QpsAtRecall;

namespace {

struct PaperScale {
  const char* preset;
  size_t paper_n;
};

constexpr PaperScale kPaperScale[] = {
    {"sift", 1000000},
    {"glove200", 1183514},
    {"nytimes", 289761},
    {"gist", 1000000},
    {"uq_v", 3295525},
};

// Re-prices a measured SONG sweep with counters scaled by `factor`
// (log-growth projection of graph-search work).
song::SearchStats ScaleSongStats(const song::SearchStats& s, double f) {
  song::SearchStats out = s;
  auto mul = [f](size_t& v) {
    v = static_cast<size_t>(static_cast<double>(v) * f);
  };
  mul(out.iterations);
  mul(out.vertices_expanded);
  mul(out.graph_rows_loaded);
  mul(out.graph_bytes_loaded);
  mul(out.q_pops);
  mul(out.distance_computations);
  mul(out.data_bytes_loaded);
  mul(out.q_pushes);
  mul(out.q_evictions);
  mul(out.topk_pushes);
  mul(out.topk_evictions);
  mul(out.visited_tests);
  mul(out.visited_insertions);
  mul(out.visited_deletions);
  return out;
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  const std::vector<double> targets = {0.5, 0.6, 0.7, 0.8, 0.9, 0.95};
  constexpr size_t kTop = 10;

  struct Row {
    std::string preset;
    std::vector<double> local;      // speedup at repro scale (or <=0 = N/A)
    std::vector<double> projected;  // speedup at paper scale
  };
  std::vector<Row> rows;

  for (const PaperScale& scale : kPaperScale) {
    BenchContext ctx(scale.preset, env);
    const song::Workload& w = ctx.workload();
    const double n = static_cast<double>(w.data.num());
    const double nq = static_cast<double>(w.queries.num());
    const double n_ratio = static_cast<double>(scale.paper_n) / n;
    const double log_ratio =
        std::log(static_cast<double>(scale.paper_n)) / std::log(n);

    // SONG sweep: keep per-point stats to re-price at paper scale.
    song::SongSearcher searcher(&w.data, &ctx.graph(), w.metric);
    Curve song_local, song_paper;
    for (const size_t qs : DefaultQueueSizes(kTop)) {
      song::SongSearchOptions options =
          song::SongSearchOptions::HashTableSelDel();
      options.queue_size = qs;
      const song::SimulatedRun run = SimulateBatch(
          searcher, w.queries, kTop, options, env.gpu, env.threads);
      CurvePoint pt;
      pt.param = qs;
      pt.recall = song::MeanRecallAtK(run.batch.Ids(), w.ground_truth, kTop);
      pt.qps = run.SimQps();
      song_local.points.push_back(pt);

      song::WorkloadShape shape;
      shape.num_queries = w.queries.num();
      shape.dim = w.data.dim();
      shape.point_bytes = shape.dim * sizeof(float);
      shape.k = kTop;
      shape.queue_size = qs;
      shape.degree = ctx.graph().degree();
      const song::CostModel model(env.gpu);
      CurvePoint pp = pt;
      pp.qps = model.Estimate(ScaleSongStats(run.batch.stats, log_ratio),
                              shape)
                   .Qps(w.queries.num());
      song_paper.points.push_back(pp);
    }

    // Faiss sweep with both pricings.
    Curve faiss_local, faiss_paper;
    const song::IvfPqIndex& ivfpq = ctx.ivfpq();
    for (const size_t nprobe : DefaultNprobes(ivfpq.nlist())) {
      song::IvfPqSearchStats stats;
      const auto results = ivfpq.BatchSearch(w.queries, kTop, nprobe,
                                             env.threads, &stats);
      CurvePoint pt;
      pt.param = nprobe;
      pt.recall = song::MeanRecallAtK(song::FlatIndex::Ids(results),
                                      w.ground_truth, kTop);
      pt.qps = EstimateFaissGpu(stats, env.gpu, w.data.dim(), ivfpq.pq_m(),
                                kTop)
                   .Qps(w.queries.num());
      faiss_local.points.push_back(pt);

      // Paper-scale projection: same scan fraction over paper_n points,
      // nlist scaled with 4*sqrt(n) (so table-building grows too).
      song::IvfPqSearchStats scaled = stats;
      scaled.codes_scanned = static_cast<size_t>(
          static_cast<double>(stats.codes_scanned) * n_ratio);
      const double nlist_ratio =
          std::sqrt(static_cast<double>(scale.paper_n) / n);
      scaled.coarse_distances = static_cast<size_t>(
          static_cast<double>(stats.coarse_distances) * nlist_ratio);
      scaled.lists_probed = static_cast<size_t>(
          static_cast<double>(stats.lists_probed) * nlist_ratio);
      scaled.table_entries = static_cast<size_t>(
          static_cast<double>(stats.table_entries) * nlist_ratio);
      CurvePoint pp = pt;
      pp.qps = EstimateFaissGpu(scaled, env.gpu, w.data.dim(), ivfpq.pq_m(),
                                kTop)
                   .Qps(w.queries.num());
      faiss_paper.points.push_back(pp);
    }
    (void)nq;

    Row row;
    row.preset = scale.preset;
    for (const double t : targets) {
      const double sl = QpsAtRecall(song_local, t);
      const double fl = QpsAtRecall(faiss_local, t);
      row.local.push_back(sl > 0 && fl > 0 ? sl / fl : -1.0);
      const double sp = QpsAtRecall(song_paper, t);
      const double fp = QpsAtRecall(faiss_paper, t);
      row.projected.push_back(sp > 0 && fp > 0 ? sp / fp : -1.0);
    }
    rows.push_back(std::move(row));
  }

  auto print_table = [&](const char* title, bool projected) {
    PrintHeader(title);
    std::printf("%-10s", "dataset");
    for (const double t : targets) std::printf("%8.2f", t);
    std::printf("\n");
    for (const Row& row : rows) {
      std::printf("%-10s", row.preset.c_str());
      const auto& vals = projected ? row.projected : row.local;
      for (const double v : vals) {
        if (v <= 0.0) {
          std::printf("%8s", "N/A");
        } else {
          std::printf("%8.1f", v);
        }
      }
      std::printf("\n");
    }
  };

  print_table("Table II (at repro scale): speedup over Faiss, top-10",
              false);
  std::printf(
      "At 8k-12k points IVF lists hold ~30 codes, so Faiss is competitive\n"
      "wherever its quantization ceiling allows (cf. Fig 5 low recall).\n");
  print_table(
      "Table II (projected to paper dataset sizes): speedup over Faiss",
      true);
  std::printf(
      "\nPaper: 4.8-20.2x with N/A where Faiss cannot reach the recall\n"
      "(GloVe200 >0.6, NYTimes >0.5, GIST >0.7). The projection scales the\n"
      "measured scan fraction to the paper's n (IVF work ~ linear in n,\n"
      "graph work ~ log n).\n");
  return 0;
}
