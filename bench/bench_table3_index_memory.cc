// Table III reproduction: index memory size — SONG's degree-16 fixed-degree
// graph vs the Faiss-IVFPQ inverted index, per dataset. The paper's point:
// the graph index is a few times larger but comfortably fits GPU memory.
//
// At this repo's 8k-12k-point scale the IVFPQ's fixed overheads (coarse
// centroids + PQ codebooks) dominate its size, so the honest comparison is
// bytes per point, plus a projection of both indexes to the paper's dataset
// sizes where the per-point cost dominates.

#include <cstdio>
#include <string>

#include "bench_common.h"

using song::bench::BenchContext;
using song::bench::BenchEnv;
using song::bench::PrintHeader;

namespace {

struct PaperScale {
  const char* preset;
  size_t paper_n;
};

constexpr PaperScale kPaperScale[] = {
    {"sift", 1000000},
    {"glove200", 1183514},
    {"nytimes", 289761},
    {"gist", 1000000},
    {"uq_v", 3295525},
};

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  PrintHeader("Table III: index memory size");
  std::printf("%-10s | %11s %11s | %9s %9s | %13s %13s %6s\n", "dataset",
              "SONG", "Faiss", "SONG B/pt", "Faiss B/pt", "SONG@paper-n",
              "Faiss@paper-n", "ratio");
  for (const PaperScale& row : kPaperScale) {
    BenchContext ctx(row.preset, env);
    const double n = static_cast<double>(ctx.workload().data.num());
    const double song_bytes = static_cast<double>(ctx.graph().MemoryBytes());
    const double faiss_bytes =
        static_cast<double>(ctx.ivfpq().MemoryBytes());
    const double song_per_pt = song_bytes / n;
    // Per-point cost excludes the fixed centroid/codebook overhead, which
    // is what survives at paper scale.
    const double faiss_per_pt =
        static_cast<double>(ctx.ivfpq().pq_m() + sizeof(song::idx_t));
    const double mb = 1024.0 * 1024.0;
    const double song_paper = song_per_pt * row.paper_n / mb;
    const double faiss_paper = faiss_per_pt * row.paper_n / mb;
    std::printf("%-10s | %8.2f MB %8.2f MB | %9.1f %9.1f | %10.1f MB "
                "%10.1f MB %6.2f\n",
                row.preset, song_bytes / mb, faiss_bytes / mb, song_per_pt,
                faiss_per_pt, song_paper, faiss_paper,
                song_paper / faiss_paper);
  }
  std::printf(
      "\nPaper (full scale): SONG 36-403 MB vs Faiss 10-106 MB (~3-4x).\n"
      "This repro's PQ spends 32 B/code (vs the paper's ~8-16) to stay\n"
      "competitive on synthetic Gaussian data, so the projected ratio is\n"
      "~1.8x; with the paper's 8-16-byte codes the per-point arithmetic\n"
      "(64 B graph vs 12-20 B codes) gives exactly the paper's 3-5x.\n");
  return 0;
}
