// Micro ablation for §IV-A: fixed-degree rows vs CSR adjacency during graph
// traversal. The fixed-degree layout locates a row with one multiply and one
// (coalesced) load; CSR needs the offset pair first — an extra dependent
// memory access per expansion. On the CPU the effect shows up as pointer
// chasing + worse prefetch; on the GPU (modeled) it is a full extra global
// transaction.

#include <benchmark/benchmark.h>

#include <random>

#include "data/synthetic.h"
#include "graph/csr_graph.h"
#include "graph/fixed_degree_graph.h"
#include "graph/nsw_builder.h"

namespace song {
namespace {

struct StorageFixture {
  FixedDegreeGraph fixed;
  CsrGraph csr;
  static StorageFixture& Get() {
    static StorageFixture* f = [] {
      auto* fx = new StorageFixture();
      SyntheticSpec spec;
      spec.dim = 32;
      spec.num_points = 20000;
      spec.num_queries = 1;
      spec.num_clusters = 50;
      spec.seed = 5050;
      const SyntheticData gen = GenerateSynthetic(spec);
      fx->fixed = NswBuilder::Build(gen.points, Metric::kL2, {});
      fx->csr = CsrGraph::FromFixedDegree(fx->fixed);
      return fx;
    }();
    return *f;
  }
};

// Random-walk traversal: the access pattern of graph search without the
// distance computations, isolating the storage layer.
void BM_FixedDegreeWalk(benchmark::State& state) {
  auto& fx = StorageFixture::Get();
  std::mt19937 rng(1);
  idx_t v = 0;
  size_t sum = 0;
  for (auto _ : state) {
    const idx_t* row = fx.fixed.Row(v);
    size_t count = 0;
    while (count < fx.fixed.degree() && row[count] != kInvalidIdx) {
      sum += row[count];
      ++count;
    }
    v = count > 0 ? row[rng() % count] : static_cast<idx_t>(rng() % 20000);
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FixedDegreeWalk);

void BM_CsrWalk(benchmark::State& state) {
  auto& fx = StorageFixture::Get();
  std::mt19937 rng(1);
  idx_t v = 0;
  size_t sum = 0;
  for (auto _ : state) {
    size_t count = 0;
    const idx_t* row = fx.csr.Neighbors(v, &count);
    for (size_t i = 0; i < count; ++i) sum += row[i];
    v = count > 0 ? row[rng() % count] : static_cast<idx_t>(rng() % 20000);
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CsrWalk);

// GPU-side accounting comparison (printed as counters, not wall time).
void BM_ModeledTransactionsPerExpansion(benchmark::State& state) {
  auto& fx = StorageFixture::Get();
  size_t fixed_tx = 0, csr_tx = 0, expansions = 0;
  for (auto _ : state) {
    for (idx_t v = 0; v < 1000; ++v) {
      // Fixed degree: ceil(degree*4/128) transactions, no indirection.
      fixed_tx += (fx.fixed.degree() * sizeof(idx_t) + 127) / 128;
      csr_tx += CsrGraph::ExpansionTransactions(fx.csr.NeighborCount(v));
      ++expansions;
    }
  }
  state.counters["fixed_tx_per_expand"] =
      static_cast<double>(fixed_tx) / static_cast<double>(expansions);
  state.counters["csr_tx_per_expand"] =
      static_cast<double>(csr_tx) / static_cast<double>(expansions);
}
BENCHMARK(BM_ModeledTransactionsPerExpansion);

}  // namespace
}  // namespace song

BENCHMARK_MAIN();
