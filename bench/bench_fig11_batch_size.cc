// Fig 11 reproduction: query-batch-size impact on SIFT top-100. Small
// batches underutilize the GPU (too few warps to fill the SMs, and the
// fixed transfer latency is not amortized); QPS rises with batch size and
// saturates around 100k queries — 1m adds nothing.
//
// Methodology: the native run executes the real query set; for larger
// batches the query set is tiled (counters scale linearly — each tile is
// the same work) and the cost model prices the scaled batch.

#include <cstdio>

#include "bench_common.h"
#include "core/recall.h"

using song::bench::BenchContext;
using song::bench::BenchEnv;
using song::bench::PrintHeader;

namespace {

song::SearchStats ScaleStats(const song::SearchStats& base, double factor) {
  song::SearchStats s = base;
  auto scale = [factor](size_t& v) {
    v = static_cast<size_t>(static_cast<double>(v) * factor);
  };
  scale(s.iterations);
  scale(s.vertices_expanded);
  scale(s.graph_rows_loaded);
  scale(s.graph_bytes_loaded);
  scale(s.q_pops);
  scale(s.distance_computations);
  scale(s.data_bytes_loaded);
  scale(s.q_pushes);
  scale(s.q_evictions);
  scale(s.q_rejections);
  scale(s.topk_pushes);
  scale(s.topk_evictions);
  scale(s.visited_tests);
  scale(s.visited_insertions);
  scale(s.visited_deletions);
  // capacity fields are per-query maxima: unchanged.
  return s;
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  BenchContext ctx("sift", env);
  constexpr size_t kTop = 100;

  song::SongSearcher searcher(&ctx.workload().data, &ctx.graph(),
                              ctx.workload().metric);
  PrintHeader("Fig 11: batch size impact, sift top-100");
  std::printf("%10s %10s %14s %12s %12s\n", "batch", "recall", "QPS",
              "kernel(ms)", "xfer(ms)");

  for (const size_t queue : {size_t{100}, size_t{256}}) {
    song::SongSearchOptions options =
        song::SongSearchOptions::HashTableSelDel();
    options.queue_size = queue;
    const song::SimulatedRun base = SimulateBatch(
        searcher, ctx.workload().queries, kTop, options, env.gpu,
        env.threads);
    const double recall = song::MeanRecallAtK(
        base.batch.Ids(), ctx.workload().ground_truth, kTop);
    std::printf("-- queue=%zu (recall %.3f) --\n", queue, recall);
    const size_t base_nq = ctx.workload().queries.num();
    for (const size_t batch :
         {size_t{100}, size_t{1000}, size_t{10000}, size_t{100000},
          size_t{1000000}}) {
      const double factor =
          static_cast<double>(batch) / static_cast<double>(base_nq);
      const song::SearchStats scaled = ScaleStats(base.batch.stats, factor);
      song::WorkloadShape shape;
      shape.num_queries = batch;
      shape.dim = ctx.workload().data.dim();
      shape.point_bytes = shape.dim * sizeof(float);
      shape.k = kTop;
      shape.queue_size = queue;
      shape.degree = ctx.graph().degree();
      shape.saturated = false;  // model THIS batch size, waves and all
      const song::CostModel model(env.gpu);
      const song::KernelBreakdown b = model.Estimate(scaled, shape);
      std::printf("%10zu %10.3f %14.0f %12.3f %12.3f\n", batch, recall,
                  b.Qps(batch), b.kernel_seconds * 1e3,
                  (b.htod_seconds + b.dtoh_seconds) * 1e3);
    }
  }
  return 0;
}
