// Table IV reproduction: hashed dataset sizes for MNIST8m. Shows the
// scaled preset this repo materializes AND the paper-scale arithmetic
// (8,090,000 points) the table quotes — both follow bits/8 bytes per point.
// PQ rows ride along (m bytes/point + the m*256*sub_dim-float codebook):
// the compressed-traversal alternative keeps the original floats reachable
// for rerank, so its device budget is codes + codebook, not codes alone.

#include <cstdio>

#include "bench_common.h"
#include "core/bitvector.h"
#include "data/synthetic.h"

int main() {
  const song::bench::BenchEnv env = song::bench::BenchEnv::FromEnv();
  const double scale = song::ResolveScale(env.workload_options);
  const song::SyntheticSpec spec = song::PresetSpec("mnist", scale);
  const song::SyntheticData gen = song::GenerateSynthetic(spec);
  const size_t n_local = gen.points.num();
  constexpr size_t kPaperN = 8090000;

  song::bench::PrintHeader("Table IV: hashed dataset size of MNIST8m");
  std::printf("%10s | %14s | %14s\n", "hash bits", "this repro",
              "paper scale");
  for (const size_t bits : {32, 64, 128, 256, 512}) {
    const song::BinaryCodes local(n_local, bits);
    const double local_mb =
        static_cast<double>(local.PayloadBytes()) / (1024.0 * 1024.0);
    const double paper_mb = static_cast<double>(kPaperN) * (bits / 8.0) /
                            (1024.0 * 1024.0);
    std::printf("%10zu | %11.2f MB | %11.0f MB\n", bits, local_mb, paper_mb);
  }
  for (const size_t m : {8, 16, 32, 64}) {
    // PQ device bytes: m code bytes per point plus the shared codebook
    // (m subquantizers * 256 centroids * dim/m floats = dim * 256 floats).
    const double codebook_mb =
        static_cast<double>(spec.dim) * 256.0 * 4.0 / (1024.0 * 1024.0);
    const double local_mb =
        static_cast<double>(n_local) * static_cast<double>(m) /
            (1024.0 * 1024.0) +
        codebook_mb;
    const double paper_mb =
        static_cast<double>(kPaperN) * static_cast<double>(m) /
            (1024.0 * 1024.0) +
        codebook_mb;
    char label[16];
    std::snprintf(label, sizeof(label), "PQ-%zu", m);
    std::printf("%10s | %11.2f MB | %11.0f MB\n", label, local_mb, paper_mb);
  }
  const double local_orig =
      static_cast<double>(gen.points.PayloadBytes()) / (1024.0 * 1024.0);
  const double paper_orig = static_cast<double>(kPaperN) * spec.dim * 4.0 /
                            (1024.0 * 1024.0);
  std::printf("%10s | %11.2f MB | %11.0f MB\n", "original", local_orig,
              paper_orig);
  std::printf(
      "\nPaper: 31/62/124/247/494 MB vs 2.4e4 MB original — 128-bit codes\n"
      "are >190x smaller. Ratio here: %.0fx.\n",
      local_orig / (static_cast<double>(n_local) * 16.0 / (1024.0 * 1024.0)));
  return 0;
}
