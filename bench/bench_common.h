// Copyright 2026 The SONG-Repro Authors.
//
// Shared harness for the figure/table reproduction benches: workload + index
// acquisition, recall/QPS sweeps for SONG, HNSW and IVFPQ, fixed-recall
// interpolation (Table II / Fig 6), and paper-style table printing.

#ifndef SONG_BENCH_BENCH_COMMON_H_
#define SONG_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/hnsw.h"
#include "baselines/ivfpq.h"
#include "data/workload.h"
#include "gpusim/faiss_model.h"
#include "gpusim/gpu_spec.h"
#include "gpusim/simulator.h"
#include "song/search_options.h"

namespace song::bench {

/// One point of a recall/throughput curve.
struct CurvePoint {
  size_t param = 0;     ///< queue size (SONG/HNSW ef) or nprobe (IVFPQ)
  double recall = 0.0;
  double qps = 0.0;     ///< headline throughput for the series
  double cpu_qps = 0.0; ///< measured CPU wall-clock throughput
  KernelBreakdown gpu;  ///< populated for SONG series
};

struct Curve {
  std::string label;
  std::vector<CurvePoint> points;
};

/// Benchmark environment (threads, GPU, cache/scale), resolved from env
/// vars: SONG_BENCH_THREADS, SONG_BENCH_SCALE, SONG_CACHE_DIR.
struct BenchEnv {
  size_t threads = 0;
  GpuSpec gpu = GpuSpec::V100();
  WorkloadOptions workload_options;

  static BenchEnv FromEnv();
};

/// Default parameter sweeps.
std::vector<size_t> DefaultQueueSizes(size_t k);
std::vector<size_t> DefaultNprobes(size_t nlist);

/// A workload plus the indexes the comparisons need (built lazily).
class BenchContext {
 public:
  BenchContext(const std::string& preset, const BenchEnv& env);

  const Workload& workload() const { return workload_; }
  const FixedDegreeGraph& graph();  ///< NSW degree-16, cached on disk
  const Hnsw& hnsw();               ///< built once per process
  const IvfPqIndex& ivfpq();        ///< built once per process
  const BenchEnv& env() const { return env_; }

  /// SONG on the simulated GPU: sweep queue sizes, report sim QPS + recall.
  Curve SweepSong(size_t k, const std::vector<size_t>& queue_sizes,
                  SongSearchOptions base = {},
                  const char* label = "SONG");

  /// Single-thread HNSW (the paper's CPU baseline), measured wall clock.
  Curve SweepHnsw(size_t k, const std::vector<size_t>& efs);

  /// IVFPQ on the simulated GPU: sweep nprobe.
  Curve SweepIvfpq(size_t k, const std::vector<size_t>& nprobes);

 private:
  BenchEnv env_;
  Workload workload_;
  bool graph_built_ = false;
  FixedDegreeGraph graph_;
  std::unique_ptr<Hnsw> hnsw_;
  std::unique_ptr<IvfPqIndex> ivfpq_;
};

/// Interpolates a curve's QPS at a recall target; returns <= 0 when the
/// curve never reaches the target (the paper's "N/A").
double QpsAtRecall(const Curve& curve, double recall_target);

/// Version stamp of the bench JSON artifact layout.
inline constexpr int kBenchJsonSchemaVersion = 1;

/// The `git describe` string baked in at configure time ("unknown" when the
/// build tree had no git metadata).
const char* BenchGitDescribe();

/// Writes `BENCH_<name>.json` into $SONG_BENCH_JSON_DIR; a no-op when the
/// env var is unset. Every artifact is stamped with `schema_version`,
/// `git_describe` and the bench GPU name, so archived results stay
/// self-identifying across revisions.
void EmitBenchJson(const std::string& bench_name,
                   const std::vector<Curve>& curves, const BenchEnv& env);

/// Pretty-printers.
void PrintHeader(const std::string& title);
void PrintCurve(const Curve& curve, const char* param_name);

}  // namespace song::bench

#endif  // SONG_BENCH_BENCH_COMMON_H_
