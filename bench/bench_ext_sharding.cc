// Extension bench (not a paper figure): multi-GPU sharding, the scalability
// path §VII sketches in one sentence. Splits SIFT across 1/2/4 simulated
// V100s and reports recall + aggregate QPS. Sharding buys CAPACITY (each
// card only holds 1/S of the data — the §VII out-of-memory story), not
// throughput: every shard is searched with the full queue budget, so total
// work grows with S while the cards run in parallel; recall holds and QPS
// pays a modest merge/duplication cost.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/recall.h"
#include "gpusim/sharded.h"

using song::bench::BenchContext;
using song::bench::BenchEnv;
using song::bench::PrintHeader;

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  BenchContext ctx("sift", env);
  const song::Workload& w = ctx.workload();
  constexpr size_t kTop = 10;

  PrintHeader("Extension: multi-GPU sharding, sift top-10 (V100s)");
  std::printf("%8s %8s | %10s %14s %16s\n", "shards", "queue", "recall",
              "QPS", "slowest kernel");
  for (const size_t shards : {1, 2, 4}) {
    song::ShardedBuildOptions build;
    build.num_shards = shards;
    build.num_threads = env.threads;
    song::ShardedSongIndex index(&w.data, w.metric, build);
    const std::vector<song::GpuSpec> gpus(shards, song::GpuSpec::V100());
    for (const size_t queue : {size_t{32}, size_t{64}, size_t{128}}) {
      song::SongSearchOptions options =
          song::SongSearchOptions::HashTableSelDel();
      options.queue_size = queue;
      const song::ShardedSearchResult result =
          index.Search(w.queries, kTop, options, env.threads);
      std::vector<std::vector<song::idx_t>> ids(result.results.size());
      for (size_t q = 0; q < result.results.size(); ++q) {
        for (const song::Neighbor& n : result.results[q]) {
          ids[q].push_back(n.id);
        }
      }
      const song::ShardedGpuEstimate est =
          index.EstimateGpu(result, gpus, w.queries.num(), kTop, options);
      std::printf("%8zu %8zu | %10.4f %14.0f %13.3f ms\n", shards, queue,
                  song::MeanRecallAtK(ids, w.ground_truth, kTop),
                  est.Qps(w.queries.num()), est.kernel_seconds * 1e3);
    }
  }
  std::printf(
      "\nSharding scales CAPACITY: each card holds 1/S of the vectors. Every\n"
      "shard is searched with the full queue budget, so recall holds while\n"
      "QPS pays a modest duplication+merge cost.\n");
  return 0;
}
