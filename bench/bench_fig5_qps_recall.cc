// Fig 5 reproduction: QPS-vs-recall of SONG (simulated V100), Faiss-IVFPQ
// (simulated V100) and single-thread HNSW (measured). The paper shows
// top-1/10/50/100 for NYTimes and top-10/100 for SIFT, GloVe200, UQ_V and
// GIST. Curves closer to the top-right are better.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

using song::bench::BenchContext;
using song::bench::BenchEnv;
using song::bench::Curve;
using song::bench::DefaultNprobes;
using song::bench::DefaultQueueSizes;
using song::bench::EmitBenchJson;
using song::bench::PrintCurve;
using song::bench::PrintHeader;

namespace {

void RunPanel(BenchContext& ctx, size_t k) {
  PrintHeader("Fig 5: " + ctx.workload().name + " top-" +
              std::to_string(k));
  song::SongSearchOptions base = song::SongSearchOptions::HashTableSelDel();
  std::vector<Curve> curves;
  curves.push_back(ctx.SweepSong(k, DefaultQueueSizes(k), base));
  curves.push_back(ctx.SweepIvfpq(k, DefaultNprobes(ctx.ivfpq().nlist())));
  curves.push_back(ctx.SweepHnsw(k, DefaultQueueSizes(k)));
  PrintCurve(curves[0], "queue");
  PrintCurve(curves[1], "nprobe");
  PrintCurve(curves[2], "ef");
  EmitBenchJson("fig5_" + ctx.workload().name + "_top" + std::to_string(k),
                curves, ctx.env());
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  {
    BenchContext nytimes("nytimes", env);
    for (const size_t k : {1, 10, 50, 100}) RunPanel(nytimes, k);
  }
  for (const char* preset : {"sift", "glove200", "uq_v", "gist"}) {
    BenchContext ctx(preset, env);
    for (const size_t k : {10, 100}) RunPanel(ctx, k);
  }
  return 0;
}
