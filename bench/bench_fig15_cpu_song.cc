// Fig 15 reproduction: the CPU implementation of SONG vs HNSW, both single
// thread, on NYTimes and UQ_V, top-10 — real wall-clock throughput, no GPU
// model involved. The paper shows the engineered SONG CPU pipeline beating
// HNSW on both datasets.

#include <string>

#include "bench_common.h"
#include "core/recall.h"
#include "song/batch_engine.h"

using song::bench::BenchContext;
using song::bench::BenchEnv;
using song::bench::Curve;
using song::bench::CurvePoint;
using song::bench::DefaultQueueSizes;
using song::bench::PrintCurve;
using song::bench::PrintHeader;

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  constexpr size_t kTop = 10;
  for (const char* preset : {"nytimes", "uq_v"}) {
    BenchContext ctx(preset, env);
    const song::Workload& w = ctx.workload();
    PrintHeader("Fig 15: SONG-cpu vs HNSW (both 1 thread), " + w.name +
                " top-10");

    song::SongSearcher searcher(&w.data, &ctx.graph(), w.metric);
    song::BatchEngine engine(&searcher, /*num_threads=*/1);
    Curve song_curve;
    song_curve.label = "SONG-cpu";
    for (const size_t qs : DefaultQueueSizes(kTop)) {
      // The CPU build: epoch-array visited, no recomputation trade-offs
      // (the GPU memory optimizations only pay off on the card).
      song::SongSearchOptions options =
          song::SongSearchOptions::CpuEngineered();
      options.queue_size = qs;
      const song::BatchResult batch = engine.Search(w.queries, kTop,
                                                    options);
      CurvePoint pt;
      pt.param = qs;
      pt.recall = song::MeanRecallAtK(batch.Ids(), w.ground_truth, kTop);
      pt.qps = batch.Qps();
      pt.cpu_qps = batch.Qps();
      song_curve.points.push_back(pt);
    }
    PrintCurve(song_curve, "queue");
    PrintCurve(ctx.SweepHnsw(kTop, DefaultQueueSizes(kTop)), "ef");
  }
  return 0;
}
