// Extension bench: device-memory planning for the paper's FULL-SCALE
// datasets (Table I sizes, not the scaled presets) on each GPU. Reproduces
// the §VII arithmetic that motivates 1-bit hashing: MNIST8m's floats
// overflow TITAN X while the degree-16 graph index stays tiny, and 32-512
// bit codes (Table IV) restore feasibility.

#include <cstdio>

#include "bench_common.h"
#include "gpusim/device_memory.h"

namespace {

struct PaperDataset {
  const char* name;
  size_t n;
  size_t dim;
};

constexpr PaperDataset kPaper[] = {
    {"NYTimes", 289761, 256},   {"SIFT", 1000000, 128},
    {"GloVe200", 1183514, 200}, {"UQ_V", 3295525, 256},
    {"GIST", 1000000, 960},     {"MNIST8m", 8090000, 784},
};

}  // namespace

int main() {
  using song::DeploymentShape;
  using song::GpuSpec;
  using song::MemoryPlan;
  using song::PlanDeployment;

  song::bench::PrintHeader(
      "Extension: device-memory plans at the paper's full scale");
  for (const GpuSpec& gpu :
       {GpuSpec::V100(), GpuSpec::P40(), GpuSpec::TitanX()}) {
    std::printf("\n-- %s (%.0f GB) --\n", gpu.name.c_str(),
                song::DeviceCapacityBytes(gpu) / (1024.0 * 1024.0 * 1024.0));
    std::printf("%-10s %10s %10s %8s %10s %8s\n", "dataset", "data GB",
                "graph MB", "fits", "hash bits", "shards");
    for (const PaperDataset& ds : kPaper) {
      DeploymentShape shape;
      shape.num_points = ds.n;
      shape.dim = ds.dim;
      const MemoryPlan plan = PlanDeployment(shape, gpu);
      std::printf("%-10s %10.2f %10.1f %8s", ds.name,
                  plan.data_bytes / (1024.0 * 1024.0 * 1024.0),
                  plan.graph_bytes / (1024.0 * 1024.0),
                  plan.fits ? "yes" : "NO");
      if (plan.fits) {
        std::printf(" %10s %8s\n", "-", "-");
      } else {
        std::printf(" %10zu %8zu\n", plan.hash_bits_needed,
                    plan.shards_needed);
      }
    }
  }
  std::printf(
      "\nPaper §VII/§VIII-H: MNIST8m (24 GB) cannot fit TITAN X (12 GB);\n"
      "hashed codes or sharding restore feasibility while the degree-16\n"
      "graph index is never the problem.\n");
  return 0;
}
