// Table I reproduction: dataset specifications. Prints the paper's published
// numbers next to the scaled synthetic presets this repo actually runs.

#include <cstdio>

#include "bench_common.h"
#include "data/synthetic.h"

namespace {

struct PaperRow {
  const char* name;
  size_t dim;
  size_t num;
  size_t queries;
  const char* size;
};

constexpr PaperRow kPaperRows[] = {
    {"NYTimes", 256, 289761, 10000, "301 MB"},
    {"SIFT", 128, 1000000, 10000, "501 MB"},
    {"GloVe200", 200, 1183514, 10000, "918 MB"},
    {"UQ_V", 256, 3295525, 10000, "3.2 GB"},
    {"GIST", 960, 1000000, 10000, "3.6 GB"},
    {"MNIST8m", 784, 8090000, 10000, "24 GB"},
};

}  // namespace

int main() {
  using song::bench::BenchEnv;
  const BenchEnv env = BenchEnv::FromEnv();
  const double scale = song::ResolveScale(env.workload_options);

  song::bench::PrintHeader("Table I: dataset specifications");
  std::printf("%-10s %5s | %-22s | %-28s\n", "", "", "paper", "this repro");
  std::printf("%-10s %5s | %10s %10s | %10s %10s %7s\n", "dataset", "dim",
              "#data", "#query", "#data", "#query", "MB");
  const auto names = song::AllPresetNames();
  for (size_t i = 0; i < names.size(); ++i) {
    const song::SyntheticSpec spec = song::PresetSpec(names[i], scale);
    const song::SyntheticData gen = song::GenerateSynthetic(spec);
    const double mb =
        static_cast<double>(gen.points.PayloadBytes()) / (1024.0 * 1024.0);
    std::printf("%-10s %5zu | %10zu %10zu | %10zu %10zu %7.1f\n",
                kPaperRows[i].name, spec.dim, kPaperRows[i].num,
                kPaperRows[i].queries, gen.points.num(), gen.queries.num(),
                mb);
  }
  std::printf(
      "\nPresets keep the paper's dimensionality and distribution character\n"
      "(NYTimes/GloVe200 skewed+clustered, SIFT/UQ_V friendly, GIST high-dim,\n"
      "MNIST8m near-duplicate families); point counts are scaled by\n"
      "SONG_BENCH_SCALE (currently %.2f) for CI-time runs.\n",
      scale);
  return 0;
}
