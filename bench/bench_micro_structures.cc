// Micro ablations (google-benchmark) for the data-structure choices
// DESIGN.md calls out:
//  * bounded symmetric min-max heap vs std::priority_queue rebuild — the
//    §IV-C design choice;
//  * open-addressing hash set vs Bloom vs Cuckoo filter ops — the §IV-B/E
//    alternatives;
//  * probe cost as the open-addressing table fills.

#include <benchmark/benchmark.h>

#include <queue>
#include <random>
#include <vector>

#include "song/bloom_filter.h"
#include "song/bounded_heap.h"
#include "song/cuckoo_filter.h"
#include "song/open_addressing_set.h"

namespace song {
namespace {

std::vector<Neighbor> MakeStream(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(0.0f, 1.0f);
  std::vector<Neighbor> stream;
  stream.reserve(n);
  for (idx_t i = 0; i < n; ++i) stream.emplace_back(dist(rng), i);
  return stream;
}

// Bounded DEPQ via symmetric min-max heap (what SONG uses).
void BM_SmmhBoundedStream(benchmark::State& state) {
  const size_t capacity = static_cast<size_t>(state.range(0));
  const auto stream = MakeStream(4096, 42);
  SymmetricMinMaxHeap heap(capacity);
  for (auto _ : state) {
    heap.Clear();
    for (const Neighbor& n : stream) {
      heap.PushBounded(n);
      if (heap.size() > capacity / 2 && (n.id & 7) == 0) {
        benchmark::DoNotOptimize(heap.PopMin());
      }
    }
    benchmark::DoNotOptimize(heap.size());
  }
  state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_SmmhBoundedStream)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

// Naive alternative: unbounded binary heap + lazy truncation (what a direct
// CPU->GPU port would do; unbounded growth is the §IV-C motivation).
void BM_StdPriorityQueueStream(benchmark::State& state) {
  const size_t capacity = static_cast<size_t>(state.range(0));
  const auto stream = MakeStream(4096, 42);
  for (auto _ : state) {
    std::priority_queue<Neighbor, std::vector<Neighbor>, std::greater<>> q;
    size_t popped = 0;
    for (const Neighbor& n : stream) {
      q.push(n);
      if (q.size() > capacity / 2 && (n.id & 7) == 0) {
        benchmark::DoNotOptimize(q.top());
        q.pop();
        ++popped;
      }
    }
    benchmark::DoNotOptimize(popped + q.size());
  }
  state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_StdPriorityQueueStream)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_OpenAddressingInsertContains(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  OpenAddressingSet set(n);
  for (auto _ : state) {
    set.Clear();
    for (idx_t i = 0; i < n; ++i) set.Insert(i * 2654435761u);
    size_t hits = 0;
    for (idx_t i = 0; i < n; ++i) hits += set.Contains(i * 2654435761u);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_OpenAddressingInsertContains)->Arg(128)->Arg(1024)->Arg(8192);

void BM_BloomInsertContains(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  BloomFilter bloom(10 * n);
  for (auto _ : state) {
    bloom.Clear();
    for (idx_t i = 0; i < n; ++i) bloom.Insert(i * 2654435761u);
    size_t hits = 0;
    for (idx_t i = 0; i < n; ++i) hits += bloom.Contains(i * 2654435761u);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_BloomInsertContains)->Arg(128)->Arg(1024)->Arg(8192);

void BM_CuckooInsertEraseCycle(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  CuckooFilter filter(n);
  for (auto _ : state) {
    filter.Clear();
    for (idx_t i = 0; i < n; ++i) filter.Insert(i * 2654435761u);
    for (idx_t i = 0; i < n; i += 2) filter.Erase(i * 2654435761u);
    size_t hits = 0;
    for (idx_t i = 0; i < n; ++i) hits += filter.Contains(i * 2654435761u);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_CuckooInsertEraseCycle)->Arg(128)->Arg(1024)->Arg(8192);

}  // namespace
}  // namespace song

BENCHMARK_MAIN();
