// Micro ablations (google-benchmark) for the data-structure choices
// DESIGN.md calls out:
//  * bounded symmetric min-max heap vs std::priority_queue rebuild — the
//    §IV-C design choice;
//  * open-addressing hash set vs Bloom vs Cuckoo filter ops — the §IV-B/E
//    alternatives;
//  * probe cost as the open-addressing table fills.
//
// Before the google-benchmark suite runs, main() executes a structure sweep
// (best-of-reps, mirroring bench_micro_distance.cc) and, with
// SONG_BENCH_JSON_DIR set, writes BENCH_micro_structures.json —
// bench/baselines/ holds the committed reference tools/bench_gate.py
// compares against. SONG_BENCH_SMOKE=1 shrinks the rep count for CI.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <queue>
#include <random>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/simd.h"
#include "obs/exporters.h"
#include "song/bloom_filter.h"
#include "song/bounded_heap.h"
#include "song/cuckoo_filter.h"
#include "song/open_addressing_set.h"

namespace song {
namespace {

std::vector<Neighbor> MakeStream(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(0.0f, 1.0f);
  std::vector<Neighbor> stream;
  stream.reserve(n);
  for (idx_t i = 0; i < n; ++i) stream.emplace_back(dist(rng), i);
  return stream;
}

// Bounded DEPQ via symmetric min-max heap (what SONG uses).
void BM_SmmhBoundedStream(benchmark::State& state) {
  const size_t capacity = static_cast<size_t>(state.range(0));
  const auto stream = MakeStream(4096, 42);
  SymmetricMinMaxHeap heap(capacity);
  for (auto _ : state) {
    heap.Clear();
    for (const Neighbor& n : stream) {
      heap.PushBounded(n);
      if (heap.size() > capacity / 2 && (n.id & 7) == 0) {
        benchmark::DoNotOptimize(heap.PopMin());
      }
    }
    benchmark::DoNotOptimize(heap.size());
  }
  state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_SmmhBoundedStream)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

// Naive alternative: unbounded binary heap + lazy truncation (what a direct
// CPU->GPU port would do; unbounded growth is the §IV-C motivation).
void BM_StdPriorityQueueStream(benchmark::State& state) {
  const size_t capacity = static_cast<size_t>(state.range(0));
  const auto stream = MakeStream(4096, 42);
  for (auto _ : state) {
    std::priority_queue<Neighbor, std::vector<Neighbor>, std::greater<>> q;
    size_t popped = 0;
    for (const Neighbor& n : stream) {
      q.push(n);
      if (q.size() > capacity / 2 && (n.id & 7) == 0) {
        benchmark::DoNotOptimize(q.top());
        q.pop();
        ++popped;
      }
    }
    benchmark::DoNotOptimize(popped + q.size());
  }
  state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_StdPriorityQueueStream)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_OpenAddressingInsertContains(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  OpenAddressingSet set(n);
  for (auto _ : state) {
    set.Clear();
    for (idx_t i = 0; i < n; ++i) set.Insert(i * 2654435761u);
    size_t hits = 0;
    for (idx_t i = 0; i < n; ++i) hits += set.Contains(i * 2654435761u);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_OpenAddressingInsertContains)->Arg(128)->Arg(1024)->Arg(8192);

void BM_BloomInsertContains(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  BloomFilter bloom(10 * n);
  for (auto _ : state) {
    bloom.Clear();
    for (idx_t i = 0; i < n; ++i) bloom.Insert(i * 2654435761u);
    size_t hits = 0;
    for (idx_t i = 0; i < n; ++i) hits += bloom.Contains(i * 2654435761u);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_BloomInsertContains)->Arg(128)->Arg(1024)->Arg(8192);

void BM_CuckooInsertEraseCycle(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  CuckooFilter filter(n);
  for (auto _ : state) {
    filter.Clear();
    for (idx_t i = 0; i < n; ++i) filter.Insert(i * 2654435761u);
    for (idx_t i = 0; i < n; i += 2) filter.Erase(i * 2654435761u);
    size_t hits = 0;
    for (idx_t i = 0; i < n; ++i) hits += filter.Contains(i * 2654435761u);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_CuckooInsertEraseCycle)->Arg(128)->Arg(1024)->Arg(8192);

// ---------------------------------------------------------------------------
// Structure sweep (runs once from main, before google-benchmark). Each cell
// times the same op mix as its google-benchmark sibling above, best-of-reps
// with a calibrated pass count so scheduler jitter cannot dominate.
// ---------------------------------------------------------------------------

struct StructureResult {
  const char* structure = "";
  size_t size = 0;
  double ns_per_op = 0.0;
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-`reps` wall time of `one_pass`, amortized over enough passes to
/// fill ~1 ms, divided by `ops` per pass -> ns/op.
template <typename Fn>
double TimeCell(size_t reps, size_t ops, const Fn& one_pass) {
  const double warm_start = Now();
  one_pass();  // warms caches and calibrates the pass count
  const double warm = std::max(Now() - warm_start, 1e-9);
  const size_t passes = std::max<size_t>(1, static_cast<size_t>(1e-3 / warm));
  double best = 1e30;
  for (size_t r = 0; r < reps; ++r) {
    const double start = Now();
    for (size_t p = 0; p < passes; ++p) one_pass();
    best = std::min(best, (Now() - start) / static_cast<double>(passes));
  }
  return best * 1e9 / static_cast<double>(ops);
}

std::string StructuresToJson(const std::vector<StructureResult>& results) {
  std::string out = "{\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"schema_version\": %d,\n"
                "  \"bench\": \"micro_structures\",\n",
                bench::kBenchJsonSchemaVersion);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  \"git_describe\": \"%s\",\n",
                bench::BenchGitDescribe());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"cpu_tier\": \"%s\",\n  \"active_tier\": \"%s\",\n",
                SimdTierName(CpuSimdTier()), SimdTierName(ActiveSimdTier()));
  out += buf;
  out += "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const StructureResult& r = results[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"structure\": \"%s\", \"size\": %zu, "
                  "\"ns_per_op\": %.3f}%s\n",
                  r.structure, r.size, r.ns_per_op,
                  i + 1 < results.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

void RunStructureSweep() {
  const bool smoke = std::getenv("SONG_BENCH_SMOKE") != nullptr;
  const size_t reps = smoke ? 3 : 31;
  std::vector<StructureResult> results;

  std::printf("structure sweep (best of %zu)\n", reps);
  std::printf("%-22s %8s %12s\n", "structure", "size", "ns/op");
  const auto emit = [&](const char* structure, size_t size, double ns) {
    results.push_back({structure, size, ns});
    std::printf("%-22s %8zu %12.2f\n", structure, size, ns);
  };

  const auto stream = MakeStream(4096, 42);
  for (const size_t capacity : {size_t{16}, size_t{64}, size_t{256},
                                size_t{1024}}) {
    SymmetricMinMaxHeap heap(capacity);
    emit("smmh_bounded_stream", capacity,
         TimeCell(reps, stream.size(), [&] {
           heap.Clear();
           for (const Neighbor& n : stream) {
             heap.PushBounded(n);
             if (heap.size() > capacity / 2 && (n.id & 7) == 0) {
               benchmark::DoNotOptimize(heap.PopMin());
             }
           }
           benchmark::DoNotOptimize(heap.size());
         }));
    emit("std_priority_queue_stream", capacity,
         TimeCell(reps, stream.size(), [&] {
           std::priority_queue<Neighbor, std::vector<Neighbor>,
                               std::greater<>> q;
           size_t popped = 0;
           for (const Neighbor& n : stream) {
             q.push(n);
             if (q.size() > capacity / 2 && (n.id & 7) == 0) {
               benchmark::DoNotOptimize(q.top());
               q.pop();
               ++popped;
             }
           }
           benchmark::DoNotOptimize(popped + q.size());
         }));
  }

  for (const size_t n : {size_t{128}, size_t{1024}, size_t{8192}}) {
    OpenAddressingSet set(n);
    emit("open_addressing_insert_contains", n, TimeCell(reps, 2 * n, [&] {
           set.Clear();
           for (idx_t i = 0; i < n; ++i) set.Insert(i * 2654435761u);
           size_t hits = 0;
           for (idx_t i = 0; i < n; ++i) hits += set.Contains(i * 2654435761u);
           benchmark::DoNotOptimize(hits);
         }));
    BloomFilter bloom(10 * n);
    emit("bloom_insert_contains", n, TimeCell(reps, 2 * n, [&] {
           bloom.Clear();
           for (idx_t i = 0; i < n; ++i) bloom.Insert(i * 2654435761u);
           size_t hits = 0;
           for (idx_t i = 0; i < n; ++i) {
             hits += bloom.Contains(i * 2654435761u);
           }
           benchmark::DoNotOptimize(hits);
         }));
    CuckooFilter filter(n);
    emit("cuckoo_insert_erase_cycle", n, TimeCell(reps, 2 * n, [&] {
           filter.Clear();
           for (idx_t i = 0; i < n; ++i) filter.Insert(i * 2654435761u);
           for (idx_t i = 0; i < n; i += 2) filter.Erase(i * 2654435761u);
           size_t hits = 0;
           for (idx_t i = 0; i < n; ++i) {
             hits += filter.Contains(i * 2654435761u);
           }
           benchmark::DoNotOptimize(hits);
         }));
  }

  const char* dir = std::getenv("SONG_BENCH_JSON_DIR");
  if (dir != nullptr && *dir != '\0') {
    const std::string path =
        std::string(dir) + "/BENCH_micro_structures.json";
    if (obs::WriteStringToFile(path, StructuresToJson(results))) {
      std::printf("wrote %s\n", path.c_str());
    }
  }
}

}  // namespace
}  // namespace song

int main(int argc, char** argv) {
  song::RunStructureSweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
