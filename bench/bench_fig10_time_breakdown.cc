// Fig 10 reproduction: where does the time go? For GloVe200 and GIST at
// K (queue size) in {50, 100, 500, 1000}:
//  (left)  HtoD / kernel / DtoH split — kernel dominates (>89%), HtoD share
//          shrinks as K grows, DtoH share grows slightly with K.
//  (right) inside the kernel: candidate locating / bulk distance / data
//          structure maintenance — maintenance is the largest share, and
//          GIST's 960 dims push the distance share well above GloVe200's.

#include <cstdio>
#include <string>

#include "bench_common.h"

using song::bench::BenchContext;
using song::bench::BenchEnv;
using song::bench::PrintHeader;

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  for (const char* preset : {"glove200", "gist"}) {
    BenchContext ctx(preset, env);
    song::SongSearcher searcher(&ctx.workload().data, &ctx.graph(),
                                ctx.workload().metric);
    PrintHeader("Fig 10: time distribution, " + ctx.workload().name);
    std::printf("%8s | %8s %8s %8s | %10s %10s %10s\n", "top-K", "HtoD%",
                "Kernel%", "DtoH%", "Locating%", "Distance%", "Maintain%");
    for (const size_t k : {50, 100, 500, 1000}) {
      song::SongSearchOptions options =
          song::SongSearchOptions::HashTableSelDel();
      options.queue_size = k;
      const song::SimulatedRun run =
          SimulateBatch(searcher, ctx.workload().queries, k, options,
                        env.gpu, env.threads);
      std::printf("%8zu | %8.2f %8.2f %8.2f | %10.2f %10.2f %10.2f\n", k,
                  run.gpu.HtodPct(), run.gpu.KernelPct(), run.gpu.DtohPct(),
                  run.gpu.LocatePct(), run.gpu.DistancePct(),
                  run.gpu.MaintainPct());
    }
  }
  std::printf(
      "\nPaper reference (V100): kernel > 89%% everywhere; HtoD%% falls as K\n"
      "grows; maintenance is the largest kernel stage; GIST's distance share\n"
      "is ~8-20 points higher than GloVe200's.\n");
  return 0;
}
