// Fig 7 reproduction: the visited-structure alternatives at top-100 on SIFT
// and NYTimes — basic hash table, +selected insertion, +visited deletion,
// Bloom filter and Cuckoo filter. The paper's observations to reproduce:
//  * SIFT: sel+del best; filters sit between basic and sel+del.
//  * NYTimes (needs queue sizes in the thousands): hashtable-sel leads at
//    low recall but its table outgrows fast memory at high recall and its
//    throughput collapses; sel+del stays bounded (2K) and wins; the
//    probabilistic filters are competitive at high recall because they stay
//    small.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

using song::bench::BenchContext;
using song::bench::BenchEnv;
using song::bench::Curve;
using song::bench::DefaultQueueSizes;
using song::bench::PrintCurve;
using song::bench::PrintHeader;

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  constexpr size_t kTop = 100;

  const std::vector<std::pair<const char*, song::SongSearchOptions>> configs =
      {{"SONG-hashtable", song::SongSearchOptions::HashTable()},
       {"SONG-hashtable-sel", song::SongSearchOptions::HashTableSel()},
       {"SONG-hashtable-sel-del",
        song::SongSearchOptions::HashTableSelDel()},
       {"SONG-bloomfilter", song::SongSearchOptions::Bloom()},
       {"SONG-cuckoofilter", song::SongSearchOptions::Cuckoo()}};

  for (const char* preset : {"sift", "nytimes"}) {
    BenchContext ctx(preset, env);
    PrintHeader("Fig 7: hash-table alternatives, " + ctx.workload().name +
                " top-100");
    for (const auto& [label, base] : configs) {
      Curve curve = ctx.SweepSong(kTop, DefaultQueueSizes(kTop), base, label);
      PrintCurve(curve, "queue");
      // Memory context for the crossover explanation.
      if (!curve.points.empty()) {
        std::printf("   (largest run: visited in %s memory, %.1f KB/query)\n",
                    curve.points.back().gpu.visited_in_shared ? "shared"
                                                              : "GLOBAL",
                    curve.points.back().gpu.shared_bytes_per_warp / 1024.0);
      }
    }
  }
  return 0;
}
