// Fig 14 reproduction: out-of-GPU-memory datasets via 1-bit random
// projections, on the MNIST-like presets (mnist1m = the §VIII-H subsample,
// mnist = the full preset), top-1, priced on TITAN X (the smallest-memory
// card in the paper). Series: SONG on the original floats vs Hash-32/64/
// 128/256/512. Expected shape: more bits -> better recall ceiling; mid-size
// codes track the original closely at moderate recall while computing much
// cheaper distances; tiny codes saturate early.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/recall.h"
#include "hashing/hashed_index.h"
#include "hashing/random_projection.h"

using song::bench::BenchContext;
using song::bench::BenchEnv;
using song::bench::Curve;
using song::bench::CurvePoint;
using song::bench::PrintCurve;
using song::bench::PrintHeader;

namespace {
// Near-duplicate families make Hamming plateaus expensive to sweep finely
// on one core; four queue sizes are enough to trace the Fig 14 shape.
const std::vector<size_t> kQueueSweep = {16, 64, 256, 512};
}  // namespace

int main() {
  BenchEnv env = BenchEnv::FromEnv();
  env.gpu = song::GpuSpec::TitanX();
  constexpr size_t kTop = 1;

  for (const char* preset : {"mnist1m", "mnist"}) {
    BenchContext ctx(preset, env);
    const song::Workload& w = ctx.workload();
    PrintHeader("Fig 14: hashing on " + w.name + " top-1 (TITAN X)");

    // Original full-precision data.
    {
      song::SongSearcher searcher(&w.data, &ctx.graph(), w.metric);
      Curve curve;
      curve.label = "SONG (original)";
      for (const size_t qs : kQueueSweep) {
        song::SongSearchOptions options =
            song::SongSearchOptions::HashTableSelDel();
        options.queue_size = qs;
        const song::SimulatedRun run = SimulateBatch(
            searcher, w.queries, kTop, options, env.gpu, env.threads);
        CurvePoint pt;
        pt.param = qs;
        pt.recall =
            song::MeanRecallAtK(run.batch.Ids(), w.ground_truth, kTop);
        pt.qps = run.SimQps();
        pt.cpu_qps = run.batch.Qps();
        curve.points.push_back(pt);
      }
      PrintCurve(curve, "queue");
      std::printf("   device bytes (data+graph): %.1f MB\n",
                  (w.data.PayloadBytes() + ctx.graph().MemoryBytes()) /
                      (1024.0 * 1024.0));
    }

    // Hashed variants: same NSW graph, Hamming distances over packed codes.
    for (const size_t bits : {32, 64, 128, 256, 512}) {
      song::RandomProjection proj(w.data.dim(), bits,
                                  song::ProjectionKind::kNormal, 77);
      const song::BinaryCodes codes = proj.EncodeDataset(w.data, env.threads);
      song::HashedSongIndex index(&codes, &ctx.graph(), &proj);
      Curve curve;
      curve.label = "Hash-" + std::to_string(bits);
      for (const size_t qs : kQueueSweep) {
        song::SongSearchOptions options =
            song::SongSearchOptions::HashTableSelDel();
        options.queue_size = qs;
        const song::SimulatedRun run = SimulateHashedBatch(
            index, w.queries, kTop, options, env.gpu, env.threads);
        CurvePoint pt;
        pt.param = qs;
        pt.recall =
            song::MeanRecallAtK(run.batch.Ids(), w.ground_truth, kTop);
        pt.qps = run.SimQps();
        pt.cpu_qps = run.batch.Qps();
        curve.points.push_back(pt);
      }
      PrintCurve(curve, "queue");
      std::printf("   device bytes (codes+graph): %.1f MB\n",
                  index.DeviceMemoryBytes() / (1024.0 * 1024.0));
    }
  }
  return 0;
}
