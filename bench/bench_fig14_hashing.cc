// Fig 14 reproduction: out-of-GPU-memory datasets via 1-bit random
// projections, on the MNIST-like presets (mnist1m = the §VIII-H subsample,
// mnist = the full preset), top-1, priced on TITAN X (the smallest-memory
// card in the paper). Series: SONG on the original floats vs Hash-32/64/
// 128/256/512. Expected shape: more bits -> better recall ceiling; mid-size
// codes track the original closely at moderate recall while computing much
// cheaper distances; tiny codes saturate early.
//
// A PQ series rides along (PQ-8/16/32: ADC traversal over m-byte codes plus
// exact rerank of the final pool): unlike the hashed series it reranks with
// the original floats, so it recovers full-precision recall while Stage 2
// fetches m bytes instead of dim*4 — the per-point Stage-2 traffic ratio is
// printed per queue size against the original series.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/recall.h"
#include "hashing/hashed_index.h"
#include "hashing/random_projection.h"
#include "quant/pq.h"

using song::bench::BenchContext;
using song::bench::BenchEnv;
using song::bench::Curve;
using song::bench::CurvePoint;
using song::bench::PrintCurve;
using song::bench::PrintHeader;

namespace {
// Near-duplicate families make Hamming plateaus expensive to sweep finely
// on one core; four queue sizes are enough to trace the Fig 14 shape.
const std::vector<size_t> kQueueSweep = {16, 64, 256, 512};
}  // namespace

int main() {
  BenchEnv env = BenchEnv::FromEnv();
  env.gpu = song::GpuSpec::TitanX();
  constexpr size_t kTop = 1;

  for (const char* preset : {"mnist1m", "mnist"}) {
    BenchContext ctx(preset, env);
    const song::Workload& w = ctx.workload();
    PrintHeader("Fig 14: hashing on " + w.name + " top-1 (TITAN X)");

    // Original full-precision data. Stage-2 traffic per queue size is kept
    // for the PQ-series comparison below.
    std::vector<double> exact_stage2_bytes;
    {
      song::SongSearcher searcher(&w.data, &ctx.graph(), w.metric);
      Curve curve;
      curve.label = "SONG (original)";
      for (const size_t qs : kQueueSweep) {
        song::SongSearchOptions options =
            song::SongSearchOptions::HashTableSelDel();
        options.queue_size = qs;
        const song::SimulatedRun run = SimulateBatch(
            searcher, w.queries, kTop, options, env.gpu, env.threads);
        CurvePoint pt;
        pt.param = qs;
        pt.recall =
            song::MeanRecallAtK(run.batch.Ids(), w.ground_truth, kTop);
        pt.qps = run.SimQps();
        pt.cpu_qps = run.batch.Qps();
        curve.points.push_back(pt);
        exact_stage2_bytes.push_back(
            static_cast<double>(run.batch.stats.data_bytes_loaded));
      }
      PrintCurve(curve, "queue");
      std::printf("   device bytes (data+graph): %.1f MB\n",
                  (w.data.PayloadBytes() + ctx.graph().MemoryBytes()) /
                      (1024.0 * 1024.0));
    }

    // PQ-compressed variants: ADC traversal over m-byte codes on the same
    // graph, exact rerank of the auto-sized pool (min(ef, max(4k, 32)) —
    // deep enough to recover the quantization error at top-1 without the
    // rerank fetches drowning the traversal savings at large queues).
    for (const size_t m : {8, 16, 32}) {
      song::SongSearcher searcher(&w.data, &ctx.graph(), w.metric);
      song::PqOptions popts;
      popts.num_subquantizers = m;
      popts.num_threads = env.threads;
      const song::Status enabled = searcher.EnablePq(popts);
      if (!enabled.ok()) {
        std::printf("   PQ-%zu unavailable: %s\n", m,
                    enabled.ToString().c_str());
        continue;
      }
      Curve curve;
      curve.label = "PQ-" + std::to_string(m);
      std::printf("   PQ-%zu stage-2 traffic vs original:", m);
      for (size_t i = 0; i < kQueueSweep.size(); ++i) {
        const size_t qs = kQueueSweep[i];
        song::SongSearchOptions options =
            song::SongSearchOptions::HashTableSelDel();
        options.queue_size = qs;
        options.quant = song::QuantizationMode::kPq;
        options.rerank_depth = 0;  // auto pool: min(ef, max(4k, 32))
        const song::SimulatedRun run = SimulateBatch(
            searcher, w.queries, kTop, options, env.gpu, env.threads);
        CurvePoint pt;
        pt.param = qs;
        pt.recall =
            song::MeanRecallAtK(run.batch.Ids(), w.ground_truth, kTop);
        pt.qps = run.SimQps();
        pt.cpu_qps = run.batch.Qps();
        curve.points.push_back(pt);
        const double pq_bytes =
            static_cast<double>(run.batch.stats.data_bytes_loaded +
                                run.batch.stats.rerank_bytes_loaded);
        std::printf(" %.1fx@%zu", exact_stage2_bytes[i] / pq_bytes, qs);
      }
      std::printf("\n");
      PrintCurve(curve, "queue");
      const song::PqBatchDistance& pqd = *searcher.pq_distance();
      std::printf("   device bytes (codes+codebook+graph): %.1f MB\n",
                  (pqd.DeviceMemoryBytes() + ctx.graph().MemoryBytes()) /
                      (1024.0 * 1024.0));
    }

    // Hashed variants: same NSW graph, Hamming distances over packed codes.
    for (const size_t bits : {32, 64, 128, 256, 512}) {
      song::RandomProjection proj(w.data.dim(), bits,
                                  song::ProjectionKind::kNormal, 77);
      const song::BinaryCodes codes = proj.EncodeDataset(w.data, env.threads);
      song::HashedSongIndex index(&codes, &ctx.graph(), &proj);
      Curve curve;
      curve.label = "Hash-" + std::to_string(bits);
      for (const size_t qs : kQueueSweep) {
        song::SongSearchOptions options =
            song::SongSearchOptions::HashTableSelDel();
        options.queue_size = qs;
        const song::SimulatedRun run = SimulateHashedBatch(
            index, w.queries, kTop, options, env.gpu, env.threads);
        CurvePoint pt;
        pt.param = qs;
        pt.recall =
            song::MeanRecallAtK(run.batch.Ids(), w.ground_truth, kTop);
        pt.qps = run.SimQps();
        pt.cpu_qps = run.batch.Qps();
        curve.points.push_back(pt);
      }
      PrintCurve(curve, "queue");
      std::printf("   device bytes (codes+graph): %.1f MB\n",
                  index.DeviceMemoryBytes() / (1024.0 * 1024.0));
    }
  }
  return 0;
}
