// Micro benches for the lane-level SIMT executor: warp-reduction distance
// vs the scalar kernel (host overhead of the simulation), warp probe
// rounds, and the full warp-executed kernel vs the host searcher.

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "data/synthetic.h"
#include "gpusim/simt_kernel.h"
#include "gpusim/simt_warp.h"
#include "graph/nsw_builder.h"
#include "song/song_searcher.h"

namespace song {
namespace {

void BM_WarpReduceL2(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  std::mt19937 rng(7);
  std::normal_distribution<float> d;
  std::vector<float> a(dim), b(dim);
  for (size_t i = 0; i < dim; ++i) {
    a[i] = d(rng);
    b[i] = d(rng);
  }
  CycleCounter counter(GpuSpec::V100());
  SimtWarp warp(&counter);
  for (auto _ : state) {
    benchmark::DoNotOptimize(warp.ReduceL2(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_WarpReduceL2)->Arg(128)->Arg(960);

void BM_WarpParallelProbe(benchmark::State& state) {
  const size_t slots_n = static_cast<size_t>(state.range(0));
  std::vector<idx_t> slots(slots_n, kInvalidIdx);
  for (size_t i = 0; i < slots_n / 4; ++i) slots[i * 2] = static_cast<idx_t>(i);
  CycleCounter counter(GpuSpec::V100());
  SimtWarp warp(&counter);
  idx_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(warp.ParallelProbe(
        slots.data(), slots_n, (key * 7) % slots_n, key, kInvalidIdx));
    key = (key + 1) % static_cast<idx_t>(slots_n);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WarpParallelProbe)->Arg(128)->Arg(1024);

struct KernelFixture {
  Dataset data;
  Dataset queries;
  FixedDegreeGraph graph;
  static KernelFixture& Get() {
    static KernelFixture* f = [] {
      auto* fx = new KernelFixture();
      SyntheticSpec spec;
      spec.dim = 96;
      spec.num_points = 4000;
      spec.num_queries = 32;
      spec.num_clusters = 16;
      spec.seed = 70;
      SyntheticData gen = GenerateSynthetic(spec);
      fx->data = std::move(gen.points);
      fx->queries = std::move(gen.queries);
      fx->graph = NswBuilder::Build(fx->data, Metric::kL2, {});
      return fx;
    }();
    return *f;
  }
};

void BM_SimtKernelSearch(benchmark::State& state) {
  auto& fx = KernelFixture::Get();
  SimtSongKernel kernel(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions options = SongSearchOptions::HashTableSelDel();
  options.queue_size = static_cast<size_t>(state.range(0));
  size_t qi = 0;
  for (auto _ : state) {
    const auto r = kernel.Search(
        fx.queries.Row(static_cast<idx_t>(qi % fx.queries.num())), 10,
        options);
    benchmark::DoNotOptimize(r.topk.data());
    ++qi;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimtKernelSearch)->Arg(64)->Arg(256);

void BM_HostSearcherForComparison(benchmark::State& state) {
  auto& fx = KernelFixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions options = SongSearchOptions::HashTableSelDel();
  options.queue_size = static_cast<size_t>(state.range(0));
  SongWorkspace ws;
  size_t qi = 0;
  for (auto _ : state) {
    const auto r = searcher.Search(
        fx.queries.Row(static_cast<idx_t>(qi % fx.queries.num())), 10,
        options, &ws);
    benchmark::DoNotOptimize(r.data());
    ++qi;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HostSearcherForComparison)->Arg(64)->Arg(256);

}  // namespace
}  // namespace song

BENCHMARK_MAIN();
