// Fig 6 reproduction: SONG's speedup over single-thread HNSW as a function
// of recall, for top-10 and top-100 on all five dense datasets. The paper
// reports 50-180x on million-point datasets; at this repo's scaled-down
// point counts the GPU's batching advantage is smaller, so the reproduced
// quantity is the curve shape (GIST highest — more dimensions to parallelize
// — and NYTimes' speedup growing with recall).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

using song::bench::BenchContext;
using song::bench::BenchEnv;
using song::bench::Curve;
using song::bench::DefaultQueueSizes;
using song::bench::PrintHeader;
using song::bench::QpsAtRecall;

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  const std::vector<double> recall_grid = {0.5, 0.6, 0.7, 0.8,
                                           0.9, 0.95, 0.99};
  for (const size_t k : {size_t{10}, size_t{100}}) {
    PrintHeader("Fig 6: speedup over single-thread HNSW (top-" +
                std::to_string(k) + ")");
    std::printf("%-10s", "dataset");
    for (const double r : recall_grid) std::printf("%8.2f", r);
    std::printf("\n");
    for (const char* preset :
         {"sift", "glove200", "nytimes", "gist", "uq_v"}) {
      BenchContext ctx(preset, env);
      const Curve song_curve = ctx.SweepSong(
          k, DefaultQueueSizes(k),
          song::SongSearchOptions::HashTableSelDel());
      const Curve hnsw_curve = ctx.SweepHnsw(k, DefaultQueueSizes(k));
      std::printf("%-10s", preset);
      for (const double r : recall_grid) {
        const double song_qps = QpsAtRecall(song_curve, r);
        const double hnsw_qps = QpsAtRecall(hnsw_curve, r);
        if (song_qps <= 0.0 || hnsw_qps <= 0.0) {
          std::printf("%8s", "N/A");
        } else {
          std::printf("%8.1f", song_qps / hnsw_qps);
        }
      }
      std::printf("\n");
    }
  }
  return 0;
}
