// Micro benches for the PQ asymmetric-distance substrate: the ADC gather
// kernel (per-query LUT accumulation over m-byte codes) across subquantizer
// counts {8, 16, 32, 64}, per SIMD tier, single-id vs fused batch.
//
// main() first runs a dispatch sweep — scalar vs AVX2 vs AVX-512 — and
// prints ns/code plus speedup-vs-scalar. With SONG_BENCH_JSON_DIR set it
// also writes BENCH_micro_adc.json (bench/baselines/ holds a committed
// reference artifact; tools/bench_gate.py compares runs against it).
// SONG_BENCH_SMOKE=1 shrinks the sweep for CI.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/distance_kernels.h"
#include "core/simd.h"
#include "core/types.h"
#include "data/synthetic.h"
#include "obs/exporters.h"
#include "quant/pq.h"
#include "quant/pq_distance.h"

namespace song {
namespace {

// ---------------------------------------------------------------------------
// SIMD dispatch sweep (runs once from main, before google-benchmark).
// ---------------------------------------------------------------------------

struct SweepResult {
  size_t m = 0;           ///< code bytes per point (subquantizers)
  const char* mode = "";  ///< "single" or "batch"
  SimdTier tier = SimdTier::kScalar;
  double ns_per_code = 0.0;
  double speedup_vs_scalar = 1.0;
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Times one (tier, mode, m) cell: the ADC table against `n` code rows in
/// shuffled id order (the Stage 2 gather pattern), best-of-`reps` wall time
/// per pass, each timed rep looping enough passes to fill ~1 ms.
double TimeCell(internal::AdcGatherKernel kernel, bool batch,
                const std::vector<float>& table,
                const std::vector<uint8_t>& codes, size_t m,
                const std::vector<idx_t>& ids, size_t reps,
                std::vector<float>* out) {
  const size_t n = ids.size();
  out->resize(n);
  const auto one_pass = [&] {
    if (batch) {
      kernel(table.data(), codes.data(), m, ids.data(), n, out->data());
    } else {
      for (size_t i = 0; i < n; ++i) {
        kernel(table.data(), codes.data(), m, &ids[i], 1, out->data() + i);
      }
    }
  };
  const double warm_start = Now();
  one_pass();
  const double warm = std::max(Now() - warm_start, 1e-9);
  const size_t passes = std::max<size_t>(1, static_cast<size_t>(1e-3 / warm));
  double best = 1e30;
  for (size_t r = 0; r < reps; ++r) {
    const double start = Now();
    for (size_t p = 0; p < passes; ++p) one_pass();
    best = std::min(best, (Now() - start) / static_cast<double>(passes));
  }
  float sink = 0.0f;
  for (const float v : *out) sink += v;
  benchmark::DoNotOptimize(sink);
  return best * 1e9 / static_cast<double>(n);
}

std::string SweepToJson(const std::vector<SweepResult>& results) {
  std::string out = "{\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"schema_version\": %d,\n  \"bench\": \"micro_adc\",\n",
                bench::kBenchJsonSchemaVersion);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  \"git_describe\": \"%s\",\n",
                bench::BenchGitDescribe());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"cpu_tier\": \"%s\",\n  \"active_tier\": \"%s\",\n",
                SimdTierName(CpuSimdTier()), SimdTierName(ActiveSimdTier()));
  out += buf;
  out += "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"m\": %zu, \"mode\": \"%s\", \"tier\": \"%s\", "
                  "\"ns_per_code\": %.3f, \"speedup_vs_scalar\": %.2f}%s\n",
                  r.m, r.mode, SimdTierName(r.tier), r.ns_per_code,
                  r.speedup_vs_scalar, i + 1 < results.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

void RunDispatchSweep() {
  const bool smoke = std::getenv("SONG_BENCH_SMOKE") != nullptr;
  const size_t reps = smoke ? 3 : 31;
  const std::vector<size_t> ms = {8, 16, 32, 64};

  std::vector<SimdTier> tiers = {SimdTier::kScalar};
  for (const SimdTier t : {SimdTier::kAvx2, SimdTier::kAvx512}) {
    if (SimdTierCompiled(t) && t <= CpuSimdTier()) tiers.push_back(t);
  }

  std::printf("ADC dispatch sweep: cpu=%s active=%s (best of %zu)\n",
              SimdTierName(CpuSimdTier()), SimdTierName(ActiveSimdTier()),
              reps);
  std::printf("%6s %-7s %-7s %12s %10s\n", "m", "mode", "tier", "ns/code",
              "vs scalar");

  std::vector<SweepResult> results;
  std::vector<float> out;
  for (const size_t m : ms) {
    // Keep codes L2-resident (the traversal's hot working set): ~1 MB cap.
    const size_t n = smoke ? 256 : std::min<size_t>(2048, (1u << 20) / m);
    std::mt19937 rng(static_cast<uint32_t>(m) * 7919u + 29u);
    std::vector<float> table(m * 256);
    std::normal_distribution<float> nd;
    for (float& x : table) x = nd(rng);
    std::vector<uint8_t> codes(n * m);
    std::uniform_int_distribution<int> byte(0, 255);
    for (uint8_t& c : codes) c = static_cast<uint8_t>(byte(rng));
    std::vector<idx_t> ids(n);
    for (size_t i = 0; i < n; ++i) ids[i] = static_cast<idx_t>(i);
    std::shuffle(ids.begin(), ids.end(), rng);

    for (const bool batch : {false, true}) {
      double scalar_ns = 0.0;
      for (const SimdTier tier : tiers) {
        const internal::AdcGatherKernel kernel =
            internal::KernelTableForTier(tier).adc_gather;
        SweepResult r;
        r.m = m;
        r.mode = batch ? "batch" : "single";
        r.tier = tier;
        r.ns_per_code =
            TimeCell(kernel, batch, table, codes, m, ids, reps, &out);
        if (tier == SimdTier::kScalar) scalar_ns = r.ns_per_code;
        r.speedup_vs_scalar =
            r.ns_per_code > 0.0 ? scalar_ns / r.ns_per_code : 0.0;
        std::printf("%6zu %-7s %-7s %12.2f %9.2fx\n", r.m, r.mode,
                    SimdTierName(r.tier), r.ns_per_code,
                    r.speedup_vs_scalar);
        results.push_back(r);
      }
    }
  }

  const char* dir = std::getenv("SONG_BENCH_JSON_DIR");
  if (dir != nullptr && *dir != '\0') {
    const std::string path = std::string(dir) + "/BENCH_micro_adc.json";
    if (obs::WriteStringToFile(path, SweepToJson(results))) {
      std::printf("wrote %s\n", path.c_str());
    }
  }
}

// ---------------------------------------------------------------------------
// google-benchmark suite.
// ---------------------------------------------------------------------------

/// Shared trained quantizer + encoded corpus for the end-to-end ADC benches.
struct AdcFixtureData {
  ProductQuantizer pq;
  std::vector<float> query;
  std::unique_ptr<Dataset> data;
  static AdcFixtureData& Get() {
    static AdcFixtureData* f = [] {
      auto* fx = new AdcFixtureData();
      SyntheticSpec spec;
      spec.dim = 128;
      spec.num_points = 8000;
      spec.num_queries = 1;
      spec.num_clusters = 40;
      spec.cluster_std = 0.7;
      spec.seed = 6001;
      SyntheticData gen = GenerateSynthetic(spec);
      fx->query.assign(gen.queries.Row(0), gen.queries.Row(0) + spec.dim);
      fx->data = std::make_unique<Dataset>(std::move(gen.points));
      PqOptions popts;
      popts.num_subquantizers = 16;
      popts.train_iterations = 4;  // codebook quality is irrelevant here
      fx->pq.Train(*fx->data, popts);
      return fx;
    }();
    return *f;
  }
};

void BM_AdcTableBuild(benchmark::State& state) {
  auto& fx = AdcFixtureData::Get();
  std::vector<float> table(fx.pq.TableEntries());
  for (auto _ : state) {
    fx.pq.ComputeAdcTable(fx.query.data(), Metric::kL2, table.data());
    benchmark::DoNotOptimize(table.data());
  }
  state.SetItemsProcessed(state.iterations() * table.size());
}
BENCHMARK(BM_AdcTableBuild);

void BM_AdcBatch(benchmark::State& state) {
  auto& fx = AdcFixtureData::Get();
  PqBatchDistance pqd(fx.pq, *fx.data);
  std::vector<float> table;
  pqd.BuildAdcTable(fx.query.data(), Metric::kL2, &table);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<idx_t> ids(n);
  std::mt19937 rng(17);
  std::uniform_int_distribution<idx_t> pick(
      0, static_cast<idx_t>(fx.data->num() - 1));
  for (idx_t& id : ids) id = pick(rng);
  std::vector<float> out(n);
  for (auto _ : state) {
    pqd.ComputeBatch(table.data(), ids.data(), n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AdcBatch)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace song

int main(int argc, char** argv) {
  song::RunDispatchSweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
