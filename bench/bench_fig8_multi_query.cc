// Fig 8 reproduction: multi-query in a warp (1, 2, 4 queries) on SIFT and
// GloVe200, top-100. Paper finding: more queries per warp LOWERS throughput
// — the candidate-locating stage is memory-bound, divergent row fetches
// serialize, and the extra per-query structures shrink occupancy.

#include <string>

#include "bench_common.h"

using song::bench::BenchContext;
using song::bench::BenchEnv;
using song::bench::DefaultQueueSizes;
using song::bench::PrintCurve;
using song::bench::PrintHeader;

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  constexpr size_t kTop = 100;
  for (const char* preset : {"sift", "glove200"}) {
    BenchContext ctx(preset, env);
    PrintHeader("Fig 8: multi-query in a warp, " + ctx.workload().name +
                " top-100");
    for (const size_t mq : {1, 2, 4}) {
      song::SongSearchOptions base =
          song::SongSearchOptions::HashTableSelDel();
      base.multi_query = mq;
      const std::string label = "SONG-MulQuery=" + std::to_string(mq);
      PrintCurve(ctx.SweepSong(kTop, DefaultQueueSizes(kTop), base,
                               label.c_str()),
                 "queue");
    }
  }
  return 0;
}
