// Fig 9 reproduction: multi-step probing (1, 2, 4 pops per iteration) on
// SIFT and GloVe200, top-100. Paper finding: extra probes waste distance
// computations on suboptimal candidates (the next-best vertex is usually a
// neighbor of the current one), so probing more steps does not help; the
// gap narrows at high recall where deep exploration is needed anyway.

#include <string>

#include "bench_common.h"

using song::bench::BenchContext;
using song::bench::BenchEnv;
using song::bench::DefaultQueueSizes;
using song::bench::PrintCurve;
using song::bench::PrintHeader;

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  constexpr size_t kTop = 100;
  for (const char* preset : {"sift", "glove200"}) {
    BenchContext ctx(preset, env);
    PrintHeader("Fig 9: multi-step probing, " + ctx.workload().name +
                " top-100");
    for (const size_t probe : {1, 2, 4}) {
      song::SongSearchOptions base =
          song::SongSearchOptions::HashTableSelDel();
      base.multi_step_probe = probe;
      const std::string label = "SONG-Probe=" + std::to_string(probe);
      PrintCurve(ctx.SweepSong(kTop, DefaultQueueSizes(kTop), base,
                               label.c_str()),
                 "queue");
    }
  }
  return 0;
}
