#include "bench_common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "baselines/flat_index.h"
#include "core/recall.h"
#include "core/timer.h"
#include "obs/exporters.h"

namespace song::bench {

BenchEnv BenchEnv::FromEnv() {
  BenchEnv env;
  const char* threads = std::getenv("SONG_BENCH_THREADS");
  if (threads != nullptr) env.threads = std::strtoul(threads, nullptr, 10);
  env.workload_options.num_threads = env.threads;
  return env;
}

std::vector<size_t> DefaultQueueSizes(size_t k) {
  std::vector<size_t> sizes = {10,  16,  24,  32,  48, 64,
                               96, 128, 192, 256, 384, 512, 768, 1024};
  sizes.erase(std::remove_if(sizes.begin(), sizes.end(),
                             [&](size_t s) { return s < k; }),
              sizes.end());
  if (sizes.empty() || sizes.front() != k) sizes.insert(sizes.begin(), k);
  return sizes;
}

std::vector<size_t> DefaultNprobes(size_t nlist) {
  std::vector<size_t> probes;
  for (size_t p = 1; p <= nlist; p *= 2) probes.push_back(p);
  if (probes.back() != nlist) probes.push_back(nlist);
  return probes;
}

BenchContext::BenchContext(const std::string& preset, const BenchEnv& env)
    : env_(env), workload_(GetWorkload(preset, env.workload_options)) {}

const FixedDegreeGraph& BenchContext::graph() {
  if (!graph_built_) {
    graph_ = GetOrBuildNswGraph(workload_, 16, env_.workload_options);
    graph_built_ = true;
  }
  return graph_;
}

const Hnsw& BenchContext::hnsw() {
  if (!hnsw_) {
    char tag[160];
    std::snprintf(tag, sizeof(tag), "%s/hnsw_%s_n%zu_m8_v1.bin",
                  ResolveCacheDir(env_.workload_options).c_str(),
                  workload_.name.c_str(), workload_.data.num());
    auto loaded = Hnsw::Load(tag, &workload_.data, workload_.metric);
    if (loaded.ok()) {
      hnsw_ = std::make_unique<Hnsw>(std::move(loaded.value()));
      return *hnsw_;
    }
    HnswBuildOptions opts;
    opts.m = 8;
    opts.ef_construction = 100;
    opts.num_threads = env_.threads;
    hnsw_ = std::make_unique<Hnsw>(&workload_.data, workload_.metric, opts);
    const Status s = hnsw_->Save(tag);
    if (!s.ok()) std::fprintf(stderr, "[bench] %s\n", s.ToString().c_str());
  }
  return *hnsw_;
}

const IvfPqIndex& BenchContext::ivfpq() {
  if (!ivfpq_) {
    char tag[160];
    std::snprintf(tag, sizeof(tag), "%s/ivfpq_%s_n%zu_v1.bin",
                  ResolveCacheDir(env_.workload_options).c_str(),
                  workload_.name.c_str(), workload_.data.num());
    auto loaded = IvfPqIndex::Load(tag, &workload_.data, workload_.metric);
    if (loaded.ok()) {
      ivfpq_ = std::make_unique<IvfPqIndex>(std::move(loaded.value()));
      return *ivfpq_;
    }
    IvfPqOptions opts;
    // nlist ~ 4*sqrt(n): the usual IVF sizing rule.
    opts.nlist = std::max<size_t>(
        64, static_cast<size_t>(
                4.0 * std::sqrt(static_cast<double>(workload_.data.num()))));
    // Synthetic Gaussian mixtures are PQ's hardest case (no inter-dim
    // correlation to exploit), so spend 32 bytes/code to give the baseline
    // a recall ceiling comparable to real-data Faiss (~0.8-0.9 on SIFT).
    opts.pq_m = std::clamp<size_t>(workload_.data.dim() / 4, 8, 32);
    opts.num_threads = env_.threads;
    // IVFPQ handles cosine via normalized inner product; our normalized
    // presets use L2 which orders identically, so L2 residual PQ is right.
    ivfpq_ = std::make_unique<IvfPqIndex>(&workload_.data, workload_.metric,
                                          opts);
    const Status s = ivfpq_->Save(tag);
    if (!s.ok()) std::fprintf(stderr, "[bench] %s\n", s.ToString().c_str());
  }
  return *ivfpq_;
}

Curve BenchContext::SweepSong(size_t k,
                              const std::vector<size_t>& queue_sizes,
                              SongSearchOptions base, const char* label) {
  Curve curve;
  curve.label = label;
  SongSearcher searcher(&workload_.data, &graph(), workload_.metric);
  for (const size_t qs : queue_sizes) {
    SongSearchOptions options = base;
    options.queue_size = qs;
    const SimulatedRun run = SimulateBatch(searcher, workload_.queries, k,
                                           options, env_.gpu, env_.threads);
    CurvePoint pt;
    pt.param = qs;
    pt.recall = MeanRecallAtK(run.batch.Ids(), workload_.ground_truth, k);
    pt.qps = run.SimQps();
    pt.cpu_qps = run.batch.Qps();
    pt.gpu = run.gpu;
    curve.points.push_back(pt);
  }
  return curve;
}

Curve BenchContext::SweepHnsw(size_t k, const std::vector<size_t>& efs) {
  Curve curve;
  curve.label = "HNSW";
  const Hnsw& index = hnsw();
  for (const size_t ef : efs) {
    std::vector<std::vector<idx_t>> ids(workload_.queries.num());
    HnswSearchStats stats;
    Timer timer;
    for (size_t q = 0; q < workload_.queries.num(); ++q) {
      const auto found = index.Search(
          workload_.queries.Row(static_cast<idx_t>(q)), k, ef, &stats);
      ids[q].reserve(found.size());
      for (const Neighbor& n : found) ids[q].push_back(n.id);
    }
    const double seconds = timer.ElapsedSeconds();
    RecordHnswSearchStats(stats, workload_.queries.num(),
                          &obs::MetricsRegistry::Global());
    CurvePoint pt;
    pt.param = ef;
    pt.recall = MeanRecallAtK(ids, workload_.ground_truth, k);
    pt.qps = static_cast<double>(workload_.queries.num()) / seconds;
    pt.cpu_qps = pt.qps;
    curve.points.push_back(pt);
  }
  return curve;
}

Curve BenchContext::SweepIvfpq(size_t k, const std::vector<size_t>& nprobes) {
  Curve curve;
  curve.label = "Faiss-IVFPQ";
  const IvfPqIndex& index = ivfpq();
  for (const size_t nprobe : nprobes) {
    IvfPqSearchStats stats;
    Timer timer;
    const auto results =
        index.BatchSearch(workload_.queries, k, nprobe, env_.threads, &stats);
    const double seconds = timer.ElapsedSeconds();
    RecordIvfPqSearchStats(stats, &obs::MetricsRegistry::Global());
    const FaissGpuEstimate est = EstimateFaissGpu(
        stats, env_.gpu, workload_.data.dim(), index.pq_m(), k);
    CurvePoint pt;
    pt.param = nprobe;
    pt.recall =
        MeanRecallAtK(FlatIndex::Ids(results), workload_.ground_truth, k);
    pt.qps = est.Qps(workload_.queries.num());
    pt.cpu_qps = static_cast<double>(workload_.queries.num()) / seconds;
    curve.points.push_back(pt);
  }
  return curve;
}

double QpsAtRecall(const Curve& curve, double recall_target) {
  // The recall/QPS frontier: for each achievable recall, the best QPS.
  double best = -1.0;
  for (size_t i = 0; i < curve.points.size(); ++i) {
    const CurvePoint& p = curve.points[i];
    if (p.recall >= recall_target) best = std::max(best, p.qps);
  }
  if (best > 0.0) return best;
  // Interpolate between the two straddling points if any pair crosses.
  for (size_t i = 1; i < curve.points.size(); ++i) {
    const CurvePoint& a = curve.points[i - 1];
    const CurvePoint& b = curve.points[i];
    const double lo = std::min(a.recall, b.recall);
    const double hi = std::max(a.recall, b.recall);
    if (recall_target >= lo && recall_target <= hi && hi > lo) {
      const double t = (recall_target - a.recall) / (b.recall - a.recall);
      return a.qps + t * (b.qps - a.qps);
    }
  }
  return -1.0;  // N/A
}

const char* BenchGitDescribe() {
#ifdef SONG_GIT_DESCRIBE
  return SONG_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

void EmitBenchJson(const std::string& bench_name,
                   const std::vector<Curve>& curves, const BenchEnv& env) {
  const char* dir = std::getenv("SONG_BENCH_JSON_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  std::string out = "{\n  \"schema_version\": ";
  out += std::to_string(kBenchJsonSchemaVersion);
  out += ",\n  \"bench\": ";
  AppendJsonString(&out, bench_name);
  out += ",\n  \"git_describe\": ";
  AppendJsonString(&out, BenchGitDescribe());
  out += ",\n  \"gpu\": ";
  AppendJsonString(&out, env.gpu.name);
  out += ",\n  \"curves\": [";
  char buf[256];
  for (size_t c = 0; c < curves.size(); ++c) {
    out += c == 0 ? "\n    {\"label\": " : ",\n    {\"label\": ";
    AppendJsonString(&out, curves[c].label);
    out += ", \"points\": [";
    for (size_t i = 0; i < curves[c].points.size(); ++i) {
      const CurvePoint& p = curves[c].points[i];
      std::snprintf(buf, sizeof(buf),
                    "%s\n      {\"param\": %zu, \"recall\": %.6f, "
                    "\"qps\": %.3f, \"cpu_qps\": %.3f}",
                    i == 0 ? "" : ",", p.param, p.recall, p.qps, p.cpu_qps);
      out += buf;
    }
    out += "\n    ]}";
  }
  out += "\n  ]\n}\n";
  const std::string path =
      std::string(dir) + "/BENCH_" + bench_name + ".json";
  if (!obs::WriteStringToFile(path, out)) {
    std::fprintf(stderr, "[bench] failed to write %s\n", path.c_str());
  } else {
    std::printf("[bench] wrote %s\n", path.c_str());
  }
}

void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

void PrintCurve(const Curve& curve, const char* param_name) {
  std::printf("-- %s --\n", curve.label.c_str());
  std::printf("%10s %10s %14s %14s\n", param_name, "recall", "QPS",
              "cpu QPS");
  for (const CurvePoint& p : curve.points) {
    std::printf("%10zu %10.4f %14.0f %14.0f\n", p.param, p.recall, p.qps,
                p.cpu_qps);
  }
}

}  // namespace song::bench
