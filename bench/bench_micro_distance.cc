// Micro benches for the bulk-distance substrate: distance kernels across
// the paper's dimensionalities (128..960), Hamming popcount distances for
// the hashed path, and the end-to-end single-query SONG search cost.
//
// Before the google-benchmark suite runs, main() executes a SIMD dispatch
// sweep — scalar vs AVX2 vs AVX-512, single-pair vs fused batch — over dims
// {16, 100, 128, 200, 784, 960} and prints ns/pair plus speedup-vs-scalar.
// With SONG_BENCH_JSON_DIR set it also writes BENCH_micro_distance.json
// (see docs/performance.md for the layout; bench/baselines/ holds a
// committed reference artifact). SONG_BENCH_SMOKE=1 shrinks the sweep for
// CI.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/bitvector.h"
#include "core/distance.h"
#include "core/distance_kernels.h"
#include "core/simd.h"
#include "data/synthetic.h"
#include "graph/nsw_builder.h"
#include "obs/exporters.h"
#include "song/song_searcher.h"

namespace song {
namespace {

std::vector<float> RandomVec(size_t dim, uint32_t seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> d;
  std::vector<float> v(dim);
  for (float& x : v) x = d(rng);
  return v;
}

// ---------------------------------------------------------------------------
// SIMD dispatch sweep (runs once from main, before google-benchmark).
// ---------------------------------------------------------------------------

struct SweepResult {
  size_t dim = 0;
  const char* metric = "";
  const char* mode = "";  // "single" or "batch"
  SimdTier tier = SimdTier::kScalar;
  double ns_per_pair = 0.0;
  double speedup_vs_scalar = 1.0;
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Times one (tier, metric, mode, dim) cell: `query` against `n` rows of
/// `data` in shuffled id order (mimicking the Stage 2 gather pattern),
/// best-of-`reps` wall time per pass. Each timed rep loops enough passes
/// to fill ~1 ms so scheduler jitter cannot dominate microsecond passes.
double TimeCell(const internal::DistanceKernelTable& table, bool batch,
                bool l2, const Dataset& data, const float* query,
                const std::vector<idx_t>& ids, size_t reps,
                std::vector<float>* out) {
  const float* base = data.Row(0);
  const size_t stride = data.stride();
  const size_t dim = data.dim();
  const size_t n = ids.size();
  out->resize(n);
  const internal::PairKernel pair = l2 ? table.l2 : table.dot;
  const internal::GatherKernel gather = l2 ? table.l2_gather : table.dot_gather;
  const auto one_pass = [&] {
    if (batch) {
      gather(query, base, stride, dim, ids.data(), n, out->data());
    } else {
      for (size_t i = 0; i < n; ++i) {
        (*out)[i] = pair(query, base + size_t{ids[i]} * stride, dim);
      }
    }
  };
  // Calibrate the inner pass count against a warmup pass (also primes the
  // cache) so each timed interval is ~1 ms.
  const double warm_start = Now();
  one_pass();
  const double warm = std::max(Now() - warm_start, 1e-9);
  const size_t passes = std::max<size_t>(1, static_cast<size_t>(1e-3 / warm));
  double best = 1e30;
  for (size_t r = 0; r < reps; ++r) {
    const double start = Now();
    for (size_t p = 0; p < passes; ++p) one_pass();
    best = std::min(best, (Now() - start) / static_cast<double>(passes));
  }
  // Keep the results observable so the loops cannot be optimized away.
  float sink = 0.0f;
  for (const float v : *out) sink += v;
  benchmark::DoNotOptimize(sink);
  return best * 1e9 / static_cast<double>(n);
}

std::string SweepToJson(const std::vector<SweepResult>& results) {
  std::string out = "{\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"schema_version\": %d,\n  \"bench\": \"micro_distance\",\n",
                bench::kBenchJsonSchemaVersion);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  \"git_describe\": \"%s\",\n",
                bench::BenchGitDescribe());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"cpu_tier\": \"%s\",\n  \"active_tier\": \"%s\",\n",
                SimdTierName(CpuSimdTier()), SimdTierName(ActiveSimdTier()));
  out += buf;
  out += "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"dim\": %zu, \"metric\": \"%s\", \"mode\": \"%s\", "
                  "\"tier\": \"%s\", \"ns_per_pair\": %.3f, "
                  "\"speedup_vs_scalar\": %.2f}%s\n",
                  r.dim, r.metric, r.mode, SimdTierName(r.tier), r.ns_per_pair,
                  r.speedup_vs_scalar, i + 1 < results.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

void RunDispatchSweep() {
  const bool smoke = std::getenv("SONG_BENCH_SMOKE") != nullptr;
  const size_t reps = smoke ? 3 : 31;
  const std::vector<size_t> dims = {16, 100, 128, 200, 784, 960};

  std::vector<SimdTier> tiers = {SimdTier::kScalar};
  for (const SimdTier t : {SimdTier::kAvx2, SimdTier::kAvx512}) {
    if (SimdTierCompiled(t) && t <= CpuSimdTier()) tiers.push_back(t);
  }

  std::printf("SIMD dispatch sweep: cpu=%s active=%s (best of %zu)\n",
              SimdTierName(CpuSimdTier()), SimdTierName(ActiveSimdTier()),
              reps);
  std::printf("%6s %-7s %-7s %-7s %12s %10s\n", "dim", "metric", "mode",
              "tier", "ns/pair", "vs scalar");

  std::vector<SweepResult> results;
  std::vector<float> out;
  for (const size_t dim : dims) {
    // Cap the working set at ~1 MB (comfortably L2-resident) so every dim
    // measures kernel throughput from cache, not DRAM bandwidth (Stage 2
    // candidates are hot lines the Stage 1 prefetch already pulled in).
    const size_t row_bytes = Dataset::PaddedStride(dim) * sizeof(float);
    const size_t fit = (size_t{1} << 20) / row_bytes;
    const size_t n = smoke ? std::min<size_t>(256, std::max<size_t>(fit, 64))
                           : std::min<size_t>(2048, std::max<size_t>(fit, 64));
    // Fresh data per dim; shuffled ids approximate the Stage 2 gather.
    Dataset data(n, dim);
    std::mt19937 rng(static_cast<uint32_t>(dim) * 7919u + 17u);
    std::normal_distribution<float> nd;
    std::vector<float> row(dim);
    for (size_t i = 0; i < n; ++i) {
      for (float& x : row) x = nd(rng);
      data.SetRow(static_cast<idx_t>(i), row.data());
    }
    const std::vector<float> query = RandomVec(dim, 99);
    std::vector<idx_t> ids(n);
    for (size_t i = 0; i < n; ++i) ids[i] = static_cast<idx_t>(i);
    std::shuffle(ids.begin(), ids.end(), rng);

    for (const bool l2 : {true, false}) {
      for (const bool batch : {false, true}) {
        double scalar_ns = 0.0;
        for (const SimdTier tier : tiers) {
          const internal::DistanceKernelTable& table =
              internal::KernelTableForTier(tier);
          SweepResult r;
          r.dim = dim;
          r.metric = l2 ? "l2" : "dot";
          r.mode = batch ? "batch" : "single";
          r.tier = tier;
          r.ns_per_pair =
              TimeCell(table, batch, l2, data, query.data(), ids, reps, &out);
          if (tier == SimdTier::kScalar) scalar_ns = r.ns_per_pair;
          r.speedup_vs_scalar =
              r.ns_per_pair > 0.0 ? scalar_ns / r.ns_per_pair : 0.0;
          std::printf("%6zu %-7s %-7s %-7s %12.2f %9.2fx\n", r.dim, r.metric,
                      r.mode, SimdTierName(r.tier), r.ns_per_pair,
                      r.speedup_vs_scalar);
          results.push_back(r);
        }
      }
    }
  }

  const char* dir = std::getenv("SONG_BENCH_JSON_DIR");
  if (dir != nullptr && *dir != '\0') {
    const std::string path =
        std::string(dir) + "/BENCH_micro_distance.json";
    if (obs::WriteStringToFile(path, SweepToJson(results))) {
      std::printf("wrote %s\n", path.c_str());
    }
  }
}

// ---------------------------------------------------------------------------
// google-benchmark suite.
// ---------------------------------------------------------------------------

void BM_L2Sqr(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto a = RandomVec(dim, 1);
  const auto b = RandomVec(dim, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(L2Sqr(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_L2Sqr)->Arg(128)->Arg(200)->Arg(256)->Arg(784)->Arg(960);

void BM_InnerProduct(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto a = RandomVec(dim, 3);
  const auto b = RandomVec(dim, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(InnerProduct(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_InnerProduct)->Arg(128)->Arg(960);

void BM_Hamming(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  BinaryCodes codes(2, bits);
  for (size_t b = 0; b < bits; b += 3) codes.SetBit(0, b);
  for (size_t b = 0; b < bits; b += 5) codes.SetBit(1, b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        HammingDistance(codes.Row(0), codes.Row(1), codes.words()));
  }
  state.SetItemsProcessed(state.iterations() * bits);
}
BENCHMARK(BM_Hamming)->Arg(32)->Arg(128)->Arg(512);

// End-to-end single-query search across visited-structure configs.
struct SearchFixtureData {
  Dataset data;
  Dataset queries;
  FixedDegreeGraph graph;
  static SearchFixtureData& Get() {
    static SearchFixtureData* f = [] {
      auto* fx = new SearchFixtureData();
      SyntheticSpec spec;
      spec.dim = 128;
      spec.num_points = 8000;
      spec.num_queries = 64;
      spec.num_clusters = 40;
      spec.cluster_std = 0.7;
      spec.seed = 5150;
      SyntheticData gen = GenerateSynthetic(spec);
      fx->data = std::move(gen.points);
      fx->queries = std::move(gen.queries);
      fx->graph = NswBuilder::Build(fx->data, Metric::kL2, {});
      return fx;
    }();
    return *f;
  }
};

void RunSearchBench(benchmark::State& state,
                    const SongSearchOptions& base) {
  auto& fx = SearchFixtureData::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions options = base;
  options.queue_size = static_cast<size_t>(state.range(0));
  SongWorkspace ws;
  size_t qi = 0;
  for (auto _ : state) {
    const auto result = searcher.Search(
        fx.queries.Row(static_cast<idx_t>(qi % fx.queries.num())), 10,
        options, &ws);
    benchmark::DoNotOptimize(result.data());
    ++qi;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_SearchHashTable(benchmark::State& state) {
  RunSearchBench(state, SongSearchOptions::HashTable());
}
void BM_SearchHashTableSelDel(benchmark::State& state) {
  RunSearchBench(state, SongSearchOptions::HashTableSelDel());
}
void BM_SearchBloom(benchmark::State& state) {
  RunSearchBench(state, SongSearchOptions::Bloom());
}
void BM_SearchCuckoo(benchmark::State& state) {
  RunSearchBench(state, SongSearchOptions::Cuckoo());
}
BENCHMARK(BM_SearchHashTable)->Arg(64)->Arg(256);
BENCHMARK(BM_SearchHashTableSelDel)->Arg(64)->Arg(256);
BENCHMARK(BM_SearchBloom)->Arg(64)->Arg(256);
BENCHMARK(BM_SearchCuckoo)->Arg(64)->Arg(256);

}  // namespace
}  // namespace song

int main(int argc, char** argv) {
  song::RunDispatchSweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
