// Micro benches for the bulk-distance substrate: distance kernels across
// the paper's dimensionalities (128..960), Hamming popcount distances for
// the hashed path, and the end-to-end single-query SONG search cost.

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "core/bitvector.h"
#include "core/distance.h"
#include "data/synthetic.h"
#include "graph/nsw_builder.h"
#include "song/song_searcher.h"

namespace song {
namespace {

std::vector<float> RandomVec(size_t dim, uint32_t seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> d;
  std::vector<float> v(dim);
  for (float& x : v) x = d(rng);
  return v;
}

void BM_L2Sqr(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto a = RandomVec(dim, 1);
  const auto b = RandomVec(dim, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(L2Sqr(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_L2Sqr)->Arg(128)->Arg(200)->Arg(256)->Arg(784)->Arg(960);

void BM_InnerProduct(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto a = RandomVec(dim, 3);
  const auto b = RandomVec(dim, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(InnerProduct(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_InnerProduct)->Arg(128)->Arg(960);

void BM_Hamming(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  BinaryCodes codes(2, bits);
  for (size_t b = 0; b < bits; b += 3) codes.SetBit(0, b);
  for (size_t b = 0; b < bits; b += 5) codes.SetBit(1, b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        HammingDistance(codes.Row(0), codes.Row(1), codes.words()));
  }
  state.SetItemsProcessed(state.iterations() * bits);
}
BENCHMARK(BM_Hamming)->Arg(32)->Arg(128)->Arg(512);

// End-to-end single-query search across visited-structure configs.
struct SearchFixtureData {
  Dataset data;
  Dataset queries;
  FixedDegreeGraph graph;
  static SearchFixtureData& Get() {
    static SearchFixtureData* f = [] {
      auto* fx = new SearchFixtureData();
      SyntheticSpec spec;
      spec.dim = 128;
      spec.num_points = 8000;
      spec.num_queries = 64;
      spec.num_clusters = 40;
      spec.cluster_std = 0.7;
      spec.seed = 5150;
      SyntheticData gen = GenerateSynthetic(spec);
      fx->data = std::move(gen.points);
      fx->queries = std::move(gen.queries);
      fx->graph = NswBuilder::Build(fx->data, Metric::kL2, {});
      return fx;
    }();
    return *f;
  }
};

void RunSearchBench(benchmark::State& state,
                    const SongSearchOptions& base) {
  auto& fx = SearchFixtureData::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions options = base;
  options.queue_size = static_cast<size_t>(state.range(0));
  SongWorkspace ws;
  size_t qi = 0;
  for (auto _ : state) {
    const auto result = searcher.Search(
        fx.queries.Row(static_cast<idx_t>(qi % fx.queries.num())), 10,
        options, &ws);
    benchmark::DoNotOptimize(result.data());
    ++qi;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_SearchHashTable(benchmark::State& state) {
  RunSearchBench(state, SongSearchOptions::HashTable());
}
void BM_SearchHashTableSelDel(benchmark::State& state) {
  RunSearchBench(state, SongSearchOptions::HashTableSelDel());
}
void BM_SearchBloom(benchmark::State& state) {
  RunSearchBench(state, SongSearchOptions::Bloom());
}
void BM_SearchCuckoo(benchmark::State& state) {
  RunSearchBench(state, SongSearchOptions::Cuckoo());
}
BENCHMARK(BM_SearchHashTable)->Arg(64)->Arg(256);
BENCHMARK(BM_SearchHashTableSelDel)->Arg(64)->Arg(256);
BENCHMARK(BM_SearchBloom)->Arg(64)->Arg(256);
BENCHMARK(BM_SearchCuckoo)->Arg(64)->Arg(256);

}  // namespace
}  // namespace song

BENCHMARK_MAIN();
