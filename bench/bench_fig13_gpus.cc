// Fig 13 reproduction: SONG across GPU generations — V100, P40, TITAN X —
// on SIFT and GloVe200, top-10. The search executes once per queue size;
// each GpuSpec prices the same measured counters, so the curves share a
// trend and their gaps reflect the cards' compute/bandwidth ratios (the
// paper: "gaps of these lines are consistent with the computation power of
// the GPUs").

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/recall.h"

using song::bench::BenchContext;
using song::bench::BenchEnv;
using song::bench::DefaultQueueSizes;
using song::bench::PrintHeader;

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  constexpr size_t kTop = 10;
  const std::vector<song::GpuSpec> gpus = {
      song::GpuSpec::V100(), song::GpuSpec::P40(), song::GpuSpec::TitanX()};

  for (const char* preset : {"sift", "glove200"}) {
    BenchContext ctx(preset, env);
    song::SongSearcher searcher(&ctx.workload().data, &ctx.graph(),
                                ctx.workload().metric);
    PrintHeader("Fig 13: SONG on different GPUs, " + ctx.workload().name +
                " top-10");
    std::printf("%10s %10s", "queue", "recall");
    for (const auto& gpu : gpus) std::printf(" %14s", gpu.name.c_str());
    std::printf("\n");
    for (const size_t qs : DefaultQueueSizes(kTop)) {
      song::SongSearchOptions options =
          song::SongSearchOptions::HashTableSelDel();
      options.queue_size = qs;
      // One native execution; price its counters on every card.
      const song::SimulatedRun base =
          SimulateBatch(searcher, ctx.workload().queries, kTop, options,
                        env.gpu, env.threads);
      const double recall = song::MeanRecallAtK(
          base.batch.Ids(), ctx.workload().ground_truth, kTop);
      std::printf("%10zu %10.4f", qs, recall);
      song::WorkloadShape shape;
      shape.num_queries = ctx.workload().queries.num();
      shape.dim = ctx.workload().data.dim();
      shape.point_bytes = shape.dim * sizeof(float);
      shape.k = kTop;
      shape.queue_size = qs;
      shape.degree = ctx.graph().degree();
      for (const auto& gpu : gpus) {
        const song::CostModel model(gpu);
        const song::KernelBreakdown b =
            model.Estimate(base.batch.stats, shape);
        std::printf(" %14.0f", b.Qps(shape.num_queries));
      }
      std::printf("\n");
    }
  }
  return 0;
}
