# Empty dependencies file for song_lib.
# This may be replaced when dependencies are built.
