
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/flat_index.cc" "src/CMakeFiles/song_lib.dir/baselines/flat_index.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/baselines/flat_index.cc.o.d"
  "/root/repo/src/baselines/hnsw.cc" "src/CMakeFiles/song_lib.dir/baselines/hnsw.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/baselines/hnsw.cc.o.d"
  "/root/repo/src/baselines/ivfpq.cc" "src/CMakeFiles/song_lib.dir/baselines/ivfpq.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/baselines/ivfpq.cc.o.d"
  "/root/repo/src/baselines/kmeans.cc" "src/CMakeFiles/song_lib.dir/baselines/kmeans.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/baselines/kmeans.cc.o.d"
  "/root/repo/src/baselines/pq.cc" "src/CMakeFiles/song_lib.dir/baselines/pq.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/baselines/pq.cc.o.d"
  "/root/repo/src/core/dataset.cc" "src/CMakeFiles/song_lib.dir/core/dataset.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/core/dataset.cc.o.d"
  "/root/repo/src/core/distance.cc" "src/CMakeFiles/song_lib.dir/core/distance.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/core/distance.cc.o.d"
  "/root/repo/src/core/recall.cc" "src/CMakeFiles/song_lib.dir/core/recall.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/core/recall.cc.o.d"
  "/root/repo/src/core/thread_pool.cc" "src/CMakeFiles/song_lib.dir/core/thread_pool.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/core/thread_pool.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/song_lib.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/data/synthetic.cc.o.d"
  "/root/repo/src/data/workload.cc" "src/CMakeFiles/song_lib.dir/data/workload.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/data/workload.cc.o.d"
  "/root/repo/src/gpusim/cost_model.cc" "src/CMakeFiles/song_lib.dir/gpusim/cost_model.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/gpusim/cost_model.cc.o.d"
  "/root/repo/src/gpusim/device_memory.cc" "src/CMakeFiles/song_lib.dir/gpusim/device_memory.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/gpusim/device_memory.cc.o.d"
  "/root/repo/src/gpusim/sharded.cc" "src/CMakeFiles/song_lib.dir/gpusim/sharded.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/gpusim/sharded.cc.o.d"
  "/root/repo/src/gpusim/simt_kernel.cc" "src/CMakeFiles/song_lib.dir/gpusim/simt_kernel.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/gpusim/simt_kernel.cc.o.d"
  "/root/repo/src/gpusim/simt_warp.cc" "src/CMakeFiles/song_lib.dir/gpusim/simt_warp.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/gpusim/simt_warp.cc.o.d"
  "/root/repo/src/graph/csr_graph.cc" "src/CMakeFiles/song_lib.dir/graph/csr_graph.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/graph/csr_graph.cc.o.d"
  "/root/repo/src/graph/fixed_degree_graph.cc" "src/CMakeFiles/song_lib.dir/graph/fixed_degree_graph.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/graph/fixed_degree_graph.cc.o.d"
  "/root/repo/src/graph/graph_search.cc" "src/CMakeFiles/song_lib.dir/graph/graph_search.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/graph/graph_search.cc.o.d"
  "/root/repo/src/graph/graph_stats.cc" "src/CMakeFiles/song_lib.dir/graph/graph_stats.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/graph/graph_stats.cc.o.d"
  "/root/repo/src/graph/knn_graph.cc" "src/CMakeFiles/song_lib.dir/graph/knn_graph.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/graph/knn_graph.cc.o.d"
  "/root/repo/src/graph/nn_descent.cc" "src/CMakeFiles/song_lib.dir/graph/nn_descent.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/graph/nn_descent.cc.o.d"
  "/root/repo/src/graph/nsg_builder.cc" "src/CMakeFiles/song_lib.dir/graph/nsg_builder.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/graph/nsg_builder.cc.o.d"
  "/root/repo/src/graph/nsw_builder.cc" "src/CMakeFiles/song_lib.dir/graph/nsw_builder.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/graph/nsw_builder.cc.o.d"
  "/root/repo/src/hashing/hashed_index.cc" "src/CMakeFiles/song_lib.dir/hashing/hashed_index.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/hashing/hashed_index.cc.o.d"
  "/root/repo/src/hashing/random_projection.cc" "src/CMakeFiles/song_lib.dir/hashing/random_projection.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/hashing/random_projection.cc.o.d"
  "/root/repo/src/song/batch_engine.cc" "src/CMakeFiles/song_lib.dir/song/batch_engine.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/song/batch_engine.cc.o.d"
  "/root/repo/src/song/song_searcher.cc" "src/CMakeFiles/song_lib.dir/song/song_searcher.cc.o" "gcc" "src/CMakeFiles/song_lib.dir/song/song_searcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
