file(REMOVE_RECURSE
  "libsong_lib.a"
)
