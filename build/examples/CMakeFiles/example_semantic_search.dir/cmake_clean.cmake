file(REMOVE_RECURSE
  "CMakeFiles/example_semantic_search.dir/semantic_search.cpp.o"
  "CMakeFiles/example_semantic_search.dir/semantic_search.cpp.o.d"
  "example_semantic_search"
  "example_semantic_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_semantic_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
