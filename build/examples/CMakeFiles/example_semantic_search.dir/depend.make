# Empty dependencies file for example_semantic_search.
# This may be replaced when dependencies are built.
