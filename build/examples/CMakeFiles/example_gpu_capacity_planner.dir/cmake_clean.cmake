file(REMOVE_RECURSE
  "CMakeFiles/example_gpu_capacity_planner.dir/gpu_capacity_planner.cpp.o"
  "CMakeFiles/example_gpu_capacity_planner.dir/gpu_capacity_planner.cpp.o.d"
  "example_gpu_capacity_planner"
  "example_gpu_capacity_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gpu_capacity_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
