# Empty compiler generated dependencies file for example_gpu_capacity_planner.
# This may be replaced when dependencies are built.
