# Empty dependencies file for example_out_of_memory_hashing.
# This may be replaced when dependencies are built.
