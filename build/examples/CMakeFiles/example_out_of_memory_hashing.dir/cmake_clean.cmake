file(REMOVE_RECURSE
  "CMakeFiles/example_out_of_memory_hashing.dir/out_of_memory_hashing.cpp.o"
  "CMakeFiles/example_out_of_memory_hashing.dir/out_of_memory_hashing.cpp.o.d"
  "example_out_of_memory_hashing"
  "example_out_of_memory_hashing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_out_of_memory_hashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
