file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_hash_alternatives.dir/bench_fig7_hash_alternatives.cc.o"
  "CMakeFiles/bench_fig7_hash_alternatives.dir/bench_fig7_hash_alternatives.cc.o.d"
  "bench_fig7_hash_alternatives"
  "bench_fig7_hash_alternatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_hash_alternatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
