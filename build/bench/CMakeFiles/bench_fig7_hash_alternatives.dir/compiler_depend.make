# Empty compiler generated dependencies file for bench_fig7_hash_alternatives.
# This may be replaced when dependencies are built.
