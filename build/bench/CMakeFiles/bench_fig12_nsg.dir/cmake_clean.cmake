file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_nsg.dir/bench_fig12_nsg.cc.o"
  "CMakeFiles/bench_fig12_nsg.dir/bench_fig12_nsg.cc.o.d"
  "bench_fig12_nsg"
  "bench_fig12_nsg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_nsg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
