# Empty dependencies file for bench_micro_simt.
# This may be replaced when dependencies are built.
