file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_simt.dir/bench_micro_simt.cc.o"
  "CMakeFiles/bench_micro_simt.dir/bench_micro_simt.cc.o.d"
  "bench_micro_simt"
  "bench_micro_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
