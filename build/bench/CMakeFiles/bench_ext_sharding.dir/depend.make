# Empty dependencies file for bench_ext_sharding.
# This may be replaced when dependencies are built.
