file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_sharding.dir/bench_ext_sharding.cc.o"
  "CMakeFiles/bench_ext_sharding.dir/bench_ext_sharding.cc.o.d"
  "bench_ext_sharding"
  "bench_ext_sharding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sharding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
