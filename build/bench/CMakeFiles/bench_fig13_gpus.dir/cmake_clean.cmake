file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_gpus.dir/bench_fig13_gpus.cc.o"
  "CMakeFiles/bench_fig13_gpus.dir/bench_fig13_gpus.cc.o.d"
  "bench_fig13_gpus"
  "bench_fig13_gpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_gpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
