file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_cpu_song.dir/bench_fig15_cpu_song.cc.o"
  "CMakeFiles/bench_fig15_cpu_song.dir/bench_fig15_cpu_song.cc.o.d"
  "bench_fig15_cpu_song"
  "bench_fig15_cpu_song.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_cpu_song.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
