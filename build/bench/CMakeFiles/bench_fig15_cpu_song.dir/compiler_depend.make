# Empty compiler generated dependencies file for bench_fig15_cpu_song.
# This may be replaced when dependencies are built.
