file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_speedup_faiss.dir/bench_table2_speedup_faiss.cc.o"
  "CMakeFiles/bench_table2_speedup_faiss.dir/bench_table2_speedup_faiss.cc.o.d"
  "bench_table2_speedup_faiss"
  "bench_table2_speedup_faiss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_speedup_faiss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
