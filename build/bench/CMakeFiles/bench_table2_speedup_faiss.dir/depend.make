# Empty dependencies file for bench_table2_speedup_faiss.
# This may be replaced when dependencies are built.
