file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_speedup_hnsw.dir/bench_fig6_speedup_hnsw.cc.o"
  "CMakeFiles/bench_fig6_speedup_hnsw.dir/bench_fig6_speedup_hnsw.cc.o.d"
  "bench_fig6_speedup_hnsw"
  "bench_fig6_speedup_hnsw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_speedup_hnsw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
