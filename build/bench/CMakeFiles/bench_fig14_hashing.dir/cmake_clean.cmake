file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_hashing.dir/bench_fig14_hashing.cc.o"
  "CMakeFiles/bench_fig14_hashing.dir/bench_fig14_hashing.cc.o.d"
  "bench_fig14_hashing"
  "bench_fig14_hashing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_hashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
