# Empty dependencies file for bench_fig14_hashing.
# This may be replaced when dependencies are built.
