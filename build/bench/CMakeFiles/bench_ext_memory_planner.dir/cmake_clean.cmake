file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_memory_planner.dir/bench_ext_memory_planner.cc.o"
  "CMakeFiles/bench_ext_memory_planner.dir/bench_ext_memory_planner.cc.o.d"
  "bench_ext_memory_planner"
  "bench_ext_memory_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_memory_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
