# Empty compiler generated dependencies file for bench_fig8_multi_query.
# This may be replaced when dependencies are built.
