# Empty compiler generated dependencies file for bench_table3_index_memory.
# This may be replaced when dependencies are built.
