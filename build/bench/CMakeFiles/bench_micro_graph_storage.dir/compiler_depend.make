# Empty compiler generated dependencies file for bench_micro_graph_storage.
# This may be replaced when dependencies are built.
