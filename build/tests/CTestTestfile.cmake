# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(song_tests "/root/repo/build/tests/song_tests")
set_tests_properties(song_tests PROPERTIES  TIMEOUT "1800" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;28;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(song_harness_shuffled "/root/repo/build/tests/song_tests" "--gtest_shuffle" "--gtest_random_seed=54321" "--gtest_filter=Harness*")
set_tests_properties(song_harness_shuffled PROPERTIES  TIMEOUT "1800" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
