# Empty dependencies file for song_tests.
# This may be replaced when dependencies are built.
