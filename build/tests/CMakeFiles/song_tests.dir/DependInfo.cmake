
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/baselines_test.cc" "tests/CMakeFiles/song_tests.dir/baselines/baselines_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/baselines/baselines_test.cc.o.d"
  "/root/repo/tests/baselines/hnsw_io_test.cc" "tests/CMakeFiles/song_tests.dir/baselines/hnsw_io_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/baselines/hnsw_io_test.cc.o.d"
  "/root/repo/tests/baselines/ivfpq_io_test.cc" "tests/CMakeFiles/song_tests.dir/baselines/ivfpq_io_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/baselines/ivfpq_io_test.cc.o.d"
  "/root/repo/tests/baselines/ivfpq_stats_test.cc" "tests/CMakeFiles/song_tests.dir/baselines/ivfpq_stats_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/baselines/ivfpq_stats_test.cc.o.d"
  "/root/repo/tests/core/dataset_test.cc" "tests/CMakeFiles/song_tests.dir/core/dataset_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/core/dataset_test.cc.o.d"
  "/root/repo/tests/core/distance_test.cc" "tests/CMakeFiles/song_tests.dir/core/distance_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/core/distance_test.cc.o.d"
  "/root/repo/tests/core/misc_core_test.cc" "tests/CMakeFiles/song_tests.dir/core/misc_core_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/core/misc_core_test.cc.o.d"
  "/root/repo/tests/core/random_test.cc" "tests/CMakeFiles/song_tests.dir/core/random_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/core/random_test.cc.o.d"
  "/root/repo/tests/core/status_test.cc" "tests/CMakeFiles/song_tests.dir/core/status_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/core/status_test.cc.o.d"
  "/root/repo/tests/data/data_test.cc" "tests/CMakeFiles/song_tests.dir/data/data_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/data/data_test.cc.o.d"
  "/root/repo/tests/gpusim/cost_model_test.cc" "tests/CMakeFiles/song_tests.dir/gpusim/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/gpusim/cost_model_test.cc.o.d"
  "/root/repo/tests/gpusim/device_memory_test.cc" "tests/CMakeFiles/song_tests.dir/gpusim/device_memory_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/gpusim/device_memory_test.cc.o.d"
  "/root/repo/tests/gpusim/sharded_test.cc" "tests/CMakeFiles/song_tests.dir/gpusim/sharded_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/gpusim/sharded_test.cc.o.d"
  "/root/repo/tests/gpusim/simt_test.cc" "tests/CMakeFiles/song_tests.dir/gpusim/simt_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/gpusim/simt_test.cc.o.d"
  "/root/repo/tests/graph/csr_and_nn_descent_test.cc" "tests/CMakeFiles/song_tests.dir/graph/csr_and_nn_descent_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/graph/csr_and_nn_descent_test.cc.o.d"
  "/root/repo/tests/graph/graph_test.cc" "tests/CMakeFiles/song_tests.dir/graph/graph_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/graph/graph_test.cc.o.d"
  "/root/repo/tests/graph/repair_test.cc" "tests/CMakeFiles/song_tests.dir/graph/repair_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/graph/repair_test.cc.o.d"
  "/root/repo/tests/harness/fuzz.cc" "tests/CMakeFiles/song_tests.dir/harness/fuzz.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/harness/fuzz.cc.o.d"
  "/root/repo/tests/harness/metamorphic_test.cc" "tests/CMakeFiles/song_tests.dir/harness/metamorphic_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/harness/metamorphic_test.cc.o.d"
  "/root/repo/tests/harness/reference_search.cc" "tests/CMakeFiles/song_tests.dir/harness/reference_search.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/harness/reference_search.cc.o.d"
  "/root/repo/tests/harness/search_differential_test.cc" "tests/CMakeFiles/song_tests.dir/harness/search_differential_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/harness/search_differential_test.cc.o.d"
  "/root/repo/tests/harness/selftest_test.cc" "tests/CMakeFiles/song_tests.dir/harness/selftest_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/harness/selftest_test.cc.o.d"
  "/root/repo/tests/harness/structure_fuzz_test.cc" "tests/CMakeFiles/song_tests.dir/harness/structure_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/harness/structure_fuzz_test.cc.o.d"
  "/root/repo/tests/hashing/hashing_test.cc" "tests/CMakeFiles/song_tests.dir/hashing/hashing_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/hashing/hashing_test.cc.o.d"
  "/root/repo/tests/integration/reproduction_smoke_test.cc" "tests/CMakeFiles/song_tests.dir/integration/reproduction_smoke_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/integration/reproduction_smoke_test.cc.o.d"
  "/root/repo/tests/song/batch_engine_extras_test.cc" "tests/CMakeFiles/song_tests.dir/song/batch_engine_extras_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/song/batch_engine_extras_test.cc.o.d"
  "/root/repo/tests/song/bounded_heap_test.cc" "tests/CMakeFiles/song_tests.dir/song/bounded_heap_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/song/bounded_heap_test.cc.o.d"
  "/root/repo/tests/song/mips_test.cc" "tests/CMakeFiles/song_tests.dir/song/mips_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/song/mips_test.cc.o.d"
  "/root/repo/tests/song/search_core_edge_test.cc" "tests/CMakeFiles/song_tests.dir/song/search_core_edge_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/song/search_core_edge_test.cc.o.d"
  "/root/repo/tests/song/smmh_exhaustive_test.cc" "tests/CMakeFiles/song_tests.dir/song/smmh_exhaustive_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/song/smmh_exhaustive_test.cc.o.d"
  "/root/repo/tests/song/song_searcher_test.cc" "tests/CMakeFiles/song_tests.dir/song/song_searcher_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/song/song_searcher_test.cc.o.d"
  "/root/repo/tests/song/visited_structures_test.cc" "tests/CMakeFiles/song_tests.dir/song/visited_structures_test.cc.o" "gcc" "tests/CMakeFiles/song_tests.dir/song/visited_structures_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/song_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
