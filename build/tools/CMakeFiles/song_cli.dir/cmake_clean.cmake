file(REMOVE_RECURSE
  "CMakeFiles/song_cli.dir/song_cli.cc.o"
  "CMakeFiles/song_cli.dir/song_cli.cc.o.d"
  "song_cli"
  "song_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/song_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
