# Empty compiler generated dependencies file for song_cli.
# This may be replaced when dependencies are built.
