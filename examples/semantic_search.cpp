// Semantic (embedding) search on skewed, clustered data — the GloVe/NYTimes
// regime the paper calls "difficult". Shows (a) cosine-style matching via
// normalized vectors, (b) why the visited-structure choice matters exactly
// here: large queue sizes are needed for high recall, so the §IV-D/E
// optimizations decide whether the visited set stays in fast memory.
//
// Run: ./build/examples/example_semantic_search

#include <cstdio>

#include "baselines/flat_index.h"
#include "core/recall.h"
#include "data/synthetic.h"
#include "gpusim/simulator.h"
#include "graph/nsw_builder.h"
#include "song/song_searcher.h"

int main() {
  using namespace song;

  // GloVe-like word embeddings: 200 dims, heavy cluster skew, normalized.
  SyntheticSpec spec = PresetSpec("glove200", 0.4);
  spec.num_queries = 300;
  SyntheticData gen = GenerateSynthetic(spec);
  std::printf("embeddings: %zu x %zu (normalized: cosine == L2 ordering)\n",
              gen.points.num(), gen.points.dim());

  const FixedDegreeGraph graph =
      NswBuilder::Build(gen.points, Metric::kL2, {});
  SongSearcher searcher(&gen.points, &graph, Metric::kL2);
  FlatIndex flat(&gen.points, Metric::kL2);
  const auto truth = FlatIndex::Ids(flat.BatchSearch(gen.queries, 10));

  struct Config {
    const char* name;
    SongSearchOptions options;
  };
  const Config configs[] = {
      {"hashtable (basic)", SongSearchOptions::HashTable()},
      {"hashtable+sel", SongSearchOptions::HashTableSel()},
      {"hashtable+sel+del", SongSearchOptions::HashTableSelDel()},
      {"bloom filter", SongSearchOptions::Bloom()},
      {"cuckoo filter", SongSearchOptions::Cuckoo()},
  };

  std::printf("\nqueue=512 (high-recall regime on skewed data):\n");
  std::printf("%-20s %10s %12s %14s %10s %8s\n", "visited structure",
              "recall@10", "sim QPS", "visited bytes", "peak live",
              "memory");
  for (const Config& config : configs) {
    SongSearchOptions options = config.options;
    options.queue_size = 512;
    const SimulatedRun run = SimulateBatch(searcher, gen.queries, 10,
                                           options, GpuSpec::V100());
    const double recall = MeanRecallAtK(run.batch.Ids(), truth, 10);
    std::printf("%-20s %10.3f %12.0f %14zu %10zu %8s\n", config.name, recall,
                run.SimQps(), run.batch.stats.visited_capacity_bytes,
                run.batch.stats.peak_visited_size,
                run.gpu.visited_in_shared ? "shared" : "GLOBAL");
  }

  std::printf(
      "\nTakeaway (paper Fig 7): on skewed data the un-deleted hash table\n"
      "outgrows fast memory while sel+del stays bounded at 2*queue entries\n"
      "and the probabilistic filters stay constant-size.\n");
  return 0;
}
