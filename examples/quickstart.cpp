// Quickstart: the minimal SONG workflow.
//   1. make (or load) a float dataset
//   2. build an NSW proximity graph (the index SONG searches)
//   3. create a SongSearcher and run top-k queries
//   4. check quality against exact brute force
//
// Build & run:  cmake --build build && ./build/examples/example_quickstart

#include <cstdio>

#include "baselines/flat_index.h"
#include "core/recall.h"
#include "data/synthetic.h"
#include "graph/nsw_builder.h"
#include "song/song_searcher.h"

int main() {
  using namespace song;

  // 1. A small synthetic dataset: 10k points, 64 dims, mild clustering.
  SyntheticSpec spec;
  spec.name = "quickstart";
  spec.dim = 64;
  spec.num_points = 10000;
  spec.num_queries = 100;
  spec.num_clusters = 50;
  spec.cluster_std = 0.6;
  SyntheticData gen = GenerateSynthetic(spec);
  std::printf("dataset: %zu points x %zu dims, %zu queries\n",
              gen.points.num(), gen.points.dim(), gen.queries.num());

  // 2. Build the proximity graph (degree 16, as in the paper).
  NswBuildOptions build;
  build.degree = 16;
  const FixedDegreeGraph graph = NswBuilder::Build(gen.points, Metric::kL2,
                                                   build);
  std::printf("graph: degree %zu, %.1f MB\n", graph.degree(),
              graph.MemoryBytes() / (1024.0 * 1024.0));

  // 3. Search. queue_size is the recall knob (the paper's K).
  SongSearcher searcher(&gen.points, &graph, Metric::kL2);
  SongSearchOptions options = SongSearchOptions::HashTableSelDel();
  options.queue_size = 64;

  const float* first_query = gen.queries.Row(0);
  const auto top5 = searcher.Search(first_query, 5, options);
  std::printf("\ntop-5 for query 0:\n");
  for (const Neighbor& n : top5) {
    std::printf("  id=%6u  dist=%.4f\n", n.id, n.dist);
  }

  // 4. Recall@10 across all queries vs exact search.
  FlatIndex flat(&gen.points, Metric::kL2);
  const auto exact = FlatIndex::Ids(flat.BatchSearch(gen.queries, 10));
  SongWorkspace ws;
  std::vector<std::vector<idx_t>> results(gen.queries.num());
  SearchStats stats;
  for (size_t q = 0; q < gen.queries.num(); ++q) {
    const auto found = searcher.Search(gen.queries.Row(static_cast<idx_t>(q)),
                                       10, options, &ws, &stats);
    for (const Neighbor& n : found) results[q].push_back(n.id);
  }
  std::printf("\nrecall@10 = %.3f\n", MeanRecallAtK(results, exact, 10));
  std::printf("avg distance computations per query: %.0f\n",
              static_cast<double>(stats.distance_computations) /
                  gen.queries.num());
  return 0;
}
