// Image-descriptor search: the paper's motivating SIFT-style workload.
// Demonstrates the full production path — build the index once, persist it
// to disk, reload, and serve large query batches through the thread-pool
// batch engine with GPU cost simulation alongside, comparing SONG against
// the single-thread HNSW baseline the paper uses.
//
// Run: ./build/examples/example_image_search

#include <cstdio>
#include <filesystem>

#include "baselines/flat_index.h"
#include "baselines/hnsw.h"
#include "core/recall.h"
#include "core/timer.h"
#include "data/synthetic.h"
#include "gpusim/simulator.h"
#include "graph/graph_stats.h"
#include "graph/nsw_builder.h"

int main() {
  using namespace song;

  // A SIFT-like workload: 128-dim local descriptors, ANN-friendly spread.
  SyntheticSpec spec = PresetSpec("sift", 0.5);
  spec.num_queries = 500;
  SyntheticData gen = GenerateSynthetic(spec);
  std::printf("image descriptors: %zu x %zu\n", gen.points.num(),
              gen.points.dim());

  // Build once, persist, reload — the index outlives the process.
  const std::string index_path =
      (std::filesystem::temp_directory_path() / "image_search.nsw").string();
  Timer build_timer;
  {
    const FixedDegreeGraph graph =
        NswBuilder::Build(gen.points, Metric::kL2, {});
    const Status saved = graph.Save(index_path);
    SONG_CHECK_MSG(saved.ok(), saved.ToString().c_str());
  }
  std::printf("index built + saved in %.2fs -> %s\n",
              build_timer.ElapsedSeconds(), index_path.c_str());

  auto loaded = FixedDegreeGraph::Load(index_path);
  SONG_CHECK(loaded.ok());
  const FixedDegreeGraph graph = std::move(loaded.value());
  const GraphStats gstats = ComputeGraphStats(graph);
  std::printf("reloaded: %zu vertices, avg degree %.1f, reachable %zu\n",
              gstats.num_vertices, gstats.avg_degree, gstats.reachable);

  // Ground truth for quality reporting.
  FlatIndex flat(&gen.points, Metric::kL2);
  const auto truth = FlatIndex::Ids(flat.BatchSearch(gen.queries, 10));

  // Serve the batch: native CPU throughput + simulated V100 numbers.
  SongSearcher searcher(&gen.points, &graph, Metric::kL2);
  std::printf("\n%10s %10s %14s %14s\n", "queue", "recall@10", "CPU QPS",
              "sim V100 QPS");
  for (const size_t queue : {16, 32, 64, 128, 256}) {
    SongSearchOptions options = SongSearchOptions::HashTableSelDel();
    options.queue_size = queue;
    const SimulatedRun run = SimulateBatch(searcher, gen.queries, 10,
                                           options, GpuSpec::V100());
    const double recall = MeanRecallAtK(run.batch.Ids(), truth, 10);
    std::printf("%10zu %10.3f %14.0f %14.0f\n", queue, recall,
                run.batch.Qps(), run.SimQps());
  }

  // The paper's CPU baseline for context.
  Hnsw hnsw(&gen.points, Metric::kL2, {});
  Timer hnsw_timer;
  std::vector<std::vector<idx_t>> hnsw_ids(gen.queries.num());
  for (size_t q = 0; q < gen.queries.num(); ++q) {
    const auto found =
        hnsw.Search(gen.queries.Row(static_cast<idx_t>(q)), 10, 64);
    for (const Neighbor& n : found) hnsw_ids[q].push_back(n.id);
  }
  std::printf("\nHNSW(ef=64, 1 thread): recall %.3f, %0.f QPS\n",
              MeanRecallAtK(hnsw_ids, truth, 10),
              gen.queries.num() / hnsw_timer.ElapsedSeconds());
  std::remove(index_path.c_str());
  return 0;
}
