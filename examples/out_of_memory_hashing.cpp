// Out-of-GPU-memory datasets via 1-bit random projections (paper §VII).
// An MNIST8m-like dataset (near-duplicate deformation families) is hashed
// to 32..512-bit codes; the proximity graph stays float-built on the host,
// while the "device" only needs the packed codes. Shows the size reduction
// (Table IV) and the recall/bits trade-off (Fig 14).
//
// Run: ./build/examples/example_out_of_memory_hashing

#include <cstdio>

#include "baselines/flat_index.h"
#include "core/recall.h"
#include "data/synthetic.h"
#include "graph/nsw_builder.h"
#include "hashing/hashed_index.h"
#include "hashing/random_projection.h"

int main() {
  using namespace song;

  SyntheticSpec spec = PresetSpec("mnist", 0.4);
  spec.num_queries = 200;
  SyntheticData gen = GenerateSynthetic(spec);
  std::printf("dataset: %zu x %zu floats = %.1f MB\n", gen.points.num(),
              gen.points.dim(),
              gen.points.PayloadBytes() / (1024.0 * 1024.0));

  // Host-side: graph built once on the original floats.
  const FixedDegreeGraph graph =
      NswBuilder::Build(gen.points, Metric::kL2, {});
  std::printf("graph index: %.1f MB (always fits: degree x n x 4 bytes)\n",
              graph.MemoryBytes() / (1024.0 * 1024.0));

  FlatIndex flat(&gen.points, Metric::kL2);
  const auto truth = FlatIndex::Ids(flat.BatchSearch(gen.queries, 10));

  std::printf("\n%8s %12s %10s %10s %12s\n", "bits", "codes (MB)",
              "vs float", "recall@1", "recall@10");
  for (const size_t bits : {32, 64, 128, 256, 512}) {
    RandomProjection proj(gen.points.dim(), bits, ProjectionKind::kNormal);
    const BinaryCodes codes = proj.EncodeDataset(gen.points);
    HashedSongIndex index(&codes, &graph, &proj);

    SongSearchOptions options = SongSearchOptions::HashTableSelDel();
    options.queue_size = 256;
    SongWorkspace ws;
    std::vector<std::vector<idx_t>> results(gen.queries.num());
    for (size_t q = 0; q < gen.queries.num(); ++q) {
      const auto found = index.Search(
          gen.queries.Row(static_cast<idx_t>(q)), 10, options, &ws);
      for (const Neighbor& n : found) results[q].push_back(n.id);
    }
    const double mb = codes.PayloadBytes() / (1024.0 * 1024.0);
    std::printf("%8zu %12.2f %9.0fx %10.3f %12.3f\n", bits, mb,
                gen.points.PayloadBytes() / (double)codes.PayloadBytes(),
                MeanRecallAtK(results, truth, 1),
                MeanRecallAtK(results, truth, 10));
  }
  std::printf(
      "\n128-bit codes shrink a 784-dim float dataset ~196x (paper: 24 GB\n"
      "-> 124 MB) while keeping the neighborhood structure searchable.\n");
  return 0;
}
