// GPU capacity planner: a what-if tool built on the cost model. Given a
// workload shape (dataset size, dimension, target recall knob), it prices a
// SONG deployment on each GPU preset — kernel/stage split, occupancy,
// transfer overhead at several batch sizes — the kind of answer §VIII-E/G
// of the paper gives experimentally.
//
// Run: ./build/examples/example_gpu_capacity_planner [preset] [queue]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "data/synthetic.h"
#include "gpusim/simulator.h"
#include "graph/nsw_builder.h"

int main(int argc, char** argv) {
  using namespace song;
  const std::string preset = argc > 1 ? argv[1] : "sift";
  const size_t queue = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 128;

  SyntheticSpec spec = PresetSpec(preset, 0.4);
  spec.num_queries = 300;
  SyntheticData gen = GenerateSynthetic(spec);
  std::printf("workload: %s-like, %zu x %zu, queue=%zu\n", preset.c_str(),
              gen.points.num(), gen.points.dim(), queue);

  const FixedDegreeGraph graph =
      NswBuilder::Build(gen.points, Metric::kL2, {});
  SongSearcher searcher(&gen.points, &graph, Metric::kL2);
  SongSearchOptions options = SongSearchOptions::HashTableSelDel();
  options.queue_size = queue;

  // One native run collects the counters; each card prices them.
  const SimulatedRun base =
      SimulateBatch(searcher, gen.queries, 10, options, GpuSpec::V100());

  std::printf("\nper-query work: %.0f distance computations, %.0f graph rows,"
              " %.0f heap ops\n",
              static_cast<double>(base.batch.stats.distance_computations) /
                  gen.queries.num(),
              static_cast<double>(base.batch.stats.graph_rows_loaded) /
                  gen.queries.num(),
              static_cast<double>(base.batch.stats.q_pushes +
                                  base.batch.stats.q_pops) /
                  gen.queries.num());

  std::printf("\n%-10s %12s %9s %9s %9s %10s %9s\n", "GPU", "QPS",
              "locate%", "dist%", "maint%", "warps", "visited");
  for (const GpuSpec& gpu :
       {GpuSpec::V100(), GpuSpec::P40(), GpuSpec::TitanX()}) {
    CostModel model(gpu);
    WorkloadShape shape;
    shape.num_queries = gen.queries.num();
    shape.dim = gen.points.dim();
    shape.point_bytes = shape.dim * sizeof(float);
    shape.k = 10;
    shape.queue_size = queue;
    shape.degree = graph.degree();
    const KernelBreakdown b = model.Estimate(base.batch.stats, shape);
    std::printf("%-10s %12.0f %9.1f %9.1f %9.1f %10.0f %9s\n",
                gpu.name.c_str(), b.Qps(shape.num_queries), b.LocatePct(),
                b.DistancePct(), b.MaintainPct(), b.resident_warps,
                b.visited_in_shared ? "shared" : "global");
  }

  std::printf("\nbatch-size amortization on V100:\n%10s %14s %10s\n",
              "batch", "QPS", "xfer %");
  for (const double factor : {0.33, 1.0, 10.0, 100.0}) {
    SearchStats scaled = base.batch.stats;
    auto mul = [factor](size_t& v) {
      v = static_cast<size_t>(static_cast<double>(v) * factor);
    };
    mul(scaled.graph_rows_loaded);
    mul(scaled.graph_bytes_loaded);
    mul(scaled.distance_computations);
    mul(scaled.data_bytes_loaded);
    mul(scaled.q_pushes);
    mul(scaled.q_pops);
    mul(scaled.visited_tests);
    mul(scaled.visited_insertions);
    WorkloadShape shape;
    shape.num_queries =
        static_cast<size_t>(gen.queries.num() * factor);
    shape.dim = gen.points.dim();
    shape.point_bytes = shape.dim * sizeof(float);
    shape.k = 10;
    shape.queue_size = queue;
    shape.degree = graph.degree();
    CostModel model(GpuSpec::V100());
    const KernelBreakdown b = model.Estimate(scaled, shape);
    std::printf("%10zu %14.0f %9.1f%%\n", shape.num_queries,
                b.Qps(shape.num_queries),
                b.HtodPct() + b.DtohPct());
  }
  return 0;
}
