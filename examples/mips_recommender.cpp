// Maximum-inner-product recommendation (the sponsored-search / matching
// workload the paper's related work highlights, §IX): user vectors match
// item vectors by inner product, where item norms encode importance (bid
// value). Compares the two MIPS routes the library supports — a graph built
// directly on the inner-product "distance" vs a graph built on the
// Möbius-transformed points (Zhou et al. 2019, which adopted SONG as its
// engine) — both searched with the SONG pipeline.
//
// Run: ./build/examples/example_mips_recommender

#include <cstdio>

#include "baselines/flat_index.h"
#include "core/random.h"
#include "core/recall.h"
#include "graph/nsw_builder.h"
#include "song/mips.h"
#include "song/song_searcher.h"

int main() {
  using namespace song;

  // Item embeddings with heterogeneous norms (norm ~ "bid value"): the
  // regime where MIPS differs most from cosine search.
  const size_t n = 8000, dim = 48, nq = 200;
  Dataset items(n, dim);
  Dataset users(nq, dim);
  RandomEngine rng(606);
  std::vector<float> row(dim);
  for (size_t i = 0; i < n; ++i) {
    const float norm_boost =
        static_cast<float>(0.5 + 2.5 * rng.NextUniform());
    for (auto& v : row) {
      v = static_cast<float>(rng.NextGaussian()) * norm_boost;
    }
    items.SetRow(static_cast<idx_t>(i), row.data());
  }
  for (size_t i = 0; i < nq; ++i) {
    for (auto& v : row) v = static_cast<float>(rng.NextGaussian());
    users.SetRow(static_cast<idx_t>(i), row.data());
  }

  // Exact MIPS ground truth.
  FlatIndex flat(&items, Metric::kInnerProduct);
  const auto truth = FlatIndex::Ids(flat.BatchSearch(users, 10));

  NswBuildOptions build;
  build.degree = 16;

  // Route 1: graph built directly on the inner-product score.
  const FixedDegreeGraph ip_graph =
      NswBuilder::Build(items, Metric::kInnerProduct, build);

  // Route 2: L2 graph over Möbius-transformed points; the search itself
  // scores with the inner product on the ORIGINAL items (same topology).
  const Dataset mobius = MobiusTransform(items);
  const FixedDegreeGraph mobius_graph =
      NswBuilder::Build(mobius, Metric::kL2, build);

  auto evaluate = [&](const char* name, const FixedDegreeGraph& graph) {
    SongSearcher searcher(&items, &graph, Metric::kInnerProduct);
    std::printf("%-14s", name);
    for (const size_t queue : {16, 32, 64, 128}) {
      SongSearchOptions options = SongSearchOptions::HashTableSelDel();
      options.queue_size = queue;
      SongWorkspace ws;
      std::vector<std::vector<idx_t>> ids(nq);
      for (size_t q = 0; q < nq; ++q) {
        const auto found = searcher.Search(users.Row(static_cast<idx_t>(q)),
                                           10, options, &ws);
        for (const Neighbor& n : found) ids[q].push_back(n.id);
      }
      std::printf("  %6.3f", MeanRecallAtK(ids, truth, 10));
    }
    std::printf("\n");
  };

  std::printf("MIPS recall@10 by queue size (16/32/64/128):\n");
  evaluate("IP graph", ip_graph);
  evaluate("Mobius graph", mobius_graph);
  std::printf(
      "\nBoth routes run the unmodified SONG pipeline — MIPS is just a\n"
      "different (graph construction, scoring) pairing, which is why the\n"
      "Mobius MIPS system could adopt SONG wholesale (paper SIX).\n");
  return 0;
}
