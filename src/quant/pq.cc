#include "quant/pq.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "baselines/kmeans.h"
#include "core/logging.h"

namespace song {

void ProductQuantizer::Train(const Dataset& train, const PqOptions& options) {
  dim_ = train.dim();
  m_ = std::min(options.num_subquantizers, dim_);
  SONG_CHECK_MSG(m_ > 0, "need at least one subquantizer");

  // Balanced subspace split: the first (dim % m) subspaces get one extra
  // dimension.
  offsets_.assign(m_ + 1, 0);
  const size_t base = dim_ / m_;
  const size_t extra = dim_ % m_;
  for (size_t s = 0; s < m_; ++s) {
    offsets_[s + 1] = offsets_[s] + base + (s < extra ? 1 : 0);
  }

  centroid_offsets_.assign(m_ + 1, 0);
  for (size_t s = 0; s < m_; ++s) {
    centroid_offsets_[s + 1] =
        centroid_offsets_[s] + kCodebookSize * SubspaceDim(s);
  }
  codebooks_.assign(centroid_offsets_[m_], 0.0f);

  for (size_t s = 0; s < m_; ++s) {
    const size_t sub_dim = SubspaceDim(s);
    Dataset sub(train.num(), sub_dim);
    for (size_t i = 0; i < train.num(); ++i) {
      sub.SetRow(static_cast<idx_t>(i),
                 train.Row(static_cast<idx_t>(i)) + offsets_[s]);
    }
    KMeansOptions km;
    km.num_clusters = std::min(kCodebookSize, train.num());
    km.max_iterations = options.train_iterations;
    km.seed = options.seed + s;
    km.num_threads = options.num_threads;
    const KMeansResult result = RunKMeans(sub, km);
    float* dst = codebooks_.data() + centroid_offsets_[s];
    for (size_t c = 0; c < result.centroids.num(); ++c) {
      std::copy_n(result.centroids.Row(static_cast<idx_t>(c)), sub_dim,
                  dst + c * sub_dim);
    }
    // If the training set was smaller than the codebook, the remaining
    // centroids stay zero — harmless, they are simply never the argmin for
    // non-degenerate data and decode to zeros.
  }
  trained_ = true;
}

void ProductQuantizer::Encode(const float* vec, uint8_t* code) const {
  SONG_DCHECK(trained_);
  for (size_t s = 0; s < m_; ++s) {
    const size_t sub_dim = SubspaceDim(s);
    const float* sub_vec = vec + offsets_[s];
    float best = std::numeric_limits<float>::max();
    size_t best_c = 0;
    for (size_t c = 0; c < kCodebookSize; ++c) {
      const float d = L2Sqr(sub_vec, Centroid(s, c), sub_dim);
      if (d < best) {
        best = d;
        best_c = c;
      }
    }
    code[s] = static_cast<uint8_t>(best_c);
  }
}

void ProductQuantizer::Decode(const uint8_t* code, float* out) const {
  SONG_DCHECK(trained_);
  for (size_t s = 0; s < m_; ++s) {
    std::copy_n(Centroid(s, code[s]), SubspaceDim(s), out + offsets_[s]);
  }
}

namespace {

constexpr char kSngqMagic[4] = {'S', 'N', 'G', 'P'};

/// Subspace count ceiling for deserialized headers: a real codebook never
/// exceeds the vector dimensionality, and dim itself is bounded by what the
/// rest of the system accepts. Keeps a hostile header from sizing anything.
constexpr uint64_t kMaxSubquantizers = uint64_t{1} << 16;
constexpr uint64_t kMaxDim = uint64_t{1} << 24;

template <typename T>
bool WriteVec(std::FILE* f, const std::vector<T>& v) {
  const uint64_t n = v.size();
  if (std::fwrite(&n, 8, 1, f) != 1) return false;
  return n == 0 || std::fwrite(v.data(), sizeof(T), v.size(), f) == v.size();
}

/// Remaining bytes between the current position and EOF; < 0 on seek error.
int64_t RemainingBytes(std::FILE* f) {
  const long pos = std::ftell(f);
  if (pos < 0 || std::fseek(f, 0, SEEK_END) != 0) return -1;
  const long end = std::ftell(f);
  if (end < 0 || std::fseek(f, pos, SEEK_SET) != 0) return -1;
  return static_cast<int64_t>(end - pos);
}

/// Length-prefixed vector read, bounded by the bytes actually left in the
/// stream: a stomped 2^62 count fails cleanly instead of driving a giant
/// allocation (the hostile-header contract of the corrupt-file fuzz suite).
template <typename T>
bool ReadVec(std::FILE* f, std::vector<T>* v) {
  uint64_t n = 0;
  if (std::fread(&n, 8, 1, f) != 1) return false;
  const int64_t remaining = RemainingBytes(f);
  if (remaining < 0 ||
      n > static_cast<uint64_t>(remaining) / sizeof(T)) {
    return false;
  }
  v->resize(n);
  return n == 0 || std::fread(v->data(), sizeof(T), n, f) == n;
}

}  // namespace

Status ProductQuantizer::SaveTo(std::FILE* f) const {
  const uint64_t dim64 = dim_, m64 = m_;
  bool ok = std::fwrite(&dim64, 8, 1, f) == 1 &&
            std::fwrite(&m64, 8, 1, f) == 1;
  ok = ok && WriteVec(f, std::vector<uint64_t>(offsets_.begin(),
                                               offsets_.end()));
  ok = ok && WriteVec(f, std::vector<uint64_t>(centroid_offsets_.begin(),
                                               centroid_offsets_.end()));
  ok = ok && WriteVec(f, codebooks_);
  return ok ? Status::OK() : Status::IOError("PQ write failed");
}

Status ProductQuantizer::LoadFrom(std::FILE* f) {
  uint64_t dim64 = 0, m64 = 0;
  if (std::fread(&dim64, 8, 1, f) != 1 || std::fread(&m64, 8, 1, f) != 1) {
    return Status::DataLoss("PQ codebook: truncated header");
  }
  if (m64 == 0 || m64 > kMaxSubquantizers || dim64 == 0 ||
      dim64 > kMaxDim || m64 > dim64) {
    return Status::DataLoss("PQ codebook: implausible header (m=" +
                            std::to_string(m64) + ", dim=" +
                            std::to_string(dim64) + ")");
  }
  std::vector<uint64_t> offsets, centroid_offsets;
  std::vector<float> codebooks;
  if (!ReadVec(f, &offsets) || !ReadVec(f, &centroid_offsets) ||
      !ReadVec(f, &codebooks)) {
    return Status::DataLoss("PQ codebook: truncated body");
  }
  // Structural invariants: subspaces tile [0, dim) left to right, centroid
  // offsets follow from the subspace widths, and the flat codebook is
  // exactly 256 centroids per subspace. Anything else is corruption.
  if (offsets.size() != m64 + 1 || offsets[0] != 0 || offsets[m64] != dim64) {
    return Status::DataLoss("PQ codebook: bad subspace offsets");
  }
  if (centroid_offsets.size() != m64 + 1 || centroid_offsets[0] != 0) {
    return Status::DataLoss("PQ codebook: bad centroid offsets");
  }
  for (size_t s = 0; s < m64; ++s) {
    if (offsets[s + 1] <= offsets[s]) {
      return Status::DataLoss("PQ codebook: non-increasing subspace offsets");
    }
    const uint64_t sub_dim = offsets[s + 1] - offsets[s];
    if (centroid_offsets[s + 1] !=
        centroid_offsets[s] + kCodebookSize * sub_dim) {
      return Status::DataLoss("PQ codebook: centroid offsets inconsistent "
                              "with subspace widths");
    }
  }
  if (codebooks.size() != centroid_offsets[m64]) {
    return Status::DataLoss("PQ codebook: codebook size " +
                            std::to_string(codebooks.size()) +
                            " != expected " +
                            std::to_string(centroid_offsets[m64]));
  }
  for (const float v : codebooks) {
    if (!std::isfinite(v)) {
      return Status::DataLoss("PQ codebook: non-finite centroid value");
    }
  }
  dim_ = static_cast<size_t>(dim64);
  m_ = static_cast<size_t>(m64);
  offsets_.assign(offsets.begin(), offsets.end());
  centroid_offsets_.assign(centroid_offsets.begin(), centroid_offsets.end());
  codebooks_ = std::move(codebooks);
  trained_ = true;
  return Status::OK();
}

Status ProductQuantizer::Save(const std::string& path) const {
  if (!trained_) {
    return Status::FailedPrecondition("PQ codebook not trained; nothing to "
                                      "save to " + path);
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  bool ok = std::fwrite(kSngqMagic, 1, 4, f) == 4;
  Status body = ok ? SaveTo(f) : Status::IOError("short write " + path);
  std::fclose(f);
  return body;
}

StatusOr<ProductQuantizer> ProductQuantizer::Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  char magic[4];
  if (std::fread(magic, 1, 4, f) != 4 ||
      std::memcmp(magic, kSngqMagic, 4) != 0) {
    std::fclose(f);
    return Status::DataLoss("not a PQ codebook (bad magic): " + path);
  }
  ProductQuantizer pq;
  Status s = pq.LoadFrom(f);
  std::fclose(f);
  if (!s.ok()) {
    return Status::DataLoss(s.message() + " (" + path + ")");
  }
  return pq;
}

void ProductQuantizer::ComputeAdcTable(const float* query, Metric metric,
                                       float* table) const {
  SONG_DCHECK(trained_);
  for (size_t s = 0; s < m_; ++s) {
    const size_t sub_dim = SubspaceDim(s);
    const float* sub_query = query + offsets_[s];
    float* row = table + s * kCodebookSize;
    for (size_t c = 0; c < kCodebookSize; ++c) {
      if (metric == Metric::kInnerProduct) {
        row[c] = InnerProduct(sub_query, Centroid(s, c), sub_dim);
      } else {
        row[c] = L2Sqr(sub_query, Centroid(s, c), sub_dim);
      }
    }
  }
}

}  // namespace song
