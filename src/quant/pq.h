// Copyright 2026 The SONG-Repro Authors.
//
// Product quantization (Jégou et al. 2011): the vector is split into `m`
// sub-vectors, each quantized against its own 256-entry codebook, so a point
// compresses to m bytes. Queries scan codes with an asymmetric distance
// computation (ADC) lookup table.
//
// This is the shared quantization layer: the IVFPQ baseline
// (src/baselines/ivfpq.*) encodes residuals with it, and the SONG traversal
// itself (src/song/song_searcher.*, options.quant == kPq) runs Stage 2 over
// these codes with an exact-vector rerank of the final pool — the
// BANG/Faiss-GPU recipe for fitting large datasets on device.
//
// Standalone codebooks serialize to `.sngq` files (magic "SNGP"); loads are
// hardened against truncated and hostile headers and return Status instead
// of crashing or over-allocating.

#ifndef SONG_QUANT_PQ_H_
#define SONG_QUANT_PQ_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/types.h"

namespace song {

struct PqOptions {
  /// Number of subquantizers (= bytes per code).
  size_t num_subquantizers = 8;
  /// Codebook size per subquantizer (fixed 256 = 8 bits here).
  size_t train_iterations = 12;
  uint64_t seed = 99;
  size_t num_threads = 0;
};

class ProductQuantizer {
 public:
  static constexpr size_t kCodebookSize = 256;

  ProductQuantizer() = default;

  /// Trains per-subspace codebooks on `train` vectors.
  void Train(const Dataset& train, const PqOptions& options);

  bool trained() const { return trained_; }
  size_t dim() const { return dim_; }
  size_t num_subquantizers() const { return m_; }
  size_t code_bytes() const { return m_; }

  /// Quantizes `vec` (dim floats) into `code` (m bytes).
  void Encode(const float* vec, uint8_t* code) const;

  /// Reconstructs an approximation of the encoded vector.
  void Decode(const uint8_t* code, float* out) const;

  /// Fills `table` (m * 256 floats) with per-subspace partial scores for
  /// `query`: squared L2 for Metric::kL2, negated partial inner product for
  /// Metric::kInnerProduct.
  void ComputeAdcTable(const float* query, Metric metric,
                       float* table) const;

  /// Sums the table entries selected by `code`.
  float AdcDistance(const float* table, const uint8_t* code) const {
    float total = 0.0f;
    for (size_t s = 0; s < m_; ++s) {
      total += table[s * kCodebookSize + code[s]];
    }
    return total;
  }

  size_t MemoryBytes() const {
    return codebooks_.size() * sizeof(float);
  }

  /// Entries of one ADC lookup table (m * 256 floats).
  size_t TableEntries() const { return m_ * kCodebookSize; }

  /// Raw (de)serialization into an open stream; used by IvfPqIndex and the
  /// .sngq container. LoadFrom validates the header and every structural
  /// invariant (subspace boundaries, centroid offsets, codebook size) before
  /// allocating, so a hostile stream fails with Status instead of OOM.
  Status SaveTo(std::FILE* f) const;
  Status LoadFrom(std::FILE* f);

  /// Standalone `.sngq` codebook files (magic "SNGP" + the SaveTo body).
  Status Save(const std::string& path) const;
  static StatusOr<ProductQuantizer> Load(const std::string& path);

  /// Start offset of subspace `s` in the full vector.
  size_t SubspaceBegin(size_t s) const { return offsets_[s]; }
  size_t SubspaceDim(size_t s) const { return offsets_[s + 1] - offsets_[s]; }

  /// Centroid `c` of subquantizer `s` (SubspaceDim(s) floats).
  const float* Centroid(size_t s, size_t c) const {
    return codebooks_.data() + centroid_offsets_[s] + c * SubspaceDim(s);
  }

 private:
  bool trained_ = false;
  size_t dim_ = 0;
  size_t m_ = 0;
  /// Subspace boundaries: m+1 entries, offsets_[0] = 0, offsets_[m] = dim.
  std::vector<size_t> offsets_;
  /// Flat storage of all codebooks; centroid_offsets_[s] is the float index
  /// of subquantizer s's first centroid.
  std::vector<size_t> centroid_offsets_;
  std::vector<float> codebooks_;
};

}  // namespace song

#endif  // SONG_QUANT_PQ_H_
