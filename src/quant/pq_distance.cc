#include "quant/pq_distance.h"

#include <utility>

#include "core/logging.h"
#include "core/simd.h"
#include "core/thread_pool.h"

namespace song {

PqBatchDistance::PqBatchDistance(ProductQuantizer pq, const Dataset& data,
                                 size_t num_threads)
    : pq_(std::move(pq)),
      kernel_(internal::KernelTableForTier(ActiveSimdTier()).adc_gather) {
  SONG_CHECK_MSG(pq_.trained(), "PqBatchDistance needs a trained quantizer");
  SONG_CHECK_MSG(pq_.dim() == data.dim(),
                 "PQ codebook dim does not match the dataset");
  num_ = data.num();
  const size_t m = pq_.code_bytes();
  codes_.resize(num_ * m);
  ParallelFor(num_, num_threads, [&](size_t i, size_t) {
    pq_.Encode(data.Row(static_cast<idx_t>(i)), codes_.data() + i * m);
  });
}

void PqBatchDistance::BuildAdcTable(const float* query, Metric metric,
                                    std::vector<float>* table) const {
  table->resize(pq_.TableEntries());
  pq_.ComputeAdcTable(query, metric, table->data());
}

void PqBatchDistance::PrefetchCode(idx_t v) const {
  const char* row = reinterpret_cast<const char*>(
      codes_.data() + static_cast<size_t>(v) * pq_.code_bytes());
  // Codes are at most a few cache lines; one hint per 64B covers them.
  for (size_t off = 0; off < pq_.code_bytes(); off += 64) {
    __builtin_prefetch(row + off, 0, 3);
  }
}

}  // namespace song
