// Copyright 2026 The SONG-Repro Authors.
//
// PqBatchDistance — the Stage-2 distance provider that lets SongSearchCore
// traverse over product-quantized codes instead of full float vectors (the
// BANG / Faiss-GPU on-device layout):
//   * the dataset is encoded once into a flat num x m byte matrix (this is
//     what would be resident in GPU global memory),
//   * each query builds one ADC lookup table (m * 256 floats — shared-memory
//     resident on the GPU, so Stage 2 reads m bytes + m LUT entries per
//     candidate instead of 4*dim bytes),
//   * batch scoring runs through the per-tier adc_gather kernel of the
//     distance dispatch tables (scalar / AVX2 / AVX-512).
// The exact-vector rerank of the final pool lives in the searcher; this
// class only owns codes + table building + batched ADC scoring.

#ifndef SONG_QUANT_PQ_DISTANCE_H_
#define SONG_QUANT_PQ_DISTANCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/distance_kernels.h"
#include "core/types.h"
#include "quant/pq.h"

namespace song {

class PqBatchDistance {
 public:
  PqBatchDistance() = default;

  /// Adopts a trained quantizer and encodes every row of `data` (which must
  /// have pq.dim() columns) into the flat code matrix. Encoding parallelizes
  /// over `num_threads` (0 = hardware concurrency).
  PqBatchDistance(ProductQuantizer pq, const Dataset& data,
                  size_t num_threads = 0);

  bool ready() const { return num_ > 0; }
  size_t num() const { return num_; }
  size_t code_bytes() const { return pq_.code_bytes(); }
  const uint8_t* codes() const { return codes_.data(); }
  const ProductQuantizer& pq() const { return pq_; }

  /// Fills `table` (resized to m * 256) with the per-subspace partial scores
  /// for `query` under `metric` (kL2 or kInnerProduct).
  void BuildAdcTable(const float* query, Metric metric,
                     std::vector<float>* table) const;

  /// out[i] = sum of the table entries selected by the code of ids[i],
  /// through the active SIMD tier's adc_gather kernel.
  void ComputeBatch(const float* table, const idx_t* ids, size_t n,
                    float* out) const {
    kernel_(table, codes_.data(), pq_.code_bytes(), ids, n, out);
  }

  float Compute(const float* table, idx_t id) const {
    float out;
    ComputeBatch(table, &id, 1, &out);
    return out;
  }

  /// Hints the m-byte code row of `v` into cache (Stage 1 -> Stage 2
  /// latency hiding, the PQ analog of Dataset::PrefetchRow).
  void PrefetchCode(idx_t v) const;

  /// Device-resident footprint: the code matrix plus the codebook (the LUT
  /// is per-query shared memory, not counted here).
  size_t DeviceMemoryBytes() const {
    return codes_.size() + pq_.MemoryBytes();
  }

 private:
  ProductQuantizer pq_;
  std::vector<uint8_t> codes_;  ///< num_ * code_bytes(), row-major
  size_t num_ = 0;
  internal::AdcGatherKernel kernel_ = nullptr;
};

}  // namespace song

#endif  // SONG_QUANT_PQ_DISTANCE_H_
