#include "graph/csr_graph.h"

#include <cstdio>
#include <cstring>

#include "core/fault_injection.h"

namespace song {

namespace {
constexpr char kMagic[4] = {'S', 'N', 'G', 'C'};

/// Remaining bytes from the current position to EOF, or -1 on seek failure.
long RemainingBytes(std::FILE* f) {
  const long pos = std::ftell(f);
  if (pos < 0 || std::fseek(f, 0, SEEK_END) != 0) return -1;
  const long end = std::ftell(f);
  if (end < 0 || std::fseek(f, pos, SEEK_SET) != 0) return -1;
  return end - pos;
}

}  // namespace

CsrGraph CsrGraph::FromFixedDegree(const FixedDegreeGraph& graph) {
  CsrGraph csr;
  const size_t n = graph.num_vertices();
  csr.offsets_.resize(n + 1);
  csr.offsets_[0] = 0;
  for (size_t v = 0; v < n; ++v) {
    csr.offsets_[v + 1] =
        csr.offsets_[v] + graph.NeighborCount(static_cast<idx_t>(v));
  }
  csr.targets_.reserve(csr.offsets_[n]);
  for (size_t v = 0; v < n; ++v) {
    const idx_t* row = graph.Row(static_cast<idx_t>(v));
    for (size_t i = 0; i < graph.degree() && row[i] != kInvalidIdx; ++i) {
      csr.targets_.push_back(row[i]);
    }
  }
  return csr;
}

CsrGraph CsrGraph::FromAdjacency(
    const std::vector<std::vector<idx_t>>& adjacency) {
  CsrGraph csr;
  csr.offsets_.resize(adjacency.size() + 1);
  csr.offsets_[0] = 0;
  for (size_t v = 0; v < adjacency.size(); ++v) {
    csr.offsets_[v + 1] = csr.offsets_[v] + adjacency[v].size();
  }
  csr.targets_.reserve(csr.offsets_.back());
  for (const auto& row : adjacency) {
    csr.targets_.insert(csr.targets_.end(), row.begin(), row.end());
  }
  return csr;
}

Status CsrGraph::Validate() const {
  if (offsets_.empty()) {
    if (targets_.empty()) return Status::OK();
    return Status::DataLoss("targets without offsets");
  }
  if (offsets_.front() != 0) return Status::DataLoss("offsets[0] != 0");
  for (size_t v = 1; v < offsets_.size(); ++v) {
    if (offsets_[v] < offsets_[v - 1]) {
      return Status::DataLoss("offsets not monotone at vertex " +
                              std::to_string(v - 1));
    }
  }
  if (offsets_.back() != targets_.size()) {
    return Status::DataLoss("offsets[n] != num_edges");
  }
  const size_t n = num_vertices();
  for (size_t e = 0; e < targets_.size(); ++e) {
    if (targets_[e] >= n) {
      return Status::DataLoss("out-of-range target id " +
                              std::to_string(targets_[e]) + " at edge " +
                              std::to_string(e));
    }
  }
  return Status::OK();
}

Status CsrGraph::Save(const std::string& path) const {
  if (fault::ShouldFail("io.write")) {
    return Status::Unavailable("injected fault: io.write " + path);
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  const uint64_t n = num_vertices();
  const uint64_t e = num_edges();
  bool ok = std::fwrite(kMagic, 1, 4, f) == 4;
  ok = ok && std::fwrite(&n, sizeof(n), 1, f) == 1;
  ok = ok && std::fwrite(&e, sizeof(e), 1, f) == 1;
  ok = ok && (offsets_.empty() ||
              std::fwrite(offsets_.data(), sizeof(uint64_t), offsets_.size(),
                          f) == offsets_.size());
  ok = ok && (targets_.empty() ||
              std::fwrite(targets_.data(), sizeof(idx_t), targets_.size(),
                          f) == targets_.size());
  std::fclose(f);
  if (!ok) return Status::IOError("short write: " + path);
  return Status::OK();
}

StatusOr<CsrGraph> CsrGraph::Load(const std::string& path) {
  if (fault::ShouldFail("io.read")) {
    return Status::Unavailable("injected fault: io.read " + path);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);
  char magic[4];
  uint64_t n = 0;
  uint64_t e = 0;
  bool ok = std::fread(magic, 1, 4, f) == 4 &&
            std::memcmp(magic, kMagic, 4) == 0;
  ok = ok && std::fread(&n, sizeof(n), 1, f) == 1;
  ok = ok && std::fread(&e, sizeof(e), 1, f) == 1;
  if (!ok) {
    std::fclose(f);
    return Status::DataLoss("bad header: " + path);
  }
  const long remaining = RemainingBytes(f);
  const uint64_t expected =
      (n + 1) * sizeof(uint64_t) + e * sizeof(idx_t);
  if (remaining < 0 || n > (uint64_t{1} << 40) || e > (uint64_t{1} << 44) ||
      static_cast<uint64_t>(remaining) != expected) {
    std::fclose(f);
    return Status::DataLoss("payload size mismatch (truncated or corrupt): " +
                            path);
  }
  CsrGraph csr;
  csr.offsets_.resize(static_cast<size_t>(n) + 1);
  csr.targets_.resize(static_cast<size_t>(e));
  ok = std::fread(csr.offsets_.data(), sizeof(uint64_t), csr.offsets_.size(),
                  f) == csr.offsets_.size();
  ok = ok && (csr.targets_.empty() ||
              std::fread(csr.targets_.data(), sizeof(idx_t),
                         csr.targets_.size(), f) == csr.targets_.size());
  std::fclose(f);
  if (!ok) return Status::DataLoss("short read: " + path);
  const Status valid = csr.Validate();
  if (!valid.ok()) {
    return Status::DataLoss(valid.message() + ": " + path);
  }
  return csr;
}

}  // namespace song
