#include "graph/csr_graph.h"

namespace song {

CsrGraph CsrGraph::FromFixedDegree(const FixedDegreeGraph& graph) {
  CsrGraph csr;
  const size_t n = graph.num_vertices();
  csr.offsets_.resize(n + 1);
  csr.offsets_[0] = 0;
  for (size_t v = 0; v < n; ++v) {
    csr.offsets_[v + 1] =
        csr.offsets_[v] + graph.NeighborCount(static_cast<idx_t>(v));
  }
  csr.targets_.reserve(csr.offsets_[n]);
  for (size_t v = 0; v < n; ++v) {
    const idx_t* row = graph.Row(static_cast<idx_t>(v));
    for (size_t i = 0; i < graph.degree() && row[i] != kInvalidIdx; ++i) {
      csr.targets_.push_back(row[i]);
    }
  }
  return csr;
}

CsrGraph CsrGraph::FromAdjacency(
    const std::vector<std::vector<idx_t>>& adjacency) {
  CsrGraph csr;
  csr.offsets_.resize(adjacency.size() + 1);
  csr.offsets_[0] = 0;
  for (size_t v = 0; v < adjacency.size(); ++v) {
    csr.offsets_[v + 1] = csr.offsets_[v] + adjacency[v].size();
  }
  csr.targets_.reserve(csr.offsets_.back());
  for (const auto& row : adjacency) {
    csr.targets_.insert(csr.targets_.end(), row.begin(), row.end());
  }
  return csr;
}

}  // namespace song
