#include "graph/nsw_builder.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <queue>
#include <set>
#include <utility>
#include <vector>

#include "core/sync.h"
#include "core/thread_pool.h"
#include "core/types.h"
#include "graph/graph_search.h"

namespace song {

namespace {

// Build-time view of the graph with per-vertex locking so that concurrent
// inserts can read a consistent neighbor row.
class LockedGraph {
 public:
  LockedGraph(size_t n, size_t degree)
      : degree_(degree),
        rows_(n * degree, kInvalidIdx),
        counts_(n),
        locks_(std::make_unique<Mutex[]>(n)) {}

  size_t degree() const { return degree_; }

  // Copies the row of v into out (returns count).
  size_t SnapshotRow(idx_t v, idx_t* out) {
    MutexLock guard(locks_[v]);
    const size_t count = counts_[v];
    std::copy_n(&rows_[static_cast<size_t>(v) * degree_], count, out);
    return count;
  }

  // Replaces the row of v with `neighbors` (<= degree entries).
  void SetRow(idx_t v, const std::vector<idx_t>& neighbors) {
    MutexLock guard(locks_[v]);
    idx_t* row = &rows_[static_cast<size_t>(v) * degree_];
    std::fill(row, row + degree_, kInvalidIdx);
    std::copy(neighbors.begin(), neighbors.end(), row);
    counts_[v] = neighbors.size();
  }

  // Adds edge v->u. If the row overflows, `select` (sorted candidate pool
  // -> kept ids, at most degree) decides which neighbors survive.
  template <typename DistToV, typename Select>
  void AddEdgeWithShrink(idx_t v, idx_t u, const DistToV& dist_to_v,
                         const Select& select) {
    MutexLock guard(locks_[v]);
    idx_t* row = &rows_[static_cast<size_t>(v) * degree_];
    const size_t count = counts_[v];
    for (size_t i = 0; i < count; ++i) {
      if (row[i] == u) return;  // edge already present
    }
    if (count < degree_) {
      row[count] = u;
      counts_[v] = count + 1;
      return;
    }
    // Overflow: re-select the row from current neighbors plus u.
    std::vector<Neighbor> pool;
    pool.reserve(count + 1);
    for (size_t i = 0; i < count; ++i) {
      pool.emplace_back(dist_to_v(row[i]), row[i]);
    }
    pool.emplace_back(dist_to_v(u), u);
    std::sort(pool.begin(), pool.end());
    const std::vector<idx_t> kept = select(v, pool);
    std::fill(row, row + degree_, kInvalidIdx);
    std::copy(kept.begin(), kept.end(), row);
    counts_[v] = kept.size();
  }

  FixedDegreeGraph Finish(size_t n) {
    FixedDegreeGraph g(n, degree_);
    std::vector<idx_t> row(degree_);
    for (size_t v = 0; v < n; ++v) {
      const size_t count = counts_[v];
      row.assign(&rows_[v * degree_], &rows_[v * degree_] + count);
      g.SetNeighbors(static_cast<idx_t>(v), row);
    }
    return g;
  }

 private:
  size_t degree_;
  std::vector<idx_t> rows_;
  std::vector<size_t> counts_;
  std::unique_ptr<Mutex[]> locks_;
};

// Best-first search over the build-time graph, traversing only vertices
// whose insertion has been published via `inserted`.
std::vector<Neighbor> BuildTimeSearch(
    const Dataset& data, Metric metric, LockedGraph& graph, idx_t entry,
    const float* query, size_t ef,
    const std::vector<std::atomic<bool>>& inserted, VisitedBuffer* visited,
    std::vector<idx_t>& row_buf) {
  const DistanceFunc dist = GetDistanceFunc(metric);
  const size_t dim = data.dim();
  visited->Resize(data.num());
  visited->NextEpoch();

  std::priority_queue<Neighbor, std::vector<Neighbor>, std::greater<>> q;
  std::priority_queue<Neighbor> top;

  const float entry_dist = dist(query, data.Row(entry), dim);
  visited->Set(entry);
  q.emplace(entry_dist, entry);
  top.emplace(entry_dist, entry);

  while (!q.empty()) {
    const Neighbor now = q.top();
    q.pop();
    if (top.size() >= ef && now.dist > top.top().dist) break;
    const size_t count = graph.SnapshotRow(now.id, row_buf.data());
    for (size_t i = 0; i < count; ++i) {
      const idx_t v = row_buf[i];
      if (!inserted[v].load(std::memory_order_acquire)) continue;
      if (visited->TestAndSet(v)) continue;
      const float d = dist(query, data.Row(v), dim);
      if (top.size() < ef || d < top.top().dist) {
        q.emplace(d, v);
        top.emplace(d, v);
        if (top.size() > ef) top.pop();
      }
    }
  }

  std::vector<Neighbor> out(top.size());
  for (size_t i = top.size(); i-- > 0;) {
    out[i] = top.top();
    top.pop();
  }
  return out;
}

}  // namespace

// Occlusion-pruned neighbor selection (the HNSW "heuristic", Algorithm 4 of
// Malkov & Yashunin): scan candidates ascending; keep c unless some already
// kept r is closer to c than c is to the center. Produces diverse, navigable
// edges instead of a tight clique around the center.
std::vector<idx_t> NswBuilder::SelectDiverse(
    const Dataset& data, Metric metric, idx_t center,
    const std::vector<Neighbor>& sorted_pool, size_t m) {
  const DistanceFunc dist = GetDistanceFunc(metric);
  const size_t dim = data.dim();
  std::vector<idx_t> selected;
  selected.reserve(m);
  std::vector<Neighbor> discarded;
  for (const Neighbor& cand : sorted_pool) {
    if (selected.size() >= m) break;
    if (cand.id == center) continue;
    bool occluded = false;
    for (const idx_t r : selected) {
      if (r == cand.id ||
          dist(data.Row(r), data.Row(cand.id), dim) < cand.dist) {
        occluded = true;
        break;
      }
    }
    if (occluded) {
      discarded.push_back(cand);
    } else {
      selected.push_back(cand.id);
    }
  }
  for (const Neighbor& d : discarded) {
    if (selected.size() >= m) break;
    if (std::find(selected.begin(), selected.end(), d.id) ==
        selected.end()) {
      selected.push_back(d.id);
    }
  }
  return selected;
}

FixedDegreeGraph NswBuilder::Build(const Dataset& data, Metric metric,
                                   const NswBuildOptions& options) {
  const size_t n = data.num();
  SONG_CHECK_MSG(n > 0, "cannot build a graph over an empty dataset");
  const size_t degree = options.degree;
  const size_t m = options.m == 0 ? std::max<size_t>(1, degree / 2)
                                  : std::min(options.m, degree);
  LockedGraph graph(n, degree);
  const DistanceFunc dist = GetDistanceFunc(metric);
  const size_t dim = data.dim();

  // inserted[v]: v's own row is published and v may be traversed. Vertex 0
  // is the seed/entry vertex.
  std::vector<std::atomic<bool>> inserted(n);
  inserted[0].store(true, std::memory_order_release);

  auto insert_one = [&](idx_t v, VisitedBuffer& visited,
                        std::vector<idx_t>& row_buf) {
    const float* point = data.Row(v);
    std::vector<Neighbor> found =
        BuildTimeSearch(data, metric, graph, /*entry=*/0, point,
                        options.ef_construction, inserted, &visited, row_buf);
    const std::vector<idx_t> own = SelectDiverse(data, metric, v, found, m);
    graph.SetRow(v, own);
    inserted[v].store(true, std::memory_order_release);
    auto dist_to = [&](idx_t center) {
      return [&, center](idx_t u) {
        return dist(data.Row(center), data.Row(u), dim);
      };
    };
    auto select = [&](idx_t center, const std::vector<Neighbor>& pool) {
      return SelectDiverse(data, metric, center, pool, degree);
    };
    for (const idx_t u : own) {
      graph.AddEdgeWithShrink(u, v, dist_to(u), select);
    }
  };

  // Warmup backbone: the earliest inserts define the navigable skeleton
  // every later search descends through, and concurrent inserts at that
  // stage cannot see each other — so build the first slice sequentially.
  const size_t warmup =
      std::min(n - 1, std::max<size_t>(degree * 32, n / 20));
  {
    VisitedBuffer visited;
    std::vector<idx_t> row_buf(degree);
    for (idx_t v = 1; v <= warmup; ++v) insert_one(v, visited, row_buf);
  }

  ParallelFor(n - 1 - warmup, options.num_threads, [&](size_t job, size_t) {
    thread_local VisitedBuffer visited;
    thread_local std::vector<idx_t> row_buf;
    row_buf.resize(degree);
    insert_one(static_cast<idx_t>(job + 1 + warmup), visited, row_buf);
  });

  FixedDegreeGraph result = graph.Finish(n);
  RepairConnectivity(data, metric, &result);
  return result;
}

void NswBuilder::RepairConnectivity(const Dataset& data, Metric metric,
                                    FixedDegreeGraph* graph) {
  // Reverse edges can be evicted by the degree cap, leaving a few vertices
  // with in-degree 0 (unreachable from the entry vertex). Re-attach each
  // unreachable vertex v by forcing an edge from its nearest reachable
  // out-neighbor (falling back to the entry vertex), evicting that row's
  // farthest neighbor when full. Edges this repair itself adds are pinned
  // against later evictions: without the pin, two orphans sharing one full
  // anchor evict each other's attachment forever (the thrash showed up as
  // unreachable live points in the online-mutation differential). With it,
  // every attach makes monotone progress, so the round loop converges.
  const size_t n = graph->num_vertices();
  const DistanceFunc dist = GetDistanceFunc(metric);
  const size_t dim = data.dim();
  std::set<std::pair<idx_t, idx_t>> pinned;
  // Chain anchor: the most recently attached vertex (persists across
  // rounds). Attaching through it when the preferred anchor's row is full
  // avoids evictions that could disconnect previously repaired vertices
  // (adversarial case: many orphans all pointing at one full hub).
  idx_t spare_anchor = 0;
  for (int round = 0; round < 64; ++round) {
    std::vector<bool> seen(n, false);
    std::vector<idx_t> stack{0};
    seen[0] = true;
    size_t reached = 0;
    while (!stack.empty()) {
      const idx_t v = stack.back();
      stack.pop_back();
      ++reached;
      const idx_t* row = graph->Row(v);
      for (size_t i = 0; i < graph->degree() && row[i] != kInvalidIdx; ++i) {
        if (!seen[row[i]]) {
          seen[row[i]] = true;
          stack.push_back(row[i]);
        }
      }
    }
    if (reached == n) return;
    if (!seen[spare_anchor]) spare_anchor = 0;  // must stay reachable
    for (size_t vi = 0; vi < n; ++vi) {
      if (seen[vi]) continue;
      const idx_t v = static_cast<idx_t>(vi);
      // Prefer a reachable out-neighbor of v as the attachment point (it is
      // close to v by construction).
      idx_t anchor = 0;
      for (const idx_t u : graph->Neighbors(v)) {
        if (seen[u]) {
          anchor = u;
          break;
        }
      }
      // AddNeighbor also returns false when the edge already exists (the
      // anchor may be another orphan attached earlier this round whose row
      // already pointed at v) — that case IS an attachment, and falling
      // through to the evict write below would duplicate v in the row.
      const auto has_edge = [graph](idx_t from, idx_t to) {
        const idx_t* r = graph->Row(from);
        for (size_t i = 0; i < graph->degree() && r[i] != kInvalidIdx; ++i) {
          if (r[i] == to) return true;
        }
        return false;
      };
      // Evicts the farthest unpinned neighbor of `a` to make room for v (a
      // later BFS round re-repairs anything this disconnects); refuses when
      // every slot holds a pinned repair edge.
      const auto evict_into = [&](idx_t a) {
        std::vector<idx_t> row = graph->Neighbors(a);
        size_t worst = row.size();
        // Inner-product "distances" are negative, so the no-candidate
        // sentinel must be -inf, not -1.
        float worst_d = -std::numeric_limits<float>::infinity();
        for (size_t i = 0; i < row.size(); ++i) {
          if (pinned.count({a, row[i]}) != 0) continue;
          const float d = dist(data.Row(a), data.Row(row[i]), dim);
          if (d > worst_d) {
            worst_d = d;
            worst = i;
          }
        }
        if (worst == row.size()) return false;
        row[worst] = v;
        graph->SetNeighbors(a, row);
        return true;
      };
      idx_t attached_via = anchor;
      bool attached = has_edge(anchor, v) || graph->AddNeighbor(anchor, v);
      if (!attached && spare_anchor != v) {
        attached =
            has_edge(spare_anchor, v) || graph->AddNeighbor(spare_anchor, v);
        if (attached) attached_via = spare_anchor;
      }
      if (!attached) {
        attached = evict_into(anchor);
        if (!attached && spare_anchor != v && evict_into(spare_anchor)) {
          attached = true;
          attached_via = spare_anchor;
        }
      }
      if (!attached) continue;  // both rows fully pinned; next round
      pinned.insert({attached_via, v});
      seen[vi] = true;  // attached to the reachable component
      spare_anchor = v;
    }
  }
}

}  // namespace song
