// Copyright 2026 The SONG-Repro Authors.
//
// Fixed-degree adjacency storage (paper §IV-A): every vertex owns exactly
// `degree` slots, padded with kInvalidIdx, so locating a vertex's neighbor
// row is a single multiply — no offset-index lookup as a CSR adjacency list
// would need. On the GPU this removes one dependent global-memory load per
// iteration; here it also keeps rows aligned and prefetch-friendly.

#ifndef SONG_GRAPH_FIXED_DEGREE_GRAPH_H_
#define SONG_GRAPH_FIXED_DEGREE_GRAPH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/aligned_buffer.h"
#include "core/status.h"
#include "core/types.h"

namespace song {

class FixedDegreeGraph {
 public:
  FixedDegreeGraph() = default;

  /// Creates a graph with `num_vertices` rows of `degree` slots, all empty.
  FixedDegreeGraph(size_t num_vertices, size_t degree);

  /// Builds from a ragged adjacency list; rows longer than `degree` are
  /// truncated (callers should pre-trim with a selection policy).
  static FixedDegreeGraph FromAdjacency(
      const std::vector<std::vector<idx_t>>& adjacency, size_t degree);

  size_t num_vertices() const { return num_vertices_; }
  size_t degree() const { return degree_; }

  /// Pointer to the `degree` neighbor slots of `v`. Valid neighbors are
  /// packed at the front; the first kInvalidIdx terminates the row.
  const idx_t* Row(idx_t v) const {
    SONG_DCHECK(v < num_vertices_);
    return slots_.data() + static_cast<size_t>(v) * degree_;
  }

  /// Hints the adjacency row of `v` into cache — the search core calls this
  /// one hop ahead of expansion so the row load in the next Stage 1 round
  /// hits cache.
  void PrefetchRow(idx_t v) const {
    const char* p = reinterpret_cast<const char*>(Row(v));
    const size_t bytes = degree_ * sizeof(idx_t);
    for (size_t off = 0; off < bytes; off += 64) __builtin_prefetch(p + off, 0, 3);
  }

  /// Number of valid neighbors of `v` (scan until pad).
  size_t NeighborCount(idx_t v) const;

  /// Copies the valid neighbors of `v` into a vector.
  std::vector<idx_t> Neighbors(idx_t v) const;

  /// Overwrites the row of `v`; `neighbors.size()` must be <= degree.
  void SetNeighbors(idx_t v, const std::vector<idx_t>& neighbors);

  /// Appends `u` to `v`'s row if there is a free slot. Returns false if the
  /// row is full or the edge already exists.
  bool AddNeighbor(idx_t v, idx_t u);

  /// Copy with the vertex count grown to `new_num_vertices` (>= current);
  /// existing rows are preserved, new rows start empty. The copy-on-write
  /// step of MutableIndex::Insert: published snapshots stay immutable, the
  /// writer links into the grown clone before publishing it.
  FixedDegreeGraph CopyGrown(size_t new_num_vertices) const;

  /// Total bytes of the slot array — the "index memory size" of Table III.
  size_t MemoryBytes() const { return slots_.size_bytes(); }

  /// Serialization: magic "SNGG", u32 degree, u64 num_vertices, slots.
  Status Save(const std::string& path) const;
  static StatusOr<FixedDegreeGraph> Load(const std::string& path);

 private:
  idx_t* MutableRow(idx_t v) {
    SONG_DCHECK(v < num_vertices_);
    return slots_.data() + static_cast<size_t>(v) * degree_;
  }

  size_t num_vertices_ = 0;
  size_t degree_ = 0;
  AlignedBuffer<idx_t> slots_;
};

}  // namespace song

#endif  // SONG_GRAPH_FIXED_DEGREE_GRAPH_H_
