#include "graph/fixed_degree_graph.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "core/fault_injection.h"

namespace song {

namespace {
constexpr char kMagic[4] = {'S', 'N', 'G', 'G'};

/// Remaining bytes from the current position to EOF, or -1 on seek failure.
long RemainingBytes(std::FILE* f) {
  const long pos = std::ftell(f);
  if (pos < 0 || std::fseek(f, 0, SEEK_END) != 0) return -1;
  const long end = std::ftell(f);
  if (end < 0 || std::fseek(f, pos, SEEK_SET) != 0) return -1;
  return end - pos;
}

}  // namespace

FixedDegreeGraph::FixedDegreeGraph(size_t num_vertices, size_t degree)
    : num_vertices_(num_vertices), degree_(degree) {
  SONG_CHECK(degree > 0);
  slots_.Reset(num_vertices_ * degree_);
  std::fill(slots_.begin(), slots_.end(), kInvalidIdx);
}

FixedDegreeGraph FixedDegreeGraph::FromAdjacency(
    const std::vector<std::vector<idx_t>>& adjacency, size_t degree) {
  FixedDegreeGraph g(adjacency.size(), degree);
  for (size_t v = 0; v < adjacency.size(); ++v) {
    const auto& row = adjacency[v];
    const size_t count = std::min(row.size(), degree);
    idx_t* slots = g.MutableRow(static_cast<idx_t>(v));
    for (size_t i = 0; i < count; ++i) slots[i] = row[i];
  }
  return g;
}

size_t FixedDegreeGraph::NeighborCount(idx_t v) const {
  const idx_t* row = Row(v);
  size_t count = 0;
  while (count < degree_ && row[count] != kInvalidIdx) ++count;
  return count;
}

std::vector<idx_t> FixedDegreeGraph::Neighbors(idx_t v) const {
  const idx_t* row = Row(v);
  std::vector<idx_t> out;
  out.reserve(degree_);
  for (size_t i = 0; i < degree_ && row[i] != kInvalidIdx; ++i) {
    out.push_back(row[i]);
  }
  return out;
}

void FixedDegreeGraph::SetNeighbors(idx_t v,
                                    const std::vector<idx_t>& neighbors) {
  SONG_CHECK(neighbors.size() <= degree_);
  idx_t* row = MutableRow(v);
  std::fill(row, row + degree_, kInvalidIdx);
  std::copy(neighbors.begin(), neighbors.end(), row);
}

bool FixedDegreeGraph::AddNeighbor(idx_t v, idx_t u) {
  idx_t* row = MutableRow(v);
  for (size_t i = 0; i < degree_; ++i) {
    if (row[i] == u) return false;
    if (row[i] == kInvalidIdx) {
      row[i] = u;
      return true;
    }
  }
  return false;
}

FixedDegreeGraph FixedDegreeGraph::CopyGrown(size_t new_num_vertices) const {
  SONG_CHECK(new_num_vertices >= num_vertices_);
  FixedDegreeGraph g(new_num_vertices, degree_);
  std::copy(slots_.begin(), slots_.end(), g.slots_.begin());
  return g;
}

Status FixedDegreeGraph::Save(const std::string& path) const {
  if (fault::ShouldFail("io.write")) {
    return Status::Unavailable("injected fault: io.write " + path);
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  const uint32_t degree32 = static_cast<uint32_t>(degree_);
  const uint64_t num64 = num_vertices_;
  bool ok = std::fwrite(kMagic, 1, 4, f) == 4;
  ok = ok && std::fwrite(&degree32, sizeof(degree32), 1, f) == 1;
  ok = ok && std::fwrite(&num64, sizeof(num64), 1, f) == 1;
  ok = ok && std::fwrite(slots_.data(), sizeof(idx_t),
                         num_vertices_ * degree_,
                         f) == num_vertices_ * degree_;
  std::fclose(f);
  if (!ok) return Status::IOError("short write: " + path);
  return Status::OK();
}

StatusOr<FixedDegreeGraph> FixedDegreeGraph::Load(const std::string& path) {
  if (fault::ShouldFail("io.read")) {
    return Status::Unavailable("injected fault: io.read " + path);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);
  char magic[4];
  uint32_t degree32 = 0;
  uint64_t num64 = 0;
  bool ok = std::fread(magic, 1, 4, f) == 4 &&
            std::memcmp(magic, kMagic, 4) == 0;
  ok = ok && std::fread(&degree32, sizeof(degree32), 1, f) == 1;
  ok = ok && std::fread(&num64, sizeof(num64), 1, f) == 1;
  if (!ok || degree32 == 0) {
    std::fclose(f);
    return Status::DataLoss("bad header: " + path);
  }
  // Slot payload must match the header's claim exactly — rejects truncation
  // and absurd header values before any allocation happens.
  const long remaining = RemainingBytes(f);
  const uint64_t slots = num64 * uint64_t{degree32};
  if (remaining < 0 || num64 > (uint64_t{1} << 40) ||
      slots / degree32 != num64 ||
      static_cast<uint64_t>(remaining) != slots * sizeof(idx_t)) {
    std::fclose(f);
    return Status::DataLoss("slot size mismatch (truncated or corrupt): " +
                            path);
  }
  FixedDegreeGraph g(static_cast<size_t>(num64), degree32);
  ok = std::fread(g.slots_.data(), sizeof(idx_t), g.num_vertices_ * g.degree_,
                  f) == g.num_vertices_ * g.degree_;
  std::fclose(f);
  if (!ok) return Status::DataLoss("short read: " + path);
  // Neighbor ids are trusted by the search hot path (Row() feeds Dataset
  // rows without bounds checks), so validate them here, once, at load time:
  // every slot is either the kInvalidIdx pad or a vertex id in range.
  for (size_t v = 0; v < g.num_vertices_; ++v) {
    const idx_t* row = g.Row(static_cast<idx_t>(v));
    for (size_t i = 0; i < g.degree_; ++i) {
      if (row[i] != kInvalidIdx && row[i] >= g.num_vertices_) {
        return Status::DataLoss("out-of-range neighbor id " +
                                std::to_string(row[i]) + " at vertex " +
                                std::to_string(v) + ": " + path);
      }
    }
  }
  return g;
}

}  // namespace song
