// Copyright 2026 The SONG-Repro Authors.
//
// Locality-aware graph reordering. Graph search spends its Stage 2 time
// gathering candidate vectors from effectively random rows; relabeling the
// vertices so that topological neighbors get nearby ids turns those gathers
// into near-sequential reads of hot pages (the CPU analogue of coalesced
// global-memory segments, paper §II/§IV-A).
//
// The transform is purely a relabeling: the permuted index is isomorphic to
// the original, so recall and result sets are bit-identical once ids are
// mapped back (SongSearcher::SetResultIdMap). Strategies:
//  - kBfs: breadth-first relabeling from the search entry point — each
//    vertex lands near the frontier it is expanded with.
//  - kDegreeDescending: hubs first — the high-degree vertices that dominate
//    traversals share the first (cache-resident) pages.

#ifndef SONG_GRAPH_REORDER_H_
#define SONG_GRAPH_REORDER_H_

#include <vector>

#include "core/dataset.h"
#include "core/types.h"
#include "graph/csr_graph.h"
#include "graph/fixed_degree_graph.h"
#include "song/search_options.h"

namespace song {

/// A vertex relabeling: old_to_new[old] == new and new_to_old[new] == old,
/// each a permutation of [0, n).
struct GraphPermutation {
  std::vector<idx_t> old_to_new;
  std::vector<idx_t> new_to_old;

  size_t size() const { return old_to_new.size(); }
};

/// Computes the relabeling for `strategy` (kNone returns the identity).
/// BFS starts from `entry`; vertices unreachable from it are appended in
/// old-id order. Degree-descending breaks ties by old id, so both
/// strategies are deterministic.
GraphPermutation ComputeReorder(const FixedDegreeGraph& graph,
                                GraphReorder strategy, idx_t entry = 0);

/// Relabels both endpoints: row perm.old_to_new[v] of the result holds
/// {perm.old_to_new[u] : u in graph.Row(v)}, neighbor order preserved.
FixedDegreeGraph PermuteGraph(const FixedDegreeGraph& graph,
                              const GraphPermutation& perm);

/// Same relabeling for the CSR ablation representation.
CsrGraph PermuteCsr(const CsrGraph& graph, const GraphPermutation& perm);

/// Row perm.old_to_new[v] of the result is row v of `data`.
Dataset PermuteDataset(const Dataset& data, const GraphPermutation& perm);

/// A dataset + graph relabeled consistently, ready to search. `entry` is
/// the original entry vertex's new id; feed `perm.new_to_old` to
/// SongSearcher::SetResultIdMap so emitted ids are in the original space.
struct ReorderedIndex {
  Dataset data;
  FixedDegreeGraph graph;
  GraphPermutation perm;
  idx_t entry = 0;
};

/// One-call transform: permutes data + graph with `strategy` and maps the
/// entry point. `data.num()` must equal `graph.num_vertices()`.
ReorderedIndex ReorderIndex(const Dataset& data, const FixedDegreeGraph& graph,
                            GraphReorder strategy, idx_t entry = 0);

}  // namespace song

#endif  // SONG_GRAPH_REORDER_H_
