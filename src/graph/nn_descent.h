// Copyright 2026 The SONG-Repro Authors.
//
// NN-Descent (Dong, Moses & Li, WWW 2011) — the kNN-graph construction
// behind EFANNA, one of the graph-ANN systems the paper groups with NSW /
// NSG (§I). Local join: start from random neighbor lists and repeatedly
// test "my neighbor's neighbors", which converges because neighborhoods are
// mutually informative. Provides an NSW-free way to seed the NSG builder
// and an independent baseline for kNN-graph quality.

#ifndef SONG_GRAPH_NN_DESCENT_H_
#define SONG_GRAPH_NN_DESCENT_H_

#include <cstddef>
#include <cstdint>

#include "core/dataset.h"
#include "core/distance.h"
#include "graph/fixed_degree_graph.h"

namespace song {

struct NnDescentOptions {
  size_t k = 16;
  size_t max_iterations = 12;
  /// Sample rate of new neighbors joined per round (the paper's rho).
  double sample_rate = 0.6;
  /// Stop when fewer than `termination_delta` * n * k updates occur.
  double termination_delta = 0.002;
  uint64_t seed = 4711;
  size_t num_threads = 0;
};

/// Builds an approximate kNN graph by NN-Descent. Rows are sorted ascending
/// by distance; self edges excluded.
FixedDegreeGraph BuildNnDescentKnnGraph(const Dataset& data, Metric metric,
                                        const NnDescentOptions& options = {});

}  // namespace song

#endif  // SONG_GRAPH_NN_DESCENT_H_
