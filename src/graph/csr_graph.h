// Copyright 2026 The SONG-Repro Authors.
//
// CSR (offset-indexed) adjacency storage — the representation the paper
// argues AGAINST for GPU graph search (§IV-A): locating a vertex's
// neighbors requires loading its offset first ("index look-up is
// inefficient since it requires an additional memory operation"), i.e. two
// dependent global-memory reads per expansion instead of one. This class
// exists for the §IV-A ablation: it is byte-exact about its memory layout
// and counts the extra indirection so the micro bench and cost comparison
// can quantify the trade-off against FixedDegreeGraph.

#ifndef SONG_GRAPH_CSR_GRAPH_H_
#define SONG_GRAPH_CSR_GRAPH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/logging.h"
#include "core/status.h"
#include "core/types.h"
#include "graph/fixed_degree_graph.h"

namespace song {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Converts from a fixed-degree graph (drops the padding).
  static CsrGraph FromFixedDegree(const FixedDegreeGraph& graph);

  /// Builds from a ragged adjacency list.
  static CsrGraph FromAdjacency(
      const std::vector<std::vector<idx_t>>& adjacency);

  size_t num_vertices() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  size_t num_edges() const { return targets_.size(); }

  /// Neighbor span of `v`. On the GPU this is the two dependent loads:
  /// offsets_[v], offsets_[v+1] (one transaction: adjacent words), then the
  /// edge list.
  const idx_t* Neighbors(idx_t v, size_t* count) const {
    SONG_DCHECK(v + 1 < offsets_.size());
    const size_t begin = offsets_[v];
    *count = offsets_[v + 1] - begin;
    return targets_.data() + begin;
  }

  size_t NeighborCount(idx_t v) const {
    SONG_DCHECK(v + 1 < offsets_.size());
    return offsets_[v + 1] - offsets_[v];
  }

  /// Exact storage: offsets (n+1 x 8B: edge counts can exceed 2^32 at the
  /// paper's scale) + targets (E x 4B).
  size_t MemoryBytes() const {
    return offsets_.size() * sizeof(uint64_t) +
           targets_.size() * sizeof(idx_t);
  }

  /// Dependent global-memory transactions to expand one vertex: the offset
  /// pair, then the ceil(count*4 / 128) edge segments — versus exactly
  /// ceil(degree*4 / 128) for the fixed-degree layout.
  static size_t ExpansionTransactions(size_t count) {
    return 1 + (count * sizeof(idx_t) + 127) / 128;
  }

  /// Structural integrity check: offsets present, starting at 0, monotone,
  /// ending at num_edges(), and every target id in [0, num_vertices()).
  /// Load() enforces this; exposed so in-memory builders can be audited too.
  Status Validate() const;

  /// Serialization: magic "SNGC", u64 num_vertices, u64 num_edges, then the
  /// n+1 offsets (u64) and E targets (u32).
  Status Save(const std::string& path) const;
  static StatusOr<CsrGraph> Load(const std::string& path);

 private:
  std::vector<uint64_t> offsets_;  // n+1
  std::vector<idx_t> targets_;     // E
};

}  // namespace song

#endif  // SONG_GRAPH_CSR_GRAPH_H_
