#include "graph/nn_descent.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "core/logging.h"
#include "core/random.h"
#include "core/sync.h"
#include "core/thread_pool.h"

namespace song {

namespace {

// One entry of a vertex's candidate neighbor list.
struct Entry {
  float dist;
  idx_t id;
  bool is_new;  // joined since the last round (NN-Descent's "new" flag)

  friend bool operator<(const Entry& a, const Entry& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.id < b.id;
  }
};

// Fixed-capacity sorted neighbor list with mutex-protected insertion.
class NeighborList {
 public:
  void Init(size_t capacity) {
    capacity_ = capacity;
    entries_.reserve(capacity);
  }

  // Returns true if the candidate improved the list.
  bool Insert(float dist, idx_t id) {
    MutexLock guard(mu_);
    if (entries_.size() >= capacity_ && dist >= entries_.back().dist) {
      return false;
    }
    for (const Entry& e : entries_) {
      if (e.id == id) return false;
    }
    const Entry entry{dist, id, true};
    const auto pos =
        std::lower_bound(entries_.begin(), entries_.end(), entry);
    entries_.insert(pos, entry);
    if (entries_.size() > capacity_) entries_.pop_back();
    return true;
  }

  std::vector<Entry> Snapshot() const {
    MutexLock guard(mu_);
    return entries_;
  }

  void ClearNewFlags(const std::vector<idx_t>& sampled) {
    MutexLock guard(mu_);
    for (Entry& e : entries_) {
      if (std::find(sampled.begin(), sampled.end(), e.id) != sampled.end()) {
        e.is_new = false;
      }
    }
  }

 private:
  mutable Mutex mu_;
  std::vector<Entry> entries_ SONG_GUARDED_BY(mu_);
  size_t capacity_ = 0;  // immutable after Init()
};

}  // namespace

FixedDegreeGraph BuildNnDescentKnnGraph(const Dataset& data, Metric metric,
                                        const NnDescentOptions& options) {
  const size_t n = data.num();
  const size_t k = options.k;
  SONG_CHECK_MSG(n > 1, "NN-Descent needs at least two points");
  const DistanceFunc dist = GetDistanceFunc(metric);
  const size_t dim = data.dim();

  std::vector<NeighborList> lists(n);
  for (auto& list : lists) list.Init(k);

  // Random initialization.
  ParallelFor(n, options.num_threads, [&](size_t v, size_t) {
    RandomEngine rng(options.seed ^ (0x9e37ULL * (v + 1)));
    const float* pv = data.Row(static_cast<idx_t>(v));
    size_t added = 0;
    while (added < std::min(k, n - 1)) {
      const idx_t u = static_cast<idx_t>(rng.NextUint(n));
      if (u == static_cast<idx_t>(v)) continue;
      lists[v].Insert(dist(pv, data.Row(u), dim), u);
      ++added;
    }
  });

  // Local-join rounds.
  const size_t min_updates = std::max<size_t>(
      1, static_cast<size_t>(options.termination_delta *
                             static_cast<double>(n) *
                             static_cast<double>(k)));
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Build forward + reverse candidate sets with new/old split.
    std::vector<std::vector<idx_t>> new_cand(n), old_cand(n);
    std::unique_ptr<Mutex[]> cand_mu(std::make_unique<Mutex[]>(n));
    ParallelFor(n, options.num_threads, [&](size_t v, size_t) {
      RandomEngine rng(options.seed ^ (iter * 1315423911ULL) ^ v);
      std::vector<idx_t> sampled_new;
      for (const Entry& e : lists[v].Snapshot()) {
        if (e.is_new && rng.NextUniform() < options.sample_rate) {
          sampled_new.push_back(e.id);
          {
            MutexLock guard(cand_mu[v]);
            new_cand[v].push_back(e.id);
          }
          MutexLock guard(cand_mu[e.id]);
          new_cand[e.id].push_back(static_cast<idx_t>(v));  // reverse edge
        } else if (!e.is_new) {
          {
            MutexLock guard(cand_mu[v]);
            old_cand[v].push_back(e.id);
          }
          MutexLock guard(cand_mu[e.id]);
          old_cand[e.id].push_back(static_cast<idx_t>(v));
        }
      }
      lists[v].ClearNewFlags(sampled_new);
    });

    // Join: new x new and new x old.
    std::atomic<size_t> updates{0};
    ParallelFor(n, options.num_threads, [&](size_t v, size_t) {
      auto& nc = new_cand[v];
      auto& oc = old_cand[v];
      std::sort(nc.begin(), nc.end());
      nc.erase(std::unique(nc.begin(), nc.end()), nc.end());
      std::sort(oc.begin(), oc.end());
      oc.erase(std::unique(oc.begin(), oc.end()), oc.end());
      size_t local = 0;
      auto join = [&](idx_t a, idx_t b) {
        if (a == b) return;
        const float d = dist(data.Row(a), data.Row(b), dim);
        local += lists[a].Insert(d, b);
        local += lists[b].Insert(d, a);
      };
      for (size_t i = 0; i < nc.size(); ++i) {
        for (size_t j = i + 1; j < nc.size(); ++j) join(nc[i], nc[j]);
        for (const idx_t o : oc) join(nc[i], o);
      }
      updates.fetch_add(local, std::memory_order_relaxed);
    });

    if (updates.load() < min_updates) break;
  }

  FixedDegreeGraph graph(n, k);
  std::vector<idx_t> row;
  for (size_t v = 0; v < n; ++v) {
    row.clear();
    for (const Entry& e : lists[v].Snapshot()) row.push_back(e.id);
    graph.SetNeighbors(static_cast<idx_t>(v), row);
  }
  return graph;
}

}  // namespace song
