// Copyright 2026 The SONG-Repro Authors.
//
// Structural diagnostics for proximity graphs: degree distribution,
// reachability from the entry vertex, and memory accounting (Table III).

#ifndef SONG_GRAPH_GRAPH_STATS_H_
#define SONG_GRAPH_GRAPH_STATS_H_

#include <cstddef>

#include "core/types.h"
#include "graph/fixed_degree_graph.h"

namespace song {

struct GraphStats {
  size_t num_vertices = 0;
  size_t degree_capacity = 0;
  size_t min_degree = 0;
  size_t max_degree = 0;
  double avg_degree = 0.0;
  /// Vertices reachable from the entry point by directed BFS.
  size_t reachable = 0;
  /// Slot-array bytes (what the GPU would hold in global memory).
  size_t memory_bytes = 0;
};

/// Number of vertices reachable from `entry` following directed edges.
size_t CountReachable(const FixedDegreeGraph& graph, idx_t entry);

GraphStats ComputeGraphStats(const FixedDegreeGraph& graph, idx_t entry = 0);

}  // namespace song

#endif  // SONG_GRAPH_GRAPH_STATS_H_
