#include "graph/graph_stats.h"

#include <algorithm>
#include <vector>

namespace song {

size_t CountReachable(const FixedDegreeGraph& graph, idx_t entry) {
  const size_t n = graph.num_vertices();
  if (n == 0) return 0;
  std::vector<bool> seen(n, false);
  std::vector<idx_t> stack;
  stack.push_back(entry);
  seen[entry] = true;
  size_t count = 0;
  while (!stack.empty()) {
    const idx_t v = stack.back();
    stack.pop_back();
    ++count;
    const idx_t* row = graph.Row(v);
    for (size_t i = 0; i < graph.degree() && row[i] != kInvalidIdx; ++i) {
      const idx_t u = row[i];
      if (!seen[u]) {
        seen[u] = true;
        stack.push_back(u);
      }
    }
  }
  return count;
}

GraphStats ComputeGraphStats(const FixedDegreeGraph& graph, idx_t entry) {
  GraphStats stats;
  stats.num_vertices = graph.num_vertices();
  stats.degree_capacity = graph.degree();
  stats.memory_bytes = graph.MemoryBytes();
  if (stats.num_vertices == 0) return stats;
  size_t total = 0;
  size_t min_deg = graph.degree();
  size_t max_deg = 0;
  for (size_t v = 0; v < graph.num_vertices(); ++v) {
    const size_t d = graph.NeighborCount(static_cast<idx_t>(v));
    total += d;
    min_deg = std::min(min_deg, d);
    max_deg = std::max(max_deg, d);
  }
  stats.min_degree = min_deg;
  stats.max_degree = max_deg;
  stats.avg_degree =
      static_cast<double>(total) / static_cast<double>(stats.num_vertices);
  stats.reachable = CountReachable(graph, entry);
  return stats;
}

}  // namespace song
