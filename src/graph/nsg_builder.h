// Copyright 2026 The SONG-Repro Authors.
//
// Navigating Spreading-out Graph construction (Fu et al., VLDB 2019).
// Fig 12 of the SONG paper shows SONG running on an NSG index; this module
// builds that index: MRNG-style edge selection over search-collected
// candidate pools, a navigating (medoid) entry node, reverse-edge insertion,
// and a connectivity repair pass so every vertex is reachable from the
// navigating node.

#ifndef SONG_GRAPH_NSG_BUILDER_H_
#define SONG_GRAPH_NSG_BUILDER_H_

#include <cstddef>

#include "core/dataset.h"
#include "core/distance.h"
#include "graph/fixed_degree_graph.h"

namespace song {

struct NsgBuildOptions {
  /// Out-degree cap R of the final graph.
  size_t degree = 16;
  /// Width of the candidate-collecting search (NSG's L).
  size_t search_l = 64;
  /// kNN-graph degree used to seed candidate pools.
  size_t knn_k = 32;
  size_t num_threads = 0;
};

struct NsgIndex {
  FixedDegreeGraph graph;
  /// The medoid-like entry vertex every search starts from.
  idx_t navigating_node = 0;
};

class NsgBuilder {
 public:
  static NsgIndex Build(const Dataset& data, Metric metric,
                        const NsgBuildOptions& options = {});
};

}  // namespace song

#endif  // SONG_GRAPH_NSG_BUILDER_H_
