#include "graph/nsg_builder.h"

#include <algorithm>
#include <memory>
#include <queue>
#include <vector>

#include "core/sync.h"
#include "core/thread_pool.h"
#include "graph/graph_search.h"
#include "graph/knn_graph.h"

namespace song {

namespace {

// Search on the kNN graph from `entry`, returning ALL visited vertices with
// their distances (NSG collects the whole visited pool, not just the top-L).
std::vector<Neighbor> CollectPool(const Dataset& data, Metric metric,
                                  const FixedDegreeGraph& knn, idx_t entry,
                                  const float* query, size_t l,
                                  VisitedBuffer* visited) {
  const DistanceFunc dist = GetDistanceFunc(metric);
  const size_t dim = data.dim();
  visited->Resize(data.num());
  visited->NextEpoch();

  std::priority_queue<Neighbor, std::vector<Neighbor>, std::greater<>> q;
  std::priority_queue<Neighbor> top;
  std::vector<Neighbor> pool;

  const float entry_dist = dist(query, data.Row(entry), dim);
  visited->Set(entry);
  q.emplace(entry_dist, entry);
  top.emplace(entry_dist, entry);
  pool.emplace_back(entry_dist, entry);

  while (!q.empty()) {
    const Neighbor now = q.top();
    q.pop();
    if (top.size() >= l && now.dist > top.top().dist) break;
    const idx_t* row = knn.Row(now.id);
    for (size_t i = 0; i < knn.degree() && row[i] != kInvalidIdx; ++i) {
      const idx_t v = row[i];
      if (visited->TestAndSet(v)) continue;
      const float d = dist(query, data.Row(v), dim);
      pool.emplace_back(d, v);
      if (top.size() < l || d < top.top().dist) {
        q.emplace(d, v);
        top.emplace(d, v);
        if (top.size() > l) top.pop();
      }
    }
  }
  return pool;
}

// MRNG edge selection: scan candidates ascending by distance to p; keep c if
// no already-kept r is closer to c than c is to p (the "occlusion" rule).
std::vector<idx_t> MrngSelect(const Dataset& data, Metric metric, idx_t p,
                              std::vector<Neighbor>& pool, size_t degree) {
  const DistanceFunc dist = GetDistanceFunc(metric);
  const size_t dim = data.dim();
  std::sort(pool.begin(), pool.end());
  std::vector<idx_t> selected;
  selected.reserve(degree);
  for (const Neighbor& cand : pool) {
    if (cand.id == p) continue;
    if (selected.size() >= degree) break;
    bool occluded = false;
    for (const idx_t r : selected) {
      if (r == cand.id) {
        occluded = true;
        break;
      }
      const float d_rc = dist(data.Row(r), data.Row(cand.id), dim);
      if (d_rc < cand.dist) {
        occluded = true;
        break;
      }
    }
    if (!occluded) selected.push_back(cand.id);
  }
  return selected;
}

}  // namespace

NsgIndex NsgBuilder::Build(const Dataset& data, Metric metric,
                           const NsgBuildOptions& options) {
  const size_t n = data.num();
  SONG_CHECK_MSG(n > 0, "cannot build NSG over an empty dataset");
  const DistanceFunc dist = GetDistanceFunc(metric);
  const size_t dim = data.dim();

  const FixedDegreeGraph knn = BuildApproxKnnGraph(
      data, metric, options.knn_k, /*ef=*/options.search_l * 2,
      options.num_threads);

  // Navigating node: the point whose vector is closest to the dataset mean
  // (approximate medoid), found by searching the kNN graph with the mean.
  std::vector<float> mean(dim, 0.0f);
  for (size_t i = 0; i < n; ++i) {
    const float* row = data.Row(static_cast<idx_t>(i));
    for (size_t d = 0; d < dim; ++d) mean[d] += row[d];
  }
  for (size_t d = 0; d < dim; ++d) mean[d] /= static_cast<float>(n);
  VisitedBuffer medoid_visited;
  const std::vector<Neighbor> medoid_result =
      GraphSearch(data, metric, knn, /*entry=*/0, mean.data(),
                  options.search_l, /*k=*/1, &medoid_visited);
  const idx_t navigating = medoid_result.empty() ? 0 : medoid_result[0].id;

  // Pass 1: MRNG selection per vertex over (search pool ∪ kNN row).
  std::vector<std::vector<idx_t>> adjacency(n);
  ParallelFor(n, options.num_threads, [&](size_t v, size_t) {
    thread_local VisitedBuffer visited;
    const idx_t p = static_cast<idx_t>(v);
    std::vector<Neighbor> pool = CollectPool(
        data, metric, knn, navigating, data.Row(p), options.search_l,
        &visited);
    const idx_t* row = knn.Row(p);
    for (size_t i = 0; i < knn.degree() && row[i] != kInvalidIdx; ++i) {
      pool.emplace_back(dist(data.Row(p), data.Row(row[i]), dim), row[i]);
    }
    std::sort(pool.begin(), pool.end());
    pool.erase(std::unique(pool.begin(), pool.end(),
                           [](const Neighbor& a, const Neighbor& b) {
                             return a.id == b.id;
                           }),
               pool.end());
    adjacency[v] = MrngSelect(data, metric, p, pool, options.degree);
  });

  // Pass 2: reverse edges ("InterInsert"): p is offered to each selected
  // neighbor; overflowing rows are re-selected with the occlusion rule.
  std::unique_ptr<Mutex[]> locks(std::make_unique<Mutex[]>(n));
  ParallelFor(n, options.num_threads, [&](size_t v, size_t) {
    const idx_t p = static_cast<idx_t>(v);
    // Copy under lock: adjacency[p] may be rewritten by other workers.
    std::vector<idx_t> targets;
    {
      MutexLock guard(locks[p]);
      targets = adjacency[p];
    }
    for (const idx_t q : targets) {
      MutexLock guard(locks[q]);
      auto& row = adjacency[q];
      if (std::find(row.begin(), row.end(), p) != row.end()) continue;
      if (row.size() < options.degree) {
        row.push_back(p);
        continue;
      }
      std::vector<Neighbor> pool;
      pool.reserve(row.size() + 1);
      for (const idx_t r : row) {
        pool.emplace_back(dist(data.Row(q), data.Row(r), dim), r);
      }
      pool.emplace_back(dist(data.Row(q), data.Row(p), dim), p);
      row = MrngSelect(data, metric, q, pool, options.degree);
      if (row.empty()) row.push_back(pool[0].id);  // never leave q isolated
    }
  });

  FixedDegreeGraph graph = FixedDegreeGraph::FromAdjacency(adjacency,
                                                           options.degree);

  // Pass 3: connectivity repair. BFS from the navigating node; every
  // unreachable vertex gets an edge from its nearest reachable vertex.
  for (int attempt = 0; attempt < 8; ++attempt) {
    std::vector<bool> seen(n, false);
    std::vector<idx_t> stack{navigating};
    seen[navigating] = true;
    size_t reached = 0;
    while (!stack.empty()) {
      const idx_t v = stack.back();
      stack.pop_back();
      ++reached;
      const idx_t* row = graph.Row(v);
      for (size_t i = 0; i < graph.degree() && row[i] != kInvalidIdx; ++i) {
        if (!seen[row[i]]) {
          seen[row[i]] = true;
          stack.push_back(row[i]);
        }
      }
    }
    if (reached == n) break;
    VisitedBuffer visited;
    for (size_t v = 0; v < n; ++v) {
      if (seen[v]) continue;
      // Nearest reachable vertex to v via a search on the current graph
      // (results are reachable by construction: traversal starts at the
      // navigating node).
      const std::vector<Neighbor> near =
          GraphSearch(data, metric, graph, navigating,
                      data.Row(static_cast<idx_t>(v)), options.search_l,
                      options.search_l, &visited);
      bool linked = false;
      for (const Neighbor& cand : near) {
        if (graph.AddNeighbor(cand.id, static_cast<idx_t>(v))) {
          linked = true;
          break;
        }
      }
      if (!linked && !near.empty()) {
        // All candidate rows full: evict the farthest slot of the nearest.
        std::vector<idx_t> row = graph.Neighbors(near[0].id);
        row.back() = static_cast<idx_t>(v);
        graph.SetNeighbors(near[0].id, row);
      }
    }
  }

  return NsgIndex{std::move(graph), navigating};
}

}  // namespace song
