#include "graph/knn_graph.h"

#include <algorithm>

#include "baselines/flat_index.h"
#include "core/thread_pool.h"
#include "graph/graph_search.h"
#include "graph/nsw_builder.h"

namespace song {

FixedDegreeGraph BuildExactKnnGraph(const Dataset& data, Metric metric,
                                    size_t k, size_t num_threads) {
  const size_t n = data.num();
  FixedDegreeGraph g(n, k);
  FlatIndex flat(&data, metric);
  ParallelFor(n, num_threads, [&](size_t v, size_t) {
    // k+1 then drop self (self distance is minimal for L2/cosine; for inner
    // product self is not guaranteed first, so filter by id).
    std::vector<Neighbor> nn =
        flat.Search(data.Row(static_cast<idx_t>(v)), k + 1);
    std::vector<idx_t> ids;
    ids.reserve(k);
    for (const Neighbor& nb : nn) {
      if (nb.id == static_cast<idx_t>(v)) continue;
      ids.push_back(nb.id);
      if (ids.size() == k) break;
    }
    g.SetNeighbors(static_cast<idx_t>(v), ids);
  });
  return g;
}

FixedDegreeGraph BuildApproxKnnGraph(const Dataset& data, Metric metric,
                                     size_t k, size_t ef,
                                     size_t num_threads) {
  NswBuildOptions nsw_opts;
  nsw_opts.degree = std::max<size_t>(16, k);
  nsw_opts.ef_construction = std::max<size_t>(ef, 2 * k);
  nsw_opts.num_threads = num_threads;
  const FixedDegreeGraph nsw = NswBuilder::Build(data, metric, nsw_opts);

  const size_t n = data.num();
  FixedDegreeGraph g(n, k);
  ParallelFor(n, num_threads, [&](size_t v, size_t) {
    thread_local VisitedBuffer visited;
    std::vector<Neighbor> nn =
        GraphSearch(data, metric, nsw, /*entry=*/0,
                    data.Row(static_cast<idx_t>(v)),
                    std::max(ef, k + 1), k + 1, &visited);
    std::vector<idx_t> ids;
    ids.reserve(k);
    for (const Neighbor& nb : nn) {
      if (nb.id == static_cast<idx_t>(v)) continue;
      ids.push_back(nb.id);
      if (ids.size() == k) break;
    }
    g.SetNeighbors(static_cast<idx_t>(v), ids);
  });
  return g;
}

}  // namespace song
