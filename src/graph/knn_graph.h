// Copyright 2026 The SONG-Repro Authors.
//
// Approximate and exact k-nearest-neighbor graphs. The approximate variant
// (NSW-assisted, EFANNA-style) is the input to the NSG builder; the exact
// variant is used by tests on small inputs.

#ifndef SONG_GRAPH_KNN_GRAPH_H_
#define SONG_GRAPH_KNN_GRAPH_H_

#include <cstddef>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"
#include "graph/fixed_degree_graph.h"

namespace song {

/// Exact kNN graph (O(n^2) — tests/small inputs only). Self edges excluded.
FixedDegreeGraph BuildExactKnnGraph(const Dataset& data, Metric metric,
                                    size_t k, size_t num_threads = 0);

/// Approximate kNN graph: builds an NSW index and runs one search per point.
/// `ef` controls accuracy of the per-point search.
FixedDegreeGraph BuildApproxKnnGraph(const Dataset& data, Metric metric,
                                     size_t k, size_t ef = 128,
                                     size_t num_threads = 0);

}  // namespace song

#endif  // SONG_GRAPH_KNN_GRAPH_H_
