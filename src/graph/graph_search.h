// Copyright 2026 The SONG-Repro Authors.
//
// Reference CPU implementation of the proximity-graph search (paper
// Algorithm 1, the heuristic best-first search shared by NSW / HNSW / NSG).
// This is the single-thread baseline the SONG pipeline is checked against,
// and also the search primitive used inside the graph builders.

#ifndef SONG_GRAPH_GRAPH_SEARCH_H_
#define SONG_GRAPH_GRAPH_SEARCH_H_

#include <cstddef>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/types.h"
#include "graph/fixed_degree_graph.h"

namespace song {

/// Epoch-stamped visited set: O(1) clear between queries without re-zeroing.
class VisitedBuffer {
 public:
  void Resize(size_t n) {
    if (stamps_.size() < n) stamps_.assign(n, 0);
  }

  /// Starts a fresh query.
  void NextEpoch() {
    if (++epoch_ == 0) {  // wrapped: re-zero once every 2^32 queries
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
  }

  bool Test(idx_t v) const { return stamps_[v] == epoch_; }
  void Set(idx_t v) { stamps_[v] = epoch_; }
  bool TestAndSet(idx_t v) {
    if (stamps_[v] == epoch_) return true;
    stamps_[v] = epoch_;
    return false;
  }

 private:
  std::vector<uint32_t> stamps_;
  uint32_t epoch_ = 0;
};

/// Counters reported by the reference search (used in tests and to sanity
/// check the SONG pipeline's own instrumentation).
struct GraphSearchStats {
  size_t distance_computations = 0;
  size_t iterations = 0;
  size_t hops = 0;  // vertices expanded
};

/// Best-first search on `graph` for `query`, exploring with a frontier of
/// width `ef` (the paper's "priority queue size") and returning the `k`
/// closest visited vertices, ascending by distance.
///
/// `visited` must outlive the call and is reset internally; passing it in
/// lets callers reuse the buffer across queries.
std::vector<Neighbor> GraphSearch(const Dataset& data, Metric metric,
                                  const FixedDegreeGraph& graph, idx_t entry,
                                  const float* query, size_t ef, size_t k,
                                  VisitedBuffer* visited,
                                  GraphSearchStats* stats = nullptr);

}  // namespace song

#endif  // SONG_GRAPH_GRAPH_SEARCH_H_
