#include "graph/graph_search.h"

#include <algorithm>
#include <queue>

namespace song {

std::vector<Neighbor> GraphSearch(const Dataset& data, Metric metric,
                                  const FixedDegreeGraph& graph, idx_t entry,
                                  const float* query, size_t ef, size_t k,
                                  VisitedBuffer* visited,
                                  GraphSearchStats* stats) {
  SONG_DCHECK(visited != nullptr);
  const DistanceFunc dist = GetDistanceFunc(metric);
  const size_t dim = data.dim();
  ef = std::max(ef, k);

  visited->Resize(data.num());
  visited->NextEpoch();

  // q: min-heap frontier; top: max-heap of the current ef best results.
  std::priority_queue<Neighbor, std::vector<Neighbor>, std::greater<>> q;
  std::priority_queue<Neighbor> top;

  const float entry_dist = dist(query, data.Row(entry), dim);
  if (stats != nullptr) ++stats->distance_computations;
  visited->Set(entry);
  q.emplace(entry_dist, entry);
  top.emplace(entry_dist, entry);

  while (!q.empty()) {
    const Neighbor now = q.top();
    q.pop();
    if (stats != nullptr) ++stats->iterations;
    if (top.size() >= ef && now.dist > top.top().dist) break;
    if (stats != nullptr) ++stats->hops;

    const idx_t* row = graph.Row(now.id);
    const size_t degree = graph.degree();
    for (size_t i = 0; i < degree && row[i] != kInvalidIdx; ++i) {
      const idx_t v = row[i];
      if (visited->TestAndSet(v)) continue;
      const float d = dist(query, data.Row(v), dim);
      if (stats != nullptr) ++stats->distance_computations;
      if (top.size() < ef || d < top.top().dist) {
        q.emplace(d, v);
        top.emplace(d, v);
        if (top.size() > ef) top.pop();
      }
    }
  }

  std::vector<Neighbor> out(top.size());
  for (size_t i = top.size(); i-- > 0;) {
    out[i] = top.top();
    top.pop();
  }
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace song
