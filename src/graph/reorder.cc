#include "graph/reorder.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "core/logging.h"

namespace song {

namespace {

GraphPermutation IdentityPermutation(size_t n) {
  GraphPermutation perm;
  perm.old_to_new.resize(n);
  perm.new_to_old.resize(n);
  std::iota(perm.old_to_new.begin(), perm.old_to_new.end(), idx_t{0});
  perm.new_to_old = perm.old_to_new;
  return perm;
}

/// BFS from `entry`; unreached vertices (disconnected components) keep
/// their relative old-id order at the end of the numbering.
std::vector<idx_t> BfsOrder(const FixedDegreeGraph& graph, idx_t entry) {
  const size_t n = graph.num_vertices();
  const size_t degree = graph.degree();
  std::vector<idx_t> order;
  order.reserve(n);
  std::vector<bool> seen(n, false);
  std::deque<idx_t> frontier;
  frontier.push_back(entry);
  seen[entry] = true;
  while (!frontier.empty()) {
    const idx_t v = frontier.front();
    frontier.pop_front();
    order.push_back(v);
    const idx_t* row = graph.Row(v);
    for (size_t i = 0; i < degree && row[i] != kInvalidIdx; ++i) {
      const idx_t u = row[i];
      if (!seen[u]) {
        seen[u] = true;
        frontier.push_back(u);
      }
    }
  }
  for (idx_t v = 0; v < static_cast<idx_t>(n); ++v) {
    if (!seen[v]) order.push_back(v);
  }
  return order;
}

std::vector<idx_t> DegreeDescendingOrder(const FixedDegreeGraph& graph) {
  const size_t n = graph.num_vertices();
  std::vector<idx_t> order(n);
  std::iota(order.begin(), order.end(), idx_t{0});
  std::vector<size_t> degrees(n);
  for (size_t v = 0; v < n; ++v) {
    degrees[v] = graph.NeighborCount(static_cast<idx_t>(v));
  }
  std::stable_sort(order.begin(), order.end(), [&](idx_t a, idx_t b) {
    return degrees[a] > degrees[b];  // stable: ties keep old-id order
  });
  return order;
}

}  // namespace

GraphPermutation ComputeReorder(const FixedDegreeGraph& graph,
                                GraphReorder strategy, idx_t entry) {
  const size_t n = graph.num_vertices();
  if (n == 0 || strategy == GraphReorder::kNone) {
    return IdentityPermutation(n);
  }
  SONG_CHECK(entry < n);
  std::vector<idx_t> order;  // order[new_id] = old_id
  switch (strategy) {
    case GraphReorder::kBfs:
      order = BfsOrder(graph, entry);
      break;
    case GraphReorder::kDegreeDescending:
      order = DegreeDescendingOrder(graph);
      break;
    case GraphReorder::kNone:
      break;  // handled above
  }
  SONG_CHECK(order.size() == n);
  GraphPermutation perm;
  perm.new_to_old = std::move(order);
  perm.old_to_new.resize(n);
  for (size_t new_id = 0; new_id < n; ++new_id) {
    perm.old_to_new[perm.new_to_old[new_id]] = static_cast<idx_t>(new_id);
  }
  return perm;
}

FixedDegreeGraph PermuteGraph(const FixedDegreeGraph& graph,
                              const GraphPermutation& perm) {
  const size_t n = graph.num_vertices();
  SONG_CHECK(perm.size() == n);
  FixedDegreeGraph out(n, graph.degree());
  std::vector<idx_t> row_buf;
  for (idx_t old_v = 0; old_v < static_cast<idx_t>(n); ++old_v) {
    row_buf = graph.Neighbors(old_v);
    for (idx_t& u : row_buf) u = perm.old_to_new[u];
    out.SetNeighbors(perm.old_to_new[old_v], row_buf);
  }
  return out;
}

CsrGraph PermuteCsr(const CsrGraph& graph, const GraphPermutation& perm) {
  const size_t n = graph.num_vertices();
  SONG_CHECK(perm.size() == n);
  std::vector<std::vector<idx_t>> adjacency(n);
  for (idx_t old_v = 0; old_v < static_cast<idx_t>(n); ++old_v) {
    size_t count = 0;
    const idx_t* neighbors = graph.Neighbors(old_v, &count);
    std::vector<idx_t>& row = adjacency[perm.old_to_new[old_v]];
    row.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      row.push_back(perm.old_to_new[neighbors[i]]);
    }
  }
  return CsrGraph::FromAdjacency(adjacency);
}

Dataset PermuteDataset(const Dataset& data, const GraphPermutation& perm) {
  SONG_CHECK(perm.size() == data.num());
  Dataset out(data.num(), data.dim());
  for (idx_t old_v = 0; old_v < static_cast<idx_t>(data.num()); ++old_v) {
    out.SetRow(perm.old_to_new[old_v], data.Row(old_v));
  }
  return out;
}

ReorderedIndex ReorderIndex(const Dataset& data, const FixedDegreeGraph& graph,
                            GraphReorder strategy, idx_t entry) {
  SONG_CHECK_MSG(data.num() == graph.num_vertices(),
                 "dataset / graph size mismatch");
  ReorderedIndex out;
  out.perm = ComputeReorder(graph, strategy, entry);
  out.data = PermuteDataset(data, out.perm);
  out.graph = PermuteGraph(graph, out.perm);
  out.entry = out.perm.old_to_new.empty() ? entry : out.perm.old_to_new[entry];
  return out;
}

}  // namespace song
