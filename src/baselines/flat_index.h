// Copyright 2026 The SONG-Repro Authors.
//
// Exact brute-force index. Serves two roles: ground truth for recall
// evaluation, and the "no index" reference point.

#ifndef SONG_BASELINES_FLAT_INDEX_H_
#define SONG_BASELINES_FLAT_INDEX_H_

#include <cstddef>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/types.h"

namespace song {

class FlatIndex {
 public:
  /// `data` must outlive the index.
  FlatIndex(const Dataset* data, Metric metric);

  /// Exact top-k for one query, ascending by distance.
  std::vector<Neighbor> Search(const float* query, size_t k) const;

  /// Exact top-k for a batch, parallelized over queries.
  std::vector<std::vector<Neighbor>> BatchSearch(const Dataset& queries,
                                                 size_t k,
                                                 size_t num_threads = 0) const;

  /// Id-only convenience used by recall evaluation.
  static std::vector<std::vector<idx_t>> Ids(
      const std::vector<std::vector<Neighbor>>& results);

 private:
  const Dataset* data_;
  Metric metric_;
  BatchDistance batch_dist_;  ///< fused contiguous-range scan kernel
};

}  // namespace song

#endif  // SONG_BASELINES_FLAT_INDEX_H_
