// Copyright 2026 The SONG-Repro Authors.
//
// Lloyd's k-means with k-means++ style seeding. Substrate for the IVFPQ
// baseline: the coarse quantizer and every product-quantizer codebook are
// trained with this.

#ifndef SONG_BASELINES_KMEANS_H_
#define SONG_BASELINES_KMEANS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/types.h"

namespace song {

struct KMeansOptions {
  size_t num_clusters = 16;
  size_t max_iterations = 15;
  uint64_t seed = 7;
  size_t num_threads = 0;
};

struct KMeansResult {
  /// num_clusters x dim centroid matrix.
  Dataset centroids;
  /// Per-input-row cluster id.
  std::vector<idx_t> assignments;
  /// Final mean squared distance to the assigned centroid.
  double inertia = 0.0;
  size_t iterations_run = 0;
};

/// Runs k-means (L2) over `data`. If data.num() < num_clusters the centroid
/// count is reduced to data.num().
KMeansResult RunKMeans(const Dataset& data, const KMeansOptions& options);

/// Assigns each row of `points` to the nearest centroid (L2).
std::vector<idx_t> AssignToCentroids(const Dataset& points,
                                     const Dataset& centroids,
                                     size_t num_threads = 0);

}  // namespace song

#endif  // SONG_BASELINES_KMEANS_H_
