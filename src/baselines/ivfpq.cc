#include "baselines/ivfpq.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <queue>

#include "baselines/kmeans.h"
#include "core/sync.h"
#include "core/thread_pool.h"

namespace song {

IvfPqIndex::IvfPqIndex(const Dataset* data, Metric metric,
                       const IvfPqOptions& options)
    : data_(data), metric_(metric), options_(options) {
  SONG_CHECK(data != nullptr);
  SONG_CHECK_MSG(metric != Metric::kCosine,
                 "IVFPQ: normalize rows and use kInnerProduct for cosine");
  const size_t n = data_->num();
  const size_t dim = data_->dim();
  options_.nlist = std::min(options_.nlist, n);

  // Coarse quantizer, trained on a sample (Faiss-style: ~40 points per
  // centroid suffice) then applied to the full set.
  KMeansOptions km;
  km.num_clusters = options_.nlist;
  km.max_iterations = options_.train_iterations;
  km.seed = options_.seed;
  km.num_threads = options_.num_threads;
  const size_t train_n = std::min(n, options_.nlist * 40);
  KMeansResult coarse;
  if (train_n < n) {
    Dataset sample(train_n, dim);
    const size_t stride = n / train_n;
    for (size_t i = 0; i < train_n; ++i) {
      sample.SetRow(static_cast<idx_t>(i),
                    data_->Row(static_cast<idx_t>(i * stride)));
    }
    coarse = RunKMeans(sample, km);
    coarse.assignments =
        AssignToCentroids(*data_, coarse.centroids, options_.num_threads);
  } else {
    coarse = RunKMeans(*data_, km);
  }
  coarse_centroids_ = std::move(coarse.centroids);
  options_.nlist = coarse_centroids_.num();

  const bool residual = options_.by_residual && metric_ == Metric::kL2;

  // PQ training set: residuals (or raw vectors).
  Dataset train(n, dim);
  std::vector<float> tmp(dim);
  for (size_t i = 0; i < n; ++i) {
    const float* row = data_->Row(static_cast<idx_t>(i));
    if (residual) {
      const float* c = coarse_centroids_.Row(coarse.assignments[i]);
      for (size_t d = 0; d < dim; ++d) tmp[d] = row[d] - c[d];
      train.SetRow(static_cast<idx_t>(i), tmp.data());
    } else {
      train.SetRow(static_cast<idx_t>(i), row);
    }
  }
  PqOptions pq_opts;
  pq_opts.num_subquantizers = options_.pq_m;
  pq_opts.train_iterations = options_.train_iterations;
  pq_opts.seed = options_.seed + 17;
  pq_opts.num_threads = options_.num_threads;
  pq_.Train(train, pq_opts);

  // Encode into inverted lists.
  list_ids_.assign(options_.nlist, {});
  list_codes_.assign(options_.nlist, {});
  const size_t code_bytes = pq_.code_bytes();
  std::vector<uint8_t> code(code_bytes);
  for (size_t i = 0; i < n; ++i) {
    const idx_t list = coarse.assignments[i];
    pq_.Encode(train.Row(static_cast<idx_t>(i)), code.data());
    list_ids_[list].push_back(static_cast<idx_t>(i));
    list_codes_[list].insert(list_codes_[list].end(), code.begin(),
                             code.end());
  }
}

std::vector<Neighbor> IvfPqIndex::Search(const float* query, size_t k,
                                         size_t nprobe,
                                         IvfPqSearchStats* stats) const {
  const size_t dim = data_->dim();
  nprobe = std::max<size_t>(1, std::min(nprobe, options_.nlist));
  IvfPqSearchStats local;
  local.queries = 1;
  local.coarse_distances = options_.nlist;
  const bool residual = options_.by_residual && metric_ == Metric::kL2;

  // Rank coarse lists.
  std::vector<Neighbor> lists(options_.nlist);
  for (size_t c = 0; c < options_.nlist; ++c) {
    const float d = ComputeDistance(
        metric_, query, coarse_centroids_.Row(static_cast<idx_t>(c)), dim);
    lists[c] = Neighbor(d, static_cast<idx_t>(c));
  }
  std::partial_sort(lists.begin(), lists.begin() + nprobe, lists.end());

  const size_t code_bytes = pq_.code_bytes();
  std::vector<float> table(code_bytes * ProductQuantizer::kCodebookSize);
  std::vector<float> shifted(dim);
  std::priority_queue<Neighbor> heap;

  for (size_t p = 0; p < nprobe; ++p) {
    const idx_t list = lists[p].id;
    const float* table_query = query;
    float list_bias = 0.0f;
    if (residual) {
      // d(q, c + r) decomposes as ADC on (q - c) against residual codes.
      const float* centroid = coarse_centroids_.Row(list);
      for (size_t d = 0; d < dim; ++d) shifted[d] = query[d] - centroid[d];
      table_query = shifted.data();
    }
    pq_.ComputeAdcTable(table_query, metric_, table.data());
    ++local.lists_probed;
    local.table_entries += code_bytes * ProductQuantizer::kCodebookSize;
    if (!residual && metric_ == Metric::kInnerProduct) {
      list_bias = 0.0f;  // raw IP codes need no bias
    }
    const auto& ids = list_ids_[list];
    local.codes_scanned += ids.size();
    const auto& codes = list_codes_[list];
    for (size_t i = 0; i < ids.size(); ++i) {
      const float d =
          pq_.AdcDistance(table.data(), codes.data() + i * code_bytes) +
          list_bias;
      const Neighbor cand(d, ids[i]);
      if (heap.size() < k) {
        heap.push(cand);
      } else if (cand < heap.top()) {
        heap.pop();
        heap.push(cand);
      }
    }
  }

  std::vector<Neighbor> out(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[i] = heap.top();
    heap.pop();
  }
  if (stats != nullptr) stats->Add(local);
  return out;
}

std::vector<std::vector<Neighbor>> IvfPqIndex::BatchSearch(
    const Dataset& queries, size_t k, size_t nprobe, size_t num_threads,
    IvfPqSearchStats* stats) const {
  std::vector<std::vector<Neighbor>> results(queries.num());
  Mutex stats_mu;
  ParallelFor(queries.num(), num_threads, [&](size_t q, size_t) {
    IvfPqSearchStats local;
    results[q] = Search(queries.Row(static_cast<idx_t>(q)), k, nprobe,
                        stats != nullptr ? &local : nullptr);
    if (stats != nullptr) {
      MutexLock guard(stats_mu);
      stats->Add(local);
    }
  });
  return results;
}

namespace {
constexpr char kIvfMagic[4] = {'S', 'N', 'G', 'Q'};
}  // namespace

Status IvfPqIndex::Save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const uint64_t n64 = data_->num();
  const uint64_t nlist64 = options_.nlist;
  const uint64_t pqm64 = options_.pq_m;
  const uint8_t residual = options_.by_residual ? 1 : 0;
  const uint64_t cdim = coarse_centroids_.dim();
  bool ok = std::fwrite(kIvfMagic, 1, 4, f) == 4 &&
            std::fwrite(&n64, 8, 1, f) == 1 &&
            std::fwrite(&nlist64, 8, 1, f) == 1 &&
            std::fwrite(&pqm64, 8, 1, f) == 1 &&
            std::fwrite(&residual, 1, 1, f) == 1 &&
            std::fwrite(&cdim, 8, 1, f) == 1;
  for (size_t c = 0; ok && c < coarse_centroids_.num(); ++c) {
    ok = std::fwrite(coarse_centroids_.Row(static_cast<idx_t>(c)),
                     sizeof(float), cdim, f) == cdim;
  }
  if (ok) ok = pq_.SaveTo(f).ok();
  for (size_t l = 0; ok && l < list_ids_.size(); ++l) {
    const uint64_t sz = list_ids_[l].size();
    ok = std::fwrite(&sz, 8, 1, f) == 1;
    ok = ok && (sz == 0 || std::fwrite(list_ids_[l].data(), sizeof(idx_t),
                                       sz, f) == sz);
    const uint64_t cb = list_codes_[l].size();
    ok = ok && std::fwrite(&cb, 8, 1, f) == 1;
    ok = ok && (cb == 0 ||
                std::fwrite(list_codes_[l].data(), 1, cb, f) == cb);
  }
  std::fclose(f);
  return ok ? Status::OK() : Status::IOError("short write " + path);
}

StatusOr<IvfPqIndex> IvfPqIndex::Load(const std::string& path,
                                      const Dataset* data, Metric metric) {
  SONG_CHECK(data != nullptr);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  char magic[4];
  uint64_t n64 = 0, nlist64 = 0, pqm64 = 0, cdim = 0;
  uint8_t residual = 0;
  bool ok = std::fread(magic, 1, 4, f) == 4 &&
            std::memcmp(magic, kIvfMagic, 4) == 0 &&
            std::fread(&n64, 8, 1, f) == 1 &&
            std::fread(&nlist64, 8, 1, f) == 1 &&
            std::fread(&pqm64, 8, 1, f) == 1 &&
            std::fread(&residual, 1, 1, f) == 1 &&
            std::fread(&cdim, 8, 1, f) == 1;
  if (!ok || n64 != data->num() || cdim != data->dim() || nlist64 == 0) {
    std::fclose(f);
    return Status::IOError("bad/stale IVFPQ index: " + path);
  }
  IvfPqIndex index(LoadTag{}, data, metric);
  index.options_.nlist = static_cast<size_t>(nlist64);
  index.options_.pq_m = static_cast<size_t>(pqm64);
  index.options_.by_residual = residual != 0;
  index.coarse_centroids_ = Dataset(nlist64, cdim);
  std::vector<float> row(cdim);
  for (size_t c = 0; ok && c < nlist64; ++c) {
    ok = std::fread(row.data(), sizeof(float), cdim, f) == cdim;
    if (ok) index.coarse_centroids_.SetRow(static_cast<idx_t>(c), row.data());
  }
  if (ok) ok = index.pq_.LoadFrom(f).ok();
  index.list_ids_.resize(nlist64);
  index.list_codes_.resize(nlist64);
  for (size_t l = 0; ok && l < nlist64; ++l) {
    uint64_t sz = 0, cb = 0;
    ok = std::fread(&sz, 8, 1, f) == 1;
    if (ok) {
      index.list_ids_[l].resize(sz);
      ok = sz == 0 || std::fread(index.list_ids_[l].data(), sizeof(idx_t),
                                 sz, f) == sz;
    }
    ok = ok && std::fread(&cb, 8, 1, f) == 1;
    if (ok) {
      index.list_codes_[l].resize(cb);
      ok = cb == 0 ||
           std::fread(index.list_codes_[l].data(), 1, cb, f) == cb;
    }
  }
  std::fclose(f);
  if (!ok) return Status::IOError("short read " + path);
  return index;
}

size_t IvfPqIndex::MemoryBytes() const {
  size_t bytes = coarse_centroids_.PayloadBytes() + pq_.MemoryBytes();
  for (size_t l = 0; l < list_ids_.size(); ++l) {
    bytes += list_ids_[l].size() * sizeof(idx_t) + list_codes_[l].size();
  }
  return bytes;
}

void RecordIvfPqSearchStats(const IvfPqSearchStats& stats,
                            obs::MetricsRegistry* registry,
                            const std::string& prefix) {
  if (registry == nullptr) return;
  registry->GetCounter(prefix + ".queries").Increment(stats.queries);
  registry->GetCounter(prefix + ".lists_probed").Increment(stats.lists_probed);
  registry->GetCounter(prefix + ".codes_scanned")
      .Increment(stats.codes_scanned);
  registry->GetCounter(prefix + ".table_entries")
      .Increment(stats.table_entries);
  registry->GetCounter(prefix + ".coarse_distances")
      .Increment(stats.coarse_distances);
}

}  // namespace song
