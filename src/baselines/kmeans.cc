#include "baselines/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/distance.h"
#include "core/random.h"
#include "core/thread_pool.h"

namespace song {

namespace {

// k-means++ seeding: each next seed is drawn proportionally to squared
// distance from the nearest already-chosen seed.
Dataset SeedCentroids(const Dataset& data, size_t k, uint64_t seed) {
  const size_t n = data.num();
  const size_t dim = data.dim();
  RandomEngine rng(seed);
  Dataset centroids(k, dim);

  std::vector<float> best_d2(n, std::numeric_limits<float>::max());
  idx_t first = static_cast<idx_t>(rng.NextUint(n));
  centroids.SetRow(0, data.Row(first));
  for (size_t c = 1; c < k; ++c) {
    double total = 0.0;
    const float* prev = centroids.Row(static_cast<idx_t>(c - 1));
    for (size_t i = 0; i < n; ++i) {
      const float d2 = L2Sqr(prev, data.Row(static_cast<idx_t>(i)), dim);
      best_d2[i] = std::min(best_d2[i], d2);
      total += best_d2[i];
    }
    idx_t chosen = static_cast<idx_t>(rng.NextUint(n));
    if (total > 0.0) {
      double target = rng.NextUniform() * total;
      for (size_t i = 0; i < n; ++i) {
        target -= best_d2[i];
        if (target <= 0.0) {
          chosen = static_cast<idx_t>(i);
          break;
        }
      }
    }
    centroids.SetRow(static_cast<idx_t>(c), data.Row(chosen));
  }
  return centroids;
}

}  // namespace

std::vector<idx_t> AssignToCentroids(const Dataset& points,
                                     const Dataset& centroids,
                                     size_t num_threads) {
  const size_t dim = points.dim();
  std::vector<idx_t> assignments(points.num());
  ParallelFor(points.num(), num_threads, [&](size_t i, size_t) {
    const float* p = points.Row(static_cast<idx_t>(i));
    float best = std::numeric_limits<float>::max();
    idx_t best_c = 0;
    for (size_t c = 0; c < centroids.num(); ++c) {
      const float d = L2Sqr(p, centroids.Row(static_cast<idx_t>(c)), dim);
      if (d < best) {
        best = d;
        best_c = static_cast<idx_t>(c);
      }
    }
    assignments[i] = best_c;
  });
  return assignments;
}

KMeansResult RunKMeans(const Dataset& data, const KMeansOptions& options) {
  const size_t n = data.num();
  const size_t dim = data.dim();
  const size_t k = std::min(options.num_clusters, n);
  SONG_CHECK_MSG(k > 0, "k-means needs at least one cluster and one point");

  KMeansResult result;
  result.centroids = SeedCentroids(data, k, options.seed);

  std::vector<double> sums(k * dim);
  std::vector<size_t> counts(k);
  RandomEngine rng(options.seed ^ 0xabcdef);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.assignments =
        AssignToCentroids(data, result.centroids, options.num_threads);
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    double inertia = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const idx_t c = result.assignments[i];
      const float* row = data.Row(static_cast<idx_t>(i));
      double* sum = &sums[static_cast<size_t>(c) * dim];
      for (size_t d = 0; d < dim; ++d) sum[d] += row[d];
      ++counts[c];
      inertia += L2Sqr(row, result.centroids.Row(c), dim);
    }
    bool moved = false;
    std::vector<float> centroid(dim);
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Dead cluster: respawn on a random point.
        const idx_t pick = static_cast<idx_t>(rng.NextUint(n));
        result.centroids.SetRow(static_cast<idx_t>(c), data.Row(pick));
        moved = true;
        continue;
      }
      const double* sum = &sums[c * dim];
      const float* old = result.centroids.Row(static_cast<idx_t>(c));
      for (size_t d = 0; d < dim; ++d) {
        centroid[d] =
            static_cast<float>(sum[d] / static_cast<double>(counts[c]));
      }
      if (!std::equal(centroid.begin(), centroid.end(), old)) moved = true;
      result.centroids.SetRow(static_cast<idx_t>(c), centroid.data());
    }
    result.inertia = inertia / static_cast<double>(n);
    result.iterations_run = iter + 1;
    if (!moved) break;
  }
  result.assignments =
      AssignToCentroids(data, result.centroids, options.num_threads);
  return result;
}

}  // namespace song
