#include "baselines/hnsw.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <queue>

#include "core/random.h"
#include "core/sync.h"
#include "core/thread_pool.h"

namespace song {

namespace {

// Neighbor-row helpers: rows are padded with kInvalidIdx.
size_t RowCount(const idx_t* row, size_t capacity) {
  size_t c = 0;
  while (c < capacity && row[c] != kInvalidIdx) ++c;
  return c;
}

void WriteRow(idx_t* row, size_t capacity, const std::vector<idx_t>& ids) {
  std::fill(row, row + capacity, kInvalidIdx);
  std::copy(ids.begin(), ids.end(), row);
}

}  // namespace

Hnsw::Hnsw(const Dataset* data, Metric metric, const HnswBuildOptions& options)
    : data_(data),
      metric_(metric),
      dist_(GetDistanceFunc(metric)),
      batch_dist_(metric, data),
      m_(options.m),
      level_mult_(1.0 / std::log(static_cast<double>(options.m))) {
  SONG_CHECK(data != nullptr);
  const size_t n = data_->num();
  SONG_CHECK_MSG(n > 0, "cannot build HNSW over an empty dataset");
  levels_.assign(n, 0);
  layer0_.assign(n * RowCapacity(0), kInvalidIdx);
  upper_.resize(n);

  // Pre-draw levels sequentially for determinism regardless of threading.
  uint64_t rng_state = options.seed;
  for (size_t v = 0; v < n; ++v) {
    levels_[v] = static_cast<uint32_t>(RandomLevel(&rng_state));
    upper_[v].assign(levels_[v] * m_, kInvalidIdx);
  }
  // Vertex 0 seeds the structure at level 0; entry_/max_level_ are promoted
  // under lock as deeper vertices are inserted.
  levels_[0] = 0;
  upper_[0].clear();
  entry_ = 0;
  max_level_ = 0;

  std::unique_ptr<Mutex[]> locks(std::make_unique<Mutex[]>(n));
  Mutex global_lock;  // guards entry_ / max_level_ promotion
  std::vector<std::atomic<bool>> inserted(n);
  inserted[0].store(true, std::memory_order_release);

  const size_t dim = data_->dim();
  auto snapshot_row = [&](idx_t v, size_t level, std::vector<idx_t>* out) {
    MutexLock guard(locks[v]);
    const idx_t* row = Row(v, level);
    const size_t cap = RowCapacity(level);
    out->clear();
    for (size_t i = 0; i < cap && row[i] != kInvalidIdx; ++i) {
      out->push_back(row[i]);
    }
  };

  // Layer-restricted search against the in-flux graph.
  auto build_search = [&](const float* q, std::vector<Neighbor> eps,
                          size_t ef, size_t level,
                          VisitedBuffer* visited) -> std::vector<Neighbor> {
    visited->Resize(n);
    visited->NextEpoch();
    std::priority_queue<Neighbor, std::vector<Neighbor>, std::greater<>> cand;
    std::priority_queue<Neighbor> top;
    for (const Neighbor& ep : eps) {
      if (visited->TestAndSet(ep.id)) continue;
      cand.push(ep);
      top.push(ep);
      if (top.size() > ef) top.pop();
    }
    std::vector<idx_t> row;
    while (!cand.empty()) {
      const Neighbor now = cand.top();
      cand.pop();
      if (top.size() >= ef && now.dist > top.top().dist) break;
      snapshot_row(now.id, level, &row);
      for (const idx_t u : row) {
        if (!inserted[u].load(std::memory_order_acquire)) continue;
        if (visited->TestAndSet(u)) continue;
        const float d = dist_(q, data_->Row(u), dim);
        if (top.size() < ef || d < top.top().dist) {
          cand.emplace(d, u);
          top.emplace(d, u);
          if (top.size() > ef) top.pop();
        }
      }
    }
    std::vector<Neighbor> out(top.size());
    for (size_t i = top.size(); i-- > 0;) {
      out[i] = top.top();
      top.pop();
    }
    return out;
  };

  ParallelFor(n - 1, options.num_threads, [&](size_t job, size_t) {
    thread_local VisitedBuffer visited;
    const idx_t v = static_cast<idx_t>(job + 1);
    const float* point = data_->Row(v);
    const size_t level = levels_[v];

    idx_t ep;
    size_t top_level;
    {
      MutexLock guard(global_lock);
      ep = entry_;
      top_level = max_level_;
    }
    Neighbor ep_n(dist_(point, data_->Row(ep), dim), ep);

    // Greedy descent through layers above the new vertex's level.
    for (size_t l = top_level; l > level && l > 0; --l) {
      bool improved = true;
      std::vector<idx_t> row;
      while (improved) {
        improved = false;
        snapshot_row(ep_n.id, l, &row);
        for (const idx_t u : row) {
          if (!inserted[u].load(std::memory_order_acquire)) continue;
          const float d = dist_(point, data_->Row(u), dim);
          if (d < ep_n.dist) {
            ep_n = Neighbor(d, u);
            improved = true;
          }
        }
      }
    }

    std::vector<Neighbor> eps{ep_n};
    for (size_t l = std::min(level, top_level) + 1; l-- > 0;) {
      std::vector<Neighbor> pool =
          build_search(point, eps, options.ef_construction, l, &visited);
      std::vector<idx_t> selected = SelectNeighborsHeuristic(v, pool, m_);
      {
        MutexLock guard(locks[v]);
        WriteRow(MutableRow(v, l), RowCapacity(l), selected);
      }
      // Reverse edges with occlusion-based shrink on overflow.
      for (const idx_t u : selected) {
        MutexLock guard(locks[u]);
        idx_t* row = MutableRow(u, l);
        const size_t cap = RowCapacity(l);
        const size_t count = RowCount(row, cap);
        bool present = false;
        for (size_t i = 0; i < count; ++i) present |= (row[i] == v);
        if (present) continue;
        if (count < cap) {
          row[count] = v;
          continue;
        }
        std::vector<Neighbor> shrink_pool;
        shrink_pool.reserve(count + 1);
        for (size_t i = 0; i < count; ++i) {
          shrink_pool.emplace_back(
              dist_(data_->Row(u), data_->Row(row[i]), dim), row[i]);
        }
        shrink_pool.emplace_back(dist_(data_->Row(u), data_->Row(v), dim), v);
        const std::vector<idx_t> kept =
            SelectNeighborsHeuristic(u, shrink_pool, cap);
        WriteRow(row, cap, kept);
      }
      if (!pool.empty()) eps = std::move(pool);
    }

    inserted[v].store(true, std::memory_order_release);
    if (level > 0) {
      MutexLock guard(global_lock);
      if (level > max_level_) {
        max_level_ = level;
        entry_ = v;
      }
    }
  });
}

size_t Hnsw::RandomLevel(uint64_t* state) const {
  const uint64_t r = SplitMix64(*state);
  double u = static_cast<double>(r >> 11) * 0x1.0p-53;
  if (u <= 1e-12) u = 1e-12;
  const double level = -std::log(u) * level_mult_;
  return std::min<size_t>(static_cast<size_t>(level), 31);
}

const idx_t* Hnsw::Row(idx_t v, size_t level) const {
  if (level == 0) return &layer0_[static_cast<size_t>(v) * RowCapacity(0)];
  return &upper_[v][(level - 1) * m_];
}

idx_t* Hnsw::MutableRow(idx_t v, size_t level) {
  if (level == 0) return &layer0_[static_cast<size_t>(v) * RowCapacity(0)];
  return &upper_[v][(level - 1) * m_];
}

std::vector<idx_t> Hnsw::SelectNeighborsHeuristic(idx_t for_vertex,
                                                  std::vector<Neighbor> pool,
                                                  size_t m) const {
  const size_t dim = data_->dim();
  std::sort(pool.begin(), pool.end());
  std::vector<idx_t> selected;
  selected.reserve(m);
  std::vector<Neighbor> discarded;
  for (const Neighbor& cand : pool) {
    if (selected.size() >= m) break;
    if (cand.id == for_vertex) continue;
    bool occluded = false;
    for (const idx_t s : selected) {
      if (s == cand.id) {
        occluded = true;
        break;
      }
      if (dist_(data_->Row(s), data_->Row(cand.id), dim) < cand.dist) {
        occluded = true;
        break;
      }
    }
    if (occluded) {
      discarded.push_back(cand);
    } else {
      selected.push_back(cand.id);
    }
  }
  // keepPrunedConnections: fill remaining slots with the closest discards.
  for (const Neighbor& d : discarded) {
    if (selected.size() >= m) break;
    if (std::find(selected.begin(), selected.end(), d.id) == selected.end()) {
      selected.push_back(d.id);
    }
  }
  return selected;
}

std::vector<Neighbor> Hnsw::SearchLayer(const float* query,
                                        std::vector<Neighbor> entry_points,
                                        size_t ef, size_t level,
                                        VisitedBuffer* visited,
                                        HnswSearchStats* stats) const {
  const float qn = batch_dist_.QueryNormSqr(query);
  visited->Resize(data_->num());
  visited->NextEpoch();
  std::priority_queue<Neighbor, std::vector<Neighbor>, std::greater<>> cand;
  std::priority_queue<Neighbor> top;
  for (const Neighbor& ep : entry_points) {
    if (visited->TestAndSet(ep.id)) continue;
    cand.push(ep);
    top.push(ep);
    if (top.size() > ef) top.pop();
  }
  const size_t cap = RowCapacity(level);
  // Unvisited neighbors are gathered first, then scored in one fused batch
  // call — valid because their distances do not depend on heap state, only
  // the accept/push step does.
  std::vector<idx_t> batch_ids;
  std::vector<float> batch_dists;
  batch_ids.reserve(cap);
  batch_dists.reserve(cap);
  while (!cand.empty()) {
    const Neighbor now = cand.top();
    cand.pop();
    if (top.size() >= ef && now.dist > top.top().dist) break;
    if (stats != nullptr) ++stats->hops;
    const idx_t* row = Row(now.id, level);
    batch_ids.clear();
    for (size_t i = 0; i < cap && row[i] != kInvalidIdx; ++i) {
      const idx_t u = row[i];
      if (visited->TestAndSet(u)) continue;
      batch_ids.push_back(u);
    }
    if (batch_ids.empty()) continue;
    batch_dists.resize(batch_ids.size());
    batch_dist_.ComputeBatch(query, qn, batch_ids.data(), batch_ids.size(),
                             batch_dists.data());
    if (stats != nullptr) stats->distance_computations += batch_ids.size();
    for (size_t i = 0; i < batch_ids.size(); ++i) {
      const idx_t u = batch_ids[i];
      const float d = batch_dists[i];
      if (top.size() < ef || d < top.top().dist) {
        cand.emplace(d, u);
        top.emplace(d, u);
        if (top.size() > ef) top.pop();
      }
    }
  }
  std::vector<Neighbor> out(top.size());
  for (size_t i = top.size(); i-- > 0;) {
    out[i] = top.top();
    top.pop();
  }
  return out;
}

std::vector<Neighbor> Hnsw::Search(const float* query, size_t k, size_t ef,
                                   HnswSearchStats* stats) const {
  thread_local VisitedBuffer visited;
  const size_t dim = data_->dim();
  Neighbor ep(dist_(query, data_->Row(entry_), dim), entry_);
  if (stats != nullptr) ++stats->distance_computations;
  for (size_t l = max_level_; l > 0; --l) {
    bool improved = true;
    const size_t cap = RowCapacity(l);
    while (improved) {
      improved = false;
      const idx_t* row = Row(ep.id, l);
      for (size_t i = 0; i < cap && row[i] != kInvalidIdx; ++i) {
        const float d = dist_(query, data_->Row(row[i]), dim);
        if (stats != nullptr) ++stats->distance_computations;
        if (d < ep.dist) {
          ep = Neighbor(d, row[i]);
          improved = true;
        }
      }
    }
  }
  std::vector<Neighbor> result =
      SearchLayer(query, {ep}, std::max(ef, k), 0, &visited, stats);
  if (result.size() > k) result.resize(k);
  return result;
}

FixedDegreeGraph Hnsw::ExportBaseLayer() const {
  const size_t n = data_->num();
  const size_t cap = RowCapacity(0);
  FixedDegreeGraph g(n, cap);
  std::vector<idx_t> row;
  for (size_t v = 0; v < n; ++v) {
    const idx_t* r = Row(static_cast<idx_t>(v), 0);
    row.clear();
    for (size_t i = 0; i < cap && r[i] != kInvalidIdx; ++i) row.push_back(r[i]);
    g.SetNeighbors(static_cast<idx_t>(v), row);
  }
  return g;
}

namespace {
constexpr char kHnswMagic[4] = {'S', 'N', 'G', 'H'};
}  // namespace

Status Hnsw::Save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const uint32_t m32 = static_cast<uint32_t>(m_);
  const uint32_t level32 = static_cast<uint32_t>(max_level_);
  const uint32_t entry32 = entry_;
  const uint64_t n64 = levels_.size();
  bool ok = std::fwrite(kHnswMagic, 1, 4, f) == 4 &&
            std::fwrite(&m32, 4, 1, f) == 1 &&
            std::fwrite(&level32, 4, 1, f) == 1 &&
            std::fwrite(&entry32, 4, 1, f) == 1 &&
            std::fwrite(&n64, 8, 1, f) == 1;
  ok = ok && std::fwrite(levels_.data(), sizeof(uint32_t), levels_.size(),
                         f) == levels_.size();
  ok = ok && std::fwrite(layer0_.data(), sizeof(idx_t), layer0_.size(), f) ==
                 layer0_.size();
  for (size_t v = 0; ok && v < levels_.size(); ++v) {
    if (!upper_[v].empty()) {
      ok = std::fwrite(upper_[v].data(), sizeof(idx_t), upper_[v].size(),
                       f) == upper_[v].size();
    }
  }
  std::fclose(f);
  return ok ? Status::OK() : Status::IOError("short write " + path);
}

StatusOr<Hnsw> Hnsw::Load(const std::string& path, const Dataset* data,
                          Metric metric) {
  SONG_CHECK(data != nullptr);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  char magic[4];
  uint32_t m32 = 0, level32 = 0, entry32 = 0;
  uint64_t n64 = 0;
  bool ok = std::fread(magic, 1, 4, f) == 4 &&
            std::memcmp(magic, kHnswMagic, 4) == 0 &&
            std::fread(&m32, 4, 1, f) == 1 &&
            std::fread(&level32, 4, 1, f) == 1 &&
            std::fread(&entry32, 4, 1, f) == 1 &&
            std::fread(&n64, 8, 1, f) == 1;
  if (!ok || m32 == 0 || n64 != data->num()) {
    std::fclose(f);
    return Status::IOError("bad/stale HNSW index: " + path);
  }
  Hnsw index(LoadTag{}, data, metric, m32);
  index.level_mult_ = 1.0 / std::log(static_cast<double>(m32));
  index.max_level_ = level32;
  index.entry_ = entry32;
  index.levels_.resize(n64);
  index.layer0_.resize(n64 * 2 * m32);
  ok = std::fread(index.levels_.data(), sizeof(uint32_t), n64, f) == n64;
  ok = ok && std::fread(index.layer0_.data(), sizeof(idx_t),
                        index.layer0_.size(), f) == index.layer0_.size();
  index.upper_.resize(n64);
  for (size_t v = 0; ok && v < n64; ++v) {
    index.upper_[v].resize(static_cast<size_t>(index.levels_[v]) * m32);
    if (!index.upper_[v].empty()) {
      ok = std::fread(index.upper_[v].data(), sizeof(idx_t),
                      index.upper_[v].size(), f) == index.upper_[v].size();
    }
  }
  std::fclose(f);
  if (!ok) return Status::IOError("short read " + path);
  return index;
}

size_t Hnsw::MemoryBytes() const {
  size_t bytes = layer0_.size() * sizeof(idx_t) +
                 levels_.size() * sizeof(uint32_t);
  for (const auto& u : upper_) bytes += u.size() * sizeof(idx_t);
  return bytes;
}

void RecordHnswSearchStats(const HnswSearchStats& stats, size_t num_queries,
                           obs::MetricsRegistry* registry,
                           const std::string& prefix) {
  if (registry == nullptr) return;
  registry->GetCounter(prefix + ".queries").Increment(num_queries);
  registry->GetCounter(prefix + ".hops").Increment(stats.hops);
  registry->GetCounter(prefix + ".distance_computations")
      .Increment(stats.distance_computations);
}

}  // namespace song
