#include "baselines/flat_index.h"

#include <algorithm>
#include <queue>

#include "core/thread_pool.h"

namespace song {

namespace {
// Rows scored per fused ComputeRange call: large enough to amortize
// dispatch, small enough that the dists block stays in L1.
constexpr size_t kScanBlock = 256;
}  // namespace

FlatIndex::FlatIndex(const Dataset* data, Metric metric)
    : data_(data), metric_(metric), batch_dist_(metric, data) {
  SONG_CHECK(data != nullptr);
}

std::vector<Neighbor> FlatIndex::Search(const float* query, size_t k) const {
  const float qn = batch_dist_.QueryNormSqr(query);
  float dists[kScanBlock];
  std::priority_queue<Neighbor> heap;  // max-heap of the k best
  for (size_t first = 0; first < data_->num(); first += kScanBlock) {
    const size_t n = std::min(kScanBlock, data_->num() - first);
    batch_dist_.ComputeRange(query, qn, static_cast<idx_t>(first), n, dists);
    for (size_t j = 0; j < n; ++j) {
      const idx_t i = static_cast<idx_t>(first + j);
      const float d = dists[j];
      if (heap.size() < k) {
        heap.emplace(d, i);
      } else if (Neighbor(d, i) < heap.top()) {
        heap.pop();
        heap.emplace(d, i);
      }
    }
  }
  std::vector<Neighbor> out(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[i] = heap.top();
    heap.pop();
  }
  return out;
}

std::vector<std::vector<Neighbor>> FlatIndex::BatchSearch(
    const Dataset& queries, size_t k, size_t num_threads) const {
  std::vector<std::vector<Neighbor>> results(queries.num());
  ParallelFor(queries.num(), num_threads, [&](size_t q, size_t) {
    results[q] = Search(queries.Row(static_cast<idx_t>(q)), k);
  });
  return results;
}

std::vector<std::vector<idx_t>> FlatIndex::Ids(
    const std::vector<std::vector<Neighbor>>& results) {
  std::vector<std::vector<idx_t>> ids(results.size());
  for (size_t q = 0; q < results.size(); ++q) {
    ids[q].reserve(results[q].size());
    for (const Neighbor& n : results[q]) ids[q].push_back(n.id);
  }
  return ids;
}

}  // namespace song
