#include "baselines/flat_index.h"

#include <algorithm>
#include <queue>

#include "core/thread_pool.h"

namespace song {

FlatIndex::FlatIndex(const Dataset* data, Metric metric)
    : data_(data), metric_(metric) {
  SONG_CHECK(data != nullptr);
}

std::vector<Neighbor> FlatIndex::Search(const float* query, size_t k) const {
  const DistanceFunc dist = GetDistanceFunc(metric_);
  const size_t dim = data_->dim();
  std::priority_queue<Neighbor> heap;  // max-heap of the k best
  for (size_t i = 0; i < data_->num(); ++i) {
    const float d = dist(query, data_->Row(static_cast<idx_t>(i)), dim);
    if (heap.size() < k) {
      heap.emplace(d, static_cast<idx_t>(i));
    } else if (Neighbor(d, static_cast<idx_t>(i)) < heap.top()) {
      heap.pop();
      heap.emplace(d, static_cast<idx_t>(i));
    }
  }
  std::vector<Neighbor> out(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[i] = heap.top();
    heap.pop();
  }
  return out;
}

std::vector<std::vector<Neighbor>> FlatIndex::BatchSearch(
    const Dataset& queries, size_t k, size_t num_threads) const {
  std::vector<std::vector<Neighbor>> results(queries.num());
  ParallelFor(queries.num(), num_threads, [&](size_t q, size_t) {
    results[q] = Search(queries.Row(static_cast<idx_t>(q)), k);
  });
  return results;
}

std::vector<std::vector<idx_t>> FlatIndex::Ids(
    const std::vector<std::vector<Neighbor>>& results) {
  std::vector<std::vector<idx_t>> ids(results.size());
  for (size_t q = 0; q < results.size(); ++q) {
    ids[q].reserve(results[q].size());
    for (const Neighbor& n : results[q]) ids[q].push_back(n.id);
  }
  return ids;
}

}  // namespace song
