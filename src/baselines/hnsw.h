// Copyright 2026 The SONG-Repro Authors.
//
// Hierarchical Navigable Small World graphs (Malkov & Yashunin 2018) — the
// paper's CPU baseline ("HNSW, the state-of-the-art ANN method on CPU",
// compared single-threaded throughout §VIII). Full implementation: geometric
// level assignment, heuristic neighbor selection with occlusion pruning,
// greedy descent through the upper layers and ef-bounded search at layer 0.
//
// The base layer can also be exported as a FixedDegreeGraph, giving SONG an
// HNSW-derived index (the paper runs SONG on NSW graphs, "similar to HNSW
// but no hierarchical structures").

#ifndef SONG_BASELINES_HNSW_H_
#define SONG_BASELINES_HNSW_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/types.h"
#include "graph/fixed_degree_graph.h"
#include "graph/graph_search.h"
#include "obs/metrics.h"

namespace song {

struct HnswBuildOptions {
  size_t m = 8;                  ///< upper-layer degree; layer 0 holds 2*m
  size_t ef_construction = 100;
  uint64_t seed = 20260706;
  size_t num_threads = 0;
};

struct HnswSearchStats {
  size_t distance_computations = 0;
  size_t hops = 0;

  void Add(const HnswSearchStats& other) {
    distance_computations += other.distance_computations;
    hops += other.hops;
  }
};

/// Records HNSW work counters under `<prefix>.*` — the same counter names
/// the SONG pipeline emits (`.hops`, `.distance_computations`), so
/// baseline-vs-SONG dashboards line up column for column.
void RecordHnswSearchStats(const HnswSearchStats& stats, size_t num_queries,
                           obs::MetricsRegistry* registry,
                           const std::string& prefix = "hnsw.search");

class Hnsw {
 public:
  /// Builds the index over `data` (which must outlive the object).
  Hnsw(const Dataset* data, Metric metric,
       const HnswBuildOptions& options = {});

  /// Serialization (magic "SNGH"): structure only — `data` must be the same
  /// dataset the index was built over.
  Status Save(const std::string& path) const;
  static StatusOr<Hnsw> Load(const std::string& path, const Dataset* data,
                             Metric metric);

  /// ef-bounded top-k search (ef clamped up to k).
  std::vector<Neighbor> Search(const float* query, size_t k, size_t ef,
                               HnswSearchStats* stats = nullptr) const;

  /// Exports layer 0 as a fixed-degree graph (degree 2*m).
  FixedDegreeGraph ExportBaseLayer() const;

  size_t max_level() const { return max_level_; }
  idx_t entry_point() const { return entry_; }
  size_t MemoryBytes() const;

 private:
  // Uninitialized shell for Load().
  struct LoadTag {};
  Hnsw(LoadTag, const Dataset* data, Metric metric, size_t m)
      : data_(data),
        metric_(metric),
        dist_(GetDistanceFunc(metric)),
        batch_dist_(metric, data),
        m_(m),
        level_mult_(1.0) {}

  size_t RandomLevel(uint64_t* state) const;
  // Search one layer with frontier width ef, starting from `entry_points`.
  std::vector<Neighbor> SearchLayer(const float* query,
                                    std::vector<Neighbor> entry_points,
                                    size_t ef, size_t level,
                                    VisitedBuffer* visited,
                                    HnswSearchStats* stats) const;
  // HNSW Algorithm 4: occlusion-pruned selection of up to m neighbors.
  std::vector<idx_t> SelectNeighborsHeuristic(idx_t for_vertex,
                                              std::vector<Neighbor> pool,
                                              size_t m) const;

  const idx_t* Row(idx_t v, size_t level) const;
  idx_t* MutableRow(idx_t v, size_t level);
  size_t RowCapacity(size_t level) const { return level == 0 ? 2 * m_ : m_; }

  const Dataset* data_;
  Metric metric_;
  DistanceFunc dist_;            ///< pairwise kernel (build path)
  BatchDistance batch_dist_;     ///< fused gather kernel (query path)
  size_t m_;
  double level_mult_;

  std::vector<uint32_t> levels_;          // per vertex
  std::vector<idx_t> layer0_;             // n * 2m slots
  std::vector<std::vector<idx_t>> upper_; // per vertex: levels * m slots
  idx_t entry_ = 0;
  size_t max_level_ = 0;
};

}  // namespace song

#endif  // SONG_BASELINES_HNSW_H_
