// Copyright 2026 The SONG-Repro Authors.
//
// IVFPQ index — the Faiss-style quantization baseline the paper compares
// against ("Faiss-IVFPQ"). A coarse k-means quantizer partitions the data
// into nlist inverted lists; residuals are product-quantized to m bytes.
// A query scans the nprobe nearest lists with ADC lookup tables. nprobe is
// the recall/throughput knob swept in Fig 5; the quantization error is what
// caps its reachable recall (the N/A cells of Table II).

#ifndef SONG_BASELINES_IVFPQ_H_
#define SONG_BASELINES_IVFPQ_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/types.h"
#include "obs/metrics.h"
#include "quant/pq.h"

namespace song {

struct IvfPqOptions {
  /// Number of coarse clusters (inverted lists).
  size_t nlist = 256;
  /// Bytes per PQ code.
  size_t pq_m = 8;
  /// Encode residuals (vector - coarse centroid) rather than raw vectors.
  /// Only meaningful for L2.
  bool by_residual = true;
  size_t train_iterations = 12;
  uint64_t seed = 1234;
  size_t num_threads = 0;
};

/// Work counters for the GPU cost model (gpusim/faiss_model.h).
struct IvfPqSearchStats {
  size_t queries = 0;
  size_t lists_probed = 0;
  size_t codes_scanned = 0;
  /// ADC table entries computed (lists_probed * m * 256).
  size_t table_entries = 0;
  /// Coarse-quantizer distances (queries * nlist).
  size_t coarse_distances = 0;

  void Add(const IvfPqSearchStats& other) {
    queries += other.queries;
    lists_probed += other.lists_probed;
    codes_scanned += other.codes_scanned;
    table_entries += other.table_entries;
    coarse_distances += other.coarse_distances;
  }
};

/// Records IVFPQ probe/scan counters under `<prefix>.*` so the quantization
/// baseline reports through the same registry as SONG and HNSW.
void RecordIvfPqSearchStats(const IvfPqSearchStats& stats,
                            obs::MetricsRegistry* registry,
                            const std::string& prefix = "ivfpq.search");

class IvfPqIndex {
 public:
  /// Builds the index over `data` (must outlive the object). Supported
  /// metrics: kL2 and kInnerProduct (kCosine: normalize + kInnerProduct).
  IvfPqIndex(const Dataset* data, Metric metric,
             const IvfPqOptions& options = {});

  /// ADC top-k search probing the `nprobe` nearest lists.
  std::vector<Neighbor> Search(const float* query, size_t k, size_t nprobe,
                               IvfPqSearchStats* stats = nullptr) const;

  std::vector<std::vector<Neighbor>> BatchSearch(
      const Dataset& queries, size_t k, size_t nprobe,
      size_t num_threads = 0, IvfPqSearchStats* stats = nullptr) const;

  size_t pq_m() const { return pq_.code_bytes(); }

  /// Serialization (magic "SNGQ"): coarse centroids, codebooks and inverted
  /// lists. `data` must be the dataset the index was built over.
  Status Save(const std::string& path) const;
  static StatusOr<IvfPqIndex> Load(const std::string& path,
                                   const Dataset* data, Metric metric);

  size_t nlist() const { return options_.nlist; }

  /// Index memory: coarse centroids + codes + ids + codebooks (Table III).
  size_t MemoryBytes() const;

  /// Total scanned codes for the last Search call is intentionally not
  /// tracked (const API); use ExpectedScan for cost estimates.
  double ExpectedScanFraction(size_t nprobe) const {
    return static_cast<double>(std::min(nprobe, options_.nlist)) /
           static_cast<double>(options_.nlist);
  }

 private:
  struct LoadTag {};
  IvfPqIndex(LoadTag, const Dataset* data, Metric metric)
      : data_(data), metric_(metric) {}

  const Dataset* data_;
  Metric metric_;
  IvfPqOptions options_;
  ProductQuantizer pq_;
  Dataset coarse_centroids_;
  /// Per-list point ids and m-byte codes (parallel arrays).
  std::vector<std::vector<idx_t>> list_ids_;
  std::vector<std::vector<uint8_t>> list_codes_;
};

}  // namespace song

#endif  // SONG_BASELINES_IVFPQ_H_
