// Copyright 2026 The SONG-Repro Authors.
//
// Thin forwarding header: ProductQuantizer moved to the shared quantization
// module (src/quant/pq.h) when the SONG traversal gained an ADC path; the
// IVFPQ baseline and existing includes keep working through this alias.

#ifndef SONG_BASELINES_PQ_H_
#define SONG_BASELINES_PQ_H_

#include "quant/pq.h"

#endif  // SONG_BASELINES_PQ_H_
