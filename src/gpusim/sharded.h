// Copyright 2026 The SONG-Repro Authors.
//
// Multi-GPU sharding (paper §VII, last paragraph): "when multiple GPUs are
// considered, we can shard the data for each GPU, build a graph index for
// each shard, perform graph search on each GPU and merge the results."
// This module implements exactly that deployment: contiguous shards, one
// NSW index per shard, per-shard SONG search (each priced on its own
// GpuSpec), and a host-side top-k merge. The cards run in parallel, so the
// simulated batch time is the slowest shard's kernel plus the shared
// transfer costs.

#ifndef SONG_GPUSIM_SHARDED_H_
#define SONG_GPUSIM_SHARDED_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/status.h"
#include "gpusim/cost_model.h"
#include "gpusim/gpu_spec.h"
#include "graph/fixed_degree_graph.h"
#include "graph/nsw_builder.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "song/search_options.h"
#include "song/song_searcher.h"

namespace song {

struct ShardedBuildOptions {
  size_t num_shards = 2;
  NswBuildOptions nsw;
  size_t num_threads = 0;
};

/// Fault tolerance policy for TrySearch. A failed shard attempt (injected
/// or real) is retried up to `max_retries` times with exponential backoff;
/// a shard that exhausts its retries is dropped from the merge when
/// `allow_partial` is set, so the caller still gets ranked results from the
/// surviving cards plus a coverage fraction.
struct ShardedResilienceOptions {
  size_t max_retries = 2;      ///< extra attempts after the first failure
  uint64_t backoff_us = 0;     ///< initial backoff; doubles per retry. 0 = none
  bool allow_partial = true;   ///< merge surviving shards instead of failing
  obs::MetricsRegistry* registry = nullptr;  ///< optional metric sink
  /// Optional post-mortem ring: TrySearch appends one batch-level
  /// RequestRecord (status, wall time, shard coverage) per call, including
  /// failed ones — the record whose shards_answered < shards_total is the
  /// post-mortem breadcrumb for a partial merge.
  obs::FlightRecorder* flight_recorder = nullptr;
  uint64_t request_id = 0;  ///< id stamped into the record
};

struct ShardedSearchResult {
  /// Merged global-id results per query.
  std::vector<std::vector<Neighbor>> results;
  /// Per-shard aggregate counters (zeroed for shards that never succeeded).
  std::vector<SearchStats> shard_stats;
  double wall_seconds = 0.0;
  /// Fault-tolerance accounting (TrySearch; Search leaves the defaults).
  size_t shards_total = 0;
  size_t shards_answered = 0;
  std::vector<uint8_t> shard_ok;        ///< 1 = shard contributed results
  std::vector<uint32_t> shard_retries;  ///< extra attempts per shard
  /// Set when at least one shard was dropped: results are ranked but drawn
  /// from a subset of the data (recall floor = surviving fraction).
  bool degraded = false;

  /// Fraction of shards that answered; 1.0 for a fully healthy search.
  double Coverage() const {
    return shards_total == 0
               ? 0.0
               : static_cast<double>(shards_answered) /
                     static_cast<double>(shards_total);
  }
};

struct ShardedGpuEstimate {
  /// Per-shard kernel seconds (cards run concurrently).
  std::vector<double> shard_kernel_seconds;
  double kernel_seconds = 0.0;  ///< max over shards
  double htod_seconds = 0.0;    ///< queries broadcast to every card
  double dtoh_seconds = 0.0;    ///< every card returns k candidates
  double merge_seconds = 0.0;   ///< host-side k-way merge
  double total_seconds = 0.0;
  double Qps(size_t num_queries) const {
    return total_seconds > 0.0
               ? static_cast<double>(num_queries) / total_seconds
               : 0.0;
  }
};

/// A SONG deployment sharded across multiple (simulated) GPUs.
class ShardedSongIndex {
 public:
  /// Splits `data` into contiguous shards and builds one NSW graph per
  /// shard. `data` must outlive the index.
  ShardedSongIndex(const Dataset* data, Metric metric,
                   const ShardedBuildOptions& options);

  size_t num_shards() const { return shards_.size(); }
  const Dataset& shard_data(size_t s) const { return shards_[s]->data; }
  const FixedDegreeGraph& shard_graph(size_t s) const {
    return shards_[s]->graph;
  }

  /// Searches every shard and merges the per-shard top-k into global-id
  /// results.
  ShardedSearchResult Search(const Dataset& queries, size_t k,
                             const SongSearchOptions& options,
                             size_t num_threads = 0) const;

  /// Fault-tolerant sharded search. Each shard attempt passes the
  /// deterministic fault sites `shardN.htod`, `shardN.kernel` and
  /// `shardN.dtoh` (core/fault_injection.h); a failing shard is retried
  /// per `resilience`, then dropped (partial merge) or escalated. Returns
  /// kUnavailable when no shard answers (or any shard fails with
  /// allow_partial off), kInvalidArgument on a query/index dim mismatch.
  /// With no faults injected the merged results are identical to Search().
  StatusOr<ShardedSearchResult> TrySearch(
      const Dataset& queries, size_t k, const SongSearchOptions& options,
      const ShardedResilienceOptions& resilience = {},
      size_t num_threads = 0) const;

  /// Prices a ShardedSearchResult on one GpuSpec per shard (`gpus.size()`
  /// must equal num_shards()).
  ShardedGpuEstimate EstimateGpu(const ShardedSearchResult& result,
                                 const std::vector<GpuSpec>& gpus,
                                 size_t num_queries, size_t k,
                                 const SongSearchOptions& options) const;

 private:
  struct Shard {
    Dataset data;                 // copy of the shard's rows
    std::vector<idx_t> global_ids;  // shard-local id -> global id
    FixedDegreeGraph graph;
    std::unique_ptr<SongSearcher> searcher;
  };

  /// One attempt at shard `s`: checks the htod/kernel fault sites, runs
  /// every query, checks the dtoh site, then (only on success) publishes
  /// results + stats — so a retried attempt never double-counts.
  Status SearchOneShard(size_t s, const Dataset& queries, size_t k,
                        const SongSearchOptions& options, size_t num_threads,
                        std::vector<std::vector<Neighbor>>* results,
                        SearchStats* stats) const;

  const Dataset* full_data_;
  Metric metric_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace song

#endif  // SONG_GPUSIM_SHARDED_H_
