#include "gpusim/sharded.h"

#include <algorithm>
#include <chrono>
#include <queue>
#include <string>
#include <thread>
#include <utility>

#include "core/fault_injection.h"
#include "core/logging.h"
#include "core/thread_pool.h"
#include "core/timer.h"

namespace song {

ShardedSongIndex::ShardedSongIndex(const Dataset* data, Metric metric,
                                   const ShardedBuildOptions& options)
    : full_data_(data), metric_(metric) {
  SONG_CHECK(data != nullptr);
  const size_t n = data->num();
  const size_t num_shards =
      std::max<size_t>(1, std::min(options.num_shards, n));
  const size_t per_shard = (n + num_shards - 1) / num_shards;

  for (size_t s = 0; s < num_shards; ++s) {
    const size_t begin = s * per_shard;
    const size_t end = std::min(n, begin + per_shard);
    if (begin >= end) break;
    auto shard = std::make_unique<Shard>();
    shard->data = Dataset(end - begin, data->dim());
    shard->global_ids.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      shard->data.SetRow(static_cast<idx_t>(i - begin),
                         data->Row(static_cast<idx_t>(i)));
      shard->global_ids.push_back(static_cast<idx_t>(i));
    }
    NswBuildOptions nsw = options.nsw;
    if (nsw.num_threads == 0) nsw.num_threads = options.num_threads;
    shard->graph = NswBuilder::Build(shard->data, metric, nsw);
    shard->searcher = std::make_unique<SongSearcher>(&shard->data,
                                                     &shard->graph, metric);
    shards_.push_back(std::move(shard));
  }
}

ShardedSearchResult ShardedSongIndex::Search(
    const Dataset& queries, size_t k, const SongSearchOptions& options,
    size_t num_threads) const {
  StatusOr<ShardedSearchResult> result =
      TrySearch(queries, k, options, ShardedResilienceOptions{}, num_threads);
  if (!result.ok()) {
    SONG_LOG(WARN) << "sharded search failed: "
                   << result.status().ToString();
    ShardedSearchResult empty;
    empty.results.resize(queries.num());
    empty.shard_stats.resize(shards_.size());
    empty.shards_total = shards_.size();
    empty.shard_ok.assign(shards_.size(), 0);
    empty.shard_retries.assign(shards_.size(), 0);
    empty.degraded = true;
    return empty;
  }
  return std::move(result).value();
}

Status ShardedSongIndex::SearchOneShard(
    size_t s, const Dataset& queries, size_t k,
    const SongSearchOptions& options, size_t num_threads,
    std::vector<std::vector<Neighbor>>* results, SearchStats* stats) const {
  const std::string prefix = "shard" + std::to_string(s) + ".";
  if (fault::ShouldFail(prefix + "htod")) {
    return Status::Unavailable("injected fault: " + prefix +
                               "htod (query upload)");
  }
  if (fault::ShouldFail(prefix + "kernel")) {
    return Status::Unavailable("injected fault: " + prefix + "kernel");
  }

  results->assign(queries.num(), {});
  std::vector<SongWorkspace> workspaces(
      std::max<size_t>(1, num_threads == 0 ? 1 : num_threads));
  std::vector<SearchStats> thread_stats(workspaces.size());
  ParallelFor(queries.num(), workspaces.size(), [&](size_t q, size_t t) {
    (*results)[q] = shards_[s]->searcher->Search(
        queries.Row(static_cast<idx_t>(q)), k, options, &workspaces[t],
        &thread_stats[t]);
  });

  if (fault::ShouldFail(prefix + "dtoh")) {
    return Status::Unavailable("injected fault: " + prefix +
                               "dtoh (result download)");
  }
  // Publish counters only for the attempt that succeeded, so a search that
  // was retried contributes each unit of work exactly once.
  *stats = SearchStats{};
  for (const SearchStats& ts : thread_stats) stats->Add(ts);
  return Status::OK();
}

StatusOr<ShardedSearchResult> ShardedSongIndex::TrySearch(
    const Dataset& queries, size_t k, const SongSearchOptions& options,
    const ShardedResilienceOptions& resilience, size_t num_threads) const {
  Timer timer;
  // One batch-level post-mortem record per call: the whole wall time is the
  // search stage (there is no queue/batching at this layer), and the shard
  // coverage is genuine — a record with shards_answered < shards_total is
  // the breadcrumb for a partial merge.
  auto record = [&](StatusCode code, bool degraded, bool rejected,
                    size_t answered, size_t total) {
    if (resilience.flight_recorder == nullptr) return;
    obs::RequestTimeline tl;
    tl.complete_us = timer.ElapsedMicros();
    obs::RequestRecord rec =
        obs::RequestRecord::Make(resilience.request_id,
                                 options.Digest(k), tl, code, degraded,
                                 rejected);
    rec.shards_answered = static_cast<uint16_t>(answered);
    rec.shards_total = static_cast<uint16_t>(total);
    resilience.flight_recorder->Record(rec);
  };

  if (queries.dim() != full_data_->dim()) {
    record(StatusCode::kInvalidArgument, false, true, 0, shards_.size());
    return Status::InvalidArgument(
        "query dim " + std::to_string(queries.dim()) +
        " does not match index dim " + std::to_string(full_data_->dim()));
  }
  if (k == 0) {
    record(StatusCode::kInvalidArgument, false, true, 0, shards_.size());
    return Status::InvalidArgument("k must be >= 1");
  }

  ShardedSearchResult out;
  out.results.resize(queries.num());
  out.shard_stats.resize(shards_.size());
  out.shards_total = shards_.size();
  out.shard_ok.assign(shards_.size(), 0);
  out.shard_retries.assign(shards_.size(), 0);

  // Per-shard candidate lists, merged per query afterwards.
  std::vector<std::vector<std::vector<Neighbor>>> shard_results(
      shards_.size());
  Status last_error;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Status shard_status;
    for (size_t attempt = 0; attempt <= resilience.max_retries; ++attempt) {
      if (attempt > 0) {
        ++out.shard_retries[s];
        if (resilience.registry != nullptr) {
          resilience.registry->GetCounter("song.shard.retries").Increment();
        }
        if (resilience.backoff_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(
              resilience.backoff_us << (attempt - 1)));
        }
      }
      shard_status = SearchOneShard(s, queries, k, options, num_threads,
                                    &shard_results[s], &out.shard_stats[s]);
      if (shard_status.ok()) break;
      SONG_LOG(WARN) << "shard " << s << " attempt " << (attempt + 1)
                     << " failed: " << shard_status.ToString();
    }
    if (shard_status.ok()) {
      out.shard_ok[s] = 1;
      ++out.shards_answered;
    } else {
      last_error = shard_status;
      shard_results[s].clear();
      out.shard_stats[s] = SearchStats{};
      if (resilience.registry != nullptr) {
        resilience.registry->GetCounter("song.shard.failures").Increment();
      }
      if (!resilience.allow_partial) {
        record(StatusCode::kUnavailable, false, false, out.shards_answered,
               out.shards_total);
        return Status::Unavailable(
            "shard " + std::to_string(s) + " failed after " +
            std::to_string(resilience.max_retries + 1) +
            " attempts (partial results disabled): " + shard_status.message());
      }
    }
  }

  if (out.shards_answered == 0) {
    record(StatusCode::kUnavailable, false, false, 0, out.shards_total);
    return Status::Unavailable(
        "all " + std::to_string(out.shards_total) +
        " shards failed; last error: " + last_error.ToString());
  }
  out.degraded = out.shards_answered < out.shards_total;
  if (out.degraded && resilience.registry != nullptr) {
    // Every query's ranked list is drawn from a subset of the data.
    resilience.registry->GetCounter("song.search.degraded")
        .Increment(queries.num());
  }

  // k-way merge with global id translation over the surviving shards.
  for (size_t q = 0; q < queries.num(); ++q) {
    std::vector<Neighbor> merged;
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (!out.shard_ok[s]) continue;
      for (const Neighbor& n : shard_results[s][q]) {
        merged.emplace_back(n.dist, shards_[s]->global_ids[n.id]);
      }
    }
    std::sort(merged.begin(), merged.end());
    if (merged.size() > k) merged.resize(k);
    out.results[q] = std::move(merged);
  }
  out.wall_seconds = timer.ElapsedSeconds();
  record(StatusCode::kOk, out.degraded, false, out.shards_answered,
         out.shards_total);
  return out;
}

ShardedGpuEstimate ShardedSongIndex::EstimateGpu(
    const ShardedSearchResult& result, const std::vector<GpuSpec>& gpus,
    size_t num_queries, size_t k, const SongSearchOptions& options) const {
  SONG_CHECK_MSG(gpus.size() == shards_.size(),
                 "one GpuSpec per shard required");
  ShardedGpuEstimate est;
  est.shard_kernel_seconds.resize(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    WorkloadShape shape;
    shape.num_queries = num_queries;
    shape.dim = full_data_->dim();
    shape.point_bytes = shape.dim * sizeof(float);
    shape.k = k;
    shape.queue_size = std::max(options.queue_size, k);
    shape.degree = shards_[s]->graph.degree();
    shape.multi_query = options.multi_query;
    shape.multi_step = options.multi_step_probe;
    shape.structure = options.structure;
    CostModel model(gpus[s]);
    const KernelBreakdown b = model.Estimate(result.shard_stats[s], shape);
    est.shard_kernel_seconds[s] = b.kernel_seconds;
    est.kernel_seconds = std::max(est.kernel_seconds, b.kernel_seconds);
    // Transfers happen per card but concurrently; keep the slowest link's
    // cost (all presets share the PCIe numbers, so this is that of card 0).
    est.htod_seconds = std::max(
        est.htod_seconds,
        num_queries * shape.dim * sizeof(float) / (gpus[s].pcie_gbps * 1e9) +
            gpus[s].pcie_latency_s);
    est.dtoh_seconds = std::max(
        est.dtoh_seconds,
        num_queries * k * sizeof(Neighbor) / (gpus[s].pcie_gbps * 1e9) +
            gpus[s].pcie_latency_s);
  }
  // Host merge: S*k candidates per query, ~20 ns per element on the host.
  est.merge_seconds = static_cast<double>(num_queries) *
                      static_cast<double>(shards_.size() * k) * 20e-9;
  est.total_seconds = est.kernel_seconds + est.htod_seconds +
                      est.dtoh_seconds + est.merge_seconds;
  return est;
}

}  // namespace song
