#include "gpusim/sharded.h"

#include <algorithm>
#include <queue>

#include "core/logging.h"
#include "core/thread_pool.h"
#include "core/timer.h"

namespace song {

ShardedSongIndex::ShardedSongIndex(const Dataset* data, Metric metric,
                                   const ShardedBuildOptions& options)
    : full_data_(data), metric_(metric) {
  SONG_CHECK(data != nullptr);
  const size_t n = data->num();
  const size_t num_shards =
      std::max<size_t>(1, std::min(options.num_shards, n));
  const size_t per_shard = (n + num_shards - 1) / num_shards;

  for (size_t s = 0; s < num_shards; ++s) {
    const size_t begin = s * per_shard;
    const size_t end = std::min(n, begin + per_shard);
    if (begin >= end) break;
    auto shard = std::make_unique<Shard>();
    shard->data = Dataset(end - begin, data->dim());
    shard->global_ids.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      shard->data.SetRow(static_cast<idx_t>(i - begin),
                         data->Row(static_cast<idx_t>(i)));
      shard->global_ids.push_back(static_cast<idx_t>(i));
    }
    NswBuildOptions nsw = options.nsw;
    if (nsw.num_threads == 0) nsw.num_threads = options.num_threads;
    shard->graph = NswBuilder::Build(shard->data, metric, nsw);
    shard->searcher = std::make_unique<SongSearcher>(&shard->data,
                                                     &shard->graph, metric);
    shards_.push_back(std::move(shard));
  }
}

ShardedSearchResult ShardedSongIndex::Search(
    const Dataset& queries, size_t k, const SongSearchOptions& options,
    size_t num_threads) const {
  ShardedSearchResult out;
  out.results.resize(queries.num());
  out.shard_stats.resize(shards_.size());

  // Per-shard candidate lists, merged per query afterwards.
  std::vector<std::vector<std::vector<Neighbor>>> shard_results(
      shards_.size());
  Timer timer;
  for (size_t s = 0; s < shards_.size(); ++s) {
    shard_results[s].resize(queries.num());
    SearchStats& stats = out.shard_stats[s];
    std::vector<SongWorkspace> workspaces(
        std::max<size_t>(1, num_threads == 0 ? 1 : num_threads));
    std::vector<SearchStats> thread_stats(workspaces.size());
    ParallelFor(queries.num(), workspaces.size(), [&](size_t q, size_t t) {
      shard_results[s][q] = shards_[s]->searcher->Search(
          queries.Row(static_cast<idx_t>(q)), k, options, &workspaces[t],
          &thread_stats[t]);
    });
    for (const SearchStats& ts : thread_stats) stats.Add(ts);
  }

  // k-way merge with global id translation.
  for (size_t q = 0; q < queries.num(); ++q) {
    std::vector<Neighbor> merged;
    for (size_t s = 0; s < shards_.size(); ++s) {
      for (const Neighbor& n : shard_results[s][q]) {
        merged.emplace_back(n.dist, shards_[s]->global_ids[n.id]);
      }
    }
    std::sort(merged.begin(), merged.end());
    if (merged.size() > k) merged.resize(k);
    out.results[q] = std::move(merged);
  }
  out.wall_seconds = timer.ElapsedSeconds();
  return out;
}

ShardedGpuEstimate ShardedSongIndex::EstimateGpu(
    const ShardedSearchResult& result, const std::vector<GpuSpec>& gpus,
    size_t num_queries, size_t k, const SongSearchOptions& options) const {
  SONG_CHECK_MSG(gpus.size() == shards_.size(),
                 "one GpuSpec per shard required");
  ShardedGpuEstimate est;
  est.shard_kernel_seconds.resize(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    WorkloadShape shape;
    shape.num_queries = num_queries;
    shape.dim = full_data_->dim();
    shape.point_bytes = shape.dim * sizeof(float);
    shape.k = k;
    shape.queue_size = std::max(options.queue_size, k);
    shape.degree = shards_[s]->graph.degree();
    shape.multi_query = options.multi_query;
    shape.multi_step = options.multi_step_probe;
    shape.structure = options.structure;
    CostModel model(gpus[s]);
    const KernelBreakdown b = model.Estimate(result.shard_stats[s], shape);
    est.shard_kernel_seconds[s] = b.kernel_seconds;
    est.kernel_seconds = std::max(est.kernel_seconds, b.kernel_seconds);
    // Transfers happen per card but concurrently; keep the slowest link's
    // cost (all presets share the PCIe numbers, so this is that of card 0).
    est.htod_seconds = std::max(
        est.htod_seconds,
        num_queries * shape.dim * sizeof(float) / (gpus[s].pcie_gbps * 1e9) +
            gpus[s].pcie_latency_s);
    est.dtoh_seconds = std::max(
        est.dtoh_seconds,
        num_queries * k * sizeof(Neighbor) / (gpus[s].pcie_gbps * 1e9) +
            gpus[s].pcie_latency_s);
  }
  // Host merge: S*k candidates per query, ~20 ns per element on the host.
  est.merge_seconds = static_cast<double>(num_queries) *
                      static_cast<double>(shards_.size() * k) * 20e-9;
  est.total_seconds = est.kernel_seconds + est.htod_seconds +
                      est.dtoh_seconds + est.merge_seconds;
  return est;
}

}  // namespace song
