#include "gpusim/simt_warp.h"

namespace song {

namespace {

// Lane partials for a strided accumulation: lane l sums f(query[d],
// point[d]) over d = l, l+lanes, ... — the access pattern that makes
// consecutive lanes read consecutive floats (one 128-byte line per 32
// lanes).
template <typename Term>
std::array<float, SimtWarp::kWarpSize> LanePartials(const float* query,
                                                    const float* point,
                                                    size_t dim, size_t lanes,
                                                    const Term& term) {
  std::array<float, SimtWarp::kWarpSize> partial{};
  for (size_t lane = 0; lane < lanes; ++lane) {
    float acc = 0.0f;
    for (size_t d = lane; d < dim; d += lanes) {
      acc += term(query[d], point[d]);
    }
    partial[lane] = acc;
  }
  return partial;
}

}  // namespace

float SimtWarp::ShflDownSum(const std::array<float, kWarpSize>& lane_values,
                            size_t lanes) {
  std::array<float, kWarpSize> values = lane_values;
  // Classic butterfly: for delta = lanes/2 .. 1, every active lane adds the
  // value of lane + delta. One shfl + one add per lane group per level.
  for (size_t delta = lanes / 2; delta >= 1; delta /= 2) {
    for (size_t lane = 0; lane < delta; ++lane) {
      values[lane] += values[lane + delta];
    }
    cycles_->Shfl(1);
    cycles_->Alu(1);
    if (delta == 1) break;
  }
  return values[0];
}

float SimtWarp::ReduceL2(const float* query, const float* point, size_t dim,
                         size_t lanes) {
  const auto partial = LanePartials(
      query, point, dim, lanes,
      [](float q, float p) {
        const float diff = q - p;
        return diff * diff;
      });
  // Cycle accounting: the lanes run in lockstep, so the cost is the per-lane
  // chain of ceil(dim/lanes) FMAs; query reads hit shared memory (one
  // access per loop round, broadcast across lanes), the point streams from
  // global memory.
  const size_t rounds = (dim + lanes - 1) / lanes;
  cycles_->Fma(rounds * 2);       // sub+mul-add per round (lockstep)
  cycles_->SharedAccess(rounds);  // query element reads
  cycles_->GlobalLoad(reinterpret_cast<uintptr_t>(point),
                      dim * sizeof(float));
  return ShflDownSum(partial, lanes);
}

float SimtWarp::ReduceInnerProduct(const float* query, const float* point,
                                   size_t dim, size_t lanes) {
  const auto partial = LanePartials(
      query, point, dim, lanes,
      [](float q, float p) { return q * p; });
  const size_t rounds = (dim + lanes - 1) / lanes;
  cycles_->Fma(rounds);
  cycles_->SharedAccess(rounds);
  cycles_->GlobalLoad(reinterpret_cast<uintptr_t>(point),
                      dim * sizeof(float));
  return -ShflDownSum(partial, lanes);
}

SimtWarp::ProbeInsertResult SimtWarp::ParallelProbeInsert(
    const idx_t* slots, size_t slot_count, size_t start, idx_t key,
    idx_t empty, idx_t tombstone) {
  ProbeInsertResult result;
  size_t first_tombstone = slot_count;
  for (size_t base = 0; base < slot_count; base += kWarpSize) {
    cycles_->SharedAccess(1);  // lockstep slot read
    cycles_->Shfl(1);          // ballot over (key | empty | tombstone) hits
    cycles_->Alu(1);
    for (size_t lane = 0; lane < kWarpSize && base + lane < slot_count;
         ++lane) {
      const size_t probe = (start + base + lane) % slot_count;
      const idx_t slot = slots[probe];
      if (slot == key) {
        result.found_key = true;
        result.insert_slot = probe;
        return result;
      }
      if (slot == tombstone && first_tombstone == slot_count) {
        first_tombstone = probe;
      }
      if (slot == empty) {
        result.insert_slot =
            first_tombstone != slot_count ? first_tombstone : probe;
        return result;
      }
    }
  }
  result.insert_slot = first_tombstone;  // slot_count when truly full
  return result;
}

size_t SimtWarp::ParallelProbe(const idx_t* slots, size_t slot_count,
                               size_t start, idx_t key, idx_t empty) {
  // Rounds of 32 lanes each; every lane reads one slot, then a ballot
  // (modeled as one shfl + one alu) picks the first hit.
  for (size_t base = 0; base < slot_count; base += kWarpSize) {
    cycles_->SharedAccess(1);  // lockstep slot read (one shared transaction)
    cycles_->Shfl(1);          // ballot
    cycles_->Alu(1);           // ffs on the ballot mask
    for (size_t lane = 0; lane < kWarpSize; ++lane) {
      const size_t probe = (start + base + lane) % slot_count;
      const idx_t slot = slots[probe];
      if (slot == key || slot == empty) return probe;
    }
  }
  return slot_count;
}

}  // namespace song
