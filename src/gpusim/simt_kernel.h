// Copyright 2026 The SONG-Repro Authors.
//
// A full SONG search executed through the lane-level warp primitives of
// gpusim/simt_warp.h — the closest thing to running the CUDA kernel without
// a GPU. Stage-by-stage cycle ledgers (candidate locating / bulk distance /
// maintenance) come from the executed instruction stream rather than from
// the analytic model, so the two can be cross-validated (see tests and the
// bench_fig10 discussion in EXPERIMENTS.md).
//
// Scope: the hash-table visited structure (with the §IV-D/E optimizations);
// the Bloom/Cuckoo alternatives only change stage-3 probe costs and are
// covered by the analytic model.

#ifndef SONG_GPUSIM_SIMT_KERNEL_H_
#define SONG_GPUSIM_SIMT_KERNEL_H_

#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"
#include "graph/fixed_degree_graph.h"
#include "gpusim/gpu_spec.h"
#include "gpusim/simt_warp.h"
#include "obs/metrics.h"
#include "song/bounded_heap.h"
#include "song/search_options.h"

namespace song {

struct SimtKernelResult {
  std::vector<Neighbor> topk;
  /// Executed warp cycles per stage.
  double locate_cycles = 0.0;
  double distance_cycles = 0.0;
  double maintain_cycles = 0.0;
  /// Global-memory traffic in bytes (32B-sector granularity).
  size_t global_bytes = 0;
  size_t iterations = 0;
  size_t distance_computations = 0;

  double TotalCycles() const {
    return locate_cycles + distance_cycles + maintain_cycles;
  }
};

/// Accumulates an executed-kernel cycle ledger into `registry` under
/// `<prefix>.*` counters/histograms (stage cycles, global bytes, iteration
/// counts), so lane-level runs report through the same registry as the
/// analytic model instead of staying result-struct-only.
void RecordSimtKernelResult(const SimtKernelResult& result,
                            obs::MetricsRegistry* registry,
                            const std::string& prefix = "song.simt");

class SimtSongKernel {
 public:
  /// Supported metrics: kL2 and kInnerProduct (normalize rows + IP for
  /// cosine). `data` and `graph` must outlive the kernel.
  SimtSongKernel(const Dataset* data, const FixedDegreeGraph* graph,
                 Metric metric, idx_t entry = 0,
                 const GpuSpec& spec = GpuSpec::V100());

  /// One query through the warp-executed pipeline.
  SimtKernelResult Search(const float* query, size_t k,
                          const SongSearchOptions& options) const;

 private:
  const Dataset* data_;
  const FixedDegreeGraph* graph_;
  Metric metric_;
  idx_t entry_;
  GpuSpec spec_;
};

}  // namespace song

#endif  // SONG_GPUSIM_SIMT_KERNEL_H_
