#include "gpusim/simt_kernel.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/logging.h"

namespace song {

namespace {

// Raw open-addressing slot array probed with the warp primitive — the
// layout the CUDA kernel keeps in shared (or global) memory. Each call
// names the warp issuing the probe so the cycles land in the right stage
// ledger.
class WarpVisitedTable {
 public:
  static constexpr idx_t kEmpty = kInvalidIdx;
  static constexpr idx_t kTombstone = kInvalidIdx - 1;

  explicit WarpVisitedTable(size_t capacity) : capacity_(capacity) {
    size_t slots = 32;
    while (slots < 2 * capacity) slots <<= 1;
    slots_.assign(slots, kEmpty);
  }

  bool Test(idx_t key, SimtWarp* warp) const {
    const size_t pos = warp->ParallelProbe(slots_.data(), slots_.size(),
                                           Home(key), key, kEmpty);
    return pos < slots_.size() && slots_[pos] == key;
  }

  bool Insert(idx_t key, SimtWarp* warp) {
    if (size_ >= capacity_) return false;
    // Single probe pass: stops at the key or the first empty slot, reusing
    // the first tombstone passed on the way (a tombstone beyond the
    // stopping empty must NOT be used — later probes for the key would
    // stop at the empty and miss it).
    const SimtWarp::ProbeInsertResult probe = warp->ParallelProbeInsert(
        slots_.data(), slots_.size(), Home(key), key, kEmpty, kTombstone);
    if (probe.found_key) return false;
    if (probe.insert_slot >= slots_.size()) return false;
    slots_[probe.insert_slot] = key;
    ++size_;
    return true;
  }

  void Erase(idx_t key, SimtWarp* warp) {
    const size_t pos = warp->ParallelProbe(slots_.data(), slots_.size(),
                                           Home(key), key, kEmpty);
    if (pos < slots_.size() && slots_[pos] == key) {
      slots_[pos] = kTombstone;
      --size_;
    }
  }

  size_t size() const { return size_; }

 private:
  size_t Home(idx_t key) const {
    uint64_t x = key;
    x *= 0x9e3779b97f4a7c15ULL;
    x ^= x >> 29;
    return static_cast<size_t>(x) & (slots_.size() - 1);
  }

  std::vector<idx_t> slots_;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

// Heap cycle cost on thread 0: one shared access per touched level.
size_t HeapLevels(size_t n) {
  size_t levels = 1;
  while (n > 1) {
    n >>= 1;
    ++levels;
  }
  return levels;
}

}  // namespace

SimtSongKernel::SimtSongKernel(const Dataset* data,
                               const FixedDegreeGraph* graph, Metric metric,
                               idx_t entry, const GpuSpec& spec)
    : data_(data), graph_(graph), metric_(metric), entry_(entry),
      spec_(spec) {
  SONG_CHECK(data != nullptr && graph != nullptr);
  SONG_CHECK_MSG(metric != Metric::kCosine,
                 "SimtSongKernel: normalize rows and use kInnerProduct");
  SONG_CHECK(data->num() == graph->num_vertices());
}

SimtKernelResult SimtSongKernel::Search(
    const float* query, size_t k, const SongSearchOptions& options) const {
  const size_t ef = std::max(options.queue_size, k);
  const size_t dim = data_->dim();
  const size_t degree = graph_->degree();
  const size_t mq = std::max<size_t>(1, options.multi_query);
  const size_t lanes = SimtWarp::kWarpSize / mq;
  const size_t multi_step = std::max<size_t>(1, options.multi_step_probe);

  CycleCounter locate(spec_), distance(spec_), maintain(spec_);
  SimtWarp locate_warp(&locate);
  SimtWarp distance_warp(&distance);
  SimtWarp maintain_warp(&maintain);

  const size_t visited_capacity =
      options.visited_deletion ? 2 * ef + 64
      : options.selected_insertion
          ? std::min(16 * ef + 256, data_->num() + 1)
          : std::min(64 * ef + 1024, data_->num() + 1);
  WarpVisitedTable visited(visited_capacity);

  SymmetricMinMaxHeap q(ef);
  BoundedMaxHeap topk(ef);

  auto heap_cost = [&](CycleCounter* c, size_t heap_size) {
    c->SharedAccess(HeapLevels(heap_size + 1));
    c->Alu(HeapLevels(heap_size + 1));
  };

  auto reduce = [&](const float* point) {
    return metric_ == Metric::kL2
               ? distance_warp.ReduceL2(query, point, dim, lanes)
               : distance_warp.ReduceInnerProduct(query, point, dim, lanes);
  };

  SimtKernelResult result;

  // Init: entry distance + structure seeds.
  const float entry_dist = reduce(data_->Row(entry_));
  ++result.distance_computations;
  visited.Insert(entry_, &maintain_warp);
  q.Push(Neighbor(entry_dist, entry_));
  heap_cost(&maintain, q.size());

  std::vector<idx_t> candidates;
  std::vector<float> dists;
  candidates.reserve(degree * multi_step);

  while (!q.empty()) {
    ++result.iterations;
    candidates.clear();

    // ---- Stage 1: candidate locating. ----
    bool terminate = false;
    for (size_t step = 0; step < multi_step && !q.empty(); ++step) {
      const Neighbor now = q.Min();
      heap_cost(&locate, q.size());
      if (topk.full() && now.dist > topk.Max().dist) {
        if (step == 0) terminate = true;
        break;
      }
      q.PopMin();
      Neighbor evicted;
      const bool had_eviction = topk.full();
      const bool entered = topk.PushBounded(now, &evicted);
      heap_cost(&locate, topk.size());
      if (entered && had_eviction && options.visited_deletion) {
        visited.Erase(evicted.id, &locate_warp);
      }

      const idx_t* row = graph_->Row(now.id);
      locate.GlobalLoad(reinterpret_cast<uintptr_t>(row),
                        degree * sizeof(idx_t));
      for (size_t i = 0; i < degree && row[i] != kInvalidIdx; ++i) {
        const idx_t v = row[i];
        if (visited.Test(v, &locate_warp)) continue;
        bool duplicate = false;
        for (const idx_t c : candidates) duplicate |= (c == v);
        if (!duplicate) candidates.push_back(v);
      }
    }
    if (terminate) break;
    if (candidates.empty()) continue;

    // ---- Stage 2: bulk distance computation via warp reductions. ----
    dists.resize(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      dists[i] = reduce(data_->Row(candidates[i]));
    }
    result.distance_computations += candidates.size();

    // ---- Stage 3: maintenance on thread 0 (mark before enqueue, exactly
    // as the host pipeline — see search_core.h). ----
    for (size_t i = 0; i < candidates.size(); ++i) {
      const Neighbor cand(dists[i], candidates[i]);
      maintain.SharedAccess(1);  // read dist[i] from shared staging
      if (options.selected_insertion && topk.full() &&
          cand.dist > topk.Max().dist) {
        continue;
      }
      if (!visited.Insert(cand.id, &maintain_warp)) continue;
      Neighbor evicted;
      const bool had_eviction = q.full();
      const bool accepted = q.PushBounded(cand, &evicted);
      heap_cost(&maintain, q.size());
      if (!accepted) {
        if (options.visited_deletion) {
          visited.Erase(cand.id, &maintain_warp);
        }
        continue;
      }
      if (had_eviction && options.visited_deletion) {
        visited.Erase(evicted.id, &maintain_warp);
      }
    }
  }

  result.topk = topk.TakeSorted();
  if (result.topk.size() > k) result.topk.resize(k);
  result.locate_cycles = locate.TotalCycles();
  result.distance_cycles = distance.TotalCycles();
  result.maintain_cycles = maintain.TotalCycles();
  result.global_bytes = locate.GlobalBytes() + distance.GlobalBytes() +
                        maintain.GlobalBytes();
  return result;
}

void RecordSimtKernelResult(const SimtKernelResult& result,
                            obs::MetricsRegistry* registry,
                            const std::string& prefix) {
  if (registry == nullptr) return;
  registry->GetCounter(prefix + ".searches").Increment();
  registry->GetCounter(prefix + ".iterations").Increment(result.iterations);
  registry->GetCounter(prefix + ".distance_computations")
      .Increment(result.distance_computations);
  registry->GetCounter(prefix + ".global_bytes").Increment(result.global_bytes);
  registry->GetHistogram(prefix + ".locate_cycles")
      .Observe(result.locate_cycles);
  registry->GetHistogram(prefix + ".distance_cycles")
      .Observe(result.distance_cycles);
  registry->GetHistogram(prefix + ".maintain_cycles")
      .Observe(result.maintain_cycles);
  registry->GetHistogram(prefix + ".total_cycles")
      .Observe(result.TotalCycles());
}

}  // namespace song
