#include "gpusim/cost_model.h"

#include <algorithm>
#include <cmath>

namespace song {

namespace {

// Per-query shared budget for the visited structure; beyond this it lives in
// global memory (the paper stores the un-optimized table in global memory
// because "its size can grow beyond the L1 cache capacity", §VIII).
constexpr size_t kVisitedSharedBudget = 16 * 1024;

double Log2Ceil(double x) { return std::max(1.0, std::ceil(std::log2(x))); }

}  // namespace

double CostModel::SharedBytesPerQuery(const WorkloadShape& shape,
                                      size_t visited_bytes,
                                      bool include_visited) const {
  // Query vector + two bounded heaps + candidate id/dist staging arrays.
  double bytes = static_cast<double>(shape.dim) * sizeof(float);
  bytes += (2.0 * shape.queue_size + 2.0) * sizeof(Neighbor);  // q (SMMH)
  bytes += static_cast<double>(shape.queue_size) * sizeof(Neighbor);  // topk
  bytes += static_cast<double>(shape.degree * shape.multi_step) *
           (sizeof(idx_t) + sizeof(float));
  if (include_visited) bytes += static_cast<double>(visited_bytes);
  return bytes;
}

KernelBreakdown CostModel::Estimate(const SearchStats& totals,
                                    const WorkloadShape& shape) const {
  KernelBreakdown out;
  const double nq = static_cast<double>(std::max<size_t>(1, shape.num_queries));
  const double clock_hz = spec_.clock_ghz * 1e9;
  const size_t mq = std::max<size_t>(1, shape.multi_query);

  // ---- Occupancy from shared-memory footprint. ----
  const size_t visited_bytes = totals.visited_capacity_bytes;
  const bool visited_fits = visited_bytes <= kVisitedSharedBudget;
  const double shared_per_query =
      SharedBytesPerQuery(shape, visited_bytes, visited_fits);
  const double shared_per_warp = shared_per_query * static_cast<double>(mq);
  double warps_per_sm =
      static_cast<double>(spec_.shared_mem_per_sm) / shared_per_warp;
  warps_per_sm = std::clamp(warps_per_sm, 1.0,
                            static_cast<double>(spec_.max_warps_per_sm));
  const double num_warps = std::ceil(nq / static_cast<double>(mq));
  const double resident =
      std::min(static_cast<double>(spec_.num_sms) * warps_per_sm, num_warps);

  out.resident_warps = resident;
  out.visited_in_shared = visited_fits;
  out.shared_bytes_per_warp = shared_per_warp;

  // ---- Per-query averaged counters. ----
  const double rows = static_cast<double>(totals.graph_rows_loaded) / nq;
  const double cands = static_cast<double>(totals.distance_computations) / nq;
  const double pops = static_cast<double>(totals.q_pops) / nq;
  const double pushes = static_cast<double>(totals.q_pushes +
                                            totals.q_evictions) /
                        nq;
  const double topk_ops = static_cast<double>(totals.topk_pushes +
                                              totals.topk_evictions) /
                          nq;
  const double tests = static_cast<double>(totals.visited_tests) / nq;
  const double inserts = static_cast<double>(totals.visited_insertions) / nq;
  const double deletes = static_cast<double>(totals.visited_deletions) / nq;

  const double heap_cost =
      (Log2Ceil(static_cast<double>(shape.queue_size) + 1.0) + 1.0) *
      spec_.shared_latency_cycles;
  const double visited_latency = visited_fits ? spec_.shared_latency_cycles
                                              : spec_.global_latency_cycles;
  // Structure-dependent probe widths: Bloom touches num_hashes words,
  // Cuckoo two buckets, open addressing ~1 warp-parallel probe.
  double probe_factor = 1.0;
  if (shape.structure == VisitedStructure::kBloomFilter) probe_factor = 7.0;
  if (shape.structure == VisitedStructure::kCuckooFilter) probe_factor = 2.0;

  // ---- Stage chains (cycles per query). ----
  // Stage 1: dependent graph-row fetches (divergent across the mq queries of
  // a warp, so they serialize), queue pops, visited tests during gather
  // (warp-parallel probing hides ~4x).
  const double locate_cycles =
      rows * spec_.global_latency_cycles * static_cast<double>(mq) +
      pops * heap_cost + tests * probe_factor * visited_latency / 4.0;

  // Stage 2: warp-reduction distances: each candidate streams point_bytes
  // over 32/mq lanes (1 cycle per 4B lane-load once the pipeline is primed),
  // one reduction (log2(32) shuffle steps) and one latency exposure per
  // candidate batch row.
  const double lanes = 32.0 / static_cast<double>(mq);
  const double bytes_per_cand = static_cast<double>(shape.point_bytes);
  // Per candidate: one 4-byte lane load every cycle group (~4 cycles issue
  // + dependency per load), the log2(32) shuffle reduction, and a partially
  // hidden latency exposure for the first line of the vector.
  const double distance_cycles =
      cands * (bytes_per_cand / lanes + 5.0 +
               spec_.global_latency_cycles / 8.0);

  // Stage 3: single-thread heap/hash maintenance on shared (or spilled)
  // structures.
  const double maintain_cycles =
      (pushes + topk_ops) * heap_cost +
      (inserts + deletes) * probe_factor * visited_latency +
      cands * spec_.shared_latency_cycles / 2.0;  // dist-array reads

  // Per-warp chain: stage-1 serialization and stage-2 lane narrowing are
  // already baked into the per-query cycles above; stage-3 runs SIMT-lockstep
  // across the mq queries of the warp. Saturated mode spreads warps
  // continuously over the resident slots; exact-batch mode pays whole waves
  // (an underfilled last wave still costs a full chain).
  const double chain_cycles = locate_cycles + distance_cycles +
                              maintain_cycles;
  double waves = num_warps / resident;
  if (!shape.saturated) waves = std::ceil(waves);
  const double chain_seconds = chain_cycles * waves / clock_hz;

  // ---- Throughput floors. ----
  double global_bytes = static_cast<double>(totals.graph_bytes_loaded +
                                            totals.data_bytes_loaded);
  if (!visited_fits) {
    // Each spilled visited access touches one 32B sector.
    global_bytes += (static_cast<double>(totals.visited_tests +
                                         totals.visited_insertions +
                                         totals.visited_deletions)) *
                    32.0;
  }
  const double mem_seconds =
      global_bytes / (spec_.mem_bandwidth_gbps * spec_.mem_efficiency * 1e9);

  const double flops = static_cast<double>(totals.distance_computations) *
                       static_cast<double>(shape.point_bytes) / 4.0 * 3.0;
  const double compute_seconds =
      flops / (static_cast<double>(spec_.TotalCores()) * clock_hz * 2.0);

  // Launch overhead: negligible for deep batches, visible at batch ~100.
  constexpr double kLaunchSeconds = 20e-6;
  const double kernel_seconds =
      std::max({chain_seconds, mem_seconds, compute_seconds}) +
      kLaunchSeconds;

  // Attribute kernel time to stages proportionally to their chain shares
  // (the paper's Fig 10 shows exactly this attribution).
  const double scale = kernel_seconds / std::max(chain_seconds, 1e-30);
  out.locate_seconds =
      locate_cycles / chain_cycles * chain_seconds * scale;
  out.distance_seconds =
      distance_cycles / chain_cycles * chain_seconds * scale;
  out.maintain_seconds =
      maintain_cycles / chain_cycles * chain_seconds * scale;
  out.kernel_seconds = kernel_seconds;

  // ---- PCIe transfers. ----
  const double query_bytes = nq * static_cast<double>(shape.dim) *
                             sizeof(float);
  const double result_bytes =
      nq * static_cast<double>(shape.k) * sizeof(Neighbor);
  out.htod_seconds = query_bytes / (spec_.pcie_gbps * 1e9) +
                     spec_.pcie_latency_s;
  out.dtoh_seconds = result_bytes / (spec_.pcie_gbps * 1e9) +
                     spec_.pcie_latency_s;
  out.total_seconds = out.kernel_seconds + out.htod_seconds +
                      out.dtoh_seconds;
  return out;
}

}  // namespace song
