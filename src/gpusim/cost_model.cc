#include "gpusim/cost_model.h"

#include <algorithm>
#include <cmath>

namespace song {

namespace {

// Per-query shared budget for the visited structure; beyond this it lives in
// global memory (the paper stores the un-optimized table in global memory
// because "its size can grow beyond the L1 cache capacity", §VIII).
constexpr size_t kVisitedSharedBudget = 16 * 1024;

double Log2Ceil(double x) { return std::max(1.0, std::ceil(std::log2(x))); }

}  // namespace

double CostModel::SharedBytesPerQuery(const WorkloadShape& shape,
                                      size_t visited_bytes,
                                      bool include_visited) const {
  // Query vector + two bounded heaps + candidate id/dist staging arrays.
  double bytes = static_cast<double>(shape.dim) * sizeof(float);
  bytes += (2.0 * shape.queue_size + 2.0) * sizeof(Neighbor);  // q (SMMH)
  bytes += static_cast<double>(shape.queue_size) * sizeof(Neighbor);  // topk
  bytes += static_cast<double>(shape.degree * shape.multi_step) *
           (sizeof(idx_t) + sizeof(float));
  if (include_visited) bytes += static_cast<double>(visited_bytes);
  // PQ traversal keeps the per-query ADC table resident in shared memory:
  // every Stage-2 lookup hits it, so spilling it would dominate the kernel.
  if (shape.pq_m > 0) {
    bytes += static_cast<double>(shape.pq_m) * 256.0 * sizeof(float);
  }
  return bytes;
}

StageUnitCosts CostModel::UnitCosts(const WorkloadShape& shape,
                                    bool visited_in_shared) const {
  const size_t mq = std::max<size_t>(1, shape.multi_query);
  const double heap_cost =
      (Log2Ceil(static_cast<double>(shape.queue_size) + 1.0) + 1.0) *
      spec_.shared_latency_cycles;
  const double visited_latency = visited_in_shared
                                     ? spec_.shared_latency_cycles
                                     : spec_.global_latency_cycles;
  // Structure-dependent probe widths: Bloom touches num_hashes words,
  // Cuckoo two buckets, open addressing ~1 warp-parallel probe.
  double probe_factor = 1.0;
  if (shape.structure == VisitedStructure::kBloomFilter) probe_factor = 7.0;
  if (shape.structure == VisitedStructure::kCuckooFilter) probe_factor = 2.0;

  StageUnitCosts c;
  // Stage 1: dependent graph-row fetches (divergent across the mq queries of
  // a warp, so they serialize), queue pops, visited tests during gather
  // (warp-parallel probing hides ~4x).
  c.locate_per_row = spec_.global_latency_cycles * static_cast<double>(mq);
  c.locate_per_pop = heap_cost;
  c.locate_per_test = probe_factor * visited_latency / 4.0;

  // Stage 2: warp-reduction distances: each candidate streams point_bytes
  // over 32/mq lanes (1 cycle per 4B lane-load once the pipeline is primed),
  // one reduction (log2(32) shuffle steps) and one partially hidden latency
  // exposure for the first line of the vector.
  const double lanes = 32.0 / static_cast<double>(mq);
  if (shape.pq_m > 0) {
    // PQ traversal: each candidate streams its m-byte code and performs m
    // shared-memory LUT gathers, both spread over the warp's lanes, plus
    // the same reduction + first-line latency exposure as the exact path.
    const double m = static_cast<double>(shape.pq_m);
    c.distance_per_candidate =
        m / lanes + m * spec_.shared_latency_cycles / lanes + 5.0 +
        spec_.global_latency_cycles / 8.0;
    // ADC table build: each of the m*256 entries is a sub_dim-float
    // partial distance, computed warp-parallel once per query.
    const double sub_dim = static_cast<double>(shape.dim) / m;
    c.distance_per_table_entry = sub_dim / lanes + 1.0;
    // Exact rerank of the final pool: one full-vector distance per entry,
    // priced like an exact-traversal candidate.
    c.rerank_per_candidate =
        static_cast<double>(shape.full_point_bytes) / lanes + 5.0 +
        spec_.global_latency_cycles / 8.0;
  } else {
    c.distance_per_candidate = static_cast<double>(shape.point_bytes) / lanes +
                               5.0 + spec_.global_latency_cycles / 8.0;
  }

  // Stage 3: single-thread heap/hash maintenance on shared (or spilled)
  // structures, plus dist-array reads from the staging buffer.
  c.maintain_per_heap_push = heap_cost;
  c.maintain_per_topk_op = heap_cost;
  c.maintain_per_visited_op = probe_factor * visited_latency;
  c.maintain_per_candidate = spec_.shared_latency_cycles / 2.0;
  return c;
}

TraceStageCycles CostModel::PriceIteration(const obs::TraceIterationRow& row,
                                           const StageUnitCosts& costs) const {
  TraceStageCycles cycles;
  cycles.locate = row.rows_loaded * costs.locate_per_row +
                  row.q_pops * costs.locate_per_pop +
                  row.visited_tests * costs.locate_per_test;
  cycles.distance = row.dist_comps * costs.distance_per_candidate;
  cycles.maintain =
      row.heap_pushes * costs.maintain_per_heap_push +
      row.topk_ops * costs.maintain_per_topk_op +
      (row.visited_inserts + row.visited_deletes) *
          costs.maintain_per_visited_op +
      row.dist_comps * costs.maintain_per_candidate;
  return cycles;
}

TraceStageCycles CostModel::PriceTrace(const obs::SearchTrace& trace,
                                       const StageUnitCosts& costs) const {
  TraceStageCycles total;
  for (const obs::TraceIterationRow& row : trace.rows) {
    const TraceStageCycles it = PriceIteration(row, costs);
    total.locate += it.locate;
    total.distance += it.distance;
    total.maintain += it.maintain;
  }
  return total;
}

KernelBreakdown CostModel::Estimate(const SearchStats& totals,
                                    const WorkloadShape& shape) const {
  KernelBreakdown out;
  const double nq = static_cast<double>(std::max<size_t>(1, shape.num_queries));
  const double clock_hz = spec_.clock_ghz * 1e9;
  const size_t mq = std::max<size_t>(1, shape.multi_query);

  // ---- Occupancy from shared-memory footprint. ----
  const size_t visited_bytes = totals.visited_capacity_bytes;
  const bool visited_fits = visited_bytes <= kVisitedSharedBudget;
  const double shared_per_query =
      SharedBytesPerQuery(shape, visited_bytes, visited_fits);
  const double shared_per_warp = shared_per_query * static_cast<double>(mq);
  double warps_per_sm =
      static_cast<double>(spec_.shared_mem_per_sm) / shared_per_warp;
  warps_per_sm = std::clamp(warps_per_sm, 1.0,
                            static_cast<double>(spec_.max_warps_per_sm));
  const double num_warps = std::ceil(nq / static_cast<double>(mq));
  const double resident =
      std::min(static_cast<double>(spec_.num_sms) * warps_per_sm, num_warps);

  out.resident_warps = resident;
  out.visited_in_shared = visited_fits;
  out.shared_bytes_per_warp = shared_per_warp;

  // ---- Per-query averaged counters. ----
  const double rows = static_cast<double>(totals.graph_rows_loaded) / nq;
  const double cands = static_cast<double>(totals.distance_computations) / nq;
  const double pops = static_cast<double>(totals.q_pops) / nq;
  const double pushes = static_cast<double>(totals.q_pushes +
                                            totals.q_evictions) /
                        nq;
  const double topk_ops = static_cast<double>(totals.topk_pushes +
                                              totals.topk_evictions) /
                          nq;
  const double tests = static_cast<double>(totals.visited_tests) / nq;
  const double inserts = static_cast<double>(totals.visited_insertions) / nq;
  const double deletes = static_cast<double>(totals.visited_deletions) / nq;

  // ---- Stage chains (cycles per query), priced through the shared unit
  // table (obs traces use the same table, keeping span sums consistent). ----
  const StageUnitCosts unit = UnitCosts(shape, visited_fits);
  const double locate_cycles = rows * unit.locate_per_row +
                               pops * unit.locate_per_pop +
                               tests * unit.locate_per_test;
  // Query-level PQ work joins the distance chain: the ADC table built once
  // up front and the exact rerank of the final pool.
  const double table_entries = static_cast<double>(totals.adc_tables_built) /
                               nq * static_cast<double>(shape.pq_m) * 256.0;
  const double reranks = static_cast<double>(totals.rerank_candidates) / nq;
  const double distance_cycles =
      cands * unit.distance_per_candidate +
      table_entries * unit.distance_per_table_entry +
      reranks * unit.rerank_per_candidate;
  const double maintain_cycles =
      pushes * unit.maintain_per_heap_push +
      topk_ops * unit.maintain_per_topk_op +
      (inserts + deletes) * unit.maintain_per_visited_op +
      cands * unit.maintain_per_candidate;

  // Per-warp chain: stage-1 serialization and stage-2 lane narrowing are
  // already baked into the per-query cycles above; stage-3 runs SIMT-lockstep
  // across the mq queries of the warp. Saturated mode spreads warps
  // continuously over the resident slots; exact-batch mode pays whole waves
  // (an underfilled last wave still costs a full chain).
  const double chain_cycles = locate_cycles + distance_cycles +
                              maintain_cycles;
  double waves = num_warps / resident;
  if (!shape.saturated) waves = std::ceil(waves);
  const double chain_seconds = chain_cycles * waves / clock_hz;

  // ---- Throughput floors. ----
  double global_bytes = static_cast<double>(totals.graph_bytes_loaded +
                                            totals.data_bytes_loaded +
                                            totals.rerank_bytes_loaded);
  if (!visited_fits) {
    // Each spilled visited access touches one 32B sector.
    global_bytes += (static_cast<double>(totals.visited_tests +
                                         totals.visited_insertions +
                                         totals.visited_deletions)) *
                    32.0;
  }
  const double mem_seconds =
      global_bytes / (spec_.mem_bandwidth_gbps * spec_.mem_efficiency * 1e9);

  double flops = static_cast<double>(totals.distance_computations) *
                 static_cast<double>(shape.point_bytes) / 4.0 * 3.0;
  if (shape.pq_m > 0) {
    // ADC table: dim * 256 MACs per query; rerank: exact distances over the
    // full vectors (the traversal term above only covers code lookups).
    flops += static_cast<double>(totals.adc_tables_built) *
             static_cast<double>(shape.dim) * 256.0 * 2.0;
    flops += static_cast<double>(totals.rerank_candidates) *
             static_cast<double>(shape.full_point_bytes) / 4.0 * 3.0;
  }
  const double compute_seconds =
      flops / (static_cast<double>(spec_.TotalCores()) * clock_hz * 2.0);

  // Launch overhead: negligible for deep batches, visible at batch ~100.
  constexpr double kLaunchSeconds = 20e-6;
  const double kernel_seconds =
      std::max({chain_seconds, mem_seconds, compute_seconds}) +
      kLaunchSeconds;

  // Attribute kernel time to stages proportionally to their chain shares
  // (the paper's Fig 10 shows exactly this attribution).
  const double scale = kernel_seconds / std::max(chain_seconds, 1e-30);
  out.locate_seconds =
      locate_cycles / chain_cycles * chain_seconds * scale;
  out.distance_seconds =
      distance_cycles / chain_cycles * chain_seconds * scale;
  out.maintain_seconds =
      maintain_cycles / chain_cycles * chain_seconds * scale;
  out.kernel_seconds = kernel_seconds;

  // ---- PCIe transfers. ----
  const double query_bytes = nq * static_cast<double>(shape.dim) *
                             sizeof(float);
  const double result_bytes =
      nq * static_cast<double>(shape.k) * sizeof(Neighbor);
  out.htod_seconds = query_bytes / (spec_.pcie_gbps * 1e9) +
                     spec_.pcie_latency_s;
  out.dtoh_seconds = result_bytes / (spec_.pcie_gbps * 1e9) +
                     spec_.pcie_latency_s;
  out.total_seconds = out.kernel_seconds + out.htod_seconds +
                      out.dtoh_seconds;
  return out;
}

void RecordKernelBreakdown(const KernelBreakdown& breakdown,
                           size_t num_queries, const GpuSpec& spec,
                           obs::MetricsRegistry* registry,
                           const std::string& prefix) {
  if (registry == nullptr) return;
  registry->GetCounter(prefix + ".estimates").Increment();
  registry->GetGauge(prefix + ".locate_seconds").Set(breakdown.locate_seconds);
  registry->GetGauge(prefix + ".distance_seconds")
      .Set(breakdown.distance_seconds);
  registry->GetGauge(prefix + ".maintain_seconds")
      .Set(breakdown.maintain_seconds);
  registry->GetGauge(prefix + ".kernel_seconds").Set(breakdown.kernel_seconds);
  registry->GetGauge(prefix + ".htod_seconds").Set(breakdown.htod_seconds);
  registry->GetGauge(prefix + ".dtoh_seconds").Set(breakdown.dtoh_seconds);
  registry->GetGauge(prefix + ".total_seconds").Set(breakdown.total_seconds);
  registry->GetGauge(prefix + ".locate_pct").Set(breakdown.LocatePct());
  registry->GetGauge(prefix + ".distance_pct").Set(breakdown.DistancePct());
  registry->GetGauge(prefix + ".maintain_pct").Set(breakdown.MaintainPct());
  registry->GetGauge(prefix + ".resident_warps").Set(breakdown.resident_warps);
  registry->GetGauge(prefix + ".visited_in_shared")
      .Set(breakdown.visited_in_shared ? 1.0 : 0.0);
  registry->GetGauge(prefix + ".shared_bytes_per_warp")
      .Set(breakdown.shared_bytes_per_warp);
  registry->GetGauge(prefix + ".qps").Set(breakdown.Qps(num_queries));
  // The spec name rides along as a labeled counter so dashboards can tell
  // V100 runs from P40/TITAN X runs.
  registry->GetCounter(prefix + ".estimates." + spec.name).Increment();
}

}  // namespace song
