// Copyright 2026 The SONG-Repro Authors.
//
// Hardware descriptions of the three GPUs the paper evaluates (§VIII-G):
// NVIDIA TESLA V100, TESLA P40 and TITAN X. The cost model combines these
// constants with the warp-level work counters collected by the searcher to
// produce simulated kernel times — the substitution for physical CUDA
// execution documented in DESIGN.md §1.

#ifndef SONG_GPUSIM_GPU_SPEC_H_
#define SONG_GPUSIM_GPU_SPEC_H_

#include <cstddef>
#include <string>

namespace song {

struct GpuSpec {
  std::string name;
  size_t num_sms = 0;
  size_t cores_per_sm = 0;
  double clock_ghz = 0.0;
  /// Peak global-memory bandwidth (GB/s) and the fraction achievable by the
  /// kernel's scattered row/vector reads.
  double mem_bandwidth_gbps = 0.0;
  double mem_efficiency = 0.55;
  /// Latencies in core cycles.
  double global_latency_cycles = 450.0;
  double shared_latency_cycles = 28.0;
  /// Configurable L1/shared capacity per SM (paper §II: 96 KB on Volta).
  size_t shared_mem_per_sm = 96 * 1024;
  size_t max_warps_per_sm = 64;
  /// Host<->device link (effective PCIe 3.0 x16) and per-transfer latency.
  double pcie_gbps = 12.0;
  double pcie_latency_s = 10e-6;

  size_t TotalCores() const { return num_sms * cores_per_sm; }

  static GpuSpec V100() {
    GpuSpec s;
    s.name = "V100";
    s.num_sms = 80;
    s.cores_per_sm = 64;
    s.clock_ghz = 1.53;
    s.mem_bandwidth_gbps = 900.0;
    s.global_latency_cycles = 440.0;
    s.shared_latency_cycles = 26.0;
    s.shared_mem_per_sm = 96 * 1024;
    return s;
  }

  static GpuSpec P40() {
    GpuSpec s;
    s.name = "P40";
    s.num_sms = 30;
    s.cores_per_sm = 128;
    s.clock_ghz = 1.53;
    s.mem_bandwidth_gbps = 346.0;
    s.global_latency_cycles = 500.0;
    s.shared_latency_cycles = 30.0;
    s.shared_mem_per_sm = 96 * 1024;
    return s;
  }

  static GpuSpec TitanX() {
    GpuSpec s;
    s.name = "TITAN X";
    s.num_sms = 28;
    s.cores_per_sm = 128;
    s.clock_ghz = 1.42;
    s.mem_bandwidth_gbps = 480.0;
    s.global_latency_cycles = 500.0;
    s.shared_latency_cycles = 30.0;
    s.shared_mem_per_sm = 96 * 1024;
    return s;
  }
};

}  // namespace song

#endif  // SONG_GPUSIM_GPU_SPEC_H_
