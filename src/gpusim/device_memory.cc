#include "gpusim/device_memory.h"

#include <cstdio>

#include "core/fault_injection.h"
#include "core/types.h"

namespace song {

namespace {

size_t WorkingBytes(const DeploymentShape& shape) {
  // Per resident query: query vector + bounded heaps (3*queue Neighbors) +
  // visited table (2*queue entries at 2x slots) + staging.
  const size_t per_query = shape.dim * sizeof(float) +
                           3 * shape.queue_size * 8 +
                           4 * shape.queue_size * sizeof(idx_t) + 512;
  return shape.resident_queries * per_query;
}

}  // namespace

MemoryPlan PlanDeployment(const DeploymentShape& shape, const GpuSpec& spec) {
  MemoryPlan plan;
  plan.capacity_bytes = DeviceCapacityBytes(spec);
  plan.data_bytes = shape.num_points * shape.dim * sizeof(float);
  plan.graph_bytes = shape.num_points * shape.graph_degree * sizeof(idx_t);
  plan.working_bytes = WorkingBytes(shape);
  plan.total_bytes = plan.data_bytes + plan.graph_bytes + plan.working_bytes;
  plan.fits = plan.total_bytes <= plan.capacity_bytes;
  if (plan.fits) return plan;

  // Remedy 1: 1-bit random projections (§VII) — the graph and working set
  // stay, the data shrinks to bits/8 per point.
  for (size_t bits = 32; bits <= 4096; bits *= 2) {
    const size_t hashed_data = shape.num_points * (bits / 8);
    if (hashed_data + plan.graph_bytes + plan.working_bytes <=
        plan.capacity_bytes) {
      plan.hash_bits_needed = bits;
      break;
    }
  }

  // Remedy 2: shard across S identical cards (the §VII closing remark).
  for (size_t shards = 2; shards <= 1024; ++shards) {
    const size_t shard_total =
        plan.data_bytes / shards + plan.graph_bytes / shards +
        plan.working_bytes;  // each card serves the full query stream
    if (shard_total <= plan.capacity_bytes) {
      plan.shards_needed = shards;
      break;
    }
  }
  return plan;
}

StatusOr<MemoryPlan> TryPlanDeployment(const DeploymentShape& shape,
                                       const GpuSpec& spec) {
  if (shape.num_points == 0) {
    return Status::InvalidArgument("deployment has no points");
  }
  if (shape.dim == 0) {
    return Status::InvalidArgument("deployment dim must be >= 1");
  }
  if (shape.num_points > (size_t{1} << 40) || shape.dim > (size_t{1} << 20)) {
    return Status::InvalidArgument(
        "implausible deployment shape: " + std::to_string(shape.num_points) +
        " points x dim " + std::to_string(shape.dim));
  }
  if (fault::ShouldFail("device.alloc")) {
    return Status::ResourceExhausted(
        "injected fault: device.alloc (device memory reservation)");
  }
  MemoryPlan plan = PlanDeployment(shape, spec);
  if (!plan.fits) {
    return Status::ResourceExhausted("deployment does not fit " + spec.name +
                                     ": " + plan.ToString());
  }
  return plan;
}

std::string MemoryPlan::ToString() const {
  char buf[512];
  const double gb = 1024.0 * 1024.0 * 1024.0;
  std::snprintf(
      buf, sizeof(buf),
      "data %.2f GB + graph %.2f GB + working %.2f GB = %.2f GB vs "
      "capacity %.2f GB -> %s%s%s",
      data_bytes / gb, graph_bytes / gb, working_bytes / gb, total_bytes / gb,
      capacity_bytes / gb, fits ? "fits" : "DOES NOT FIT",
      !fits && hash_bits_needed > 0
          ? (", hashing to " + std::to_string(hash_bits_needed) +
             " bits fits")
                .c_str()
          : "",
      !fits && shards_needed > 0
          ? (", or shard across " + std::to_string(shards_needed) + " cards")
                .c_str()
          : "");
  return buf;
}

}  // namespace song
