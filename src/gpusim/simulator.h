// Copyright 2026 The SONG-Repro Authors.
//
// Convenience wrapper combining native batch execution with the GPU cost
// model: one call returns the real results (for recall) plus the simulated
// per-stage GPU profile (for throughput). This is what all figure benches
// drive.

#ifndef SONG_GPUSIM_SIMULATOR_H_
#define SONG_GPUSIM_SIMULATOR_H_

#include <cstddef>
#include <thread>
#include <vector>

#include "core/dataset.h"
#include "core/fault_injection.h"
#include "core/status.h"
#include "core/thread_pool.h"
#include "core/timer.h"
#include "gpusim/cost_model.h"
#include "gpusim/gpu_spec.h"
#include "hashing/hashed_index.h"
#include "song/batch_engine.h"
#include "song/song_searcher.h"

namespace song {

struct SimulatedRun {
  BatchResult batch;       ///< native execution: results + counters + CPU wall
  KernelBreakdown gpu;     ///< simulated GPU profile for `spec`
  WorkloadShape shape;     ///< the shape `gpu` was priced with
  double SimQps() const { return gpu.Qps(batch.num_queries); }
};

/// Executes `queries` through the SONG pipeline and prices the collected
/// counters on `spec`. `telemetry` (optional) enables sampled per-query
/// traces and metric recording; the simulated profile is surfaced into the
/// telemetry registry as `song.gpu.*`.
inline SimulatedRun SimulateBatch(const SongSearcher& searcher,
                                  const Dataset& queries, size_t k,
                                  const SongSearchOptions& options,
                                  const GpuSpec& spec,
                                  size_t num_threads = 0,
                                  const BatchTelemetry& telemetry = {}) {
  SimulatedRun run;
  BatchEngine engine(&searcher, num_threads);
  run.batch = engine.Search(queries, k, options, telemetry);

  WorkloadShape shape;
  shape.num_queries = queries.num();
  shape.dim = searcher.data().dim();
  shape.point_bytes = searcher.data().dim() * sizeof(float);
  shape.k = k;
  shape.queue_size = std::max(options.queue_size, k);
  shape.degree = searcher.graph().degree();
  shape.multi_query = options.multi_query;
  shape.multi_step = options.multi_step_probe;
  shape.structure = options.structure;
  if (options.quant == QuantizationMode::kPq && searcher.pq_enabled()) {
    shape.pq_m = searcher.pq_distance()->code_bytes();
    shape.full_point_bytes = shape.point_bytes;
    shape.point_bytes = shape.pq_m;  // Stage 2 fetches m-byte codes
  }
  run.shape = shape;

  CostModel model(spec);
  run.gpu = model.Estimate(run.batch.stats, shape);
  RecordKernelBreakdown(run.gpu, run.batch.num_queries, spec,
                        telemetry.registry);
  return run;
}

/// Checked simulation for serving paths. Wraps the batch in the
/// deterministic `transfer.htod` / `transfer.dtoh` fault sites (a tripped
/// transfer returns kUnavailable — the caller may retry) and routes
/// execution through BatchEngine::TrySearch, picking up query validation
/// and admission control. With no faults armed and default admission the
/// results are identical to SimulateBatch.
inline StatusOr<SimulatedRun> TrySimulateBatch(
    const SongSearcher& searcher, const Dataset& queries, size_t k,
    const SongSearchOptions& options, const GpuSpec& spec,
    size_t num_threads = 0, const BatchTelemetry& telemetry = {},
    const BatchAdmission& admission = {}) {
  if (fault::ShouldFail("transfer.htod")) {
    return Status::Unavailable("injected fault: transfer.htod (query upload)");
  }
  SimulatedRun run;
  BatchEngine engine(&searcher, num_threads);
  StatusOr<BatchResult> batch =
      engine.TrySearch(queries, k, options, telemetry, admission);
  if (!batch.ok()) return batch.status();
  run.batch = std::move(batch).value();
  if (fault::ShouldFail("transfer.dtoh")) {
    return Status::Unavailable(
        "injected fault: transfer.dtoh (result download)");
  }

  WorkloadShape shape;
  shape.num_queries = queries.num();
  shape.dim = searcher.data().dim();
  shape.point_bytes = searcher.data().dim() * sizeof(float);
  shape.k = k;
  shape.queue_size = std::max(options.queue_size, k);
  shape.degree = searcher.graph().degree();
  shape.multi_query = options.multi_query;
  shape.multi_step = options.multi_step_probe;
  shape.structure = options.structure;
  if (options.quant == QuantizationMode::kPq && searcher.pq_enabled()) {
    shape.pq_m = searcher.pq_distance()->code_bytes();
    shape.full_point_bytes = shape.point_bytes;
    shape.point_bytes = shape.pq_m;  // Stage 2 fetches m-byte codes
  }
  run.shape = shape;

  CostModel model(spec);
  run.gpu = model.Estimate(run.batch.stats, shape);
  RecordKernelBreakdown(run.gpu, run.batch.num_queries, spec,
                        telemetry.registry);
  return run;
}

/// Same as SimulateBatch for the hashed (out-of-GPU-memory, §VII) index:
/// the device holds bits/8-byte codes, and the host hashes queries before
/// the HtoD transfer.
inline SimulatedRun SimulateHashedBatch(const HashedSongIndex& index,
                                        const Dataset& queries, size_t k,
                                        const SongSearchOptions& options,
                                        const GpuSpec& spec,
                                        size_t num_threads = 0) {
  SimulatedRun run;
  run.batch.num_queries = queries.num();
  run.batch.results.resize(queries.num());
  const size_t threads =
      num_threads != 0 ? num_threads
                       : std::max(1u, std::thread::hardware_concurrency());
  std::vector<SongWorkspace> workspaces(threads);
  std::vector<SearchStats> thread_stats(threads);
  Timer timer;
  ParallelFor(queries.num(), threads, [&](size_t qi, size_t tid) {
    run.batch.results[qi] =
        index.Search(queries.Row(static_cast<idx_t>(qi)), k, options,
                     &workspaces[tid], &thread_stats[tid]);
  });
  run.batch.wall_seconds = timer.ElapsedSeconds();
  for (const SearchStats& s : thread_stats) run.batch.stats.Add(s);

  const size_t bits = index.codes().bits();
  WorkloadShape shape;
  shape.num_queries = queries.num();
  shape.dim = std::max<size_t>(1, bits / 32);  // hashed query words (HtoD)
  shape.point_bytes = bits / 8;
  shape.k = k;
  shape.queue_size = std::max(options.queue_size, k);
  shape.degree = index.graph().degree();
  shape.multi_query = options.multi_query;
  shape.multi_step = options.multi_step_probe;
  shape.structure = options.structure;

  CostModel model(spec);
  run.gpu = model.Estimate(run.batch.stats, shape);
  return run;
}

}  // namespace song

#endif  // SONG_GPUSIM_SIMULATOR_H_
