// Copyright 2026 The SONG-Repro Authors.
//
// Lane-level SIMT warp executor. Where gpusim/cost_model.h *prices* counters
// analytically, this module *executes* the warp-level primitives the SONG
// CUDA kernel is built from — 32 lockstep lanes, shfl_down reductions,
// coalesced global loads, warp-parallel hash probing — with per-instruction
// cycle accounting. It serves three purposes:
//   1. an executable specification of the kernel (tests prove the warp
//      reduction computes exactly the scalar distance),
//   2. a cross-check for the analytic cost model's stage cycles,
//   3. the substrate for the SimtSongKernel (gpusim/simt_kernel.h), which
//      runs a full SONG search through these primitives.

#ifndef SONG_GPUSIM_SIMT_WARP_H_
#define SONG_GPUSIM_SIMT_WARP_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "core/types.h"
#include "gpusim/gpu_spec.h"

namespace song {

/// Cycle ledger for one warp, by instruction class. Costs come from the
/// GpuSpec; global-memory transactions are counted in 32-byte sectors the
/// way the hardware coalescer does.
class CycleCounter {
 public:
  explicit CycleCounter(const GpuSpec& spec) : spec_(spec) {}

  void Alu(size_t ops = 1) { alu_ops_ += ops; }
  void Fma(size_t ops = 1) { fma_ops_ += ops; }
  void Shfl(size_t ops = 1) { shfl_ops_ += ops; }
  void SharedAccess(size_t ops = 1) { shared_accesses_ += ops; }

  /// A warp-wide global load touching [addr, addr+bytes): counts unique
  /// 32-byte sectors (coalesced lanes share sectors) and one latency
  /// exposure per transaction batch.
  void GlobalLoad(uintptr_t addr, size_t bytes) {
    const uintptr_t first = addr / kSectorBytes;
    const uintptr_t last = (addr + (bytes == 0 ? 0 : bytes - 1)) /
                           kSectorBytes;
    global_sectors_ += static_cast<size_t>(last - first + 1);
    ++global_transactions_;
  }

  size_t alu_ops() const { return alu_ops_; }
  size_t fma_ops() const { return fma_ops_; }
  size_t shfl_ops() const { return shfl_ops_; }
  size_t shared_accesses() const { return shared_accesses_; }
  size_t global_sectors() const { return global_sectors_; }
  size_t global_transactions() const { return global_transactions_; }

  /// Total warp cycles under the simple in-order issue model: 1 cycle per
  /// ALU/FMA/shfl issue, shared latency per shared access on the critical
  /// path, global latency per dependent transaction.
  double TotalCycles() const {
    return static_cast<double>(alu_ops_ + fma_ops_ + shfl_ops_) +
           static_cast<double>(shared_accesses_) *
               spec_.shared_latency_cycles +
           static_cast<double>(global_transactions_) *
               spec_.global_latency_cycles;
  }

  /// Bytes moved from global memory (sectors * 32).
  size_t GlobalBytes() const { return global_sectors_ * kSectorBytes; }

  void Reset() {
    alu_ops_ = fma_ops_ = shfl_ops_ = shared_accesses_ = 0;
    global_sectors_ = global_transactions_ = 0;
  }

  static constexpr size_t kSectorBytes = 32;

 private:
  GpuSpec spec_;
  size_t alu_ops_ = 0;
  size_t fma_ops_ = 0;
  size_t shfl_ops_ = 0;
  size_t shared_accesses_ = 0;
  size_t global_sectors_ = 0;
  size_t global_transactions_ = 0;
};

/// One warp: 32 lanes executing in lockstep. The primitives mirror the CUDA
/// idioms the SONG kernel uses; results are bit-equivalent to what the card
/// computes (modulo float summation order, which is fixed here to the
/// strided-lane + shfl_down order the kernel itself uses).
class SimtWarp {
 public:
  static constexpr size_t kWarpSize = 32;

  explicit SimtWarp(CycleCounter* cycles) : cycles_(cycles) {}

  /// Bulk-distance primitive (paper §VI): every lane accumulates a strided
  /// subset of dimensions (lane l handles dims l, l+32, ...), consecutive
  /// lanes touch consecutive addresses (coalesced), then a shfl_down tree
  /// reduces the 32 partials into lane 0's value.
  ///
  /// `lanes` < 32 models multi-query warps (32 / multi_query lanes per
  /// query); `lane_offset` is the querying group's first lane.
  float ReduceL2(const float* query, const float* point, size_t dim,
                 size_t lanes = kWarpSize);
  float ReduceInnerProduct(const float* query, const float* point,
                           size_t dim, size_t lanes = kWarpSize);

  /// Warp-parallel linear probe (paper §IV-B: "all threads in a warp probe
  /// the memory and locate the insertion/deletion location by a warp
  /// reduction"). Each lane inspects one consecutive slot per round.
  /// Returns the index of the first slot containing `key`, or the first
  /// slot equal to `empty` if the key is absent, or slot_count if neither
  /// is found.
  size_t ParallelProbe(const idx_t* slots, size_t slot_count, size_t start,
                       idx_t key, idx_t empty);

  /// Insertion probe: scans in probe order from `start`, stopping at `key`
  /// or at the first `empty` slot, while remembering the first reusable
  /// `tombstone` passed on the way. If the key was found, found_key is true
  /// and insert_slot is its position; otherwise insert_slot is the first
  /// tombstone if one preceded the stopping empty, else the empty itself
  /// (slot_count if the table had neither).
  struct ProbeInsertResult {
    bool found_key = false;
    size_t insert_slot = 0;
  };
  ProbeInsertResult ParallelProbeInsert(const idx_t* slots,
                                        size_t slot_count, size_t start,
                                        idx_t key, idx_t empty,
                                        idx_t tombstone);

  /// shfl_down tree reduction over one value per lane (exposed for tests).
  float ShflDownSum(const std::array<float, kWarpSize>& lane_values,
                    size_t lanes = kWarpSize);

 private:
  CycleCounter* cycles_;
};

}  // namespace song

#endif  // SONG_GPUSIM_SIMT_WARP_H_
