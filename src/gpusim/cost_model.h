// Copyright 2026 The SONG-Repro Authors.
//
// Analytic GPU cost model. The SONG search executes natively (so recall,
// visit order and every counter are exact); this model converts the measured
// warp-level work — coalesced row fetches, bulk-distance reductions,
// thread-0 heap/hash operations — into simulated kernel seconds for a given
// GpuSpec, plus PCIe transfer times (HtoD queries / DtoH results).
//
// Modeling assumptions (documented for reproducibility):
//  * Each query group (multi_query queries) occupies one warp; a query's
//    iterations form a dependent chain (graph row fetch -> bulk distance ->
//    maintenance), so per-query cycles add up along the chain.
//  * Warps from different queries overlap: chain time is divided by the
//    number of concurrently resident warps (occupancy), which is limited by
//    the per-warp shared-memory footprint (query vector, heaps, candidate
//    buffers, and the visited structure when it fits).
//  * The kernel cannot run faster than global-memory bandwidth allows
//    (graph rows + candidate vectors + spilled hash traffic) nor faster
//    than the FMA throughput of the distance computations.
//  * A visited structure that exceeds the per-query shared budget spills to
//    global memory and pays global (not shared) latency per probe — this is
//    what makes the un-deleted hash table collapse at large queue sizes
//    (paper Fig 7, NYTimes).

#ifndef SONG_GPUSIM_COST_MODEL_H_
#define SONG_GPUSIM_COST_MODEL_H_

#include <cstddef>
#include <string>

#include "gpusim/gpu_spec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "song/search_options.h"

namespace song {

/// Static description of the workload a kernel launch processes.
struct WorkloadShape {
  size_t num_queries = 0;
  size_t dim = 0;         ///< floats per point (or bits/32 words for hashed)
  size_t point_bytes = 0; ///< bytes fetched per candidate vector
  size_t k = 10;
  size_t queue_size = 64;
  size_t degree = 16;
  size_t multi_query = 1;
  size_t multi_step = 1;
  VisitedStructure structure = VisitedStructure::kHashTable;
  /// PQ traversal (options.quant == kPq): subquantizer count m = code bytes
  /// per point; 0 = exact traversal. When set, point_bytes is the m-byte
  /// code fetched per Stage-2 candidate, full_point_bytes the exact vector
  /// fetched per reranked pool entry, and the per-query ADC table
  /// (m * 256 floats) is priced as shared-memory-resident.
  size_t pq_m = 0;
  size_t full_point_bytes = 0;
  /// true (default): report saturated throughput — the steady-state rate of
  /// a deep batch (the paper's 10k-1m query batches). false: model this
  /// exact batch size, quantizing work into whole waves of resident warps
  /// (a 100-query batch occupies one underfilled wave and pays its full
  /// chain latency) — used by the Fig 11 batch-size experiment.
  bool saturated = true;
};

struct KernelBreakdown {
  // Per-stage shares of the kernel chain (seconds).
  double locate_seconds = 0.0;
  double distance_seconds = 0.0;
  double maintain_seconds = 0.0;
  double kernel_seconds = 0.0;
  double htod_seconds = 0.0;
  double dtoh_seconds = 0.0;
  double total_seconds = 0.0;

  double resident_warps = 0.0;
  bool visited_in_shared = true;
  double shared_bytes_per_warp = 0.0;

  double Qps(size_t num_queries) const {
    return total_seconds > 0.0
               ? static_cast<double>(num_queries) / total_seconds
               : 0.0;
  }
  double LocatePct() const {
    return kernel_seconds > 0.0 ? 100.0 * locate_seconds / kernel_seconds
                                : 0.0;
  }
  double DistancePct() const {
    return kernel_seconds > 0.0 ? 100.0 * distance_seconds / kernel_seconds
                                : 0.0;
  }
  double MaintainPct() const {
    return kernel_seconds > 0.0 ? 100.0 * maintain_seconds / kernel_seconds
                                : 0.0;
  }
  double HtodPct() const {
    return total_seconds > 0.0 ? 100.0 * htod_seconds / total_seconds : 0.0;
  }
  double KernelPct() const {
    return total_seconds > 0.0 ? 100.0 * kernel_seconds / total_seconds : 0.0;
  }
  double DtohPct() const {
    return total_seconds > 0.0 ? 100.0 * dtoh_seconds / total_seconds : 0.0;
  }
};

/// Warp cycles charged per counted unit of work, per stage. Estimate() and
/// the per-iteration trace pricing both price through this table, so a
/// traced query's stage spans sum to exactly the chain time the analytic
/// model attributes to it (the Chrome-trace acceptance check).
struct StageUnitCosts {
  // Stage 1 — candidate locating.
  double locate_per_row = 0.0;       ///< dependent graph-row fetch
  double locate_per_pop = 0.0;       ///< queue pop (heap levels)
  double locate_per_test = 0.0;      ///< visited probe during gather
  // Stage 2 — bulk distance.
  double distance_per_candidate = 0.0;
  // Query-level PQ terms (zero when pq_m == 0). These price work that
  // happens once per query outside the iteration loop, so PriceIteration
  // never consumes them — only Estimate() does.
  double distance_per_table_entry = 0.0;  ///< ADC table build, per entry
  double rerank_per_candidate = 0.0;      ///< exact rescoring of the pool
  // Stage 3 — maintenance.
  double maintain_per_heap_push = 0.0;  ///< q push or eviction
  double maintain_per_topk_op = 0.0;
  double maintain_per_visited_op = 0.0;  ///< insert or delete
  double maintain_per_candidate = 0.0;   ///< dist-array read from staging
};

/// Chain cycles of one traced query, split by stage (priced via
/// CostModel::PriceTrace).
struct TraceStageCycles {
  double locate = 0.0;
  double distance = 0.0;
  double maintain = 0.0;

  double Total() const { return locate + distance + maintain; }
};

class CostModel {
 public:
  explicit CostModel(const GpuSpec& spec) : spec_(spec) {}

  /// Converts batch-aggregate counters into a simulated execution profile.
  KernelBreakdown Estimate(const SearchStats& totals,
                           const WorkloadShape& shape) const;

  /// Per-query shared-memory footprint (bytes): query vector + heaps +
  /// candidate/dist staging (+ visited structure when `include_visited`).
  double SharedBytesPerQuery(const WorkloadShape& shape,
                             size_t visited_bytes,
                             bool include_visited) const;

  /// The per-unit cycle table Estimate() prices chains with.
  /// `visited_in_shared` mirrors KernelBreakdown::visited_in_shared.
  StageUnitCosts UnitCosts(const WorkloadShape& shape,
                           bool visited_in_shared) const;

  /// Prices one iteration row through UnitCosts.
  TraceStageCycles PriceIteration(const obs::TraceIterationRow& row,
                                  const StageUnitCosts& costs) const;

  /// Prices a whole traced query: the sum over its iteration rows.
  TraceStageCycles PriceTrace(const obs::SearchTrace& trace,
                              const StageUnitCosts& costs) const;

  /// Seconds per warp cycle on this spec.
  double SecondsPerCycle() const { return 1.0 / (spec_.clock_ghz * 1e9); }

  const GpuSpec& spec() const { return spec_; }

 private:
  GpuSpec spec_;
};

/// Surfaces a simulated execution profile into `registry` under
/// `<prefix>.*` gauges (seconds per stage, occupancy, QPS), replacing the
/// old pattern of keeping KernelBreakdown result-struct-only. `prefix`
/// is typically "song.gpu"; the GPU name lands in `<prefix>.spec_name`-less
/// form via the paired counter `<prefix>.estimates`.
void RecordKernelBreakdown(const KernelBreakdown& breakdown,
                           size_t num_queries, const GpuSpec& spec,
                           obs::MetricsRegistry* registry,
                           const std::string& prefix = "song.gpu");

}  // namespace song

#endif  // SONG_GPUSIM_COST_MODEL_H_
