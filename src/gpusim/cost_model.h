// Copyright 2026 The SONG-Repro Authors.
//
// Analytic GPU cost model. The SONG search executes natively (so recall,
// visit order and every counter are exact); this model converts the measured
// warp-level work — coalesced row fetches, bulk-distance reductions,
// thread-0 heap/hash operations — into simulated kernel seconds for a given
// GpuSpec, plus PCIe transfer times (HtoD queries / DtoH results).
//
// Modeling assumptions (documented for reproducibility):
//  * Each query group (multi_query queries) occupies one warp; a query's
//    iterations form a dependent chain (graph row fetch -> bulk distance ->
//    maintenance), so per-query cycles add up along the chain.
//  * Warps from different queries overlap: chain time is divided by the
//    number of concurrently resident warps (occupancy), which is limited by
//    the per-warp shared-memory footprint (query vector, heaps, candidate
//    buffers, and the visited structure when it fits).
//  * The kernel cannot run faster than global-memory bandwidth allows
//    (graph rows + candidate vectors + spilled hash traffic) nor faster
//    than the FMA throughput of the distance computations.
//  * A visited structure that exceeds the per-query shared budget spills to
//    global memory and pays global (not shared) latency per probe — this is
//    what makes the un-deleted hash table collapse at large queue sizes
//    (paper Fig 7, NYTimes).

#ifndef SONG_GPUSIM_COST_MODEL_H_
#define SONG_GPUSIM_COST_MODEL_H_

#include <cstddef>

#include "gpusim/gpu_spec.h"
#include "song/search_options.h"

namespace song {

/// Static description of the workload a kernel launch processes.
struct WorkloadShape {
  size_t num_queries = 0;
  size_t dim = 0;         ///< floats per point (or bits/32 words for hashed)
  size_t point_bytes = 0; ///< bytes fetched per candidate vector
  size_t k = 10;
  size_t queue_size = 64;
  size_t degree = 16;
  size_t multi_query = 1;
  size_t multi_step = 1;
  VisitedStructure structure = VisitedStructure::kHashTable;
  /// true (default): report saturated throughput — the steady-state rate of
  /// a deep batch (the paper's 10k-1m query batches). false: model this
  /// exact batch size, quantizing work into whole waves of resident warps
  /// (a 100-query batch occupies one underfilled wave and pays its full
  /// chain latency) — used by the Fig 11 batch-size experiment.
  bool saturated = true;
};

struct KernelBreakdown {
  // Per-stage shares of the kernel chain (seconds).
  double locate_seconds = 0.0;
  double distance_seconds = 0.0;
  double maintain_seconds = 0.0;
  double kernel_seconds = 0.0;
  double htod_seconds = 0.0;
  double dtoh_seconds = 0.0;
  double total_seconds = 0.0;

  double resident_warps = 0.0;
  bool visited_in_shared = true;
  double shared_bytes_per_warp = 0.0;

  double Qps(size_t num_queries) const {
    return total_seconds > 0.0
               ? static_cast<double>(num_queries) / total_seconds
               : 0.0;
  }
  double LocatePct() const {
    return kernel_seconds > 0.0 ? 100.0 * locate_seconds / kernel_seconds
                                : 0.0;
  }
  double DistancePct() const {
    return kernel_seconds > 0.0 ? 100.0 * distance_seconds / kernel_seconds
                                : 0.0;
  }
  double MaintainPct() const {
    return kernel_seconds > 0.0 ? 100.0 * maintain_seconds / kernel_seconds
                                : 0.0;
  }
  double HtodPct() const {
    return total_seconds > 0.0 ? 100.0 * htod_seconds / total_seconds : 0.0;
  }
  double KernelPct() const {
    return total_seconds > 0.0 ? 100.0 * kernel_seconds / total_seconds : 0.0;
  }
  double DtohPct() const {
    return total_seconds > 0.0 ? 100.0 * dtoh_seconds / total_seconds : 0.0;
  }
};

class CostModel {
 public:
  explicit CostModel(const GpuSpec& spec) : spec_(spec) {}

  /// Converts batch-aggregate counters into a simulated execution profile.
  KernelBreakdown Estimate(const SearchStats& totals,
                           const WorkloadShape& shape) const;

  /// Per-query shared-memory footprint (bytes): query vector + heaps +
  /// candidate/dist staging (+ visited structure when `include_visited`).
  double SharedBytesPerQuery(const WorkloadShape& shape,
                             size_t visited_bytes,
                             bool include_visited) const;

  const GpuSpec& spec() const { return spec_; }

 private:
  GpuSpec spec_;
};

}  // namespace song

#endif  // SONG_GPUSIM_COST_MODEL_H_
