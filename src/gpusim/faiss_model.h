// Copyright 2026 The SONG-Repro Authors.
//
// GPU cost model for the IVFPQ baseline (the paper's "Faiss-IVFPQ"). The
// quantization scan has almost no instruction dependencies — exactly why
// Faiss parallelizes so well on GPUs — so its kernel time is the max of
// three throughput terms: streaming the packed codes, computing the ADC
// tables + coarse distances, and the per-code lookup-accumulate-select work.

#ifndef SONG_GPUSIM_FAISS_MODEL_H_
#define SONG_GPUSIM_FAISS_MODEL_H_

#include <algorithm>
#include <cstddef>

#include "baselines/ivfpq.h"
#include "gpusim/gpu_spec.h"

namespace song {

struct FaissGpuEstimate {
  double kernel_seconds = 0.0;
  double htod_seconds = 0.0;
  double dtoh_seconds = 0.0;
  double total_seconds = 0.0;
  double Qps(size_t num_queries) const {
    return total_seconds > 0.0
               ? static_cast<double>(num_queries) / total_seconds
               : 0.0;
  }
};

/// Prices a batch of IVFPQ searches on `spec`. `dim` is the original vector
/// dimensionality (drives the coarse quantizer and HtoD), `pq_m` the code
/// bytes, `k` the result count.
inline FaissGpuEstimate EstimateFaissGpu(const IvfPqSearchStats& stats,
                                         const GpuSpec& spec, size_t dim,
                                         size_t pq_m, size_t k) {
  FaissGpuEstimate out;
  const double nq = static_cast<double>(std::max<size_t>(1, stats.queries));
  const double clock_hz = spec.clock_ghz * 1e9;
  const double cores = static_cast<double>(spec.TotalCores());

  // Memory: packed codes + ids stream sequentially (high efficiency).
  const double scan_bytes =
      static_cast<double>(stats.codes_scanned) *
      (static_cast<double>(pq_m) + sizeof(idx_t));
  const double mem_seconds =
      scan_bytes / (spec.mem_bandwidth_gbps * 0.85 * 1e9);

  // Compute: coarse distances + ADC table construction (FMA-bound) plus the
  // scan itself (one shared-memory gather + add per code byte, plus k-select
  // overhead amortized to ~2 ops per code).
  const double fma_flops =
      static_cast<double>(stats.coarse_distances) * dim * 2.0 +
      static_cast<double>(stats.table_entries) *
          (static_cast<double>(dim) / static_cast<double>(pq_m)) * 2.0;
  const double scan_ops = static_cast<double>(stats.codes_scanned) *
                          (static_cast<double>(pq_m) + 2.0);
  const double compute_seconds =
      fma_flops / (cores * clock_hz * 2.0) + scan_ops / (cores * clock_hz);

  // Launch overhead per batch.
  constexpr double kLaunchSeconds = 20e-6;

  out.kernel_seconds =
      std::max(mem_seconds, compute_seconds) + kLaunchSeconds;
  out.htod_seconds =
      nq * dim * sizeof(float) / (spec.pcie_gbps * 1e9) + spec.pcie_latency_s;
  out.dtoh_seconds =
      nq * k * 8.0 / (spec.pcie_gbps * 1e9) + spec.pcie_latency_s;
  out.total_seconds = out.kernel_seconds + out.htod_seconds +
                      out.dtoh_seconds;
  return out;
}

}  // namespace song

#endif  // SONG_GPUSIM_FAISS_MODEL_H_
