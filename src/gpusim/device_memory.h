// Copyright 2026 The SONG-Repro Authors.
//
// Device-memory planning (paper §VII): decides whether a deployment —
// dataset + graph index + per-query working set — fits a card, and if not,
// which remedies apply (1-bit hashing at some bit width, or sharding across
// cards). This is the planning logic behind the paper's MNIST8m story:
// 24 GB of floats cannot fit TITAN X's 12 GB, the degree-16 graph index
// always fits ("it is sufficient to use 16 for the degree — the graph index
// is under 1 GB for millions of data points"), and 128-bit codes shrink the
// data 196x.

#ifndef SONG_GPUSIM_DEVICE_MEMORY_H_
#define SONG_GPUSIM_DEVICE_MEMORY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/status.h"
#include "gpusim/gpu_spec.h"

namespace song {

/// Memory capacities of the paper's three cards (GpuSpec models the SM /
/// bandwidth side; capacity lives here to keep the spec struct focused).
inline size_t DeviceCapacityBytes(const GpuSpec& spec) {
  if (spec.name == "V100") return 32ull << 30;
  if (spec.name == "P40") return 24ull << 30;
  if (spec.name == "TITAN X") return 12ull << 30;
  return 16ull << 30;
}

struct DeploymentShape {
  size_t num_points = 0;
  size_t dim = 0;
  size_t graph_degree = 16;
  /// Concurrent queries resident on the card (shared/working memory is tiny
  /// compared to data but included for completeness).
  size_t resident_queries = 10000;
  size_t queue_size = 128;
};

struct MemoryPlan {
  size_t data_bytes = 0;
  size_t graph_bytes = 0;
  size_t working_bytes = 0;
  size_t total_bytes = 0;
  size_t capacity_bytes = 0;
  bool fits = false;

  /// Smallest power-of-two hash width (>= 32 bits) that makes the hashed
  /// deployment fit, or 0 if even 32-bit codes do not help.
  size_t hash_bits_needed = 0;
  /// Smallest shard count that makes each shard fit unhashed.
  size_t shards_needed = 0;

  std::string ToString() const;
};

/// Plans a full-precision deployment on `spec`; when it does not fit,
/// fills in the hashing / sharding remedies.
MemoryPlan PlanDeployment(const DeploymentShape& shape, const GpuSpec& spec);

/// Checked planning for serving paths: validates the shape, passes the
/// deterministic `device.alloc` fault site (core/fault_injection.h), and
/// turns a non-fitting full-precision plan into kResourceExhausted whose
/// message carries the hashing/sharding remedies. Callers that want the
/// plan even when it does not fit should use PlanDeployment directly.
StatusOr<MemoryPlan> TryPlanDeployment(const DeploymentShape& shape,
                                       const GpuSpec& spec);

}  // namespace song

#endif  // SONG_GPUSIM_DEVICE_MEMORY_H_
