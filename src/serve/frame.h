// Copyright 2026 The SONG-Repro Authors.
//
// Wire protocol for the serving front-end (docs/serving.md): length-prefixed
// binary frames over TCP, little-endian, no external dependencies. The codec
// is split from the transport so the decode paths are fuzzable as pure
// buffer functions (tests/serve/frame_codec_test.cc runs a 200+ case
// seed-driven corruption corpus over them, mirroring the corrupt-file fuzz
// that guards the .sngd/.sngg loaders).
//
// Every frame starts with a fixed 12-byte header:
//
//   offset  size  field
//        0     4  magic "SNGF"
//        4     1  frame type (FrameType)
//        5     1  protocol version (kProtocolVersion)
//        6     2  reserved, must be zero
//        8     4  payload length in bytes (<= kMaxFramePayload)
//
// Hostile lengths are rejected *before* any allocation, the same discipline
// Dataset::Load applies to .sngd headers: a claimed payload larger than
// kMaxFramePayload is kDataLoss, not a 4 GiB vector resize. Truncated
// payloads, length/field mismatches and reserved-bit violations are all
// typed Status errors — the server never crashes on a byte stream, it
// closes the connection with an accounted reason.

#ifndef SONG_SERVE_FRAME_H_
#define SONG_SERVE_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/types.h"

namespace song::serve {

/// "SNGF" read as a little-endian u32.
inline constexpr uint32_t kFrameMagic = 0x46474e53u;
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 12;

/// Upper bound on a single frame's payload. Generous for responses carrying
/// thousands of results, tiny next to what a hostile 32-bit length field can
/// claim (4 GiB).
inline constexpr size_t kMaxFramePayload = 16u << 20;

/// Bounds on variable-length fields inside payloads, checked before any
/// allocation sized by them.
inline constexpr uint32_t kMaxQueryDim = 1u << 20;
inline constexpr uint32_t kMaxResponseResults = 1u << 20;
inline constexpr uint32_t kMaxResponseMessageBytes = 1u << 12;

enum class FrameType : uint8_t {
  kSearchRequest = 1,
  kSearchResponse = 2,
  kPing = 3,
  kPong = 4,
  kStatuszRequest = 5,
  kStatuszResponse = 6,
};

/// True for the frame types a peer may legitimately send.
bool IsKnownFrameType(uint8_t type);

struct FrameHeader {
  FrameType type = FrameType::kPing;
  uint32_t payload_len = 0;
};

/// A fully received frame.
struct Frame {
  FrameType type = FrameType::kPing;
  std::vector<uint8_t> payload;
};

/// One search request. `client_tag` is an opaque client-chosen id echoed
/// verbatim in the response (clients use it to match pipelined responses);
/// the server assigns its own request ids for telemetry. `queue_size` = 0
/// asks for the server's default ef. `deadline_us` caps the request's whole
/// server-side life — queue wait included — and `cost_budget` caps the
/// search's deterministic work units; 0 disables either.
struct SearchRequestFrame {
  uint64_t client_tag = 0;
  uint32_t k = 0;
  uint32_t queue_size = 0;
  uint64_t deadline_us = 0;
  uint64_t cost_budget = 0;
  std::vector<float> query;
};

/// One search response. `status_code` carries the request's StatusCode as an
/// int (kOk for served results, kUnavailable for sheds — retryable — and so
/// on); `message` is the Status message for non-OK outcomes. `queue_us` /
/// `search_us` are the server-side stage times so clients can split their
/// observed latency into server queueing, server search and network.
struct SearchResponseFrame {
  uint64_t client_tag = 0;
  int32_t status_code = 0;
  bool degraded = false;
  float queue_us = 0.0f;
  float search_us = 0.0f;
  std::string message;
  std::vector<Neighbor> results;
};

/// Appends the 12-byte header + payload bytes for a frame to `out`.
void AppendFrame(FrameType type, const uint8_t* payload, size_t payload_len,
                 std::vector<uint8_t>* out);

/// Parses a header from exactly kFrameHeaderBytes bytes. Rejects bad magic,
/// unknown version/type, nonzero reserved bits and payloads claiming more
/// than kMaxFramePayload — all kDataLoss, before anything is allocated.
StatusOr<FrameHeader> DecodeFrameHeader(const uint8_t* bytes, size_t len);

/// Encodes a complete search-request frame (header included) onto `out`.
void EncodeSearchRequest(const SearchRequestFrame& request,
                         std::vector<uint8_t>* out);

/// Decodes a search-request payload. The payload length must equal the
/// fixed header plus exactly dim floats; dim = 0, dim > kMaxQueryDim and
/// nonzero reserved flags are rejected.
StatusOr<SearchRequestFrame> DecodeSearchRequest(const uint8_t* payload,
                                                 size_t len);

/// Encodes a complete search-response frame (header included) onto `out`.
/// The message is truncated to kMaxResponseMessageBytes.
void EncodeSearchResponse(const SearchResponseFrame& response,
                          std::vector<uint8_t>* out);

/// Decodes a search-response payload (used by clients: loadgen, tests).
StatusOr<SearchResponseFrame> DecodeSearchResponse(const uint8_t* payload,
                                                   size_t len);

/// Blocking framed I/O over a connected socket with per-syscall poll()
/// timeouts, so one stalled peer can never wedge a server thread forever.
/// Not thread-safe; the server gives each connection one reader and one
/// writer transport-owning thread.
class FrameTransport {
 public:
  /// Does not take ownership of `fd`. `io_timeout_ms` bounds how long a
  /// single read/write may sit in poll() waiting for the peer (<= 0 waits
  /// forever — tests only).
  FrameTransport(int fd, int io_timeout_ms)
      : fd_(fd), io_timeout_ms_(io_timeout_ms) {}

  /// Reads one whole frame. Error taxonomy:
  ///   kUnavailable       peer closed cleanly at a frame boundary
  ///   kDataLoss          mid-frame EOF, bad magic, hostile length, ...
  ///   kDeadlineExceeded  peer stalled past io_timeout_ms (slow client)
  ///   kInternal          socket error (errno reported in the message)
  StatusOr<Frame> ReadFrame();

  /// Writes `len` bytes (one or more already-encoded frames). Same timeout
  /// discipline as ReadFrame; partial writes past the deadline are
  /// kDeadlineExceeded.
  Status WriteBytes(const uint8_t* bytes, size_t len);
  Status WriteBytes(const std::vector<uint8_t>& bytes) {
    return WriteBytes(bytes.data(), bytes.size());
  }

 private:
  Status ReadFully(uint8_t* out, size_t len, bool* clean_eof);

  int fd_;
  int io_timeout_ms_;
};

}  // namespace song::serve

#endif  // SONG_SERVE_FRAME_H_
