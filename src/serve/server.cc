#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <deque>
#include <utility>

#include "core/fault_injection.h"
#include "core/logging.h"
#include "obs/exporters.h"
#include "serve/frame.h"

namespace song::serve {

namespace {

void Appendf(std::string* out, const char* fmt, ...) {
  char buffer[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  if (n > 0) out->append(buffer, std::min<size_t>(n, sizeof(buffer) - 1));
}

void Bump(obs::Counter* counter, uint64_t n = 1) {
  if (counter != nullptr) counter->Increment(n);
}

}  // namespace

/// One accepted socket: a reader thread decoding frames into admissions and
/// a writer thread draining the response outbox. The writer exists so a
/// slow client's full socket buffer backs up only this connection's outbox
/// — scheduler workers enqueue a settled response and move on. The
/// connection outlives its socket's usefulness: requests in flight hold a
/// shared_ptr, so a mid-stream disconnect still gets every outcome
/// accounted (the writes fail and are counted, never silently dropped).
class Connection : public std::enable_shared_from_this<Connection> {
 public:
  Connection(SongServer* server, int fd)
      : server_(server),
        fd_(fd),
        transport_(fd, server->options().io_timeout_ms) {}

  ~Connection() {
    if (fd_ >= 0) ::close(fd_);
  }

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  void Start() {
    reader_ = std::thread(&Connection::ReaderLoop, this);
    writer_ = std::thread(&Connection::WriterLoop, this);
  }

  /// Wakes a blocked reader with EOF (drain). Pending responses still
  /// flush: only the read half closes.
  void BeginShutdown() { ::shutdown(fd_, SHUT_RD); }

  void Join() {
    if (reader_.joinable()) reader_.join();
    if (writer_.joinable()) writer_.join();
  }

  bool finished() const { return finished_.load(std::memory_order_acquire); }

  /// Queues one encoded frame for the writer. Unbounded, but naturally
  /// capped: at most queue_capacity + inflight settled responses plus
  /// small ping/statusz replies can be pending per connection.
  void EnqueueFrame(std::vector<uint8_t> frame) SONG_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    outbox_.push_back(std::move(frame));
    outbox_cv_.NotifyOne();
  }

  /// Admission bookkeeping: issued when a search request is decoded,
  /// settled exactly once by SongServer::SettleRequest. The writer only
  /// exits once the reader is done AND nothing is outstanding, so every
  /// accepted request's response gets its write attempt.
  void NoteIssued() SONG_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++outstanding_;
  }

  void NoteSettled() SONG_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    SONG_CHECK(outstanding_ > 0);
    --outstanding_;
    outbox_cv_.NotifyAll();
  }

 private:
  void ReaderLoop() {
    bool keep_reading = true;
    while (keep_reading) {
      StatusOr<Frame> frame = transport_.ReadFrame();
      if (!frame.ok()) {
        const StatusCode code = frame.status().code();
        if (code == StatusCode::kDeadlineExceeded) {
          server_->BumpReadTimeout();
        } else if (code != StatusCode::kUnavailable) {
          // kUnavailable is the orderly close; everything else is a
          // truncated/hostile stream.
          server_->BumpBadFrame();
        }
        break;
      }
      switch (frame.value().type) {
        case FrameType::kPing: {
          std::vector<uint8_t> out;
          AppendFrame(FrameType::kPong, nullptr, 0, &out);
          EnqueueFrame(std::move(out));
          break;
        }
        case FrameType::kStatuszRequest: {
          const std::string json = server_->StatuszPayload();
          std::vector<uint8_t> out;
          AppendFrame(FrameType::kStatuszResponse,
                      reinterpret_cast<const uint8_t*>(json.data()),
                      json.size(), &out);
          EnqueueFrame(std::move(out));
          break;
        }
        case FrameType::kSearchRequest: {
          const std::vector<uint8_t>& payload = frame.value().payload;
          StatusOr<SearchRequestFrame> request =
              DecodeSearchRequest(payload.data(), payload.size());
          if (!request.ok()) {
            // Typed refusal, then hang up: the stream is corrupt and frame
            // boundaries can no longer be trusted.
            server_->BumpBadFrame();
            SearchResponseFrame response;
            response.client_tag = 0;
            response.status_code =
                static_cast<int32_t>(request.status().code());
            response.message = request.status().message();
            std::vector<uint8_t> out;
            EncodeSearchResponse(response, &out);
            EnqueueFrame(std::move(out));
            keep_reading = false;
            break;
          }
          server_->AdmitRequest(std::move(request).value(),
                                shared_from_this());
          break;
        }
        default:
          // kPong / kSearchResponse / kStatuszResponse from a client is a
          // protocol violation.
          server_->BumpBadFrame();
          keep_reading = false;
          break;
      }
    }
    MutexLock lock(mu_);
    reader_done_ = true;
    outbox_cv_.NotifyAll();
  }

  void WriterLoop() {
    bool write_failed = false;  // writer-thread-local: fd is poisoned
    for (;;) {
      std::vector<uint8_t> frame;
      {
        MutexLock lock(mu_);
        while (outbox_.empty() && !(reader_done_ && outstanding_ == 0)) {
          outbox_cv_.Wait(mu_);
        }
        if (outbox_.empty()) break;  // reader done, everything settled
        frame = std::move(outbox_.front());
        outbox_.pop_front();
      }
      // Deterministic chaos (docs/robustness.md): serve.write simulates the
      // peer vanishing between settle and flush.
      if (!write_failed &&
          fault::FaultRegistry::Global().ShouldFail("serve.write")) {
        write_failed = true;
        server_->BumpWriteError();
        ::shutdown(fd_, SHUT_RDWR);
      }
      if (!write_failed) {
        const Status ws = transport_.WriteBytes(frame);
        if (!ws.ok()) {
          // The settle already accounted the request; the lost response is
          // counted here and the remaining outbox drains as discards so
          // settles never block on a dead peer.
          write_failed = true;
          server_->BumpWriteError();
          ::shutdown(fd_, SHUT_RDWR);
        }
      }
    }
    finished_.store(true, std::memory_order_release);
  }

  SongServer* server_;
  int fd_;
  FrameTransport transport_;
  std::thread reader_;
  std::thread writer_;

  Mutex mu_;
  CondVar outbox_cv_;
  std::deque<std::vector<uint8_t>> outbox_ SONG_GUARDED_BY(mu_);
  size_t outstanding_ SONG_GUARDED_BY(mu_) = 0;
  bool reader_done_ SONG_GUARDED_BY(mu_) = false;
  std::atomic<bool> finished_{false};
};

SongServer::SongServer(const SongSearcher* searcher,
                       const ServerOptions& options,
                       obs::MetricsRegistry* registry)
    : searcher_(searcher),
      options_(options),
      registry_(registry),
      engine_(searcher, options.engine_threads),
      flight_recorder_(options.flight_recorder_capacity),
      request_metrics_(registry),
      queue_(options.queue_capacity) {
  SONG_CHECK(searcher != nullptr);
  if (registry_ != nullptr) {
    c_accepted_ = &registry_->GetCounter("song.serve.accepted");
    c_ok_ = &registry_->GetCounter("song.serve.outcome.ok");
    c_shed_ = &registry_->GetCounter("song.serve.outcome.shed");
    c_deadline_ = &registry_->GetCounter("song.serve.outcome.deadline");
    c_error_ = &registry_->GetCounter("song.serve.outcome.error");
    c_frames_bad_ = &registry_->GetCounter("song.serve.frames.bad");
    c_accept_errors_ = &registry_->GetCounter("song.serve.accept_errors");
    c_conn_opened_ = &registry_->GetCounter("song.serve.conn.opened");
    c_conn_rejected_ = &registry_->GetCounter("song.serve.conn.rejected");
    c_write_errors_ = &registry_->GetCounter("song.serve.write_errors");
    c_read_timeouts_ = &registry_->GetCounter("song.serve.read_timeouts");
    c_batches_ = &registry_->GetCounter("song.serve.batches");
    c_drains_ = &registry_->GetCounter("song.serve.drains");
    g_queue_depth_ = &registry_->GetGauge("song.serve.queue_depth");
    g_connections_ = &registry_->GetGauge("song.serve.connections");
    g_draining_ = &registry_->GetGauge("song.serve.draining");
    h_batch_size_ = &registry_->GetHistogram("song.serve.batch_size");
  }
}

SongServer::~SongServer() {
  const Status s = Drain();
  if (!s.ok()) {
    SONG_LOG(WARN) << "server drain in destructor: " << s.ToString();
  }
}

Status SongServer::Start() {
  {
    MutexLock lock(lifecycle_mu_);
    if (started_) {
      return Status::FailedPrecondition("server already started");
    }
    started_ = true;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal("socket() failed: errno " +
                            std::to_string(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host \"" + options_.host +
                                   "\" (expects an IPv4 address)");
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    const std::string message =
        "bind(" + options_.host + ":" + std::to_string(options_.port) +
        ") failed: errno " + std::to_string(err);
    if (err == EADDRINUSE) return Status::Unavailable(message);
    return Status::Internal(message);
  }
  if (::listen(listen_fd_, 128) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen() failed: errno " + std::to_string(err));
  }
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("getsockname() failed: errno " +
                            std::to_string(err));
  }
  port_ = ntohs(bound.sin_port);
  if (::pipe(wake_pipe_) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("pipe() failed: errno " + std::to_string(err));
  }
  if (g_draining_ != nullptr) g_draining_->Set(0.0);
  accept_thread_ = std::thread(&SongServer::AcceptLoop, this);
  workers_.reserve(options_.num_workers);
  for (size_t w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back(&SongServer::WorkerLoop, this);
  }
  return Status::OK();
}

void SongServer::RequestDrain() {
  draining_.store(true, std::memory_order_release);
  if (g_draining_ != nullptr) g_draining_->Set(1.0);
  if (wake_pipe_[1] >= 0) {
    const uint8_t byte = 1;
    // Best effort: the accept loop also re-checks draining_ on its 100 ms
    // poll tick, so a failed wake only delays shutdown by one tick.
    if (::write(wake_pipe_[1], &byte, 1) != 1) {
      SONG_LOG(WARN) << "drain wake write failed (errno " << errno << ")";
    }
  }
}

Status SongServer::Drain() {
  {
    MutexLock lock(lifecycle_mu_);
    if (!started_ || drained_) return Status::OK();
    drained_ = true;
  }
  RequestDrain();
  if (accept_thread_.joinable()) accept_thread_.join();
  // No new admissions can succeed now; flush what is queued. Workers claim
  // until the queue is closed AND empty, so joining them settles every
  // queued request.
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // With num_workers = 0 (tests) the queue still holds requests: shed them
  // so the conservation equation closes. With workers this sweep is empty.
  for (std::unique_ptr<PendingRequest>& leftover : queue_.TakeAll()) {
    const double now = NowUs();
    SettleRequest(leftover.get(),
                  Status::Unavailable("server draining: request not served"),
                  Outcome::kShed, nullptr, /*degraded=*/false,
                  /*rejected=*/false, now, now);
  }
  if (g_queue_depth_ != nullptr) g_queue_depth_->Set(0.0);
  // Wake blocked readers (EOF); writers flush their outboxes and exit.
  {
    MutexLock lock(conn_mu_);
    for (const std::shared_ptr<Connection>& conn : connections_) {
      conn->BeginShutdown();
    }
  }
  ReapConnections(/*all=*/true);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  Bump(c_drains_);
  return Status::OK();
}

void SongServer::AcceptLoop() {
  for (;;) {
    ReapConnections(/*all=*/false);
    if (draining()) return;
    struct pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    const int rc = ::poll(fds, 2, 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      Bump(c_accept_errors_);
      SONG_LOG(ERROR) << "accept poll failed (errno " << errno
                      << "); accept loop exiting";
      return;
    }
    if (draining()) return;
    if (rc == 0 || (fds[0].revents & POLLIN) == 0) continue;
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) {
      if (errno != EINTR && errno != ECONNABORTED && errno != EAGAIN &&
          errno != EWOULDBLOCK) {
        Bump(c_accept_errors_);
      }
      continue;
    }
    // Deterministic chaos: an accept-path infrastructure failure.
    if (fault::FaultRegistry::Global().ShouldFail("serve.accept")) {
      ::close(client_fd);
      Bump(c_accept_errors_);
      continue;
    }
    int one = 1;
    ::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    MutexLock lock(conn_mu_);
    if (connections_.size() >= options_.max_connections) {
      ::close(client_fd);
      Bump(c_conn_rejected_);
      continue;
    }
    std::shared_ptr<Connection> conn =
        std::make_shared<Connection>(this, client_fd);
    connections_.push_back(conn);
    conn->Start();
    Bump(c_conn_opened_);
    if (g_connections_ != nullptr) {
      g_connections_->Set(static_cast<double>(connections_.size()));
    }
  }
}

void SongServer::ReapConnections(bool all) {
  std::vector<std::shared_ptr<Connection>> to_join;
  {
    MutexLock lock(conn_mu_);
    auto it = connections_.begin();
    while (it != connections_.end()) {
      if (all || (*it)->finished()) {
        to_join.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    if (g_connections_ != nullptr) {
      g_connections_->Set(static_cast<double>(connections_.size()));
    }
  }
  for (const std::shared_ptr<Connection>& conn : to_join) conn->Join();
}

void SongServer::AdmitRequest(SearchRequestFrame frame,
                              const std::shared_ptr<Connection>& conn) {
  Bump(c_accepted_);
  n_accepted_.fetch_add(1, std::memory_order_relaxed);

  auto request = std::make_unique<PendingRequest>();
  request->request_id = request_seq_.fetch_add(1, std::memory_order_relaxed);
  request->client_tag = frame.client_tag;
  request->k = frame.k;
  request->queue_size =
      frame.queue_size != 0 ? frame.queue_size : options_.default_queue_size;
  request->deadline_us = frame.deadline_us;
  request->cost_budget = frame.cost_budget;
  request->query = std::move(frame.query);
  request->enqueue_us = NowUs();
  request->deadline_at_us =
      frame.deadline_us != 0
          ? request->enqueue_us + static_cast<double>(frame.deadline_us)
          : 0.0;
  request->conn = conn;
  conn->NoteIssued();

  // Per-request validation up front: one hostile request must never poison
  // batchmates or occupy a queue slot.
  Status invalid = Status::OK();
  if (request->query.size() != searcher_->data().dim()) {
    invalid = Status::InvalidArgument(
        "query dim " + std::to_string(request->query.size()) +
        " does not match index dim " +
        std::to_string(searcher_->data().dim()));
  } else if (request->k == 0) {
    invalid = Status::InvalidArgument("k must be >= 1");
  } else if (request->k > searcher_->data().num()) {
    invalid = Status::InvalidArgument(
        "k = " + std::to_string(request->k) + " exceeds the dataset size " +
        std::to_string(searcher_->data().num()));
  } else if (std::max<size_t>(request->queue_size, request->k) >
             SongSearcher::kMaxQueueSize) {
    invalid = Status::InvalidArgument(
        "effective queue size " +
        std::to_string(std::max<size_t>(request->queue_size, request->k)) +
        " exceeds the limit " + std::to_string(SongSearcher::kMaxQueueSize));
  }
  if (!invalid.ok()) {
    const double now = NowUs();
    SettleRequest(request.get(), invalid, Outcome::kError, nullptr,
                  /*degraded=*/false, /*rejected=*/true, now, now);
    return;
  }
  if (draining()) {
    const double now = NowUs();
    SettleRequest(request.get(),
                  Status::Unavailable("server draining: retry elsewhere"),
                  Outcome::kShed, nullptr, /*degraded=*/false,
                  /*rejected=*/false, now, now);
    return;
  }
  request->admitted_us = NowUs();
  const Status pushed = queue_.Push(request);
  if (!pushed.ok()) {
    // Queue full (or closed by a racing drain): immediate retryable shed,
    // never a silent drop.
    const double now = NowUs();
    SettleRequest(request.get(), Status::Unavailable(pushed.message()),
                  Outcome::kShed, nullptr, /*degraded=*/false,
                  /*rejected=*/false, now, now);
    return;
  }
  if (g_queue_depth_ != nullptr) {
    g_queue_depth_->Set(static_cast<double>(queue_.Size()));
  }
}

void SongServer::WorkerLoop() {
  std::vector<std::unique_ptr<PendingRequest>> batch(options_.max_batch);
  std::vector<size_t> live;
  live.reserve(options_.max_batch);
  for (;;) {
    const size_t n =
        queue_.PopBatch(batch.data(), options_.max_batch, options_.max_wait_us);
    if (n == 0) return;  // closed and drained
    if (g_queue_depth_ != nullptr) {
      g_queue_depth_->Set(static_cast<double>(queue_.Size()));
    }
    const double claim_us = NowUs();
    live.clear();
    for (size_t i = 0; i < n; ++i) {
      batch[i]->batched_us = claim_us;
      if (batch[i]->deadline_at_us > 0.0 &&
          claim_us >= batch[i]->deadline_at_us) {
        // Expired while queued: answer without searching. The deadline
        // covers the request's whole server-side life, queue wait included.
        SettleRequest(
            batch[i].get(),
            Status::DeadlineExceeded("deadline expired in queue after " +
                                     std::to_string(static_cast<uint64_t>(
                                         claim_us - batch[i]->enqueue_us)) +
                                     " us"),
            Outcome::kDeadline, nullptr, /*degraded=*/false,
            /*rejected=*/false, claim_us, claim_us);
        batch[i].reset();
      } else {
        live.push_back(i);
      }
    }
    if (live.empty()) continue;
    Bump(c_batches_);
    if (h_batch_size_ != nullptr) {
      h_batch_size_->Observe(static_cast<double>(live.size()));
    }

    // Deterministic chaos: a whole-batch dispatch failure (lost engine,
    // remote backend, ...). Settled as typed errors, never dropped.
    if (fault::FaultRegistry::Global().ShouldFail("serve.dispatch")) {
      const Status injected =
          Status::Unavailable("injected fault: serve.dispatch");
      for (const size_t i : live) {
        const double now = NowUs();
        SettleRequest(batch[i].get(), injected, Outcome::kError, nullptr,
                      /*degraded=*/false, /*rejected=*/false, now, now);
        batch[i].reset();
      }
      continue;
    }

    const PendingRequest& head = *batch[live[0]];
    const size_t k = head.k;
    SongSearchOptions opts = options_.base_options;
    opts.queue_size = head.queue_size;
    opts.cost_budget = head.cost_budget;
    opts.deadline_us = 0;
    if (head.deadline_us != 0) {
      // All batchmates carry deadlines (BatchKey::bounded_deadline); the
      // engine enforces the tightest remaining one for the whole batch.
      double min_remaining_us = 0.0;
      bool first = true;
      const double now = NowUs();
      for (const size_t i : live) {
        const double remaining = batch[i]->deadline_at_us - now;
        if (first || remaining < min_remaining_us) {
          min_remaining_us = remaining;
          first = false;
        }
      }
      opts.deadline_us = static_cast<uint64_t>(
          std::max(1.0, min_remaining_us));
    }

    Dataset queries(live.size(), searcher_->data().dim());
    for (size_t j = 0; j < live.size(); ++j) {
      queries.SetRow(static_cast<idx_t>(j), batch[live[j]]->query.data());
    }

    const double dispatch_us = NowUs();
    for (const size_t i : live) {
      batch[i]->batched_us = claim_us;
    }
    BatchTelemetry telemetry;
    telemetry.registry = registry_;
    // The server stamps its own RequestTimeline covering the full network
    // lifecycle; engine-level per-request records would double-count.
    telemetry.request_lifecycle = false;
    BatchAdmission admission;
    admission.max_inflight = options_.max_inflight;
    StatusOr<BatchResult> result =
        engine_.TrySearch(queries, k, opts, telemetry, admission);
    if (!result.ok()) {
      const bool shed =
          result.status().code() == StatusCode::kResourceExhausted;
      // Over-inflight sheds are retryable: kUnavailable on the wire.
      const Status settled =
          shed ? Status::Unavailable(result.status().message())
               : result.status();
      for (const size_t i : live) {
        SettleRequest(batch[i].get(), settled,
                      shed ? Outcome::kShed : Outcome::kError, nullptr,
                      /*degraded=*/false, /*rejected=*/false, dispatch_us,
                      NowUs());
        batch[i].reset();
      }
      continue;
    }
    const BatchResult& br = result.value();
    const double end_us = NowUs();
    for (size_t j = 0; j < live.size(); ++j) {
      PendingRequest* request = batch[live[j]].get();
      if (br.rejected[j] != 0) {
        SettleRequest(request,
                      Status::InvalidArgument(
                          "query rejected by validation (NaN/Inf values)"),
                      Outcome::kError, nullptr, /*degraded=*/false,
                      /*rejected=*/true, dispatch_us, end_us);
      } else {
        const double complete_us =
            dispatch_us + static_cast<double>(br.latencies_us[j]);
        SettleRequest(request, Status::OK(), Outcome::kOk, &br.results[j],
                      br.degraded[j] != 0, /*rejected=*/false, dispatch_us,
                      std::min(complete_us, end_us));
      }
      batch[live[j]].reset();
    }
  }
}

void SongServer::SettleRequest(PendingRequest* request, const Status& status,
                               Outcome outcome,
                               const std::vector<Neighbor>* results,
                               bool degraded, bool rejected,
                               double search_begin_us, double complete_us) {
  // Monotonic timeline even for requests refused before admission or
  // batching (their later stages collapse to zero-width).
  obs::RequestTimeline timeline;
  timeline.enqueue_us = request->enqueue_us;
  timeline.admitted_us = std::max(request->admitted_us, timeline.enqueue_us);
  timeline.batched_us = std::max(request->batched_us, timeline.admitted_us);
  timeline.search_begin_us = std::max(search_begin_us, timeline.batched_us);
  timeline.complete_us = std::max(complete_us, timeline.search_begin_us);

  SongSearchOptions effective = options_.base_options;
  effective.queue_size = request->queue_size;
  effective.deadline_us = request->deadline_us;
  effective.cost_budget = request->cost_budget;
  const obs::RequestRecord record = obs::RequestRecord::Make(
      request->request_id, effective.Digest(request->k), timeline,
      status.code(), degraded, rejected);
  request_metrics_.Record(record);
  flight_recorder_.Record(record);

  switch (outcome) {
    case Outcome::kOk:
      Bump(c_ok_);
      n_ok_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Outcome::kShed:
      Bump(c_shed_);
      n_shed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Outcome::kDeadline:
      Bump(c_deadline_);
      n_deadline_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Outcome::kError:
      Bump(c_error_);
      n_error_.fetch_add(1, std::memory_order_relaxed);
      break;
  }

  if (request->conn != nullptr) {
    SearchResponseFrame response;
    response.client_tag = request->client_tag;
    response.status_code = static_cast<int32_t>(status.code());
    response.degraded = degraded;
    response.queue_us = timeline.QueueUs() + timeline.BatchFormUs();
    response.search_us = timeline.SearchUs();
    response.message = status.message();
    if (results != nullptr) response.results = *results;
    std::vector<uint8_t> out;
    EncodeSearchResponse(response, &out);
    request->conn->EnqueueFrame(std::move(out));
    request->conn->NoteSettled();
    request->conn.reset();
  }
}

ServeCounterSnapshot SongServer::counters() const {
  ServeCounterSnapshot snapshot;
  snapshot.accepted = n_accepted_.load(std::memory_order_relaxed);
  snapshot.ok = n_ok_.load(std::memory_order_relaxed);
  snapshot.shed = n_shed_.load(std::memory_order_relaxed);
  snapshot.deadline = n_deadline_.load(std::memory_order_relaxed);
  snapshot.error = n_error_.load(std::memory_order_relaxed);
  return snapshot;
}

std::string SongServer::ServeStatusJson() const {
  const ServeCounterSnapshot c = counters();
  size_t connections = 0;
  {
    MutexLock lock(conn_mu_);
    connections = connections_.size();
  }
  std::string out = "{";
  Appendf(&out, "\"port\": %u, ", static_cast<unsigned>(port_));
  Appendf(&out, "\"draining\": %s, ", draining() ? "true" : "false");
  Appendf(&out, "\"connections\": %zu, ", connections);
  Appendf(&out, "\"queue_depth\": %zu, ", queue_.Size());
  Appendf(&out, "\"queue_capacity\": %zu, ", options_.queue_capacity);
  Appendf(&out, "\"max_batch\": %zu, ", options_.max_batch);
  Appendf(&out, "\"max_wait_us\": %llu, ",
          static_cast<unsigned long long>(options_.max_wait_us));
  Appendf(&out, "\"max_inflight\": %zu, ", options_.max_inflight);
  Appendf(&out, "\"num_workers\": %zu, ", options_.num_workers);
  Appendf(&out, "\"accepted\": %llu, ",
          static_cast<unsigned long long>(c.accepted));
  Appendf(&out,
          "\"outcomes\": {\"ok\": %llu, \"shed\": %llu, "
          "\"deadline\": %llu, \"error\": %llu}",
          static_cast<unsigned long long>(c.ok),
          static_cast<unsigned long long>(c.shed),
          static_cast<unsigned long long>(c.deadline),
          static_cast<unsigned long long>(c.error));
  out += "}";
  return out;
}

std::string SongServer::StatuszPayload() const {
  obs::StatuszContext context;
  context.registry = registry_;
  context.flight_recorder = &flight_recorder_;
  context.build_describe = options_.build_describe;
  context.command = "serve";
  context.serve_json = ServeStatusJson();
  std::string json = obs::StatuszToJson(context);
  if (json.size() > kMaxFramePayload) {
    // A pathological ring/metric set cannot be framed; fall back to the
    // compact serve section rather than sending a truncated document.
    json = ServeStatusJson();
  }
  return json;
}

void SongServer::BumpBadFrame() { Bump(c_frames_bad_); }
void SongServer::BumpReadTimeout() { Bump(c_read_timeouts_); }
void SongServer::BumpWriteError() { Bump(c_write_errors_); }

}  // namespace song::serve
