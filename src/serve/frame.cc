#include "serve/frame.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "core/logging.h"

namespace song::serve {

namespace {

/// Little-endian scalar append/read. The on-disk formats (.sngd/.sngg) make
/// the same host-endianness assumption; the wire format shares it.
template <typename T>
void AppendScalar(std::vector<uint8_t>* out, T value) {
  const size_t offset = out->size();
  out->resize(offset + sizeof(T));
  std::memcpy(out->data() + offset, &value, sizeof(T));
}

template <typename T>
T ReadScalar(const uint8_t* bytes) {
  T value;
  std::memcpy(&value, bytes, sizeof(T));
  return value;
}

std::string ErrnoMessage(const char* what, int err) {
  return std::string(what) + " failed: errno " + std::to_string(err);
}

}  // namespace

bool IsKnownFrameType(uint8_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kSearchRequest:
    case FrameType::kSearchResponse:
    case FrameType::kPing:
    case FrameType::kPong:
    case FrameType::kStatuszRequest:
    case FrameType::kStatuszResponse:
      return true;
  }
  return false;
}

void AppendFrame(FrameType type, const uint8_t* payload, size_t payload_len,
                 std::vector<uint8_t>* out) {
  SONG_CHECK(payload_len <= kMaxFramePayload);
  AppendScalar<uint32_t>(out, kFrameMagic);
  AppendScalar<uint8_t>(out, static_cast<uint8_t>(type));
  AppendScalar<uint8_t>(out, kProtocolVersion);
  AppendScalar<uint16_t>(out, 0);  // reserved
  AppendScalar<uint32_t>(out, static_cast<uint32_t>(payload_len));
  if (payload_len > 0) {
    const size_t offset = out->size();
    out->resize(offset + payload_len);
    std::memcpy(out->data() + offset, payload, payload_len);
  }
}

StatusOr<FrameHeader> DecodeFrameHeader(const uint8_t* bytes, size_t len) {
  if (len < kFrameHeaderBytes) {
    return Status::DataLoss("frame header truncated: " + std::to_string(len) +
                            " of " + std::to_string(kFrameHeaderBytes) +
                            " bytes");
  }
  const uint32_t magic = ReadScalar<uint32_t>(bytes);
  if (magic != kFrameMagic) {
    return Status::DataLoss("bad frame magic 0x" + std::to_string(magic) +
                            " (not a SNGF stream)");
  }
  const uint8_t type = bytes[4];
  if (!IsKnownFrameType(type)) {
    return Status::DataLoss("unknown frame type " + std::to_string(type));
  }
  const uint8_t version = bytes[5];
  if (version != kProtocolVersion) {
    return Status::DataLoss("unsupported protocol version " +
                            std::to_string(version) + " (expected " +
                            std::to_string(kProtocolVersion) + ")");
  }
  const uint16_t reserved = ReadScalar<uint16_t>(bytes + 6);
  if (reserved != 0) {
    return Status::DataLoss("nonzero reserved header bits");
  }
  const uint32_t payload_len = ReadScalar<uint32_t>(bytes + 8);
  if (payload_len > kMaxFramePayload) {
    // Checked before the caller sizes any buffer by it: a hostile length
    // field must never turn into an allocation.
    return Status::DataLoss("frame payload claims " +
                            std::to_string(payload_len) +
                            " bytes, limit is " +
                            std::to_string(kMaxFramePayload));
  }
  FrameHeader header;
  header.type = static_cast<FrameType>(type);
  header.payload_len = payload_len;
  return header;
}

// SearchRequest payload layout (40 fixed bytes + 4*dim):
//   u64 client_tag | u32 k | u32 queue_size | u64 deadline_us |
//   u64 cost_budget | u32 dim | u32 flags(=0) | f32 query[dim]
namespace {
constexpr size_t kSearchRequestFixedBytes = 40;
}  // namespace

void EncodeSearchRequest(const SearchRequestFrame& request,
                         std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  payload.reserve(kSearchRequestFixedBytes + 4 * request.query.size());
  AppendScalar<uint64_t>(&payload, request.client_tag);
  AppendScalar<uint32_t>(&payload, request.k);
  AppendScalar<uint32_t>(&payload, request.queue_size);
  AppendScalar<uint64_t>(&payload, request.deadline_us);
  AppendScalar<uint64_t>(&payload, request.cost_budget);
  AppendScalar<uint32_t>(&payload, static_cast<uint32_t>(request.query.size()));
  AppendScalar<uint32_t>(&payload, 0);  // flags
  const size_t offset = payload.size();
  payload.resize(offset + 4 * request.query.size());
  if (!request.query.empty()) {
    std::memcpy(payload.data() + offset, request.query.data(),
                4 * request.query.size());
  }
  AppendFrame(FrameType::kSearchRequest, payload.data(), payload.size(), out);
}

StatusOr<SearchRequestFrame> DecodeSearchRequest(const uint8_t* payload,
                                                 size_t len) {
  if (len < kSearchRequestFixedBytes) {
    return Status::DataLoss("search request truncated: " +
                            std::to_string(len) + " of " +
                            std::to_string(kSearchRequestFixedBytes) +
                            " fixed bytes");
  }
  SearchRequestFrame request;
  request.client_tag = ReadScalar<uint64_t>(payload);
  request.k = ReadScalar<uint32_t>(payload + 8);
  request.queue_size = ReadScalar<uint32_t>(payload + 12);
  request.deadline_us = ReadScalar<uint64_t>(payload + 16);
  request.cost_budget = ReadScalar<uint64_t>(payload + 24);
  const uint32_t dim = ReadScalar<uint32_t>(payload + 32);
  const uint32_t flags = ReadScalar<uint32_t>(payload + 36);
  if (flags != 0) {
    return Status::InvalidArgument("search request sets unknown flags 0x" +
                                   std::to_string(flags));
  }
  if (dim == 0) {
    return Status::InvalidArgument("search request query dim must be >= 1");
  }
  if (dim > kMaxQueryDim) {
    // Validate the claimed count against the bound (and below against the
    // actual byte count) before the vector resize, Dataset::Load-style.
    return Status::DataLoss("search request claims dim " +
                            std::to_string(dim) + ", limit is " +
                            std::to_string(kMaxQueryDim));
  }
  const size_t expected =
      kSearchRequestFixedBytes + 4 * static_cast<size_t>(dim);
  if (len != expected) {
    return Status::DataLoss("search request length mismatch: payload is " +
                            std::to_string(len) + " bytes, dim " +
                            std::to_string(dim) + " implies " +
                            std::to_string(expected));
  }
  request.query.resize(dim);
  std::memcpy(request.query.data(), payload + kSearchRequestFixedBytes,
              4 * static_cast<size_t>(dim));
  return request;
}

// SearchResponse payload layout (32 fixed bytes + msg + results):
//   u64 client_tag | i32 status_code | u8 degraded | u8 flags(=0) |
//   u16 reserved(=0) | f32 queue_us | f32 search_us | u32 msg_len |
//   u32 num_results | char msg[msg_len] | {u32 id, f32 dist}[num_results]
namespace {
constexpr size_t kSearchResponseFixedBytes = 32;
}  // namespace

void EncodeSearchResponse(const SearchResponseFrame& response,
                          std::vector<uint8_t>* out) {
  const uint32_t msg_len = static_cast<uint32_t>(
      std::min<size_t>(response.message.size(), kMaxResponseMessageBytes));
  std::vector<uint8_t> payload;
  payload.reserve(kSearchResponseFixedBytes + msg_len +
                  8 * response.results.size());
  AppendScalar<uint64_t>(&payload, response.client_tag);
  AppendScalar<int32_t>(&payload, response.status_code);
  AppendScalar<uint8_t>(&payload, response.degraded ? 1 : 0);
  AppendScalar<uint8_t>(&payload, 0);   // flags
  AppendScalar<uint16_t>(&payload, 0);  // reserved
  AppendScalar<float>(&payload, response.queue_us);
  AppendScalar<float>(&payload, response.search_us);
  AppendScalar<uint32_t>(&payload, msg_len);
  AppendScalar<uint32_t>(&payload,
                         static_cast<uint32_t>(response.results.size()));
  size_t offset = payload.size();
  payload.resize(offset + msg_len);
  if (msg_len > 0) {
    std::memcpy(payload.data() + offset, response.message.data(), msg_len);
  }
  offset = payload.size();
  payload.resize(offset + 8 * response.results.size());
  for (const Neighbor& n : response.results) {
    std::memcpy(payload.data() + offset, &n.id, 4);
    std::memcpy(payload.data() + offset + 4, &n.dist, 4);
    offset += 8;
  }
  AppendFrame(FrameType::kSearchResponse, payload.data(), payload.size(),
              out);
}

StatusOr<SearchResponseFrame> DecodeSearchResponse(const uint8_t* payload,
                                                   size_t len) {
  if (len < kSearchResponseFixedBytes) {
    return Status::DataLoss("search response truncated: " +
                            std::to_string(len) + " of " +
                            std::to_string(kSearchResponseFixedBytes) +
                            " fixed bytes");
  }
  SearchResponseFrame response;
  response.client_tag = ReadScalar<uint64_t>(payload);
  response.status_code = ReadScalar<int32_t>(payload + 8);
  response.degraded = payload[12] != 0;
  const uint8_t flags = payload[13];
  const uint16_t reserved = ReadScalar<uint16_t>(payload + 14);
  if (flags != 0 || reserved != 0) {
    return Status::DataLoss("search response sets reserved bits");
  }
  response.queue_us = ReadScalar<float>(payload + 16);
  response.search_us = ReadScalar<float>(payload + 20);
  const uint32_t msg_len = ReadScalar<uint32_t>(payload + 24);
  const uint32_t num_results = ReadScalar<uint32_t>(payload + 28);
  if (msg_len > kMaxResponseMessageBytes) {
    return Status::DataLoss("search response claims a " +
                            std::to_string(msg_len) + " byte message, " +
                            "limit is " +
                            std::to_string(kMaxResponseMessageBytes));
  }
  if (num_results > kMaxResponseResults) {
    return Status::DataLoss("search response claims " +
                            std::to_string(num_results) +
                            " results, limit is " +
                            std::to_string(kMaxResponseResults));
  }
  const size_t expected = kSearchResponseFixedBytes +
                          static_cast<size_t>(msg_len) +
                          8 * static_cast<size_t>(num_results);
  if (len != expected) {
    return Status::DataLoss("search response length mismatch: payload is " +
                            std::to_string(len) + " bytes, fields imply " +
                            std::to_string(expected));
  }
  response.message.assign(
      reinterpret_cast<const char*>(payload + kSearchResponseFixedBytes),
      msg_len);
  response.results.resize(num_results);
  const uint8_t* cursor = payload + kSearchResponseFixedBytes + msg_len;
  for (uint32_t i = 0; i < num_results; ++i) {
    std::memcpy(&response.results[i].id, cursor, 4);
    std::memcpy(&response.results[i].dist, cursor + 4, 4);
    cursor += 8;
  }
  return response;
}

Status FrameTransport::ReadFully(uint8_t* out, size_t len, bool* clean_eof) {
  *clean_eof = false;
  size_t done = 0;
  while (done < len) {
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, io_timeout_ms_ > 0 ? io_timeout_ms_ : -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(ErrnoMessage("poll(read)", errno));
    }
    if (rc == 0) {
      return Status::DeadlineExceeded(
          "slow client: no bytes for " + std::to_string(io_timeout_ms_) +
          " ms (" + std::to_string(done) + "/" + std::to_string(len) +
          " read)");
    }
    const ssize_t n = ::read(fd_, out + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(ErrnoMessage("read", errno));
    }
    if (n == 0) {
      *clean_eof = done == 0;
      return Status::DataLoss("connection closed mid-read: " +
                              std::to_string(done) + "/" +
                              std::to_string(len) + " bytes");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

StatusOr<Frame> FrameTransport::ReadFrame() {
  uint8_t header_bytes[kFrameHeaderBytes];
  bool clean_eof = false;
  Status s = ReadFully(header_bytes, kFrameHeaderBytes, &clean_eof);
  if (!s.ok()) {
    if (clean_eof) {
      // EOF exactly at a frame boundary: an orderly close, not corruption.
      return Status::Unavailable("connection closed");
    }
    return s;
  }
  StatusOr<FrameHeader> header =
      DecodeFrameHeader(header_bytes, kFrameHeaderBytes);
  SONG_RETURN_IF_ERROR(header.status());
  Frame frame;
  frame.type = header.value().type;
  frame.payload.resize(header.value().payload_len);
  if (header.value().payload_len > 0) {
    s = ReadFully(frame.payload.data(), frame.payload.size(), &clean_eof);
    if (!s.ok()) {
      if (clean_eof) {
        return Status::DataLoss("connection closed before the payload of a " +
                                std::to_string(frame.payload.size()) +
                                " byte frame");
      }
      return s;
    }
  }
  return frame;
}

Status FrameTransport::WriteBytes(const uint8_t* bytes, size_t len) {
  size_t done = 0;
  while (done < len) {
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLOUT;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, io_timeout_ms_ > 0 ? io_timeout_ms_ : -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(ErrnoMessage("poll(write)", errno));
    }
    if (rc == 0) {
      return Status::DeadlineExceeded(
          "slow client: write stalled for " +
          std::to_string(io_timeout_ms_) + " ms (" + std::to_string(done) +
          "/" + std::to_string(len) + " written)");
    }
    // MSG_NOSIGNAL: a peer that closed mid-stream must surface as EPIPE
    // here, never as a process-killing SIGPIPE.
    const ssize_t n = ::send(fd_, bytes + done, len - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable("connection closed by peer during write");
      }
      return Status::Internal(ErrnoMessage("write", errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace song::serve
