// Copyright 2026 The SONG-Repro Authors.
//
// The fault-tolerant serving front-end (docs/serving.md): a framed TCP
// server wrapping BatchEngine behind the admission queue and a
// continuous-batching scheduler. Design contract — every failure path is a
// Status, never a crash, and every accepted request settles in exactly one
// accounted outcome:
//
//   song.serve.accepted == song.serve.outcome.ok + .shed + .deadline + .error
//
// Threads: one accept loop, one reader + one writer per connection, and
// `num_workers` scheduler workers. Readers decode frames and Push; workers
// PopBatch (continuous batching), triage queue-expired deadlines, dispatch
// through BatchEngine::TrySearch, and settle every claimed request. Writers
// drain per-connection outboxes so a slow client stalls only its own
// socket, never a scheduler worker. A client disconnect does not lose
// accounting: the request still settles (its response write fails and is
// counted in song.serve.write_errors).
//
// Drain (SIGTERM/SIGINT in the song_server binary): RequestDrain() stops
// admission — readers shed new search requests with kUnavailable — then
// Drain() closes the listener, flushes the queue through the workers (or a
// final shed sweep), answers every in-flight request, wakes blocked
// readers, joins everything and leaves the flight recorder intact for the
// post-mortem dump.

#ifndef SONG_SERVE_SERVER_H_
#define SONG_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/status.h"
#include "core/sync.h"
#include "core/timer.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/request_timeline.h"
#include "serve/frame.h"
#include "serve/request_queue.h"
#include "song/batch_engine.h"
#include "song/song_searcher.h"

namespace song::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = kernel-assigned ephemeral port (see port())
  size_t max_connections = 64;
  size_t queue_capacity = 256;   ///< pending requests before shedding
  size_t max_batch = 32;         ///< scheduler batch ceiling
  uint64_t max_wait_us = 2000;   ///< continuous-batching linger
  size_t num_workers = 2;        ///< scheduler threads (0 = test-only: queue
                                 ///< drains as shed at Drain())
  size_t engine_threads = 0;     ///< BatchEngine workers, 0 = hardware
  size_t max_inflight = 0;       ///< engine admission (0 = unlimited)
  int io_timeout_ms = 5000;      ///< slow-client read/write bound
  uint32_t default_queue_size = 64;  ///< ef when a request sends 0
  size_t flight_recorder_capacity = 512;
  /// git describe of the serving binary, surfaced in the statusz dump.
  std::string build_describe;
  /// Structure / traversal knobs applied to every request (per-request
  /// fields k / queue_size / deadline_us / cost_budget come from the wire).
  SongSearchOptions base_options;
};

/// Outcome counters as settled so far (reads are relaxed snapshots; after
/// Drain() they are exact and conserve: accepted == ok+shed+deadline+error).
struct ServeCounterSnapshot {
  uint64_t accepted = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t deadline = 0;
  uint64_t error = 0;
};

class SongServer {
 public:
  /// `searcher` and `registry` must outlive the server; `registry` may be
  /// null (telemetry off — the flight recorder still records).
  SongServer(const SongSearcher* searcher, const ServerOptions& options,
             obs::MetricsRegistry* registry);
  ~SongServer();

  SongServer(const SongServer&) = delete;
  SongServer& operator=(const SongServer&) = delete;

  /// Binds, listens and spawns the accept loop + scheduler workers.
  Status Start();

  /// The bound port (resolves option port = 0 to the kernel's choice).
  uint16_t port() const { return port_; }

  /// Flips the server into draining mode: new search requests are shed
  /// with kUnavailable and the accept loop wakes to stop. Cheap, async,
  /// idempotent — the signal path calls this, then Drain().
  void RequestDrain();

  /// Full graceful shutdown: RequestDrain + close the listener, flush the
  /// queue (workers settle everything; without workers a final sweep sheds
  /// what is left), join all threads, close every connection. Idempotent;
  /// after it returns the outcome counters conserve exactly.
  Status Drain();

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  ServeCounterSnapshot counters() const;

  /// The "serve" section of the statusz dump (obs::StatuszContext::
  /// serve_json): configuration, live queue/connection state and the
  /// outcome conservation inputs, as a JSON object.
  std::string ServeStatusJson() const;

  /// The full statusz document served to kStatuszRequest frames (metrics +
  /// flight recorder + the serve section). Falls back to ServeStatusJson()
  /// if the document would not fit in one frame.
  std::string StatuszPayload() const;

  obs::FlightRecorder& flight_recorder() { return flight_recorder_; }
  obs::MetricsRegistry* registry() const { return registry_; }
  const ServerOptions& options() const { return options_; }

 private:
  friend class Connection;

  /// The outcome taxonomy behind song.serve.outcome.*: kOk includes
  /// degraded-but-answered; kShed is admission-related refusal (queue full,
  /// draining, engine over-inflight) and always retryable; kDeadline is a
  /// budget that expired while queued; kError is everything else
  /// (validation, decode, injected faults, engine failures).
  enum class Outcome { kOk, kShed, kDeadline, kError };

  void AcceptLoop();
  void WorkerLoop();
  /// Sweeps finished connections (joins their threads). `all` waits for
  /// and joins every connection (drain path).
  void ReapConnections(bool all);

  /// The single settlement point: stamps the timeline, emits the
  /// RequestRecord (song.req.* + flight recorder), bumps exactly one
  /// song.serve.outcome.* counter and enqueues the response frame. Every
  /// accepted request passes through here exactly once.
  void SettleRequest(PendingRequest* request, const Status& status,
                     Outcome outcome, const std::vector<Neighbor>* results,
                     bool degraded, bool rejected, double search_begin_us,
                     double complete_us);

  /// Builds, admits and settles-on-refusal one decoded request; called by
  /// connection readers. Bumps song.serve.accepted.
  void AdmitRequest(SearchRequestFrame frame,
                    const std::shared_ptr<Connection>& conn);

  // Connection-reader hooks for stream-level failures (not per-request).
  void BumpBadFrame();
  void BumpReadTimeout();
  void BumpWriteError();

  double NowUs() const { return clock_.ElapsedMicros(); }

  const SongSearcher* searcher_;
  const ServerOptions options_;
  obs::MetricsRegistry* registry_;
  BatchEngine engine_;
  obs::FlightRecorder flight_recorder_;
  obs::RequestMetrics request_metrics_;
  RequestQueue queue_;
  Timer clock_;  ///< server epoch; all RequestTimeline stamps use it

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< wakes the accept loop's poll on drain
  uint16_t port_ = 0;

  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> request_seq_{1};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  mutable Mutex conn_mu_;
  std::vector<std::shared_ptr<Connection>> connections_
      SONG_GUARDED_BY(conn_mu_);

  Mutex lifecycle_mu_;
  bool started_ SONG_GUARDED_BY(lifecycle_mu_) = false;
  bool drained_ SONG_GUARDED_BY(lifecycle_mu_) = false;

  // Resolved once; worker/reader threads bump without registry locks.
  // Null registry leaves them null and counting falls back to atomics only.
  obs::Counter* c_accepted_ = nullptr;
  obs::Counter* c_ok_ = nullptr;
  obs::Counter* c_shed_ = nullptr;
  obs::Counter* c_deadline_ = nullptr;
  obs::Counter* c_error_ = nullptr;
  obs::Counter* c_frames_bad_ = nullptr;
  obs::Counter* c_accept_errors_ = nullptr;
  obs::Counter* c_conn_opened_ = nullptr;
  obs::Counter* c_conn_rejected_ = nullptr;
  obs::Counter* c_write_errors_ = nullptr;
  obs::Counter* c_read_timeouts_ = nullptr;
  obs::Counter* c_batches_ = nullptr;
  obs::Counter* c_drains_ = nullptr;
  obs::Gauge* g_queue_depth_ = nullptr;
  obs::Gauge* g_connections_ = nullptr;
  obs::Gauge* g_draining_ = nullptr;
  obs::Histogram* h_batch_size_ = nullptr;

  // Registry-independent mirrors so counters()/conservation checks work
  // (and stay exact) even with telemetry off.
  std::atomic<uint64_t> n_accepted_{0};
  std::atomic<uint64_t> n_ok_{0};
  std::atomic<uint64_t> n_shed_{0};
  std::atomic<uint64_t> n_deadline_{0};
  std::atomic<uint64_t> n_error_{0};
};

}  // namespace song::serve

#endif  // SONG_SERVE_SERVER_H_
