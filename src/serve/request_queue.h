// Copyright 2026 The SONG-Repro Authors.
//
// The serving tier's admission queue: a bounded, lock-annotated MPMC queue
// of pending search requests, plus the continuous-batching claim primitive
// the scheduler workers drive. Connection reader threads Push decoded
// requests; scheduler workers PopBatch — claim the oldest request, sweep
// every queued request that can share its batch (same k / ef / cost budget
// and the same deadline-ness), then linger up to `max_wait_us` for more to
// arrive instead of waiting for a fixed batch size. That linger is the
// continuous-batching idea (ROADMAP item 1, after ScaleLLM and Johnson et
// al.): batch occupancy rides the offered load, so light traffic pays
// near-zero batching latency and heavy traffic fills max_batch-sized
// batches.
//
// Backpressure is explicit: Push on a full queue is kResourceExhausted and
// Push after Close() is kUnavailable — the caller turns either into an
// immediate shed response, never a silent drop.

#ifndef SONG_SERVE_REQUEST_QUEUE_H_
#define SONG_SERVE_REQUEST_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/status.h"
#include "core/sync.h"

namespace song::serve {

class Connection;

/// One decoded, admitted search request waiting for a scheduler worker.
/// Stage stamps are microseconds on the server's clock (Timer started at
/// SongServer::Start); they become the request's RequestTimeline when it
/// settles, so song.req.* histograms cover the full network lifecycle.
struct PendingRequest {
  uint64_t request_id = 0;   ///< server-assigned, monotonic (telemetry id)
  uint64_t client_tag = 0;   ///< echoed to the client verbatim
  uint32_t k = 0;
  uint32_t queue_size = 0;   ///< resolved ef (server default already applied)
  uint64_t deadline_us = 0;  ///< client budget, 0 = none
  uint64_t cost_budget = 0;  ///< search work-unit budget, 0 = none
  std::vector<float> query;
  double enqueue_us = 0.0;   ///< frame decoded
  double admitted_us = 0.0;  ///< queue accepted it (admission passed)
  double batched_us = 0.0;   ///< a scheduler worker claimed it
  double deadline_at_us = 0.0;  ///< enqueue + deadline, 0 = no deadline
  /// Response destination. Holding the shared_ptr keeps the connection's
  /// writer alive until every request it issued has settled, even when the
  /// client disconnects mid-flight. Null in queue-level tests.
  std::shared_ptr<Connection> conn;
};

/// Requests may share a batch iff their key matches: one SongSearchOptions
/// and one k serve the whole engine batch. `bounded_deadline` separates
/// deadline-free requests from deadline-carrying ones so an unhurried
/// request is never cut short by a batchmate's budget.
struct BatchKey {
  uint32_t k = 0;
  uint32_t queue_size = 0;
  uint64_t cost_budget = 0;
  bool bounded_deadline = false;

  friend bool operator==(const BatchKey& a, const BatchKey& b) {
    return a.k == b.k && a.queue_size == b.queue_size &&
           a.cost_budget == b.cost_budget &&
           a.bounded_deadline == b.bounded_deadline;
  }
};

inline BatchKey KeyOf(const PendingRequest& request) {
  BatchKey key;
  key.k = request.k;
  key.queue_size = request.queue_size;
  key.cost_budget = request.cost_budget;
  key.bounded_deadline = request.deadline_us != 0;
  return key;
}

class RequestQueue {
 public:
  /// `capacity` >= 1 bounds queued (not yet claimed) requests.
  explicit RequestQueue(size_t capacity);

  /// Enqueues or refuses: kResourceExhausted when full (shed), kUnavailable
  /// after Close() (draining). Never blocks. On refusal `request` keeps its
  /// ownership so the caller can settle it with a shed response.
  Status Push(std::unique_ptr<PendingRequest>& request) SONG_EXCLUDES(mu_);

  /// Blocks until at least one request is queued (or the queue is closed
  /// and empty — returns 0, the worker-exit signal). Claims up to
  /// `max_batch` requests compatible with the oldest one into `out[0..n)`,
  /// lingering up to `max_wait_us` for late arrivals to join. `out` must
  /// have room for `max_batch` entries.
  size_t PopBatch(std::unique_ptr<PendingRequest>* out, size_t max_batch,
                  uint64_t max_wait_us) SONG_EXCLUDES(mu_);

  /// Drain entry: refuses new pushes; PopBatch keeps claiming until empty,
  /// then returns 0. Idempotent.
  void Close() SONG_EXCLUDES(mu_);

  /// Removes and returns every queued request (drain sweep for servers
  /// running without scheduler workers, or after the workers exited).
  std::vector<std::unique_ptr<PendingRequest>> TakeAll() SONG_EXCLUDES(mu_);

  size_t Size() const SONG_EXCLUDES(mu_);
  bool closed() const SONG_EXCLUDES(mu_);
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar nonempty_;
  std::deque<std::unique_ptr<PendingRequest>> queue_ SONG_GUARDED_BY(mu_);
  bool closed_ SONG_GUARDED_BY(mu_) = false;
};

}  // namespace song::serve

#endif  // SONG_SERVE_REQUEST_QUEUE_H_
