#include "serve/request_queue.h"

#include <utility>

#include "core/logging.h"
#include "core/timer.h"

namespace song::serve {

RequestQueue::RequestQueue(size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

Status RequestQueue::Push(std::unique_ptr<PendingRequest>& request) {
  SONG_CHECK(request != nullptr);
  MutexLock lock(mu_);
  if (closed_) {
    return Status::Unavailable("request queue draining: not accepting work");
  }
  if (queue_.size() >= capacity_) {
    return Status::ResourceExhausted(
        "request queue full: " + std::to_string(queue_.size()) + " of " +
        std::to_string(capacity_) + " slots");
  }
  queue_.push_back(std::move(request));
  nonempty_.NotifyOne();
  return Status::OK();
}

size_t RequestQueue::PopBatch(std::unique_ptr<PendingRequest>* out,
                              size_t max_batch, uint64_t max_wait_us) {
  if (max_batch == 0) return 0;
  MutexLock lock(mu_);
  while (queue_.empty() && !closed_) nonempty_.Wait(mu_);
  if (queue_.empty()) return 0;  // closed and drained: worker-exit signal
  size_t n = 0;
  const BatchKey key = KeyOf(*queue_.front());
  // song-lint: begin-hot-path(serve-batch-form)
  // Continuous batching under the queue mutex: every queued request and
  // every other worker waits on this loop, so it is allocation- and
  // logging-free. Sweep claims compatible requests in arrival order; the
  // linger then blocks for the *remaining* slice of max_wait_us so late
  // arrivals can top the batch up without a fixed-size wait.
  Timer linger;
  for (;;) {
    for (auto it = queue_.begin(); it != queue_.end() && n < max_batch;) {
      if (KeyOf(**it) == key) {
        out[n] = std::move(*it);
        ++n;
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    if (n >= max_batch || closed_ || max_wait_us == 0) break;
    const double elapsed = linger.ElapsedMicros();
    const double budget = static_cast<double>(max_wait_us);
    if (elapsed >= budget) break;
    nonempty_.WaitFor(mu_, static_cast<uint64_t>(budget - elapsed));
  }
  // song-lint: end-hot-path
  return n;
}

void RequestQueue::Close() {
  MutexLock lock(mu_);
  closed_ = true;
  nonempty_.NotifyAll();
}

std::vector<std::unique_ptr<PendingRequest>> RequestQueue::TakeAll() {
  MutexLock lock(mu_);
  std::vector<std::unique_ptr<PendingRequest>> taken;
  taken.reserve(queue_.size());
  while (!queue_.empty()) {
    taken.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return taken;
}

size_t RequestQueue::Size() const {
  MutexLock lock(mu_);
  return queue_.size();
}

bool RequestQueue::closed() const {
  MutexLock lock(mu_);
  return closed_;
}

}  // namespace song::serve
