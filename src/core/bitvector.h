// Copyright 2026 The SONG-Repro Authors.
//
// Packed bit vectors and Hamming distance (popcount), used by the 1-bit
// random projection path (paper §VII) where each point becomes an h-bit code
// stored as h/32 u32 words — we pack into u64 words internally.

#ifndef SONG_CORE_BITVECTOR_H_
#define SONG_CORE_BITVECTOR_H_

#include <bit>
#include <cstddef>
#include <cstdint>

#include "core/aligned_buffer.h"
#include "core/logging.h"
#include "core/types.h"

namespace song {

/// Hamming distance between two packed codes of `words` u64 words.
inline uint32_t HammingDistance(const uint64_t* a, const uint64_t* b,
                                size_t words) {
  uint32_t total = 0;
  for (size_t w = 0; w < words; ++w) {
    total += static_cast<uint32_t>(std::popcount(a[w] ^ b[w]));
  }
  return total;
}

/// A matrix of fixed-width binary codes, one row per point.
class BinaryCodes {
 public:
  BinaryCodes() = default;

  /// `bits` is rounded up to a multiple of 64 for storage; logical width is
  /// kept for distance normalization and size accounting.
  BinaryCodes(size_t num, size_t bits)
      : num_(num), bits_(bits), words_(RoundUpWords(bits)) {
    data_.Reset(num_ * words_);
  }

  size_t num() const { return num_; }
  size_t bits() const { return bits_; }
  size_t words() const { return words_; }

  /// Payload bytes using the paper's accounting (bits/8 per point).
  size_t PayloadBytes() const { return num_ * (bits_ / 8); }

  uint64_t* Row(idx_t i) {
    SONG_DCHECK(i < num_);
    return data_.data() + static_cast<size_t>(i) * words_;
  }
  const uint64_t* Row(idx_t i) const {
    SONG_DCHECK(i < num_);
    return data_.data() + static_cast<size_t>(i) * words_;
  }

  void SetBit(idx_t row, size_t bit) {
    SONG_DCHECK(bit < bits_);
    Row(row)[bit >> 6] |= uint64_t{1} << (bit & 63);
  }
  bool GetBit(idx_t row, size_t bit) const {
    SONG_DCHECK(bit < bits_);
    return (Row(row)[bit >> 6] >> (bit & 63)) & 1;
  }

  uint32_t Hamming(idx_t a, idx_t b) const {
    return HammingDistance(Row(a), Row(b), words_);
  }

 private:
  static size_t RoundUpWords(size_t bits) { return (bits + 63) / 64; }

  size_t num_ = 0;
  size_t bits_ = 0;
  size_t words_ = 0;
  AlignedBuffer<uint64_t> data_;
};

}  // namespace song

#endif  // SONG_CORE_BITVECTOR_H_
