// Copyright 2026 The SONG-Repro Authors.
//
// Deterministic, fast PRNG (xoshiro256** seeded via splitmix64) plus the
// continuous distributions the library needs (uniform, Gaussian, Cauchy).
// We avoid std:: distributions so that synthetic datasets and graph builds
// reproduce bit-identically across standard-library implementations.

#ifndef SONG_CORE_RANDOM_H_
#define SONG_CORE_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace song {

/// splitmix64: used for seeding and cheap stateless hashing.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna. Small state, excellent statistical
/// quality, deterministic everywhere.
class RandomEngine {
 public:
  using result_type = uint64_t;

  explicit RandomEngine(uint64_t seed = 0x5345454453454544ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
    has_cached_gaussian_ = false;
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  uint64_t operator()() { return Next(); }
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }

  /// Uniform in [0, 1).
  double NextUniform() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextUniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t NextUint(uint64_t n) { return Next() % n; }

  /// Standard normal via Box-Muller (cached second deviate).
  double NextGaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = NextUniform();
    // Guard against log(0).
    while (u1 <= 1e-300) u1 = NextUniform();
    const double u2 = NextUniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return r * std::cos(theta);
  }

  /// Standard Cauchy (used by sign-Cauchy projections, paper §VII).
  double NextCauchy() {
    double u = NextUniform();
    // Avoid the poles of tan at 0 and 1.
    while (u <= 1e-12 || u >= 1.0 - 1e-12) u = NextUniform();
    return std::tan(M_PI * (u - 0.5));
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace song

#endif  // SONG_CORE_RANDOM_H_
