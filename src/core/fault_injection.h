// Copyright 2026 The SONG-Repro Authors.
//
// Deterministic, seeded fault injection for resilience testing. Call sites
// name themselves ("shard0.kernel", "io.read", "device.alloc") and ask
// ShouldFail(site); a registry of (pattern -> probability) rules decides.
// Decisions are a pure function of (seed, site name, per-site attempt
// counter), so a given spec + seed produces the same failure sequence on
// every run regardless of wall clock or thread scheduling — the property
// the CI fault leg and the sharded-failure tests rely on.
//
// Spec syntax (CLI --fault-spec / SONG_FAULT_SPEC environment variable):
//
//   site=probability[@max][,site=probability[@max]...]
//
//   shard0.kernel=1          shard 0's kernel fails every attempt
//   shard*.kernel=0.05       every shard kernel fails 5% of attempts
//   io.read=1@2              the first two io.read checks fail, then none
//   *=0.01                   every site fails 1% of attempts
//
// Patterns match a site exactly or via a single '*' wildcard (any run of
// characters). The first matching rule in spec order wins. `@max` caps the
// number of injected failures for sites matched by that rule (per site).
//
// Cost when disabled: one relaxed atomic load per check — the registry is
// off by default and stays off unless Configure() is called or the
// SONG_FAULT_SPEC environment variable is set.

#ifndef SONG_CORE_FAULT_INJECTION_H_
#define SONG_CORE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/status.h"
#include "core/sync.h"

namespace song::fault {

struct FaultRule {
  std::string pattern;            ///< site name, may contain one '*'
  double probability = 0.0;       ///< in [0, 1]
  uint64_t max_failures = ~0ull;  ///< per-site cap for this rule
};

class FaultRegistry {
 public:
  FaultRegistry() = default;
  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  /// Installs the given spec (see header comment for syntax) and arms the
  /// registry. An empty spec disables it. Resets all counters.
  Status Configure(std::string_view spec, uint64_t seed) SONG_EXCLUDES(mu_);

  /// Disarms the registry and clears rules/counters.
  void Disable() SONG_EXCLUDES(mu_);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Copies of the armed spec/seed, taken under the registry mutex. By
  /// value on purpose: a reference would let callers read the strings while
  /// a concurrent Configure() rewrites them (a data race SONG_GUARDED_BY
  /// flagged on the previous by-reference accessors).
  std::string spec() const SONG_EXCLUDES(mu_);
  uint64_t seed() const SONG_EXCLUDES(mu_);

  /// True if the fault at `site` should fire this time. Deterministic in
  /// (seed, site, per-site attempt index). Thread-safe.
  bool ShouldFail(std::string_view site) SONG_EXCLUDES(mu_);

  /// Total injected failures since the last Configure().
  uint64_t injected_total() const {
    return injected_total_.load(std::memory_order_relaxed);
  }

  /// Per-site (site, injected count) pairs, sorted by site name.
  std::vector<std::pair<std::string, uint64_t>> InjectedCounts() const
      SONG_EXCLUDES(mu_);

  /// Installs a callback invoked each time a site fires (after the failure
  /// is counted). Serving layers use it to trigger a flight-recorder dump
  /// the moment a fault lands. Called under the registry mutex, so the
  /// listener must not re-enter this registry; pass nullptr to clear.
  /// Survives Configure()/Disable(). No cost when no fault fires.
  void SetInjectionListener(std::function<void(std::string_view)> listener)
      SONG_EXCLUDES(mu_);

  /// Process-wide registry. On first access, initializes itself from the
  /// SONG_FAULT_SPEC / SONG_FAULT_SEED environment variables (stays
  /// disabled when unset or malformed).
  static FaultRegistry& Global();

 private:
  struct SiteState {
    uint64_t attempts = 0;
    uint64_t failures = 0;
  };

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> injected_total_{0};
  mutable Mutex mu_;
  std::string spec_ SONG_GUARDED_BY(mu_);
  uint64_t seed_ SONG_GUARDED_BY(mu_) = 0;
  std::vector<FaultRule> rules_ SONG_GUARDED_BY(mu_);
  std::map<std::string, SiteState, std::less<>> sites_ SONG_GUARDED_BY(mu_);
  std::function<void(std::string_view)> listener_ SONG_GUARDED_BY(mu_);
};

/// Hot-path helper against the global registry: a relaxed load when no
/// faults are armed.
inline bool ShouldFail(std::string_view site) {
  FaultRegistry& reg = FaultRegistry::Global();
  if (!reg.enabled()) return false;
  return reg.ShouldFail(site);
}

/// Pattern match helper (exposed for tests): exact match, or a single '*'
/// in `pattern` matching any run of characters.
bool PatternMatches(std::string_view pattern, std::string_view site);

/// RAII spec installer for tests: configures the global registry on entry
/// and restores its previous spec/seed/armed state on exit.
class ScopedFaultSpec {
 public:
  ScopedFaultSpec(std::string_view spec, uint64_t seed);
  ~ScopedFaultSpec();
  ScopedFaultSpec(const ScopedFaultSpec&) = delete;
  ScopedFaultSpec& operator=(const ScopedFaultSpec&) = delete;

  /// OK unless the spec failed to parse (the registry is then disabled).
  const Status& status() const { return status_; }

 private:
  bool was_enabled_;
  std::string prev_spec_;
  uint64_t prev_seed_;
  Status status_;
};

}  // namespace song::fault

#endif  // SONG_CORE_FAULT_INJECTION_H_
