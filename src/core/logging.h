// Copyright 2026 The SONG-Repro Authors.
//
// Minimal check/assert macros. Hot paths use SONG_DCHECK (compiled out in
// release); construction-time invariants use SONG_CHECK which always fires.

#ifndef SONG_CORE_LOGGING_H_
#define SONG_CORE_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace song::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "[SONG CHECK FAILED] %s:%d: (%s) %s\n", file, line,
               expr, msg ? msg : "");
  std::abort();
}

}  // namespace song::internal

#define SONG_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond))                                                          \
      ::song::internal::CheckFailed(__FILE__, __LINE__, #cond, nullptr);  \
  } while (0)

#define SONG_CHECK_MSG(cond, msg)                                      \
  do {                                                                 \
    if (!(cond))                                                       \
      ::song::internal::CheckFailed(__FILE__, __LINE__, #cond, (msg)); \
  } while (0)

#ifndef NDEBUG
#define SONG_DCHECK(cond) SONG_CHECK(cond)
#else
#define SONG_DCHECK(cond) \
  do {                    \
  } while (0)
#endif

#endif  // SONG_CORE_LOGGING_H_
