// Copyright 2026 The SONG-Repro Authors.
//
// Check/assert macros plus leveled logging. Hot paths use SONG_DCHECK
// (compiled out in release); construction-time invariants use SONG_CHECK
// which always fires. Diagnostics go through SONG_LOG(INFO|WARN|ERROR) and
// SONG_VLOG(n), both gated at runtime by the SONG_LOG_LEVEL environment
// variable:
//
//   SONG_LOG_LEVEL=error   only SONG_LOG(ERROR)
//   SONG_LOG_LEVEL=warn    WARN + ERROR (the default)
//   SONG_LOG_LEVEL=info    INFO + WARN + ERROR
//   SONG_LOG_LEVEL=<n>     integer n >= 1: everything above plus
//                          SONG_VLOG(m) for m <= n ("debug" == 1)
//
// Messages are stream-style (SONG_LOG(WARN) << "x = " << x) and emitted to
// stderr as a single write, so concurrent threads do not interleave lines.

#ifndef SONG_CORE_LOGGING_H_
#define SONG_CORE_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

namespace song::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "[SONG CHECK FAILED] %s:%d: (%s) %s\n", file, line,
               expr, msg ? msg : "");
  std::abort();
}

// Severities (ascending). Verbose messages sit below INFO.
inline constexpr int kLogError = 2;
inline constexpr int kLogWarn = 1;
inline constexpr int kLogInfo = 0;

/// Parses a SONG_LOG_LEVEL value into (min severity, vlog verbosity).
/// Unknown strings fall back to the default (warn, verbosity 0).
struct LogConfig {
  int min_severity = kLogWarn;
  int verbosity = 0;
};

inline LogConfig ParseLogLevel(const char* value) {
  LogConfig config;
  if (value == nullptr || *value == '\0') return config;
  if (std::strcmp(value, "error") == 0 || std::strcmp(value, "ERROR") == 0) {
    config.min_severity = kLogError;
  } else if (std::strcmp(value, "warn") == 0 ||
             std::strcmp(value, "WARN") == 0) {
    config.min_severity = kLogWarn;
  } else if (std::strcmp(value, "info") == 0 ||
             std::strcmp(value, "INFO") == 0) {
    config.min_severity = kLogInfo;
  } else if (std::strcmp(value, "debug") == 0 ||
             std::strcmp(value, "DEBUG") == 0) {
    config.min_severity = kLogInfo;
    config.verbosity = 1;
  } else {
    char* end = nullptr;
    const long n = std::strtol(value, &end, 10);
    if (end != value && *end == '\0' && n >= 1) {
      config.min_severity = kLogInfo;
      config.verbosity = static_cast<int>(n);
    }
  }
  return config;
}

inline const LogConfig& GetLogConfig() {
  static const LogConfig config = ParseLogLevel(std::getenv("SONG_LOG_LEVEL"));
  return config;
}

inline bool LogEnabled(int severity) {
  return severity >= GetLogConfig().min_severity;
}

inline bool VlogEnabled(int level) {
  return level <= GetLogConfig().verbosity;
}

/// Collects one message and writes it to stderr in the destructor.
class LogMessage {
 public:
  LogMessage(const char* file, int line, int severity) {
    const char* base = std::strrchr(file, '/');
    stream_ << '[' << SeverityName(severity) << "] "
            << (base != nullptr ? base + 1 : file) << ':' << line << ": ";
  }
  ~LogMessage() {
    stream_ << '\n';
    const std::string text = stream_.str();
    std::fwrite(text.data(), 1, text.size(), stderr);
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  static const char* SeverityName(int severity) {
    switch (severity) {
      case kLogError:
        return "SONG ERROR";
      case kLogWarn:
        return "SONG WARN";
      default:
        return "SONG INFO";
    }
  }

  std::ostringstream stream_;
};

}  // namespace song::internal

// SONG_LOG(INFO) << "..." — the if/else keeps the streaming expression
// unevaluated when the level is disabled.
#define SONG_LOG_SEVERITY_INFO ::song::internal::kLogInfo
#define SONG_LOG_SEVERITY_WARN ::song::internal::kLogWarn
#define SONG_LOG_SEVERITY_ERROR ::song::internal::kLogError

#define SONG_LOG(severity)                                               \
  if (!::song::internal::LogEnabled(SONG_LOG_SEVERITY_##severity))       \
    ;                                                                    \
  else                                                                   \
    ::song::internal::LogMessage(__FILE__, __LINE__,                     \
                                 SONG_LOG_SEVERITY_##severity)           \
        .stream()

#define SONG_VLOG(level)                                              \
  if (!::song::internal::VlogEnabled(level))                          \
    ;                                                                 \
  else                                                                \
    ::song::internal::LogMessage(__FILE__, __LINE__,                  \
                                 ::song::internal::kLogInfo)          \
        .stream()

#define SONG_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond))                                                          \
      ::song::internal::CheckFailed(__FILE__, __LINE__, #cond, nullptr);  \
  } while (0)

#define SONG_CHECK_MSG(cond, msg)                                      \
  do {                                                                 \
    if (!(cond))                                                       \
      ::song::internal::CheckFailed(__FILE__, __LINE__, #cond, (msg)); \
  } while (0)

#ifndef NDEBUG
#define SONG_DCHECK(cond) SONG_CHECK(cond)
#else
#define SONG_DCHECK(cond) \
  do {                    \
  } while (0)
#endif

#endif  // SONG_CORE_LOGGING_H_
