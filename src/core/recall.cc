#include "core/recall.h"

#include <algorithm>
#include <unordered_set>

namespace song {

double RecallAtK(const std::vector<idx_t>& result,
                 const std::vector<idx_t>& ground_truth, size_t k) {
  if (k == 0 || ground_truth.empty()) return 0.0;
  const size_t gt_k = std::min(k, ground_truth.size());
  std::unordered_set<idx_t> truth(ground_truth.begin(),
                                  ground_truth.begin() + gt_k);
  const size_t res_k = std::min(k, result.size());
  size_t hits = 0;
  for (size_t i = 0; i < res_k; ++i) {
    if (truth.erase(result[i]) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(gt_k);
}

double MeanRecallAtK(const std::vector<std::vector<idx_t>>& results,
                     const std::vector<std::vector<idx_t>>& ground_truth,
                     size_t k) {
  if (results.empty() || results.size() != ground_truth.size()) return 0.0;
  double total = 0.0;
  for (size_t q = 0; q < results.size(); ++q) {
    total += RecallAtK(results[q], ground_truth[q], k);
  }
  return total / static_cast<double>(results.size());
}

}  // namespace song
