#include "core/fault_injection.h"

#include <cstdlib>

#include "core/logging.h"

namespace song::fault {

namespace {

// splitmix64: the decision function must be a bijective scramble of its
// input so per-site sequences are independent and uniform.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashSite(std::string_view site) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Uniform double in [0, 1) from (seed, site, attempt).
double Draw(uint64_t seed, std::string_view site, uint64_t attempt) {
  const uint64_t bits = Mix64(seed ^ Mix64(HashSite(site) + attempt));
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

Status ParseRule(std::string_view entry, FaultRule* rule) {
  const size_t eq = entry.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return Status::InvalidArgument("fault spec entry missing 'site=prob': " +
                                   std::string(entry));
  }
  rule->pattern = std::string(entry.substr(0, eq));
  if (rule->pattern.find('*') != rule->pattern.rfind('*')) {
    return Status::InvalidArgument("fault pattern has more than one '*': " +
                                   rule->pattern);
  }
  std::string value(entry.substr(eq + 1));
  rule->max_failures = ~0ull;
  const size_t at = value.find('@');
  if (at != std::string::npos) {
    const std::string cap = value.substr(at + 1);
    char* end = nullptr;
    const unsigned long long n = std::strtoull(cap.c_str(), &end, 10);
    if (cap.empty() || end == nullptr || *end != '\0') {
      return Status::InvalidArgument("bad fault '@max' count: " +
                                     std::string(entry));
    }
    rule->max_failures = n;
    value.resize(at);
  }
  char* end = nullptr;
  rule->probability = std::strtod(value.c_str(), &end);
  if (value.empty() || end == nullptr || *end != '\0' ||
      rule->probability < 0.0 || rule->probability > 1.0) {
    return Status::InvalidArgument(
        "fault probability must be a number in [0, 1]: " + std::string(entry));
  }
  return Status::OK();
}

}  // namespace

std::string FaultRegistry::spec() const {
  MutexLock lock(mu_);
  return spec_;
}

uint64_t FaultRegistry::seed() const {
  MutexLock lock(mu_);
  return seed_;
}

bool PatternMatches(std::string_view pattern, std::string_view site) {
  const size_t star = pattern.find('*');
  if (star == std::string_view::npos) return pattern == site;
  const std::string_view prefix = pattern.substr(0, star);
  const std::string_view suffix = pattern.substr(star + 1);
  if (site.size() < prefix.size() + suffix.size()) return false;
  return site.substr(0, prefix.size()) == prefix &&
         site.substr(site.size() - suffix.size()) == suffix;
}

Status FaultRegistry::Configure(std::string_view spec, uint64_t seed) {
  std::vector<FaultRule> rules;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const size_t comma = rest.find(',');
    const std::string_view entry = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (entry.empty()) continue;
    FaultRule rule;
    SONG_RETURN_IF_ERROR(ParseRule(entry, &rule));
    rules.push_back(std::move(rule));
  }
  MutexLock lock(mu_);
  rules_ = std::move(rules);
  spec_ = std::string(spec);
  seed_ = seed;
  sites_.clear();
  injected_total_.store(0, std::memory_order_relaxed);
  enabled_.store(!rules_.empty(), std::memory_order_relaxed);
  return Status::OK();
}

void FaultRegistry::Disable() {
  MutexLock lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
  rules_.clear();
  spec_.clear();
  sites_.clear();
  injected_total_.store(0, std::memory_order_relaxed);
}

bool FaultRegistry::ShouldFail(std::string_view site) {
  if (!enabled()) return false;
  MutexLock lock(mu_);
  const FaultRule* match = nullptr;
  for (const FaultRule& rule : rules_) {
    if (PatternMatches(rule.pattern, site)) {
      match = &rule;
      break;
    }
  }
  if (match == nullptr) return false;
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    it = sites_.emplace(std::string(site), SiteState{}).first;
  }
  SiteState& state = it->second;
  const uint64_t attempt = state.attempts++;
  if (state.failures >= match->max_failures) return false;
  const bool fail = match->probability >= 1.0 ||
                    Draw(seed_, site, attempt) < match->probability;
  if (fail) {
    ++state.failures;
    injected_total_.fetch_add(1, std::memory_order_relaxed);
    SONG_VLOG(1) << "fault injected at site '" << std::string(site)
                 << "' (attempt " << attempt << ")";
    if (listener_) listener_(site);
  }
  return fail;
}

void FaultRegistry::SetInjectionListener(
    std::function<void(std::string_view)> listener) {
  MutexLock lock(mu_);
  listener_ = std::move(listener);
}

std::vector<std::pair<std::string, uint64_t>> FaultRegistry::InjectedCounts()
    const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(sites_.size());
  for (const auto& [site, state] : sites_) {
    out.emplace_back(site, state.failures);
  }
  return out;
}

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = [] {
    auto* reg = new FaultRegistry();
    const char* spec = std::getenv("SONG_FAULT_SPEC");
    if (spec != nullptr && *spec != '\0') {
      uint64_t seed = 0x534f4e47;  // "SONG"
      const char* seed_env = std::getenv("SONG_FAULT_SEED");
      if (seed_env != nullptr && *seed_env != '\0') {
        seed = std::strtoull(seed_env, nullptr, 0);
      }
      const Status s = reg->Configure(spec, seed);
      if (!s.ok()) {
        SONG_LOG(WARN) << "ignoring malformed SONG_FAULT_SPEC: "
                       << s.ToString();
        reg->Disable();
      } else {
        SONG_LOG(WARN) << "fault injection armed from SONG_FAULT_SPEC='"
                       << spec << "' seed=" << seed;
      }
    }
    return reg;
  }();
  return *registry;
}

ScopedFaultSpec::ScopedFaultSpec(std::string_view spec, uint64_t seed) {
  FaultRegistry& reg = FaultRegistry::Global();
  was_enabled_ = reg.enabled();
  prev_spec_ = reg.spec();
  prev_seed_ = reg.seed();
  status_ = reg.Configure(spec, seed);
  if (!status_.ok()) reg.Disable();
}

ScopedFaultSpec::~ScopedFaultSpec() {
  FaultRegistry& reg = FaultRegistry::Global();
  if (was_enabled_) {
    // Restore errors are impossible: the previous spec parsed once already.
    SONG_IGNORE_ERROR(reg.Configure(prev_spec_, prev_seed_));
  } else {
    reg.Disable();
  }
}

}  // namespace song::fault
