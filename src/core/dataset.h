// Copyright 2026 The SONG-Repro Authors.
//
// Row-major float matrix holding the vector dataset, with binary IO.
// Rows are padded to a multiple of 16 floats so every row starts on a
// 64-byte boundary (the CPU analogue of the GPU's aligned global-memory
// segments, paper §II).
//
// Invariant: the padded tail of every row (floats [dim, stride)) is always
// zero. The buffer is zero-filled on allocation and SetRow re-clears the
// tail, so full-stride vector reads of a row are well-defined.

#ifndef SONG_CORE_DATASET_H_
#define SONG_CORE_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/aligned_buffer.h"
#include "core/status.h"
#include "core/types.h"

namespace song {

/// A dense row-major float matrix: `num()` rows of `dim()` usable floats,
/// with an internal padded stride.
class Dataset {
 public:
  Dataset() = default;

  /// Creates a zero-filled dataset with `num` rows of `dim` floats.
  Dataset(size_t num, size_t dim);

  /// Builds from a flat row-major vector (size must be num * dim).
  static StatusOr<Dataset> FromFlat(const std::vector<float>& flat, size_t num,
                                    size_t dim);

  size_t num() const { return num_; }
  size_t dim() const { return dim_; }
  size_t stride() const { return stride_; }
  bool empty() const { return num_ == 0; }

  /// Bytes of *payload* data (num * dim * 4), matching how the paper quotes
  /// dataset sizes; `AllocatedBytes` includes padding.
  size_t PayloadBytes() const { return num_ * dim_ * sizeof(float); }
  size_t AllocatedBytes() const { return data_.size_bytes(); }

  float* Row(idx_t i) {
    SONG_DCHECK(i < num_);
    return data_.data() + static_cast<size_t>(i) * stride_;
  }
  const float* Row(idx_t i) const {
    SONG_DCHECK(i < num_);
    return data_.data() + static_cast<size_t>(i) * stride_;
  }

  /// Copies a row in (source must have dim() floats) and re-zeroes the
  /// padded tail, preserving the zero-pad invariant.
  void SetRow(idx_t i, const float* values);

  /// Hints row `i` into cache (used by the search core to hide the gather
  /// latency of Stage 2 bulk-distance rows one hop ahead). No-op semantics:
  /// safe to call for any valid row.
  void PrefetchRow(idx_t i) const {
    const char* p = reinterpret_cast<const char*>(Row(i));
    const size_t bytes = dim_ * sizeof(float);
    for (size_t off = 0; off < bytes; off += 64) __builtin_prefetch(p + off, 0, 3);
  }

  /// The padded row stride (in floats) used for a given dim: next multiple
  /// of 16. Public so kernels and tests can reason about row layout.
  static size_t PaddedStride(size_t dim) { return (dim + 15) / 16 * 16; }

  /// L2-normalizes every row in place (used for cosine / inner-product
  /// workloads). Zero rows are left unchanged.
  void NormalizeRows();

  /// Copy with the row count grown to `new_num` (>= current); existing rows
  /// are preserved bit-for-bit, new rows are zero. Same dim/stride. The
  /// copy-on-write step of MutableIndex::Insert.
  Dataset CopyGrown(size_t new_num) const;

  /// Serialization: magic "SNGD", u32 dim, u64 num, then num*dim floats
  /// (unpadded).
  Status Save(const std::string& path) const;
  static StatusOr<Dataset> Load(const std::string& path);

 private:
  size_t num_ = 0;
  size_t dim_ = 0;
  size_t stride_ = 0;
  AlignedBuffer<float> data_;
};

}  // namespace song

#endif  // SONG_CORE_DATASET_H_
