// Copyright 2026 The SONG-Repro Authors.
//
// Runtime SIMD dispatch for the bulk-distance stage. The paper concentrates
// nearly all arithmetic of the search pipeline in Stage 2 (bulk distance
// computation, §VI); on the CPU host that stage should saturate the vector
// units. Kernels are compiled per-tier into separate translation units
// (core/distance_simd_*.cc, each built with its own -m flags) and selected
// once at startup from cpuid, so a single binary runs the widest path the
// machine supports and falls back to the portable scalar kernels anywhere
// else.
//
// The dispatched tier can be forced down with the environment variable
//   SONG_SIMD=scalar|avx2|avx512
// (it can never be raised above what the CPU supports). The sanitizer CI
// legs pin SONG_SIMD=scalar so instrumented runs exercise the portable path.

#ifndef SONG_CORE_SIMD_H_
#define SONG_CORE_SIMD_H_

namespace song {

/// Widest-first would be error prone; tiers are ordered narrow -> wide so
/// clamping is a simple min().
enum class SimdTier {
  kScalar = 0,  ///< 4-way unrolled portable C++
  kAvx2 = 1,    ///< 8-lane AVX2 + FMA
  kAvx512 = 2,  ///< 16-lane AVX-512 F/BW/DQ/VL
};

/// "scalar" / "avx2" / "avx512".
const char* SimdTierName(SimdTier tier);

/// Widest tier the executing CPU supports (cpuid), independent of what was
/// compiled in or requested.
SimdTier CpuSimdTier();

/// True when the kernels for `tier` were compiled into this binary (the
/// toolchain accepted the -m flags).
bool SimdTierCompiled(SimdTier tier);

/// The tier every distance kernel actually dispatches to:
/// min(cpu support, compiled-in, SONG_SIMD override). Resolved once and
/// cached; reading it is free on the hot path.
SimdTier ActiveSimdTier();

}  // namespace song

#endif  // SONG_CORE_SIMD_H_
