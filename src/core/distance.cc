#include "core/distance.h"

#include <cmath>

namespace song {

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kL2:
      return "l2";
    case Metric::kInnerProduct:
      return "ip";
    case Metric::kCosine:
      return "cosine";
  }
  return "unknown";
}

float L2Sqr(const float* a, const float* b, size_t dim) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  size_t d = 0;
  for (; d + 4 <= dim; d += 4) {
    const float d0 = a[d] - b[d];
    const float d1 = a[d + 1] - b[d + 1];
    const float d2 = a[d + 2] - b[d + 2];
    const float d3 = a[d + 3] - b[d + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; d < dim; ++d) {
    const float diff = a[d] - b[d];
    s0 += diff * diff;
  }
  return (s0 + s1) + (s2 + s3);
}

namespace {

float Dot(const float* a, const float* b, size_t dim) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  size_t d = 0;
  for (; d + 4 <= dim; d += 4) {
    s0 += a[d] * b[d];
    s1 += a[d + 1] * b[d + 1];
    s2 += a[d + 2] * b[d + 2];
    s3 += a[d + 3] * b[d + 3];
  }
  for (; d < dim; ++d) s0 += a[d] * b[d];
  return (s0 + s1) + (s2 + s3);
}

float NormSqr(const float* a, size_t dim) { return Dot(a, a, dim); }

}  // namespace

float InnerProduct(const float* a, const float* b, size_t dim) {
  return -Dot(a, b, dim);
}

float CosineDistance(const float* a, const float* b, size_t dim) {
  const float dot = Dot(a, b, dim);
  const float na = NormSqr(a, dim);
  const float nb = NormSqr(b, dim);
  if (na <= 0.0f || nb <= 0.0f) return 1.0f;
  return 1.0f - dot / std::sqrt(na * nb);
}

DistanceFunc GetDistanceFunc(Metric metric) {
  switch (metric) {
    case Metric::kL2:
      return &L2Sqr;
    case Metric::kInnerProduct:
      return &InnerProduct;
    case Metric::kCosine:
      return &CosineDistance;
  }
  return &L2Sqr;
}

}  // namespace song
