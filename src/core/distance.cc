#include "core/distance.h"

#include <cmath>

#include "core/distance_kernels.h"

namespace song {

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kL2:
      return "l2";
    case Metric::kInnerProduct:
      return "ip";
    case Metric::kCosine:
      return "cosine";
  }
  return "unknown";
}

namespace internal {
namespace {

// --- Portable scalar tier: 4-way unrolled, vectorizable under -O2. ---

float ScalarL2Sqr(const float* a, const float* b, size_t dim) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  size_t d = 0;
  for (; d + 4 <= dim; d += 4) {
    const float d0 = a[d] - b[d];
    const float d1 = a[d + 1] - b[d + 1];
    const float d2 = a[d + 2] - b[d + 2];
    const float d3 = a[d + 3] - b[d + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; d < dim; ++d) {
    const float diff = a[d] - b[d];
    s0 += diff * diff;
  }
  return (s0 + s1) + (s2 + s3);
}

float ScalarDot(const float* a, const float* b, size_t dim) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  size_t d = 0;
  for (; d + 4 <= dim; d += 4) {
    s0 += a[d] * b[d];
    s1 += a[d + 1] * b[d + 1];
    s2 += a[d + 2] * b[d + 2];
    s3 += a[d + 3] * b[d + 3];
  }
  for (; d < dim; ++d) s0 += a[d] * b[d];
  return (s0 + s1) + (s2 + s3);
}

float ScalarIp(const float* a, const float* b, size_t dim) {
  return -ScalarDot(a, b, dim);
}

float ScalarCosine(const float* a, const float* b, size_t dim) {
  const float dot = ScalarDot(a, b, dim);
  const float na = ScalarDot(a, a, dim);
  const float nb = ScalarDot(b, b, dim);
  if (na <= 0.0f || nb <= 0.0f) return 1.0f;
  return 1.0f - dot / std::sqrt(na * nb);
}

template <PairKernel kKernel>
void ScalarGather(const float* q, const float* base, size_t stride, size_t dim,
                  const idx_t* ids, size_t n, float* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = kKernel(q, base + static_cast<size_t>(ids[i]) * stride, dim);
  }
}

template <PairKernel kKernel>
void ScalarRange(const float* q, const float* base, size_t stride, size_t dim,
                 idx_t first, size_t n, float* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] =
        kKernel(q, base + (static_cast<size_t>(first) + i) * stride, dim);
  }
}

// ADC accumulation, 4-way unrolled over subquantizers (the SIMD tiers gather
// 8/16 table rows per step; this order is the cross-tier oracle reference).
void ScalarAdcGather(const float* table, const uint8_t* codes, size_t m,
                     const idx_t* ids, size_t n, float* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* code = codes + static_cast<size_t>(ids[i]) * m;
    float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
    size_t s = 0;
    for (; s + 4 <= m; s += 4) {
      s0 += table[(s + 0) * 256 + code[s + 0]];
      s1 += table[(s + 1) * 256 + code[s + 1]];
      s2 += table[(s + 2) * 256 + code[s + 2]];
      s3 += table[(s + 3) * 256 + code[s + 3]];
    }
    for (; s < m; ++s) s0 += table[s * 256 + code[s]];
    out[i] = (s0 + s1) + (s2 + s3);
  }
}

}  // namespace

const DistanceKernelTable& ScalarKernelTable() {
  static const DistanceKernelTable table = [] {
    DistanceKernelTable t;
    t.compiled = true;
    t.l2 = &ScalarL2Sqr;
    t.dot = &ScalarDot;
    t.ip = &ScalarIp;
    t.cosine = &ScalarCosine;
    t.l2_gather = &ScalarGather<&ScalarL2Sqr>;
    t.dot_gather = &ScalarGather<&ScalarDot>;
    t.l2_range = &ScalarRange<&ScalarL2Sqr>;
    t.dot_range = &ScalarRange<&ScalarDot>;
    t.adc_gather = &ScalarAdcGather;
    return t;
  }();
  return table;
}

const DistanceKernelTable& KernelTableForTier(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return ScalarKernelTable();
    case SimdTier::kAvx2:
      return Avx2KernelTable();
    case SimdTier::kAvx512:
      return Avx512KernelTable();
  }
  return ScalarKernelTable();
}

namespace {

const DistanceKernelTable& ActiveKernelTable() {
  static const DistanceKernelTable& table =
      KernelTableForTier(ActiveSimdTier());
  return table;
}

}  // namespace
}  // namespace internal

float L2Sqr(const float* a, const float* b, size_t dim) {
  return internal::ActiveKernelTable().l2(a, b, dim);
}

float InnerProduct(const float* a, const float* b, size_t dim) {
  return internal::ActiveKernelTable().ip(a, b, dim);
}

float CosineDistance(const float* a, const float* b, size_t dim) {
  return internal::ActiveKernelTable().cosine(a, b, dim);
}

DistanceFunc GetDistanceFuncForTier(Metric metric, SimdTier tier) {
  const internal::DistanceKernelTable& table =
      internal::KernelTableForTier(tier);
  switch (metric) {
    case Metric::kL2:
      return table.l2;
    case Metric::kInnerProduct:
      return table.ip;
    case Metric::kCosine:
      return table.cosine;
  }
  return table.l2;
}

DistanceFunc GetDistanceFunc(Metric metric) {
  return GetDistanceFuncForTier(metric, ActiveSimdTier());
}

BatchDistance::BatchDistance(Metric metric, const Dataset* data)
    : metric_(metric), data_(data) {
  SONG_CHECK(data != nullptr);
  if (metric_ == Metric::kCosine) {
    const internal::DistanceKernelTable& table = internal::ActiveKernelTable();
    norms_sqr_.resize(data_->num());
    for (size_t i = 0; i < data_->num(); ++i) {
      const float* row = data_->Row(static_cast<idx_t>(i));
      norms_sqr_[i] = table.dot(row, row, data_->dim());
    }
  }
}

float BatchDistance::QueryNormSqr(const float* query) const {
  if (metric_ != Metric::kCosine) return 0.0f;
  return internal::ActiveKernelTable().dot(query, query, data_->dim());
}

float BatchDistance::Compute(const float* query, float query_norm_sqr,
                             idx_t id) const {
  float out;
  ComputeBatch(query, query_norm_sqr, &id, 1, &out);
  return out;
}

void BatchDistance::ComputeBatch(const float* query, float query_norm_sqr,
                                 const idx_t* ids, size_t n,
                                 float* out) const {
  if (n == 0) return;
  const internal::DistanceKernelTable& table = internal::ActiveKernelTable();
  const float* base = data_->Row(0);
  const size_t stride = data_->stride();
  const size_t dim = data_->dim();
  switch (metric_) {
    case Metric::kL2:
      table.l2_gather(query, base, stride, dim, ids, n, out);
      return;
    case Metric::kInnerProduct:
      table.dot_gather(query, base, stride, dim, ids, n, out);
      for (size_t i = 0; i < n; ++i) out[i] = -out[i];
      return;
    case Metric::kCosine:
      table.dot_gather(query, base, stride, dim, ids, n, out);
      for (size_t i = 0; i < n; ++i) {
        const float nb = norms_sqr_[ids[i]];
        out[i] = (query_norm_sqr <= 0.0f || nb <= 0.0f)
                     ? 1.0f
                     : 1.0f - out[i] / std::sqrt(query_norm_sqr * nb);
      }
      return;
  }
}

void BatchDistance::ComputeRange(const float* query, float query_norm_sqr,
                                 idx_t first, size_t n, float* out) const {
  if (n == 0) return;
  const internal::DistanceKernelTable& table = internal::ActiveKernelTable();
  const float* base = data_->Row(0);
  const size_t stride = data_->stride();
  const size_t dim = data_->dim();
  switch (metric_) {
    case Metric::kL2:
      table.l2_range(query, base, stride, dim, first, n, out);
      return;
    case Metric::kInnerProduct:
      table.dot_range(query, base, stride, dim, first, n, out);
      for (size_t i = 0; i < n; ++i) out[i] = -out[i];
      return;
    case Metric::kCosine:
      table.dot_range(query, base, stride, dim, first, n, out);
      for (size_t i = 0; i < n; ++i) {
        const float nb = norms_sqr_[static_cast<size_t>(first) + i];
        out[i] = (query_norm_sqr <= 0.0f || nb <= 0.0f)
                     ? 1.0f
                     : 1.0f - out[i] / std::sqrt(query_norm_sqr * nb);
      }
      return;
  }
}

}  // namespace song
