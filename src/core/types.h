// Copyright 2026 The SONG-Repro Authors.
//
// Fundamental value types shared across the library.

#ifndef SONG_CORE_TYPES_H_
#define SONG_CORE_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace song {

/// Index of a data point / graph vertex. 32 bits: the paper targets datasets
/// up to a few tens of millions of points (MNIST8m), which fits comfortably.
using idx_t = uint32_t;

/// Sentinel used to pad fixed-degree adjacency rows and to mark empty hash
/// slots.
inline constexpr idx_t kInvalidIdx = std::numeric_limits<idx_t>::max();

/// A (distance, vertex) pair. Orderings compare by distance first so the pair
/// can live directly inside heaps; ties break on id for determinism.
struct Neighbor {
  float dist = 0.0f;
  idx_t id = kInvalidIdx;

  Neighbor() = default;
  Neighbor(float d, idx_t i) : dist(d), id(i) {}

  friend bool operator<(const Neighbor& a, const Neighbor& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.id < b.id;
  }
  friend bool operator>(const Neighbor& a, const Neighbor& b) { return b < a; }
  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.dist == b.dist && a.id == b.id;
  }
};

}  // namespace song

#endif  // SONG_CORE_TYPES_H_
