#include "core/thread_pool.h"

#include <algorithm>

namespace song {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  task_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  done_cv_.Wait(mu_, [this]() SONG_REQUIRES(mu_) { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      task_cv_.Wait(mu_, [this]() SONG_REQUIRES(mu_) {
        return stop_ || !tasks_.empty();
      });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(mu_);
      if (--in_flight_ == 0) done_cv_.NotifyAll();
    }
  }
}

void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t, size_t)>& fn, size_t chunk) {
  if (n == 0) return;
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, n);
  if (num_threads == 1) {
    for (size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }
  std::atomic<size_t> next{0};
  // Chunked dynamic scheduling keeps per-item overhead low for large n.
  if (chunk == 0) chunk = std::max<size_t>(1, n / (num_threads * 16));
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      for (;;) {
        const size_t begin = next.fetch_add(chunk);
        if (begin >= n) return;
        const size_t end = std::min(n, begin + chunk);
        for (size_t i = begin; i < end; ++i) fn(i, t);
      }
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace song
