// AVX-512 distance kernels (16 float lanes). Built with
// -mavx512f/bw/dq/vl -mfma (see src/CMakeLists.txt); without those flags
// this TU degrades to a scalar-aliased table with compiled=false.
//
// Accumulation layout (the batch == single bit-identity contract of
// distance_kernels.h): two 16-lane accumulators over 32-float blocks, one
// trailing 16-float block into the first accumulator, then a scalar float
// tail — identical per row in the pair, gather and range kernels. Tails are
// scalar rather than masked so no kernel ever touches bytes past `dim`.

#include "core/distance_kernels.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512DQ__) && \
    defined(__AVX512VL__)

#include <immintrin.h>

#include <cmath>

namespace song::internal {
namespace {

inline void PrefetchFloats(const float* p, size_t count) {
  const char* c = reinterpret_cast<const char*>(p);
  const size_t bytes = count * sizeof(float);
  for (size_t off = 0; off < bytes; off += 64) _mm_prefetch(c + off, _MM_HINT_T0);
}

struct L2Op {
  static inline __m512 Acc(__m512 acc, __m512 q, __m512 r) {
    const __m512 d = _mm512_sub_ps(q, r);
    return _mm512_fmadd_ps(d, d, acc);
  }
  static inline float Scalar(float q, float r) {
    const float d = q - r;
    return d * d;
  }
};

struct DotOp {
  static inline __m512 Acc(__m512 acc, __m512 q, __m512 r) {
    return _mm512_fmadd_ps(q, r, acc);
  }
  static inline float Scalar(float q, float r) { return q * r; }
};

template <typename Op>
float Pair(const float* a, const float* b, size_t dim) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t d = 0;
  for (; d + 32 <= dim; d += 32) {
    acc0 = Op::Acc(acc0, _mm512_loadu_ps(a + d), _mm512_loadu_ps(b + d));
    acc1 =
        Op::Acc(acc1, _mm512_loadu_ps(a + d + 16), _mm512_loadu_ps(b + d + 16));
  }
  if (d + 16 <= dim) {
    acc0 = Op::Acc(acc0, _mm512_loadu_ps(a + d), _mm512_loadu_ps(b + d));
    d += 16;
  }
  float tail = 0.0f;
  for (; d < dim; ++d) tail += Op::Scalar(a[d], b[d]);
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1)) + tail;
}

/// Fused one-query-vs-many core: four rows share the query registers per
/// block; the next row quad is prefetched while this one reduces.
template <typename Op, typename RowFn>
void Many(const float* q, size_t dim, size_t n, float* out, const RowFn& row) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (size_t p = i + 4; p < i + 8 && p < n; ++p) PrefetchFloats(row(p), dim);
    const float* r0 = row(i);
    const float* r1 = row(i + 1);
    const float* r2 = row(i + 2);
    const float* r3 = row(i + 3);
    __m512 a00 = _mm512_setzero_ps(), a01 = _mm512_setzero_ps();
    __m512 a10 = _mm512_setzero_ps(), a11 = _mm512_setzero_ps();
    __m512 a20 = _mm512_setzero_ps(), a21 = _mm512_setzero_ps();
    __m512 a30 = _mm512_setzero_ps(), a31 = _mm512_setzero_ps();
    size_t d = 0;
    for (; d + 32 <= dim; d += 32) {
      const __m512 q0 = _mm512_loadu_ps(q + d);
      const __m512 q1 = _mm512_loadu_ps(q + d + 16);
      a00 = Op::Acc(a00, q0, _mm512_loadu_ps(r0 + d));
      a01 = Op::Acc(a01, q1, _mm512_loadu_ps(r0 + d + 16));
      a10 = Op::Acc(a10, q0, _mm512_loadu_ps(r1 + d));
      a11 = Op::Acc(a11, q1, _mm512_loadu_ps(r1 + d + 16));
      a20 = Op::Acc(a20, q0, _mm512_loadu_ps(r2 + d));
      a21 = Op::Acc(a21, q1, _mm512_loadu_ps(r2 + d + 16));
      a30 = Op::Acc(a30, q0, _mm512_loadu_ps(r3 + d));
      a31 = Op::Acc(a31, q1, _mm512_loadu_ps(r3 + d + 16));
    }
    if (d + 16 <= dim) {
      const __m512 q0 = _mm512_loadu_ps(q + d);
      a00 = Op::Acc(a00, q0, _mm512_loadu_ps(r0 + d));
      a10 = Op::Acc(a10, q0, _mm512_loadu_ps(r1 + d));
      a20 = Op::Acc(a20, q0, _mm512_loadu_ps(r2 + d));
      a30 = Op::Acc(a30, q0, _mm512_loadu_ps(r3 + d));
      d += 16;
    }
    float t0 = 0.0f, t1 = 0.0f, t2 = 0.0f, t3 = 0.0f;
    for (; d < dim; ++d) {
      const float qd = q[d];
      t0 += Op::Scalar(qd, r0[d]);
      t1 += Op::Scalar(qd, r1[d]);
      t2 += Op::Scalar(qd, r2[d]);
      t3 += Op::Scalar(qd, r3[d]);
    }
    out[i] = _mm512_reduce_add_ps(_mm512_add_ps(a00, a01)) + t0;
    out[i + 1] = _mm512_reduce_add_ps(_mm512_add_ps(a10, a11)) + t1;
    out[i + 2] = _mm512_reduce_add_ps(_mm512_add_ps(a20, a21)) + t2;
    out[i + 3] = _mm512_reduce_add_ps(_mm512_add_ps(a30, a31)) + t3;
  }
  for (; i < n; ++i) out[i] = Pair<Op>(q, row(i), dim);
}

float L2SqrAvx512(const float* a, const float* b, size_t dim) {
  return Pair<L2Op>(a, b, dim);
}

float DotAvx512(const float* a, const float* b, size_t dim) {
  return Pair<DotOp>(a, b, dim);
}

float IpAvx512(const float* a, const float* b, size_t dim) {
  return -DotAvx512(a, b, dim);
}

float CosineAvx512(const float* a, const float* b, size_t dim) {
  const float dot = DotAvx512(a, b, dim);
  const float na = DotAvx512(a, a, dim);
  const float nb = DotAvx512(b, b, dim);
  if (na <= 0.0f || nb <= 0.0f) return 1.0f;
  return 1.0f - dot / std::sqrt(na * nb);
}

template <typename Op>
void GatherImpl(const float* q, const float* base, size_t stride, size_t dim,
                const idx_t* ids, size_t n, float* out) {
  Many<Op>(q, dim, n, out,
           [&](size_t i) { return base + static_cast<size_t>(ids[i]) * stride; });
}

template <typename Op>
void RangeImpl(const float* q, const float* base, size_t stride, size_t dim,
               idx_t first, size_t n, float* out) {
  Many<Op>(q, dim, n, out, [&](size_t i) {
    return base + (static_cast<size_t>(first) + i) * stride;
  });
}

void L2GatherAvx512(const float* q, const float* base, size_t stride,
                    size_t dim, const idx_t* ids, size_t n, float* out) {
  GatherImpl<L2Op>(q, base, stride, dim, ids, n, out);
}

void DotGatherAvx512(const float* q, const float* base, size_t stride,
                     size_t dim, const idx_t* ids, size_t n, float* out) {
  GatherImpl<DotOp>(q, base, stride, dim, ids, n, out);
}

void L2RangeAvx512(const float* q, const float* base, size_t stride,
                   size_t dim, idx_t first, size_t n, float* out) {
  RangeImpl<L2Op>(q, base, stride, dim, first, n, out);
}

void DotRangeAvx512(const float* q, const float* base, size_t stride,
                    size_t dim, idx_t first, size_t n, float* out) {
  RangeImpl<DotOp>(q, base, stride, dim, first, n, out);
}

/// ADC LUT accumulation, 16 subquantizers per step (one vgatherdps over the
/// 16 selected table entries), an 8-wide AVX2-style middle block for m % 16,
/// then a scalar tail. Per-row order is fixed: 16-blocks into the 512-bit
/// accumulator, 8-block into the 256-bit one, tail — batch == single within
/// this tier.
void AdcGatherAvx512(const float* table, const uint8_t* codes, size_t m,
                     const idx_t* ids, size_t n, float* out) {
  const __m512i row_offsets16 = _mm512_setr_epi32(
      0, 256, 512, 768, 1024, 1280, 1536, 1792, 2048, 2304, 2560, 2816, 3072,
      3328, 3584, 3840);
  const __m256i row_offsets8 =
      _mm256_setr_epi32(0, 256, 512, 768, 1024, 1280, 1536, 1792);
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* code = codes + static_cast<size_t>(ids[i]) * m;
    if (i + 1 < n) {
      _mm_prefetch(reinterpret_cast<const char*>(
                       codes + static_cast<size_t>(ids[i + 1]) * m),
                   _MM_HINT_T0);
    }
    __m512 acc = _mm512_setzero_ps();
    size_t s = 0;
    for (; s + 16 <= m; s += 16) {
      const __m128i bytes =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(code + s));
      const __m512i idx =
          _mm512_add_epi32(_mm512_cvtepu8_epi32(bytes), row_offsets16);
      acc = _mm512_add_ps(acc, _mm512_i32gather_ps(idx, table + s * 256, 4));
    }
    __m256 acc8 = _mm256_setzero_ps();
    if (s + 8 <= m) {
      const __m128i bytes =
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(code + s));
      const __m256i idx =
          _mm256_add_epi32(_mm256_cvtepu8_epi32(bytes), row_offsets8);
      acc8 = _mm256_i32gather_ps(table + s * 256, idx, 4);
      s += 8;
    }
    float tail = 0.0f;
    for (; s < m; ++s) tail += table[s * 256 + code[s]];
    const __m128 lo = _mm256_castps256_ps128(acc8);
    const __m128 hi = _mm256_extractf128_ps(acc8, 1);
    __m128 h = _mm_add_ps(lo, hi);
    h = _mm_add_ps(h, _mm_movehl_ps(h, h));
    h = _mm_add_ss(h, _mm_movehdup_ps(h));
    out[i] = _mm512_reduce_add_ps(acc) + _mm_cvtss_f32(h) + tail;
  }
}

}  // namespace

const DistanceKernelTable& Avx512KernelTable() {
  static const DistanceKernelTable table = [] {
    DistanceKernelTable t;
    t.compiled = true;
    t.l2 = &L2SqrAvx512;
    t.dot = &DotAvx512;
    t.ip = &IpAvx512;
    t.cosine = &CosineAvx512;
    t.l2_gather = &L2GatherAvx512;
    t.dot_gather = &DotGatherAvx512;
    t.l2_range = &L2RangeAvx512;
    t.dot_range = &DotRangeAvx512;
    t.adc_gather = &AdcGatherAvx512;
    return t;
  }();
  return table;
}

}  // namespace song::internal

#else  // !AVX512

namespace song::internal {

const DistanceKernelTable& Avx512KernelTable() {
  static const DistanceKernelTable table = [] {
    DistanceKernelTable t = ScalarKernelTable();
    t.compiled = false;
    return t;
  }();
  return table;
}

}  // namespace song::internal

#endif
