// AVX2+FMA distance kernels (8 float lanes). Built with -mavx2 -mfma (see
// src/CMakeLists.txt); when the toolchain lacks those flags this TU
// degrades to a scalar-aliased table with compiled=false and the dispatcher
// never selects the tier.
//
// Accumulation layout (the contract distance_kernels.h requires for
// batch == single bit-identity): two 8-lane accumulators over 16-float
// blocks, one trailing 8-float block into the first accumulator, then a
// scalar float tail — identical per row in the pair, gather and range
// kernels.

#include "core/distance_kernels.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>

namespace song::internal {
namespace {

inline void PrefetchFloats(const float* p, size_t count) {
  const char* c = reinterpret_cast<const char*>(p);
  const size_t bytes = count * sizeof(float);
  for (size_t off = 0; off < bytes; off += 64) _mm_prefetch(c + off, _MM_HINT_T0);
}

inline float Hsum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_movehdup_ps(s));
  return _mm_cvtss_f32(s);
}

struct L2Op {
  static inline __m256 Acc(__m256 acc, __m256 q, __m256 r) {
    const __m256 d = _mm256_sub_ps(q, r);
    return _mm256_fmadd_ps(d, d, acc);
  }
  static inline float Scalar(float q, float r) {
    const float d = q - r;
    return d * d;
  }
};

struct DotOp {
  static inline __m256 Acc(__m256 acc, __m256 q, __m256 r) {
    return _mm256_fmadd_ps(q, r, acc);
  }
  static inline float Scalar(float q, float r) { return q * r; }
};

template <typename Op>
float Pair(const float* a, const float* b, size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t d = 0;
  for (; d + 16 <= dim; d += 16) {
    acc0 = Op::Acc(acc0, _mm256_loadu_ps(a + d), _mm256_loadu_ps(b + d));
    acc1 = Op::Acc(acc1, _mm256_loadu_ps(a + d + 8), _mm256_loadu_ps(b + d + 8));
  }
  if (d + 8 <= dim) {
    acc0 = Op::Acc(acc0, _mm256_loadu_ps(a + d), _mm256_loadu_ps(b + d));
    d += 8;
  }
  float tail = 0.0f;
  for (; d < dim; ++d) tail += Op::Scalar(a[d], b[d]);
  return Hsum(_mm256_add_ps(acc0, acc1)) + tail;
}

/// Fused one-query-vs-many core: four rows share the query registers per
/// block, and the next row quad is prefetched while this one reduces.
/// `row(i)` yields the i-th row pointer (gather or contiguous).
template <typename Op, typename RowFn>
void Many(const float* q, size_t dim, size_t n, float* out, const RowFn& row) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (size_t p = i + 4; p < i + 8 && p < n; ++p) PrefetchFloats(row(p), dim);
    const float* r0 = row(i);
    const float* r1 = row(i + 1);
    const float* r2 = row(i + 2);
    const float* r3 = row(i + 3);
    __m256 a00 = _mm256_setzero_ps(), a01 = _mm256_setzero_ps();
    __m256 a10 = _mm256_setzero_ps(), a11 = _mm256_setzero_ps();
    __m256 a20 = _mm256_setzero_ps(), a21 = _mm256_setzero_ps();
    __m256 a30 = _mm256_setzero_ps(), a31 = _mm256_setzero_ps();
    size_t d = 0;
    for (; d + 16 <= dim; d += 16) {
      const __m256 q0 = _mm256_loadu_ps(q + d);
      const __m256 q1 = _mm256_loadu_ps(q + d + 8);
      a00 = Op::Acc(a00, q0, _mm256_loadu_ps(r0 + d));
      a01 = Op::Acc(a01, q1, _mm256_loadu_ps(r0 + d + 8));
      a10 = Op::Acc(a10, q0, _mm256_loadu_ps(r1 + d));
      a11 = Op::Acc(a11, q1, _mm256_loadu_ps(r1 + d + 8));
      a20 = Op::Acc(a20, q0, _mm256_loadu_ps(r2 + d));
      a21 = Op::Acc(a21, q1, _mm256_loadu_ps(r2 + d + 8));
      a30 = Op::Acc(a30, q0, _mm256_loadu_ps(r3 + d));
      a31 = Op::Acc(a31, q1, _mm256_loadu_ps(r3 + d + 8));
    }
    if (d + 8 <= dim) {
      const __m256 q0 = _mm256_loadu_ps(q + d);
      a00 = Op::Acc(a00, q0, _mm256_loadu_ps(r0 + d));
      a10 = Op::Acc(a10, q0, _mm256_loadu_ps(r1 + d));
      a20 = Op::Acc(a20, q0, _mm256_loadu_ps(r2 + d));
      a30 = Op::Acc(a30, q0, _mm256_loadu_ps(r3 + d));
      d += 8;
    }
    float t0 = 0.0f, t1 = 0.0f, t2 = 0.0f, t3 = 0.0f;
    for (; d < dim; ++d) {
      const float qd = q[d];
      t0 += Op::Scalar(qd, r0[d]);
      t1 += Op::Scalar(qd, r1[d]);
      t2 += Op::Scalar(qd, r2[d]);
      t3 += Op::Scalar(qd, r3[d]);
    }
    out[i] = Hsum(_mm256_add_ps(a00, a01)) + t0;
    out[i + 1] = Hsum(_mm256_add_ps(a10, a11)) + t1;
    out[i + 2] = Hsum(_mm256_add_ps(a20, a21)) + t2;
    out[i + 3] = Hsum(_mm256_add_ps(a30, a31)) + t3;
  }
  for (; i < n; ++i) out[i] = Pair<Op>(q, row(i), dim);
}

float L2SqrAvx2(const float* a, const float* b, size_t dim) {
  return Pair<L2Op>(a, b, dim);
}

float DotAvx2(const float* a, const float* b, size_t dim) {
  return Pair<DotOp>(a, b, dim);
}

float IpAvx2(const float* a, const float* b, size_t dim) {
  return -DotAvx2(a, b, dim);
}

float CosineAvx2(const float* a, const float* b, size_t dim) {
  const float dot = DotAvx2(a, b, dim);
  const float na = DotAvx2(a, a, dim);
  const float nb = DotAvx2(b, b, dim);
  if (na <= 0.0f || nb <= 0.0f) return 1.0f;
  return 1.0f - dot / std::sqrt(na * nb);
}

template <typename Op>
void GatherImpl(const float* q, const float* base, size_t stride, size_t dim,
                const idx_t* ids, size_t n, float* out) {
  Many<Op>(q, dim, n, out,
           [&](size_t i) { return base + static_cast<size_t>(ids[i]) * stride; });
}

template <typename Op>
void RangeImpl(const float* q, const float* base, size_t stride, size_t dim,
               idx_t first, size_t n, float* out) {
  Many<Op>(q, dim, n, out, [&](size_t i) {
    return base + (static_cast<size_t>(first) + i) * stride;
  });
}

void L2GatherAvx2(const float* q, const float* base, size_t stride, size_t dim,
                  const idx_t* ids, size_t n, float* out) {
  GatherImpl<L2Op>(q, base, stride, dim, ids, n, out);
}

void DotGatherAvx2(const float* q, const float* base, size_t stride,
                   size_t dim, const idx_t* ids, size_t n, float* out) {
  GatherImpl<DotOp>(q, base, stride, dim, ids, n, out);
}

void L2RangeAvx2(const float* q, const float* base, size_t stride, size_t dim,
                 idx_t first, size_t n, float* out) {
  RangeImpl<L2Op>(q, base, stride, dim, first, n, out);
}

void DotRangeAvx2(const float* q, const float* base, size_t stride,
                  size_t dim, idx_t first, size_t n, float* out) {
  RangeImpl<DotOp>(q, base, stride, dim, first, n, out);
}

/// ADC LUT accumulation, 8 subquantizers per step: the 8 code bytes widen to
/// epi32 lane indices, each offset by its subquantizer's 256-float table row,
/// and one vgatherdps pulls the 8 selected entries. Per-row order: 8-lane
/// blocks into one accumulator, scalar tail — fixed, so batch == single
/// within this tier.
void AdcGatherAvx2(const float* table, const uint8_t* codes, size_t m,
                   const idx_t* ids, size_t n, float* out) {
  const __m256i row_offsets =
      _mm256_setr_epi32(0, 256, 512, 768, 1024, 1280, 1536, 1792);
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* code = codes + static_cast<size_t>(ids[i]) * m;
    if (i + 1 < n) {
      _mm_prefetch(reinterpret_cast<const char*>(
                       codes + static_cast<size_t>(ids[i + 1]) * m),
                   _MM_HINT_T0);
    }
    __m256 acc = _mm256_setzero_ps();
    size_t s = 0;
    for (; s + 8 <= m; s += 8) {
      const __m128i bytes =
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(code + s));
      const __m256i idx =
          _mm256_add_epi32(_mm256_cvtepu8_epi32(bytes), row_offsets);
      acc = _mm256_add_ps(acc, _mm256_i32gather_ps(table + s * 256, idx, 4));
    }
    float tail = 0.0f;
    for (; s < m; ++s) tail += table[s * 256 + code[s]];
    out[i] = Hsum(acc) + tail;
  }
}

}  // namespace

const DistanceKernelTable& Avx2KernelTable() {
  static const DistanceKernelTable table = [] {
    DistanceKernelTable t;
    t.compiled = true;
    t.l2 = &L2SqrAvx2;
    t.dot = &DotAvx2;
    t.ip = &IpAvx2;
    t.cosine = &CosineAvx2;
    t.l2_gather = &L2GatherAvx2;
    t.dot_gather = &DotGatherAvx2;
    t.l2_range = &L2RangeAvx2;
    t.dot_range = &DotRangeAvx2;
    t.adc_gather = &AdcGatherAvx2;
    return t;
  }();
  return table;
}

}  // namespace song::internal

#else  // !(__AVX2__ && __FMA__)

namespace song::internal {

const DistanceKernelTable& Avx2KernelTable() {
  static const DistanceKernelTable table = [] {
    DistanceKernelTable t = ScalarKernelTable();
    t.compiled = false;
    return t;
  }();
  return table;
}

}  // namespace song::internal

#endif
