// Copyright 2026 The SONG-Repro Authors.
//
// The repo's only sanctioned synchronization layer: Clang Thread Safety
// Analysis (TSA) annotation macros plus annotated Mutex / SharedMutex /
// CondVar wrappers and their RAII guards. Every locking protocol in src/ is
// declared through these types so the compiler proves, on every Clang
// build, that each guarded field is only touched with its lock held
// (-Werror=thread-safety in the static-analysis CI leg). On GCC and other
// compilers every macro expands to nothing and the wrappers compile down to
// the underlying std primitives (pinned by tests/core/sync_test.cc).
//
// Raw std::mutex / std::shared_mutex / std::lock_guard / std::unique_lock
// are forbidden outside this header — tools/lint/song_lint.py rule
// `raw-sync` enforces it — because a naked primitive is invisible to the
// analysis: fields it guards can be read unlocked and no compile ever
// complains. Idiom:
//
//   class Server {
//    public:
//     void Bump() SONG_EXCLUDES(mu_) {
//       MutexLock lock(mu_);
//       ++count_;
//     }
//    private:
//     Mutex mu_;
//     size_t count_ SONG_GUARDED_BY(mu_) = 0;
//   };
//
// How to read a thread-safety error and the full annotation conventions:
// docs/static_analysis.md.

#ifndef SONG_CORE_SYNC_H_
#define SONG_CORE_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

// --- Annotation macros (no-ops outside Clang). -----------------------------
//
// The attribute spellings follow the Clang documentation
// (clang.llvm.org/docs/ThreadSafetyAnalysis.html); the SONG_ prefix keeps
// them greppable and lets non-Clang builds compile them away.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SONG_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef SONG_THREAD_ANNOTATION_
#define SONG_THREAD_ANNOTATION_(x)  // no-op: GCC / MSVC / old Clang
#endif

/// Marks a type as a lockable capability ("mutex", "shared_mutex").
#define SONG_CAPABILITY(x) SONG_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define SONG_SCOPED_CAPABILITY SONG_THREAD_ANNOTATION_(scoped_lockable)

/// Field may only be accessed with `x` held (read: shared; write: exclusive).
#define SONG_GUARDED_BY(x) SONG_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field whose *pointee* may only be accessed with `x` held.
#define SONG_PT_GUARDED_BY(x) SONG_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the listed capabilities held exclusively on entry.
#define SONG_REQUIRES(...) \
  SONG_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function requires the listed capabilities held at least shared on entry.
#define SONG_REQUIRES_SHARED(...) \
  SONG_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability exclusively (and does not release it).
#define SONG_ACQUIRE(...) \
  SONG_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function acquires the capability shared (and does not release it).
#define SONG_ACQUIRE_SHARED(...) \
  SONG_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases an exclusively held capability.
#define SONG_RELEASE(...) \
  SONG_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function releases a shared-held capability.
#define SONG_RELEASE_SHARED(...) \
  SONG_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Releases a capability whether held shared or exclusive (RAII guard
/// destructors — the analysis tracks which mode the constructor acquired).
#define SONG_RELEASE_GENERIC(...) \
  SONG_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// Function may acquire the capability; returns `b` on success.
#define SONG_TRY_ACQUIRE(b, ...) \
  SONG_THREAD_ANNOTATION_(try_acquire_capability(b, __VA_ARGS__))

/// Function must NOT be called with the listed capabilities held (deadlock /
/// lock-ordering documentation the analysis checks).
#define SONG_EXCLUDES(...) \
  SONG_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares that `x` is held at this point (runtime-checked elsewhere).
#define SONG_ASSERT_CAPABILITY(x) \
  SONG_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the capability guarding its result.
#define SONG_RETURN_CAPABILITY(x) SONG_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the protocol cannot be expressed.
#define SONG_NO_THREAD_SAFETY_ANALYSIS \
  SONG_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace song {

class CondVar;

/// Annotated exclusive mutex. Prefer the RAII MutexLock; the manual
/// Lock/Unlock surface exists for protocols (CondVar loops, adoption) that
/// RAII cannot express.
class SONG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SONG_ACQUIRE() { mu_.lock(); }
  void Unlock() SONG_RELEASE() { mu_.unlock(); }
  bool TryLock() SONG_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Annotated reader/writer mutex (std::shared_mutex underneath). Writers
/// use WriterLock / Lock(); readers use ReaderLock / LockShared().
class SONG_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() SONG_ACQUIRE() { mu_.lock(); }
  void Unlock() SONG_RELEASE() { mu_.unlock(); }
  bool TryLock() SONG_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() SONG_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() SONG_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() SONG_TRY_ACQUIRE(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over Mutex.
class SONG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SONG_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SONG_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
};

/// RAII shared (reader) lock over SharedMutex.
class SONG_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) SONG_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() SONG_RELEASE_GENERIC() { mu_.UnlockShared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock over SharedMutex.
class SONG_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) SONG_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() SONG_RELEASE() { mu_.Unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to the annotated Mutex. Wait() temporarily
/// adopts the already-held Mutex into a std::unique_lock (no extra
/// lock/unlock round trip) and re-adopts it before returning, so the
/// analysis-visible state — mutex held across the call — matches reality.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks; reacquires before returning.
  void Wait(Mutex& mu) SONG_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's scope
  }

  /// Waits until `pred()` holds; `pred` runs with `mu` held.
  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) SONG_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  /// Atomically releases `mu` and blocks up to `micros`; reacquires before
  /// returning. Returns false when the wait timed out (spurious wakeups and
  /// notifications both return true — callers re-check their predicate under
  /// the lock either way). The serving tier's continuous-batching linger
  /// (src/serve/request_queue.cc) is the canonical user.
  bool WaitFor(Mutex& mu, uint64_t micros) SONG_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool notified =
        cv_.wait_for(lock, std::chrono::microseconds(micros)) ==
        std::cv_status::no_timeout;
    lock.release();
    return notified;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace song

#endif  // SONG_CORE_SYNC_H_
