// Copyright 2026 The SONG-Repro Authors.
//
// Distance kernels. The paper's bulk-distance stage (§VI) supports p-norm
// distance, cosine similarity and inner product; all three are implemented
// here as "smaller is closer" scores so the search code is metric-agnostic:
//   kL2            -> squared Euclidean distance
//   kInnerProduct  -> negated inner product
//   kCosine        -> 1 - cosine similarity
// Kernels are 4-way unrolled; the compiler vectorizes them under -O2.

#ifndef SONG_CORE_DISTANCE_H_
#define SONG_CORE_DISTANCE_H_

#include <cstddef>
#include <string>

namespace song {

enum class Metric {
  kL2 = 0,
  kInnerProduct = 1,
  kCosine = 2,
};

const char* MetricName(Metric metric);

float L2Sqr(const float* a, const float* b, size_t dim);
float InnerProduct(const float* a, const float* b, size_t dim);
float CosineDistance(const float* a, const float* b, size_t dim);

/// Raw pairwise distance function: (query, point, dim) -> score where smaller
/// means closer.
using DistanceFunc = float (*)(const float*, const float*, size_t);

/// Returns the kernel for `metric`.
DistanceFunc GetDistanceFunc(Metric metric);

/// Convenience dispatch.
inline float ComputeDistance(Metric metric, const float* a, const float* b,
                             size_t dim) {
  return GetDistanceFunc(metric)(a, b, dim);
}

}  // namespace song

#endif  // SONG_CORE_DISTANCE_H_
