// Copyright 2026 The SONG-Repro Authors.
//
// Distance kernels. The paper's bulk-distance stage (§VI) supports p-norm
// distance, cosine similarity and inner product; all three are implemented
// here as "smaller is closer" scores so the search code is metric-agnostic:
//   kL2            -> squared Euclidean distance
//   kInnerProduct  -> negated inner product
//   kCosine        -> 1 - cosine similarity
//
// Every entry point dispatches at runtime to the widest SIMD tier the host
// supports (core/simd.h): AVX-512, AVX2+FMA, or the portable 4-way unrolled
// scalar fallback. Single-pair kernels serve the graph builders and
// baselines; the fused one-query-vs-many BatchDistance below is the Stage 2
// bulk kernel the SONG search core and the flat/HNSW scans call.

#ifndef SONG_CORE_DISTANCE_H_
#define SONG_CORE_DISTANCE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/simd.h"
#include "core/types.h"

namespace song {

enum class Metric {
  kL2 = 0,
  kInnerProduct = 1,
  kCosine = 2,
};

const char* MetricName(Metric metric);

float L2Sqr(const float* a, const float* b, size_t dim);
float InnerProduct(const float* a, const float* b, size_t dim);
float CosineDistance(const float* a, const float* b, size_t dim);

/// Raw pairwise distance function: (query, point, dim) -> score where smaller
/// means closer.
using DistanceFunc = float (*)(const float*, const float*, size_t);

/// Returns the kernel for `metric` at the active SIMD tier.
DistanceFunc GetDistanceFunc(Metric metric);

/// Test/bench access to a pinned tier. Tiers that are not compiled into the
/// binary fall back to scalar (check SimdTierCompiled / CpuSimdTier before
/// calling the result on the real datapath).
DistanceFunc GetDistanceFuncForTier(Metric metric, SimdTier tier);

/// Convenience dispatch.
inline float ComputeDistance(Metric metric, const float* a, const float* b,
                             size_t dim) {
  return GetDistanceFunc(metric)(a, b, dim);
}

/// Fused one-query-vs-many distance over a Dataset — the CPU analogue of the
/// paper's warp-parallel bulk-distance stage. Rows are processed four at a
/// time sharing the query registers, with the next row quad prefetched while
/// the current one reduces; per row the arithmetic is bit-identical to the
/// single-pair kernel of the same tier.
///
/// For cosine, per-row squared norms are cached at construction so each
/// query costs one norm reduction plus pure FMA dot products — the score is
/// combined as 1 - dot / sqrt(|q|^2 * |row|^2), the same formula as the
/// pairwise kernel.
///
/// Thread-safe after construction: per-query state (the query's squared
/// norm) is computed by the caller via QueryNormSqr and passed into every
/// Compute* call, so one BatchDistance serves all search threads.
class BatchDistance {
 public:
  BatchDistance() = default;

  /// `data` must outlive this object.
  BatchDistance(Metric metric, const Dataset* data);

  Metric metric() const { return metric_; }
  bool valid() const { return data_ != nullptr; }

  /// The query-side scalar every Compute* call needs: the query's squared
  /// norm under cosine, 0.0 otherwise. Compute once per query.
  float QueryNormSqr(const float* query) const;

  /// Score of `query` vs row `id`.
  float Compute(const float* query, float query_norm_sqr, idx_t id) const;

  /// out[i] = score(query, row ids[i]) for i in [0, n). The Stage 2 bulk
  /// kernel: candidates arrive as gathered vertex ids.
  void ComputeBatch(const float* query, float query_norm_sqr, const idx_t* ids,
                    size_t n, float* out) const;

  /// out[i] = score(query, row first + i) for i in [0, n) — the contiguous
  /// variant brute-force scans use.
  void ComputeRange(const float* query, float query_norm_sqr, idx_t first,
                    size_t n, float* out) const;

 private:
  Metric metric_ = Metric::kL2;
  const Dataset* data_ = nullptr;
  std::vector<float> norms_sqr_;  ///< per-row |v|^2, cosine only
};

}  // namespace song

#endif  // SONG_CORE_DISTANCE_H_
