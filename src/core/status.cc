#include "core/status.h"

namespace song {

const char* Status::CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

const char* Status::CodeSlug(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kIOError:
      return "io_error";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDataLoss:
      return "data_loss";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

}  // namespace song
