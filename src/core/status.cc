#include "core/status.h"

namespace song {

const char* Status::CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

}  // namespace song
