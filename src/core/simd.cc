#include "core/simd.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/distance_kernels.h"

namespace song {

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

SimdTier CpuSimdTier() {
#if defined(__x86_64__) || defined(__i386__)
  // AVX-512VL lets the kernels mix 512/256-bit ops without transition
  // penalties; requiring the full F+BW+DQ+VL set matches the -m flags the
  // avx512 TU is built with.
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl")) {
    return SimdTier::kAvx512;
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return SimdTier::kAvx2;
  }
#endif
  return SimdTier::kScalar;
}

bool SimdTierCompiled(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return true;
    case SimdTier::kAvx2:
      return internal::Avx2KernelTable().compiled;
    case SimdTier::kAvx512:
      return internal::Avx512KernelTable().compiled;
  }
  return false;
}

namespace {

SimdTier ResolveActiveTier() {
  SimdTier tier = CpuSimdTier();
  while (tier != SimdTier::kScalar && !SimdTierCompiled(tier)) {
    tier = static_cast<SimdTier>(static_cast<int>(tier) - 1);
  }
  const char* env = std::getenv("SONG_SIMD");
  if (env != nullptr && env[0] != '\0') {
    SimdTier requested = tier;
    if (std::strcmp(env, "scalar") == 0) {
      requested = SimdTier::kScalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      requested = SimdTier::kAvx2;
    } else if (std::strcmp(env, "avx512") == 0) {
      requested = SimdTier::kAvx512;
    } else {
      std::fprintf(stderr,
                   "[song] ignoring unknown SONG_SIMD=%s "
                   "(expected scalar|avx2|avx512)\n",
                   env);
    }
    // The override can only narrow: requesting a tier the CPU or binary
    // cannot run would trap on the first kernel call.
    if (requested < tier) tier = requested;
  }
  return tier;
}

}  // namespace

SimdTier ActiveSimdTier() {
  static const SimdTier tier = ResolveActiveTier();
  return tier;
}

}  // namespace song
