// Copyright 2026 The SONG-Repro Authors.
//
// Cache-line / SIMD aligned flat buffer. The dataset matrix and the
// fixed-degree graph live in these so rows start at aligned addresses —
// the CPU analogue of coalesced global-memory segments on the GPU.

#ifndef SONG_CORE_ALIGNED_BUFFER_H_
#define SONG_CORE_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "core/logging.h"

namespace song {

inline constexpr size_t kDefaultAlignment = 64;

/// Owning aligned array of trivially-copyable T.
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedBuffer only holds trivially copyable types");

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(size_t count, size_t alignment = kDefaultAlignment) {
    Allocate(count, alignment);
  }

  AlignedBuffer(const AlignedBuffer& other) { CopyFrom(other); }
  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      Free();
      CopyFrom(other);
    }
    return *this;
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        alignment_(other.alignment_) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Free();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      alignment_ = other.alignment_;
    }
    return *this;
  }

  ~AlignedBuffer() { Free(); }

  /// Reallocates to `count` elements (contents are NOT preserved) and
  /// zero-fills.
  void Reset(size_t count, size_t alignment = kDefaultAlignment) {
    Free();
    Allocate(count, alignment);
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t size_bytes() const { return size_ * sizeof(T); }

  T& operator[](size_t i) {
    SONG_DCHECK(i < size_);
    return data_[i];
  }
  const T& operator[](size_t i) const {
    SONG_DCHECK(i < size_);
    return data_[i];
  }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  void Allocate(size_t count, size_t alignment) {
    alignment_ = alignment;
    size_ = count;
    if (count == 0) {
      data_ = nullptr;
      return;
    }
    size_t bytes = count * sizeof(T);
    // std::aligned_alloc requires size to be a multiple of alignment.
    bytes = (bytes + alignment - 1) / alignment * alignment;
    data_ = static_cast<T*>(std::aligned_alloc(alignment, bytes));
    SONG_CHECK_MSG(data_ != nullptr, "aligned_alloc failed");
    std::memset(data_, 0, bytes);
  }

  void CopyFrom(const AlignedBuffer& other) {
    Allocate(other.size_, other.alignment_);
    if (size_ > 0) std::memcpy(data_, other.data_, size_ * sizeof(T));
  }

  void Free() {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  size_t size_ = 0;
  size_t alignment_ = kDefaultAlignment;
};

}  // namespace song

#endif  // SONG_CORE_ALIGNED_BUFFER_H_
