// Copyright 2026 The SONG-Repro Authors.
//
// Recall evaluation: Recall(A) = |A ∩ B| / |B| where B is the exact top-K
// (paper §VIII "Retrieval Quality").

#ifndef SONG_CORE_RECALL_H_
#define SONG_CORE_RECALL_H_

#include <cstddef>
#include <vector>

#include "core/types.h"

namespace song {

/// Recall of one result list against one ground-truth list, both truncated
/// to k. Duplicate ids in `result` are counted once.
double RecallAtK(const std::vector<idx_t>& result,
                 const std::vector<idx_t>& ground_truth, size_t k);

/// Mean recall across queries. `results[q]` / `ground_truth[q]` are the
/// per-query id lists.
double MeanRecallAtK(const std::vector<std::vector<idx_t>>& results,
                     const std::vector<std::vector<idx_t>>& ground_truth,
                     size_t k);

}  // namespace song

#endif  // SONG_CORE_RECALL_H_
