// Copyright 2026 The SONG-Repro Authors.
//
// Fixed-size worker pool plus a ParallelFor helper. Used by the batch query
// engine (queries across warps ≙ queries across worker threads), ground-truth
// computation, and graph construction.

#ifndef SONG_CORE_THREAD_POOL_H_
#define SONG_CORE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace song {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 means hardware concurrency).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; fire-and-forget (use Wait() to join).
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.
  void Wait();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs fn(i, thread_id) for i in [0, n), dynamically chunked across
/// `num_threads` transient threads (0 = hardware concurrency). Blocks until
/// done. `fn` must be thread-safe across distinct i.
///
/// `chunk` is the number of consecutive indices claimed per atomic grab:
/// 0 = auto (n / (threads * 16), at least 1). Callers with cache-affine
/// work items (e.g. the batch engine's query blocks) pass a small explicit
/// chunk so each thread streams a run of adjacent items instead of
/// fine-grained interleaving, while load stays balanced via work stealing
/// from the shared counter.
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t index, size_t thread)>& fn,
                 size_t chunk = 0);

}  // namespace song

#endif  // SONG_CORE_THREAD_POOL_H_
