// Copyright 2026 The SONG-Repro Authors.
//
// Fixed-size worker pool plus a ParallelFor helper. Used by the batch query
// engine (queries across warps ≙ queries across worker threads), ground-truth
// computation, and graph construction.

#ifndef SONG_CORE_THREAD_POOL_H_
#define SONG_CORE_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "core/sync.h"

namespace song {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 means hardware concurrency).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; fire-and-forget (use Wait() to join).
  void Submit(std::function<void()> task) SONG_EXCLUDES(mu_);

  /// Blocks until all submitted tasks have finished.
  void Wait() SONG_EXCLUDES(mu_);

 private:
  void WorkerLoop() SONG_EXCLUDES(mu_);

  std::vector<std::thread> workers_;  ///< immutable after the constructor
  Mutex mu_;
  std::queue<std::function<void()>> tasks_ SONG_GUARDED_BY(mu_);
  CondVar task_cv_;
  CondVar done_cv_;
  size_t in_flight_ SONG_GUARDED_BY(mu_) = 0;
  bool stop_ SONG_GUARDED_BY(mu_) = false;
};

/// Runs fn(i, thread_id) for i in [0, n), dynamically chunked across
/// `num_threads` transient threads (0 = hardware concurrency). Blocks until
/// done. `fn` must be thread-safe across distinct i.
///
/// `chunk` is the number of consecutive indices claimed per atomic grab:
/// 0 = auto (n / (threads * 16), at least 1). Callers with cache-affine
/// work items (e.g. the batch engine's query blocks) pass a small explicit
/// chunk so each thread streams a run of adjacent items instead of
/// fine-grained interleaving, while load stays balanced via work stealing
/// from the shared counter.
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t index, size_t thread)>& fn,
                 size_t chunk = 0);

}  // namespace song

#endif  // SONG_CORE_THREAD_POOL_H_
