#include "core/dataset.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace song {

namespace {
constexpr char kMagic[4] = {'S', 'N', 'G', 'D'};
}  // namespace

Dataset::Dataset(size_t num, size_t dim)
    : num_(num), dim_(dim), stride_(PaddedStride(dim)) {
  data_.Reset(num_ * stride_);
}

StatusOr<Dataset> Dataset::FromFlat(const std::vector<float>& flat, size_t num,
                                    size_t dim) {
  if (flat.size() != num * dim) {
    return Status::InvalidArgument("flat size != num * dim");
  }
  Dataset ds(num, dim);
  for (size_t i = 0; i < num; ++i) {
    ds.SetRow(static_cast<idx_t>(i), flat.data() + i * dim);
  }
  return ds;
}

void Dataset::SetRow(idx_t i, const float* values) {
  float* row = Row(i);
  std::memcpy(row, values, dim_ * sizeof(float));
  if (stride_ > dim_) {
    std::memset(row + dim_, 0, (stride_ - dim_) * sizeof(float));
  }
}

void Dataset::NormalizeRows() {
  for (size_t i = 0; i < num_; ++i) {
    float* row = Row(static_cast<idx_t>(i));
    double sq = 0.0;
    for (size_t d = 0; d < dim_; ++d) sq += double{row[d]} * row[d];
    if (sq <= 0.0) continue;
    const float inv = static_cast<float>(1.0 / std::sqrt(sq));
    for (size_t d = 0; d < dim_; ++d) row[d] *= inv;
  }
}

Status Dataset::Save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  bool ok = std::fwrite(kMagic, 1, 4, f) == 4;
  const uint32_t dim32 = static_cast<uint32_t>(dim_);
  const uint64_t num64 = num_;
  ok = ok && std::fwrite(&dim32, sizeof(dim32), 1, f) == 1;
  ok = ok && std::fwrite(&num64, sizeof(num64), 1, f) == 1;
  for (size_t i = 0; ok && i < num_; ++i) {
    ok = std::fwrite(Row(static_cast<idx_t>(i)), sizeof(float), dim_, f) ==
         dim_;
  }
  std::fclose(f);
  if (!ok) return Status::IOError("short write: " + path);
  return Status::OK();
}

StatusOr<Dataset> Dataset::Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);
  char magic[4];
  uint32_t dim32 = 0;
  uint64_t num64 = 0;
  bool ok = std::fread(magic, 1, 4, f) == 4 &&
            std::memcmp(magic, kMagic, 4) == 0;
  ok = ok && std::fread(&dim32, sizeof(dim32), 1, f) == 1;
  ok = ok && std::fread(&num64, sizeof(num64), 1, f) == 1;
  if (!ok) {
    std::fclose(f);
    return Status::IOError("bad header: " + path);
  }
  Dataset ds(static_cast<size_t>(num64), dim32);
  std::vector<float> row(dim32);
  for (size_t i = 0; ok && i < num64; ++i) {
    ok = std::fread(row.data(), sizeof(float), dim32, f) == dim32;
    if (ok) ds.SetRow(static_cast<idx_t>(i), row.data());
  }
  std::fclose(f);
  if (!ok) return Status::IOError("short read: " + path);
  return ds;
}

}  // namespace song
