#include "core/dataset.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "core/fault_injection.h"

namespace song {

namespace {
constexpr char kMagic[4] = {'S', 'N', 'G', 'D'};

/// Remaining bytes from the current position to EOF, or -1 on seek failure.
long RemainingBytes(std::FILE* f) {
  const long pos = std::ftell(f);
  if (pos < 0 || std::fseek(f, 0, SEEK_END) != 0) return -1;
  const long end = std::ftell(f);
  if (end < 0 || std::fseek(f, pos, SEEK_SET) != 0) return -1;
  return end - pos;
}

}  // namespace

Dataset::Dataset(size_t num, size_t dim)
    : num_(num), dim_(dim), stride_(PaddedStride(dim)) {
  data_.Reset(num_ * stride_);
}

StatusOr<Dataset> Dataset::FromFlat(const std::vector<float>& flat, size_t num,
                                    size_t dim) {
  if (flat.size() != num * dim) {
    return Status::InvalidArgument("flat size != num * dim");
  }
  Dataset ds(num, dim);
  for (size_t i = 0; i < num; ++i) {
    ds.SetRow(static_cast<idx_t>(i), flat.data() + i * dim);
  }
  return ds;
}

void Dataset::SetRow(idx_t i, const float* values) {
  float* row = Row(i);
  std::memcpy(row, values, dim_ * sizeof(float));
  if (stride_ > dim_) {
    std::memset(row + dim_, 0, (stride_ - dim_) * sizeof(float));
  }
}

Dataset Dataset::CopyGrown(size_t new_num) const {
  SONG_CHECK(new_num >= num_);
  Dataset out(new_num, dim_);
  if (num_ > 0) {
    std::memcpy(out.data_.data(), data_.data(),
                num_ * stride_ * sizeof(float));
  }
  return out;
}

void Dataset::NormalizeRows() {
  for (size_t i = 0; i < num_; ++i) {
    float* row = Row(static_cast<idx_t>(i));
    double sq = 0.0;
    for (size_t d = 0; d < dim_; ++d) sq += double{row[d]} * row[d];
    if (sq <= 0.0) continue;
    const float inv = static_cast<float>(1.0 / std::sqrt(sq));
    for (size_t d = 0; d < dim_; ++d) row[d] *= inv;
  }
}

Status Dataset::Save(const std::string& path) const {
  if (fault::ShouldFail("io.write")) {
    return Status::Unavailable("injected fault: io.write " + path);
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  bool ok = std::fwrite(kMagic, 1, 4, f) == 4;
  const uint32_t dim32 = static_cast<uint32_t>(dim_);
  const uint64_t num64 = num_;
  ok = ok && std::fwrite(&dim32, sizeof(dim32), 1, f) == 1;
  ok = ok && std::fwrite(&num64, sizeof(num64), 1, f) == 1;
  for (size_t i = 0; ok && i < num_; ++i) {
    ok = std::fwrite(Row(static_cast<idx_t>(i)), sizeof(float), dim_, f) ==
         dim_;
  }
  std::fclose(f);
  if (!ok) return Status::IOError("short write: " + path);
  return Status::OK();
}

StatusOr<Dataset> Dataset::Load(const std::string& path) {
  if (fault::ShouldFail("io.read")) {
    return Status::Unavailable("injected fault: io.read " + path);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);
  char magic[4];
  uint32_t dim32 = 0;
  uint64_t num64 = 0;
  bool ok = std::fread(magic, 1, 4, f) == 4 &&
            std::memcmp(magic, kMagic, 4) == 0;
  ok = ok && std::fread(&dim32, sizeof(dim32), 1, f) == 1;
  ok = ok && std::fread(&num64, sizeof(num64), 1, f) == 1;
  if (!ok) {
    std::fclose(f);
    return Status::DataLoss("bad header: " + path);
  }
  if (dim32 == 0) {
    std::fclose(f);
    return Status::DataLoss("zero dim in header: " + path);
  }
  // The payload size must match the header's claim exactly — this rejects
  // truncated files and corrupt headers BEFORE the (potentially enormous)
  // allocation a hostile num/dim would request.
  const long remaining = RemainingBytes(f);
  const uint64_t payload = num64 * uint64_t{dim32} * sizeof(float);
  if (remaining < 0 || num64 > (uint64_t{1} << 40) ||
      payload / sizeof(float) / dim32 != num64 ||
      static_cast<uint64_t>(remaining) != payload) {
    std::fclose(f);
    return Status::DataLoss("payload size mismatch (truncated or corrupt): " +
                            path);
  }
  Dataset ds(static_cast<size_t>(num64), dim32);
  std::vector<float> row(dim32);
  for (size_t i = 0; ok && i < num64; ++i) {
    ok = std::fread(row.data(), sizeof(float), dim32, f) == dim32;
    if (ok) ds.SetRow(static_cast<idx_t>(i), row.data());
  }
  std::fclose(f);
  if (!ok) return Status::DataLoss("short read: " + path);
  return ds;
}

}  // namespace song
