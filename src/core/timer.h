// Copyright 2026 The SONG-Repro Authors.
//
// Wall-clock timer used by the benchmark harnesses.

#ifndef SONG_CORE_TIMER_H_
#define SONG_CORE_TIMER_H_

#include <chrono>

namespace song {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace song

#endif  // SONG_CORE_TIMER_H_
