// Copyright 2026 The SONG-Repro Authors.
//
// RocksDB-style Status / StatusOr error handling. Fallible public APIs
// return Status (or StatusOr<T>); exceptions are not used.

#ifndef SONG_CORE_STATUS_H_
#define SONG_CORE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "core/logging.h"

namespace song {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kDataLoss,           ///< unrecoverable corruption (truncated/mutated file)
  kResourceExhausted,  ///< capacity/admission limit hit; retry later or shed
  kDeadlineExceeded,   ///< per-query budget expired before completion
  kUnavailable,        ///< transient failure (shard/transfer); safe to retry
};

/// Lightweight status object. OK carries no allocation.
///
/// [[nodiscard]] on the class makes discarding ANY Status return value a
/// compile error repo-wide (-Werror=unused-result): a fallible call whose
/// outcome is ignored is exactly how corruption Statuses from the loaders
/// were designed to never be dropped. Intentional discards (e.g. restoring
/// a previously-validated spec) must go through SONG_IGNORE_ERROR below.
class [[nodiscard]] Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  static const char* CodeName(StatusCode code);

  /// Lowercase snake_case code name ("ok", "invalid_argument", ...), used
  /// for metric names (song.req.outcome.<slug>) and JSON fields.
  static const char* CodeSlug(StatusCode code);

  /// Suggested process exit code for CLI front ends: 0 for OK, 2 for
  /// caller mistakes (InvalidArgument), 1 for everything else.
  int ExitCode() const {
    if (ok()) return 0;
    return code_ == StatusCode::kInvalidArgument ? 2 : 1;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value or an error Status. Accessing value() on an error aborts.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status)                        // NOLINT(runtime/explicit)
      : rep_(std::move(status)) {
    SONG_CHECK_MSG(!std::get<Status>(rep_).ok(),
                   "StatusOr constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status ok_status = Status::OK();
    if (ok()) return ok_status;
    return std::get<Status>(rep_);
  }

  T& value() & {
    SONG_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    SONG_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(rep_);
  }
  T&& value() && {
    SONG_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

#define SONG_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::song::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

namespace internal {
template <typename T>
inline void IgnoreResult(T&&) {}
}  // namespace internal

/// Documents an intentional discard of a Status/StatusOr result. This is
/// the ONLY sanctioned way to drop one: raw `(void)` casts are rejected by
/// tools/lint/song_lint.py (rule `status-discard`) so every swallow is
/// greppable and carries a justification comment at the call site.
#define SONG_IGNORE_ERROR(expr) ::song::internal::IgnoreResult((expr))

}  // namespace song

#endif  // SONG_CORE_STATUS_H_
