// Copyright 2026 The SONG-Repro Authors.
//
// RocksDB-style Status / StatusOr error handling. Fallible public APIs
// return Status (or StatusOr<T>); exceptions are not used.

#ifndef SONG_CORE_STATUS_H_
#define SONG_CORE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "core/logging.h"

namespace song {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
};

/// Lightweight status object. OK carries no allocation.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk:
        return "OK";
      case StatusCode::kInvalidArgument:
        return "InvalidArgument";
      case StatusCode::kNotFound:
        return "NotFound";
      case StatusCode::kIOError:
        return "IOError";
      case StatusCode::kFailedPrecondition:
        return "FailedPrecondition";
      case StatusCode::kOutOfRange:
        return "OutOfRange";
      case StatusCode::kUnimplemented:
        return "Unimplemented";
      case StatusCode::kInternal:
        return "Internal";
    }
    return "Unknown";
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value or an error Status. Accessing value() on an error aborts.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status)                        // NOLINT(runtime/explicit)
      : rep_(std::move(status)) {
    SONG_CHECK_MSG(!std::get<Status>(rep_).ok(),
                   "StatusOr constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status ok_status = Status::OK();
    if (ok()) return ok_status;
    return std::get<Status>(rep_);
  }

  T& value() & {
    SONG_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    SONG_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(rep_);
  }
  T&& value() && {
    SONG_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

#define SONG_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::song::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace song

#endif  // SONG_CORE_STATUS_H_
