// Copyright 2026 The SONG-Repro Authors.
//
// Internal per-tier distance kernel tables. Each tier lives in its own
// translation unit compiled with the matching -m flags; this header is the
// contract between those TUs and the dispatcher in distance.cc. Tests and
// the micro bench include it directly to pin a specific tier regardless of
// what ActiveSimdTier() resolved to.
//
// Kernel contracts (all tiers):
//  - Only a[0..dim) / b[0..dim) are read — remainder lanes are handled with
//    scalar tails, never by reading past `dim` — so kernels are safe on
//    unpadded std::vector storage and under ASan.
//  - Within one tier, the gather/range kernels accumulate each row in
//    exactly the same order as the pair kernel, so batch results are
//    bit-identical to single-pair results of the same tier.
//  - Across tiers, results agree with the double-precision oracle within a
//    dim-scaled few-ulp tolerance (summation order differs by design).

#ifndef SONG_CORE_DISTANCE_KERNELS_H_
#define SONG_CORE_DISTANCE_KERNELS_H_

#include <cstddef>

#include "core/simd.h"
#include "core/types.h"

namespace song::internal {

/// (a, b, dim) -> scalar result.
using PairKernel = float (*)(const float* a, const float* b, size_t dim);

/// One query vs many gathered rows: out[i] = op(q, base + ids[i] * stride).
/// Fused: the query streams through registers once per row block, and rows
/// i+lookahead are prefetched while row i is being reduced.
using GatherKernel = void (*)(const float* q, const float* base,
                              size_t stride, size_t dim, const idx_t* ids,
                              size_t n, float* out);

/// One query vs a contiguous row range: out[i] = op(q, base + (first + i) *
/// stride) for i in [0, n).
using RangeKernel = void (*)(const float* q, const float* base, size_t stride,
                             size_t dim, idx_t first, size_t n, float* out);

/// PQ asymmetric-distance accumulation over gathered m-byte codes:
///   out[i] = sum_{s < m} table[s * 256 + codes[ids[i] * m + s]]
/// where `table` is the per-query ADC lookup table (m * 256 floats, row s =
/// subquantizer s) and `codes` the flat encoded dataset. SIMD tiers widen
/// the code bytes and gather the selected table entries lane-parallel; like
/// the float kernels, per-tier summation order is fixed (batch == single
/// within a tier) and cross-tier results agree with the scalar/double oracle
/// within an m-scaled few-ulp tolerance.
using AdcGatherKernel = void (*)(const float* table, const uint8_t* codes,
                                 size_t m, const idx_t* ids, size_t n,
                                 float* out);

struct DistanceKernelTable {
  /// False when this TU was built without its -m flags (non-x86 target or
  /// toolchain without the extension): every pointer below then aliases the
  /// scalar implementation so dereferencing is always safe.
  bool compiled = false;

  PairKernel l2 = nullptr;       ///< squared euclidean
  PairKernel dot = nullptr;      ///< plain (positive) dot product
  PairKernel ip = nullptr;       ///< -dot (the "smaller is closer" score)
  PairKernel cosine = nullptr;   ///< 1 - dot / sqrt(|a||b|)

  GatherKernel l2_gather = nullptr;
  GatherKernel dot_gather = nullptr;
  RangeKernel l2_range = nullptr;
  RangeKernel dot_range = nullptr;
  AdcGatherKernel adc_gather = nullptr;
};

const DistanceKernelTable& ScalarKernelTable();
const DistanceKernelTable& Avx2KernelTable();
const DistanceKernelTable& Avx512KernelTable();

/// The table for `tier` (scalar-aliased when the tier was not compiled in).
const DistanceKernelTable& KernelTableForTier(SimdTier tier);

}  // namespace song::internal

#endif  // SONG_CORE_DISTANCE_KERNELS_H_
