// Copyright 2026 The SONG-Repro Authors.
//
// Lock-free flight recorder: a fixed-capacity ring retaining the last N
// completed RequestRecords for post-mortem inspection (--statusz, non-OK
// Status dumps, fault-injection firings). Production graph-serving systems
// treat this capture as load-bearing: when a request misbehaves, the
// recorder answers "what were the last N requests doing" without any
// logging on the hot path.
//
// Concurrency design (seqlock per slot, Boehm-style atomic payload):
//   - Record() is wait-free for writers: claim a ticket with one relaxed
//     fetch_add, then seqlock-publish the record into slot ticket % N. The
//     payload is stored as relaxed atomic uint64 words, so concurrent
//     readers are race-free by construction (TSan-clean), and a torn read
//     is detected — never silently returned — via the per-slot sequence.
//   - Record() performs no allocation and takes no lock: safe on the search
//     hot path, pinned by tests/obs/flight_recorder_test.cc with a global
//     operator-new counter.
//   - Snapshot()/ToJson() are best-effort readers: a record overwritten or
//     mid-write during the read is skipped, records are returned oldest ->
//     newest. Readers never block writers.

#ifndef SONG_OBS_FLIGHT_RECORDER_H_
#define SONG_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/request_timeline.h"

namespace song::obs {

class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  /// `capacity` is rounded up to the next power of two (minimum 2) so slot
  /// selection is a mask, not a division.
  explicit FlightRecorder(size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one record, overwriting the oldest once the ring is full.
  /// Wait-free, allocation-free, safe from any number of threads.
  void Record(const RequestRecord& record) noexcept;

  /// Consistent copies of the retained records, oldest -> newest. Records
  /// caught mid-overwrite are skipped (bounded retries, then give up on
  /// that slot), so the result may be shorter than capacity even after
  /// capacity records were written.
  std::vector<RequestRecord> Snapshot() const;

  /// JSON dump: {"schema_version", "capacity", "total_recorded",
  /// "records": [...]}, records oldest -> newest with status code names.
  std::string ToJson() const;

  size_t capacity() const { return capacity_; }

  /// Records ever written (monotonic; >= capacity() means the ring wrapped).
  uint64_t total_recorded() const {
    return next_.load(std::memory_order_acquire);
  }

 private:
  struct Slot {
    /// 0 = never written; 2*ticket+1 = write of `ticket` in progress;
    /// 2*ticket+2 = write of `ticket` complete. Accessed ONLY through the
    /// Seq* protocol helpers below (song_lint.py rule `seqlock-discipline`):
    /// a stray relaxed load or a missing fence silently breaks torn-read
    /// detection, so every access is funneled through four named functions
    /// whose memory orders are reviewed in one place.
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> words[kRequestRecordWords] = {};
  };

  // --- Seqlock protocol helpers (the only sanctioned Slot::seq access). ---
  // song-lint: begin-seqlock(helpers)

  /// Writer: marks `ticket`'s write in progress (odd seq), ordered before
  /// the payload stores by a release fence.
  static void SeqWriteBegin(Slot& slot, uint64_t ticket) noexcept {
    slot.seq.store(2 * ticket + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
  }

  /// Writer: publishes `ticket`'s write as complete (even seq). The release
  /// store orders every preceding payload store before the new seq value.
  static void SeqWriteEnd(Slot& slot, uint64_t ticket) noexcept {
    slot.seq.store(2 * ticket + 2, std::memory_order_release);
  }

  /// Reader: first seq load (acquire — synchronizes with SeqWriteEnd).
  static uint64_t SeqReadBegin(const Slot& slot) noexcept {
    return slot.seq.load(std::memory_order_acquire);
  }

  /// Reader: true when the payload words read since SeqReadBegin are not
  /// torn: the acquire fence orders them before the re-read, which must
  /// still observe `want`.
  static bool SeqReadValidate(const Slot& slot, uint64_t want) noexcept {
    std::atomic_thread_fence(std::memory_order_acquire);
    return slot.seq.load(std::memory_order_relaxed) == want;
  }

  // song-lint: end-seqlock

  /// Reads slot for `ticket` into `out`; false on torn/overwritten data.
  bool TryRead(uint64_t ticket, RequestRecord* out) const;

  size_t capacity_;
  uint64_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};  ///< next ticket to assign
};

}  // namespace song::obs

#endif  // SONG_OBS_FLIGHT_RECORDER_H_
