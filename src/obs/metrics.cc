#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace song::obs {

Histogram::Histogram()
    : buckets_(new std::atomic<uint64_t>[kNumBuckets]) {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

int Histogram::BucketIndex(double value) {
  if (!(value > kMinValue)) return 0;  // also catches NaN
  const int idx = static_cast<int>(
      std::log2(value / kMinValue) * kSubBucketsPerOctave);
  return std::clamp(idx, 0, kNumBuckets - 1);
}

double Histogram::BucketUpperBound(int index) {
  return kMinValue *
         std::exp2(static_cast<double>(index + 1) / kSubBucketsPerOctave);
}

void Histogram::Observe(double value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  const uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
  if (n == 0) {
    // First observation seeds both extremes; races with concurrent first
    // observations resolve through the CAS loops below.
    double expected = 0.0;
    min_.compare_exchange_strong(expected, value, std::memory_order_relaxed);
    expected = 0.0;
    max_.compare_exchange_strong(expected, value, std::memory_order_relaxed);
  }
  double m = min_.load(std::memory_order_relaxed);
  while (value < m &&
         !min_.compare_exchange_weak(m, value, std::memory_order_relaxed)) {
  }
  m = max_.load(std::memory_order_relaxed);
  while (value > m &&
         !max_.compare_exchange_weak(m, value, std::memory_order_relaxed)) {
  }
}

double Histogram::ObservedMin() const {
  return Count() > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::ObservedMax() const {
  return Count() > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::Percentile(double p) const {
  const uint64_t n = Count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(p / 100.0 *
                                         static_cast<double>(n))));
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= target) {
      // Geometric midpoint of the bucket, clamped to the observed range.
      const double hi = BucketUpperBound(i);
      const double lo = i == 0 ? kMinValue : BucketUpperBound(i - 1);
      const double mid = std::sqrt(lo * hi);
      return std::clamp(mid, ObservedMin(), ObservedMax());
    }
  }
  return ObservedMax();
}

std::vector<std::pair<double, uint64_t>> Histogram::NonEmptyBuckets() const {
  std::vector<std::pair<double, uint64_t>> out;
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) out.emplace_back(BucketUpperBound(i), c);
  }
  return out;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, const Counter*>>
MetricsRegistry::Counters() const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, const Counter*>> out;
  out.reserve(counters_.size());
  for (const auto& [name, metric] : counters_) {
    out.emplace_back(name, metric.get());
  }
  return out;
}

std::vector<std::pair<std::string, const Gauge*>> MetricsRegistry::Gauges()
    const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, const Gauge*>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, metric] : gauges_) {
    out.emplace_back(name, metric.get());
  }
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::Histograms() const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, metric] : histograms_) {
    out.emplace_back(name, metric.get());
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace song::obs
