#include "obs/exporters.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "core/fault_injection.h"
#include "core/logging.h"
#include "core/simd.h"

namespace song::obs {

namespace {

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min<size_t>(n, sizeof(buf) - 1));
}

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string PromName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':') {
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          Appendf(&out, "\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// JSON-safe double: finite values via %.9g, everything else as 0.
void AppendJsonNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    out->append("0");
    return;
  }
  Appendf(out, "%.9g", v);
}

struct SpanWriter {
  std::string* out;
  bool first = true;

  /// Emits one complete ("X") event; ts/dur in microseconds.
  void Span(const char* name, const char* cat, int pid, uint64_t tid,
            double ts_us, double dur_us, const std::string& args_json) {
    Comma();
    Appendf(out, "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":%d,"
                 "\"tid\":%" PRIu64 ",\"ts\":",
            name, cat, pid, tid);
    AppendJsonNumber(out, ts_us);
    out->append(",\"dur\":");
    AppendJsonNumber(out, dur_us);
    if (!args_json.empty()) {
      out->append(",\"args\":");
      out->append(args_json);
    }
    out->append("}");
  }

  void Metadata(const char* name, int pid, uint64_t tid,
                const std::string& value) {
    Comma();
    Appendf(out, "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,\"tid\":%" PRIu64
                 ",\"args\":{\"name\":\"%s\"}}",
            name, pid, tid, JsonEscape(value).c_str());
  }

  void Comma() {
    if (!first) out->append(",\n");
    first = false;
  }
};

}  // namespace

std::string MetricsToPrometheusText(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& [name, counter] : registry.Counters()) {
    const std::string prom = PromName(name);
    Appendf(&out, "# TYPE %s counter\n", prom.c_str());
    Appendf(&out, "%s %" PRIu64 "\n", prom.c_str(), counter->Value());
  }
  for (const auto& [name, gauge] : registry.Gauges()) {
    const std::string prom = PromName(name);
    Appendf(&out, "# TYPE %s gauge\n", prom.c_str());
    Appendf(&out, "%s %.9g\n", prom.c_str(), gauge->Value());
  }
  for (const auto& [name, histogram] : registry.Histograms()) {
    const std::string prom = PromName(name);
    Appendf(&out, "# TYPE %s summary\n", prom.c_str());
    for (const double q : {0.5, 0.95, 0.99}) {
      Appendf(&out, "%s{quantile=\"%.2g\"} %.9g\n", prom.c_str(), q,
              histogram->Percentile(q * 100.0));
    }
    Appendf(&out, "%s_sum %.9g\n", prom.c_str(), histogram->Sum());
    Appendf(&out, "%s_count %" PRIu64 "\n", prom.c_str(), histogram->Count());
  }
  return out;
}

std::string MetricsToJson(const MetricsRegistry& registry) {
  std::string out = "{\n";
  Appendf(&out, "  \"schema_version\": %d,\n", kTelemetrySchemaVersion);

  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : registry.Counters()) {
    if (!first) out += ",";
    first = false;
    Appendf(&out, "\n    \"%s\": %" PRIu64, JsonEscape(name).c_str(),
            counter->Value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : registry.Gauges()) {
    if (!first) out += ",";
    first = false;
    Appendf(&out, "\n    \"%s\": ", JsonEscape(name).c_str());
    AppendJsonNumber(&out, gauge->Value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : registry.Histograms()) {
    if (!first) out += ",";
    first = false;
    Appendf(&out, "\n    \"%s\": {\"count\": %" PRIu64 ", \"sum\": ",
            JsonEscape(name).c_str(), histogram->Count());
    AppendJsonNumber(&out, histogram->Sum());
    out += ", \"min\": ";
    AppendJsonNumber(&out, histogram->ObservedMin());
    out += ", \"max\": ";
    AppendJsonNumber(&out, histogram->ObservedMax());
    out += ", \"p50\": ";
    AppendJsonNumber(&out, histogram->Percentile(50.0));
    out += ", \"p95\": ";
    AppendJsonNumber(&out, histogram->Percentile(95.0));
    out += ", \"p99\": ";
    AppendJsonNumber(&out, histogram->Percentile(99.0));
    out += "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string TracesToJson(const std::vector<SearchTrace>& traces) {
  std::string out = "{\n";
  Appendf(&out, "  \"schema_version\": %d,\n  \"traces\": [",
          kTelemetrySchemaVersion);
  bool first_trace = true;
  for (const SearchTrace& t : traces) {
    if (!first_trace) out += ",";
    first_trace = false;
    Appendf(&out,
            "\n    {\"query_id\": %" PRIu64
            ", \"k\": %u, \"queue_size\": %u, \"config\": \"%s\", "
            "\"termination\": \"%s\", \"wall_micros\": ",
            t.query_id, t.k, t.queue_size, JsonEscape(t.config).c_str(),
            TraceTerminationName(t.termination));
    AppendJsonNumber(&out, t.wall_micros);
    out += ", \"rows\": [";
    bool first_row = true;
    for (const TraceIterationRow& r : t.rows) {
      if (!first_row) out += ",";
      first_row = false;
      Appendf(&out,
              "\n      {\"iteration\": %u, \"frontier\": %u, \"topk\": %u, "
              "\"visited\": %u, \"rows_loaded\": %u, \"q_pops\": %u, "
              "\"visited_tests\": %u, \"candidates\": %u, \"dist_comps\": %u, "
              "\"heap_pushes\": %u, \"topk_ops\": %u, \"visited_inserts\": "
              "%u, \"visited_deletes\": %u}",
              r.iteration, r.frontier_size, r.topk_size, r.visited_size,
              r.rows_loaded, r.q_pops, r.visited_tests, r.candidates,
              r.dist_comps, r.heap_pushes, r.topk_ops, r.visited_inserts,
              r.visited_deletes);
    }
    out += first_row ? "]}" : "\n    ]}";
  }
  out += first_trace ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string TracesToChromeJson(const std::vector<SearchTrace>& traces,
                               const ChromeTraceContext& context) {
  SONG_CHECK(context.model != nullptr);
  const CostModel& model = *context.model;
  const KernelBreakdown& b = context.breakdown;
  const StageUnitCosts costs =
      model.UnitCosts(context.shape, b.visited_in_shared);
  const double us_per_cycle = model.SecondsPerCycle() * 1e6;

  std::string events;
  SpanWriter w{&events};

  // ---- Process 0: the cost model's batch kernel timeline. ----
  constexpr int kGpuPid = 0;
  w.Metadata("process_name", kGpuPid, 0,
             "GPU cost model (" + model.spec().name + ", batch)");
  w.Metadata("thread_name", kGpuPid, 0, "kernel timeline");
  double cursor = 0.0;
  w.Span("HtoD queries", "pcie", kGpuPid, 0, cursor, b.htod_seconds * 1e6,
         "");
  cursor += b.htod_seconds * 1e6;
  w.Span("kernel", "kernel", kGpuPid, 0, cursor, b.kernel_seconds * 1e6, "");
  // Stage attribution nested inside the kernel span (paper Fig 10).
  const char* stage_names[] = {"locate", "distance", "maintain"};
  const double stage_seconds[] = {b.locate_seconds, b.distance_seconds,
                                  b.maintain_seconds};
  double stage_cursor = cursor;
  for (int i = 0; i < 3; ++i) {
    w.Span(stage_names[i], "stage", kGpuPid, 0, stage_cursor,
           stage_seconds[i] * 1e6, "");
    stage_cursor += stage_seconds[i] * 1e6;
  }
  cursor += b.kernel_seconds * 1e6;
  w.Span("DtoH results", "pcie", kGpuPid, 0, cursor, b.dtoh_seconds * 1e6,
         "");

  // ---- Process 1: one thread per sampled query. ----
  constexpr int kQueryPid = 1;
  w.Metadata("process_name", kQueryPid, 0, "sampled query chains");
  for (const SearchTrace& t : traces) {
    std::string thread_name = "query " + std::to_string(t.query_id);
    w.Metadata("thread_name", kQueryPid, t.query_id, thread_name);

    const TraceStageCycles total = model.PriceTrace(t, costs);
    std::string query_args;
    // `termination` answers why a degraded query stopped (deadline /
    // cost_budget) straight from the Chrome span, no cross-referencing.
    Appendf(&query_args,
            "{\"config\":\"%s\",\"k\":%u,\"queue_size\":%u,\"hops\":%zu,"
            "\"distance_computations\":%zu,\"termination\":\"%s\","
            "\"cpu_wall_us\":",
            JsonEscape(t.config).c_str(), t.k, t.queue_size, t.Hops(),
            t.DistanceComputations(), TraceTerminationName(t.termination));
    AppendJsonNumber(&query_args, t.wall_micros);
    query_args += "}";
    w.Span(thread_name.c_str(), "query", kQueryPid, t.query_id, 0.0,
           total.Total() * us_per_cycle, query_args);

    double ts = 0.0;
    for (const TraceIterationRow& r : t.rows) {
      const TraceStageCycles it = model.PriceIteration(r, costs);
      std::string args;
      Appendf(&args,
              "{\"iteration\":%u,\"frontier\":%u,\"topk\":%u,\"visited\":%u,"
              "\"candidates\":%u}",
              r.iteration, r.frontier_size, r.topk_size, r.visited_size,
              r.candidates);
      const double stage_us[] = {it.locate * us_per_cycle,
                                 it.distance * us_per_cycle,
                                 it.maintain * us_per_cycle};
      for (int i = 0; i < 3; ++i) {
        w.Span(stage_names[i], "stage", kQueryPid, t.query_id, ts,
               stage_us[i], args);
        ts += stage_us[i];
      }
    }
  }

  std::string out = "{\n\"traceEvents\": [\n";
  out += events;
  out += "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {";
  Appendf(&out, "\"schema_version\": %d, \"gpu\": \"%s\", ",
          kTelemetrySchemaVersion, JsonEscape(model.spec().name).c_str());
  // Which host distance tier produced the traced run — traces stay
  // interpretable after the fact, when the machine they ran on is gone.
  Appendf(&out, "\"simd_tier\": \"%s\", ", SimdTierName(ActiveSimdTier()));
  Appendf(&out, "\"num_queries\": %zu, \"num_traces\": %zu, ",
          context.num_queries, traces.size());
  out += "\"kernel_seconds\": ";
  AppendJsonNumber(&out, b.kernel_seconds);
  out += ", \"locate_seconds\": ";
  AppendJsonNumber(&out, b.locate_seconds);
  out += ", \"distance_seconds\": ";
  AppendJsonNumber(&out, b.distance_seconds);
  out += ", \"maintain_seconds\": ";
  AppendJsonNumber(&out, b.maintain_seconds);
  out += ", \"htod_seconds\": ";
  AppendJsonNumber(&out, b.htod_seconds);
  out += ", \"dtoh_seconds\": ";
  AppendJsonNumber(&out, b.dtoh_seconds);
  out += "}\n}\n";
  return out;
}

std::string StatuszToJson(const StatuszContext& context) {
  std::string out = "{\n";
  Appendf(&out, "  \"schema_version\": %d,\n", kTelemetrySchemaVersion);
  Appendf(&out, "  \"command\": \"%s\",\n",
          JsonEscape(context.command).c_str());
  Appendf(&out, "  \"status\": {\"code\": %d, \"name\": \"%s\", ",
          context.status_code,
          Status::CodeSlug(static_cast<StatusCode>(context.status_code)));
  Appendf(&out, "\"message\": \"%s\"},\n",
          JsonEscape(context.status_message).c_str());
  Appendf(&out, "  \"build\": {\"describe\": \"%s\"},\n",
          JsonEscape(context.build_describe).c_str());
  Appendf(&out, "  \"simd\": {\"cpu_tier\": \"%s\", \"active_tier\": "
                "\"%s\"},\n",
          SimdTierName(CpuSimdTier()), SimdTierName(ActiveSimdTier()));

  fault::FaultRegistry& faults = fault::FaultRegistry::Global();
  Appendf(&out, "  \"fault\": {\"armed\": %s, \"spec\": \"%s\", "
                "\"injected_total\": %" PRIu64 ", \"sites\": {",
          faults.enabled() ? "true" : "false",
          JsonEscape(faults.spec()).c_str(), faults.injected_total());
  bool first = true;
  for (const auto& [site, count] : faults.InjectedCounts()) {
    if (!first) out += ", ";
    first = false;
    Appendf(&out, "\"%s\": %" PRIu64, JsonEscape(site).c_str(), count);
  }
  out += "}},\n";

  out += "  \"serve\": ";
  if (!context.serve_json.empty()) {
    out += context.serve_json;
  } else {
    out += "null";
  }
  out += ",\n";

  out += "  \"metrics\": ";
  if (context.registry != nullptr) {
    std::string metrics = MetricsToJson(*context.registry);
    while (!metrics.empty() &&
           (metrics.back() == '\n' || metrics.back() == ' ')) {
      metrics.pop_back();
    }
    out += metrics;
  } else {
    out += "null";
  }
  out += ",\n  \"flight_recorder\": ";
  if (context.flight_recorder != nullptr) {
    std::string recorder = context.flight_recorder->ToJson();
    while (!recorder.empty() &&
           (recorder.back() == '\n' || recorder.back() == ' ')) {
      recorder.pop_back();
    }
    out += recorder;
  } else {
    out += "null";
  }
  out += "\n}\n";
  return out;
}

bool WriteStringToFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    SONG_LOG(WARN) << "telemetry export: cannot open " << path
                   << " for writing: " << std::strerror(errno);
    return false;
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != content.size() || !close_ok) {
    SONG_LOG(WARN) << "telemetry export: short write to " << path;
    return false;
  }
  return true;
}

}  // namespace song::obs
