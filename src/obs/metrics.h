// Copyright 2026 The SONG-Repro Authors.
//
// Zero-dependency metrics registry: named counters, gauges and log-scale
// histograms, cheap enough to leave enabled on the search hot path. Updates
// are lock-free (relaxed atomics); only name->metric resolution takes a
// mutex, so callers resolve once and cache the returned reference.
//
// Exporters (Prometheus text / structured JSON) live in obs/exporters.h —
// this header stays a leaf so core, gpusim and baselines can all record
// into a registry without include cycles.

#ifndef SONG_OBS_METRICS_H_
#define SONG_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/sync.h"

namespace song::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins scalar (throughput, occupancy, config echoes).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-scale histogram over positive values (latencies in us, hop counts,
/// byte totals). Buckets grow geometrically by 2^(1/8) (~9% relative width),
/// covering [1e-9, 2^70) in kNumBuckets slots; values <= kMinValue land in
/// bucket 0. Observation cost: one log2 + two relaxed atomic adds.
class Histogram {
 public:
  static constexpr int kSubBucketsPerOctave = 8;
  static constexpr int kNumOctaves = 80;  // 1e-9 * 2^80 ~ 1.2e15
  static constexpr int kNumBuckets = kNumOctaves * kSubBucketsPerOctave;
  static constexpr double kMinValue = 1e-9;

  Histogram();

  void Observe(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest observed value; 0 when empty.
  double ObservedMin() const;
  double ObservedMax() const;

  /// Percentile estimate (p in [0, 100]) from the bucket counts; exact to
  /// within one bucket's relative width (~9%), clamped to the observed
  /// min/max. Returns 0 when empty.
  double Percentile(double p) const;

  /// Non-empty (upper_bound, count) pairs, ascending, for exporters.
  std::vector<std::pair<double, uint64_t>> NonEmptyBuckets() const;

  static int BucketIndex(double value);
  static double BucketUpperBound(int index);

 private:
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // valid iff count_ > 0
  std::atomic<double> max_{0.0};
};

/// Thread-safe name -> metric store. Metrics are created on first use and
/// never removed, so returned references stay valid for the registry's
/// lifetime. Names use dotted lowercase ("song.query.latency_us"); the
/// Prometheus exporter rewrites the dots.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(std::string_view name) SONG_EXCLUDES(mu_);
  Gauge& GetGauge(std::string_view name) SONG_EXCLUDES(mu_);
  Histogram& GetHistogram(std::string_view name) SONG_EXCLUDES(mu_);

  /// Sorted snapshots for exporters (pointers stay valid; values are live).
  std::vector<std::pair<std::string, const Counter*>> Counters() const
      SONG_EXCLUDES(mu_);
  std::vector<std::pair<std::string, const Gauge*>> Gauges() const
      SONG_EXCLUDES(mu_);
  std::vector<std::pair<std::string, const Histogram*>> Histograms() const
      SONG_EXCLUDES(mu_);

  /// Process-wide default registry (benches / CLI convenience).
  static MetricsRegistry& Global();

 private:
  // mu_ guards only the name -> metric maps (node-based, so references
  // returned by Get* stay valid while the maps grow); the metric values
  // themselves are lock-free atomics updated without mu_.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      SONG_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      SONG_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      SONG_GUARDED_BY(mu_);
};

}  // namespace song::obs

#endif  // SONG_OBS_METRICS_H_
