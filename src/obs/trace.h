// Copyright 2026 The SONG-Repro Authors.
//
// Per-query search traces: one row per 3-stage iteration of the SONG
// pipeline (hops, frontier size, heap/hash occupancy, distance computations
// and the per-stage counter deltas the GPU cost model prices into simulated
// kernel spans). Tracing is opt-in per query behind a deterministic 1-in-M
// sampler, so leaving it wired costs one null check per iteration.
//
// Leaf header (cstdint/string/vector only): search_core.h records into these
// structs, gpusim prices them, obs/exporters.h renders them.

#ifndef SONG_OBS_TRACE_H_
#define SONG_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/sync.h"

namespace song::obs {

/// Counter deltas and occupancy snapshot for one main-loop iteration.
/// Row 0 is the pipeline's entry initialization (one distance computation,
/// one visited insert, one queue push); rows 1..n are loop iterations.
struct TraceIterationRow {
  uint32_t iteration = 0;

  // Occupancy at the end of the iteration.
  uint32_t frontier_size = 0;  ///< priority queue (q) live entries
  uint32_t topk_size = 0;
  uint32_t visited_size = 0;   ///< visited-structure live entries

  // Stage 1 — candidate locating.
  uint32_t rows_loaded = 0;
  uint32_t q_pops = 0;
  uint32_t visited_tests = 0;

  // Stage 2 — bulk distance computation.
  uint32_t candidates = 0;     ///< stage-2 batch width
  uint32_t dist_comps = 0;

  // Stage 3 — data structure maintenance.
  uint32_t heap_pushes = 0;    ///< q pushes + evictions (heap ops)
  uint32_t topk_ops = 0;       ///< topk pushes + evictions
  uint32_t visited_inserts = 0;
  uint32_t visited_deletes = 0;
};

/// Why the main loop stopped. Anything but kConverged means the result is
/// best-so-far (the query was tagged degraded); exporters attach the name
/// to the query span so Chrome traces show why a degraded query stopped.
enum class TraceTermination : uint8_t {
  kConverged = 0,   ///< frontier ran dry (Algorithm 1's natural exit)
  kDeadline = 1,    ///< options.deadline_us expired mid-search
  kCostBudget = 2,  ///< options.cost_budget distance computations reached
};

inline const char* TraceTerminationName(TraceTermination t) {
  switch (t) {
    case TraceTermination::kConverged:
      return "converged";
    case TraceTermination::kDeadline:
      return "deadline";
    case TraceTermination::kCostBudget:
      return "cost_budget";
  }
  return "unknown";
}

/// The full trace of one sampled query.
struct SearchTrace {
  uint64_t query_id = 0;
  uint32_t k = 0;
  uint32_t queue_size = 0;
  std::string config;  ///< SongSearchOptions::Name() of the run
  double wall_micros = 0.0;
  TraceTermination termination = TraceTermination::kConverged;
  std::vector<TraceIterationRow> rows;

  size_t Hops() const { return rows.empty() ? 0 : rows.size() - 1; }
  size_t DistanceComputations() const {
    size_t total = 0;
    for (const TraceIterationRow& r : rows) total += r.dist_comps;
    return total;
  }
};

/// Deterministic 1-in-M sampler: whether query `id` is traced depends only
/// on (seed, period, id) — never on thread scheduling — so repeated runs
/// trace the same queries and tests can replay decisions exactly.
class TraceSampler {
 public:
  /// period 0 disables sampling entirely; period 1 traces every query;
  /// period M traces ~1 in M.
  TraceSampler(uint32_t period, uint64_t seed)
      : period_(period), seed_(seed) {}

  bool ShouldSample(uint64_t query_id) const {
    if (period_ == 0) return false;
    if (period_ == 1) return true;
    return Mix(seed_ ^ query_id) % period_ == 0;
  }

  uint32_t period() const { return period_; }

 private:
  // splitmix64 finalizer: full avalanche, so consecutive query ids decorrelate.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  uint32_t period_ = 0;
  uint64_t seed_ = 0;
};

/// Thread-safe sink for completed traces (batch workers append under a
/// mutex; the mutex is touched only for sampled queries).
class TraceCollector {
 public:
  explicit TraceCollector(size_t max_traces = 4096)
      : max_traces_(max_traces) {}

  /// Moves `trace` in; drops it (returning false) once the cap is reached.
  bool Add(SearchTrace&& trace) SONG_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (traces_.size() >= max_traces_) {
      ++dropped_;
      return false;
    }
    traces_.push_back(std::move(trace));
    return true;
  }

  std::vector<SearchTrace> Take() SONG_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return std::move(traces_);
  }

  size_t dropped() const SONG_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return dropped_;
  }

 private:
  mutable Mutex mu_;
  std::vector<SearchTrace> traces_ SONG_GUARDED_BY(mu_);
  size_t dropped_ SONG_GUARDED_BY(mu_) = 0;
  size_t max_traces_ = 0;  ///< immutable after construction
};

}  // namespace song::obs

#endif  // SONG_OBS_TRACE_H_
