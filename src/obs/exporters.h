// Copyright 2026 The SONG-Repro Authors.
//
// Render-side of the observability layer: serializes a MetricsRegistry to
// Prometheus text / structured JSON, and sampled SearchTraces to the Chrome
// trace_event format (load the file in chrome://tracing or
// https://ui.perfetto.dev). Chrome spans are priced through the GPU cost
// model's StageUnitCosts, so each traced query's three stage spans sum to
// the chain time the analytic model reports for it.

#ifndef SONG_OBS_EXPORTERS_H_
#define SONG_OBS_EXPORTERS_H_

#include <string>
#include <vector>

#include "gpusim/cost_model.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace song::obs {

inline constexpr int kTelemetrySchemaVersion = 1;

/// Prometheus exposition text. Dotted metric names become underscored
/// (`song.batch.qps` -> `song_batch_qps`); histograms export as summaries
/// with p50/p95/p99 quantiles plus `_sum` and `_count`.
std::string MetricsToPrometheusText(const MetricsRegistry& registry);

/// Structured JSON: {"schema_version", "counters", "gauges", "histograms"}.
/// Histogram entries carry count/sum/min/max/p50/p95/p99.
std::string MetricsToJson(const MetricsRegistry& registry);

/// Raw per-iteration trace rows as JSON (debugging / offline analysis).
std::string TracesToJson(const std::vector<SearchTrace>& traces);

/// Everything the Chrome exporter needs to turn counter rows into spans.
struct ChromeTraceContext {
  const CostModel* model = nullptr;  ///< required
  WorkloadShape shape;
  KernelBreakdown breakdown;  ///< batch-level profile (GPU timeline track)
  size_t num_queries = 0;     ///< batch size behind `breakdown`
};

/// Chrome trace_event JSON: one process for the cost model's batch kernel
/// timeline (HtoD / kernel stages / DtoH), one process with a thread per
/// sampled query whose per-iteration locate/distance/maintain spans are
/// priced via StageUnitCosts. Top-level `otherData` carries the schema
/// version, GPU name and the breakdown seconds for validators.
std::string TracesToChromeJson(const std::vector<SearchTrace>& traces,
                               const ChromeTraceContext& context);

/// Everything the --statusz one-shot dump merges. All pointers optional;
/// a null section is emitted as an explicit JSON null so validators can
/// tell "absent" from "empty".
struct StatuszContext {
  const MetricsRegistry* registry = nullptr;
  const FlightRecorder* flight_recorder = nullptr;
  std::string build_describe;  ///< git describe of the binary, "" = unknown
  std::string command;         ///< CLI command serving the dump
  int status_code = 0;         ///< StatusCode of the run as int
  std::string status_message;  ///< empty when OK
  /// Serving-tier state as a pre-rendered JSON object (SongServer::
  /// ServeStatusJson); empty = not serving, emitted as null.
  std::string serve_json;
};

/// One-shot serving-state dump: {"schema_version", "command", "status",
/// "build" (describe), "simd" (cpu/active tier), "fault" (spec, armed,
/// injected counts), "serve" (the serving tier's ServeStatusJson, null
/// when not serving), "metrics" (MetricsToJson's document), and
/// "flight_recorder" (FlightRecorder::ToJson's document).
std::string StatuszToJson(const StatuszContext& context);

/// Writes `content` to `path`; returns false (and logs through
/// SONG_LOG(WARN)) on failure.
bool WriteStringToFile(const std::string& path, const std::string& content);

}  // namespace song::obs

#endif  // SONG_OBS_EXPORTERS_H_
