// Copyright 2026 The SONG-Repro Authors.
//
// Request-lifecycle observability (ROADMAP item 1's prerequisite telemetry):
// where does a request spend its life between arrival and completion? A
// RequestTimeline carries monotonic stage stamps (enqueue -> admitted ->
// batched -> search-begin -> degraded/complete) recorded by the batch
// engine's checked TrySearch path and by single-query serving loops; the
// derived per-stage durations feed the song.req.* histograms and the
// flight-recorder records (obs/flight_recorder.h).
//
// Stage attribution telescopes: total_us is computed as the float sum
// queue_us + batch_form_us + search_us (never complete - enqueue), so
//   sum(song.req.total_us) ~= sum(queue) + sum(batch_form) + sum(search)
// holds to within per-record float rounding over any number of requests —
// the invariant tools/validate_telemetry.py enforces on --statusz dumps.
//
// Everything here is opt-in: the unchecked Search path never touches these
// types, and a null registry/recorder makes every Record call a no-op.

#ifndef SONG_OBS_REQUEST_TIMELINE_H_
#define SONG_OBS_REQUEST_TIMELINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>

#include "core/status.h"
#include "obs/metrics.h"

namespace song::obs {

/// FNV-1a over an integer, for order-insensitive-free (sequential) mixing of
/// option knobs into a request's options digest.
inline uint64_t Fnv1aMix(uint64_t h, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ull;
  }
  return h;
}

inline constexpr uint64_t kFnv1aOffset = 0xcbf29ce484222325ull;

/// Monotonic stage stamps for one request, in microseconds relative to a
/// caller-chosen epoch (the batch engine stamps against one Timer started at
/// TrySearch entry, shared read-only across worker threads).
///
///   enqueue      request arrival (TrySearch entry)
///   admitted     admission control passed (queue wait ends)
///   batched      a worker claimed the query (batch formation ends)
///   search_begin validation passed, Search is about to run
///   complete     Search returned (degraded or not) or validation rejected
struct RequestTimeline {
  double enqueue_us = 0.0;
  double admitted_us = 0.0;
  double batched_us = 0.0;
  double search_begin_us = 0.0;
  double complete_us = 0.0;

  /// Admission wait: enqueue -> admitted.
  float QueueUs() const { return Stage(enqueue_us, admitted_us); }
  /// Batch formation + worker claim + validation: admitted -> search_begin.
  float BatchFormUs() const { return Stage(admitted_us, search_begin_us); }
  /// The search itself: search_begin -> complete.
  float SearchUs() const { return Stage(search_begin_us, complete_us); }
  /// Float sum of the three stages, so per-stage histograms telescope
  /// exactly (not complete - enqueue, which would drift by rounding).
  float TotalUs() const { return QueueUs() + BatchFormUs() + SearchUs(); }

 private:
  static float Stage(double begin, double end) {
    const double d = end - begin;
    return d > 0.0 ? static_cast<float>(d) : 0.0f;
  }
};

/// One completed request, as retained by the flight recorder. Trivially
/// copyable and a multiple of 8 bytes so the lock-free ring can store it as
/// relaxed atomic words; no pointers, no allocation.
struct RequestRecord {
  uint64_t request_id = 0;
  uint64_t options_digest = 0;   ///< SongSearchOptions::Digest(k)
  uint64_t snapshot_version = 0; ///< MVCC version served, 0 = frozen index
  float queue_us = 0.0f;
  float batch_form_us = 0.0f;
  float search_us = 0.0f;
  float total_us = 0.0f;
  int32_t status_code = 0;       ///< StatusCode as int
  uint16_t shards_answered = 0;  ///< sharded runs only; 0/0 = unsharded
  uint16_t shards_total = 0;
  uint8_t degraded = 0;          ///< budget cut the search short
  uint8_t rejected = 0;          ///< validation refused the query
  uint8_t reserved[6] = {};

  StatusCode code() const { return static_cast<StatusCode>(status_code); }

  static RequestRecord Make(uint64_t request_id, uint64_t options_digest,
                            const RequestTimeline& timeline, StatusCode code,
                            bool degraded, bool rejected,
                            uint64_t snapshot_version = 0) {
    RequestRecord r;
    r.request_id = request_id;
    r.options_digest = options_digest;
    r.snapshot_version = snapshot_version;
    r.queue_us = timeline.QueueUs();
    r.batch_form_us = timeline.BatchFormUs();
    r.search_us = timeline.SearchUs();
    r.total_us = timeline.TotalUs();
    r.status_code = static_cast<int32_t>(code);
    r.degraded = degraded ? 1 : 0;
    r.rejected = rejected ? 1 : 0;
    return r;
  }
};

static_assert(std::is_trivially_copyable_v<RequestRecord>,
              "the flight recorder memcpys records into atomic words");
static_assert(sizeof(RequestRecord) % sizeof(uint64_t) == 0,
              "record must tile into 8-byte ring words");

inline constexpr size_t kRequestRecordWords =
    sizeof(RequestRecord) / sizeof(uint64_t);

/// Number of distinct StatusCode values (kOk..kUnavailable). Kept in sync
/// with core/status.h by the switch in Status::CodeSlug.
inline constexpr int kNumStatusCodes =
    static_cast<int>(StatusCode::kUnavailable) + 1;

/// Resolves the song.req.* metric family once and records per-request stage
/// durations plus outcome counters (song.req.outcome.<slug>). Construction
/// takes the registry mutex a handful of times; Record is lock-free (the
/// outcome counters resolve lazily, once per observed status code). A null
/// registry makes every call a no-op.
class RequestMetrics {
 public:
  explicit RequestMetrics(MetricsRegistry* registry) : registry_(registry) {
    if (registry_ == nullptr) return;
    queue_us_ = &registry_->GetHistogram("song.req.queue_us");
    batch_form_us_ = &registry_->GetHistogram("song.req.batch_form_us");
    search_us_ = &registry_->GetHistogram("song.req.search_us");
    total_us_ = &registry_->GetHistogram("song.req.total_us");
  }

  bool enabled() const { return registry_ != nullptr; }

  void Record(const RequestRecord& r) const {
    if (registry_ == nullptr) return;
    queue_us_->Observe(static_cast<double>(r.queue_us));
    batch_form_us_->Observe(static_cast<double>(r.batch_form_us));
    search_us_->Observe(static_cast<double>(r.search_us));
    total_us_->Observe(static_cast<double>(r.total_us));
    Outcome(r.code()).Increment();
  }

 private:
  Counter& Outcome(StatusCode code) const {
    int idx = static_cast<int>(code);
    if (idx < 0 || idx >= kNumStatusCodes) idx = 0;
    Counter* c = outcomes_[idx].load(std::memory_order_acquire);
    if (c == nullptr) {
      // GetCounter is idempotent, so a racing double-resolve is benign.
      c = &registry_->GetCounter(std::string("song.req.outcome.") +
                                 Status::CodeSlug(static_cast<StatusCode>(
                                     idx)));
      outcomes_[idx].store(c, std::memory_order_release);
    }
    return *c;
  }

  MetricsRegistry* registry_ = nullptr;
  Histogram* queue_us_ = nullptr;
  Histogram* batch_form_us_ = nullptr;
  Histogram* search_us_ = nullptr;
  Histogram* total_us_ = nullptr;
  mutable std::atomic<Counter*> outcomes_[kNumStatusCodes] = {};
};

class FlightRecorder;  // obs/flight_recorder.h

/// Sink bundle for single-query serving paths (SongSearcher::TrySearch /
/// IndexSnapshot::TrySearch). The caller owns stamping of the pre-search
/// stages (queue_us / batch_form_us); the searcher measures search_us,
/// composes the RequestRecord and emits it to both sinks. Either sink may
/// be null.
struct RequestObserver {
  const RequestMetrics* metrics = nullptr;
  FlightRecorder* recorder = nullptr;
  uint64_t request_id = 0;
  uint64_t snapshot_version = 0;  ///< filled by IndexSnapshot::TrySearch
  float queue_us = 0.0f;
  float batch_form_us = 0.0f;
};

/// Composes and emits one RequestRecord for a single-query serving call:
/// the pre-search stages come from the observer's stamps, the search stage
/// from `search_us` (0 for a validation rejection). No-op for null sinks.
/// Defined in flight_recorder.cc (needs the recorder's full type).
void EmitRequestRecord(const RequestObserver& observer,
                       uint64_t options_digest, float search_us,
                       StatusCode code, bool degraded, bool rejected);

}  // namespace song::obs

#endif  // SONG_OBS_REQUEST_TIMELINE_H_
