#include "obs/flight_recorder.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "core/status.h"

namespace song::obs {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(RoundUpPow2(capacity < 2 ? 2 : capacity)),
      mask_(capacity_ - 1),
      slots_(new Slot[capacity_]) {}

// The recorder's write path: wait-free and allocation/log-free so it is
// safe on the search hot path. song_lint.py rule `hot-path` rejects any
// heap allocation, logging, or string construction inside this region.
// song-lint: begin-hot-path(flight-recorder-record)
void FlightRecorder::Record(const RequestRecord& record) noexcept {
  const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];

  uint64_t words[kRequestRecordWords];
  std::memcpy(words, &record, sizeof(record));

  // Seqlock write: mark the slot in progress, publish the payload, mark it
  // complete. The payload words are relaxed atomics, so a concurrent reader
  // observes either consistent values (validated by the seq re-check) or a
  // detectable in-progress/overwritten seq — never a data race.
  SeqWriteBegin(slot, ticket);
  for (size_t i = 0; i < kRequestRecordWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  SeqWriteEnd(slot, ticket);
}
// song-lint: end-hot-path

bool FlightRecorder::TryRead(uint64_t ticket, RequestRecord* out) const {
  const Slot& slot = slots_[ticket & mask_];
  const uint64_t want = 2 * ticket + 2;
  for (int attempt = 0; attempt < 4; ++attempt) {
    const uint64_t before = SeqReadBegin(slot);
    if (before != want) return false;  // not yet written, or overwritten
    uint64_t words[kRequestRecordWords];
    for (size_t i = 0; i < kRequestRecordWords; ++i) {
      words[i] = slot.words[i].load(std::memory_order_relaxed);
    }
    if (SeqReadValidate(slot, want)) {
      std::memcpy(out, words, sizeof(*out));
      return true;
    }
  }
  return false;
}

std::vector<RequestRecord> FlightRecorder::Snapshot() const {
  const uint64_t end = next_.load(std::memory_order_acquire);
  const uint64_t begin = end > capacity_ ? end - capacity_ : 0;
  std::vector<RequestRecord> out;
  out.reserve(static_cast<size_t>(end - begin));
  for (uint64_t ticket = begin; ticket < end; ++ticket) {
    RequestRecord r;
    if (TryRead(ticket, &r)) out.push_back(r);
  }
  return out;
}

std::string FlightRecorder::ToJson() const {
  const std::vector<RequestRecord> records = Snapshot();
  std::string out = "{\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"schema_version\": 1,\n  \"capacity\": %zu,\n"
                "  \"total_recorded\": %" PRIu64 ",\n  \"records\": [",
                capacity_, total_recorded());
  out += buf;
  bool first = true;
  for (const RequestRecord& r : records) {
    if (!first) out += ",";
    first = false;
    std::snprintf(
        buf, sizeof(buf),
        "\n    {\"request_id\": %" PRIu64
        ", \"options_digest\": \"0x%016" PRIx64 "\", "
        "\"snapshot_version\": %" PRIu64
        ", \"queue_us\": %.6g, \"batch_form_us\": %.6g, "
        "\"search_us\": %.6g, \"total_us\": %.6g, "
        "\"status\": \"%s\", \"status_code\": %d, "
        "\"degraded\": %s, \"rejected\": %s, "
        "\"shards_answered\": %u, \"shards_total\": %u}",
        r.request_id, r.options_digest, r.snapshot_version,
        static_cast<double>(r.queue_us), static_cast<double>(r.batch_form_us),
        static_cast<double>(r.search_us), static_cast<double>(r.total_us),
        Status::CodeSlug(r.code()), r.status_code,
        r.degraded ? "true" : "false", r.rejected ? "true" : "false",
        r.shards_answered, r.shards_total);
    out += buf;
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

void EmitRequestRecord(const RequestObserver& observer,
                       uint64_t options_digest, float search_us,
                       StatusCode code, bool degraded, bool rejected) {
  if (observer.metrics == nullptr && observer.recorder == nullptr) return;
  RequestTimeline tl;
  tl.enqueue_us = 0.0;
  tl.admitted_us = static_cast<double>(observer.queue_us);
  tl.batched_us = tl.admitted_us;
  tl.search_begin_us =
      tl.admitted_us + static_cast<double>(observer.batch_form_us);
  tl.complete_us = tl.search_begin_us + static_cast<double>(search_us);
  const RequestRecord rec =
      RequestRecord::Make(observer.request_id, options_digest, tl, code,
                          degraded, rejected, observer.snapshot_version);
  if (observer.metrics != nullptr) observer.metrics->Record(rec);
  if (observer.recorder != nullptr) observer.recorder->Record(rec);
}

}  // namespace song::obs
