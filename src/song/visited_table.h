// Copyright 2026 The SONG-Repro Authors.
//
// Unified facade over the three `visited` structures the paper evaluates
// (open-addressing hash table, Bloom filter, Cuckoo filter), with the exact
// false-positive / false-negative semantics the search relies on: Test may
// report a false "visited" (costs a little recall), never a false
// "unvisited".

#ifndef SONG_SONG_VISITED_TABLE_H_
#define SONG_SONG_VISITED_TABLE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/logging.h"
#include "core/status.h"
#include "song/bloom_filter.h"
#include "song/cuckoo_filter.h"
#include "song/open_addressing_set.h"

namespace song {

enum class VisitedStructure {
  kHashTable = 0,
  kBloomFilter = 1,
  kCuckooFilter = 2,
  /// CPU-only specialization: an epoch-stamped dense array (one u32 per
  /// dataset point). O(1) test/insert/erase with no hashing and no
  /// clearing cost between queries — the "heavily engineered" CPU build of
  /// the paper's §VIII-I uses exactly this kind of structure. Not a GPU
  /// candidate (it needs 4*n bytes of random-access memory per query).
  kEpochArray = 3,
};

inline const char* VisitedStructureName(VisitedStructure s) {
  switch (s) {
    case VisitedStructure::kHashTable:
      return "hashtable";
    case VisitedStructure::kBloomFilter:
      return "bloomfilter";
    case VisitedStructure::kCuckooFilter:
      return "cuckoofilter";
    case VisitedStructure::kEpochArray:
      return "epocharray";
  }
  return "unknown";
}

class VisitedTable {
 public:
  VisitedTable() = default;

  /// `capacity`: number of keys the structure must support. For the Bloom
  /// filter, `bloom_bits` overrides the bit budget (0 -> the paper's ~300
  /// u32 = 9600 bits). When the shape is unchanged from the previous query
  /// the allocation is reused and only cleared — per-query reallocation
  /// would dominate the CPU pipeline (and a real kernel reuses its fixed
  /// shared-memory region the same way).
  /// Checked admission for externally supplied capacities (query options,
  /// deserialized configs): rejects sizes past the per-query admission
  /// limit with kResourceExhausted instead of attempting the allocation.
  Status TryReset(VisitedStructure structure, size_t capacity,
                  size_t bloom_bits = 0) {
    if (capacity > OpenAddressingSet::kMaxCapacity) {
      return Status::ResourceExhausted(
          "visited capacity " + std::to_string(capacity) +
          " exceeds the admission limit " +
          std::to_string(OpenAddressingSet::kMaxCapacity));
    }
    if (structure == VisitedStructure::kBloomFilter &&
        bloom_bits > 8 * OpenAddressingSet::kMaxCapacity) {
      return Status::ResourceExhausted("bloom bit budget " +
                                       std::to_string(bloom_bits) +
                                       " exceeds the admission limit");
    }
    Reset(structure, capacity, bloom_bits);
    return Status::OK();
  }

  void Reset(VisitedStructure structure, size_t capacity,
             size_t bloom_bits = 0) {
    if (structure == structure_ && capacity == last_capacity_ &&
        bloom_bits == last_bloom_bits_) {
      Clear();
      return;
    }
    structure_ = structure;
    last_capacity_ = capacity;
    last_bloom_bits_ = bloom_bits;
    switch (structure_) {
      case VisitedStructure::kHashTable:
        hash_.Reset(capacity);
        break;
      case VisitedStructure::kBloomFilter:
        bloom_.Reset(bloom_bits == 0 ? 9600 : bloom_bits);
        break;
      case VisitedStructure::kCuckooFilter:
        cuckoo_.Reset(capacity);
        break;
      case VisitedStructure::kEpochArray:
        if (stamps_.size() < capacity) stamps_.assign(capacity, 0);
        epoch_size_ = 0;
        NextEpoch();
        break;
    }
  }

  void Clear() {
    switch (structure_) {
      case VisitedStructure::kHashTable:
        hash_.Clear();
        break;
      case VisitedStructure::kBloomFilter:
        bloom_.Clear();
        break;
      case VisitedStructure::kCuckooFilter:
        cuckoo_.Clear();
        break;
      case VisitedStructure::kEpochArray:
        epoch_size_ = 0;
        NextEpoch();
        break;
    }
  }

  bool Test(idx_t key) const {
    switch (structure_) {
      case VisitedStructure::kHashTable:
        return hash_.Contains(key);
      case VisitedStructure::kBloomFilter:
        return bloom_.Contains(key);
      case VisitedStructure::kCuckooFilter:
        return cuckoo_.Contains(key);
      case VisitedStructure::kEpochArray:
        return key < stamps_.size() && stamps_[key] == epoch_;
    }
    return false;
  }

  /// Marks `key` visited. A failed insert (saturated structure) is treated
  /// upstream as "visited" to preserve the no-false-negative contract.
  bool Insert(idx_t key) {
    switch (structure_) {
      case VisitedStructure::kHashTable:
        return hash_.Insert(key);
      case VisitedStructure::kBloomFilter:
        bloom_.Insert(key);
        return true;
      case VisitedStructure::kCuckooFilter:
        return cuckoo_.Insert(key);
      case VisitedStructure::kEpochArray:
        if (key >= stamps_.size() || stamps_[key] == epoch_) return false;
        stamps_[key] = epoch_;
        ++epoch_size_;
        return true;
    }
    return false;
  }

  /// True if the structure supports deletion (visited-deletion optimization).
  bool SupportsDeletion() const {
    return structure_ != VisitedStructure::kBloomFilter;
  }

  void Erase(idx_t key) {
    switch (structure_) {
      case VisitedStructure::kHashTable:
        hash_.Erase(key);
        break;
      case VisitedStructure::kBloomFilter:
        SONG_CHECK_MSG(false, "Bloom filter does not support deletion");
        break;
      case VisitedStructure::kCuckooFilter:
        cuckoo_.Erase(key);
        break;
      case VisitedStructure::kEpochArray:
        if (key < stamps_.size() && stamps_[key] == epoch_) {
          stamps_[key] = 0;
          --epoch_size_;
        }
        break;
    }
  }

  size_t MemoryBytes() const {
    switch (structure_) {
      case VisitedStructure::kHashTable:
        return hash_.MemoryBytes();
      case VisitedStructure::kBloomFilter:
        return bloom_.MemoryBytes();
      case VisitedStructure::kCuckooFilter:
        return cuckoo_.MemoryBytes();
      case VisitedStructure::kEpochArray:
        return stamps_.size() * sizeof(uint32_t);
    }
    return 0;
  }

  size_t size() const {
    switch (structure_) {
      case VisitedStructure::kHashTable:
        return hash_.size();
      case VisitedStructure::kBloomFilter:
        return bloom_.size();
      case VisitedStructure::kCuckooFilter:
        return cuckoo_.size();
      case VisitedStructure::kEpochArray:
        return epoch_size_;
    }
    return 0;
  }

  VisitedStructure structure() const { return structure_; }

 private:
  void NextEpoch() {
    if (++epoch_ == 0) {
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
  }

  VisitedStructure structure_ = VisitedStructure::kHashTable;
  size_t last_capacity_ = ~size_t{0};
  size_t last_bloom_bits_ = ~size_t{0};
  OpenAddressingSet hash_;
  BloomFilter bloom_;
  CuckooFilter cuckoo_;
  std::vector<uint32_t> stamps_;
  uint32_t epoch_ = 0;
  size_t epoch_size_ = 0;
};

}  // namespace song

#endif  // SONG_SONG_VISITED_TABLE_H_
