#include "song/index_snapshot.h"

#include <algorithm>

#include "core/logging.h"

namespace song {

IndexSnapshot::IndexSnapshot(std::shared_ptr<const Dataset> data,
                             std::shared_ptr<const FixedDegreeGraph> graph,
                             std::shared_ptr<const std::vector<uint8_t>> tombstones,
                             Metric metric, idx_t entry, uint64_t version)
    : data_(std::move(data)),
      graph_(std::move(graph)),
      tombstones_(std::move(tombstones)),
      metric_(metric),
      entry_(entry),
      version_(version) {
  SONG_CHECK(data_ != nullptr && graph_ != nullptr && tombstones_ != nullptr);
  SONG_CHECK(tombstones_->size() == data_->num());
  SONG_CHECK(graph_->num_vertices() == data_->num());
  live_points_ = static_cast<size_t>(
      std::count(tombstones_->begin(), tombstones_->end(), uint8_t{0}));
  if (data_->num() > 0) {
    SONG_CHECK(entry_ < data_->num());
    searcher_.emplace(data_.get(), graph_.get(), metric_, entry_);
  }
}

size_t IndexSnapshot::CompensatedK(size_t k) const {
  return std::min(num_points(), k + tombstone_count());
}

std::vector<Neighbor> IndexSnapshot::Search(const float* query, size_t k,
                                            const SongSearchOptions& options,
                                            SongWorkspace* workspace,
                                            SearchStats* stats,
                                            bool* degraded) const {
  if (degraded != nullptr) *degraded = false;
  if (k == 0 || live_points_ == 0 || !searcher_.has_value()) return {};
  const size_t k_eff = CompensatedK(k);
  std::vector<Neighbor> raw =
      searcher_->Search(query, k_eff, options, workspace, stats,
                        /*trace=*/nullptr, degraded);
  if (tombstone_count() == 0) {
    // k_eff == k and nothing to filter: the frozen path returns the searcher
    // output untouched (the strict no-op contract).
    return raw;
  }
  std::vector<Neighbor> out;
  out.reserve(std::min(k, raw.size()));
  for (const Neighbor& n : raw) {
    if ((*tombstones_)[n.id] != 0) continue;
    out.push_back(n);
    if (out.size() == k) break;
  }
  return out;
}

StatusOr<std::vector<Neighbor>> IndexSnapshot::TrySearch(
    const float* query, size_t k, const SongSearchOptions& options,
    SongWorkspace* workspace, SearchStats* stats, bool* degraded,
    const obs::RequestObserver* observer) const {
  // Stamp this snapshot's MVCC version into any emitted record; the
  // caller's observer identifies the request, the snapshot identifies the
  // index state it was served from.
  obs::RequestObserver versioned;
  if (observer != nullptr) {
    versioned = *observer;
    versioned.snapshot_version = version_;
  }
  auto emit = [&](float search_us, StatusCode code, bool was_degraded,
                  bool was_rejected) {
    if (observer == nullptr) return;
    obs::EmitRequestRecord(versioned, options.Digest(k), search_us, code,
                           was_degraded, was_rejected);
  };

  if (k == 0) {
    Status status = Status::InvalidArgument("k must be >= 1");
    emit(0.0f, status.code(), /*degraded=*/false, /*rejected=*/true);
    return status;
  }
  if (live_points_ == 0 || !searcher_.has_value()) {
    if (degraded != nullptr) *degraded = false;
    emit(0.0f, StatusCode::kOk, /*degraded=*/false, /*rejected=*/false);
    return std::vector<Neighbor>{};
  }
  const Status vs =
      searcher_->ValidateRequest(query, CompensatedK(k), options);
  if (!vs.ok()) {
    emit(0.0f, vs.code(), /*degraded=*/false, /*rejected=*/true);
    return vs;
  }
  bool local_degraded = false;
  Timer search_timer;
  std::vector<Neighbor> result =
      Search(query, k, options, workspace, stats, &local_degraded);
  emit(static_cast<float>(search_timer.ElapsedMicros()), StatusCode::kOk,
       local_degraded, /*rejected=*/false);
  if (degraded != nullptr) *degraded = local_degraded;
  return result;
}

}  // namespace song
