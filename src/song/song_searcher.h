// Copyright 2026 The SONG-Repro Authors.
//
// The SONG search pipeline (paper §III–§VI) over dense float vectors:
// Algorithm 1 decoupled into three stages per iteration —
//   1. candidate locating      (pop best vertices, gather unvisited
//                               neighbors from the fixed-degree graph)
//   2. bulk distance computation (batched distances, the GPU warp-reduction
//                               stage; on CPU a tight loop over candidates)
//   3. data structure maintenance (bounded queues + visited updates by a
//                               single logical thread)
// with the bounded-queue (§IV-C), selected-insertion (§IV-D) and
// visited-deletion (§IV-E) optimizations and the multi-query / multi-step
// probing parameters (§V). The distance-agnostic core lives in
// song/search_core.h; per-stage work counters feed the GPU cost model in
// src/gpusim.

#ifndef SONG_SONG_SONG_SEARCHER_H_
#define SONG_SONG_SONG_SEARCHER_H_

#include <memory>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/status.h"
#include "core/types.h"
#include "graph/fixed_degree_graph.h"
#include "obs/request_timeline.h"
#include "quant/pq.h"
#include "quant/pq_distance.h"
#include "song/search_core.h"
#include "song/search_options.h"

namespace song {

class SongSearcher {
 public:
  /// `data` and `graph` must outlive the searcher. `entry` is the default
  /// starting vertex of Algorithm 1.
  SongSearcher(const Dataset* data, const FixedDegreeGraph* graph,
               Metric metric, idx_t entry = 0);

  /// Top-k search for one query. `workspace` may be shared across calls on
  /// the same thread; `stats` (optional) accumulates work counters; `trace`
  /// (optional) records a per-iteration obs::SearchTrace for this query;
  /// `degraded` (optional) is set when a deadline/cost budget cut the
  /// search short and the result is best-so-far rather than converged.
  std::vector<Neighbor> Search(const float* query, size_t k,
                               const SongSearchOptions& options,
                               SongWorkspace* workspace,
                               SearchStats* stats = nullptr,
                               obs::SearchTrace* trace = nullptr,
                               bool* degraded = nullptr) const;

  /// Convenience overload owning a transient workspace.
  std::vector<Neighbor> Search(const float* query, size_t k,
                               const SongSearchOptions& options,
                               SearchStats* stats = nullptr) const;

  /// Largest admissible effective queue size (ef). Guards the fixed
  /// per-query allocations against corrupt or hostile option values.
  static constexpr size_t kMaxQueueSize = size_t{1} << 22;

  /// Rejects queries the pipeline cannot serve meaningfully: null or
  /// containing NaN/Inf components (distances would be poisoned and the
  /// bounded-heap ordering undefined).
  Status ValidateQuery(const float* query) const;

  /// Validates a full request (query payload + option sanity + capacity
  /// admission) before touching any per-query structure.
  Status ValidateRequest(const float* query, size_t k,
                         const SongSearchOptions& options) const;

  /// Checked search: runs ValidateRequest, then Search. Never aborts on
  /// malformed input; a budget-terminated search still succeeds and sets
  /// `*degraded`. When `observer` is non-null the request's lifecycle is
  /// recorded to its metrics/flight-recorder sinks: the searcher measures
  /// the search stage itself, adopts the caller-stamped queue/batch_form
  /// stages, and emits one RequestRecord whether the request was served,
  /// degraded, or rejected by validation. A null observer leaves this path
  /// stamp-free and bit-identical to the pre-observability behavior.
  StatusOr<std::vector<Neighbor>> TrySearch(
      const float* query, size_t k, const SongSearchOptions& options,
      SongWorkspace* workspace, SearchStats* stats = nullptr,
      obs::SearchTrace* trace = nullptr, bool* degraded = nullptr,
      const obs::RequestObserver* observer = nullptr) const;

  /// Installs a new-id -> old-id mapping applied to result ids at emit
  /// time. Used with reordered indexes (graph/reorder.h): the searcher runs
  /// over relabeled vertices but callers still see original dataset ids.
  /// Pass an empty vector to clear. Size must equal data().num() otherwise.
  void SetResultIdMap(std::vector<idx_t> new_to_old);

  // --- Quantized traversal (options.quant == kPq). -------------------------

  /// Trains a PQ codebook on the index dataset and encodes every row; after
  /// an OK return, searches with options.quant == kPq traverse Stage 2 over
  /// the m-byte codes via a per-query ADC table, then rerank the final pool
  /// with exact distances. Searches with quant == kNone stay bit-identical
  /// to a searcher that never called this. Supported metrics: kL2 and
  /// kInnerProduct (kCosine is rejected — ADC tables have no cosine form).
  Status EnablePq(const PqOptions& pq_options);

  /// Adopts a pre-trained codebook (e.g. ProductQuantizer::Load of a .sngq
  /// file) and encodes the dataset with it. The codebook dim must match.
  Status EnablePq(ProductQuantizer pq);

  bool pq_enabled() const { return pq_dist_ != nullptr; }
  const PqBatchDistance* pq_distance() const { return pq_dist_.get(); }

  /// The exact-rerank pool size a (k, options) search rescores: clamp of
  /// options.rerank_depth (auto when 0) to [k, effective queue size].
  static size_t RerankPoolSize(size_t k, const SongSearchOptions& options);

  const Dataset& data() const { return *data_; }
  const FixedDegreeGraph& graph() const { return *graph_; }
  Metric metric() const { return metric_; }
  idx_t entry() const { return entry_; }
  const std::vector<idx_t>& result_id_map() const { return result_id_map_; }

 private:
  /// The PQ traversal: ADC-scored SongSearchCore over the rerank pool,
  /// followed by the exact-distance rescoring of that pool.
  std::vector<Neighbor> SearchPq(const float* query, size_t k,
                                 const SongSearchOptions& options,
                                 SongWorkspace* workspace, SearchStats* stats,
                                 obs::SearchTrace* trace,
                                 bool* degraded) const;

  const Dataset* data_;
  const FixedDegreeGraph* graph_;
  Metric metric_;
  idx_t entry_;
  BatchDistance batch_dist_;         ///< fused Stage 2 kernel + cached norms
  std::vector<idx_t> result_id_map_; ///< new -> old, empty = identity
  std::unique_ptr<PqBatchDistance> pq_dist_;  ///< null until EnablePq
};

}  // namespace song

#endif  // SONG_SONG_SONG_SEARCHER_H_
