// Copyright 2026 The SONG-Repro Authors.
//
// Maximum inner product search (MIPS) support. The paper's related-work
// section (§IX) notes that "the recent MIPS method [Zhou et al., NeurIPS
// 2019] has adopted SONG as the underlying algorithm" — that method builds
// the proximity graph over Möbius-transformed points (x -> x / ||x||^2) so
// that graph neighbors approximate inner-product neighbors, then searches
// with the negated inner product against the ORIGINAL vectors.
//
// Two MIPS routes are supported here:
//   1. direct: build the NSW graph with Metric::kInnerProduct (works, but
//      IP is not a metric — graph quality suffers on skewed norms);
//   2. Möbius: MobiusTransform() the data, build an L2 graph over the
//      transformed points, search that graph with kInnerProduct distances
//      via SongSearcher on the original data (same topology, IP scoring).

#ifndef SONG_SONG_MIPS_H_
#define SONG_SONG_MIPS_H_

#include <cmath>

#include "core/dataset.h"

namespace song {

/// Möbius transformation: x -> x / ||x||^2. Zero vectors map to zero.
inline Dataset MobiusTransform(const Dataset& data) {
  Dataset out(data.num(), data.dim());
  const size_t dim = data.dim();
  std::vector<float> row(dim);
  for (size_t i = 0; i < data.num(); ++i) {
    const float* src = data.Row(static_cast<idx_t>(i));
    double norm_sq = 0.0;
    for (size_t d = 0; d < dim; ++d) norm_sq += double{src[d]} * src[d];
    const float inv =
        norm_sq > 0.0 ? static_cast<float>(1.0 / norm_sq) : 0.0f;
    for (size_t d = 0; d < dim; ++d) row[d] = src[d] * inv;
    out.SetRow(static_cast<idx_t>(i), row.data());
  }
  return out;
}

}  // namespace song

#endif  // SONG_SONG_MIPS_H_
