// Copyright 2026 The SONG-Repro Authors.
//
// Cuckoo filter (Fan et al., CoNEXT 2014): the probabilistic visited-set
// alternative that supports deletion, which the paper picks to validate the
// visited-deletion optimization (§IV-E) — a Bloom filter cannot delete.
// Partial-key cuckoo hashing: 16-bit fingerprints, buckets of 4, the second
// bucket derived as i2 = i1 ^ hash(fingerprint).

#ifndef SONG_SONG_CUCKOO_FILTER_H_
#define SONG_SONG_CUCKOO_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/random.h"
#include "core/types.h"

namespace song {

class CuckooFilter {
 public:
  static constexpr size_t kBucketSize = 4;
  static constexpr size_t kMaxKicks = 256;

  /// `capacity` = number of keys to hold; bucket count is the next power of
  /// two with ~84% max load headroom.
  explicit CuckooFilter(size_t capacity = 64) { Reset(capacity); }

  void Reset(size_t capacity) {
    size_t buckets = 4;
    while (buckets * kBucketSize * 84 / 100 < capacity) buckets <<= 1;
    buckets_.assign(buckets * kBucketSize, kEmptyFp);
    bucket_mask_ = buckets - 1;
    size_ = 0;
    kick_state_ = 0x243f6a8885a308d3ULL;
  }

  void Clear() {
    std::fill(buckets_.begin(), buckets_.end(), kEmptyFp);
    size_ = 0;
  }

  size_t size() const { return size_; }
  size_t MemoryBytes() const { return buckets_.size() * sizeof(uint16_t); }

  bool Contains(idx_t key) const {
    const uint16_t fp = Fingerprint(key);
    const size_t i1 = IndexHash(key);
    if (BucketHas(i1, fp)) return true;
    const size_t i2 = AltIndex(i1, fp);
    return BucketHas(i2, fp);
  }

  /// Inserts `key`. Returns false when the filter is saturated (insert
  /// failed after kMaxKicks evictions) — callers treat this like a false
  /// positive: the vertex is considered visited.
  bool Insert(idx_t key) {
    uint16_t fp = Fingerprint(key);
    const size_t i1 = IndexHash(key);
    if (PlaceInBucket(i1, fp)) {
      ++size_;
      return true;
    }
    const size_t i2 = AltIndex(i1, fp);
    if (PlaceInBucket(i2, fp)) {
      ++size_;
      return true;
    }
    // Kick a random resident fingerprint to its alternate bucket.
    size_t i = (SplitMix64(kick_state_) & 1) != 0 ? i1 : i2;
    for (size_t kick = 0; kick < kMaxKicks; ++kick) {
      const size_t victim_slot =
          i * kBucketSize + (SplitMix64(kick_state_) % kBucketSize);
      std::swap(fp, buckets_[victim_slot]);
      i = AltIndex(i, fp);
      if (PlaceInBucket(i, fp)) {
        ++size_;
        return true;
      }
    }
    // Saturated: put the homeless fingerprint back is impossible; report
    // failure (one prior key now has a single-bucket copy, which only makes
    // Contains MORE likely to answer true — still no false negatives).
    return false;
  }

  /// Deletes one copy of `key`'s fingerprint. Returns true if found.
  bool Erase(idx_t key) {
    const uint16_t fp = Fingerprint(key);
    const size_t i1 = IndexHash(key);
    if (RemoveFromBucket(i1, fp)) {
      --size_;
      return true;
    }
    const size_t i2 = AltIndex(i1, fp);
    if (RemoveFromBucket(i2, fp)) {
      --size_;
      return true;
    }
    return false;
  }

 private:
  static constexpr uint16_t kEmptyFp = 0;

  static uint64_t Mix(uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  }

  static uint16_t Fingerprint(idx_t key) {
    const uint16_t fp = static_cast<uint16_t>(Mix(uint64_t{key} + 1) & 0xffff);
    return fp == kEmptyFp ? 1 : fp;  // reserve 0 for "empty"
  }

  size_t IndexHash(idx_t key) const {
    return static_cast<size_t>(Mix(uint64_t{key} * 0x517cc1b727220a95ULL)) &
           bucket_mask_;
  }

  size_t AltIndex(size_t index, uint16_t fp) const {
    return (index ^ static_cast<size_t>(Mix(fp))) & bucket_mask_;
  }

  bool BucketHas(size_t bucket, uint16_t fp) const {
    const uint16_t* b = &buckets_[bucket * kBucketSize];
    for (size_t s = 0; s < kBucketSize; ++s) {
      if (b[s] == fp) return true;
    }
    return false;
  }

  bool PlaceInBucket(size_t bucket, uint16_t fp) {
    uint16_t* b = &buckets_[bucket * kBucketSize];
    for (size_t s = 0; s < kBucketSize; ++s) {
      if (b[s] == kEmptyFp) {
        b[s] = fp;
        return true;
      }
    }
    return false;
  }

  bool RemoveFromBucket(size_t bucket, uint16_t fp) {
    uint16_t* b = &buckets_[bucket * kBucketSize];
    for (size_t s = 0; s < kBucketSize; ++s) {
      if (b[s] == fp) {
        b[s] = kEmptyFp;
        return true;
      }
    }
    return false;
  }

  std::vector<uint16_t> buckets_;
  size_t bucket_mask_ = 0;
  size_t size_ = 0;
  uint64_t kick_state_ = 0;
};

}  // namespace song

#endif  // SONG_SONG_CUCKOO_FILTER_H_
