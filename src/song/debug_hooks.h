// Copyright 2026 The SONG-Repro Authors.
//
// Test-only fault-injection hooks. The differential harness in tests/harness/
// proves its own sensitivity by flipping these flags and asserting that the
// oracle comparison detects the planted bug (see tests/harness/selftest_test.cc
// and docs/testing.md). Every hook defaults to off and must stay off outside
// the harness self-test; the guarded branches are trivially predictable and
// cost nothing on the hot paths.

#ifndef SONG_SONG_DEBUG_HOOKS_H_
#define SONG_SONG_DEBUG_HOOKS_H_

namespace song::hooks {

/// Planted mutation A: SymmetricMinMaxHeap::BubbleUp stops its grandparent
/// sift loop one level early, so deep inserts can violate the heap invariant
/// (Min()/Max() silently wrong — the classic "recall degrades, nothing
/// crashes" failure mode).
inline bool smmh_sift_off_by_one = false;

/// Planted mutation B: OpenAddressingSet::Reset sizes the slot array to the
/// next power of two >= capacity/2 instead of >= 2*capacity (a dropped
/// doubling), so the table saturates long before its declared element
/// capacity and the search starts treating unvisited vertices as visited.
inline bool hash_set_skip_growth = false;

/// Planted mutation C: MutableIndex::Insert skips the reverse-link step, so
/// a newly inserted vertex keeps its out-edges but gains no in-edges — it is
/// unreachable from the entry point and silently never returned (the online-
/// mutation analogue of mutation A's "recall degrades, nothing crashes").
/// The mutation differential harness must catch this via its post-insert
/// reachability probe (tests/harness/selftest_test.cc).
inline bool mutation_drop_reverse_links = false;

/// RAII guard so a failing self-test cannot leak an enabled fault into
/// subsequent tests.
class ScopedFault {
 public:
  explicit ScopedFault(bool* flag) : flag_(flag) { *flag_ = true; }
  ~ScopedFault() { *flag_ = false; }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  bool* flag_;
};

}  // namespace song::hooks

#endif  // SONG_SONG_DEBUG_HOOKS_H_
