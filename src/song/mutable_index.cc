#include "song/mutable_index.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "core/logging.h"
#include "graph/nsw_builder.h"
#include "song/debug_hooks.h"

namespace song {

MutableIndex::MutableIndex(Metric metric, size_t dim,
                           MutableIndexOptions options,
                           obs::MetricsRegistry* registry)
    : metric_(metric), dim_(dim), options_(options) {
  MutexLock writer(writer_mu_);
  SONG_CHECK_MSG(dim_ > 0, "MutableIndex requires dim > 0");
  SONG_CHECK_MSG(options_.degree > 0, "MutableIndex requires degree > 0");
  if (registry != nullptr) {
    inserts_ = &registry->GetCounter("song.index.inserts");
    deletes_ = &registry->GetCounter("song.index.deletes");
    reclaimed_ = &registry->GetCounter("song.index.snapshots_reclaimed");
    live_points_gauge_ = &registry->GetGauge("song.index.live_points");
    versions_gauge_ = &registry->GetGauge("song.index.snapshot_versions");
    retired_gauge_ = &registry->GetGauge("song.index.retired_snapshots");
  }
  // Version 0: the empty snapshot, so Acquire() is always valid.
  {
    WriterLock snap(snapshot_mu_);
    current_ = std::make_shared<IndexSnapshot>(
        std::make_shared<Dataset>(0, dim_),
        std::make_shared<FixedDegreeGraph>(0, options_.degree),
        std::make_shared<std::vector<uint8_t>>(), metric_, /*entry=*/0,
        /*version=*/0);
  }
  UpdateGauges();
}

Status MutableIndex::AdoptFrozen(Dataset data, FixedDegreeGraph graph) {
  if (data.num() == 0) {
    return Status::InvalidArgument("AdoptFrozen: dataset is empty");
  }
  if (data.dim() != dim_) {
    return Status::InvalidArgument(
        "AdoptFrozen: dataset dim " + std::to_string(data.dim()) +
        " != index dim " + std::to_string(dim_));
  }
  if (graph.num_vertices() != data.num()) {
    return Status::InvalidArgument(
        "AdoptFrozen: graph has " + std::to_string(graph.num_vertices()) +
        " vertices for " + std::to_string(data.num()) + " points");
  }
  MutexLock writer(writer_mu_);
  const std::shared_ptr<const IndexSnapshot> cur = Current();
  if (cur->version() != 0 || cur->num_points() != 0) {
    return Status::FailedPrecondition(
        "AdoptFrozen: index is no longer empty (version " +
        std::to_string(cur->version()) + ")");
  }
  options_.degree = graph.degree();  // online links must match adopted rows
  auto shared_data = std::make_shared<const Dataset>(std::move(data));
  auto shared_graph = std::make_shared<const FixedDegreeGraph>(std::move(graph));
  auto tombstones =
      std::make_shared<std::vector<uint8_t>>(shared_data->num(), uint8_t{0});
  Publish(std::make_shared<IndexSnapshot>(
      std::move(shared_data), std::move(shared_graph), std::move(tombstones),
      metric_, /*entry=*/0, /*version=*/1));
  return Status::OK();
}

StatusOr<idx_t> MutableIndex::Insert(const float* vector) {
  if (vector == nullptr) {
    return Status::InvalidArgument("Insert: vector is null");
  }
  for (size_t d = 0; d < dim_; ++d) {
    if (!std::isfinite(vector[d])) {
      return Status::InvalidArgument("Insert: non-finite component at dim " +
                                     std::to_string(d));
    }
  }
  MutexLock writer(writer_mu_);
  const std::shared_ptr<const IndexSnapshot> cur = Current();
  const size_t n = cur->num_points();
  if (n >= static_cast<size_t>(kInvalidIdx)) {
    return Status::ResourceExhausted("Insert: id space exhausted");
  }
  const idx_t id = static_cast<idx_t>(n);

  auto data = std::make_shared<Dataset>(cur->data().CopyGrown(n + 1));
  data->SetRow(id, vector);
  auto graph =
      std::make_shared<FixedDegreeGraph>(cur->graph().CopyGrown(n + 1));
  auto tombstones =
      std::make_shared<std::vector<uint8_t>>(cur->tombstones());
  tombstones->push_back(0);

  if (n > 0) LinkNewVertex(*data, graph.get(), id, cur->entry());

  Publish(std::make_shared<IndexSnapshot>(
      std::move(data), std::move(graph), std::move(tombstones), metric_,
      cur->entry(), cur->version() + 1));
  if (inserts_ != nullptr) inserts_->Increment();
  return id;
}

Status MutableIndex::Delete(idx_t id) {
  MutexLock writer(writer_mu_);
  const std::shared_ptr<const IndexSnapshot> cur = Current();
  if (id >= cur->num_points()) {
    return Status::OutOfRange("Delete: id " + std::to_string(id) +
                              " was never assigned (num_points " +
                              std::to_string(cur->num_points()) + ")");
  }
  if (!cur->IsLive(id)) {
    return Status::NotFound("Delete: id " + std::to_string(id) +
                            " is already deleted");
  }
  auto tombstones =
      std::make_shared<std::vector<uint8_t>>(cur->tombstones());
  (*tombstones)[id] = 1;
  Publish(std::make_shared<IndexSnapshot>(
      cur->shared_data(), cur->shared_graph(), std::move(tombstones), metric_,
      cur->entry(), cur->version() + 1));
  if (deletes_ != nullptr) deletes_->Increment();
  return Status::OK();
}

std::shared_ptr<const IndexSnapshot> MutableIndex::Acquire() const {
  ReaderLock guard(snapshot_mu_);
  return current_;
}

std::shared_ptr<const IndexSnapshot> MutableIndex::Current() const {
  return Acquire();
}

size_t MutableIndex::degree() const {
  MutexLock writer(writer_mu_);
  return options_.degree;
}

void MutableIndex::Publish(std::shared_ptr<const IndexSnapshot> next) {
  std::shared_ptr<const IndexSnapshot> old;
  {
    WriterLock guard(snapshot_mu_);
    old = std::move(current_);
    current_ = std::move(next);
  }
  retired_.push_back(std::move(old));
  const size_t swept = ReclaimRetiredLocked();
  if (reclaimed_ != nullptr && swept > 0) reclaimed_->Increment(swept);
  UpdateGauges();
}

size_t MutableIndex::ReclaimRetiredLocked() {
  const size_t before = retired_.size();
  // use_count() == 1 means only the retired list itself pins the version:
  // no reader epoch is inside it, so it can be freed. A reader releasing
  // concurrently is benign — the version is simply swept on a later pass.
  retired_.erase(
      std::remove_if(retired_.begin(), retired_.end(),
                     [](const std::shared_ptr<const IndexSnapshot>& s) {
                       return s.use_count() == 1;
                     }),
      retired_.end());
  return before - retired_.size();
}

size_t MutableIndex::ReclaimRetired() {
  MutexLock writer(writer_mu_);
  const size_t swept = ReclaimRetiredLocked();
  if (reclaimed_ != nullptr && swept > 0) reclaimed_->Increment(swept);
  UpdateGauges();
  return swept;
}

size_t MutableIndex::retired_versions() const {
  MutexLock writer(writer_mu_);
  return retired_.size();
}

void MutableIndex::UpdateGauges() {
  if (live_points_gauge_ == nullptr) return;
  const std::shared_ptr<const IndexSnapshot> cur = Current();
  live_points_gauge_->Set(static_cast<double>(cur->live_points()));
  versions_gauge_->Set(static_cast<double>(cur->version()));
  retired_gauge_->Set(static_cast<double>(retired_.size()));
}

void MutableIndex::LinkNewVertex(const Dataset& data, FixedDegreeGraph* graph,
                                 idx_t v, idx_t entry) {
  const size_t degree = options_.degree;
  const size_t m = options_.m == 0 ? std::max<size_t>(1, degree / 2)
                                   : std::min(options_.m, degree);

  // Greedy link-time search over the grown graph. The new vertex's row is
  // still empty and nothing points at it yet, so the search never sees it.
  BatchDistance bd(metric_, &data);
  const float* point = data.Row(v);
  const float norm_sqr = bd.QueryNormSqr(point);
  const auto distance = [&](idx_t u) { return bd.Compute(point, norm_sqr, u); };
  SongSearchOptions opts = SongSearchOptions::CpuEngineered();
  opts.queue_size = std::max(options_.ef_construction, m);
  const std::vector<Neighbor> found = SongSearchCore(
      *graph, entry, data.num(), data.dim() * sizeof(float), distance,
      /*k=*/opts.queue_size, opts, &link_workspace_, /*stats=*/nullptr);

  // found is ascending (dist, id) — exactly the sorted pool the occlusion
  // heuristic expects. Same policy as construction, so link-time pruning is
  // deterministic (tests/graph/prune_order_test.cc).
  const std::vector<idx_t> own =
      NswBuilder::SelectDiverse(data, metric_, v, found, m);
  graph->SetNeighbors(v, own);

  if (hooks::mutation_drop_reverse_links) return;

  for (const idx_t u : own) AddReverseLink(data, graph, u, v);

  // Reverse links can all be pruned away (and a reverse-row re-selection can
  // in principle disconnect some other vertex), so restore the invariant the
  // searcher and the differential harness rely on: every vertex — live or
  // tombstoned — is reachable from the entry vertex.
  NswBuilder::RepairConnectivity(data, metric_, graph);
}

bool MutableIndex::AddReverseLink(const Dataset& data, FixedDegreeGraph* graph,
                                  idx_t u, idx_t v) {
  if (graph->AddNeighbor(u, v)) return true;
  // Degree overflow: deterministic link-time pruning. Re-select u's row from
  // its current neighbors plus v, exactly like construction-time overflow
  // (LockedGraph::AddEdgeWithShrink).
  const DistanceFunc dist = GetDistanceFunc(metric_);
  const size_t dim = data.dim();
  const std::vector<idx_t> row = graph->Neighbors(u);
  std::vector<Neighbor> pool;
  pool.reserve(row.size() + 1);
  for (const idx_t w : row) {
    pool.emplace_back(dist(data.Row(u), data.Row(w), dim), w);
  }
  pool.emplace_back(dist(data.Row(u), data.Row(v), dim), v);
  std::sort(pool.begin(), pool.end());
  const std::vector<idx_t> kept =
      NswBuilder::SelectDiverse(data, metric_, u, pool, graph->degree());
  graph->SetNeighbors(u, kept);
  return std::find(kept.begin(), kept.end(), v) != kept.end();
}

}  // namespace song
