// Copyright 2026 The SONG-Repro Authors.
//
// Bounded double-ended priority queue built on a symmetric min-max heap
// (Arvind & Rangan 1999), exactly the structure the paper uses for the
// bounded queue optimization (§IV-C): fixed capacity decided up front (no
// dynamic allocation — catastrophic on GPU), O(log n) insert, pop-min and
// pop-max, so the queue can evict its worst element once it reaches the
// search width K (paper Observation 1 shows nothing beyond the first K
// entries is ever used).

#ifndef SONG_SONG_BOUNDED_HEAP_H_
#define SONG_SONG_BOUNDED_HEAP_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/logging.h"
#include "core/status.h"
#include "core/types.h"
#include "song/debug_hooks.h"

namespace song {

/// Symmetric min-max heap over Neighbor (ordered by distance, ties on id).
/// 1-indexed array; slot 1 is an unused dummy root, elements live at
/// positions [2, size+1].
///
/// Invariants (for every occupied position j >= 4, with gp = j/4):
///   * sibling order:  H[j-1] <= H[j] when j is odd (right sibling)
///   * grandparent:    H[2*gp] <= H[j] <= H[2*gp+1]
/// which make H[2] the minimum and H[3] the maximum.
class SymmetricMinMaxHeap {
 public:
  /// `capacity` is the fixed maximum element count (allocated once).
  explicit SymmetricMinMaxHeap(size_t capacity = 0) { Reset(capacity); }

  /// Re-initializes for a new query with the given capacity.
  void Reset(size_t capacity) {
    capacity_ = capacity;
    size_ = 0;
    slots_.assign(capacity + 2, Neighbor());
  }

  /// Clears contents, keeping capacity.
  void Clear() { size_ = 0; }

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ >= capacity_; }

  const Neighbor& Min() const {
    SONG_DCHECK(size_ > 0);
    return slots_[2];
  }
  const Neighbor& Max() const {
    SONG_DCHECK(size_ > 0);
    return size_ == 1 ? slots_[2] : slots_[3];
  }

  /// Inserts; caller must ensure !full().
  void Push(const Neighbor& x) {
    SONG_DCHECK(size_ < capacity_);
    size_t j = size_ + 2;
    slots_[j] = x;
    ++size_;
    BubbleUp(j);
  }

  /// Checked admission: rejects (instead of corrupting the heap / tripping
  /// a debug assert) when the fixed capacity is already used up.
  Status TryPush(const Neighbor& x) {
    if (full()) {
      return Status::ResourceExhausted(
          "queue at capacity " + std::to_string(capacity_));
    }
    Push(x);
    return Status::OK();
  }

  /// Inserts, evicting the current maximum if at capacity. Returns false if
  /// x was rejected (x itself is not better than the maximum).
  bool PushBounded(const Neighbor& x, Neighbor* evicted = nullptr) {
    if (!full()) {
      Push(x);
      return true;
    }
    if (!(x < Max())) return false;
    if (evicted != nullptr) *evicted = Max();
    PopMax();
    Push(x);
    return true;
  }

  Neighbor PopMin() {
    SONG_DCHECK(size_ > 0);
    return PopAt(2);
  }

  Neighbor PopMax() {
    SONG_DCHECK(size_ > 0);
    return size_ == 1 ? PopAt(2) : PopAt(3);
  }

  /// Validates every heap invariant (test hook).
  bool CheckInvariants() const {
    const size_t last = size_ + 1;
    for (size_t j = 3; j <= last; j += 2) {  // odd = right siblings
      if (!(slots_[j - 1] < slots_[j]) && !(slots_[j - 1] == slots_[j])) {
        return false;
      }
    }
    for (size_t j = 4; j <= last; ++j) {
      const size_t gp = j / 4;
      if (gp < 1) continue;
      if (slots_[j] < slots_[2 * gp]) return false;
      if (2 * gp + 1 <= last && slots_[2 * gp + 1] < slots_[j]) return false;
    }
    return true;
  }

 private:
  // Removes the element at `hole` (2 = min side, 3 = max side), refilling
  // along the corresponding spine and re-inserting the last element.
  Neighbor PopAt(size_t hole) {
    const Neighbor result = slots_[hole];
    const size_t last = size_ + 1;
    const Neighbor x = slots_[last];
    --size_;
    if (hole == last) return result;

    size_t j = hole;
    if (hole == 2) {
      // Min spine: the direct successors of min-slot j are the left children
      // of j's parent's grandchild pairs: positions 2j and 2j+2.
      for (;;) {
        const size_t c1 = 2 * j;
        const size_t c2 = 2 * j + 2;
        size_t m = 0;
        if (c1 <= size_ + 1) m = c1;
        if (c2 <= size_ + 1 && (m == 0 || slots_[c2] < slots_[m])) m = c2;
        if (m == 0) break;
        slots_[j] = slots_[m];
        j = m;
      }
    } else {
      // Max spine: successors are the larger element of pairs
      // {2j-2, 2j-1} and {2j, 2j+1}.
      for (;;) {
        size_t m = 0;
        m = PairMaxPos(2 * j - 2);
        const size_t m2 = PairMaxPos(2 * j);
        if (m2 != 0 && (m == 0 || slots_[m] < slots_[m2])) m = m2;
        if (m == 0) break;
        slots_[j] = slots_[m];
        j = m;
      }
    }
    slots_[j] = x;
    BubbleUp(j);
    return result;
  }

  // Position of the larger element in the sibling pair starting at even
  // position `left`, or 0 if the pair is empty / out of range.
  size_t PairMaxPos(size_t left) const {
    const size_t last = size_ + 1;
    if (left > last || left < 2) return 0;
    if (left + 1 <= last) return left + 1;  // right sibling is the larger
    return left;
  }

  void BubbleUp(size_t j) {
    const size_t last = size_ + 1;
    // Sibling fix.
    if ((j & 1) != 0) {  // right sibling
      if (j - 1 >= 2 && slots_[j] < slots_[j - 1]) {
        std::swap(slots_[j], slots_[j - 1]);
        j = j - 1;
      }
    } else {
      if (j + 1 <= last && slots_[j + 1] < slots_[j]) {
        std::swap(slots_[j], slots_[j + 1]);
        j = j + 1;
      }
    }
    // Grandparent fixes.
    for (;;) {
      const size_t gp = j / 4;
      if (gp < 1) break;
      if (slots_[j] < slots_[2 * gp]) {
        std::swap(slots_[j], slots_[2 * gp]);
        j = 2 * gp;
      } else if (2 * gp + 1 <= last && slots_[2 * gp + 1] < slots_[j]) {
        std::swap(slots_[j], slots_[2 * gp + 1]);
        j = 2 * gp + 1;
      } else {
        break;
      }
      // Harness self-test fault: stop the sift one level early.
      if (hooks::smmh_sift_off_by_one) break;
    }
  }

  size_t capacity_ = 0;
  size_t size_ = 0;
  std::vector<Neighbor> slots_;
};

/// The paper's `topk` structure: a bounded max-heap holding the best `k`
/// results seen so far (classic binary heap; only eviction of the maximum
/// is needed, never pop-min).
class BoundedMaxHeap {
 public:
  explicit BoundedMaxHeap(size_t capacity = 0) { Reset(capacity); }

  void Reset(size_t capacity) {
    capacity_ = capacity;
    heap_.clear();
    heap_.reserve(capacity);
  }

  size_t size() const { return heap_.size(); }
  size_t capacity() const { return capacity_; }
  bool empty() const { return heap_.empty(); }
  bool full() const { return heap_.size() >= capacity_; }

  const Neighbor& Max() const {
    SONG_DCHECK(!heap_.empty());
    return heap_[0];
  }

  /// Checked admission counterpart of PushBounded for callers that must not
  /// evict: rejects with kResourceExhausted once the heap is full.
  Status TryPush(const Neighbor& x) {
    if (full()) {
      return Status::ResourceExhausted(
          "topk heap at capacity " + std::to_string(capacity_));
    }
    heap_.push_back(x);
    SiftUp(heap_.size() - 1);
    return Status::OK();
  }

  /// Inserts, evicting the maximum when full. Returns false if rejected.
  bool PushBounded(const Neighbor& x, Neighbor* evicted = nullptr) {
    if (!full()) {
      heap_.push_back(x);
      SiftUp(heap_.size() - 1);
      return true;
    }
    if (!(x < heap_[0])) return false;
    if (evicted != nullptr) *evicted = heap_[0];
    heap_[0] = x;
    SiftDown(0);
    return true;
  }

  /// Destructively extracts contents sorted ascending by distance.
  std::vector<Neighbor> TakeSorted() {
    std::vector<Neighbor> out(heap_.size());
    for (size_t i = heap_.size(); i-- > 0;) {
      out[i] = heap_[0];
      heap_[0] = heap_.back();
      heap_.pop_back();
      if (!heap_.empty()) SiftDown(0);
    }
    return out;
  }

  const std::vector<Neighbor>& raw() const { return heap_; }

 private:
  void SiftUp(size_t i) {
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      if (!(heap_[parent] < heap_[i])) break;
      std::swap(heap_[parent], heap_[i]);
      i = parent;
    }
  }

  void SiftDown(size_t i) {
    for (;;) {
      const size_t l = 2 * i + 1;
      const size_t r = 2 * i + 2;
      size_t largest = i;
      if (l < heap_.size() && heap_[largest] < heap_[l]) largest = l;
      if (r < heap_.size() && heap_[largest] < heap_[r]) largest = r;
      if (largest == i) break;
      std::swap(heap_[i], heap_[largest]);
      i = largest;
    }
  }

  size_t capacity_ = 0;
  std::vector<Neighbor> heap_;
};

}  // namespace song

#endif  // SONG_SONG_BOUNDED_HEAP_H_
