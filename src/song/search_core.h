// Copyright 2026 The SONG-Repro Authors.
//
// Distance-agnostic core of the SONG 3-stage pipeline. Instantiated with a
// float distance callable over vertex ids, it serves both the dense float
// searcher (src/song/song_searcher.*) and the Hamming searcher over 1-bit
// random-projection codes (src/hashing/, paper §VII) — on the GPU these are
// the same kernel with a different bulk-distance routine.

#ifndef SONG_SONG_SEARCH_CORE_H_
#define SONG_SONG_SEARCH_CORE_H_

#include <algorithm>
#include <vector>

#include "core/timer.h"
#include "core/types.h"
#include "graph/fixed_degree_graph.h"
#include "obs/trace.h"
#include "song/bounded_heap.h"
#include "song/search_options.h"
#include "song/visited_table.h"

namespace song {

/// Reusable per-thread scratch space (no allocation on the search hot path
/// once warmed — mirroring the kernel's fixed shared-memory layout).
class SongWorkspace {
 public:
  SymmetricMinMaxHeap q;
  BoundedMaxHeap topk;
  VisitedTable visited;
  std::vector<idx_t> candidates;
  std::vector<float> dists;
  // Quantized traversal scratch (untouched when options.quant == kNone):
  // the per-query ADC lookup table and the exact-rerank staging arrays.
  std::vector<float> adc_table;
  std::vector<idx_t> rerank_ids;
  std::vector<float> rerank_dists;
};

namespace internal {

/// Auto-sizes the exact-structure visited capacity (paper §IV-A: "the length
/// is proportional to the searching parameter K and can be pre-computed").
inline size_t AutoHashCapacity(const SongSearchOptions& options,
                               size_t queue_size, size_t num_points) {
  if (options.structure == VisitedStructure::kEpochArray) {
    return num_points;  // dense stamp array covers every vertex id
  }
  if (options.hash_capacity != 0) return options.hash_capacity;
  size_t cap;
  if (options.visited_deletion) {
    // visited ⊆ q ∪ topk, so 2 * queue_size (+ slack for in-flight batch).
    cap = 2 * queue_size + 64;
  } else if (options.selected_insertion) {
    // Insertions are filtered but never reclaimed.
    cap = 16 * queue_size + 256;
  } else {
    // Unbounded in principle (global-memory table in the paper).
    cap = 64 * queue_size + 1024;
  }
  return std::min(cap, num_points + 1);
}

}  // namespace internal

namespace internal {

/// Appends one trace row holding the counter deltas since `before` and the
/// current structure occupancy. Only runs for sampled queries.
inline void AppendTraceRow(obs::SearchTrace* trace, uint32_t iteration,
                           const SearchStats& before, const SearchStats& now,
                           size_t frontier, size_t topk, size_t visited,
                           size_t candidates) {
  obs::TraceIterationRow row;
  row.iteration = iteration;
  row.frontier_size = static_cast<uint32_t>(frontier);
  row.topk_size = static_cast<uint32_t>(topk);
  row.visited_size = static_cast<uint32_t>(visited);
  row.rows_loaded =
      static_cast<uint32_t>(now.graph_rows_loaded - before.graph_rows_loaded);
  row.q_pops = static_cast<uint32_t>(now.q_pops - before.q_pops);
  row.visited_tests =
      static_cast<uint32_t>(now.visited_tests - before.visited_tests);
  row.candidates = static_cast<uint32_t>(candidates);
  row.dist_comps = static_cast<uint32_t>(now.distance_computations -
                                         before.distance_computations);
  row.heap_pushes = static_cast<uint32_t>(
      (now.q_pushes + now.q_evictions) - (before.q_pushes + before.q_evictions));
  row.topk_ops = static_cast<uint32_t>(
      (now.topk_pushes + now.topk_evictions) -
      (before.topk_pushes + before.topk_evictions));
  row.visited_inserts = static_cast<uint32_t>(now.visited_insertions -
                                              before.visited_insertions);
  row.visited_deletes = static_cast<uint32_t>(now.visited_deletions -
                                              before.visited_deletions);
  trace->rows.push_back(row);
}

}  // namespace internal

/// Runs the decoupled search (candidate locating -> bulk distance ->
/// maintenance) and returns the k closest vertices found, ascending.
///
/// Budgets (options.deadline_us / options.cost_budget) are checked once per
/// main-loop round; on exhaustion the search stops and returns the best-so-
/// far top-k, setting `*degraded` (when provided) so callers can tag the
/// result. Both default to off, in which case no budget code runs and the
/// iteration order — and therefore the result — is byte-identical to a
/// budget-free build.
///
/// `distance(v)` returns the query-to-vertex score (smaller = closer);
/// `point_bytes` is the per-vertex payload fetched by the bulk-distance
/// stage (for memory-traffic accounting). When `trace` is non-null the
/// search also records one obs::TraceIterationRow per iteration — the cost
/// is a null check per round for untraced queries, so tracing N-in-M
/// queries leaves the hot path unchanged.
///
/// Two optional hooks on the distance callable, detected at compile time so
/// plain lambdas keep working unchanged:
///  - `distance.ComputeBatch(ids, n, out)` — Stage 2 computes the whole
///    candidate batch in one fused call (the warp-parallel bulk-distance
///    stage of the paper) instead of a per-id loop. Must produce exactly
///    the same values as `distance(id)`.
///  - `distance.Prefetch(v)` — Stage 1 hints each accepted candidate's
///    vector into cache while expansion continues, hiding the Stage 2
///    gather latency (gated on options.enable_prefetch).
template <typename DistanceFn>
std::vector<Neighbor> SongSearchCore(const FixedDegreeGraph& graph,
                                     idx_t entry, size_t num_points,
                                     size_t point_bytes, DistanceFn&& distance,
                                     size_t k,
                                     const SongSearchOptions& options,
                                     SongWorkspace* workspace,
                                     SearchStats* stats,
                                     obs::SearchTrace* trace = nullptr,
                                     bool* degraded = nullptr) {
  const size_t ef = std::max(options.queue_size, k);
  const size_t degree = graph.degree();
  const size_t multi_step = std::max<size_t>(1, options.multi_step_probe);
  const bool deletion_ok =
      options.visited_deletion &&
      options.structure != VisitedStructure::kBloomFilter;

  SymmetricMinMaxHeap& q = workspace->q;
  BoundedMaxHeap& topk = workspace->topk;
  VisitedTable& visited = workspace->visited;
  std::vector<idx_t>& candidates = workspace->candidates;
  std::vector<float>& dists = workspace->dists;

  // --- Initialization (fixed-size allocations; reused across queries). ---
  if (q.capacity() != ef) {
    q.Reset(ef);
  } else {
    q.Clear();
  }
  topk.Reset(ef);
  const size_t hash_capacity =
      internal::AutoHashCapacity(options, ef, num_points);
  visited.Reset(options.structure, hash_capacity, options.bloom_bits);
  candidates.clear();
  candidates.reserve(degree * multi_step);
  dists.clear();
  dists.reserve(degree * multi_step);

  SearchStats local;
  local.visited_capacity_bytes = visited.MemoryBytes();
  local.queue_bytes = (ef + 2 + ef) * sizeof(Neighbor);

  if (trace != nullptr) {
    trace->k = static_cast<uint32_t>(k);
    trace->queue_size = static_cast<uint32_t>(ef);
    trace->config = options.Name();
    trace->rows.clear();
  }

  const float entry_dist = distance(entry);
  ++local.distance_computations;
  local.data_bytes_loaded += point_bytes;
  visited.Insert(entry);
  ++local.visited_insertions;
  q.Push(Neighbor(entry_dist, entry));
  ++local.q_pushes;

  if (trace != nullptr) {
    // Row 0: entry initialization (one distance, one insert, one push).
    internal::AppendTraceRow(trace, 0, SearchStats{}, local, q.size(),
                             topk.size(), visited.size(),
                             /*candidates=*/1);
  }

  // --- Main loop: one 3-stage round per iteration. ---
  const bool has_deadline = options.deadline_us > 0;
  const bool has_cost_budget = options.cost_budget > 0;
  Timer deadline_timer;  // only consulted when has_deadline
  bool budget_exhausted = false;
  SearchStats iter_start;
  while (!q.empty()) {
    // Budget gate: graceful degradation returns the best-so-far top-k
    // instead of running the frontier dry. Cost units are deterministic;
    // the wall-clock deadline is the serving-layer knob.
    if (has_cost_budget &&
        local.distance_computations >= options.cost_budget) {
      budget_exhausted = true;
      if (trace != nullptr) {
        trace->termination = obs::TraceTermination::kCostBudget;
      }
      break;
    }
    if (has_deadline &&
        deadline_timer.ElapsedMicros() >=
            static_cast<double>(options.deadline_us)) {
      budget_exhausted = true;
      if (trace != nullptr) {
        trace->termination = obs::TraceTermination::kDeadline;
      }
      break;
    }
    ++local.iterations;
    if (trace != nullptr) iter_start = local;

    // ---- Stage 1: candidate locating. ----
    candidates.clear();
    bool terminate = false;
    for (size_t step = 0; step < multi_step && !q.empty(); ++step) {
      const Neighbor now = q.Min();
      // Algorithm 1 line 4-5 terminates on STRICTLY greater distance
      // ("topk.peek_max() < now_dist"): equal-distance vertices are still
      // expanded. This matters for coarse (integer Hamming) distances where
      // plateaus of ties are common.
      if (topk.full() && now.dist > topk.Max().dist) {
        if (step == 0) terminate = true;
        break;
      }
      q.PopMin();
      ++local.q_pops;
      ++local.vertices_expanded;

      Neighbor evicted;
      const bool had_eviction = topk.full();
      const bool entered_topk = topk.PushBounded(now, &evicted);
      ++local.topk_pushes;
      if (entered_topk && had_eviction) {
        ++local.topk_evictions;
        if (deletion_ok) {
          visited.Erase(evicted.id);
          ++local.visited_deletions;
        }
      }
      // Note: a popped vertex that failed to enter topk is always an exact
      // distance tie with topk.Max() (strictly worse ones terminate above).
      // It stays in `visited` — §IV-E's deletion rule only covers vertices
      // strictly worse than the whole top-K, and erasing a tie here could
      // let two tied neighbors re-enqueue each other forever.
      (void)entered_topk;

      const idx_t* row = graph.Row(now.id);
      ++local.graph_rows_loaded;
      local.graph_bytes_loaded += degree * sizeof(idx_t);
      for (size_t i = 0; i < degree && row[i] != kInvalidIdx; ++i) {
        const idx_t v = row[i];
        ++local.visited_tests;
        if (visited.Test(v)) continue;
        // Dedupe within the batch (multi-step pops can share neighbors; the
        // GPU kernel performs the same warp-local check to preserve queue
        // integrity).
        bool duplicate = false;
        for (const idx_t c : candidates) {
          if (c == v) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) {
          candidates.push_back(v);
          if constexpr (requires { distance.Prefetch(v); }) {
            if (options.enable_prefetch) distance.Prefetch(v);
          }
        }
      }
    }
    // Hint the next frontier row one hop ahead: Stage 2/3 run long enough
    // to cover the adjacency-row load of the next Stage 1 round.
    if (options.enable_prefetch && !q.empty()) {
      graph.PrefetchRow(q.Min().id);
    }
    if (terminate || candidates.empty()) {
      if (trace != nullptr) {
        internal::AppendTraceRow(trace, static_cast<uint32_t>(local.iterations),
                                 iter_start, local, q.size(), topk.size(),
                                 visited.size(), candidates.size());
      }
      if (terminate) break;
      continue;
    }

    // ---- Stage 2: bulk distance computation. ----
    // The per-iteration inner loop every candidate funnels through; kept
    // free of heap allocation and logging (song_lint.py rule `hot-path`;
    // the resize below never allocates — capacity for degree * multi_step
    // entries is reserved before the loop).
    // song-lint: begin-hot-path(search-core-stage2)
    dists.resize(candidates.size());
    if constexpr (requires {
                    distance.ComputeBatch(candidates.data(),
                                          candidates.size(), dists.data());
                  }) {
      distance.ComputeBatch(candidates.data(), candidates.size(),
                            dists.data());
    } else {
      for (size_t i = 0; i < candidates.size(); ++i) {
        dists[i] = distance(candidates[i]);
      }
    }
    local.distance_computations += candidates.size();
    local.data_bytes_loaded += candidates.size() * point_bytes;
    // song-lint: end-hot-path

    // ---- Stage 3: data structure maintenance (single logical thread). ----
    for (size_t i = 0; i < candidates.size(); ++i) {
      const Neighbor cand(dists[i], candidates[i]);
      if (options.selected_insertion && topk.full() &&
          cand.dist > topk.Max().dist) {
        // §IV-D: strictly worse than every current top-K candidate — leave
        // unmarked; it may be re-computed later but will be filtered again.
        ++local.selected_insertion_skips;
        continue;
      }
      // Mark BEFORE enqueueing: every vertex in q must be tracked in
      // `visited`, otherwise a saturated table lets vertices re-enter the
      // queue forever (livelock). A failed insert (saturated structure)
      // skips the vertex — recall degrades gracefully instead.
      if (!visited.Insert(cand.id)) {
        ++local.visited_insert_failures;
        continue;
      }
      ++local.visited_insertions;
      Neighbor evicted;
      const bool had_eviction = q.full();
      const bool accepted = q.PushBounded(cand, &evicted);
      if (!accepted) {
        // Bounded queue rejects it (worse than everything enqueued).
        ++local.q_rejections;
        if (deletion_ok) {
          // §IV-E invariant (visited = q ∪ topk): a never-enqueued vertex
          // leaves the table; it may be re-computed and re-filtered later.
          visited.Erase(cand.id);
          ++local.visited_deletions;
        }
        continue;
      }
      ++local.q_pushes;
      if (had_eviction) {
        ++local.q_evictions;
        if (deletion_ok) {
          visited.Erase(evicted.id);
          ++local.visited_deletions;
        }
      }
      local.peak_visited_size =
          std::max(local.peak_visited_size, visited.size());
    }

    if (trace != nullptr) {
      internal::AppendTraceRow(trace, static_cast<uint32_t>(local.iterations),
                               iter_start, local, q.size(), topk.size(),
                               visited.size(), candidates.size());
    }
  }

  if (budget_exhausted) ++local.budget_terminations;
  if (degraded != nullptr) *degraded = budget_exhausted;
  std::vector<Neighbor> result = topk.TakeSorted();
  if (result.size() > k) result.resize(k);
  if (stats != nullptr) stats->Add(local);
  return result;
}

}  // namespace song

#endif  // SONG_SONG_SEARCH_CORE_H_
