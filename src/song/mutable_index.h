// Copyright 2026 The SONG-Repro Authors.
//
// Online mutation for the SONG index (ROADMAP open item 2). The frozen
// pipeline — NswBuilder at build time, SongSearcher at query time — gains
// NSW-style incremental Insert (greedy-search-then-link, Malkov et al. 2014)
// and tombstone Delete, published to readers as immutable IndexSnapshot
// versions:
//
//   writer                                readers
//   ------                                -------
//   Insert/Delete (single writer lock)    Acquire() -> shared_ptr snapshot
//     clone + mutate private copies         search any number of times;
//     publish: atomic swap of current_      results for a pinned version
//     retire the old version                never change
//     reclaim retired versions no
//     reader still pins
//
// Reclamation is epoch-by-refcount: a retired snapshot is swept from the
// retired list only when its use_count shows no reader pins it (the
// shared_ptr itself makes use-after-free impossible; the explicit sweep
// makes reclamation *observable* — tests/song/snapshot_isolation_test.cc
// pins a version across writer publishes and watches retired_versions()).
//
// Insert clones the dataset/graph grown by one row (full copy-on-mutation:
// correctness-first and trivially snapshot-safe; delta chains are a later
// optimization), links the new vertex with the same occlusion-pruning
// policy as construction (NswBuilder::SelectDiverse, so fixed fan-out
// overflow resolves deterministically), then restores full reachability
// from the entry vertex via NswBuilder::RepairConnectivity — the invariant
// the mutation differential harness leans on. Delete shares the dataset and
// graph with its predecessor and copies only the tombstone vector.

#ifndef SONG_SONG_MUTABLE_INDEX_H_
#define SONG_SONG_MUTABLE_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/status.h"
#include "core/sync.h"
#include "core/types.h"
#include "graph/fixed_degree_graph.h"
#include "obs/metrics.h"
#include "song/index_snapshot.h"
#include "song/search_core.h"

namespace song {

struct MutableIndexOptions {
  /// Row capacity of the fixed-degree graph (NswBuildOptions::degree).
  size_t degree = 16;

  /// Forward links created per insert; 0 -> degree / 2.
  size_t m = 0;

  /// Frontier width of the link-time greedy search.
  size_t ef_construction = 100;
};

/// Single-writer / many-reader online index. All mutators serialize on an
/// internal writer mutex; Acquire() is safe from any thread at any time.
class MutableIndex {
 public:
  /// An empty index over `dim`-float vectors. When `registry` is non-null
  /// the index records song.index.{inserts,deletes,live_points,
  /// snapshot_versions,retired_snapshots,snapshots_reclaimed} there;
  /// `registry` must outlive the index.
  MutableIndex(Metric metric, size_t dim, MutableIndexOptions options = {},
               obs::MetricsRegistry* registry = nullptr);

  /// Adopts a pre-built frozen index (e.g. NswBuilder output) as version 1.
  /// Only valid while the index is still empty; the graph's degree
  /// overrides options.degree so online links match the adopted rows. The
  /// entry vertex is 0 (the NswBuilder reachability anchor). The adopted
  /// graph is published untouched, so with no mutations, snapshot searches
  /// are bit-identical to a SongSearcher over the same data and graph.
  Status AdoptFrozen(Dataset data, FixedDegreeGraph graph)
      SONG_EXCLUDES(writer_mu_);

  /// Inserts a vector (dim() floats, finite), returning its new id. Ids are
  /// dense and append-only: the i-th successful insert into an index
  /// adopted with n points gets id n + i; deleted ids are never reused.
  StatusOr<idx_t> Insert(const float* vector) SONG_EXCLUDES(writer_mu_);

  /// Tombstones a live point. The vertex stays traversable (routing quality
  /// under churn) but is filtered from every subsequent snapshot's results.
  /// NotFound if already deleted, OutOfRange if the id was never assigned.
  Status Delete(idx_t id) SONG_EXCLUDES(writer_mu_);

  /// Pins the current version. The returned snapshot is immutable and
  /// serves bit-identical results for its whole lifetime, regardless of
  /// concurrent writers. Readers share snapshot_mu_, so concurrent
  /// Acquire() calls never serialize on each other — only a Publish in
  /// flight (the pointer swap, a few instructions) blocks them.
  std::shared_ptr<const IndexSnapshot> Acquire() const
      SONG_EXCLUDES(snapshot_mu_);

  /// Sweeps retired versions no reader pins; returns how many were freed.
  /// Publish already sweeps opportunistically, so this mainly serves tests
  /// and idle-time maintenance.
  size_t ReclaimRetired() SONG_EXCLUDES(writer_mu_);

  /// Retired-but-not-yet-reclaimed versions (i.e. still pinned by readers
  /// at the last sweep).
  size_t retired_versions() const SONG_EXCLUDES(writer_mu_);

  Metric metric() const { return metric_; }
  size_t dim() const { return dim_; }
  size_t degree() const SONG_EXCLUDES(writer_mu_);
  uint64_t version() const { return Acquire()->version(); }
  size_t num_points() const { return Acquire()->num_points(); }
  size_t live_points() const { return Acquire()->live_points(); }

 private:
  std::shared_ptr<const IndexSnapshot> Current() const
      SONG_EXCLUDES(snapshot_mu_);
  /// Swaps in `next`, retires the predecessor, sweeps, updates gauges.
  void Publish(std::shared_ptr<const IndexSnapshot> next)
      SONG_REQUIRES(writer_mu_) SONG_EXCLUDES(snapshot_mu_);
  size_t ReclaimRetiredLocked() SONG_REQUIRES(writer_mu_);
  void UpdateGauges() SONG_REQUIRES(writer_mu_) SONG_EXCLUDES(snapshot_mu_);
  void LinkNewVertex(const Dataset& data, FixedDegreeGraph* graph, idx_t v,
                     idx_t entry) SONG_REQUIRES(writer_mu_);
  bool AddReverseLink(const Dataset& data, FixedDegreeGraph* graph, idx_t u,
                      idx_t v);

  Metric metric_;
  size_t dim_;
  /// options_.degree is rewritten by AdoptFrozen, so the whole struct is
  /// writer-guarded; metric_/dim_ stay lock-free (immutable after init).
  MutableIndexOptions options_ SONG_GUARDED_BY(writer_mu_);

  obs::Counter* inserts_ = nullptr;
  obs::Counter* deletes_ = nullptr;
  obs::Counter* reclaimed_ = nullptr;
  obs::Gauge* live_points_gauge_ = nullptr;
  obs::Gauge* versions_gauge_ = nullptr;
  obs::Gauge* retired_gauge_ = nullptr;

  /// Serializes mutators and guards retired_ / link_workspace_ / options_.
  /// Lock order: writer_mu_ before snapshot_mu_ (Publish); never the
  /// reverse — Acquire() takes snapshot_mu_ alone.
  mutable Mutex writer_mu_;
  /// Guards the current_ pointer swap: Publish writes it under the
  /// exclusive side, Acquire copies it under the shared side so readers
  /// never serialize behind each other.
  mutable SharedMutex snapshot_mu_;
  std::shared_ptr<const IndexSnapshot> current_ SONG_GUARDED_BY(snapshot_mu_);
  std::vector<std::shared_ptr<const IndexSnapshot>> retired_
      SONG_GUARDED_BY(writer_mu_);
  /// Link-time search scratch, writer-only.
  SongWorkspace link_workspace_ SONG_GUARDED_BY(writer_mu_);
};

}  // namespace song

#endif  // SONG_SONG_MUTABLE_INDEX_H_
