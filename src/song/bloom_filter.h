// Copyright 2026 The SONG-Repro Authors.
//
// Bloom filter replacement for the visited hash table (paper §IV-B).
// Visit tests tolerate false positives (a skipped unvisited vertex costs a
// little recall) but not false negatives (re-visiting costs time and breaks
// queue integrity) — exactly a Bloom filter's guarantee. The paper's sizing
// anchor: ~300 32-bit words give < 1% false positives at 1,000 insertions.

#ifndef SONG_SONG_BLOOM_FILTER_H_
#define SONG_SONG_BLOOM_FILTER_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.h"

namespace song {

class BloomFilter {
 public:
  /// `bits` is rounded up to a multiple of 64. `num_hashes` defaults to 7
  /// (near-optimal for ~10 bits/key).
  explicit BloomFilter(size_t bits = 64 * 150, size_t num_hashes = 7) {
    Reset(bits, num_hashes);
  }

  void Reset(size_t bits, size_t num_hashes = 7) {
    const size_t words = (bits + 63) / 64;
    words_.assign(words == 0 ? 1 : words, 0);
    bit_count_ = words_.size() * 64;
    num_hashes_ = num_hashes == 0 ? 1 : num_hashes;
    size_ = 0;
  }

  void Clear() {
    std::fill(words_.begin(), words_.end(), 0);
    size_ = 0;
  }

  size_t bit_count() const { return bit_count_; }
  size_t num_hashes() const { return num_hashes_; }
  /// Number of (not necessarily distinct) inserted keys.
  size_t size() const { return size_; }
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  void Insert(idx_t key) {
    uint64_t h1 = 0, h2 = 0;
    Seed(key, &h1, &h2);
    for (size_t i = 0; i < num_hashes_; ++i) {
      const uint64_t bit = (h1 + i * h2) % bit_count_;
      words_[bit >> 6] |= uint64_t{1} << (bit & 63);
    }
    ++size_;
  }

  bool Contains(idx_t key) const {
    uint64_t h1 = 0, h2 = 0;
    Seed(key, &h1, &h2);
    for (size_t i = 0; i < num_hashes_; ++i) {
      const uint64_t bit = (h1 + i * h2) % bit_count_;
      if ((words_[bit >> 6] & (uint64_t{1} << (bit & 63))) == 0) return false;
    }
    return true;
  }

  /// Theoretical false-positive rate after n insertions.
  static double TheoreticalFpRate(size_t bits, size_t num_hashes, size_t n) {
    if (bits == 0) return 1.0;
    const double k = static_cast<double>(num_hashes);
    const double exponent = -k * static_cast<double>(n) /
                            static_cast<double>(bits);
    const double base = 1.0 - std::exp(exponent);
    return std::pow(base, k);
  }

 private:
  // Two independent 64-bit hashes via one round of splitmix on two streams
  // (double hashing: h_i = h1 + i * h2).
  static void Seed(idx_t key, uint64_t* h1, uint64_t* h2) {
    uint64_t s = uint64_t{key} + 0x9e3779b97f4a7c15ULL;
    s = (s ^ (s >> 30)) * 0xbf58476d1ce4e5b9ULL;
    s = (s ^ (s >> 27)) * 0x94d049bb133111ebULL;
    *h1 = s ^ (s >> 31);
    uint64_t t = *h1 + 0x9e3779b97f4a7c15ULL;
    t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ULL;
    t = (t ^ (t >> 27)) * 0x94d049bb133111ebULL;
    *h2 = (t ^ (t >> 31)) | 1;  // odd, so all offsets are distinct mod 2^k
  }

  std::vector<uint64_t> words_;
  size_t bit_count_ = 0;
  size_t num_hashes_ = 0;
  size_t size_ = 0;
};

}  // namespace song

#endif  // SONG_SONG_BLOOM_FILTER_H_
