// Copyright 2026 The SONG-Repro Authors.
//
// Open-addressing hash set of vertex ids (paper §IV-B). Separate chaining
// needs dynamic allocation, which is catastrophic on GPU, so the `visited`
// set uses a fixed-length array with linear probing. On the GPU the probe is
// parallelized across the warp ("probing one memory location for each thread
// in a warp is usually sufficient"); here the probe loop is sequential but
// the probe count is surfaced so the cost model can account for warp-wide
// probing. Deletion uses tombstones, keeping the constant-time deletion the
// visited-deletion optimization (§IV-E) relies on.

#ifndef SONG_SONG_OPEN_ADDRESSING_SET_H_
#define SONG_SONG_OPEN_ADDRESSING_SET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/logging.h"
#include "core/status.h"
#include "core/types.h"
#include "song/debug_hooks.h"

namespace song {

class OpenAddressingSet {
 public:
  /// `capacity` is the number of elements the set must be able to hold; the
  /// slot array is sized to the next power of two >= 2 * capacity to keep
  /// the load factor <= 0.5.
  explicit OpenAddressingSet(size_t capacity = 0) { Reset(capacity); }

  /// Largest element capacity TryReset admits. 2^28 elements means a 2^29
  /// slot array (2 GiB of idx_t) — far past any per-query visited set; a
  /// request above this is a corrupt size or a config error, and rejecting
  /// it beats dying in the allocator.
  static constexpr size_t kMaxCapacity = size_t{1} << 28;

  /// Checked admission: rejects capacities that would demand an absurd slot
  /// allocation with kResourceExhausted instead of aborting on bad_alloc.
  Status TryReset(size_t capacity) {
    if (capacity > kMaxCapacity) {
      return Status::ResourceExhausted(
          "visited capacity " + std::to_string(capacity) +
          " exceeds the admission limit " + std::to_string(kMaxCapacity));
    }
    Reset(capacity);
    return Status::OK();
  }

  void Reset(size_t capacity) {
    min_capacity_ = capacity;
    size_t slots = 16;
    // Harness self-test fault: drop the load-factor doubling.
    const size_t target =
        hooks::hash_set_skip_growth ? capacity / 2 : 2 * capacity;
    while (slots < target) slots <<= 1;
    slots_.assign(slots, kEmpty);
    mask_ = slots - 1;
    size_ = 0;
    probes_ = 0;
  }

  /// Clears contents, keeping allocation.
  void Clear() {
    std::fill(slots_.begin(), slots_.end(), kEmpty);
    size_ = 0;
  }

  size_t size() const { return size_; }
  size_t slot_count() const { return slots_.size(); }
  bool full() const { return size_ >= min_capacity_; }

  /// Bytes of the slot array — what the GPU would reserve per query.
  size_t MemoryBytes() const { return slots_.size() * sizeof(idx_t); }

  /// Cumulative probe count (cost-model hook).
  size_t probes() const { return probes_; }

  bool Contains(idx_t key) const {
    size_t i = Hash(key) & mask_;
    for (size_t step = 0; step < slots_.size(); ++step) {
      ++probes_;
      const idx_t slot = slots_[i];
      if (slot == key) return true;
      if (slot == kEmpty) return false;  // tombstones keep probing
      i = (i + 1) & mask_;
    }
    return false;
  }

  /// Inserts `key`. Returns false if already present or the table is at its
  /// element capacity (the searcher treats that as "visited" to stay safe).
  bool Insert(idx_t key) {
    if (size_ >= min_capacity_) {
      return !Contains(key) && InsertOverflow(key);
    }
    size_t i = Hash(key) & mask_;
    size_t first_tombstone = kNoSlot;
    for (size_t step = 0; step < slots_.size(); ++step) {
      ++probes_;
      const idx_t slot = slots_[i];
      if (slot == key) return false;
      if (slot == kEmpty) {
        const size_t target = first_tombstone != kNoSlot ? first_tombstone : i;
        slots_[target] = key;
        ++size_;
        return true;
      }
      if (slot == kTombstone && first_tombstone == kNoSlot) {
        first_tombstone = i;
      }
      i = (i + 1) & mask_;
    }
    if (first_tombstone != kNoSlot) {
      slots_[first_tombstone] = key;
      ++size_;
      return true;
    }
    return false;
  }

  /// Removes `key`. Returns true if it was present.
  bool Erase(idx_t key) {
    size_t i = Hash(key) & mask_;
    for (size_t step = 0; step < slots_.size(); ++step) {
      ++probes_;
      const idx_t slot = slots_[i];
      if (slot == key) {
        slots_[i] = kTombstone;
        --size_;
        return true;
      }
      if (slot == kEmpty) return false;
      i = (i + 1) & mask_;
    }
    return false;
  }

 private:
  static constexpr idx_t kEmpty = kInvalidIdx;
  static constexpr idx_t kTombstone = kInvalidIdx - 1;
  static constexpr size_t kNoSlot = ~size_t{0};

  // Fibonacci-style multiplicative hash.
  static size_t Hash(idx_t key) {
    uint64_t x = key;
    x *= 0x9e3779b97f4a7c15ULL;
    x ^= x >> 29;
    return static_cast<size_t>(x);
  }

  // The table is "full" by element count but a slot may still be free;
  // behave gracefully instead of spinning (GPU code would have aborted the
  // insert the same way).
  bool InsertOverflow(idx_t) { return false; }

  std::vector<idx_t> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
  size_t min_capacity_ = 0;
  mutable size_t probes_ = 0;
};

}  // namespace song

#endif  // SONG_SONG_OPEN_ADDRESSING_SET_H_
