#include "song/batch_engine.h"

#include <algorithm>
#include <thread>

#include "core/thread_pool.h"
#include "core/timer.h"

namespace song {

BatchEngine::BatchEngine(const SongSearcher* searcher, size_t num_threads)
    : searcher_(searcher),
      num_threads_(num_threads != 0
                       ? num_threads
                       : std::max(1u, std::thread::hardware_concurrency())) {
  SONG_CHECK(searcher != nullptr);
}

BatchResult BatchEngine::Search(const Dataset& queries, size_t k,
                                const SongSearchOptions& options) const {
  BatchResult batch;
  batch.num_queries = queries.num();
  batch.results.resize(queries.num());
  batch.latencies_us.resize(queries.num());

  std::vector<SongWorkspace> workspaces(num_threads_);
  std::vector<SearchStats> thread_stats(num_threads_);

  Timer timer;
  ParallelFor(queries.num(), num_threads_, [&](size_t qi, size_t tid) {
    Timer query_timer;
    batch.results[qi] =
        searcher_->Search(queries.Row(static_cast<idx_t>(qi)), k, options,
                          &workspaces[tid], &thread_stats[tid]);
    batch.latencies_us[qi] = static_cast<float>(query_timer.ElapsedMicros());
  });
  batch.wall_seconds = timer.ElapsedSeconds();

  for (const SearchStats& s : thread_stats) batch.stats.Add(s);
  return batch;
}

double BatchResult::LatencyPercentileUs(double p) const {
  if (latencies_us.empty()) return 0.0;
  std::vector<float> sorted = latencies_us;
  std::sort(sorted.begin(), sorted.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace song
