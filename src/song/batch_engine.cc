#include "song/batch_engine.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "core/simd.h"
#include "core/thread_pool.h"
#include "core/timer.h"

namespace song {

namespace {

/// Queries claimed per atomic grab in the batch loop: adjacent queries
/// share the cache-warm index pages their traversals touch, so each thread
/// streams a small run instead of interleaving query-by-query.
constexpr size_t kQueryChunk = 8;

/// Batch-level counters and occupancy/latency distributions. Counter names
/// deliberately mirror the hop/probe metrics the baselines emit
/// (hnsw.search.*, ivfpq.search.*) so SONG-vs-baseline dashboards line up.
void RecordBatchMetrics(const BatchResult& batch,
                        const SongSearchOptions& options,
                        obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  registry->GetCounter("song.batch.batches").Increment();
  registry->GetCounter("song.batch.queries").Increment(batch.num_queries);
  registry->GetGauge("song.batch.wall_seconds").Set(batch.wall_seconds);
  registry->GetGauge("song.batch.qps").Set(batch.Qps());
  registry->GetGauge("song.batch.queue_size")
      .Set(static_cast<double>(options.queue_size));
  // Which distance tier Stage 2 dispatched to (0=scalar, 1=avx2, 2=avx512);
  // lets deployments confirm the SIMD path is live from telemetry alone.
  registry->GetGauge("song.search.simd_tier")
      .Set(static_cast<double>(ActiveSimdTier()));

  obs::Histogram& latency = registry->GetHistogram("song.query.latency_us");
  for (const float us : batch.latencies_us) {
    latency.Observe(static_cast<double>(us));
  }

  const SearchStats& s = batch.stats;
  registry->GetCounter("song.search.iterations").Increment(s.iterations);
  registry->GetCounter("song.search.hops").Increment(s.vertices_expanded);
  registry->GetCounter("song.search.distance_computations")
      .Increment(s.distance_computations);
  registry->GetCounter("song.search.graph_rows_loaded")
      .Increment(s.graph_rows_loaded);
  registry->GetCounter("song.search.graph_bytes_loaded")
      .Increment(s.graph_bytes_loaded);
  registry->GetCounter("song.search.data_bytes_loaded")
      .Increment(s.data_bytes_loaded);
  registry->GetCounter("song.search.q_pushes").Increment(s.q_pushes);
  registry->GetCounter("song.search.q_pops").Increment(s.q_pops);
  registry->GetCounter("song.search.q_evictions").Increment(s.q_evictions);
  registry->GetCounter("song.search.q_rejections").Increment(s.q_rejections);
  registry->GetCounter("song.search.topk_pushes").Increment(s.topk_pushes);
  registry->GetCounter("song.search.topk_evictions")
      .Increment(s.topk_evictions);
  registry->GetCounter("song.search.visited_tests").Increment(s.visited_tests);
  registry->GetCounter("song.search.visited_insertions")
      .Increment(s.visited_insertions);
  registry->GetCounter("song.search.visited_deletions")
      .Increment(s.visited_deletions);
  registry->GetCounter("song.search.visited_insert_failures")
      .Increment(s.visited_insert_failures);
  registry->GetCounter("song.search.selected_insertion_skips")
      .Increment(s.selected_insertion_skips);
  registry->GetCounter("song.search.degraded")
      .Increment(batch.queries_degraded);
  registry->GetCounter("song.batch.rejected_queries")
      .Increment(batch.queries_rejected);
  registry->GetGauge("song.search.visited_capacity_bytes")
      .Set(static_cast<double>(s.visited_capacity_bytes));
  registry->GetGauge("song.search.peak_visited_size")
      .Set(static_cast<double>(s.peak_visited_size));

  // Quantized-traversal telemetry: emitted only when the batch ran with
  // quant != kNone, so exact-search deployments see an unchanged metric set.
  if (options.quant != QuantizationMode::kNone) {
    registry->GetCounter("song.search.quant.adc_tables")
        .Increment(s.adc_tables_built);
    registry->GetCounter("song.search.quant.adc_table_build_ns")
        .Increment(s.adc_table_build_ns);
    registry->GetCounter("song.search.quant.rerank_candidates")
        .Increment(s.rerank_candidates);
    registry->GetCounter("song.search.quant.rerank_bytes_loaded")
        .Increment(s.rerank_bytes_loaded);
    if (batch.num_queries > 0) {
      registry->GetGauge("song.search.quant.rerank_pool_size")
          .Set(static_cast<double>(s.rerank_candidates) /
               static_cast<double>(batch.num_queries));
    }
  }

  registry->GetCounter("song.trace.sampled").Increment(batch.traces.size());
  registry->GetCounter("song.trace.dropped").Increment(batch.traces_dropped);
  if (!batch.traces.empty()) {
    obs::Histogram& hops = registry->GetHistogram("song.trace.hops");
    obs::Histogram& frontier =
        registry->GetHistogram("song.trace.peak_frontier");
    for (const obs::SearchTrace& t : batch.traces) {
      hops.Observe(static_cast<double>(t.Hops()));
      uint32_t peak = 0;
      for (const obs::TraceIterationRow& r : t.rows) {
        peak = std::max(peak, r.frontier_size);
      }
      frontier.Observe(static_cast<double>(peak));
    }
  }
}

}  // namespace

BatchEngine::BatchEngine(const SongSearcher* searcher, size_t num_threads)
    : searcher_(searcher),
      num_threads_(num_threads != 0
                       ? num_threads
                       : std::max(1u, std::thread::hardware_concurrency())) {
  SONG_CHECK(searcher != nullptr);
}

BatchResult BatchEngine::Search(const Dataset& queries, size_t k,
                                const SongSearchOptions& options) const {
  return Search(queries, k, options, BatchTelemetry{});
}

BatchResult BatchEngine::Search(const Dataset& queries, size_t k,
                                const SongSearchOptions& options,
                                const BatchTelemetry& telemetry) const {
  return RunBatch(queries, k, options, telemetry, /*validate=*/false);
}

StatusOr<BatchResult> BatchEngine::TrySearch(
    const Dataset& queries, size_t k, const SongSearchOptions& options,
    const BatchTelemetry& telemetry, const BatchAdmission& admission) const {
  // Request lifecycle (enqueue stamp + ids + per-stage histograms) is armed
  // only when telemetry asks for it; otherwise this path is stamp-free and
  // results/allocations match the pre-lifecycle engine exactly.
  const bool lifecycle_on =
      telemetry.request_lifecycle && (telemetry.registry != nullptr ||
                                      telemetry.flight_recorder != nullptr);
  Timer clock;  // epoch: request arrival (the enqueue stamp is 0)
  const uint64_t id_base =
      lifecycle_on ? request_seq_.fetch_add(
                         std::max<uint64_t>(queries.num(), 1),
                         std::memory_order_relaxed)
                   : 0;

  // Records a single turned-away record for the whole batch: all lifetime
  // up to the refusal is queue time (the batch never got admitted).
  auto record_refusal = [&](const Status& status, bool rejected) {
    if (!lifecycle_on) return;
    obs::RequestTimeline tl;
    const double now = clock.ElapsedMicros();
    tl.enqueue_us = 0.0;
    tl.admitted_us = tl.batched_us = tl.search_begin_us = tl.complete_us =
        now;
    obs::RequestRecord rec = obs::RequestRecord::Make(
        id_base, options.Digest(k), tl, status.code(), /*degraded=*/false,
        rejected);
    obs::RequestMetrics(telemetry.registry).Record(rec);
    if (telemetry.flight_recorder != nullptr) {
      telemetry.flight_recorder->Record(rec);
    }
  };

  if (queries.dim() != searcher_->data().dim()) {
    Status status = Status::InvalidArgument(
        "query dim " + std::to_string(queries.dim()) +
        " does not match index dim " +
        std::to_string(searcher_->data().dim()));
    record_refusal(status, /*rejected=*/true);
    return status;
  }
  if (k == 0) {
    Status status = Status::InvalidArgument("k must be >= 1");
    record_refusal(status, /*rejected=*/true);
    return status;
  }
  if (k > searcher_->data().num()) {
    Status status = Status::InvalidArgument(
        "k = " + std::to_string(k) + " exceeds the dataset size " +
        std::to_string(searcher_->data().num()));
    record_refusal(status, /*rejected=*/true);
    return status;
  }
  const size_t ef = std::max(options.queue_size, k);
  if (ef > SongSearcher::kMaxQueueSize) {
    Status status = Status::ResourceExhausted(
        "effective queue size " + std::to_string(ef) +
        " exceeds the admission limit " +
        std::to_string(SongSearcher::kMaxQueueSize));
    record_refusal(status, /*rejected=*/true);
    return status;
  }

  if (admission.max_inflight > 0) {
    const size_t prior = inflight_.fetch_add(1, std::memory_order_acq_rel);
    if (prior >= admission.max_inflight) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      if (telemetry.registry != nullptr) {
        telemetry.registry->GetCounter("song.batch.shed").Increment();
      }
      Status status = Status::ResourceExhausted(
          "batch shed: " + std::to_string(prior) +
          " batches already in flight (max_inflight = " +
          std::to_string(admission.max_inflight) + ")");
      record_refusal(status, /*rejected=*/false);
      return status;
    }
  } else {
    inflight_.fetch_add(1, std::memory_order_acq_rel);
  }
  LifecycleContext lifecycle;
  lifecycle.clock = &clock;
  lifecycle.enqueue_us = 0.0;
  lifecycle.admitted_us = clock.ElapsedMicros();
  lifecycle.request_id_base = id_base;
  lifecycle.options_digest = options.Digest(k);
  BatchResult batch = RunBatch(queries, k, options, telemetry,
                               /*validate=*/true,
                               lifecycle_on ? &lifecycle : nullptr);
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  return batch;
}

BatchResult BatchEngine::RunBatch(const Dataset& queries, size_t k,
                                  const SongSearchOptions& options,
                                  const BatchTelemetry& telemetry,
                                  bool validate,
                                  const LifecycleContext* lifecycle) const {
  BatchResult batch;
  batch.num_queries = queries.num();
  batch.results.resize(queries.num());
  batch.latencies_us.resize(queries.num());
  batch.degraded.assign(queries.num(), 0);
  batch.rejected.assign(queries.num(), 0);

  std::vector<SongWorkspace> workspaces(num_threads_);
  std::vector<SearchStats> thread_stats(num_threads_);

  const obs::TraceSampler sampler(telemetry.trace_sample_period,
                                  telemetry.trace_seed);
  obs::TraceCollector collector(telemetry.max_traces);

  // Per-request sinks: histogram pointers are resolved once here, worker
  // threads record lock-free. Both are no-ops when lifecycle is off.
  const obs::RequestMetrics req_metrics(
      lifecycle != nullptr ? telemetry.registry : nullptr);
  obs::FlightRecorder* recorder =
      lifecycle != nullptr ? telemetry.flight_recorder : nullptr;

  Timer timer;
  ParallelFor(queries.num(), num_threads_, [&](size_t qi, size_t tid) {
    obs::RequestTimeline tl;
    if (lifecycle != nullptr) {
      tl.enqueue_us = lifecycle->enqueue_us;
      tl.admitted_us = lifecycle->admitted_us;
      tl.batched_us = lifecycle->clock->ElapsedMicros();
    }
    auto emit = [&](StatusCode code, bool degraded, bool rejected) {
      if (lifecycle == nullptr) return;
      const obs::RequestRecord rec = obs::RequestRecord::Make(
          lifecycle->request_id_base + qi, lifecycle->options_digest, tl,
          code, degraded, rejected);
      req_metrics.Record(rec);
      if (recorder != nullptr) recorder->Record(rec);
    };

    const float* query = queries.Row(static_cast<idx_t>(qi));
    if (validate) {
      const Status vs = searcher_->ValidateQuery(query);
      if (!vs.ok()) {
        batch.rejected[qi] = 1;
        batch.latencies_us[qi] = 0.0f;
        if (lifecycle != nullptr) {
          tl.search_begin_us = tl.complete_us =
              lifecycle->clock->ElapsedMicros();
        }
        emit(vs.code(), /*degraded=*/false, /*rejected=*/true);
        return;
      }
    }
    const bool traced = sampler.ShouldSample(qi);
    obs::SearchTrace trace;
    bool degraded = false;
    if (lifecycle != nullptr) {
      tl.search_begin_us = lifecycle->clock->ElapsedMicros();
    }
    Timer query_timer;
    batch.results[qi] =
        searcher_->Search(query, k, options, &workspaces[tid],
                          &thread_stats[tid], traced ? &trace : nullptr,
                          &degraded);
    batch.latencies_us[qi] = static_cast<float>(query_timer.ElapsedMicros());
    if (lifecycle != nullptr) {
      tl.complete_us = lifecycle->clock->ElapsedMicros();
    }
    if (degraded) batch.degraded[qi] = 1;
    emit(StatusCode::kOk, degraded, /*rejected=*/false);
    if (traced) {
      trace.query_id = qi;
      trace.wall_micros = static_cast<double>(batch.latencies_us[qi]);
      collector.Add(std::move(trace));
    }
  }, kQueryChunk);
  batch.wall_seconds = timer.ElapsedSeconds();

  for (const SearchStats& s : thread_stats) batch.stats.Add(s);
  for (const uint8_t d : batch.degraded) batch.queries_degraded += d;
  for (const uint8_t r : batch.rejected) batch.queries_rejected += r;
  batch.traces_dropped = collector.dropped();
  batch.traces = collector.Take();
  // Worker completion order is nondeterministic; keep exports stable.
  std::sort(batch.traces.begin(), batch.traces.end(),
            [](const obs::SearchTrace& a, const obs::SearchTrace& b) {
              return a.query_id < b.query_id;
            });
  RecordBatchMetrics(batch, options, telemetry.registry);
  return batch;
}

double BatchResult::LatencyPercentileUs(double p) const {
  if (latencies_us.empty()) return 0.0;
  std::vector<float> sorted = latencies_us;
  std::sort(sorted.begin(), sorted.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace song
