// Copyright 2026 The SONG-Repro Authors.
//
// An immutable, versioned view of the online index (graph + vectors +
// tombstones). Readers pin a snapshot with MutableIndex::Acquire() at query
// start and keep using it for as long as they like: the writer never touches
// a published snapshot, so a pinned version keeps returning bit-identical
// results while any number of newer versions are published — MVCC with
// shared_ptr pinning as the reader epoch.
//
// Deletes are tombstones: a deleted vertex stays in the graph and remains
// traversable (it still routes searches through its neighborhood, which is
// what keeps recall stable under churn) but is filtered out of the result
// heap. To compensate, Search widens the internal k by the tombstone count
// (capped at the point count) before filtering — with zero tombstones the
// widening vanishes and the snapshot layer is a strict no-op over a plain
// SongSearcher (pinned by tests/song/snapshot_isolation_test.cc).

#ifndef SONG_SONG_INDEX_SNAPSHOT_H_
#define SONG_SONG_INDEX_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/status.h"
#include "core/types.h"
#include "graph/fixed_degree_graph.h"
#include "song/search_options.h"
#include "song/song_searcher.h"

namespace song {

class IndexSnapshot {
 public:
  /// `tombstones->size()` must equal `data->num()`; entry 0 is the search
  /// entry vertex MutableIndex maintains reachability from. Built only by
  /// MutableIndex (and tests); readers receive it as shared_ptr<const>.
  IndexSnapshot(std::shared_ptr<const Dataset> data,
                std::shared_ptr<const FixedDegreeGraph> graph,
                std::shared_ptr<const std::vector<uint8_t>> tombstones,
                Metric metric, idx_t entry, uint64_t version);

  IndexSnapshot(const IndexSnapshot&) = delete;
  IndexSnapshot& operator=(const IndexSnapshot&) = delete;

  uint64_t version() const { return version_; }
  size_t num_points() const { return data_->num(); }
  size_t live_points() const { return live_points_; }
  size_t tombstone_count() const { return num_points() - live_points_; }
  bool IsLive(idx_t id) const {
    return id < tombstones_->size() && (*tombstones_)[id] == 0;
  }

  Metric metric() const { return metric_; }
  idx_t entry() const { return entry_; }
  const Dataset& data() const { return *data_; }
  const FixedDegreeGraph& graph() const { return *graph_; }
  const std::vector<uint8_t>& tombstones() const { return *tombstones_; }

  /// The shared components, for MutableIndex's copy-on-write steps (a Delete
  /// shares data and graph with its predecessor and copies only tombstones).
  std::shared_ptr<const Dataset> shared_data() const { return data_; }
  std::shared_ptr<const FixedDegreeGraph> shared_graph() const {
    return graph_;
  }

  /// The underlying searcher over *all* vertices (tombstones included), or
  /// nullptr when the snapshot is empty. Exposed for the frozen no-op test;
  /// normal callers go through Search below.
  const SongSearcher* searcher() const {
    return searcher_.has_value() ? &*searcher_ : nullptr;
  }

  /// The internal k the searcher runs with: k widened by the tombstone
  /// count, capped at num_points(). Public so the differential harness can
  /// mirror the filter step exactly.
  size_t CompensatedK(size_t k) const;

  /// Top-k live neighbors, ascending (dist, id); at most k entries, fewer
  /// when the reachable live set is smaller. Unlike SongSearcher::Search a
  /// k larger than the point count is served (capped), since callers size k
  /// against a moving live count. Empty snapshot or zero live points -> {}.
  std::vector<Neighbor> Search(const float* query, size_t k,
                               const SongSearchOptions& options,
                               SongWorkspace* workspace,
                               SearchStats* stats = nullptr,
                               bool* degraded = nullptr) const;

  /// Checked variant: validates the query payload and option admission via
  /// SongSearcher::ValidateRequest before touching any per-query structure.
  /// Snapshots never carry a PQ codebook (online inserts would race the
  /// pinned encoder), so options.quant == kPq is rejected here with
  /// FailedPrecondition — quantized traversal is a static-index feature.
  /// When `observer` is non-null, one RequestRecord is emitted per call
  /// (served, degraded, or rejected) with this snapshot's version stamped
  /// in — the caller's observer need not know which MVCC version it hit.
  StatusOr<std::vector<Neighbor>> TrySearch(
      const float* query, size_t k, const SongSearchOptions& options,
      SongWorkspace* workspace, SearchStats* stats = nullptr,
      bool* degraded = nullptr,
      const obs::RequestObserver* observer = nullptr) const;

 private:
  std::shared_ptr<const Dataset> data_;
  std::shared_ptr<const FixedDegreeGraph> graph_;
  std::shared_ptr<const std::vector<uint8_t>> tombstones_;
  Metric metric_;
  idx_t entry_;
  uint64_t version_;
  size_t live_points_;
  std::optional<SongSearcher> searcher_;  ///< nullopt when empty
};

}  // namespace song

#endif  // SONG_SONG_INDEX_SNAPSHOT_H_
