// Copyright 2026 The SONG-Repro Authors.
//
// Knobs and instrumentation for the SONG search pipeline. The option set
// mirrors the paper's §IV/§V parameter space: visited structure, selected
// insertion, visited deletion, queue size (the recall knob), multi-query in
// a warp, and multi-step probing.

#ifndef SONG_SONG_SEARCH_OPTIONS_H_
#define SONG_SONG_SEARCH_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "song/visited_table.h"

namespace song {

/// Vertex relabeling strategy applied to the graph + dataset before search
/// (see graph/reorder.h). Improves locality of the Stage 2 gather: BFS
/// relabeling places each vertex near its neighbors in memory, degree-
/// descending packs the hub vertices that dominate traversals into the
/// first (cache-resident) pages.
enum class GraphReorder {
  kNone = 0,
  kBfs = 1,
  kDegreeDescending = 2,
};

inline const char* GraphReorderName(GraphReorder r) {
  switch (r) {
    case GraphReorder::kNone:
      return "none";
    case GraphReorder::kBfs:
      return "bfs";
    case GraphReorder::kDegreeDescending:
      return "degree";
  }
  return "unknown";
}

/// In-graph distance compression for Stage 2 (the BANG/Faiss-GPU recipe:
/// compressed codes resident on device during traversal, exact-vector rerank
/// of the final pool). kNone keeps the traversal byte-identical to a build
/// without quantization; kPq requires the searcher to have a trained/loaded
/// codebook (SongSearcher::EnablePq) and is rejected otherwise.
enum class QuantizationMode {
  kNone = 0,
  kPq = 1,
};

inline const char* QuantizationModeName(QuantizationMode q) {
  switch (q) {
    case QuantizationMode::kNone:
      return "none";
    case QuantizationMode::kPq:
      return "pq";
  }
  return "unknown";
}

struct SongSearchOptions {
  /// Capacity of the bounded priority queues — the paper's searching
  /// parameter K / "priority queue size", swept to trade QPS for recall.
  /// Clamped up to the number of requested results at search time.
  size_t queue_size = 64;

  /// Which structure backs the visited set (§IV-B / §IV-E).
  VisitedStructure structure = VisitedStructure::kHashTable;

  /// §IV-D: only mark a vertex visited (and enqueue it) when it currently
  /// ranks among the top-queue_size candidates; trades recomputed distances
  /// for a smaller visited set.
  bool selected_insertion = false;

  /// §IV-E: delete vertices from `visited` once they can no longer affect
  /// the result, bounding the table by 2 * queue_size. Requires a structure
  /// with deletion (hash table or Cuckoo filter).
  bool visited_deletion = false;

  /// §V: queries sharing a warp (1, 2 or 4). Executed independently here;
  /// the GPU cost model divides per-warp compute lanes accordingly.
  size_t multi_query = 1;

  /// §V: vertices extracted from the queue per iteration (1 = Algorithm 1).
  size_t multi_step_probe = 1;

  /// Element capacity of the open-addressing / cuckoo visited structure.
  /// 0 = auto: 2*queue_size(+slack) when visited_deletion is on, otherwise
  /// a generous multiple of queue_size (the structure lives in GPU global
  /// memory in the paper's un-optimized configuration).
  size_t hash_capacity = 0;

  /// Bloom filter bit budget; 0 = the paper's ~300 u32 (9600 bits).
  size_t bloom_bits = 0;

  /// Software prefetching on the search hot path: candidate vectors are
  /// hinted into cache as Stage 1 accepts them (hiding the Stage 2 gather
  /// latency) and the next frontier vertex's adjacency row is hinted one
  /// hop ahead. Purely a latency knob — results are identical either way.
  bool enable_prefetch = true;

  /// Graph reordering strategy this searcher's index was (or should be)
  /// built with; recorded here so sweeps can report it. The transform
  /// itself is applied by ReorderIndex (graph/reorder.h) — recall is
  /// bit-identical since only vertex labels change.
  GraphReorder reorder = GraphReorder::kNone;

  /// Per-query wall-clock budget in microseconds; 0 = unlimited. When the
  /// budget expires mid-search the loop stops and the best-so-far top-k is
  /// returned with the query tagged degraded. The check is one steady-clock
  /// read per iteration and is skipped entirely when 0, so results with the
  /// budget off are bit-identical to a build without this feature.
  uint64_t deadline_us = 0;

  /// Per-query simulated-cost budget; 0 = unlimited. Units are Stage 2
  /// distance computations — the counter the GPU cost model prices as the
  /// dominant kernel term — so unlike deadline_us this budget is exactly
  /// reproducible across machines and runs. When exceeded the search stops
  /// and returns best-so-far, tagged degraded.
  uint64_t cost_budget = 0;

  /// Stage-2 distance compression. kPq runs the traversal over m-byte PQ
  /// codes with a per-query ADC lookup table, then reranks the final pool
  /// with exact distances. Off by default; quantization-off searches are
  /// bit-identical to a build without this feature.
  QuantizationMode quant = QuantizationMode::kNone;

  /// Size of the candidate pool reranked with exact distances when quant ==
  /// kPq (clamped to [k, ef]). 0 = auto: min(ef, max(4*k, 32)). Larger pools
  /// recover more of the quantization error at the cost of one full-vector
  /// fetch per pool entry; ignored when quantization is off.
  size_t rerank_depth = 0;

  /// Presets matching the Fig 7 series names.
  static SongSearchOptions HashTable() { return SongSearchOptions{}; }
  static SongSearchOptions HashTableSel() {
    SongSearchOptions o;
    o.selected_insertion = true;
    return o;
  }
  static SongSearchOptions HashTableSelDel() {
    SongSearchOptions o;
    o.selected_insertion = true;
    o.visited_deletion = true;
    return o;
  }
  static SongSearchOptions Bloom() {
    SongSearchOptions o;
    o.structure = VisitedStructure::kBloomFilter;
    o.selected_insertion = true;
    return o;
  }
  static SongSearchOptions Cuckoo() {
    SongSearchOptions o;
    o.structure = VisitedStructure::kCuckooFilter;
    o.selected_insertion = true;
    o.visited_deletion = true;
    return o;
  }
  /// The CPU deployment (§VIII-I): a dense epoch-stamped visited array and
  /// no recomputation trade-offs — on the host, memory is cheap and
  /// distance recomputation is not.
  static SongSearchOptions CpuEngineered() {
    SongSearchOptions o;
    o.structure = VisitedStructure::kEpochArray;
    return o;
  }

  std::string Name() const {
    std::string name = VisitedStructureName(structure);
    if (structure == VisitedStructure::kHashTable) {
      if (selected_insertion) name += "-sel";
      if (visited_deletion) name += "-del";
    }
    if (quant == QuantizationMode::kPq) name += "-pq";
    return name;
  }

  /// FNV-1a digest over every search-affecting knob plus k, identifying
  /// this request's configuration in flight-recorder records without
  /// storing strings. Stable across runs on the same build; two requests
  /// share a digest iff they ran the same (options, k).
  uint64_t Digest(size_t k) const {
    uint64_t h = 0xcbf29ce484222325ull;
    const uint64_t knobs[] = {static_cast<uint64_t>(k),
                              static_cast<uint64_t>(queue_size),
                              static_cast<uint64_t>(structure),
                              selected_insertion ? 1u : 0u,
                              visited_deletion ? 1u : 0u,
                              static_cast<uint64_t>(multi_query),
                              static_cast<uint64_t>(multi_step_probe),
                              static_cast<uint64_t>(hash_capacity),
                              static_cast<uint64_t>(bloom_bits),
                              enable_prefetch ? 1u : 0u,
                              static_cast<uint64_t>(reorder),
                              deadline_us,
                              cost_budget,
                              static_cast<uint64_t>(quant),
                              static_cast<uint64_t>(rerank_depth)};
    for (const uint64_t v : knobs) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= 0x100000001b3ull;
      }
    }
    return h;
  }
};

/// Warp-level work counters collected during search. Each counter maps to a
/// concrete GPU cost in gpusim::CostModel; they also serve as the
/// computation-vs-memory trade-off evidence for the §IV-D/E optimizations.
struct SearchStats {
  // Stage 1 — candidate locating.
  size_t iterations = 0;           ///< main-loop rounds (kernel iterations)
  size_t vertices_expanded = 0;    ///< queue pops processed
  size_t graph_rows_loaded = 0;    ///< fixed-degree rows fetched
  size_t graph_bytes_loaded = 0;
  size_t q_pops = 0;

  // Stage 2 — bulk distance computation.
  size_t distance_computations = 0;
  size_t data_bytes_loaded = 0;    ///< candidate payloads fetched (vectors,
                                   ///< or m-byte codes under quant == kPq)

  // Quantized traversal (options.quant == kPq; all zero otherwise).
  size_t adc_tables_built = 0;     ///< one per query on the PQ path
  size_t adc_table_build_ns = 0;   ///< wall time spent building ADC tables
  size_t rerank_candidates = 0;    ///< final-pool entries rescored exactly
  size_t rerank_bytes_loaded = 0;  ///< full vectors fetched for the rerank

  // Stage 3 — data structure maintenance.
  size_t q_pushes = 0;
  size_t q_evictions = 0;
  size_t q_rejections = 0;
  size_t topk_pushes = 0;
  size_t topk_evictions = 0;
  size_t visited_tests = 0;
  size_t visited_insertions = 0;
  size_t visited_deletions = 0;
  size_t visited_insert_failures = 0;  ///< saturated structure
  size_t selected_insertion_skips = 0; ///< candidates filtered by §IV-D
  size_t budget_terminations = 0;      ///< searches cut short by a budget

  // Memory accounting.
  size_t visited_capacity_bytes = 0;  ///< allocated visited footprint
  size_t peak_visited_size = 0;       ///< max live entries
  size_t queue_bytes = 0;             ///< q + topk allocation

  void Add(const SearchStats& other) {
    iterations += other.iterations;
    vertices_expanded += other.vertices_expanded;
    graph_rows_loaded += other.graph_rows_loaded;
    graph_bytes_loaded += other.graph_bytes_loaded;
    q_pops += other.q_pops;
    distance_computations += other.distance_computations;
    data_bytes_loaded += other.data_bytes_loaded;
    adc_tables_built += other.adc_tables_built;
    adc_table_build_ns += other.adc_table_build_ns;
    rerank_candidates += other.rerank_candidates;
    rerank_bytes_loaded += other.rerank_bytes_loaded;
    q_pushes += other.q_pushes;
    q_evictions += other.q_evictions;
    q_rejections += other.q_rejections;
    topk_pushes += other.topk_pushes;
    topk_evictions += other.topk_evictions;
    visited_tests += other.visited_tests;
    visited_insertions += other.visited_insertions;
    visited_deletions += other.visited_deletions;
    visited_insert_failures += other.visited_insert_failures;
    selected_insertion_skips += other.selected_insertion_skips;
    budget_terminations += other.budget_terminations;
    visited_capacity_bytes = std::max(visited_capacity_bytes,
                                      other.visited_capacity_bytes);
    peak_visited_size = std::max(peak_visited_size, other.peak_visited_size);
    queue_bytes = std::max(queue_bytes, other.queue_bytes);
  }
};

}  // namespace song

#endif  // SONG_SONG_SEARCH_OPTIONS_H_
