#include "song/song_searcher.h"

namespace song {

SongSearcher::SongSearcher(const Dataset* data, const FixedDegreeGraph* graph,
                           Metric metric, idx_t entry)
    : data_(data), graph_(graph), metric_(metric), entry_(entry) {
  SONG_CHECK(data != nullptr && graph != nullptr);
  SONG_CHECK_MSG(data->num() == graph->num_vertices(),
                 "dataset / graph size mismatch");
  SONG_CHECK(entry < data->num());
}

std::vector<Neighbor> SongSearcher::Search(const float* query, size_t k,
                                           const SongSearchOptions& options,
                                           SearchStats* stats) const {
  SongWorkspace workspace;
  return Search(query, k, options, &workspace, stats);
}

std::vector<Neighbor> SongSearcher::Search(const float* query, size_t k,
                                           const SongSearchOptions& options,
                                           SongWorkspace* workspace,
                                           SearchStats* stats,
                                           obs::SearchTrace* trace) const {
  SONG_DCHECK(workspace != nullptr);
  const DistanceFunc dist = GetDistanceFunc(metric_);
  const size_t dim = data_->dim();
  const Dataset& data = *data_;
  return SongSearchCore(
      *graph_, entry_, data.num(), dim * sizeof(float),
      [&](idx_t v) { return dist(query, data.Row(v), dim); }, k, options,
      workspace, stats, trace);
}

}  // namespace song
