#include "song/song_searcher.h"

#include <cmath>
#include <string>

namespace song {

namespace {

/// The distance callable handed to SongSearchCore for dense float search.
/// Implements the core's optional hooks: ComputeBatch routes Stage 2
/// through the fused SIMD gather kernel, Prefetch hints candidate vectors
/// into cache during Stage 1 expansion. Per-row values are bit-identical to
/// operator() (distance_kernels.h contract), so batching never changes
/// results.
struct DenseDistanceFn {
  const BatchDistance* bd;
  const Dataset* data;
  const float* query;
  float query_norm_sqr;

  float operator()(idx_t v) const {
    return bd->Compute(query, query_norm_sqr, v);
  }
  void ComputeBatch(const idx_t* ids, size_t n, float* out) const {
    bd->ComputeBatch(query, query_norm_sqr, ids, n, out);
  }
  void Prefetch(idx_t v) const { data->PrefetchRow(v); }
};

}  // namespace

SongSearcher::SongSearcher(const Dataset* data, const FixedDegreeGraph* graph,
                           Metric metric, idx_t entry)
    : data_(data), graph_(graph), metric_(metric), entry_(entry),
      batch_dist_(metric, data) {
  SONG_CHECK(data != nullptr && graph != nullptr);
  SONG_CHECK_MSG(data->num() == graph->num_vertices(),
                 "dataset / graph size mismatch");
  SONG_CHECK(entry < data->num());
}

void SongSearcher::SetResultIdMap(std::vector<idx_t> new_to_old) {
  SONG_CHECK_MSG(new_to_old.empty() || new_to_old.size() == data_->num(),
                 "result id map size mismatch");
  result_id_map_ = std::move(new_to_old);
}

std::vector<Neighbor> SongSearcher::Search(const float* query, size_t k,
                                           const SongSearchOptions& options,
                                           SearchStats* stats) const {
  SongWorkspace workspace;
  return Search(query, k, options, &workspace, stats);
}

std::vector<Neighbor> SongSearcher::Search(const float* query, size_t k,
                                           const SongSearchOptions& options,
                                           SongWorkspace* workspace,
                                           SearchStats* stats,
                                           obs::SearchTrace* trace,
                                           bool* degraded) const {
  SONG_DCHECK(workspace != nullptr);
  const Dataset& data = *data_;
  const DenseDistanceFn distance{&batch_dist_, &data, query,
                                 batch_dist_.QueryNormSqr(query)};
  std::vector<Neighbor> result = SongSearchCore(
      *graph_, entry_, data.num(), data.dim() * sizeof(float), distance, k,
      options, workspace, stats, trace, degraded);
  if (!result_id_map_.empty()) {
    for (Neighbor& n : result) n.id = result_id_map_[n.id];
  }
  return result;
}

Status SongSearcher::ValidateQuery(const float* query) const {
  if (query == nullptr) {
    return Status::InvalidArgument("query is null");
  }
  const size_t dim = data_->dim();
  for (size_t d = 0; d < dim; ++d) {
    if (!std::isfinite(query[d])) {
      return Status::InvalidArgument(
          "query component " + std::to_string(d) + " is " +
          (std::isnan(query[d]) ? "NaN" : "infinite") +
          "; distances would be undefined");
    }
  }
  return Status::OK();
}

Status SongSearcher::ValidateRequest(const float* query, size_t k,
                                     const SongSearchOptions& options) const {
  if (k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (k > data_->num()) {
    return Status::InvalidArgument(
        "k = " + std::to_string(k) + " exceeds the dataset size " +
        std::to_string(data_->num()));
  }
  const size_t ef = std::max(options.queue_size, k);
  if (ef > kMaxQueueSize) {
    return Status::ResourceExhausted(
        "effective queue size " + std::to_string(ef) +
        " exceeds the admission limit " + std::to_string(kMaxQueueSize));
  }
  if (options.multi_step_probe == 0) {
    return Status::InvalidArgument("multi_step_probe must be >= 1");
  }
  return ValidateQuery(query);
}

StatusOr<std::vector<Neighbor>> SongSearcher::TrySearch(
    const float* query, size_t k, const SongSearchOptions& options,
    SongWorkspace* workspace, SearchStats* stats, obs::SearchTrace* trace,
    bool* degraded, const obs::RequestObserver* observer) const {
  if (observer == nullptr) {
    SONG_RETURN_IF_ERROR(ValidateRequest(query, k, options));
    return Search(query, k, options, workspace, stats, trace, degraded);
  }

  // Lifecycle-observed variant: the caller stamped the pre-search stages
  // (queue / batch_form); this searcher owns the search stage and emits one
  // record per request, rejected or served.
  const Status vs = ValidateRequest(query, k, options);
  if (!vs.ok()) {
    obs::EmitRequestRecord(*observer, options.Digest(k), 0.0f, vs.code(),
                           /*degraded=*/false, /*rejected=*/true);
    return vs;
  }
  bool local_degraded = false;
  Timer search_timer;
  std::vector<Neighbor> result =
      Search(query, k, options, workspace, stats, trace, &local_degraded);
  obs::EmitRequestRecord(*observer, options.Digest(k),
                         static_cast<float>(search_timer.ElapsedMicros()),
                         StatusCode::kOk, local_degraded,
                         /*rejected=*/false);
  if (degraded != nullptr) *degraded = local_degraded;
  return result;
}

}  // namespace song
