#include "song/song_searcher.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

namespace song {

namespace {

/// The distance callable handed to SongSearchCore for dense float search.
/// Implements the core's optional hooks: ComputeBatch routes Stage 2
/// through the fused SIMD gather kernel, Prefetch hints candidate vectors
/// into cache during Stage 1 expansion. Per-row values are bit-identical to
/// operator() (distance_kernels.h contract), so batching never changes
/// results.
struct DenseDistanceFn {
  const BatchDistance* bd;
  const Dataset* data;
  const float* query;
  float query_norm_sqr;

  float operator()(idx_t v) const {
    return bd->Compute(query, query_norm_sqr, v);
  }
  void ComputeBatch(const idx_t* ids, size_t n, float* out) const {
    bd->ComputeBatch(query, query_norm_sqr, ids, n, out);
  }
  void Prefetch(idx_t v) const { data->PrefetchRow(v); }
};

/// The quantized Stage-2 callable: distances come from the per-query ADC
/// table over m-byte codes (quant/pq_distance.h). operator() routes through
/// the same kernel with n = 1, so single and batched scores are
/// bit-identical within a SIMD tier.
struct PqAdcDistanceFn {
  const PqBatchDistance* pqd;
  const float* table;

  float operator()(idx_t v) const { return pqd->Compute(table, v); }
  void ComputeBatch(const idx_t* ids, size_t n, float* out) const {
    pqd->ComputeBatch(table, ids, n, out);
  }
  void Prefetch(idx_t v) const { pqd->PrefetchCode(v); }
};

}  // namespace

SongSearcher::SongSearcher(const Dataset* data, const FixedDegreeGraph* graph,
                           Metric metric, idx_t entry)
    : data_(data), graph_(graph), metric_(metric), entry_(entry),
      batch_dist_(metric, data) {
  SONG_CHECK(data != nullptr && graph != nullptr);
  SONG_CHECK_MSG(data->num() == graph->num_vertices(),
                 "dataset / graph size mismatch");
  SONG_CHECK(entry < data->num());
}

void SongSearcher::SetResultIdMap(std::vector<idx_t> new_to_old) {
  SONG_CHECK_MSG(new_to_old.empty() || new_to_old.size() == data_->num(),
                 "result id map size mismatch");
  result_id_map_ = std::move(new_to_old);
}

std::vector<Neighbor> SongSearcher::Search(const float* query, size_t k,
                                           const SongSearchOptions& options,
                                           SearchStats* stats) const {
  SongWorkspace workspace;
  return Search(query, k, options, &workspace, stats);
}

std::vector<Neighbor> SongSearcher::Search(const float* query, size_t k,
                                           const SongSearchOptions& options,
                                           SongWorkspace* workspace,
                                           SearchStats* stats,
                                           obs::SearchTrace* trace,
                                           bool* degraded) const {
  SONG_DCHECK(workspace != nullptr);
  const Dataset& data = *data_;
  const DenseDistanceFn distance{&batch_dist_, &data, query,
                                 batch_dist_.QueryNormSqr(query)};
  if (options.quant == QuantizationMode::kPq) {
    return SearchPq(query, k, options, workspace, stats, trace, degraded);
  }
  std::vector<Neighbor> result = SongSearchCore(
      *graph_, entry_, data.num(), data.dim() * sizeof(float), distance, k,
      options, workspace, stats, trace, degraded);
  if (!result_id_map_.empty()) {
    for (Neighbor& n : result) n.id = result_id_map_[n.id];
  }
  return result;
}

size_t SongSearcher::RerankPoolSize(size_t k,
                                    const SongSearchOptions& options) {
  const size_t ef = std::max(options.queue_size, k);
  size_t pool = options.rerank_depth == 0
                    ? std::min(ef, std::max(4 * k, size_t{32}))
                    : options.rerank_depth;
  return std::min(std::max(pool, k), ef);
}

std::vector<Neighbor> SongSearcher::SearchPq(const float* query, size_t k,
                                             const SongSearchOptions& options,
                                             SongWorkspace* workspace,
                                             SearchStats* stats,
                                             obs::SearchTrace* trace,
                                             bool* degraded) const {
  SONG_CHECK_MSG(pq_dist_ != nullptr,
                 "options.quant == kPq but EnablePq was never called; use "
                 "TrySearch for a Status instead of an abort");
  const PqBatchDistance& pqd = *pq_dist_;

  // Stage 0 (PQ only): the per-query asymmetric-distance table. Built once,
  // then every Stage 2 candidate costs m table lookups over its m-byte code.
  Timer table_timer;
  pqd.BuildAdcTable(query, metric_, &workspace->adc_table);
  if (stats != nullptr) {
    stats->adc_tables_built += 1;
    stats->adc_table_build_ns +=
        static_cast<size_t>(table_timer.ElapsedMicros() * 1e3);
  }

  // Traversal over codes. Asking the core for the whole rerank pool is
  // traversal-neutral: the top-k heap capacity is ef = max(queue_size, k)
  // either way (pool <= ef), so expansion order and stats match a plain
  // k-result run — only the emitted prefix length differs.
  const size_t pool = RerankPoolSize(k, options);
  const PqAdcDistanceFn distance{&pqd, workspace->adc_table.data()};
  std::vector<Neighbor> result = SongSearchCore(
      *graph_, entry_, data_->num(), pqd.code_bytes(), distance, pool, options,
      workspace, stats, trace, degraded);

  // Exact rerank: rescore the surviving pool with full-precision vectors and
  // keep the best k. This is the only stage that touches the float dataset.
  const size_t n = result.size();
  workspace->rerank_ids.resize(n);
  workspace->rerank_dists.resize(n);
  for (size_t i = 0; i < n; ++i) workspace->rerank_ids[i] = result[i].id;
  const float query_norm_sqr = batch_dist_.QueryNormSqr(query);
  batch_dist_.ComputeBatch(query, query_norm_sqr, workspace->rerank_ids.data(),
                           n, workspace->rerank_dists.data());
  for (size_t i = 0; i < n; ++i) result[i].dist = workspace->rerank_dists[i];
  std::sort(result.begin(), result.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.dist != b.dist ? a.dist < b.dist : a.id < b.id;
            });
  if (result.size() > k) result.resize(k);
  if (stats != nullptr) {
    stats->rerank_candidates += n;
    stats->rerank_bytes_loaded += n * data_->dim() * sizeof(float);
  }

  if (!result_id_map_.empty()) {
    for (Neighbor& nb : result) nb.id = result_id_map_[nb.id];
  }
  return result;
}

Status SongSearcher::EnablePq(const PqOptions& pq_options) {
  if (metric_ == Metric::kCosine) {
    return Status::InvalidArgument(
        "PQ traversal does not support the cosine metric; normalize the "
        "rows and use kInnerProduct instead");
  }
  ProductQuantizer pq;
  pq.Train(*data_, pq_options);
  return EnablePq(std::move(pq));
}

Status SongSearcher::EnablePq(ProductQuantizer pq) {
  if (metric_ == Metric::kCosine) {
    return Status::InvalidArgument(
        "PQ traversal does not support the cosine metric; normalize the "
        "rows and use kInnerProduct instead");
  }
  if (!pq.trained()) {
    return Status::FailedPrecondition(
        "EnablePq requires a trained codebook (Train or Load first)");
  }
  if (pq.dim() != data_->dim()) {
    return Status::InvalidArgument(
        "PQ codebook dim " + std::to_string(pq.dim()) +
        " does not match the index dim " + std::to_string(data_->dim()));
  }
  pq_dist_ = std::make_unique<PqBatchDistance>(std::move(pq), *data_);
  return Status::OK();
}

Status SongSearcher::ValidateQuery(const float* query) const {
  if (query == nullptr) {
    return Status::InvalidArgument("query is null");
  }
  const size_t dim = data_->dim();
  for (size_t d = 0; d < dim; ++d) {
    if (!std::isfinite(query[d])) {
      return Status::InvalidArgument(
          "query component " + std::to_string(d) + " is " +
          (std::isnan(query[d]) ? "NaN" : "infinite") +
          "; distances would be undefined");
    }
  }
  return Status::OK();
}

Status SongSearcher::ValidateRequest(const float* query, size_t k,
                                     const SongSearchOptions& options) const {
  if (k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (k > data_->num()) {
    return Status::InvalidArgument(
        "k = " + std::to_string(k) + " exceeds the dataset size " +
        std::to_string(data_->num()));
  }
  const size_t ef = std::max(options.queue_size, k);
  if (ef > kMaxQueueSize) {
    return Status::ResourceExhausted(
        "effective queue size " + std::to_string(ef) +
        " exceeds the admission limit " + std::to_string(kMaxQueueSize));
  }
  if (options.multi_step_probe == 0) {
    return Status::InvalidArgument("multi_step_probe must be >= 1");
  }
  if (options.quant == QuantizationMode::kPq && pq_dist_ == nullptr) {
    return Status::FailedPrecondition(
        "options.quant == kPq but this index has no PQ codebook: call "
        "SongSearcher::EnablePq (or load a .sngq codebook) on a static "
        "index first; mutable-index snapshots serve exact search only");
  }
  return ValidateQuery(query);
}

StatusOr<std::vector<Neighbor>> SongSearcher::TrySearch(
    const float* query, size_t k, const SongSearchOptions& options,
    SongWorkspace* workspace, SearchStats* stats, obs::SearchTrace* trace,
    bool* degraded, const obs::RequestObserver* observer) const {
  if (observer == nullptr) {
    SONG_RETURN_IF_ERROR(ValidateRequest(query, k, options));
    return Search(query, k, options, workspace, stats, trace, degraded);
  }

  // Lifecycle-observed variant: the caller stamped the pre-search stages
  // (queue / batch_form); this searcher owns the search stage and emits one
  // record per request, rejected or served.
  const Status vs = ValidateRequest(query, k, options);
  if (!vs.ok()) {
    obs::EmitRequestRecord(*observer, options.Digest(k), 0.0f, vs.code(),
                           /*degraded=*/false, /*rejected=*/true);
    return vs;
  }
  bool local_degraded = false;
  Timer search_timer;
  std::vector<Neighbor> result =
      Search(query, k, options, workspace, stats, trace, &local_degraded);
  obs::EmitRequestRecord(*observer, options.Digest(k),
                         static_cast<float>(search_timer.ElapsedMicros()),
                         StatusCode::kOk, local_degraded,
                         /*rejected=*/false);
  if (degraded != nullptr) *degraded = local_degraded;
  return result;
}

}  // namespace song
