// Copyright 2026 The SONG-Repro Authors.
//
// Batched query execution. On the GPU each query (or multi-query group)
// occupies a warp; here each worker thread plays the role of a stream of
// warps. This engine produces (a) real wall-clock throughput — the paper's
// "SONG-cpu" of Fig 15 — and (b) aggregate work counters that the GPU cost
// model converts into simulated kernel time.

#ifndef SONG_SONG_BATCH_ENGINE_H_
#define SONG_SONG_BATCH_ENGINE_H_

#include <cstddef>
#include <vector>

#include "core/dataset.h"
#include "song/song_searcher.h"

namespace song {

struct BatchResult {
  std::vector<std::vector<Neighbor>> results;
  /// Counters summed over all queries (capacity fields hold maxima).
  SearchStats stats;
  double wall_seconds = 0.0;
  size_t num_queries = 0;
  /// Per-query service times in microseconds (same order as `results`).
  std::vector<float> latencies_us;

  double Qps() const {
    return wall_seconds > 0.0 ? static_cast<double>(num_queries) /
                                    wall_seconds
                              : 0.0;
  }

  /// Latency percentile in microseconds; p in [0, 100]. Returns 0 when no
  /// latencies were recorded.
  double LatencyPercentileUs(double p) const;

  /// Id-only view for recall evaluation.
  std::vector<std::vector<idx_t>> Ids() const {
    std::vector<std::vector<idx_t>> ids(results.size());
    for (size_t q = 0; q < results.size(); ++q) {
      ids[q].reserve(results[q].size());
      for (const Neighbor& n : results[q]) ids[q].push_back(n.id);
    }
    return ids;
  }
};

class BatchEngine {
 public:
  /// `searcher` must outlive the engine. 0 threads = hardware concurrency.
  explicit BatchEngine(const SongSearcher* searcher, size_t num_threads = 0);

  /// Runs every query in `queries`, returning results, wall time and
  /// aggregated counters.
  BatchResult Search(const Dataset& queries, size_t k,
                     const SongSearchOptions& options) const;

  size_t num_threads() const { return num_threads_; }

 private:
  const SongSearcher* searcher_;
  size_t num_threads_;
};

}  // namespace song

#endif  // SONG_SONG_BATCH_ENGINE_H_
