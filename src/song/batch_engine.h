// Copyright 2026 The SONG-Repro Authors.
//
// Batched query execution. On the GPU each query (or multi-query group)
// occupies a warp; here each worker thread plays the role of a stream of
// warps. This engine produces (a) real wall-clock throughput — the paper's
// "SONG-cpu" of Fig 15 — and (b) aggregate work counters that the GPU cost
// model converts into simulated kernel time.

#ifndef SONG_SONG_BATCH_ENGINE_H_
#define SONG_SONG_BATCH_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/status.h"
#include "core/timer.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "song/song_searcher.h"

namespace song {

/// Admission control for TrySearch. `max_inflight` bounds the number of
/// batches the engine serves concurrently; a batch arriving past the limit
/// is shed immediately with kResourceExhausted rather than queued — the
/// caller (a serving tier) decides whether to retry, reroute, or drop.
/// 0 = unlimited (no admission check at all).
struct BatchAdmission {
  size_t max_inflight = 0;
};

/// Opt-in observability for a batch run: per-query traces at 1-in-M
/// sampling and/or metric recording into a registry. The defaults (no
/// registry, period 0) make telemetry a no-op.
struct BatchTelemetry {
  /// Destination for batch/query metrics; nullptr disables recording.
  obs::MetricsRegistry* registry = nullptr;
  /// Trace 1 in `trace_sample_period` queries (0 = tracing off, 1 = all).
  uint32_t trace_sample_period = 0;
  /// Seed of the deterministic query sampler.
  uint64_t trace_seed = 0x534f4e47;  // "SONG"
  /// Hard cap on collected traces per batch.
  size_t max_traces = 4096;
  /// Post-mortem ring for completed request records; nullptr disables it.
  /// Only the checked TrySearch path records (Search stays lifecycle-free),
  /// and each record is one wait-free, allocation-free ring write.
  obs::FlightRecorder* flight_recorder = nullptr;
  /// When false, TrySearch skips per-request records and song.req.* stage
  /// histograms even with a registry/recorder set. The serving tier sets
  /// this: it stamps its own RequestTimeline covering the full network
  /// lifecycle, and engine-level records would double-count each request.
  /// Batch-level metrics (song.batch.*) are unaffected.
  bool request_lifecycle = true;
};

struct BatchResult {
  std::vector<std::vector<Neighbor>> results;
  /// Counters summed over all queries (capacity fields hold maxima).
  SearchStats stats;
  double wall_seconds = 0.0;
  size_t num_queries = 0;
  /// Per-query service times in microseconds (same order as `results`).
  std::vector<float> latencies_us;
  /// Sampled per-query traces (empty unless BatchTelemetry enabled them).
  std::vector<obs::SearchTrace> traces;
  /// Traces discarded after `max_traces` was reached.
  size_t traces_dropped = 0;
  /// Per-query flags, same order as `results`: `degraded[q]` set when a
  /// deadline/cost budget cut query q short (its results are valid but
  /// best-so-far); `rejected[q]` set when validation refused the query
  /// (TrySearch only — its result list is empty).
  std::vector<uint8_t> degraded;
  std::vector<uint8_t> rejected;
  size_t queries_degraded = 0;
  size_t queries_rejected = 0;

  double Qps() const {
    return wall_seconds > 0.0 ? static_cast<double>(num_queries) /
                                    wall_seconds
                              : 0.0;
  }

  /// Latency percentile in microseconds; p in [0, 100]. Returns 0 when no
  /// latencies were recorded.
  double LatencyPercentileUs(double p) const;

  /// Id-only view for recall evaluation.
  std::vector<std::vector<idx_t>> Ids() const {
    std::vector<std::vector<idx_t>> ids(results.size());
    for (size_t q = 0; q < results.size(); ++q) {
      ids[q].reserve(results[q].size());
      for (const Neighbor& n : results[q]) ids[q].push_back(n.id);
    }
    return ids;
  }
};

class BatchEngine {
 public:
  /// `searcher` must outlive the engine. 0 threads = hardware concurrency.
  explicit BatchEngine(const SongSearcher* searcher, size_t num_threads = 0);

  /// Runs every query in `queries`, returning results, wall time and
  /// aggregated counters.
  BatchResult Search(const Dataset& queries, size_t k,
                     const SongSearchOptions& options) const;

  /// Same, with sampled per-query tracing and metric recording. Tracing a
  /// 1-in-M sample adds one deterministic hash per query and a null check
  /// per search iteration for the untraced majority.
  BatchResult Search(const Dataset& queries, size_t k,
                     const SongSearchOptions& options,
                     const BatchTelemetry& telemetry) const;

  /// Checked batch search for serving: validates the batch shape and
  /// options up front (dim mismatch, k = 0, oversized queue), applies
  /// admission control (`admission.max_inflight`), and screens each query
  /// for NaN/Inf — a bad query is recorded in `rejected` with an empty
  /// result list instead of poisoning the batch. A shed batch returns
  /// kResourceExhausted and bumps `song.batch.shed`. Valid queries behave
  /// exactly as under Search().
  StatusOr<BatchResult> TrySearch(const Dataset& queries, size_t k,
                                  const SongSearchOptions& options,
                                  const BatchTelemetry& telemetry = {},
                                  const BatchAdmission& admission = {}) const;

  size_t num_threads() const { return num_threads_; }

  /// Batches currently executing (admission-control accounting).
  size_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

 private:
  /// Request-lifecycle context for one checked batch: the shared monotonic
  /// epoch (workers read the const Timer concurrently) plus the stamps and
  /// identity taken before the workers fan out. Present only when telemetry
  /// enables a registry or flight recorder; the unchecked Search path and
  /// telemetry-free TrySearch runs pass nullptr and skip every stamp.
  struct LifecycleContext {
    const Timer* clock = nullptr;
    double enqueue_us = 0.0;
    double admitted_us = 0.0;
    uint64_t request_id_base = 0;
    uint64_t options_digest = 0;
  };

  BatchResult RunBatch(const Dataset& queries, size_t k,
                       const SongSearchOptions& options,
                       const BatchTelemetry& telemetry, bool validate,
                       const LifecycleContext* lifecycle = nullptr) const;

  const SongSearcher* searcher_;
  size_t num_threads_;
  mutable std::atomic<size_t> inflight_{0};
  /// Process-lifetime request ids for flight-recorder records.
  mutable std::atomic<uint64_t> request_seq_{0};
};

}  // namespace song

#endif  // SONG_SONG_BATCH_ENGINE_H_
