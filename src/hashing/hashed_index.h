// Copyright 2026 The SONG-Repro Authors.
//
// SONG search over hashed (binary) data — the out-of-GPU-memory deployment
// of §VII: the proximity graph is built once on the host from the original
// float vectors (the graph is small: degree * n ids), while the card holds
// only the h-bit codes; the bulk-distance stage computes Hamming distances
// between the hashed query and candidate codes.

#ifndef SONG_HASHING_HASHED_INDEX_H_
#define SONG_HASHING_HASHED_INDEX_H_

#include <cstddef>
#include <vector>

#include "core/bitvector.h"
#include "graph/fixed_degree_graph.h"
#include "hashing/random_projection.h"
#include "song/search_core.h"

namespace song {

class HashedSongIndex {
 public:
  /// `codes` and `graph` must outlive the index; `projection` hashes queries
  /// at search time.
  HashedSongIndex(const BinaryCodes* codes, const FixedDegreeGraph* graph,
                  const RandomProjection* projection, idx_t entry = 0);

  /// Hashes `query` (original float space) and runs the SONG pipeline on
  /// Hamming distance.
  std::vector<Neighbor> Search(const float* query, size_t k,
                               const SongSearchOptions& options,
                               SongWorkspace* workspace,
                               SearchStats* stats = nullptr) const;

  std::vector<Neighbor> Search(const float* query, size_t k,
                               const SongSearchOptions& options,
                               SearchStats* stats = nullptr) const;

  /// Device-resident bytes: codes + graph (what must fit in GPU memory).
  size_t DeviceMemoryBytes() const {
    return codes_->PayloadBytes() + graph_->MemoryBytes();
  }

  const BinaryCodes& codes() const { return *codes_; }
  const FixedDegreeGraph& graph() const { return *graph_; }

 private:
  const BinaryCodes* codes_;
  const FixedDegreeGraph* graph_;
  const RandomProjection* projection_;
  idx_t entry_;
};

}  // namespace song

#endif  // SONG_HASHING_HASHED_INDEX_H_
