#include "hashing/random_projection.h"

#include "core/logging.h"
#include "core/random.h"
#include "core/thread_pool.h"

namespace song {

RandomProjection::RandomProjection(size_t dim, size_t bits,
                                   ProjectionKind kind, uint64_t seed)
    : dim_(dim), bits_(bits) {
  SONG_CHECK_MSG(dim > 0 && bits > 0, "dim and bits must be positive");
  projections_.resize(bits_ * dim_);
  RandomEngine rng(seed);
  for (float& p : projections_) {
    p = static_cast<float>(kind == ProjectionKind::kNormal
                               ? rng.NextGaussian()
                               : rng.NextCauchy());
  }
}

void RandomProjection::EncodeInto(const float* vec, BinaryCodes* codes,
                                  idx_t row) const {
  SONG_DCHECK(codes->bits() >= bits_);
  for (size_t b = 0; b < bits_; ++b) {
    const float* r = &projections_[b * dim_];
    float dot = 0.0f;
    for (size_t d = 0; d < dim_; ++d) dot += r[d] * vec[d];
    if (dot >= 0.0f) codes->SetBit(row, b);
  }
}

BinaryCodes RandomProjection::EncodeDataset(const Dataset& data,
                                            size_t num_threads) const {
  SONG_CHECK_MSG(data.dim() == dim_, "dataset dim != projection dim");
  BinaryCodes codes(data.num(), bits_);
  ParallelFor(data.num(), num_threads, [&](size_t i, size_t) {
    EncodeInto(data.Row(static_cast<idx_t>(i)), &codes,
               static_cast<idx_t>(i));
  });
  return codes;
}

}  // namespace song
