// Copyright 2026 The SONG-Repro Authors.
//
// 1-bit random projections (paper §VII): each point x maps to h sign bits
// sgn(<x, r_i>) with r_i drawn iid normal (angle-preserving SimHash) or iid
// Cauchy (chi-squared similarity). Hamming distance between codes estimates
// similarity in the original space, shrinking a d-float point to h/32 words
// so out-of-GPU-memory datasets fit on the card.

#ifndef SONG_HASHING_RANDOM_PROJECTION_H_
#define SONG_HASHING_RANDOM_PROJECTION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/bitvector.h"
#include "core/dataset.h"

namespace song {

enum class ProjectionKind {
  kNormal = 0,  ///< sign random projection; collision prob = 1 - angle/pi
  kCauchy = 1,  ///< sign Cauchy projection; related to chi-squared similarity
};

class RandomProjection {
 public:
  /// Draws `bits` random d-dimensional projection vectors. The paper sets
  /// bits to a multiple of 32 so codes pack into u32 words.
  RandomProjection(size_t dim, size_t bits,
                   ProjectionKind kind = ProjectionKind::kNormal,
                   uint64_t seed = 20200312);

  size_t dim() const { return dim_; }
  size_t bits() const { return bits_; }

  /// Encodes one vector into the `row`-th code of `codes`.
  void EncodeInto(const float* vec, BinaryCodes* codes, idx_t row) const;

  /// Encodes a whole dataset.
  BinaryCodes EncodeDataset(const Dataset& data,
                            size_t num_threads = 0) const;

  /// Bytes of the projection matrix itself (kept on the host in the paper's
  /// deployment; queries are hashed before transfer).
  size_t MemoryBytes() const { return projections_.size() * sizeof(float); }

 private:
  size_t dim_;
  size_t bits_;
  /// bits_ x dim_ row-major projection matrix.
  std::vector<float> projections_;
};

}  // namespace song

#endif  // SONG_HASHING_RANDOM_PROJECTION_H_
