#include "hashing/hashed_index.h"

namespace song {

HashedSongIndex::HashedSongIndex(const BinaryCodes* codes,
                                 const FixedDegreeGraph* graph,
                                 const RandomProjection* projection,
                                 idx_t entry)
    : codes_(codes), graph_(graph), projection_(projection), entry_(entry) {
  SONG_CHECK(codes != nullptr && graph != nullptr && projection != nullptr);
  SONG_CHECK_MSG(codes->num() == graph->num_vertices(),
                 "codes / graph size mismatch");
  SONG_CHECK(projection->bits() == codes->bits());
  SONG_CHECK(entry < codes->num());
}

std::vector<Neighbor> HashedSongIndex::Search(const float* query, size_t k,
                                              const SongSearchOptions& options,
                                              SearchStats* stats) const {
  SongWorkspace workspace;
  return Search(query, k, options, &workspace, stats);
}

std::vector<Neighbor> HashedSongIndex::Search(const float* query, size_t k,
                                              const SongSearchOptions& options,
                                              SongWorkspace* workspace,
                                              SearchStats* stats) const {
  BinaryCodes query_code(1, codes_->bits());
  projection_->EncodeInto(query, &query_code, 0);
  const uint64_t* qc = query_code.Row(0);
  const size_t words = codes_->words();
  const size_t point_bytes = codes_->bits() / 8;
  const BinaryCodes& codes = *codes_;
  return SongSearchCore(
      *graph_, entry_, codes.num(), point_bytes,
      [&](idx_t v) {
        return static_cast<float>(HammingDistance(qc, codes.Row(v), words));
      },
      k, options, workspace, stats);
}

}  // namespace song
