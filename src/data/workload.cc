#include "data/workload.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "baselines/flat_index.h"
#include "core/logging.h"
#include "data/synthetic.h"
#include "graph/nsw_builder.h"

namespace song {

namespace {

constexpr char kGtMagic[4] = {'S', 'N', 'G', 'T'};

Status SaveGroundTruth(const std::string& path,
                       const std::vector<std::vector<idx_t>>& gt, size_t k) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const uint32_t k32 = static_cast<uint32_t>(k);
  const uint64_t nq = gt.size();
  bool ok = std::fwrite(kGtMagic, 1, 4, f) == 4 &&
            std::fwrite(&k32, sizeof(k32), 1, f) == 1 &&
            std::fwrite(&nq, sizeof(nq), 1, f) == 1;
  std::vector<idx_t> row(k, kInvalidIdx);
  for (size_t q = 0; ok && q < gt.size(); ++q) {
    std::fill(row.begin(), row.end(), kInvalidIdx);
    std::copy_n(gt[q].begin(), std::min(k, gt[q].size()), row.begin());
    ok = std::fwrite(row.data(), sizeof(idx_t), k, f) == k;
  }
  std::fclose(f);
  return ok ? Status::OK() : Status::IOError("short write " + path);
}

StatusOr<std::vector<std::vector<idx_t>>> LoadGroundTruth(
    const std::string& path, size_t expected_k, size_t expected_nq) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  char magic[4];
  uint32_t k32 = 0;
  uint64_t nq = 0;
  bool ok = std::fread(magic, 1, 4, f) == 4 &&
            std::memcmp(magic, kGtMagic, 4) == 0 &&
            std::fread(&k32, sizeof(k32), 1, f) == 1 &&
            std::fread(&nq, sizeof(nq), 1, f) == 1;
  if (!ok || k32 != expected_k || nq != expected_nq) {
    std::fclose(f);
    return Status::IOError("stale ground-truth cache: " + path);
  }
  std::vector<std::vector<idx_t>> gt(nq);
  std::vector<idx_t> row(k32);
  for (size_t q = 0; ok && q < nq; ++q) {
    ok = std::fread(row.data(), sizeof(idx_t), k32, f) == k32;
    if (ok) {
      gt[q].clear();
      for (const idx_t id : row) {
        if (id != kInvalidIdx) gt[q].push_back(id);
      }
    }
  }
  std::fclose(f);
  if (!ok) return Status::IOError("short read " + path);
  return gt;
}

}  // namespace

std::string ResolveCacheDir(const WorkloadOptions& options) {
  std::string dir = options.cache_dir;
  if (dir.empty()) {
    const char* env = std::getenv("SONG_CACHE_DIR");
    if (env != nullptr && env[0] != '\0') {
      dir = env;
    } else {
      dir = (std::filesystem::temp_directory_path() / "song_cache").string();
    }
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

double ResolveScale(const WorkloadOptions& options) {
  if (options.scale > 0.0) return options.scale;
  const char* env = std::getenv("SONG_BENCH_SCALE");
  if (env != nullptr && env[0] != '\0') {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 1.0;
}

Workload GetWorkload(const std::string& preset,
                     const WorkloadOptions& options) {
  const double scale = ResolveScale(options);
  const SyntheticSpec spec = PresetSpec(preset, scale);
  SyntheticData generated = GenerateSynthetic(spec);

  Workload w;
  w.name = preset;
  w.metric = spec.metric;
  w.data = std::move(generated.points);
  w.queries = std::move(generated.queries);
  w.gt_k = options.gt_k;

  char tag[128];
  std::snprintf(tag, sizeof(tag), "%s_n%zu_q%zu_k%zu", preset.c_str(),
                w.data.num(), w.queries.num(), options.gt_k);
  const std::string gt_path =
      ResolveCacheDir(options) + "/gt_" + tag + ".bin";

  if (options.use_cache) {
    auto loaded = LoadGroundTruth(gt_path, options.gt_k, w.queries.num());
    if (loaded.ok()) {
      w.ground_truth = std::move(loaded.value());
      return w;
    }
  }
  FlatIndex flat(&w.data, w.metric);
  w.ground_truth =
      FlatIndex::Ids(flat.BatchSearch(w.queries, options.gt_k,
                                      options.num_threads));
  if (options.use_cache) {
    const Status s = SaveGroundTruth(gt_path, w.ground_truth, options.gt_k);
    if (!s.ok()) {
      std::fprintf(stderr, "[workload] %s\n", s.ToString().c_str());
    }
  }
  return w;
}

FixedDegreeGraph GetOrBuildNswGraph(const Workload& workload, size_t degree,
                                    const WorkloadOptions& options) {
  char tag[160];
  std::snprintf(tag, sizeof(tag), "%s_n%zu_d%zu_m%d_v2", workload.name.c_str(),
                workload.data.num(), degree,
                static_cast<int>(workload.metric));
  const std::string path =
      ResolveCacheDir(options) + "/nsw_" + tag + ".bin";
  if (options.use_cache) {
    auto loaded = FixedDegreeGraph::Load(path);
    if (loaded.ok() &&
        loaded.value().num_vertices() == workload.data.num() &&
        loaded.value().degree() == degree) {
      return std::move(loaded.value());
    }
  }
  NswBuildOptions nsw;
  nsw.degree = degree;
  nsw.num_threads = options.num_threads;
  FixedDegreeGraph graph = NswBuilder::Build(workload.data, workload.metric,
                                             nsw);
  if (options.use_cache) {
    const Status s = graph.Save(path);
    if (!s.ok()) {
      std::fprintf(stderr, "[workload] %s\n", s.ToString().c_str());
    }
  }
  return graph;
}

}  // namespace song
