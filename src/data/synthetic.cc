#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"
#include "core/random.h"

namespace song {

namespace {

// Draws a cluster id with Zipf-like weights: w_c = 1 / (c+1)^skew.
size_t DrawCluster(RandomEngine& rng, const std::vector<double>& cdf) {
  const double u = rng.NextUniform();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return static_cast<size_t>(std::min<std::ptrdiff_t>(
      it - cdf.begin(), static_cast<std::ptrdiff_t>(cdf.size()) - 1));
}

}  // namespace

SyntheticData GenerateSynthetic(const SyntheticSpec& spec) {
  SONG_CHECK_MSG(spec.num_points > 0 && spec.dim > 0, "empty spec");
  RandomEngine rng(spec.seed);
  const size_t dim = spec.dim;

  // Cluster centers (one broad Gaussian when num_clusters == 0).
  const size_t k = std::max<size_t>(1, spec.num_clusters);
  std::vector<float> centers(k * dim, 0.0f);
  if (spec.num_clusters > 0) {
    for (float& c : centers) c = static_cast<float>(rng.NextGaussian());
  }

  // Zipf CDF over clusters.
  std::vector<double> cdf(k);
  double total = 0.0;
  for (size_t c = 0; c < k; ++c) {
    total += 1.0 / std::pow(static_cast<double>(c + 1), spec.skew);
    cdf[c] = total;
  }
  for (double& v : cdf) v /= total;

  const double sigma = spec.num_clusters > 0 ? spec.cluster_std : 1.0;
  auto draw_prototype = [&](float* row) {
    const size_t c = DrawCluster(rng, cdf);
    const float* center = &centers[c * dim];
    for (size_t d = 0; d < dim; ++d) {
      row[d] = center[d] + static_cast<float>(rng.NextGaussian() * sigma);
    }
  };

  SyntheticData out{Dataset(spec.num_points, dim),
                    Dataset(spec.num_queries, dim)};
  const size_t dup = std::max<size_t>(1, spec.duplicates_per_point);
  std::vector<float> proto(dim);
  std::vector<float> row(dim);
  auto perturb = [&](float* dst) {
    for (size_t d = 0; d < dim; ++d) {
      dst[d] = proto[d] +
               static_cast<float>(rng.NextGaussian() * spec.duplicate_std);
    }
  };
  for (size_t i = 0; i < spec.num_points; ++i) {
    if (i % dup == 0) draw_prototype(proto.data());
    if (dup == 1) {
      out.points.SetRow(static_cast<idx_t>(i), proto.data());
    } else {
      perturb(row.data());
      out.points.SetRow(static_cast<idx_t>(i), row.data());
    }
  }
  // Queries: perturbations of prototypes of random existing points (so each
  // query has genuinely close neighbors in the set, like MNIST8m's
  // deformation families).
  for (size_t i = 0; i < spec.num_queries; ++i) {
    if (dup == 1) {
      draw_prototype(row.data());
    } else {
      const size_t anchor =
          (rng.NextUint(spec.num_points) / dup) * dup;  // family start
      std::copy_n(out.points.Row(static_cast<idx_t>(anchor)), dim,
                  proto.data());
      perturb(row.data());
    }
    out.queries.SetRow(static_cast<idx_t>(i), row.data());
  }
  if (spec.normalize) {
    out.points.NormalizeRows();
    out.queries.NormalizeRows();
  }
  return out;
}

SyntheticSpec PresetSpec(const std::string& name, double scale) {
  auto scaled = [&](size_t n) {
    return std::max<size_t>(1000, static_cast<size_t>(n * scale));
  };
  SyntheticSpec spec;
  spec.name = name;
  if (name == "nytimes") {
    // 256-dim bag-of-words embeddings: heavily skewed, clustered, angular.
    spec.dim = 256;
    spec.num_points = scaled(8000);
    spec.num_clusters = 60;
    spec.cluster_std = 0.18;
    spec.skew = 1.1;
    spec.normalize = true;
    spec.seed = 101;
  } else if (name == "sift") {
    // 128-dim local image descriptors: mild structure, ANN-friendly.
    spec.dim = 128;
    spec.num_points = scaled(12000);
    spec.num_clusters = 400;
    spec.cluster_std = 0.9;
    spec.skew = 0.2;
    spec.seed = 102;
  } else if (name == "glove200") {
    // 200-dim word embeddings: skewed, clustered, angular.
    spec.dim = 200;
    spec.num_points = scaled(10000);
    spec.num_clusters = 80;
    spec.cluster_std = 0.22;
    spec.skew = 1.0;
    spec.normalize = true;
    spec.seed = 103;
  } else if (name == "uq_v") {
    // 256-dim video keyframe features: low skew, friendly.
    spec.dim = 256;
    spec.num_points = scaled(12000);
    spec.num_clusters = 500;
    spec.cluster_std = 1.0;
    spec.skew = 0.15;
    spec.seed = 104;
  } else if (name == "gist") {
    // 960-dim global image descriptors: highest dimensionality.
    spec.dim = 960;
    spec.num_points = scaled(5000);
    spec.num_clusters = 150;
    spec.cluster_std = 0.6;
    spec.skew = 0.4;
    spec.seed = 105;
  } else if (name == "mnist" || name == "mnist8m") {
    // 784-dim raster digits: ten broad classes, moderate spread. Rows are
    // normalized so the 1-bit random-projection experiment (§VII estimates
    // *angular* similarity) is measured against a consistent L2 ground
    // truth — on unit vectors L2 and cosine order identically.
    spec.dim = 784;
    spec.num_points = scaled(10000);
    spec.num_clusters = 10;
    spec.cluster_std = 0.55;
    spec.skew = 0.1;
    spec.duplicates_per_point = 8;  // MNIST8m = deformations of base digits
    spec.duplicate_std = 0.1;
    spec.normalize = true;
    spec.seed = 106;
  } else if (name == "mnist1m") {
    // The §VIII-H subsample used to validate hashing quality.
    spec = PresetSpec("mnist", scale);
    spec.name = "mnist1m";
    spec.num_points = std::max<size_t>(1000, spec.num_points / 4);
    spec.seed = 107;
  } else {
    SONG_CHECK_MSG(false, ("unknown preset: " + name).c_str());
  }
  spec.num_queries = 200;
  return spec;
}

std::vector<std::string> AllPresetNames() {
  return {"nytimes", "sift", "glove200", "uq_v", "gist", "mnist"};
}

}  // namespace song
