// Copyright 2026 The SONG-Repro Authors.
//
// Synthetic dataset generators standing in for the paper's six benchmark
// datasets (Table I). Each preset keeps the published dimensionality and the
// distribution character the paper leans on — NYTimes and GloVe200 are
// "heavily skewed and clustered" (hard for ANN), SIFT and UQ_V are
// un-clustered ("friendly"), GIST is very high-dimensional, MNIST8m is the
// out-of-GPU-memory case — while scaling the point counts so every bench
// builds and runs in CI time. See DESIGN.md §1 for the substitution
// rationale.

#ifndef SONG_DATA_SYNTHETIC_H_
#define SONG_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"

namespace song {

struct SyntheticSpec {
  std::string name;
  size_t dim = 128;
  size_t num_points = 20000;
  size_t num_queries = 300;
  /// 0 = no cluster structure (points drawn from one broad Gaussian).
  size_t num_clusters = 0;
  /// Within-cluster standard deviation relative to the inter-cluster scale
  /// (smaller = tighter, harder clusters).
  double cluster_std = 0.25;
  /// Zipf exponent for cluster sizes; 0 = balanced, ~1 = heavily skewed.
  double skew = 0.0;
  /// Near-duplicate structure: every `duplicates_per_point` consecutive
  /// points are small perturbations (std `duplicate_std`) of one shared
  /// prototype. 1 = independent points. MNIST8m is literally built this way
  /// (8.1M deformations of 60k base digits), and this structure is what
  /// makes the 1-bit-hashing experiment (§VII / Fig 14) meaningful: the true
  /// nearest neighbor is angularly far closer than everything else.
  size_t duplicates_per_point = 1;
  double duplicate_std = 0.05;

  /// L2-normalize rows (angular datasets: NYTimes, GloVe).
  bool normalize = false;
  Metric metric = Metric::kL2;
  uint64_t seed = 1;
};

/// Generates the point set and a query set drawn from the same mixture.
struct SyntheticData {
  Dataset points;
  Dataset queries;
};
SyntheticData GenerateSynthetic(const SyntheticSpec& spec);

/// Named presets mirroring Table I (scaled): "nytimes", "sift", "glove200",
/// "uq_v", "gist", "mnist" (and "mnist1m", the §VIII-H subsample). `scale`
/// multiplies point counts.
SyntheticSpec PresetSpec(const std::string& name, double scale = 1.0);

/// All six preset names in Table I order.
std::vector<std::string> AllPresetNames();

}  // namespace song

#endif  // SONG_DATA_SYNTHETIC_H_
