#!/usr/bin/env python3
"""Performance gate for the BENCH_*.json micro-bench artifacts.

Compares candidate bench artifacts against committed baselines
(bench/baselines/) and fails when any cell regressed beyond the tolerance:

    bench_gate.py --baseline bench/baselines --candidate out/ \
                  [--tolerance 0.5] [--normalize] [--self-test]

Matching: baseline and candidate files pair up by their "bench" field; rows
pair up on every non-metric field (dim/metric/mode/tier, structure/size, ...).
The timing metric is auto-detected per row (ns_per_pair, ns_per_op, ...).

--normalize divides every candidate/baseline ratio by the median ratio
before applying the tolerance. CI machines differ from the machine that
recorded the baseline by a roughly uniform scalar; the median removes that
scalar so the gate tests the *shape* of the profile (one structure suddenly
2x slower) instead of absolute wall time. Use a generous --tolerance: these
are microsecond cells on shared runners.

--self-test verifies the gate's own discrimination: the baselines must pass
against themselves, and a synthesized candidate with every metric doubled
must fail. Exits 0 only if both hold.

Exit codes: 0 = pass, 1 = regression detected (or self-test failure),
2 = usage / IO / schema error. Missing candidate rows or files warn and are
skipped — a partial run gates what it ran.
"""

import argparse
import copy
import json
import os
import statistics
import sys

METRIC_KEYS = ("ns_per_pair", "ns_per_code", "ns_per_op", "ns_per_query",
               "seconds")
# Derived ratios recomputed from the primary metric; never gated directly.
IGNORED_KEYS = ("speedup_vs_scalar",)


def fail_usage(msg):
    print("bench_gate: error: %s" % msg, file=sys.stderr)
    sys.exit(2)


def load_artifacts(path):
    """Returns {bench_name: doc} from a file or a directory of BENCH_*.json."""
    paths = []
    if os.path.isdir(path):
        paths = [
            os.path.join(path, f)
            for f in sorted(os.listdir(path))
            if f.startswith("BENCH_") and f.endswith(".json")
        ]
    elif os.path.isfile(path):
        paths = [path]
    else:
        fail_usage("no such file or directory: %s" % path)
    docs = {}
    for p in paths:
        try:
            with open(p) as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            fail_usage("cannot parse %s: %s" % (p, e))
        if "bench" not in doc or "results" not in doc:
            fail_usage("%s lacks the bench/results fields" % p)
        docs[doc["bench"]] = doc
    if not docs:
        fail_usage("no BENCH_*.json artifacts under %s" % path)
    return docs


def metric_key(row):
    for k in METRIC_KEYS:
        if k in row:
            return k
    return None


def row_key(row):
    """Identity of a result row: every non-metric, non-derived field."""
    skip = set(METRIC_KEYS) | set(IGNORED_KEYS)
    return tuple(sorted((k, v) for k, v in row.items() if k not in skip))


def compare_bench(name, base_doc, cand_doc, tolerance, normalize):
    """Returns (regressions, compared) for one bench pair."""
    cand_rows = {}
    for row in cand_doc.get("results", []):
        cand_rows[row_key(row)] = row

    cells = []  # (label, base_value, cand_value)
    for row in base_doc.get("results", []):
        key = metric_key(row)
        if key is None:
            continue
        cand = cand_rows.get(row_key(row))
        label = ", ".join("%s=%s" % (k, v) for k, v in row_key(row))
        if cand is None or key not in cand:
            print("bench_gate: warning: %s: no candidate row for {%s}; "
                  "skipped" % (name, label))
            continue
        base_v, cand_v = float(row[key]), float(cand[key])
        if base_v <= 0.0:
            print("bench_gate: warning: %s: non-positive baseline for {%s}; "
                  "skipped" % (name, label))
            continue
        cells.append((label, base_v, cand_v))

    if not cells:
        return [], 0

    ratios = [c / b for _, b, c in cells]
    scale = statistics.median(ratios) if normalize else 1.0
    if scale <= 0.0:
        scale = 1.0

    regressions = []
    for (label, base_v, cand_v), ratio in zip(cells, ratios):
        adjusted = ratio / scale
        if adjusted > 1.0 + tolerance:
            regressions.append(
                "%s: {%s}: %.3f -> %.3f (%.2fx%s, tolerance %.2fx)"
                % (name, label, base_v, cand_v, adjusted,
                   ", median-normalized" if normalize else "",
                   1.0 + tolerance))
    if normalize:
        print("bench_gate: %s: %d cells, median ratio %.3f" %
              (name, len(cells), scale))
    return regressions, len(cells)


def run_gate(baseline, candidate_docs, tolerance, normalize):
    base_docs = load_artifacts(baseline)
    regressions = []
    compared = 0
    for name, base_doc in sorted(base_docs.items()):
        cand_doc = candidate_docs.get(name)
        if cand_doc is None:
            print("bench_gate: warning: no candidate artifact for bench "
                  "'%s'; skipped" % name)
            continue
        regs, n = compare_bench(name, base_doc, cand_doc, tolerance,
                                normalize)
        regressions.extend(regs)
        compared += n
    if compared == 0:
        fail_usage("no comparable cells between baseline and candidate")
    return regressions, compared


def self_test(baseline, tolerance, normalize):
    base_docs = load_artifacts(baseline)

    regs, compared = run_gate(baseline, base_docs, tolerance, normalize)
    if regs:
        print("bench_gate: SELF-TEST FAILED: baselines do not pass against "
              "themselves:", file=sys.stderr)
        for r in regs:
            print("  " + r, file=sys.stderr)
        return 1

    slowed = {}
    for name, doc in base_docs.items():
        doc2 = copy.deepcopy(doc)
        for row in doc2.get("results", []):
            key = metric_key(row)
            if key is not None:
                row[key] = float(row[key]) * 2.0
        slowed[name] = doc2
    regs, _ = run_gate(baseline, slowed, tolerance, normalize)
    if normalize:
        # A uniform 2x is exactly what normalization forgives (it looks
        # like a slower machine); plant the slowdown in a quarter of the
        # cells instead, so the median stays ~1.0 and the planted cells
        # stand out as genuine shape changes.
        slowed = {}
        for name, doc in base_docs.items():
            doc2 = copy.deepcopy(doc)
            for i, row in enumerate(doc2.get("results", [])):
                key = metric_key(row)
                if key is not None and i % 4 == 0:
                    row[key] = float(row[key]) * 2.0
            slowed[name] = doc2
        regs, _ = run_gate(baseline, slowed, tolerance, normalize)
    if not regs:
        print("bench_gate: SELF-TEST FAILED: planted 2x slowdown was not "
              "detected (tolerance too lax?)", file=sys.stderr)
        return 1
    print("bench_gate: self-test OK over %d cells (pass on identity, fail "
          "on planted 2x)" % compared)
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", required=True,
                    help="baseline BENCH_*.json file or directory")
    ap.add_argument("--candidate",
                    help="candidate BENCH_*.json file or directory")
    ap.add_argument("--tolerance", type=float, default=0.5,
                    help="allowed fractional slowdown per cell (default 0.5 "
                         "= 1.5x)")
    ap.add_argument("--normalize", action="store_true",
                    help="divide ratios by their median (machine-speed "
                         "normalization)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate detects a planted 2x slowdown")
    args = ap.parse_args()
    if args.tolerance < 0:
        fail_usage("--tolerance must be >= 0")

    if args.self_test:
        sys.exit(self_test(args.baseline, args.tolerance, args.normalize))
    if not args.candidate:
        fail_usage("--candidate is required (or use --self-test)")

    regressions, compared = run_gate(args.baseline,
                                     load_artifacts(args.candidate),
                                     args.tolerance, args.normalize)
    if regressions:
        print("bench_gate: FAIL: %d of %d cells regressed beyond "
              "tolerance:" % (len(regressions), compared), file=sys.stderr)
        for r in regressions:
            print("  " + r, file=sys.stderr)
        sys.exit(1)
    print("bench_gate: OK: %d cells within tolerance" % compared)
    sys.exit(0)


if __name__ == "__main__":
    main()
