// song_server — the fault-tolerant serving front-end (docs/serving.md).
//
//   song_server --data data.sngd --graph graph.sngg
//               [--host 127.0.0.1] [--port 0] [--port-file path]
//               [--metric l2|ip|cosine] [--config hashtable|sel|seldel|
//                bloom|cuckoo]
//               [--max-batch 32] [--max-wait-us 2000] [--queue-capacity 256]
//               [--max-inflight N] [--max-connections 64] [--workers 2]
//               [--engine-threads 0] [--io-timeout-ms 5000]
//               [--default-queue-size 64]
//               [--fault-spec spec] [--fault-seed N]
//               [--statusz-on-exit out.json] [--duration-s N]
//
// Listens for SNGF frames (src/serve/frame.h), batches requests through the
// continuous-batching scheduler and answers every accepted request with a
// typed Status. Prints "LISTENING port=N" once accepting (and writes the
// port to --port-file if given) so harnesses can wait for readiness without
// racing the bind.
//
// Shutdown: SIGTERM or SIGINT (or --duration-s elapsing) triggers the
// graceful drain — stop accepting, flush the queue, answer everything in
// flight — then dumps the flight recorder to stderr, writes the
// --statusz-on-exit document, prints the outcome-conservation summary
//
//   DRAINED accepted=A ok=B shed=C deadline=D error=E
//
// and exits 0. A second signal during the drain is ignored (the drain is
// already running and always terminates).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <initializer_list>
#include <map>
#include <string>

#include "core/fault_injection.h"
#include "obs/exporters.h"
#include "serve/server.h"
#include "song/song_searcher.h"

#ifndef SONG_GIT_DESCRIBE
#define SONG_GIT_DESCRIBE "unknown"
#endif

namespace {

using namespace song;  // NOLINT: CLI main file

using Flags = std::map<std::string, std::string>;

Flags ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags[arg] = argv[++i];
    } else {
      flags[arg] = "1";
    }
  }
  return flags;
}

void CheckFlags(const Flags& flags,
                std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : flags) {
    bool known = false;
    for (const char* a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
      std::exit(2);
    }
  }
}

std::string Require(const Flags& flags, const std::string& key) {
  const auto it = flags.find(key);
  if (it == flags.end()) {
    std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
    std::exit(2);
  }
  return it->second;
}

std::string Optional(const Flags& flags, const std::string& key,
                     const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

uint64_t ParseUint(const Flags& flags, const std::string& key,
                   const std::string& fallback) {
  const std::string value = Optional(flags, key, fallback);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || value[0] == '-' || end == value.c_str() ||
      *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr,
                 "flag --%s expects a non-negative integer, got \"%s\"\n",
                 key.c_str(), value.c_str());
    std::exit(2);
  }
  return v;
}

Metric ParseMetric(const std::string& name) {
  if (name == "l2") return Metric::kL2;
  if (name == "ip") return Metric::kInnerProduct;
  if (name == "cosine") return Metric::kCosine;
  std::fprintf(stderr, "unknown metric: %s\n", name.c_str());
  std::exit(2);
}

SongSearchOptions ParseConfig(const std::string& name) {
  if (name == "hashtable") return SongSearchOptions::HashTable();
  if (name == "sel") return SongSearchOptions::HashTableSel();
  if (name == "seldel") return SongSearchOptions::HashTableSelDel();
  if (name == "bloom") return SongSearchOptions::Bloom();
  if (name == "cuckoo") return SongSearchOptions::Cuckoo();
  std::fprintf(stderr, "unknown config: %s\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv, 1);
  CheckFlags(flags,
             {"data", "graph", "host", "port", "port-file", "metric",
              "config", "max-batch", "max-wait-us", "queue-capacity",
              "max-inflight", "max-connections", "workers", "engine-threads",
              "io-timeout-ms", "default-queue-size", "fault-spec",
              "fault-seed", "statusz-on-exit", "duration-s"});

  const std::string fault_spec = Optional(flags, "fault-spec", "");
  if (!fault_spec.empty()) {
    const uint64_t fault_seed = ParseUint(flags, "fault-seed", "42");
    const Status fs =
        fault::FaultRegistry::Global().Configure(fault_spec, fault_seed);
    if (!fs.ok()) {
      std::fprintf(stderr, "invalid --fault-spec: %s\n",
                   fs.ToString().c_str());
      return fs.ExitCode();
    }
  } else if (flags.count("fault-seed") != 0) {
    std::fprintf(stderr, "--fault-seed requires --fault-spec\n");
    return 2;
  }

  auto data_loaded = Dataset::Load(Require(flags, "data"));
  if (!data_loaded.ok()) {
    std::fprintf(stderr, "%s\n", data_loaded.status().ToString().c_str());
    return data_loaded.status().ExitCode();
  }
  const Dataset data = std::move(data_loaded.value());
  auto graph_loaded = FixedDegreeGraph::Load(Require(flags, "graph"));
  if (!graph_loaded.ok()) {
    std::fprintf(stderr, "%s\n", graph_loaded.status().ToString().c_str());
    return graph_loaded.status().ExitCode();
  }
  const FixedDegreeGraph graph = std::move(graph_loaded.value());
  const Metric metric = ParseMetric(Optional(flags, "metric", "l2"));
  const SongSearcher searcher(&data, &graph, metric, /*entry=*/0);

  serve::ServerOptions options;
  options.host = Optional(flags, "host", "127.0.0.1");
  options.port = static_cast<uint16_t>(ParseUint(flags, "port", "0"));
  options.max_connections = ParseUint(flags, "max-connections", "64");
  options.queue_capacity = ParseUint(flags, "queue-capacity", "256");
  options.max_batch = ParseUint(flags, "max-batch", "32");
  options.max_wait_us = ParseUint(flags, "max-wait-us", "2000");
  options.num_workers = ParseUint(flags, "workers", "2");
  options.engine_threads = ParseUint(flags, "engine-threads", "0");
  options.max_inflight = ParseUint(flags, "max-inflight", "0");
  options.io_timeout_ms =
      static_cast<int>(ParseUint(flags, "io-timeout-ms", "5000"));
  options.default_queue_size = static_cast<uint32_t>(
      ParseUint(flags, "default-queue-size", "64"));
  options.build_describe = SONG_GIT_DESCRIBE;
  options.base_options = ParseConfig(Optional(flags, "config", "seldel"));
  if (options.max_batch == 0) {
    std::fprintf(stderr, "flag --max-batch must be >= 1\n");
    return 2;
  }
  if (options.num_workers == 0) {
    std::fprintf(stderr, "flag --workers must be >= 1\n");
    return 2;
  }

  // Block the shutdown signals in every thread (the server's threads
  // inherit this mask) so they are consumed only by the sigtimedwait below
  // — the drain runs on the main thread, never in a signal handler.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  if (pthread_sigmask(SIG_BLOCK, &sigs, nullptr) != 0) {
    std::fprintf(stderr, "pthread_sigmask failed: errno %d\n", errno);
    return 1;
  }
  std::signal(SIGPIPE, SIG_IGN);  // belt to MSG_NOSIGNAL's suspenders

  obs::MetricsRegistry registry;
  serve::SongServer server(&searcher, options, &registry);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return started.ExitCode();
  }
  std::printf("LISTENING port=%u\n", static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  const std::string port_file = Optional(flags, "port-file", "");
  if (!port_file.empty()) {
    const std::string content = std::to_string(server.port()) + "\n";
    if (!obs::WriteStringToFile(port_file, content)) return 1;
  }

  const uint64_t duration_s = ParseUint(flags, "duration-s", "0");
  const char* why = "signal";
  if (duration_s > 0) {
    struct timespec wait;
    wait.tv_sec = static_cast<time_t>(duration_s);
    wait.tv_nsec = 0;
    // Shutdown on whichever comes first: a signal or the duration.
    const int sig = sigtimedwait(&sigs, nullptr, &wait);
    if (sig < 0) why = "duration elapsed";
  } else {
    int sig = 0;
    if (sigwait(&sigs, &sig) != 0) {
      std::fprintf(stderr, "sigwait failed: errno %d\n", errno);
    }
  }
  std::fprintf(stderr, "shutting down (%s): draining\n", why);

  const Status drained = server.Drain();
  if (!drained.ok()) {
    std::fprintf(stderr, "drain: %s\n", drained.ToString().c_str());
  }
  std::fprintf(stderr, "flight recorder (drain post-mortem):\n");
  std::fputs(server.flight_recorder().ToJson().c_str(), stderr);

  const std::string statusz_path = Optional(flags, "statusz-on-exit", "");
  int status = 0;
  if (!statusz_path.empty()) {
    if (!obs::WriteStringToFile(statusz_path, server.StatuszPayload())) {
      status = 1;
    } else {
      std::printf("wrote statusz to %s\n", statusz_path.c_str());
    }
  }

  const serve::ServeCounterSnapshot c = server.counters();
  std::printf("DRAINED accepted=%llu ok=%llu shed=%llu deadline=%llu "
              "error=%llu\n",
              static_cast<unsigned long long>(c.accepted),
              static_cast<unsigned long long>(c.ok),
              static_cast<unsigned long long>(c.shed),
              static_cast<unsigned long long>(c.deadline),
              static_cast<unsigned long long>(c.error));
  if (c.accepted != c.ok + c.shed + c.deadline + c.error) {
    std::fprintf(stderr,
                 "outcome conservation violated: accepted != "
                 "ok+shed+deadline+error\n");
    return 1;
  }
  return status;
}
