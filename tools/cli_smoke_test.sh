#!/usr/bin/env bash
# End-to-end smoke test for song_cli: gen -> build -> stats -> gt -> search.
set -euo pipefail
CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$CLI" gen --preset sift --scale 0.05 --out "$DIR/data.sngd" --queries "$DIR/q.sngd"
"$CLI" build --data "$DIR/data.sngd" --out "$DIR/graph.sngg" --degree 16
"$CLI" stats --graph "$DIR/graph.sngg" | grep -q "reachable from 0: "
"$CLI" gt --data "$DIR/data.sngd" --queries "$DIR/q.sngd" --k 10 --out "$DIR/gt.sngd"
OUT=$("$CLI" search --data "$DIR/data.sngd" --graph "$DIR/graph.sngg" \
      --queries "$DIR/q.sngd" --k 10 --queue 96 --gt "$DIR/gt.sngd")
echo "$OUT"
echo "$OUT" | grep -q "recall@10"
RECALL=$(echo "$OUT" | sed -n 's/recall@10: //p')
# Recall must be decent on this easy preset.
python3 - "$RECALL" <<'PY'
import sys
assert float(sys.argv[1]) >= 0.8, f"recall too low: {sys.argv[1]}"
PY

# Telemetry: metrics + Chrome trace exports must be well-formed and keep
# the per-query stage spans consistent with the cost model (within 1%).
TOOLS_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
"$CLI" search --data "$DIR/data.sngd" --graph "$DIR/graph.sngg" \
      --queries "$DIR/q.sngd" --k 10 --queue 96 \
      --metrics "$DIR/metrics.prom" --metrics-json "$DIR/metrics.json" \
      --trace "$DIR/out.trace.json" --trace-sample 2
python3 -m json.tool "$DIR/metrics.json" > /dev/null
python3 -m json.tool "$DIR/out.trace.json" > /dev/null
python3 "$TOOLS_DIR/validate_telemetry.py" \
      --trace "$DIR/out.trace.json" \
      --metrics-json "$DIR/metrics.json" \
      --metrics "$DIR/metrics.prom"
echo "CLI SMOKE OK"
