#!/usr/bin/env bash
# End-to-end smoke test for song_cli: gen -> build -> stats -> gt -> search.
set -euo pipefail
CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$CLI" gen --preset sift --scale 0.05 --out "$DIR/data.sngd" --queries "$DIR/q.sngd"
"$CLI" build --data "$DIR/data.sngd" --out "$DIR/graph.sngg" --degree 16
"$CLI" stats --graph "$DIR/graph.sngg" | grep -q "reachable from 0: "
"$CLI" gt --data "$DIR/data.sngd" --queries "$DIR/q.sngd" --k 10 --out "$DIR/gt.sngd"
OUT=$("$CLI" search --data "$DIR/data.sngd" --graph "$DIR/graph.sngg" \
      --queries "$DIR/q.sngd" --k 10 --queue 96 --gt "$DIR/gt.sngd")
echo "$OUT"
echo "$OUT" | grep -q "recall@10"
RECALL=$(echo "$OUT" | sed -n 's/recall@10: //p')
# Recall must be decent on this easy preset.
python3 - "$RECALL" <<'PY'
import sys
assert float(sys.argv[1]) >= 0.8, f"recall too low: {sys.argv[1]}"
PY
echo "CLI SMOKE OK"
