#!/usr/bin/env bash
# End-to-end smoke test for song_cli: gen -> build -> stats -> gt -> search,
# plus a short serving-tier leg (song_server + song_loadgen) when those
# binaries are passed as $2/$3.
set -euo pipefail
CLI="$1"
SERVER="${2:-}"
LOADGEN="${3:-}"
DIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -KILL "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$DIR"
}
trap cleanup EXIT

"$CLI" gen --preset sift --scale 0.05 --out "$DIR/data.sngd" --queries "$DIR/q.sngd"
"$CLI" build --data "$DIR/data.sngd" --out "$DIR/graph.sngg" --degree 16
"$CLI" stats --graph "$DIR/graph.sngg" | grep -q "reachable from 0: "
"$CLI" gt --data "$DIR/data.sngd" --queries "$DIR/q.sngd" --k 10 --out "$DIR/gt.sngd"
OUT=$("$CLI" search --data "$DIR/data.sngd" --graph "$DIR/graph.sngg" \
      --queries "$DIR/q.sngd" --k 10 --queue 96 --gt "$DIR/gt.sngd")
echo "$OUT"
echo "$OUT" | grep -q "recall@10"
RECALL=$(echo "$OUT" | sed -n 's/recall@10: //p')
# Recall must be decent on this easy preset.
python3 - "$RECALL" <<'PY'
import sys
assert float(sys.argv[1]) >= 0.8, f"recall too low: {sys.argv[1]}"
PY

# Telemetry: metrics + Chrome trace exports must be well-formed and keep
# the per-query stage spans consistent with the cost model (within 1%).
TOOLS_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
"$CLI" search --data "$DIR/data.sngd" --graph "$DIR/graph.sngg" \
      --queries "$DIR/q.sngd" --k 10 --queue 96 \
      --metrics "$DIR/metrics.prom" --metrics-json "$DIR/metrics.json" \
      --trace "$DIR/out.trace.json" --trace-sample 2
python3 -m json.tool "$DIR/metrics.json" > /dev/null
python3 -m json.tool "$DIR/out.trace.json" > /dev/null
python3 "$TOOLS_DIR/validate_telemetry.py" \
      --trace "$DIR/out.trace.json" \
      --metrics-json "$DIR/metrics.json" \
      --metrics "$DIR/metrics.prom"

# --- Robustness smoke cases (docs/robustness.md) ---------------------------

# expect_fail <expected-exit> <grep-pattern> -- <cli args...>
# Runs the CLI expecting a nonzero exit and a diagnostic on stderr.
expect_fail() {
  local want_exit="$1" pattern="$2"; shift 3
  local stderr_file="$DIR/stderr.txt" code=0
  "$CLI" "$@" >/dev/null 2>"$stderr_file" || code=$?
  if [ "$code" -ne "$want_exit" ]; then
    echo "FAIL: expected exit $want_exit, got $code for: $*" >&2
    cat "$stderr_file" >&2
    exit 1
  fi
  if ! grep -q "$pattern" "$stderr_file"; then
    echo "FAIL: stderr missing \"$pattern\" for: $*" >&2
    cat "$stderr_file" >&2
    exit 1
  fi
}

# Missing input file: diagnostic + exit 1, never a crash.
expect_fail 1 "" -- stats --graph "$DIR/no_such_file.sngg"

# Corrupt (truncated) graph: DataLoss diagnostic + exit 1.
head -c 24 "$DIR/graph.sngg" > "$DIR/trunc.sngg"
expect_fail 1 "DataLoss" -- stats --graph "$DIR/trunc.sngg"

# Corrupt dataset fed to search: DataLoss diagnostic + exit 1.
head -c 10 "$DIR/data.sngd" > "$DIR/trunc.sngd"
expect_fail 1 "DataLoss" -- search --data "$DIR/trunc.sngd" \
      --graph "$DIR/graph.sngg" --queries "$DIR/q.sngd"

# Unknown flag and malformed numeric flag: usage errors, exit 2.
expect_fail 2 "unknown flag" -- search --data "$DIR/data.sngd" \
      --graph "$DIR/graph.sngg" --queries "$DIR/q.sngd" --no-such-flag 1
expect_fail 2 "non-negative integer" -- search --data "$DIR/data.sngd" \
      --graph "$DIR/graph.sngg" --queries "$DIR/q.sngd" --k banana
expect_fail 2 "requires --fault-spec" -- search --data "$DIR/data.sngd" \
      --graph "$DIR/graph.sngg" --queries "$DIR/q.sngd" --fault-seed 7

# Malformed fault spec: diagnostic + exit 2.
expect_fail 2 "invalid --fault-spec" -- search --data "$DIR/data.sngd" \
      --graph "$DIR/graph.sngg" --queries "$DIR/q.sngd" --fault-spec "oops=2"

# Deadline and cost budgets: run must succeed and report degraded counts.
OUT=$("$CLI" search --data "$DIR/data.sngd" --graph "$DIR/graph.sngg" \
      --queries "$DIR/q.sngd" --k 10 --queue 96 --deadline-us 1000000)
echo "$OUT" | grep -q "degraded queries: "
OUT=$("$CLI" search --data "$DIR/data.sngd" --graph "$DIR/graph.sngg" \
      --queries "$DIR/q.sngd" --k 10 --queue 96 --cost-budget 1)
echo "$OUT" | grep -q "degraded queries: "

# --- Online mutation smoke cases (docs/testing.md) -------------------------

# Churn the index, serve from the final snapshot, and keep recall against
# the exact live-set scan decent; metrics must record the mutations.
OUT=$("$CLI" search --data "$DIR/data.sngd" --graph "$DIR/graph.sngg" \
      --queries "$DIR/q.sngd" --k 10 --queue 96 \
      --mutate-spec rounds=3,inserts=15,deletes=5,seed=11 \
      --metrics-json "$DIR/mutate_metrics.json")
echo "$OUT"
echo "$OUT" | grep -q "mutated index: 45 inserts, 15 deletes"
RECALL=$(echo "$OUT" | sed -n 's/recall@10 vs live set: //p')
python3 - "$RECALL" <<'PY'
import sys
assert float(sys.argv[1]) >= 0.8, f"churned recall too low: {sys.argv[1]}"
PY
python3 - "$DIR/mutate_metrics.json" <<'PY'
import json, sys
m = json.load(open(sys.argv[1]))
flat = m.get("counters", m)
def find(name):
    if isinstance(flat, dict) and name in flat: return flat[name]
    for section in m.values():
        if isinstance(section, dict) and name in section: return section[name]
    raise AssertionError(f"{name} missing from metrics JSON")
assert find("song.index.inserts") == 45
assert find("song.index.deletes") == 15
PY

# Malformed spec / illegal flag combinations: usage errors, exit 2.
expect_fail 2 "rounds >= 1" -- search --data "$DIR/data.sngd" \
      --graph "$DIR/graph.sngg" --queries "$DIR/q.sngd" \
      --mutate-spec inserts=5
expect_fail 2 "malformed --mutate-spec" -- search --data "$DIR/data.sngd" \
      --graph "$DIR/graph.sngg" --queries "$DIR/q.sngd" \
      --mutate-spec rounds=banana
expect_fail 2 "incompatible with --gt" -- search --data "$DIR/data.sngd" \
      --graph "$DIR/graph.sngg" --queries "$DIR/q.sngd" \
      --mutate-spec rounds=1,inserts=5 --gt "$DIR/gt.sngd"
expect_fail 2 "incompatible with --reorder" -- search --data "$DIR/data.sngd" \
      --graph "$DIR/graph.sngg" --queries "$DIR/q.sngd" \
      --mutate-spec rounds=1,inserts=5 --reorder bfs

# Fault injection: an always-on transfer fault must fail the search with a
# retryable diagnostic; a zero-rate spec must not change anything.
expect_fail 1 "transfer.htod" -- search --data "$DIR/data.sngd" \
      --graph "$DIR/graph.sngg" --queries "$DIR/q.sngd" \
      --fault-spec "transfer.htod=1" --fault-seed 7
"$CLI" search --data "$DIR/data.sngd" --graph "$DIR/graph.sngg" \
      --queries "$DIR/q.sngd" --k 10 --fault-spec "transfer.htod=0" \
      | grep -q "faults injected: 0"

# --- Quantized traversal smoke cases (docs/performance.md) -----------------

# Train + save a codebook, search with ADC + rerank: recall must stay close
# to exact on this easy preset, and the song.search.quant.* metrics must be
# emitted alongside a telemetry-valid metrics file.
OUT=$("$CLI" search --data "$DIR/data.sngd" --graph "$DIR/graph.sngg" \
      --queries "$DIR/q.sngd" --k 10 --queue 96 --gt "$DIR/gt.sngd" \
      --pq m=16,rerank=96,save="$DIR/code.sngq" \
      --metrics-json "$DIR/pq_metrics.json")
echo "$OUT"
echo "$OUT" | grep -q "pq: m=16"
echo "$OUT" | grep -q "wrote PQ codebook to "
RECALL=$(echo "$OUT" | sed -n 's/recall@10: //p')
python3 - "$RECALL" <<'PY'
import sys
assert float(sys.argv[1]) >= 0.8, f"pq recall too low: {sys.argv[1]}"
PY
python3 -m json.tool "$DIR/pq_metrics.json" > /dev/null
python3 "$TOOLS_DIR/validate_telemetry.py" --metrics-json "$DIR/pq_metrics.json"
python3 - "$DIR/pq_metrics.json" <<'PY'
import json, sys
m = json.load(open(sys.argv[1]))
def find(name):
    for section in m.values():
        if isinstance(section, dict) and name in section: return section[name]
    raise AssertionError(f"{name} missing from metrics JSON")
assert find("song.search.quant.adc_tables") > 0
assert find("song.search.quant.rerank_candidates") > 0
assert find("song.search.quant.rerank_bytes_loaded") > 0
PY

# Reload the saved codebook: same m, and the auto rerank pool (rerank
# omitted) must serve without retraining.
OUT=$("$CLI" search --data "$DIR/data.sngd" --graph "$DIR/graph.sngg" \
      --queries "$DIR/q.sngd" --k 10 --queue 96 --gt "$DIR/gt.sngd" \
      --pq load="$DIR/code.sngq")
echo "$OUT" | grep -q "pq: m=16"

# Corrupt (truncated) codebook: DataLoss diagnostic + exit 1, never a crash.
head -c 20 "$DIR/code.sngq" > "$DIR/trunc.sngq"
expect_fail 1 "DataLoss" -- search --data "$DIR/data.sngd" \
      --graph "$DIR/graph.sngg" --queries "$DIR/q.sngd" \
      --pq load="$DIR/trunc.sngq"

# Malformed --pq specs and illegal combinations: usage errors, exit 2.
expect_fail 2 "requires m=" -- search --data "$DIR/data.sngd" \
      --graph "$DIR/graph.sngg" --queries "$DIR/q.sngd" --pq rerank=50
expect_fail 2 "malformed --pq" -- search --data "$DIR/data.sngd" \
      --graph "$DIR/graph.sngg" --queries "$DIR/q.sngd" --pq m=banana
expect_fail 2 "incompatible with --pq" -- search --data "$DIR/data.sngd" \
      --graph "$DIR/graph.sngg" --queries "$DIR/q.sngd" \
      --mutate-spec rounds=1,inserts=5 --pq m=8

# --- Request-lifecycle observability (docs/observability.md) ---------------

# Statusz + flight recorder on a concurrent mutate-serve run: both dumps
# must pass schema validation, including the song.req.* histogram
# telescoping invariant and per-record stage sums.
"$CLI" search --data "$DIR/data.sngd" --graph "$DIR/graph.sngg" \
      --queries "$DIR/q.sngd" --k 10 --queue 96 \
      --mutate-spec rounds=2,inserts=10,deletes=4,seed=11 --max-inflight 4 \
      --statusz "$DIR/statusz.json" --flight-recorder "$DIR/flight.json"
python3 -m json.tool "$DIR/statusz.json" > /dev/null
python3 -m json.tool "$DIR/flight.json" > /dev/null
python3 "$TOOLS_DIR/validate_telemetry.py" \
      --statusz "$DIR/statusz.json" --flight-recorder "$DIR/flight.json"
# Every query must show up in the ring with an OK outcome.
python3 - "$DIR/flight.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["total_recorded"] > 0, "flight recorder recorded nothing"
assert all(r["status"] == "ok" for r in doc["records"]), \
    [r for r in doc["records"] if r["status"] != "ok"][:3]
PY

# Statusz on the frozen batch path, and on a failed run: the dump must be
# written either way, carrying the run's Status.
"$CLI" search --data "$DIR/data.sngd" --graph "$DIR/graph.sngg" \
      --queries "$DIR/q.sngd" --k 10 --statusz "$DIR/statusz_frozen.json"
python3 "$TOOLS_DIR/validate_telemetry.py" --statusz "$DIR/statusz_frozen.json"
expect_fail 1 "flight recorder (non-OK run status)" -- search \
      --data "$DIR/data.sngd" --graph "$DIR/graph.sngg" \
      --queries "$DIR/q.sngd" --k 10 --fault-spec "transfer.htod=1" \
      --fault-seed 7 --statusz "$DIR/statusz_fail.json"
python3 "$TOOLS_DIR/validate_telemetry.py" --statusz "$DIR/statusz_fail.json"
python3 - "$DIR/statusz_fail.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["status"]["name"] == "unavailable", doc["status"]
assert doc["fault"]["armed"] is True, doc["fault"]
PY

# --- Serving front-end smoke cases (docs/serving.md) -----------------------

if [ -n "$SERVER" ] && [ -n "$LOADGEN" ]; then
  # Clean path: server up, closed-loop clients, wire-fetched statusz,
  # SIGTERM drain, conservation on the DRAINED line, schema-valid dumps.
  "$SERVER" --data "$DIR/data.sngd" --graph "$DIR/graph.sngg" \
        --port 0 --port-file "$DIR/port" --workers 2 \
        --statusz-on-exit "$DIR/serve_statusz.json" --duration-s 120 \
        > "$DIR/server.log" 2> "$DIR/server.err" &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [ -s "$DIR/port" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || {
      echo "FAIL: song_server died during startup" >&2
      cat "$DIR/server.err" >&2; exit 1; }
    sleep 0.1
  done
  PORT="$(cat "$DIR/port")"
  OUT=$("$LOADGEN" --port "$PORT" --queries "$DIR/q.sngd" \
        --connections 2 --requests 100 --k 10 --queue 96 \
        --statusz-out "$DIR/serve_statusz_live.json")
  echo "$OUT"
  echo "$OUT" | grep -q "LOADGEN sent=200 "
  echo "$OUT" | grep -q "LATENCY p50_us="
  # Every closed-loop request must come back OK on the clean path.
  echo "$OUT" | grep -q " answered=200 ok=200 "
  python3 "$TOOLS_DIR/validate_telemetry.py" \
        --statusz "$DIR/serve_statusz_live.json"
  kill -TERM "$SERVER_PID"
  SERVER_RC=0
  wait "$SERVER_PID" || SERVER_RC=$?
  SERVER_PID=""
  cat "$DIR/server.log"
  [ "$SERVER_RC" -eq 0 ] || {
    echo "FAIL: song_server exited $SERVER_RC" >&2
    cat "$DIR/server.err" >&2; exit 1; }
  grep -q "^DRAINED accepted=200 ok=200 shed=0 deadline=0 error=0$" \
        "$DIR/server.log"
  python3 "$TOOLS_DIR/validate_telemetry.py" \
        --statusz "$DIR/serve_statusz.json"

  # Flag validation: usage errors must exit 2 with a diagnostic.
  SERVE_ERR="$DIR/serve_stderr.txt"; CODE=0
  "$SERVER" --data "$DIR/data.sngd" --graph "$DIR/graph.sngg" \
        --workers 0 >/dev/null 2>"$SERVE_ERR" || CODE=$?
  [ "$CODE" -eq 2 ] && grep -q "workers must be >= 1" "$SERVE_ERR" || {
    echo "FAIL: --workers 0 not rejected (exit $CODE)" >&2; exit 1; }
  CODE=0
  "$LOADGEN" --port 1 --dim 4 --mode open >/dev/null 2>"$SERVE_ERR" \
        || CODE=$?
  [ "$CODE" -eq 2 ] && grep -q "requires --qps" "$SERVE_ERR" || {
    echo "FAIL: open loop without --qps not rejected (exit $CODE)" >&2
    exit 1; }
fi

# Bench gate self-test: the committed baselines must pass against
# themselves and a planted 2x slowdown must fail (both modes).
python3 "$TOOLS_DIR/bench_gate.py" \
      --baseline "$TOOLS_DIR/../bench/baselines" --self-test --tolerance 0.5
python3 "$TOOLS_DIR/bench_gate.py" \
      --baseline "$TOOLS_DIR/../bench/baselines" --self-test --normalize \
      --tolerance 0.5

echo "CLI SMOKE OK"
