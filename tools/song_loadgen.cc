// song_loadgen — framed-protocol load generator for song_server
// (docs/serving.md).
//
//   song_loadgen --port N [--host 127.0.0.1]
//                (--queries q.sngd | --dim D)
//                [--connections 4] [--requests 200] [--k 10] [--queue 0]
//                [--deadline-us 0] [--cost-budget 0]
//                [--mode closed|open] [--qps 0] [--seed 1]
//                [--chaos-close-prob 0.0] [--io-timeout-ms 5000]
//                [--statusz-out path]
//
// Drives `--connections` concurrent framed TCP connections, each issuing
// `--requests` search requests: closed-loop (next request after the
// previous response — latency-bound) or open-loop (requests paced at
// `--qps` across all connections, responses matched by client_tag —
// throughput-bound, exposes queueing). Queries come from a .sngd file
// (cycled) or are random unit vectors of --dim.
//
// Chaos: --chaos-close-prob p abruptly closes the socket after a send with
// probability p, then reconnects — the serving-tier contract is that the
// orphaned request still settles server-side (its response write fails and
// is counted there, not lost). Such requests count as `abandoned` here.
//
// Prints per-outcome counts and latency percentiles, machine-greppable:
//
//   LOADGEN sent=N answered=N ok=N degraded=N shed=N deadline=N error=N
//           abandoned=N transport_errors=N reconnects=N
//   LATENCY p50_us=… p90_us=… p99_us=… max_us=… wall_s=… qps=…
//
// Exit 0 when every connection could reach the server at least once and
// every non-abandoned request got an answer or a counted transport error;
// exit 1 when the server was unreachable.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/dataset.h"
#include "core/random.h"
#include "core/status.h"
#include "core/timer.h"
#include "obs/exporters.h"
#include "serve/frame.h"

namespace {

using namespace song;  // NOLINT: CLI main file

using Flags = std::map<std::string, std::string>;

Flags ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags[arg] = argv[++i];
    } else {
      flags[arg] = "1";
    }
  }
  return flags;
}

void CheckFlags(const Flags& flags,
                std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : flags) {
    bool known = false;
    for (const char* a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
      std::exit(2);
    }
  }
}

std::string Optional(const Flags& flags, const std::string& key,
                     const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

uint64_t ParseUint(const Flags& flags, const std::string& key,
                   const std::string& fallback) {
  const std::string value = Optional(flags, key, fallback);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || value[0] == '-' || end == value.c_str() ||
      *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr,
                 "flag --%s expects a non-negative integer, got \"%s\"\n",
                 key.c_str(), value.c_str());
    std::exit(2);
  }
  return v;
}

double ParseProb(const Flags& flags, const std::string& key,
                 const std::string& fallback) {
  const std::string value = Optional(flags, key, fallback);
  char* end = nullptr;
  const double p = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
    std::fprintf(stderr, "flag --%s expects a probability in [0,1]\n",
                 key.c_str());
    std::exit(2);
  }
  return p;
}

int ConnectTo(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

struct WorkerConfig {
  std::string host;
  uint16_t port = 0;
  size_t requests = 0;
  uint32_t k = 10;
  uint32_t queue_size = 0;
  uint64_t deadline_us = 0;
  uint64_t cost_budget = 0;
  bool open_loop = false;
  double interval_us = 0.0;  ///< open-loop send pacing per connection
  double chaos_close_prob = 0.0;
  int io_timeout_ms = 5000;
  uint64_t seed = 1;
  const Dataset* queries = nullptr;  ///< null = random vectors of `dim`
  size_t dim = 0;
};

struct WorkerResult {
  uint64_t sent = 0;
  uint64_t answered = 0;
  uint64_t ok = 0;
  uint64_t degraded = 0;
  uint64_t shed = 0;
  uint64_t deadline = 0;
  uint64_t error = 0;
  uint64_t abandoned = 0;  ///< chaos-closed before reading the response
  uint64_t transport_errors = 0;
  uint64_t reconnects = 0;
  bool ever_connected = false;
  std::vector<double> latencies_us;
};

void Classify(const serve::SearchResponseFrame& response, WorkerResult* r) {
  ++r->answered;
  const StatusCode code = static_cast<StatusCode>(response.status_code);
  if (code == StatusCode::kOk) {
    ++r->ok;
    if (response.degraded) ++r->degraded;
  } else if (code == StatusCode::kUnavailable ||
             code == StatusCode::kResourceExhausted) {
    ++r->shed;
  } else if (code == StatusCode::kDeadlineExceeded) {
    ++r->deadline;
  } else {
    ++r->error;
  }
}

void RunWorker(const WorkerConfig& config, size_t worker_index,
               WorkerResult* result) {
  RandomEngine rng(config.seed + 0x9e37 * (worker_index + 1));
  std::vector<float> random_query(config.queries == nullptr ? config.dim : 0);

  int fd = ConnectTo(config.host, config.port);
  if (fd < 0) return;
  result->ever_connected = true;
  auto transport =
      std::make_unique<serve::FrameTransport>(fd, config.io_timeout_ms);

  // client_tag -> send time, for open-loop latency matching. Closed loop
  // keeps at most one entry.
  std::unordered_map<uint64_t, double> inflight;
  Timer clock;
  double next_send_us = 0.0;

  auto reconnect = [&]() -> bool {
    ::close(fd);
    transport.reset();
    result->abandoned += inflight.size();
    inflight.clear();
    fd = ConnectTo(config.host, config.port);
    if (fd < 0) return false;
    ++result->reconnects;
    transport =
        std::make_unique<serve::FrameTransport>(fd, config.io_timeout_ms);
    return true;
  };

  auto read_one = [&]() -> bool {
    StatusOr<serve::Frame> frame = transport->ReadFrame();
    if (!frame.ok()) {
      ++result->transport_errors;
      return false;
    }
    if (frame.value().type != serve::FrameType::kSearchResponse) return true;
    StatusOr<serve::SearchResponseFrame> response =
        serve::DecodeSearchResponse(frame.value().payload.data(),
                                    frame.value().payload.size());
    if (!response.ok()) {
      ++result->transport_errors;
      return false;
    }
    const auto it = inflight.find(response.value().client_tag);
    if (it != inflight.end()) {
      result->latencies_us.push_back(clock.ElapsedMicros() - it->second);
      inflight.erase(it);
    }
    Classify(response.value(), result);
    return true;
  };

  for (size_t i = 0; i < config.requests; ++i) {
    serve::SearchRequestFrame request;
    request.client_tag = (static_cast<uint64_t>(worker_index) << 32) | i;
    request.k = config.k;
    request.queue_size = config.queue_size;
    request.deadline_us = config.deadline_us;
    request.cost_budget = config.cost_budget;
    if (config.queries != nullptr) {
      const size_t row = (worker_index + i) % config.queries->num();
      const float* values = config.queries->Row(static_cast<idx_t>(row));
      request.query.assign(values, values + config.queries->dim());
    } else {
      for (float& v : random_query) {
        v = static_cast<float>(rng.NextUniform(-1.0, 1.0));
      }
      request.query = random_query;
    }

    if (config.open_loop) {
      // Absolute schedule: pacing errors do not accumulate. Drain any
      // responses that are already readable while waiting for the slot.
      while (clock.ElapsedMicros() < next_send_us) {
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        const double slack_us = next_send_us - clock.ElapsedMicros();
        const int rc =
            ::poll(&pfd, 1, std::max(0, static_cast<int>(slack_us / 1000)));
        if (rc > 0 && (pfd.revents & POLLIN) != 0) {
          if (!read_one() && !reconnect()) return;
        }
      }
      next_send_us += config.interval_us;
    }

    std::vector<uint8_t> wire;
    serve::EncodeSearchRequest(request, &wire);
    const double send_us = clock.ElapsedMicros();
    const Status ws = transport->WriteBytes(wire);
    if (!ws.ok()) {
      ++result->transport_errors;
      if (!reconnect()) return;
      continue;
    }
    ++result->sent;
    inflight[request.client_tag] = send_us;

    if (config.chaos_close_prob > 0.0 &&
        rng.NextUniform() < config.chaos_close_prob) {
      // Vanish mid-flight: the server must still settle the request.
      if (!reconnect()) return;
      continue;
    }

    if (!config.open_loop) {
      if (!read_one() && !reconnect()) return;
    }
  }

  // Open loop: collect the tail of in-flight responses.
  while (!inflight.empty()) {
    if (!read_one()) break;
  }
  result->abandoned += inflight.size();
  ::close(fd);
}

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted->size() - 1) + 0.5);
  return (*sorted)[std::min(idx, sorted->size() - 1)];
}

int FetchStatusz(const std::string& host, uint16_t port, int io_timeout_ms,
                 const std::string& out_path) {
  const int fd = ConnectTo(host, port);
  if (fd < 0) {
    std::fprintf(stderr, "statusz fetch: cannot connect\n");
    return 1;
  }
  serve::FrameTransport transport(fd, io_timeout_ms);
  std::vector<uint8_t> wire;
  serve::AppendFrame(serve::FrameType::kStatuszRequest, nullptr, 0, &wire);
  Status s = transport.WriteBytes(wire);
  if (s.ok()) {
    StatusOr<serve::Frame> frame = transport.ReadFrame();
    s = frame.status();
    if (frame.ok()) {
      const std::string json(
          reinterpret_cast<const char*>(frame.value().payload.data()),
          frame.value().payload.size());
      ::close(fd);
      return obs::WriteStringToFile(out_path, json) ? 0 : 1;
    }
  }
  ::close(fd);
  std::fprintf(stderr, "statusz fetch: %s\n", s.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv, 1);
  CheckFlags(flags, {"host", "port", "queries", "dim", "connections",
                     "requests", "k", "queue", "deadline-us", "cost-budget",
                     "mode", "qps", "seed", "chaos-close-prob",
                     "io-timeout-ms", "statusz-out"});
  std::signal(SIGPIPE, SIG_IGN);

  WorkerConfig config;
  config.host = Optional(flags, "host", "127.0.0.1");
  config.port = static_cast<uint16_t>(ParseUint(flags, "port", "0"));
  if (config.port == 0) {
    std::fprintf(stderr, "missing required flag --port\n");
    return 2;
  }
  config.requests = ParseUint(flags, "requests", "200");
  config.k = static_cast<uint32_t>(ParseUint(flags, "k", "10"));
  config.queue_size = static_cast<uint32_t>(ParseUint(flags, "queue", "0"));
  config.deadline_us = ParseUint(flags, "deadline-us", "0");
  config.cost_budget = ParseUint(flags, "cost-budget", "0");
  config.chaos_close_prob = ParseProb(flags, "chaos-close-prob", "0");
  config.io_timeout_ms =
      static_cast<int>(ParseUint(flags, "io-timeout-ms", "5000"));
  config.seed = ParseUint(flags, "seed", "1");
  const std::string mode = Optional(flags, "mode", "closed");
  if (mode != "closed" && mode != "open") {
    std::fprintf(stderr, "flag --mode expects closed|open\n");
    return 2;
  }
  config.open_loop = mode == "open";
  const size_t connections = ParseUint(flags, "connections", "4");
  if (connections == 0) {
    std::fprintf(stderr, "flag --connections must be >= 1\n");
    return 2;
  }
  const uint64_t qps = ParseUint(flags, "qps", "0");
  if (config.open_loop) {
    if (qps == 0) {
      std::fprintf(stderr, "--mode open requires --qps\n");
      return 2;
    }
    config.interval_us =
        1e6 * static_cast<double>(connections) / static_cast<double>(qps);
  }

  Dataset queries;
  const std::string queries_path = Optional(flags, "queries", "");
  if (!queries_path.empty()) {
    auto loaded = Dataset::Load(queries_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return loaded.status().ExitCode();
    }
    queries = std::move(loaded.value());
    config.queries = &queries;
  } else {
    config.dim = ParseUint(flags, "dim", "0");
    if (config.dim == 0) {
      std::fprintf(stderr, "either --queries or --dim is required\n");
      return 2;
    }
  }

  Timer wall;
  std::vector<WorkerResult> results(connections);
  std::vector<std::thread> workers;
  workers.reserve(connections);
  for (size_t c = 0; c < connections; ++c) {
    workers.emplace_back(RunWorker, std::cref(config), c, &results[c]);
  }
  for (std::thread& t : workers) t.join();
  const double wall_s = wall.ElapsedSeconds();

  WorkerResult total;
  std::vector<double> latencies;
  bool any_connected = false;
  for (const WorkerResult& r : results) {
    total.sent += r.sent;
    total.answered += r.answered;
    total.ok += r.ok;
    total.degraded += r.degraded;
    total.shed += r.shed;
    total.deadline += r.deadline;
    total.error += r.error;
    total.abandoned += r.abandoned;
    total.transport_errors += r.transport_errors;
    total.reconnects += r.reconnects;
    any_connected = any_connected || r.ever_connected;
    latencies.insert(latencies.end(), r.latencies_us.begin(),
                     r.latencies_us.end());
  }
  std::sort(latencies.begin(), latencies.end());

  std::printf("LOADGEN sent=%llu answered=%llu ok=%llu degraded=%llu "
              "shed=%llu deadline=%llu error=%llu abandoned=%llu "
              "transport_errors=%llu reconnects=%llu\n",
              static_cast<unsigned long long>(total.sent),
              static_cast<unsigned long long>(total.answered),
              static_cast<unsigned long long>(total.ok),
              static_cast<unsigned long long>(total.degraded),
              static_cast<unsigned long long>(total.shed),
              static_cast<unsigned long long>(total.deadline),
              static_cast<unsigned long long>(total.error),
              static_cast<unsigned long long>(total.abandoned),
              static_cast<unsigned long long>(total.transport_errors),
              static_cast<unsigned long long>(total.reconnects));
  std::printf("LATENCY p50_us=%.1f p90_us=%.1f p99_us=%.1f max_us=%.1f "
              "wall_s=%.3f qps=%.1f\n",
              Percentile(&latencies, 0.50), Percentile(&latencies, 0.90),
              Percentile(&latencies, 0.99),
              latencies.empty() ? 0.0 : latencies.back(), wall_s,
              wall_s > 0 ? static_cast<double>(total.answered) / wall_s
                         : 0.0);

  const std::string statusz_out = Optional(flags, "statusz-out", "");
  if (!statusz_out.empty()) {
    const int rc = FetchStatusz(config.host, config.port,
                                config.io_timeout_ms, statusz_out);
    // A drained server may already be gone; report but do not fail the run.
    if (rc != 0) std::fprintf(stderr, "statusz fetch skipped\n");
  }
  return any_connected ? 0 : 1;
}
