// Fixture: a clean file — annotated wrappers, sanctioned discard macro,
// allocation outside hot regions. Must produce zero violations.
#include <string>
#include <vector>

#include "core/status.h"
#include "core/sync.h"

namespace fixture {

struct Thing {
  song::Mutex mu;
  std::vector<int> items;
};

inline void Use(Thing& t) {
  song::MutexLock lock(t.mu);
  t.items.push_back(1);  // allocation is fine outside hot-path regions
  std::string s = "std::mutex mentioned only in this string";
  (void)s;
}

// song-lint: begin-hot-path(fixture-clean)
inline int Hot(const std::vector<int>& v) {
  int sum = 0;
  for (int x : v) sum += x;
  return sum;
}
// song-lint: end-hot-path

}  // namespace fixture
