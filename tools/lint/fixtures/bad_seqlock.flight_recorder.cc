// Fixture: planted seqlock-discipline violations. The basename must end in
// flight_recorder.cc for the rule to apply (it is scoped to the recorder's
// translation units).
#include <atomic>
#include <cstdint>

namespace fixture {

struct Slot {
  std::atomic<uint64_t> seq{0};
};

uint64_t Bad(Slot& slot) {
  slot.seq.store(1, std::memory_order_relaxed);  // violation: outside region
  return slot.seq.load(std::memory_order_acquire);  // violation
}

// song-lint: begin-seqlock(fixture)
uint64_t Good(Slot& slot) {
  return slot.seq.load(std::memory_order_acquire);  // sanctioned: in region
}
// song-lint: end-seqlock

}  // namespace fixture
