// Fixture: planted hot-path violations inside a marked region.
#include <memory>
#include <string>
#include <vector>

namespace fixture {

void Hot(std::vector<int>& v) {
  // song-lint: begin-hot-path(fixture-hot)
  v.push_back(1);                       // violation: push_back
  auto p = std::make_unique<int>(2);    // violation: make_unique
  std::string s = "alloc";              // violation: std::string
  int* raw = new int(3);                // violation: operator new
  delete raw;
  (void)p;
  // song-lint: end-hot-path
  v.push_back(4);  // outside the region: allowed
}

}  // namespace fixture
