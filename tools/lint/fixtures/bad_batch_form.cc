// Fixture: planted violations inside a serve-batch-form-style region — the
// scheduler's batch-forming loop runs under the queue mutex, so an
// allocation or a log line there stalls every queued request and every
// other worker.
#include <deque>
#include <string>
#include <vector>

namespace fixture {

struct Pending {
  int id = 0;
};

size_t FormBatch(std::deque<Pending>& queue, std::vector<Pending>& out) {
  size_t n = 0;
  // song-lint: begin-hot-path(serve-batch-form)
  while (!queue.empty()) {
    out.push_back(queue.front());          // violation: push_back
    std::string label = "claimed";         // violation: std::string
    queue.pop_front();
    ++n;
  }
  // song-lint: end-hot-path
  return n;
}

}  // namespace fixture
