// Fixture: planted raw-sync violations. Every std:: primitive here must be
// flagged; the commented-out one must NOT be (comments are stripped).
#include <mutex>
#include <shared_mutex>

namespace fixture {

struct Bad {
  std::mutex mu;                 // violation: raw std::mutex
  std::shared_mutex smu;         // violation: raw std::shared_mutex
};

void Use(Bad& b) {
  std::lock_guard<std::mutex> lock(b.mu);  // violation: raw lock_guard
  // std::mutex in a comment is fine.
  const char* doc = "std::mutex in a string is fine";
  (void)doc;
}

}  // namespace fixture
