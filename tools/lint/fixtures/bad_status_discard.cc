// Fixture: planted status-discard violations.
namespace fixture {

struct Status {
  bool ok() const { return true; }
};
struct Result {
  Status status() const { return {}; }
};

Status DoWork();
Result TryWork();

void Bad() {
  (void)DoWork();           // violation: raw (void) discard of a call
  TryWork().status().ok();  // violation: inspected and dropped
}

void Fine(int unused) {
  (void)unused;  // plain unused-value silencer: allowed (no call)
}

}  // namespace fixture
