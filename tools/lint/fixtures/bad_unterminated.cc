// Fixture: a begin-hot-path with no matching end marker must be flagged
// (otherwise deleting an end marker silently exempts the rest of the file).
namespace fixture {

// song-lint: begin-hot-path(fixture-unterminated)
inline int Hot(int x) { return x + 1; }

}  // namespace fixture
