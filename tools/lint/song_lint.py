#!/usr/bin/env python3
"""song_lint.py — repo-invariant linter for the SONG codebase.

Machine-checks invariants the compiler cannot express, complementing the
Clang Thread Safety Analysis build (docs/static_analysis.md):

  raw-sync           No naked std::mutex / std::shared_mutex /
                     std::lock_guard / std::unique_lock / std::scoped_lock /
                     std::condition_variable in src/ outside core/sync.h.
                     Raw primitives are invisible to thread-safety
                     annotations; everything must go through the annotated
                     wrappers (song::Mutex, song::MutexLock, ...).

  hot-path           Regions bracketed by
                       // song-lint: begin-hot-path(<name>)
                       // song-lint: end-hot-path
                     must not allocate, log, or build strings: no new /
                     make_unique / make_shared / malloc / calloc / realloc /
                     push_back / emplace_back / std::string / SONG_LOG /
                     printf / fprintf / snprintf / std::cout / std::cerr.
                     The two load-bearing regions (flight-recorder Record,
                     search_core Stage 2) are REQUIRED to exist, so deleting
                     a marker fails the lint rather than silently skipping.

  status-discard     No raw `(void)call(...)` discards and no bare
                     `....status().ok();` statements. Intentional swallows
                     must use SONG_IGNORE_ERROR(...) with a comment.

  seqlock-discipline Accesses to the flight-recorder seqlock field (`.seq`)
                     may appear only inside
                       // song-lint: begin-seqlock(<name>)
                       // song-lint: end-seqlock
                     regions, i.e. the four named protocol helpers whose
                     memory orders are reviewed in one place.

  nodiscard-status   core/status.h must keep `class [[nodiscard]]` on both
                     Status and StatusOr (the repo-wide discard guarantee
                     hangs off those two tokens).

Usage:
  tools/lint/song_lint.py [--root DIR] [--self-test] [--list-rules]

Exit status: 0 when clean, 1 on violations (or self-test failure).
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cu", ".cuh")

BEGIN_HOT = re.compile(r"//\s*song-lint:\s*begin-hot-path\(([\w-]+)\)")
END_HOT = re.compile(r"//\s*song-lint:\s*end-hot-path\b")
BEGIN_SEQ = re.compile(r"//\s*song-lint:\s*begin-seqlock\(([\w-]+)\)")
END_SEQ = re.compile(r"//\s*song-lint:\s*end-seqlock\b")

# Hot-path regions that must exist somewhere under src/. Deleting the
# markers (or the code) must fail the lint, not silently pass it.
REQUIRED_HOT_REGIONS = {
    "flight-recorder-record",
    "search-core-stage2",
    "serve-batch-form",
}

RAW_SYNC_PATTERN = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"shared_timed_mutex|lock_guard|unique_lock|shared_lock|scoped_lock|"
    r"condition_variable|condition_variable_any)\b"
)
# The one file allowed to touch raw primitives: the annotated wrappers.
RAW_SYNC_ALLOWED = {os.path.join("src", "core", "sync.h")}

HOT_PATH_FORBIDDEN = [
    (re.compile(r"\bnew\b(?!\s*\()"), "operator new"),
    (re.compile(r"\bnew\s*\("), "placement/operator new"),
    (re.compile(r"\bstd::make_unique\b"), "std::make_unique"),
    (re.compile(r"\bstd::make_shared\b"), "std::make_shared"),
    (re.compile(r"\b(?:std::)?(?:m|c|re)alloc\s*\("), "malloc/calloc/realloc"),
    (re.compile(r"\.push_back\s*\("), "push_back (may reallocate)"),
    (re.compile(r"\.emplace_back\s*\("), "emplace_back (may reallocate)"),
    (re.compile(r"\bstd::string\b"), "std::string construction"),
    (re.compile(r"\bSONG_LOG\b"), "logging"),
    (re.compile(r"\b(?:f|sn?)?printf\s*\("), "printf-family call"),
    (re.compile(r"\bstd::c(?:out|err)\b"), "iostream"),
]

# A raw-discard statement: `(void)foo(...);` or `(void)foo->bar(...);`.
# SONG_IGNORE_ERROR is the sanctioned form; `(void)variable;` (no call) is
# an ordinary unused-parameter silencer and stays legal.
VOID_DISCARD = re.compile(r"\(\s*void\s*\)\s*[\w:>\-.]+\s*\(")
# `x.status().ok();` as a whole statement: inspects and drops the error.
STATUS_OK_DROPPED = re.compile(r"^\s*[\w:>\-.()]*\.status\(\)\.ok\(\)\s*;")

SEQ_ACCESS = re.compile(r"\.\s*seq\s*\.\s*(load|store|fetch|exchange|compare)")
SEQ_FILES = ("flight_recorder.h", "flight_recorder.cc")

NODISCARD_STATUS_FILE = os.path.join("src", "core", "status.h")


@dataclass
class Violation:
    rule: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and string/char literal contents from one line.

    Keeps lint markers out of scope (they are comments) and avoids false
    positives on e.g. "std::mutex" appearing in a doc string. Block
    comments spanning lines are handled coarsely by the caller.
    """
    out = []
    i = 0
    n = len(line)
    while i < n:
        ch = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            break
        if ch == '"' or ch == "'":
            quote = ch
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            out.append(quote + quote)
            i += 1
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def iter_code_lines(text: str):
    """Yields (lineno, raw_line, code_line) with comments/strings stripped.

    Tracks /* ... */ block comments across lines.
    """
    in_block = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw
        if in_block:
            end = line.find("*/")
            if end < 0:
                yield lineno, raw, ""
                continue
            line = line[end + 2:]
            in_block = False
        # Remove intra-line block comments; detect an unclosed one.
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + " " + line[end + 2:]
        yield lineno, raw, strip_comments_and_strings(line)


def collect_files(root: str, subdir: str = "src"):
    base = os.path.join(root, subdir)
    for dirpath, _dirnames, filenames in os.walk(base):
        for name in sorted(filenames):
            if name.endswith(CXX_EXTENSIONS):
                full = os.path.join(dirpath, name)
                yield os.path.relpath(full, root), full


def lint_file(relpath: str, text: str, seen_hot_regions: set):
    violations = []
    in_hot = False
    hot_name = ""
    in_seq = False

    for lineno, raw, code in iter_code_lines(text):
        # Region tracking keys off the RAW line: markers are comments.
        begin_hot = BEGIN_HOT.search(raw)
        if begin_hot:
            if in_hot:
                violations.append(Violation(
                    "hot-path", relpath, lineno,
                    "nested begin-hot-path (missing end-hot-path above?)"))
            in_hot = True
            hot_name = begin_hot.group(1)
            seen_hot_regions.add(hot_name)
            continue
        if END_HOT.search(raw):
            if not in_hot:
                violations.append(Violation(
                    "hot-path", relpath, lineno,
                    "end-hot-path without a matching begin-hot-path"))
            in_hot = False
            continue
        begin_seq = BEGIN_SEQ.search(raw)
        if begin_seq:
            if in_seq:
                violations.append(Violation(
                    "seqlock-discipline", relpath, lineno,
                    "nested begin-seqlock (missing end-seqlock above?)"))
            in_seq = True
            continue
        if END_SEQ.search(raw):
            if not in_seq:
                violations.append(Violation(
                    "seqlock-discipline", relpath, lineno,
                    "end-seqlock without a matching begin-seqlock"))
            in_seq = False
            continue

        if not code.strip():
            continue

        # raw-sync: annotated wrappers only, outside core/sync.h.
        if relpath not in RAW_SYNC_ALLOWED:
            m = RAW_SYNC_PATTERN.search(code)
            if m:
                violations.append(Violation(
                    "raw-sync", relpath, lineno,
                    f"raw std::{m.group(1)} — use the annotated wrappers in "
                    "core/sync.h (song::Mutex, song::MutexLock, ...)"))

        # hot-path: no allocation/logging inside marked regions.
        if in_hot:
            for pattern, what in HOT_PATH_FORBIDDEN:
                if pattern.search(code):
                    violations.append(Violation(
                        "hot-path", relpath, lineno,
                        f"{what} inside hot-path region "
                        f"'{hot_name}'"))

        # status-discard: raw (void) call-discards, dropped .status().ok().
        if VOID_DISCARD.search(code):
            violations.append(Violation(
                "status-discard", relpath, lineno,
                "raw (void) discard of a call result — if the result is a "
                "Status, use SONG_IGNORE_ERROR(...) with a justification "
                "comment; otherwise assign it to a named local"))
        if STATUS_OK_DROPPED.search(code):
            violations.append(Violation(
                "status-discard", relpath, lineno,
                "'.status().ok();' computed and dropped — handle the error "
                "or use SONG_IGNORE_ERROR(...)"))

        # seqlock-discipline: Slot::seq only inside seqlock regions.
        if os.path.basename(relpath).endswith(SEQ_FILES) and not in_seq:
            if SEQ_ACCESS.search(code):
                violations.append(Violation(
                    "seqlock-discipline", relpath, lineno,
                    "direct seqlock field access outside a "
                    "begin-seqlock/end-seqlock region — go through "
                    "SeqWriteBegin/SeqWriteEnd/SeqReadBegin/SeqReadValidate"))

    if in_hot:
        violations.append(Violation(
            "hot-path", relpath, len(text.splitlines()),
            f"unterminated hot-path region '{hot_name}'"))
    if in_seq:
        violations.append(Violation(
            "seqlock-discipline", relpath, len(text.splitlines()),
            "unterminated seqlock region"))
    return violations


def lint_tree(root: str):
    violations = []
    seen_hot_regions: set = set()

    for relpath, full in collect_files(root):
        try:
            with open(full, "r", encoding="utf-8") as f:
                text = f.read()
        except OSError as err:
            violations.append(Violation("io", relpath, 0, str(err)))
            continue
        violations.extend(lint_file(relpath, text, seen_hot_regions))

    # hot-path: the load-bearing regions must exist.
    for name in sorted(REQUIRED_HOT_REGIONS - seen_hot_regions):
        violations.append(Violation(
            "hot-path", "src", 0,
            f"required hot-path region '{name}' not found — the "
            "begin-hot-path marker (or the code it protects) was removed"))

    # nodiscard-status: the two class-level attributes must survive.
    status_h = os.path.join(root, NODISCARD_STATUS_FILE)
    try:
        with open(status_h, "r", encoding="utf-8") as f:
            status_text = f.read()
    except OSError:
        violations.append(Violation(
            "nodiscard-status", NODISCARD_STATUS_FILE, 0, "file missing"))
    else:
        if not re.search(r"class\s+\[\[nodiscard\]\]\s+Status\b", status_text):
            violations.append(Violation(
                "nodiscard-status", NODISCARD_STATUS_FILE, 0,
                "Status lost its class-level [[nodiscard]]"))
        if not re.search(r"class\s+\[\[nodiscard\]\]\s+StatusOr\b",
                         status_text):
            violations.append(Violation(
                "nodiscard-status", NODISCARD_STATUS_FILE, 0,
                "StatusOr lost its class-level [[nodiscard]]"))

    return violations


# --------------------------- self-test -----------------------------------

def self_test() -> int:
    """Runs the linter over tools/lint/fixtures/ and checks every planted
    violation is caught and every clean fixture passes."""
    here = os.path.dirname(os.path.abspath(__file__))
    fixtures = os.path.join(here, "fixtures")
    failures = []

    def run_one(name: str, expect_rules):
        path = os.path.join(fixtures, name)
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
        seen: set = set()
        got = lint_file(os.path.join("src", "fixture", name), text, seen)
        got_rules = sorted({v.rule for v in got})
        want = sorted(set(expect_rules))
        if got_rules != want:
            failures.append(
                f"{name}: expected rules {want}, got {got_rules} "
                f"({[str(v) for v in got]})")

    run_one("bad_raw_sync.cc", ["raw-sync"])
    run_one("bad_hot_path.cc", ["hot-path"])
    run_one("bad_batch_form.cc", ["hot-path"])
    run_one("bad_status_discard.cc", ["status-discard"])
    run_one("bad_seqlock.flight_recorder.cc", ["seqlock-discipline"])
    run_one("bad_unterminated.cc", ["hot-path"])
    run_one("good_clean.cc", [])

    # The real tree must carry the required hot-path regions.
    root = os.path.normpath(os.path.join(here, "..", ".."))
    tree = lint_tree(root)
    structural = [v for v in tree if v.rule == "hot-path" and v.line == 0]
    if structural:
        failures.append(
            "required hot-path regions missing from the tree: "
            + "; ".join(str(v) for v in structural))

    if failures:
        print("song_lint self-test FAILED:")
        for f in failures:
            print("  " + f)
        return 1
    print("song_lint self-test passed "
          "(7 fixtures, required regions present).")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above this "
                             "script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture self-test and exit")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule names and exit")
    args = parser.parse_args()

    if args.list_rules:
        for rule in ("raw-sync", "hot-path", "status-discard",
                     "seqlock-discipline", "nodiscard-status"):
            print(rule)
        return 0

    if args.self_test:
        return self_test()

    root = args.root
    if root is None:
        here = os.path.dirname(os.path.abspath(__file__))
        root = os.path.normpath(os.path.join(here, "..", ".."))

    violations = lint_tree(root)
    if violations:
        print(f"song_lint: {len(violations)} violation(s):")
        for v in violations:
            print("  " + str(v))
        return 1
    print("song_lint: clean.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
