#!/usr/bin/env python3
"""Validates telemetry artifacts emitted by song_cli / the obs exporters.

Stdlib-only. Five artifact kinds, any subset per invocation:

  validate_telemetry.py --trace out.trace.json \
                        --metrics-json out.metrics.json \
                        --metrics out.prom \
                        --statusz statusz.json \
                        --flight-recorder flight.json

Checks (see docs/observability.md for the formats):
  * Chrome trace: well-formed trace_event JSON; every "X" event carries
    pid/tid/ts/dur; each sampled query's per-iteration stage spans sum to
    its query span within 1%; the GPU timeline's stage spans sum to the
    kernel span within 1%; `otherData` carries the schema version and the
    breakdown seconds.
  * Metrics JSON: schema_version plus counters/gauges/histograms maps;
    histogram entries carry count/sum/min/max/p50/p95/p99 with ordered
    percentiles. When all four song.req.* stage histograms are present,
    their counts must be equal and sum(total_us) must telescope to
    sum(queue) + sum(batch_form) + sum(search) (per-record float rounding
    slack).
  * Prometheus text: every non-comment line is `name value`; every metric
    is preceded by a `# TYPE` declaration.
  * Flight recorder: schema_version/capacity (power of two)/
    total_recorded/records; each record's total_us telescopes to its three
    stages and its fields are typed and non-negative.
  * Statusz: the one-shot dump — command/status/build/simd/fault/serve
    sections plus embedded metrics + flight-recorder documents (each
    either null or valid per the rules above). The serve section (null
    for batch CLI runs, populated by song_server) must carry the queue /
    batching configuration and the outcome counters, and those counters
    must conserve: ok + shed + deadline + error never exceeds accepted,
    with exact equality once the server has drained (draining true, no
    live connections).
  * song.serve.* metrics, when present in any metrics document: the
    outcome counters must exist alongside song.serve.accepted and obey
    the same conservation bound.

Exit code 0 = all artifacts valid, 1 = validation failure, 2 = usage.
"""

import argparse
import json
import math
import sys

REL_TOL = 0.01  # the 1% span-sum acceptance bound


class ValidationError(Exception):
    pass


def check(cond, msg):
    if not cond:
        raise ValidationError(msg)


def close(a, b, rel=REL_TOL):
    return math.isclose(a, b, rel_tol=rel, abs_tol=1e-9)


def validate_chrome_trace(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    check(isinstance(doc, dict), "trace: top level must be an object")
    events = doc.get("traceEvents")
    check(isinstance(events, list) and events,
          "trace: missing/empty traceEvents")

    other = doc.get("otherData")
    check(isinstance(other, dict), "trace: missing otherData")
    for key in ("schema_version", "gpu", "num_queries", "num_traces",
                "kernel_seconds", "locate_seconds", "distance_seconds",
                "maintain_seconds", "htod_seconds", "dtoh_seconds"):
        check(key in other, f"trace: otherData missing {key!r}")
    check(other["schema_version"] == 1,
          f"trace: unknown schema_version {other['schema_version']}")

    # Stage attribution partitions the kernel time.
    stage_sum = (other["locate_seconds"] + other["distance_seconds"] +
                 other["maintain_seconds"])
    check(close(stage_sum, other["kernel_seconds"]),
          f"trace: otherData stage seconds sum {stage_sum:.6g} != "
          f"kernel_seconds {other['kernel_seconds']:.6g}")

    # Index spans: pid 1 holds the sampled query chains (tid = query id).
    query_spans = {}   # tid -> dur of the "query N" umbrella span
    stage_sums = {}    # tid -> sum of its locate/distance/maintain spans
    gpu_kernel_dur = None
    gpu_stage_sum = 0.0
    for ev in events:
        check(isinstance(ev, dict) and "ph" in ev,
              f"trace: malformed event {ev!r}")
        if ev["ph"] == "M":
            continue
        check(ev["ph"] == "X", f"trace: unexpected phase {ev['ph']!r}")
        for key in ("name", "pid", "tid", "ts", "dur"):
            check(key in ev, f"trace: X event missing {key!r}: {ev!r}")
        check(ev["dur"] >= 0, f"trace: negative duration in {ev!r}")
        if ev["pid"] == 0:
            if ev["name"] == "kernel":
                gpu_kernel_dur = ev["dur"]
            elif ev["name"] in ("locate", "distance", "maintain"):
                gpu_stage_sum += ev["dur"]
        elif ev["pid"] == 1:
            if ev["name"].startswith("query "):
                check(ev["tid"] not in query_spans,
                      f"trace: duplicate query span for tid {ev['tid']}")
                query_spans[ev["tid"]] = ev["dur"]
            elif ev["name"] in ("locate", "distance", "maintain"):
                stage_sums[ev["tid"]] = stage_sums.get(ev["tid"], 0.0) + \
                    ev["dur"]

    check(gpu_kernel_dur is not None, "trace: no GPU kernel span (pid 0)")
    check(close(gpu_stage_sum, gpu_kernel_dur),
          f"trace: GPU stage spans sum {gpu_stage_sum:.6g}us != kernel span "
          f"{gpu_kernel_dur:.6g}us")

    check(len(query_spans) == other["num_traces"],
          f"trace: {len(query_spans)} query spans but otherData says "
          f"{other['num_traces']} traces")
    for tid, dur in query_spans.items():
        got = stage_sums.get(tid, 0.0)
        check(close(got, dur),
              f"trace: query {tid} stage spans sum {got:.6g}us != query "
              f"span {dur:.6g}us (>{REL_TOL:.0%} off)")
    return len(query_spans)


SERVE_OUTCOME_COUNTERS = ("song.serve.outcome.ok", "song.serve.outcome.shed",
                          "song.serve.outcome.deadline",
                          "song.serve.outcome.error")

REQ_STAGE_HISTOGRAMS = ("song.req.queue_us", "song.req.batch_form_us",
                        "song.req.search_us")
REQ_TOTAL_HISTOGRAM = "song.req.total_us"
# Per-record total_us is a rounded float sum of three float stages; over N
# records the histogram sums (doubles of those floats) telescope to within
# this relative slack.
REQ_SUM_REL_TOL = 1e-3


def validate_metrics_doc(doc, label="metrics-json"):
    check(isinstance(doc, dict), f"{label}: top level must be an object")
    check(doc.get("schema_version") == 1,
          f"{label}: unknown schema_version {doc.get('schema_version')}")
    for section in ("counters", "gauges", "histograms"):
        check(isinstance(doc.get(section), dict),
              f"{label}: missing {section!r} object")
    for name, value in doc["counters"].items():
        check(isinstance(value, int) and value >= 0,
              f"{label}: counter {name!r} not a non-negative int")
    for name, value in doc["gauges"].items():
        check(isinstance(value, (int, float)),
              f"{label}: gauge {name!r} not numeric")
    for name, h in doc["histograms"].items():
        check(isinstance(h, dict),
              f"{label}: histogram {name!r} not an object")
        for key in ("count", "sum", "min", "max", "p50", "p95", "p99"):
            check(key in h, f"{label}: histogram {name!r} missing {key!r}")
        if h["count"] > 0:
            check(h["min"] <= h["p50"] <= h["p95"] <= h["p99"] <= h["max"]
                  or close(h["min"], h["max"], rel=0.2),
                  f"{label}: histogram {name!r} percentiles out of "
                  f"order: {h}")

    # Serving-tier outcome conservation: when the server's counters are in
    # this document, every outcome bucket must exist and their sum can
    # never exceed accepted (requests still in flight account for any gap).
    counters = doc["counters"]
    if "song.serve.accepted" in counters:
        outcome_sum = 0
        for name in SERVE_OUTCOME_COUNTERS:
            check(name in counters,
                  f"{label}: song.serve.accepted present but {name!r} "
                  f"missing")
            outcome_sum += counters[name]
        check(outcome_sum <= counters["song.serve.accepted"],
              f"{label}: serve outcomes sum {outcome_sum} exceeds "
              f"accepted {counters['song.serve.accepted']}")

    # Request-lifecycle telescoping: the four song.req.* stage histograms
    # must agree on count, and total must be the sum of the three stages.
    hists = doc["histograms"]
    if REQ_TOTAL_HISTOGRAM in hists:
        total = hists[REQ_TOTAL_HISTOGRAM]
        stage_sum = 0.0
        for name in REQ_STAGE_HISTOGRAMS:
            check(name in hists,
                  f"{label}: {REQ_TOTAL_HISTOGRAM} present but {name!r} "
                  f"missing")
            check(hists[name]["count"] == total["count"],
                  f"{label}: {name!r} count {hists[name]['count']} != "
                  f"{REQ_TOTAL_HISTOGRAM} count {total['count']}")
            stage_sum += hists[name]["sum"]
        check(close(stage_sum, total["sum"], rel=REQ_SUM_REL_TOL),
              f"{label}: song.req stage sums {stage_sum:.6g} do not "
              f"telescope to total {total['sum']:.6g} "
              f"(>{REQ_SUM_REL_TOL:.2%} off)")

    return sum(len(doc[s]) for s in ("counters", "gauges", "histograms"))


def validate_metrics_json(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    return validate_metrics_doc(doc)


def validate_flight_recorder_doc(doc, label="flight-recorder"):
    check(isinstance(doc, dict), f"{label}: top level must be an object")
    check(doc.get("schema_version") == 1,
          f"{label}: unknown schema_version {doc.get('schema_version')}")
    capacity = doc.get("capacity")
    check(isinstance(capacity, int) and capacity >= 2 and
          capacity & (capacity - 1) == 0,
          f"{label}: capacity {capacity!r} not a power of two >= 2")
    total = doc.get("total_recorded")
    check(isinstance(total, int) and total >= 0,
          f"{label}: total_recorded {total!r} not a non-negative int")
    records = doc.get("records")
    check(isinstance(records, list), f"{label}: missing records list")
    check(len(records) <= capacity,
          f"{label}: {len(records)} records exceed capacity {capacity}")
    check(len(records) <= total,
          f"{label}: {len(records)} records but only {total} ever recorded")
    for i, r in enumerate(records):
        check(isinstance(r, dict), f"{label}: record {i} not an object")
        for key in ("request_id", "options_digest", "snapshot_version",
                    "queue_us", "batch_form_us", "search_us", "total_us",
                    "status", "status_code", "degraded", "rejected",
                    "shards_answered", "shards_total"):
            check(key in r, f"{label}: record {i} missing {key!r}")
        check(isinstance(r["options_digest"], str) and
              r["options_digest"].startswith("0x"),
              f"{label}: record {i} options_digest not a hex string")
        for key in ("queue_us", "batch_form_us", "search_us", "total_us"):
            check(isinstance(r[key], (int, float)) and r[key] >= 0,
                  f"{label}: record {i} {key!r} negative or non-numeric")
        check(isinstance(r["status"], str) and r["status"],
              f"{label}: record {i} status not a non-empty string")
        check(isinstance(r["degraded"], bool) and
              isinstance(r["rejected"], bool),
              f"{label}: record {i} degraded/rejected not booleans")
        check(r["shards_answered"] <= r["shards_total"] or
              r["shards_total"] == 0,
              f"{label}: record {i} answers more shards than exist: {r}")
        stage_sum = r["queue_us"] + r["batch_form_us"] + r["search_us"]
        check(close(stage_sum, r["total_us"], rel=REQ_SUM_REL_TOL) or
              close(stage_sum, 0.0),
              f"{label}: record {i} stages {stage_sum:.6g}us do not "
              f"telescope to total_us {r['total_us']:.6g}")
    return len(records)


def validate_flight_recorder(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    return validate_flight_recorder_doc(doc)


def validate_serve_doc(doc, label="statusz.serve"):
    check(isinstance(doc, dict), f"{label}: not an object")
    for key in ("port", "connections", "queue_depth", "queue_capacity",
                "max_batch", "max_wait_us", "max_inflight", "num_workers",
                "accepted"):
        check(isinstance(doc.get(key), int) and doc[key] >= 0,
              f"{label}: {key!r} not a non-negative int: {doc.get(key)!r}")
    check(isinstance(doc.get("draining"), bool),
          f"{label}: draining not a boolean")
    check(doc["queue_depth"] <= doc["queue_capacity"],
          f"{label}: queue_depth {doc['queue_depth']} exceeds capacity "
          f"{doc['queue_capacity']}")
    outcomes = doc.get("outcomes")
    check(isinstance(outcomes, dict), f"{label}: missing outcomes object")
    for key in ("ok", "shed", "deadline", "error"):
        check(isinstance(outcomes.get(key), int) and outcomes[key] >= 0,
              f"{label}: outcomes.{key} not a non-negative int")
    settled = sum(outcomes[k] for k in ("ok", "shed", "deadline", "error"))
    check(settled <= doc["accepted"],
          f"{label}: outcomes sum {settled} exceeds accepted "
          f"{doc['accepted']}")
    if doc["draining"] and doc["connections"] == 0:
        # Post-drain dump: every accepted request must have settled.
        check(settled == doc["accepted"],
              f"{label}: drained server leaked requests: accepted "
              f"{doc['accepted']} != settled {settled}")
    return 1


def validate_statusz(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    check(isinstance(doc, dict), "statusz: top level must be an object")
    check(doc.get("schema_version") == 1,
          f"statusz: unknown schema_version {doc.get('schema_version')}")
    check(isinstance(doc.get("command"), str),
          "statusz: missing command string")

    status = doc.get("status")
    check(isinstance(status, dict), "statusz: missing status object")
    check(isinstance(status.get("code"), int) and status["code"] >= 0,
          f"statusz: status.code {status.get('code')!r} not a "
          f"non-negative int")
    check(isinstance(status.get("name"), str) and status["name"],
          "statusz: status.name not a non-empty string")
    check("message" in status, "statusz: status.message missing")
    check((status["code"] == 0) == (status["name"] == "ok"),
          f"statusz: status.code {status['code']} inconsistent with "
          f"status.name {status['name']!r}")

    build = doc.get("build")
    check(isinstance(build, dict) and isinstance(build.get("describe"), str)
          and build["describe"],
          "statusz: build.describe not a non-empty string")

    simd = doc.get("simd")
    check(isinstance(simd, dict), "statusz: missing simd object")
    for key in ("cpu_tier", "active_tier"):
        check(isinstance(simd.get(key), str) and simd[key],
              f"statusz: simd.{key} not a non-empty string")

    fault = doc.get("fault")
    check(isinstance(fault, dict), "statusz: missing fault object")
    check(isinstance(fault.get("armed"), bool),
          "statusz: fault.armed not a boolean")
    check(isinstance(fault.get("spec"), str), "statusz: fault.spec missing")
    check(isinstance(fault.get("injected_total"), int) and
          fault["injected_total"] >= 0,
          "statusz: fault.injected_total not a non-negative int")
    check(isinstance(fault.get("sites"), dict),
          "statusz: fault.sites not an object")

    sections = 0
    check("serve" in doc, "statusz: serve section missing (may be null)")
    if doc["serve"] is not None:
        sections += validate_serve_doc(doc["serve"], label="statusz.serve")
    check("metrics" in doc, "statusz: metrics section missing (may be null)")
    if doc["metrics"] is not None:
        sections += validate_metrics_doc(doc["metrics"],
                                         label="statusz.metrics")
    check("flight_recorder" in doc,
          "statusz: flight_recorder section missing (may be null)")
    if doc["flight_recorder"] is not None:
        sections += validate_flight_recorder_doc(
            doc["flight_recorder"], label="statusz.flight_recorder")
    return sections


def validate_prometheus(path):
    with open(path, "r", encoding="utf-8") as f:
        lines = f.read().splitlines()
    check(lines, "metrics: empty Prometheus file")
    declared = set()
    samples = 0
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            check(len(parts) >= 4 and parts[1] == "TYPE",
                  f"metrics:{lineno}: bad comment {line!r}")
            check(parts[3] in ("counter", "gauge", "summary", "histogram"),
                  f"metrics:{lineno}: unknown type {parts[3]!r}")
            declared.add(parts[2])
            continue
        parts = line.split()
        check(len(parts) == 2, f"metrics:{lineno}: expected 'name value', "
                               f"got {line!r}")
        name = parts[0].split("{", 1)[0]
        base = name
        for suffix in ("_sum", "_count"):
            if base.endswith(suffix):
                base = base[: -len(suffix)]
        check(name in declared or base in declared,
              f"metrics:{lineno}: sample {name!r} has no # TYPE declaration")
        try:
            float(parts[1])
        except ValueError:
            raise ValidationError(
                f"metrics:{lineno}: non-numeric value {parts[1]!r}")
        samples += 1
    check(samples > 0, "metrics: no samples")
    return samples


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="Chrome trace_event JSON file")
    parser.add_argument("--metrics-json", help="metrics JSON file")
    parser.add_argument("--metrics", help="Prometheus text file")
    parser.add_argument("--statusz", help="statusz one-shot dump JSON file")
    parser.add_argument("--flight-recorder",
                        help="flight recorder ring dump JSON file")
    args = parser.parse_args()
    if not (args.trace or args.metrics_json or args.metrics or args.statusz
            or args.flight_recorder):
        parser.error("nothing to validate: pass --trace, --metrics-json, "
                     "--metrics, --statusz and/or --flight-recorder")
    try:
        if args.trace:
            n = validate_chrome_trace(args.trace)
            print(f"OK {args.trace}: {n} sampled query chains, span sums "
                  f"within {REL_TOL:.0%}")
        if args.metrics_json:
            n = validate_metrics_json(args.metrics_json)
            print(f"OK {args.metrics_json}: {n} metrics")
        if args.metrics:
            n = validate_prometheus(args.metrics)
            print(f"OK {args.metrics}: {n} samples")
        if args.statusz:
            n = validate_statusz(args.statusz)
            print(f"OK {args.statusz}: {n} embedded metrics/records")
        if args.flight_recorder:
            n = validate_flight_recorder(args.flight_recorder)
            print(f"OK {args.flight_recorder}: {n} records")
    except (ValidationError, OSError, json.JSONDecodeError) as e:
        print(f"FAIL: {e}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
