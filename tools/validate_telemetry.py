#!/usr/bin/env python3
"""Validates telemetry artifacts emitted by song_cli / the obs exporters.

Stdlib-only. Three artifact kinds, any subset per invocation:

  validate_telemetry.py --trace out.trace.json \
                        --metrics-json out.metrics.json \
                        --metrics out.prom

Checks (see docs/observability.md for the formats):
  * Chrome trace: well-formed trace_event JSON; every "X" event carries
    pid/tid/ts/dur; each sampled query's per-iteration stage spans sum to
    its query span within 1%; the GPU timeline's stage spans sum to the
    kernel span within 1%; `otherData` carries the schema version and the
    breakdown seconds.
  * Metrics JSON: schema_version plus counters/gauges/histograms maps;
    histogram entries carry count/sum/min/max/p50/p95/p99 with ordered
    percentiles.
  * Prometheus text: every non-comment line is `name value`; every metric
    is preceded by a `# TYPE` declaration.

Exit code 0 = all artifacts valid, 1 = validation failure, 2 = usage.
"""

import argparse
import json
import math
import sys

REL_TOL = 0.01  # the 1% span-sum acceptance bound


class ValidationError(Exception):
    pass


def check(cond, msg):
    if not cond:
        raise ValidationError(msg)


def close(a, b, rel=REL_TOL):
    return math.isclose(a, b, rel_tol=rel, abs_tol=1e-9)


def validate_chrome_trace(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    check(isinstance(doc, dict), "trace: top level must be an object")
    events = doc.get("traceEvents")
    check(isinstance(events, list) and events,
          "trace: missing/empty traceEvents")

    other = doc.get("otherData")
    check(isinstance(other, dict), "trace: missing otherData")
    for key in ("schema_version", "gpu", "num_queries", "num_traces",
                "kernel_seconds", "locate_seconds", "distance_seconds",
                "maintain_seconds", "htod_seconds", "dtoh_seconds"):
        check(key in other, f"trace: otherData missing {key!r}")
    check(other["schema_version"] == 1,
          f"trace: unknown schema_version {other['schema_version']}")

    # Stage attribution partitions the kernel time.
    stage_sum = (other["locate_seconds"] + other["distance_seconds"] +
                 other["maintain_seconds"])
    check(close(stage_sum, other["kernel_seconds"]),
          f"trace: otherData stage seconds sum {stage_sum:.6g} != "
          f"kernel_seconds {other['kernel_seconds']:.6g}")

    # Index spans: pid 1 holds the sampled query chains (tid = query id).
    query_spans = {}   # tid -> dur of the "query N" umbrella span
    stage_sums = {}    # tid -> sum of its locate/distance/maintain spans
    gpu_kernel_dur = None
    gpu_stage_sum = 0.0
    for ev in events:
        check(isinstance(ev, dict) and "ph" in ev,
              f"trace: malformed event {ev!r}")
        if ev["ph"] == "M":
            continue
        check(ev["ph"] == "X", f"trace: unexpected phase {ev['ph']!r}")
        for key in ("name", "pid", "tid", "ts", "dur"):
            check(key in ev, f"trace: X event missing {key!r}: {ev!r}")
        check(ev["dur"] >= 0, f"trace: negative duration in {ev!r}")
        if ev["pid"] == 0:
            if ev["name"] == "kernel":
                gpu_kernel_dur = ev["dur"]
            elif ev["name"] in ("locate", "distance", "maintain"):
                gpu_stage_sum += ev["dur"]
        elif ev["pid"] == 1:
            if ev["name"].startswith("query "):
                check(ev["tid"] not in query_spans,
                      f"trace: duplicate query span for tid {ev['tid']}")
                query_spans[ev["tid"]] = ev["dur"]
            elif ev["name"] in ("locate", "distance", "maintain"):
                stage_sums[ev["tid"]] = stage_sums.get(ev["tid"], 0.0) + \
                    ev["dur"]

    check(gpu_kernel_dur is not None, "trace: no GPU kernel span (pid 0)")
    check(close(gpu_stage_sum, gpu_kernel_dur),
          f"trace: GPU stage spans sum {gpu_stage_sum:.6g}us != kernel span "
          f"{gpu_kernel_dur:.6g}us")

    check(len(query_spans) == other["num_traces"],
          f"trace: {len(query_spans)} query spans but otherData says "
          f"{other['num_traces']} traces")
    for tid, dur in query_spans.items():
        got = stage_sums.get(tid, 0.0)
        check(close(got, dur),
              f"trace: query {tid} stage spans sum {got:.6g}us != query "
              f"span {dur:.6g}us (>{REL_TOL:.0%} off)")
    return len(query_spans)


def validate_metrics_json(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    check(isinstance(doc, dict), "metrics-json: top level must be an object")
    check(doc.get("schema_version") == 1,
          f"metrics-json: unknown schema_version {doc.get('schema_version')}")
    for section in ("counters", "gauges", "histograms"):
        check(isinstance(doc.get(section), dict),
              f"metrics-json: missing {section!r} object")
    for name, value in doc["counters"].items():
        check(isinstance(value, int) and value >= 0,
              f"metrics-json: counter {name!r} not a non-negative int")
    for name, value in doc["gauges"].items():
        check(isinstance(value, (int, float)),
              f"metrics-json: gauge {name!r} not numeric")
    for name, h in doc["histograms"].items():
        check(isinstance(h, dict),
              f"metrics-json: histogram {name!r} not an object")
        for key in ("count", "sum", "min", "max", "p50", "p95", "p99"):
            check(key in h, f"metrics-json: histogram {name!r} missing "
                            f"{key!r}")
        if h["count"] > 0:
            check(h["min"] <= h["p50"] <= h["p95"] <= h["p99"] <= h["max"]
                  or close(h["min"], h["max"], rel=0.2),
                  f"metrics-json: histogram {name!r} percentiles out of "
                  f"order: {h}")
    return sum(len(doc[s]) for s in ("counters", "gauges", "histograms"))


def validate_prometheus(path):
    with open(path, "r", encoding="utf-8") as f:
        lines = f.read().splitlines()
    check(lines, "metrics: empty Prometheus file")
    declared = set()
    samples = 0
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            check(len(parts) >= 4 and parts[1] == "TYPE",
                  f"metrics:{lineno}: bad comment {line!r}")
            check(parts[3] in ("counter", "gauge", "summary", "histogram"),
                  f"metrics:{lineno}: unknown type {parts[3]!r}")
            declared.add(parts[2])
            continue
        parts = line.split()
        check(len(parts) == 2, f"metrics:{lineno}: expected 'name value', "
                               f"got {line!r}")
        name = parts[0].split("{", 1)[0]
        base = name
        for suffix in ("_sum", "_count"):
            if base.endswith(suffix):
                base = base[: -len(suffix)]
        check(name in declared or base in declared,
              f"metrics:{lineno}: sample {name!r} has no # TYPE declaration")
        try:
            float(parts[1])
        except ValueError:
            raise ValidationError(
                f"metrics:{lineno}: non-numeric value {parts[1]!r}")
        samples += 1
    check(samples > 0, "metrics: no samples")
    return samples


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="Chrome trace_event JSON file")
    parser.add_argument("--metrics-json", help="metrics JSON file")
    parser.add_argument("--metrics", help="Prometheus text file")
    args = parser.parse_args()
    if not (args.trace or args.metrics_json or args.metrics):
        parser.error("nothing to validate: pass --trace, --metrics-json "
                     "and/or --metrics")
    try:
        if args.trace:
            n = validate_chrome_trace(args.trace)
            print(f"OK {args.trace}: {n} sampled query chains, span sums "
                  f"within {REL_TOL:.0%}")
        if args.metrics_json:
            n = validate_metrics_json(args.metrics_json)
            print(f"OK {args.metrics_json}: {n} metrics")
        if args.metrics:
            n = validate_prometheus(args.metrics)
            print(f"OK {args.metrics}: {n} samples")
    except (ValidationError, OSError, json.JSONDecodeError) as e:
        print(f"FAIL: {e}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
