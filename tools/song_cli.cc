// song_cli — command-line front end for the library.
//
//   song_cli gen      --preset sift --scale 0.5 --out data.sngd
//                     [--queries queries.sngd]
//   song_cli build    --data data.sngd --out graph.sngg [--degree 16]
//                     [--metric l2|ip|cosine] [--ef 100]
//   song_cli stats    --graph graph.sngg
//   song_cli gt       --data data.sngd --queries queries.sngd --k 100
//                     --out gt.sngd   (ids stored as float rows)
//   song_cli search   --data data.sngd --graph graph.sngg
//                     --queries queries.sngd [--k 10] [--queue 64]
//                     [--config hashtable|sel|seldel|bloom|cuckoo]
//                     [--reorder none|bfs|degree]
//                     [--gt gt.sngd] [--gpu v100|p40|titanx]
//                     [--metrics out.prom] [--metrics-json out.json]
//                     [--trace out.trace.json] [--trace-sample 100]
//                     [--deadline-us N] [--cost-budget N]
//                     [--max-inflight N]
//                     [--fault-spec spec] [--fault-seed N]
//                     [--mutate-spec rounds=R,inserts=I,deletes=D[,seed=S]]
//                     [--pq m=<M>[,rerank=<R>][,save=<path>][,load=<path>]]
//                     [--statusz out.json] [--flight-recorder out.json]
//   song_cli version  (build info: SIMD tiers detected/compiled/active)
//
// Quantized traversal (docs/performance.md): --pq trains (or load=s) a
// product-quantizer codebook, runs Stage 2 over m-byte codes via a per-query
// ADC table, and reranks the final pool with exact distances (rerank= sets
// the pool size, 0 = auto). save= writes the trained codebook as a .sngq
// file for later load=. Incompatible with --mutate-spec.
//
// Online mutation (docs/testing.md): --mutate-spec adopts the loaded
// data/graph into a MutableIndex, applies R rounds of I inserts (noisy
// copies of random live points) and D tombstone deletes, then serves the
// queries from the final snapshot and reports recall against an exact scan
// of the live set. Incompatible with --reorder and --gt (both refer to the
// frozen point set, which mutation invalidates).
//
// Robustness (docs/robustness.md): --deadline-us / --cost-budget cap each
// query's work, returning best-so-far results tagged degraded;
// --max-inflight sheds batches past the limit; --fault-spec arms the
// deterministic fault registry (site=prob[@max],... — see
// core/fault_injection.h). Errors never raise exceptions: malformed flags
// exit 2, corrupt or missing inputs exit 1 with a Status diagnostic.
//
// Telemetry: --metrics / --metrics-json dump the batch's MetricsRegistry in
// Prometheus text / JSON. --trace writes sampled per-query Chrome trace_event
// JSON (open in chrome://tracing or ui.perfetto.dev); --trace-sample M keeps
// one query in M (default 1 = every query once --trace is given).
//
// Observability (docs/observability.md): --statusz writes a one-shot serving
// state dump (build info, SIMD tiers, fault registry, metrics, flight
// recorder) on success AND on failure; --flight-recorder dumps the ring of
// the last completed request records as JSON. Either flag arms the
// request-lifecycle pipeline (song.req.* histograms + flight recorder). When
// a fault-injection site fires during the run, the ring is also dumped to
// stderr as a post-mortem breadcrumb.
//
// Everything uses the library's binary formats (SNGD datasets, SNGG graphs).

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <initializer_list>
#include <map>
#include <string>
#include <vector>

#include "baselines/flat_index.h"
#include "core/fault_injection.h"
#include "core/random.h"
#include "core/recall.h"
#include "core/simd.h"
#include "core/thread_pool.h"
#include "core/timer.h"
#include "data/synthetic.h"
#include "gpusim/simulator.h"
#include "graph/graph_stats.h"
#include "graph/nsw_builder.h"
#include "graph/reorder.h"
#include "obs/exporters.h"
#include "obs/flight_recorder.h"
#include "song/index_snapshot.h"
#include "song/mutable_index.h"
#include "song/song_searcher.h"

#ifndef SONG_GIT_DESCRIBE
#define SONG_GIT_DESCRIBE "unknown"
#endif

namespace {

using namespace song;  // NOLINT: CLI main file

using Flags = std::map<std::string, std::string>;

Flags ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags[arg] = argv[++i];
    } else {
      flags[arg] = "1";
    }
  }
  return flags;
}

/// Rejects flags a command does not understand — a typo'd flag silently
/// falling back to a default is how bad benchmarks get published.
void CheckFlags(const Flags& flags, const char* cmd,
                std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : flags) {
    bool known = false;
    for (const char* a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::fprintf(stderr, "unknown flag --%s for command %s\n", key.c_str(),
                   cmd);
      std::exit(2);
    }
  }
}

std::string Require(const Flags& flags, const std::string& key) {
  const auto it = flags.find(key);
  if (it == flags.end()) {
    std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
    std::exit(2);
  }
  return it->second;
}

std::string Optional(const Flags& flags, const std::string& key,
                     const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

/// Strict non-negative integer flag parse; a trailing junk suffix or an
/// out-of-range value is a usage error (exit 2), not a silent zero.
uint64_t ParseUint(const Flags& flags, const std::string& key,
                   const std::string& fallback) {
  const std::string value = Optional(flags, key, fallback);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || value[0] == '-' || end == value.c_str() ||
      *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr,
                 "flag --%s expects a non-negative integer, got \"%s\"\n",
                 key.c_str(), value.c_str());
    std::exit(2);
  }
  return v;
}

Metric ParseMetric(const std::string& name) {
  if (name == "l2") return Metric::kL2;
  if (name == "ip") return Metric::kInnerProduct;
  if (name == "cosine") return Metric::kCosine;
  std::fprintf(stderr, "unknown metric: %s\n", name.c_str());
  std::exit(2);
}

GpuSpec ParseGpu(const std::string& name) {
  if (name == "v100") return GpuSpec::V100();
  if (name == "p40") return GpuSpec::P40();
  if (name == "titanx") return GpuSpec::TitanX();
  std::fprintf(stderr, "unknown gpu: %s\n", name.c_str());
  std::exit(2);
}

SongSearchOptions ParseConfig(const std::string& name) {
  if (name == "hashtable") return SongSearchOptions::HashTable();
  if (name == "sel") return SongSearchOptions::HashTableSel();
  if (name == "seldel") return SongSearchOptions::HashTableSelDel();
  if (name == "bloom") return SongSearchOptions::Bloom();
  if (name == "cuckoo") return SongSearchOptions::Cuckoo();
  std::fprintf(stderr, "unknown config: %s\n", name.c_str());
  std::exit(2);
}

Dataset LoadDatasetOrDie(const std::string& path) {
  auto loaded = Dataset::Load(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    std::exit(loaded.status().ExitCode());
  }
  return std::move(loaded.value());
}

int CmdGen(const Flags& flags) {
  CheckFlags(flags, "gen", {"preset", "scale", "out", "queries"});
  const std::string preset = Require(flags, "preset");
  const double scale = std::atof(Optional(flags, "scale", "1.0").c_str());
  SyntheticSpec spec = PresetSpec(preset, scale > 0 ? scale : 1.0);
  const SyntheticData gen = GenerateSynthetic(spec);
  const std::string out = Require(flags, "out");
  Status s = gen.points.Save(out);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu x %zu points to %s\n", gen.points.num(),
              gen.points.dim(), out.c_str());
  const auto q = flags.find("queries");
  if (q != flags.end()) {
    s = gen.queries.Save(q->second);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu queries to %s\n", gen.queries.num(),
                q->second.c_str());
  }
  return 0;
}

int CmdBuild(const Flags& flags) {
  CheckFlags(flags, "build", {"data", "out", "degree", "ef", "metric"});
  const Dataset data = LoadDatasetOrDie(Require(flags, "data"));
  NswBuildOptions options;
  options.degree = ParseUint(flags, "degree", "16");
  options.ef_construction = ParseUint(flags, "ef", "100");
  if (options.degree == 0) {
    std::fprintf(stderr, "flag --degree must be >= 1\n");
    return 2;
  }
  const Metric metric = ParseMetric(Optional(flags, "metric", "l2"));
  Timer timer;
  const FixedDegreeGraph graph = NswBuilder::Build(data, metric, options);
  std::printf("built NSW graph (degree %zu) over %zu points in %.2fs\n",
              graph.degree(), graph.num_vertices(), timer.ElapsedSeconds());
  const Status s = graph.Save(Require(flags, "out"));
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}

int CmdStats(const Flags& flags) {
  CheckFlags(flags, "stats", {"graph"});
  auto loaded = FixedDegreeGraph::Load(Require(flags, "graph"));
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return loaded.status().ExitCode();
  }
  const GraphStats stats = ComputeGraphStats(loaded.value());
  std::printf("vertices:        %zu\n", stats.num_vertices);
  std::printf("degree capacity: %zu\n", stats.degree_capacity);
  std::printf("degree min/avg/max: %zu / %.2f / %zu\n", stats.min_degree,
              stats.avg_degree, stats.max_degree);
  std::printf("reachable from 0: %zu (%.2f%%)\n", stats.reachable,
              100.0 * stats.reachable / stats.num_vertices);
  std::printf("memory: %.2f MB\n", stats.memory_bytes / (1024.0 * 1024.0));
  return 0;
}

int CmdGroundTruth(const Flags& flags) {
  CheckFlags(flags, "gt", {"data", "queries", "k", "metric", "out"});
  const Dataset data = LoadDatasetOrDie(Require(flags, "data"));
  const Dataset queries = LoadDatasetOrDie(Require(flags, "queries"));
  const size_t k = ParseUint(flags, "k", "100");
  if (k == 0 || k > data.num()) {
    std::fprintf(stderr, "flag --k must be in [1, %zu]\n", data.num());
    return 2;
  }
  const Metric metric = ParseMetric(Optional(flags, "metric", "l2"));
  FlatIndex flat(&data, metric);
  const auto results = flat.BatchSearch(queries, k);
  // Store as a float matrix of ids (reuses the SNGD container).
  Dataset gt(queries.num(), k);
  std::vector<float> row(k, -1.0f);
  for (size_t q = 0; q < queries.num(); ++q) {
    std::fill(row.begin(), row.end(), -1.0f);
    for (size_t i = 0; i < results[q].size(); ++i) {
      row[i] = static_cast<float>(results[q][i].id);
    }
    gt.SetRow(static_cast<idx_t>(q), row.data());
  }
  const Status s = gt.Save(Require(flags, "out"));
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote exact top-%zu for %zu queries\n", k, queries.num());
  return 0;
}

GraphReorder ParseReorder(const std::string& name) {
  if (name == "none") return GraphReorder::kNone;
  if (name == "bfs") return GraphReorder::kBfs;
  if (name == "degree") return GraphReorder::kDegreeDescending;
  std::fprintf(stderr, "unknown reorder strategy: %s\n", name.c_str());
  std::exit(2);
}

struct MutateSpec {
  uint64_t rounds = 0;
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t seed = 42;
};

/// Parses "rounds=R,inserts=I,deletes=D[,seed=S]"; exits 2 on malformed
/// input, matching the strictness of the other flag parsers.
MutateSpec ParseMutateSpec(const std::string& spec) {
  MutateSpec out;
  bool have_rounds = false;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string part = spec.substr(pos, comma - pos);
    const size_t eq = part.find('=');
    char* end = nullptr;
    errno = 0;
    const unsigned long long v =
        eq == std::string::npos
            ? 0
            : std::strtoull(part.c_str() + eq + 1, &end, 10);
    const bool bad = eq == std::string::npos || end == part.c_str() + eq + 1 ||
                     *end != '\0' || errno == ERANGE;
    const std::string key = part.substr(0, eq);
    if (!bad && key == "rounds") {
      out.rounds = v;
      have_rounds = true;
    } else if (!bad && key == "inserts") {
      out.inserts = v;
    } else if (!bad && key == "deletes") {
      out.deletes = v;
    } else if (!bad && key == "seed") {
      out.seed = v;
    } else {
      std::fprintf(stderr,
                   "malformed --mutate-spec component \"%s\" (expected "
                   "rounds=R,inserts=I,deletes=D[,seed=S])\n",
                   part.c_str());
      std::exit(2);
    }
    pos = comma + 1;
  }
  if (!have_rounds || out.rounds == 0) {
    std::fprintf(stderr, "--mutate-spec requires rounds >= 1\n");
    std::exit(2);
  }
  return out;
}

struct PqSpec {
  uint64_t m = 0;       ///< subquantizers; 0 with load= means "from codebook"
  uint64_t rerank = 0;  ///< rerank_depth (0 = auto)
  std::string save;     ///< write the trained codebook here (.sngq)
  std::string load;     ///< adopt a pre-trained codebook instead of training
};

/// Parses "m=<M>[,rerank=<R>][,save=<path>][,load=<path>]"; exits 2 on
/// malformed input, matching ParseMutateSpec's strictness.
PqSpec ParsePqSpec(const std::string& spec) {
  PqSpec out;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string part = spec.substr(pos, comma - pos);
    const size_t eq = part.find('=');
    const std::string key =
        eq == std::string::npos ? part : part.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : part.substr(eq + 1);
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    const bool bad_uint = value.empty() || end != value.c_str() + value.size() ||
                          errno == ERANGE;
    if (key == "m" && !bad_uint) {
      out.m = v;
    } else if (key == "rerank" && !bad_uint) {
      out.rerank = v;
    } else if (key == "save" && !value.empty()) {
      out.save = value;
    } else if (key == "load" && !value.empty()) {
      out.load = value;
    } else {
      std::fprintf(stderr,
                   "malformed --pq component \"%s\" (expected "
                   "m=<M>[,rerank=<R>][,save=<path>][,load=<path>])\n",
                   part.c_str());
      std::exit(2);
    }
    pos = comma + 1;
  }
  if (out.m == 0 && out.load.empty()) {
    std::fprintf(stderr, "--pq requires m=<M> >= 1 (or load=<path>)\n");
    std::exit(2);
  }
  return out;
}

/// Writes the --statusz one-shot dump; returns 0/1 like the other writers.
/// Called on both the success and the failure path, so a crashed-run dump
/// still carries the error Status plus everything recorded up to it.
int WriteStatusz(const std::string& path, const std::string& command,
                 const Status& status, const obs::MetricsRegistry* registry,
                 const obs::FlightRecorder* recorder) {
  obs::StatuszContext ctx;
  ctx.registry = registry;
  ctx.flight_recorder = recorder;
  ctx.build_describe = SONG_GIT_DESCRIBE;
  ctx.command = command;
  ctx.status_code = static_cast<int>(status.code());
  ctx.status_message = status.message();
  if (!obs::WriteStringToFile(path, obs::StatuszToJson(ctx))) return 1;
  std::printf("wrote statusz to %s\n", path.c_str());
  return 0;
}

/// Clears the global fault-injection listener on scope exit: the listener
/// lambda captures stack locals, so it must never outlive the frame that
/// armed it.
struct FaultListenerGuard {
  bool armed = false;
  ~FaultListenerGuard() {
    if (armed) fault::FaultRegistry::Global().SetInjectionListener(nullptr);
  }
};

/// Post-mortem ring dump to stderr (non-OK run status, or a fault site
/// fired mid-run).
void DumpFlightRecorderToStderr(const obs::FlightRecorder& recorder,
                                const char* why) {
  std::fprintf(stderr, "flight recorder (%s):\n", why);
  std::fputs(recorder.ToJson().c_str(), stderr);
}

/// The --mutate-spec leg of CmdSearch: churn the adopted index, then serve
/// the queries from the final snapshot with recall against an exact scan of
/// the live set.
int RunMutateSearch(const Flags& flags, Dataset data, FixedDegreeGraph graph,
                    const Dataset& queries, Metric metric, size_t k,
                    const SongSearchOptions& options,
                    const MutateSpec& spec) {
  obs::MetricsRegistry registry;
  MutableIndexOptions mopts;
  mopts.degree = graph.degree();
  MutableIndex index(metric, data.dim(), mopts, &registry);
  {
    // AdoptFrozen consumes its arguments; the oracle scan below reads rows
    // back through the snapshot, so no second copy is needed.
    const Status adopted = index.AdoptFrozen(std::move(data), std::move(graph));
    if (!adopted.ok()) {
      std::fprintf(stderr, "adopt failed: %s\n", adopted.ToString().c_str());
      return adopted.ExitCode();
    }
  }

  RandomEngine rng(spec.seed);
  const size_t dim = index.dim();
  std::vector<float> point(dim);
  Timer mutate_timer;
  uint64_t inserts_done = 0;
  uint64_t deletes_done = 0;
  for (uint64_t round = 0; round < spec.rounds; ++round) {
    for (uint64_t i = 0; i < spec.inserts; ++i) {
      // A noisy copy of a random live point keeps inserts on-distribution
      // without assuming anything about the dataset.
      const std::shared_ptr<const IndexSnapshot> cur = index.Acquire();
      idx_t base = static_cast<idx_t>(rng.NextUint(cur->num_points()));
      while (!cur->IsLive(base)) {
        base = static_cast<idx_t>(rng.NextUint(cur->num_points()));
      }
      const float* row = cur->data().Row(base);
      for (size_t d = 0; d < dim; ++d) {
        point[d] = row[d] + static_cast<float>(rng.NextGaussian() * 0.05);
      }
      const StatusOr<idx_t> id = index.Insert(point.data());
      if (!id.ok()) {
        std::fprintf(stderr, "insert failed: %s\n",
                     id.status().ToString().c_str());
        return id.status().ExitCode();
      }
      ++inserts_done;
    }
    for (uint64_t i = 0; i < spec.deletes && index.live_points() > 1; ++i) {
      const std::shared_ptr<const IndexSnapshot> cur = index.Acquire();
      idx_t victim = static_cast<idx_t>(rng.NextUint(cur->num_points()));
      while (!cur->IsLive(victim)) {
        victim = static_cast<idx_t>(rng.NextUint(cur->num_points()));
      }
      const Status s = index.Delete(victim);
      if (!s.ok()) {
        std::fprintf(stderr, "delete failed: %s\n", s.ToString().c_str());
        return s.ExitCode();
      }
      ++deletes_done;
    }
  }
  index.ReclaimRetired();
  const std::shared_ptr<const IndexSnapshot> snapshot = index.Acquire();
  std::printf(
      "mutated index: %llu inserts, %llu deletes in %.2fs "
      "(%zu points, %zu live, version %llu, %zu retired snapshots)\n",
      static_cast<unsigned long long>(inserts_done),
      static_cast<unsigned long long>(deletes_done),
      mutate_timer.ElapsedSeconds(), snapshot->num_points(),
      snapshot->live_points(), static_cast<unsigned long long>(index.version()),
      index.retired_versions());

  // Serve the queries from the final snapshot; exact live-set scan for
  // recall (the frozen --gt file is meaningless after mutation). Serving is
  // concurrent: --max-inflight bounds the worker count (there is no batch
  // admission queue in this leg — each query is an independent request), so
  // a request's queue stage is the time it waited for a worker slot.
  const std::string metrics_path = Optional(flags, "metrics", "");
  const std::string metrics_json_path = Optional(flags, "metrics-json", "");
  const std::string statusz_path = Optional(flags, "statusz", "");
  const std::string flight_path = Optional(flags, "flight-recorder", "");
  const bool observe = !metrics_path.empty() || !metrics_json_path.empty() ||
                       !statusz_path.empty() || !flight_path.empty();
  obs::FlightRecorder recorder;
  obs::FlightRecorder* recorder_ptr =
      !statusz_path.empty() || !flight_path.empty() ? &recorder : nullptr;
  const obs::RequestMetrics req_metrics(observe ? &registry : nullptr);

  std::atomic<uint64_t> faults_fired{0};
  FaultListenerGuard listener_guard;
  if (recorder_ptr != nullptr && fault::FaultRegistry::Global().enabled()) {
    fault::FaultRegistry::Global().SetInjectionListener(
        [&faults_fired](std::string_view) {
          faults_fired.fetch_add(1, std::memory_order_relaxed);
        });
    listener_guard.armed = true;
  }

  const size_t max_inflight =
      static_cast<size_t>(ParseUint(flags, "max-inflight", "0"));
  const size_t workers = std::max<size_t>(1, max_inflight);
  std::vector<SongWorkspace> workspaces(workers);
  std::vector<size_t> hits_per(workers, 0);
  std::vector<size_t> denom_per(workers, 0);
  std::vector<Status> errors(queries.num());
  const DistanceFunc dist = GetDistanceFunc(metric);
  Timer search_timer;
  ParallelFor(
      queries.num(), workers,
      [&](size_t q, size_t t) {
        const float* query = queries.Row(static_cast<idx_t>(q));
        obs::RequestObserver observer;
        observer.metrics = &req_metrics;
        observer.recorder = recorder_ptr;
        observer.request_id = q;
        // The queue stage ends when this worker claims the query; the
        // snapshot search path has no batch formation.
        observer.queue_us = static_cast<float>(search_timer.ElapsedMicros());
        const StatusOr<std::vector<Neighbor>> got = snapshot->TrySearch(
            query, k, options, &workspaces[t], /*stats=*/nullptr,
            /*degraded=*/nullptr, observe ? &observer : nullptr);
        if (!got.ok()) {
          errors[q] = got.status();
          return;
        }
        std::vector<Neighbor> truth;
        for (size_t id = 0; id < snapshot->num_points(); ++id) {
          if (!snapshot->IsLive(static_cast<idx_t>(id))) continue;
          truth.emplace_back(
              dist(query, snapshot->data().Row(static_cast<idx_t>(id)), dim),
              static_cast<idx_t>(id));
        }
        std::sort(truth.begin(), truth.end());
        if (truth.size() > k) truth.resize(k);
        denom_per[t] += truth.size();
        for (const Neighbor& n : got.value()) {
          for (const Neighbor& tr : truth) {
            if (n.id == tr.id) {
              ++hits_per[t];
              break;
            }
          }
        }
      },
      /*chunk=*/1);

  // Deterministic error reporting: the lowest failed query wins, regardless
  // of which worker hit it first.
  for (size_t q = 0; q < queries.num(); ++q) {
    if (errors[q].ok()) continue;
    std::fprintf(stderr, "query %zu failed: %s\n", q,
                 errors[q].ToString().c_str());
    if (recorder_ptr != nullptr) {
      DumpFlightRecorderToStderr(recorder, "non-OK run status");
    }
    if (!statusz_path.empty()) {
      WriteStatusz(statusz_path, "search --mutate-spec", errors[q], &registry,
                   recorder_ptr);
    }
    return errors[q].ExitCode();
  }
  size_t hits = 0;
  size_t denom = 0;
  for (size_t t = 0; t < workers; ++t) {
    hits += hits_per[t];
    denom += denom_per[t];
  }
  std::printf("queries: %zu, k=%zu, queue=%zu, config=%s, workers=%zu\n",
              queries.num(), k, options.queue_size, options.Name().c_str(),
              workers);
  std::printf("search wall: %.3fs (%.0f QPS)\n", search_timer.ElapsedSeconds(),
              queries.num() / std::max(1e-9, search_timer.ElapsedSeconds()));
  std::printf("recall@%zu vs live set: %.4f\n", k,
              denom == 0 ? 0.0 : static_cast<double>(hits) / denom);

  int status = 0;
  if (faults_fired.load(std::memory_order_relaxed) > 0) {
    DumpFlightRecorderToStderr(recorder, "fault site fired");
  }
  if (!metrics_path.empty()) {
    if (obs::WriteStringToFile(metrics_path,
                               obs::MetricsToPrometheusText(registry))) {
      std::printf("wrote Prometheus metrics to %s\n", metrics_path.c_str());
    } else {
      status = 1;
    }
  }
  if (!metrics_json_path.empty()) {
    if (obs::WriteStringToFile(metrics_json_path,
                               obs::MetricsToJson(registry))) {
      std::printf("wrote JSON metrics to %s\n", metrics_json_path.c_str());
    } else {
      status = 1;
    }
  }
  if (!flight_path.empty()) {
    if (obs::WriteStringToFile(flight_path, recorder.ToJson())) {
      std::printf("wrote flight recorder to %s\n", flight_path.c_str());
    } else {
      status = 1;
    }
  }
  if (!statusz_path.empty()) {
    status |= WriteStatusz(statusz_path, "search --mutate-spec", Status::OK(),
                           &registry, recorder_ptr);
  }
  return status;
}

int CmdSearch(const Flags& flags) {
  CheckFlags(flags, "search",
             {"data", "graph", "queries", "metric", "k", "queue", "config",
              "reorder", "gt", "gpu", "metrics", "metrics-json", "trace",
              "trace-sample", "deadline-us", "cost-budget", "max-inflight",
              "fault-spec", "fault-seed", "mutate-spec", "statusz",
              "flight-recorder", "pq"});

  const std::string fault_spec = Optional(flags, "fault-spec", "");
  if (!fault_spec.empty()) {
    const uint64_t fault_seed = ParseUint(flags, "fault-seed", "42");
    const Status fs =
        fault::FaultRegistry::Global().Configure(fault_spec, fault_seed);
    if (!fs.ok()) {
      std::fprintf(stderr, "invalid --fault-spec: %s\n",
                   fs.ToString().c_str());
      return fs.ExitCode();
    }
  } else if (flags.count("fault-seed") != 0) {
    std::fprintf(stderr, "--fault-seed requires --fault-spec\n");
    return 2;
  }

  Dataset data = LoadDatasetOrDie(Require(flags, "data"));
  const Dataset queries = LoadDatasetOrDie(Require(flags, "queries"));
  auto graph_loaded = FixedDegreeGraph::Load(Require(flags, "graph"));
  if (!graph_loaded.ok()) {
    std::fprintf(stderr, "%s\n", graph_loaded.status().ToString().c_str());
    return graph_loaded.status().ExitCode();
  }
  FixedDegreeGraph graph = std::move(graph_loaded.value());
  const Metric metric = ParseMetric(Optional(flags, "metric", "l2"));
  const size_t k = ParseUint(flags, "k", "10");
  SongSearchOptions options =
      ParseConfig(Optional(flags, "config", "seldel"));
  options.queue_size = ParseUint(flags, "queue", "64");
  options.reorder = ParseReorder(Optional(flags, "reorder", "none"));
  options.deadline_us = ParseUint(flags, "deadline-us", "0");
  options.cost_budget = ParseUint(flags, "cost-budget", "0");
  BatchAdmission admission;
  admission.max_inflight = ParseUint(flags, "max-inflight", "0");

  const std::string mutate_spec = Optional(flags, "mutate-spec", "");
  if (!mutate_spec.empty()) {
    if (flags.count("pq") != 0) {
      std::fprintf(stderr,
                   "--mutate-spec is incompatible with --pq (snapshots of a "
                   "mutable index serve exact search only)\n");
      return 2;
    }
    if (options.reorder != GraphReorder::kNone) {
      std::fprintf(stderr,
                   "--mutate-spec is incompatible with --reorder (the "
                   "reordered id space is frozen)\n");
      return 2;
    }
    if (flags.count("gt") != 0) {
      std::fprintf(stderr,
                   "--mutate-spec is incompatible with --gt (ground truth "
                   "refers to the pre-mutation point set); recall is "
                   "computed against an exact scan of the live set\n");
      return 2;
    }
    return RunMutateSearch(flags, std::move(data), std::move(graph), queries,
                           metric, k, options, ParseMutateSpec(mutate_spec));
  }

  idx_t entry = 0;
  std::vector<idx_t> result_id_map;
  if (options.reorder != GraphReorder::kNone) {
    Timer reorder_timer;
    ReorderedIndex reordered =
        ReorderIndex(data, graph, options.reorder, entry);
    data = std::move(reordered.data);
    graph = std::move(reordered.graph);
    entry = reordered.entry;
    result_id_map = std::move(reordered.perm.new_to_old);
    std::printf("reordered index (%s) in %.2fs\n",
                GraphReorderName(options.reorder),
                reorder_timer.ElapsedSeconds());
  }

  SongSearcher searcher(&data, &graph, metric, entry);
  searcher.SetResultIdMap(std::move(result_id_map));
  std::printf("simd tier: %s\n", SimdTierName(ActiveSimdTier()));

  const std::string pq_flag = Optional(flags, "pq", "");
  if (!pq_flag.empty()) {
    const PqSpec pq_spec = ParsePqSpec(pq_flag);
    Status enabled;
    if (!pq_spec.load.empty()) {
      StatusOr<ProductQuantizer> loaded = ProductQuantizer::Load(pq_spec.load);
      if (!loaded.ok()) {
        std::fprintf(stderr, "pq codebook load failed: %s\n",
                     loaded.status().ToString().c_str());
        return loaded.status().ExitCode();
      }
      enabled = searcher.EnablePq(std::move(loaded).value());
    } else {
      PqOptions popts;
      popts.num_subquantizers = static_cast<size_t>(pq_spec.m);
      Timer train_timer;
      enabled = searcher.EnablePq(popts);
      if (enabled.ok()) {
        std::printf("pq: trained codebook in %.2fs\n",
                    train_timer.ElapsedSeconds());
      }
    }
    if (!enabled.ok()) {
      std::fprintf(stderr, "pq enable failed: %s\n",
                   enabled.ToString().c_str());
      return enabled.ExitCode();
    }
    const ProductQuantizer& trained = searcher.pq_distance()->pq();
    if (!pq_spec.save.empty()) {
      const Status saved = trained.Save(pq_spec.save);
      if (!saved.ok()) {
        std::fprintf(stderr, "pq codebook save failed: %s\n",
                     saved.ToString().c_str());
        return saved.ExitCode();
      }
      std::printf("wrote PQ codebook to %s\n", pq_spec.save.c_str());
    }
    options.quant = QuantizationMode::kPq;
    options.rerank_depth = static_cast<size_t>(pq_spec.rerank);
    std::printf("pq: m=%zu (%zu B/code vs %zu B/vector), rerank pool %zu\n",
                trained.code_bytes(), trained.code_bytes(),
                data.dim() * sizeof(float),
                SongSearcher::RerankPoolSize(k, options));
  }
  const GpuSpec gpu = ParseGpu(Optional(flags, "gpu", "v100"));

  const std::string metrics_path = Optional(flags, "metrics", "");
  const std::string metrics_json_path = Optional(flags, "metrics-json", "");
  const std::string trace_path = Optional(flags, "trace", "");
  const std::string statusz_path = Optional(flags, "statusz", "");
  const std::string flight_path = Optional(flags, "flight-recorder", "");
  obs::MetricsRegistry registry;
  obs::FlightRecorder recorder;
  BatchTelemetry telemetry;
  if (!metrics_path.empty() || !metrics_json_path.empty() ||
      !trace_path.empty() || !statusz_path.empty()) {
    telemetry.registry = &registry;
  }
  if (!statusz_path.empty() || !flight_path.empty()) {
    telemetry.flight_recorder = &recorder;
  }
  if (!trace_path.empty()) {
    telemetry.trace_sample_period = static_cast<uint32_t>(std::strtoul(
        Optional(flags, "trace-sample", "1").c_str(), nullptr, 10));
  }

  std::atomic<uint64_t> faults_fired{0};
  FaultListenerGuard listener_guard;
  if (telemetry.flight_recorder != nullptr &&
      fault::FaultRegistry::Global().enabled()) {
    fault::FaultRegistry::Global().SetInjectionListener(
        [&faults_fired](std::string_view) {
          faults_fired.fetch_add(1, std::memory_order_relaxed);
        });
    listener_guard.armed = true;
  }

  StatusOr<SimulatedRun> run_or =
      TrySimulateBatch(searcher, queries, k, options, gpu, /*num_threads=*/0,
                       telemetry, admission);
  if (!run_or.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 run_or.status().ToString().c_str());
    if (telemetry.flight_recorder != nullptr) {
      DumpFlightRecorderToStderr(recorder, "non-OK run status");
    }
    if (!statusz_path.empty()) {
      WriteStatusz(statusz_path, "search", run_or.status(), &registry,
                   telemetry.flight_recorder);
    }
    return run_or.status().ExitCode();
  }
  const SimulatedRun run = std::move(run_or).value();

  std::printf("queries: %zu, k=%zu, queue=%zu, config=%s\n", queries.num(),
              k, options.queue_size, options.Name().c_str());
  std::printf("CPU wall: %.3fs (%.0f QPS)\n", run.batch.wall_seconds,
              run.batch.Qps());
  if (options.deadline_us > 0 || options.cost_budget > 0 ||
      run.batch.queries_degraded > 0) {
    std::printf("degraded queries: %zu / %zu (budget-terminated)\n",
                run.batch.queries_degraded, run.batch.num_queries);
  }
  if (run.batch.queries_rejected > 0) {
    std::printf("rejected queries: %zu / %zu (failed validation)\n",
                run.batch.queries_rejected, run.batch.num_queries);
  }
  std::printf("simulated %s: %.0f QPS (locate %.1f%% / distance %.1f%% / "
              "maintain %.1f%%)\n",
              gpu.name.c_str(), run.SimQps(), run.gpu.LocatePct(),
              run.gpu.DistancePct(), run.gpu.MaintainPct());

  const auto gt_flag = flags.find("gt");
  if (gt_flag != flags.end()) {
    const Dataset gt = LoadDatasetOrDie(gt_flag->second);
    std::vector<std::vector<idx_t>> truth(gt.num());
    for (size_t q = 0; q < gt.num(); ++q) {
      for (size_t i = 0; i < gt.dim(); ++i) {
        const float v = gt.Row(static_cast<idx_t>(q))[i];
        if (v >= 0.0f) truth[q].push_back(static_cast<idx_t>(v));
      }
    }
    std::printf("recall@%zu: %.4f\n", k,
                MeanRecallAtK(run.batch.Ids(), truth, k));
  } else {
    const auto& first = run.batch.results.empty() ? std::vector<Neighbor>{}
                                                  : run.batch.results[0];
    std::printf("query 0 top-%zu:", k);
    for (const Neighbor& n : first) std::printf(" %u(%.3f)", n.id, n.dist);
    std::printf("\n");
  }

  fault::FaultRegistry& faults = fault::FaultRegistry::Global();
  if (faults.enabled()) {
    registry.GetCounter("song.faults.injected")
        .Increment(faults.injected_total());
    std::printf("faults injected: %llu (spec \"%s\", seed %llu)\n",
                static_cast<unsigned long long>(faults.injected_total()),
                faults.spec().c_str(),
                static_cast<unsigned long long>(faults.seed()));
  }

  int status = 0;
  if (faults_fired.load(std::memory_order_relaxed) > 0) {
    DumpFlightRecorderToStderr(recorder, "fault site fired");
  }
  if (!metrics_path.empty()) {
    if (obs::WriteStringToFile(metrics_path,
                               obs::MetricsToPrometheusText(registry))) {
      std::printf("wrote Prometheus metrics to %s\n", metrics_path.c_str());
    } else {
      status = 1;
    }
  }
  if (!metrics_json_path.empty()) {
    if (obs::WriteStringToFile(metrics_json_path,
                               obs::MetricsToJson(registry))) {
      std::printf("wrote JSON metrics to %s\n", metrics_json_path.c_str());
    } else {
      status = 1;
    }
  }
  if (!flight_path.empty()) {
    if (obs::WriteStringToFile(flight_path, recorder.ToJson())) {
      std::printf("wrote flight recorder to %s\n", flight_path.c_str());
    } else {
      status = 1;
    }
  }
  if (!statusz_path.empty()) {
    status |= WriteStatusz(statusz_path, "search", Status::OK(), &registry,
                           telemetry.flight_recorder);
  }
  if (!trace_path.empty()) {
    CostModel model(gpu);
    obs::ChromeTraceContext context;
    context.model = &model;
    context.shape = run.shape;
    context.breakdown = run.gpu;
    context.num_queries = run.batch.num_queries;
    if (obs::WriteStringToFile(
            trace_path, obs::TracesToChromeJson(run.batch.traces, context))) {
      std::printf("wrote %zu sampled traces to %s (%zu dropped)\n",
                  run.batch.traces.size(), trace_path.c_str(),
                  run.batch.traces_dropped);
    } else {
      status = 1;
    }
  }
  return status;
}

int CmdVersion() {
  std::printf("song_cli (SONG reproduction)\n");
  std::printf("cpu simd:      %s\n", SimdTierName(CpuSimdTier()));
  std::printf("compiled tiers:");
  for (const SimdTier tier :
       {SimdTier::kScalar, SimdTier::kAvx2, SimdTier::kAvx512}) {
    if (SimdTierCompiled(tier)) std::printf(" %s", SimdTierName(tier));
  }
  std::printf("\n");
  std::printf("active tier:   %s", SimdTierName(ActiveSimdTier()));
  const char* env = std::getenv("SONG_SIMD");
  if (env != nullptr) std::printf(" (SONG_SIMD=%s)", env);
  std::printf("\n");
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: song_cli <gen|build|stats|gt|search|version> [--flags]\n"
               "see the header comment of tools/song_cli.cc\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  // Library errors surface as Status; anything thrown past this point is a
  // bug, but the CLI still exits with a diagnostic instead of aborting.
  try {
    const std::string cmd = argv[1];
    const Flags flags = ParseFlags(argc, argv, 2);
    if (cmd == "gen") return CmdGen(flags);
    if (cmd == "build") return CmdBuild(flags);
    if (cmd == "stats") return CmdStats(flags);
    if (cmd == "gt") return CmdGroundTruth(flags);
    if (cmd == "search") return CmdSearch(flags);
    if (cmd == "version") {
      CheckFlags(flags, "version", {});
      return CmdVersion();
    }
    Usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "song_cli: fatal: %s\n", e.what());
    return 1;
  } catch (...) {
    std::fprintf(stderr, "song_cli: fatal: unknown exception\n");
    return 1;
  }
}
