// song_cli — command-line front end for the library.
//
//   song_cli gen      --preset sift --scale 0.5 --out data.sngd
//                     [--queries queries.sngd]
//   song_cli build    --data data.sngd --out graph.sngg [--degree 16]
//                     [--metric l2|ip|cosine] [--ef 100]
//   song_cli stats    --graph graph.sngg
//   song_cli gt       --data data.sngd --queries queries.sngd --k 100
//                     --out gt.sngd   (ids stored as float rows)
//   song_cli search   --data data.sngd --graph graph.sngg
//                     --queries queries.sngd [--k 10] [--queue 64]
//                     [--config hashtable|sel|seldel|bloom|cuckoo]
//                     [--reorder none|bfs|degree]
//                     [--gt gt.sngd] [--gpu v100|p40|titanx]
//                     [--metrics out.prom] [--metrics-json out.json]
//                     [--trace out.trace.json] [--trace-sample 100]
//   song_cli version  (build info: SIMD tiers detected/compiled/active)
//
// Telemetry: --metrics / --metrics-json dump the batch's MetricsRegistry in
// Prometheus text / JSON. --trace writes sampled per-query Chrome trace_event
// JSON (open in chrome://tracing or ui.perfetto.dev); --trace-sample M keeps
// one query in M (default 1 = every query once --trace is given).
//
// Everything uses the library's binary formats (SNGD datasets, SNGG graphs).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "baselines/flat_index.h"
#include "core/recall.h"
#include "core/simd.h"
#include "core/timer.h"
#include "data/synthetic.h"
#include "gpusim/simulator.h"
#include "graph/graph_stats.h"
#include "graph/nsw_builder.h"
#include "graph/reorder.h"
#include "obs/exporters.h"
#include "song/song_searcher.h"

namespace {

using namespace song;  // NOLINT: CLI main file

using Flags = std::map<std::string, std::string>;

Flags ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags[arg] = argv[++i];
    } else {
      flags[arg] = "1";
    }
  }
  return flags;
}

std::string Require(const Flags& flags, const std::string& key) {
  const auto it = flags.find(key);
  if (it == flags.end()) {
    std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
    std::exit(2);
  }
  return it->second;
}

std::string Optional(const Flags& flags, const std::string& key,
                     const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

Metric ParseMetric(const std::string& name) {
  if (name == "l2") return Metric::kL2;
  if (name == "ip") return Metric::kInnerProduct;
  if (name == "cosine") return Metric::kCosine;
  std::fprintf(stderr, "unknown metric: %s\n", name.c_str());
  std::exit(2);
}

GpuSpec ParseGpu(const std::string& name) {
  if (name == "v100") return GpuSpec::V100();
  if (name == "p40") return GpuSpec::P40();
  if (name == "titanx") return GpuSpec::TitanX();
  std::fprintf(stderr, "unknown gpu: %s\n", name.c_str());
  std::exit(2);
}

SongSearchOptions ParseConfig(const std::string& name) {
  if (name == "hashtable") return SongSearchOptions::HashTable();
  if (name == "sel") return SongSearchOptions::HashTableSel();
  if (name == "seldel") return SongSearchOptions::HashTableSelDel();
  if (name == "bloom") return SongSearchOptions::Bloom();
  if (name == "cuckoo") return SongSearchOptions::Cuckoo();
  std::fprintf(stderr, "unknown config: %s\n", name.c_str());
  std::exit(2);
}

Dataset LoadDatasetOrDie(const std::string& path) {
  auto loaded = Dataset::Load(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(loaded.value());
}

int CmdGen(const Flags& flags) {
  const std::string preset = Require(flags, "preset");
  const double scale = std::atof(Optional(flags, "scale", "1.0").c_str());
  SyntheticSpec spec = PresetSpec(preset, scale > 0 ? scale : 1.0);
  const SyntheticData gen = GenerateSynthetic(spec);
  const std::string out = Require(flags, "out");
  Status s = gen.points.Save(out);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu x %zu points to %s\n", gen.points.num(),
              gen.points.dim(), out.c_str());
  const auto q = flags.find("queries");
  if (q != flags.end()) {
    s = gen.queries.Save(q->second);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu queries to %s\n", gen.queries.num(),
                q->second.c_str());
  }
  return 0;
}

int CmdBuild(const Flags& flags) {
  const Dataset data = LoadDatasetOrDie(Require(flags, "data"));
  NswBuildOptions options;
  options.degree = std::strtoul(Optional(flags, "degree", "16").c_str(),
                                nullptr, 10);
  options.ef_construction =
      std::strtoul(Optional(flags, "ef", "100").c_str(), nullptr, 10);
  const Metric metric = ParseMetric(Optional(flags, "metric", "l2"));
  Timer timer;
  const FixedDegreeGraph graph = NswBuilder::Build(data, metric, options);
  std::printf("built NSW graph (degree %zu) over %zu points in %.2fs\n",
              graph.degree(), graph.num_vertices(), timer.ElapsedSeconds());
  const Status s = graph.Save(Require(flags, "out"));
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}

int CmdStats(const Flags& flags) {
  auto loaded = FixedDegreeGraph::Load(Require(flags, "graph"));
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const GraphStats stats = ComputeGraphStats(loaded.value());
  std::printf("vertices:        %zu\n", stats.num_vertices);
  std::printf("degree capacity: %zu\n", stats.degree_capacity);
  std::printf("degree min/avg/max: %zu / %.2f / %zu\n", stats.min_degree,
              stats.avg_degree, stats.max_degree);
  std::printf("reachable from 0: %zu (%.2f%%)\n", stats.reachable,
              100.0 * stats.reachable / stats.num_vertices);
  std::printf("memory: %.2f MB\n", stats.memory_bytes / (1024.0 * 1024.0));
  return 0;
}

int CmdGroundTruth(const Flags& flags) {
  const Dataset data = LoadDatasetOrDie(Require(flags, "data"));
  const Dataset queries = LoadDatasetOrDie(Require(flags, "queries"));
  const size_t k = std::strtoul(Optional(flags, "k", "100").c_str(),
                                nullptr, 10);
  const Metric metric = ParseMetric(Optional(flags, "metric", "l2"));
  FlatIndex flat(&data, metric);
  const auto results = flat.BatchSearch(queries, k);
  // Store as a float matrix of ids (reuses the SNGD container).
  Dataset gt(queries.num(), k);
  std::vector<float> row(k, -1.0f);
  for (size_t q = 0; q < queries.num(); ++q) {
    std::fill(row.begin(), row.end(), -1.0f);
    for (size_t i = 0; i < results[q].size(); ++i) {
      row[i] = static_cast<float>(results[q][i].id);
    }
    gt.SetRow(static_cast<idx_t>(q), row.data());
  }
  const Status s = gt.Save(Require(flags, "out"));
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote exact top-%zu for %zu queries\n", k, queries.num());
  return 0;
}

GraphReorder ParseReorder(const std::string& name) {
  if (name == "none") return GraphReorder::kNone;
  if (name == "bfs") return GraphReorder::kBfs;
  if (name == "degree") return GraphReorder::kDegreeDescending;
  std::fprintf(stderr, "unknown reorder strategy: %s\n", name.c_str());
  std::exit(2);
}

int CmdSearch(const Flags& flags) {
  Dataset data = LoadDatasetOrDie(Require(flags, "data"));
  const Dataset queries = LoadDatasetOrDie(Require(flags, "queries"));
  auto graph_loaded = FixedDegreeGraph::Load(Require(flags, "graph"));
  if (!graph_loaded.ok()) {
    std::fprintf(stderr, "%s\n", graph_loaded.status().ToString().c_str());
    return 1;
  }
  FixedDegreeGraph graph = std::move(graph_loaded.value());
  const Metric metric = ParseMetric(Optional(flags, "metric", "l2"));
  const size_t k = std::strtoul(Optional(flags, "k", "10").c_str(), nullptr,
                                10);
  SongSearchOptions options =
      ParseConfig(Optional(flags, "config", "seldel"));
  options.queue_size = std::strtoul(Optional(flags, "queue", "64").c_str(),
                                    nullptr, 10);
  options.reorder = ParseReorder(Optional(flags, "reorder", "none"));

  idx_t entry = 0;
  std::vector<idx_t> result_id_map;
  if (options.reorder != GraphReorder::kNone) {
    Timer reorder_timer;
    ReorderedIndex reordered =
        ReorderIndex(data, graph, options.reorder, entry);
    data = std::move(reordered.data);
    graph = std::move(reordered.graph);
    entry = reordered.entry;
    result_id_map = std::move(reordered.perm.new_to_old);
    std::printf("reordered index (%s) in %.2fs\n",
                GraphReorderName(options.reorder),
                reorder_timer.ElapsedSeconds());
  }

  SongSearcher searcher(&data, &graph, metric, entry);
  searcher.SetResultIdMap(std::move(result_id_map));
  std::printf("simd tier: %s\n", SimdTierName(ActiveSimdTier()));
  const GpuSpec gpu = ParseGpu(Optional(flags, "gpu", "v100"));

  const std::string metrics_path = Optional(flags, "metrics", "");
  const std::string metrics_json_path = Optional(flags, "metrics-json", "");
  const std::string trace_path = Optional(flags, "trace", "");
  obs::MetricsRegistry registry;
  BatchTelemetry telemetry;
  if (!metrics_path.empty() || !metrics_json_path.empty() ||
      !trace_path.empty()) {
    telemetry.registry = &registry;
  }
  if (!trace_path.empty()) {
    telemetry.trace_sample_period = static_cast<uint32_t>(std::strtoul(
        Optional(flags, "trace-sample", "1").c_str(), nullptr, 10));
  }

  const SimulatedRun run =
      SimulateBatch(searcher, queries, k, options, gpu, /*num_threads=*/0,
                    telemetry);

  std::printf("queries: %zu, k=%zu, queue=%zu, config=%s\n", queries.num(),
              k, options.queue_size, options.Name().c_str());
  std::printf("CPU wall: %.3fs (%.0f QPS)\n", run.batch.wall_seconds,
              run.batch.Qps());
  std::printf("simulated %s: %.0f QPS (locate %.1f%% / distance %.1f%% / "
              "maintain %.1f%%)\n",
              gpu.name.c_str(), run.SimQps(), run.gpu.LocatePct(),
              run.gpu.DistancePct(), run.gpu.MaintainPct());

  const auto gt_flag = flags.find("gt");
  if (gt_flag != flags.end()) {
    const Dataset gt = LoadDatasetOrDie(gt_flag->second);
    std::vector<std::vector<idx_t>> truth(gt.num());
    for (size_t q = 0; q < gt.num(); ++q) {
      for (size_t i = 0; i < gt.dim(); ++i) {
        const float v = gt.Row(static_cast<idx_t>(q))[i];
        if (v >= 0.0f) truth[q].push_back(static_cast<idx_t>(v));
      }
    }
    std::printf("recall@%zu: %.4f\n", k,
                MeanRecallAtK(run.batch.Ids(), truth, k));
  } else {
    const auto& first = run.batch.results.empty() ? std::vector<Neighbor>{}
                                                  : run.batch.results[0];
    std::printf("query 0 top-%zu:", k);
    for (const Neighbor& n : first) std::printf(" %u(%.3f)", n.id, n.dist);
    std::printf("\n");
  }

  int status = 0;
  if (!metrics_path.empty()) {
    if (obs::WriteStringToFile(metrics_path,
                               obs::MetricsToPrometheusText(registry))) {
      std::printf("wrote Prometheus metrics to %s\n", metrics_path.c_str());
    } else {
      status = 1;
    }
  }
  if (!metrics_json_path.empty()) {
    if (obs::WriteStringToFile(metrics_json_path,
                               obs::MetricsToJson(registry))) {
      std::printf("wrote JSON metrics to %s\n", metrics_json_path.c_str());
    } else {
      status = 1;
    }
  }
  if (!trace_path.empty()) {
    CostModel model(gpu);
    obs::ChromeTraceContext context;
    context.model = &model;
    context.shape = run.shape;
    context.breakdown = run.gpu;
    context.num_queries = run.batch.num_queries;
    if (obs::WriteStringToFile(
            trace_path, obs::TracesToChromeJson(run.batch.traces, context))) {
      std::printf("wrote %zu sampled traces to %s (%zu dropped)\n",
                  run.batch.traces.size(), trace_path.c_str(),
                  run.batch.traces_dropped);
    } else {
      status = 1;
    }
  }
  return status;
}

int CmdVersion() {
  std::printf("song_cli (SONG reproduction)\n");
  std::printf("cpu simd:      %s\n", SimdTierName(CpuSimdTier()));
  std::printf("compiled tiers:");
  for (const SimdTier tier :
       {SimdTier::kScalar, SimdTier::kAvx2, SimdTier::kAvx512}) {
    if (SimdTierCompiled(tier)) std::printf(" %s", SimdTierName(tier));
  }
  std::printf("\n");
  std::printf("active tier:   %s", SimdTierName(ActiveSimdTier()));
  const char* env = std::getenv("SONG_SIMD");
  if (env != nullptr) std::printf(" (SONG_SIMD=%s)", env);
  std::printf("\n");
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: song_cli <gen|build|stats|gt|search|version> [--flags]\n"
               "see the header comment of tools/song_cli.cc\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const Flags flags = ParseFlags(argc, argv, 2);
  if (cmd == "gen") return CmdGen(flags);
  if (cmd == "build") return CmdBuild(flags);
  if (cmd == "stats") return CmdStats(flags);
  if (cmd == "gt") return CmdGroundTruth(flags);
  if (cmd == "search") return CmdSearch(flags);
  if (cmd == "version") return CmdVersion();
  Usage();
  return 2;
}
