#!/usr/bin/env bash
# Chaos soak for the serving front-end (docs/serving.md): song_server with
# every serve.* fault site armed, concurrent song_loadgen clients (closed
# loop, chaos disconnects, deadlines, open loop), SIGTERM fired mid-run,
# then the two acceptance gates:
#
#   1. outcome conservation — accepted == ok + shed + deadline + error
#      (checked by the server binary at drain AND re-checked here from the
#      DRAINED line),
#   2. the post-drain statusz dump passes schema validation, including the
#      drained-server equality check in validate_telemetry.py.
#
# Runtime scales with SONG_SOAK_SECONDS (default 6 s; the CI serve-soak leg
# runs 60 s under ASan and TSan).
set -euo pipefail
CLI="$1"
SERVER="$2"
LOADGEN="$3"
SOAK_S="${SONG_SOAK_SECONDS:-6}"
TOOLS_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
DIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -KILL "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$DIR"
}
trap cleanup EXIT

"$CLI" gen --preset sift --scale 0.05 --out "$DIR/data.sngd" \
      --queries "$DIR/q.sngd"
"$CLI" build --data "$DIR/data.sngd" --out "$DIR/graph.sngg" --degree 16

# Server: small queue + batch so bursts actually hit the shed path, every
# serve.* fault site armed at low probability, duration-s as a backstop in
# case the SIGTERM below is lost (ctest TIMEOUT would fire otherwise).
"$SERVER" --data "$DIR/data.sngd" --graph "$DIR/graph.sngg" \
      --port 0 --port-file "$DIR/port" \
      --workers 2 --queue-capacity 64 --max-batch 8 --max-wait-us 500 \
      --fault-spec "serve.dispatch=0.03,serve.write=0.02,serve.accept=0.05" \
      --fault-seed 20260808 \
      --statusz-on-exit "$DIR/statusz.json" \
      --duration-s $(( ${SOAK_S%.*} + 120 )) \
      > "$DIR/server.log" 2> "$DIR/server.err" &
SERVER_PID=$!

for _ in $(seq 1 100); do
  [ -s "$DIR/port" ] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: server died during startup" >&2
    cat "$DIR/server.err" >&2
    exit 1
  fi
  sleep 0.1
done
PORT="$(cat "$DIR/port")"

# A short well-behaved run first: proves the happy path end to end and
# fetches a live (mid-run, non-draining) statusz over the wire.
"$LOADGEN" --port "$PORT" --queries "$DIR/q.sngd" --connections 2 \
      --requests 50 --k 10 --queue 96 \
      --statusz-out "$DIR/statusz_live.json" > "$DIR/warm.log"
grep -q "LOADGEN sent=" "$DIR/warm.log"
python3 "$TOOLS_DIR/validate_telemetry.py" --statusz "$DIR/statusz_live.json"
python3 - "$DIR/statusz_live.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
serve = doc["serve"]
assert serve is not None, "wire statusz missing serve section"
assert serve["draining"] is False, serve
assert serve["accepted"] > 0, serve
PY

# The chaos fleet: request counts are effectively unbounded — the clients
# run until the drain severs their connections and reconnects fail.
"$LOADGEN" --port "$PORT" --dim 128 --connections 3 --requests 1000000 \
      --chaos-close-prob 0.02 --seed 1 > "$DIR/lg_chaos.log" &
LG1=$!
"$LOADGEN" --port "$PORT" --queries "$DIR/q.sngd" --connections 2 \
      --requests 1000000 --deadline-us 2000 --seed 2 > "$DIR/lg_dl.log" &
LG2=$!
"$LOADGEN" --port "$PORT" --dim 128 --connections 2 --requests 1000000 \
      --mode open --qps 2000 --seed 3 > "$DIR/lg_open.log" &
LG3=$!

python3 - "$SOAK_S" <<'PY'
import sys, time
time.sleep(float(sys.argv[1]))
PY

# Graceful shutdown mid-traffic: every request accepted before (and during)
# the drain must still settle with exactly one outcome.
kill -TERM "$SERVER_PID"
SERVER_RC=0
wait "$SERVER_PID" || SERVER_RC=$?
SERVER_PID=""
for pid in "$LG1" "$LG2" "$LG3"; do
  RC=0
  wait "$pid" || RC=$?
  if [ "$RC" -ne 0 ]; then
    echo "FAIL: loadgen exited $RC (never connected?)" >&2
    exit 1
  fi
done
cat "$DIR/lg_chaos.log" "$DIR/lg_dl.log" "$DIR/lg_open.log"
cat "$DIR/server.log"
if [ "$SERVER_RC" -ne 0 ]; then
  echo "FAIL: server exited $SERVER_RC" >&2
  cat "$DIR/server.err" >&2
  exit 1
fi

# Conservation, re-checked from the DRAINED line (the binary already
# enforces it; a second independent parse keeps the gate honest).
DRAINED=$(grep "^DRAINED " "$DIR/server.log")
python3 - "$DRAINED" <<'PY'
import sys
fields = dict(kv.split("=") for kv in sys.argv[1].split()[1:])
accepted = int(fields["accepted"])
settled = sum(int(fields[k]) for k in ("ok", "shed", "deadline", "error"))
assert accepted == settled, f"conservation violated: {fields}"
assert accepted > 0, "soak was vacuous: nothing accepted"
PY

# Post-drain statusz: schema-valid, serve section drained and conserved
# (validate_telemetry.py enforces equality for a drained server).
python3 "$TOOLS_DIR/validate_telemetry.py" --statusz "$DIR/statusz.json"
python3 - "$DIR/statusz.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
serve = doc["serve"]
assert serve["draining"] is True, serve
assert serve["connections"] == 0, serve
assert doc["fault"]["armed"] is True, doc["fault"]
PY

echo "SERVE SOAK OK"
