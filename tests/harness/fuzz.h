// Copyright 2026 The SONG-Repro Authors.
//
// Deterministic seed-driven fuzz runners for the differential harness. Every
// runner derives all randomness from an explicit 64-bit seed (xoshiro256**,
// never std::random_device), returns a DifferentialReport instead of
// asserting, and embeds the offending seed + round in the first divergence
// message — so (a) any failure reproduces exactly from the logged seed and
// (b) the planted-mutation self-test can assert that a runner *does* detect
// a bug without tripping gtest itself.
//
// The base seed comes from the SONG_FUZZ_SEED environment variable when set
// (decimal or 0x-hex), else a fixed default: runs are deterministic either
// way, and a failure log always tells you how to replay it.

#ifndef SONG_TESTS_HARNESS_FUZZ_H_
#define SONG_TESTS_HARNESS_FUZZ_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "song/visited_table.h"

namespace song::harness {

/// Base seed for this process: SONG_FUZZ_SEED env override or the default.
/// Cached after the first call.
uint64_t BaseSeed();

/// Human-readable one-liner naming the active base seed and how to override
/// it; printed once by the harness gtest environment.
std::string SeedBanner();

/// Outcome of a differential run. `failures` counts divergences from the
/// oracle; `first_divergence` carries the seed, round and op that diverged.
struct DifferentialReport {
  size_t checks = 0;
  size_t failures = 0;
  std::string first_divergence;

  void Fail(const std::string& message) {
    ++failures;
    if (first_divergence.empty()) first_divergence = message;
  }
};

// --- Structure-vs-oracle fuzzers (one randomized op sequence per round). ---

/// SymmetricMinMaxHeap vs multiset oracle: Push/PushBounded/PopMin/PopMax/
/// Clear/Reset sequences; checks Min/Max/size/returned values after every op
/// plus CheckInvariants().
DifferentialReport FuzzSmmhVsOracle(uint64_t seed, size_t rounds);

/// BoundedMaxHeap vs multiset oracle, including TakeSorted drain order.
DifferentialReport FuzzTopKVsOracle(uint64_t seed, size_t rounds);

/// VisitedTable with an exact structure (kHashTable or kEpochArray) vs the
/// capacity-modelled set oracle: Insert/Test/Erase/Clear sequences, mixing
/// ample and deliberately tight capacities to exercise saturation.
DifferentialReport FuzzExactVisitedVsOracle(VisitedStructure structure,
                                            uint64_t seed, size_t rounds);

/// OpenAddressingSet edge cases: insert-at-capacity, tombstone-reusing probe
/// chains (erase/reinsert churn at high load), full-table scans, Clear reuse.
DifferentialReport FuzzOpenAddressingSaturation(uint64_t seed, size_t rounds);

/// CuckooFilter one-sided-error contract: no false negatives while every
/// insert has succeeded and only inserted keys are erased; eviction loops
/// terminate under 10x-capacity overload; false-positive rate stays under
/// `max_fp_rate` at the filter's design load.
DifferentialReport FuzzCuckooVsOracle(uint64_t seed, size_t rounds,
                                      double max_fp_rate = 0.01);

/// BloomFilter: no false negatives ever; false-positive rate within 3x the
/// analytic bound at design load; saturation drives Contains toward
/// always-true (never toward false negatives).
DifferentialReport FuzzBloomVsOracle(uint64_t seed, size_t rounds);

// --- Search-vs-reference differential. ---

/// Runs SongSearchCore on randomized datasets/graphs/options (random dim,
/// degree, n, k, queue_size, metric, selected_insertion, visited_deletion,
/// multi_step, ample and auto hash capacities) against the oracle-backed
/// reference search. For exact structures the visit order, iteration count
/// and final neighbors must match element-for-element.
DifferentialReport FuzzSearchDifferential(VisitedStructure structure,
                                          uint64_t seed, size_t rounds);

/// Same randomized universe for the probabilistic structures (Bloom/Cuckoo):
/// asserts the properties that survive false positives — sorted unique
/// results with genuinely recomputed distances, bounded size, termination —
/// and that an exact-visited run on the identical instance never returns a
/// worse neighbor set than ground truth allows the probabilistic one
/// (per-instance distance-domination check).
DifferentialReport FuzzProbabilisticSearchSanity(VisitedStructure structure,
                                                 uint64_t seed, size_t rounds);

// --- Online-mutation differential. ---

/// One round = one fresh MutableIndex (randomly empty-start or adopting a
/// frozen connected graph) driven through a seed-derived interleaving of
/// insert / delete / search ops, mirrored against an incrementally
/// maintained OracleDynamicIndex. Checks per op:
///  - ids, point/live counts and version numbers track the oracle exactly;
///  - every inserted vertex is immediately reachable: an ample-ef exact
///    search must return precisely the oracle's live set (this is the probe
///    that catches the planted drop-reverse-links mutation);
///  - searches with the round's randomized options return sorted, unique,
///    live ids with genuine distances and payload rows byte-equal to the
///    oracle's vectors; for exact structures (`structure` = hash table or
///    epoch array) the result must equal the oracle-backed reference search
///    element-for-element after the same tombstone filter + truncation;
///  - a snapshot pinned mid-round returns bit-identical results when
///    re-queried at round end, after every later mutation (isolation);
///  - error paths (null/NaN insert, double delete, out-of-range delete)
///    return the documented Status codes;
///  - after the round's pins are dropped, ReclaimRetired sweeps every
///    retired version.
DifferentialReport FuzzMutationDifferential(VisitedStructure structure,
                                            uint64_t seed, size_t rounds);

}  // namespace song::harness

#endif  // SONG_TESTS_HARNESS_FUZZ_H_
