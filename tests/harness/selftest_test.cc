// Harness self-test: proves the differential harness actually has teeth by
// planting two known bugs behind the test-only hooks in
// src/song/debug_hooks.h and asserting the oracle comparison catches both —
// then asserting the very same runners pass clean once the fault is lifted.
// A fuzz harness that cannot detect a planted off-by-one is worse than none:
// it would launder broken structures as "verified".

#include <cstddef>
#include <vector>

#include "core/random.h"
#include "gtest/gtest.h"
#include "harness/fuzz.h"
#include "harness/oracles.h"
#include "song/debug_hooks.h"

namespace song::harness {
namespace {

// Smaller round counts than the real suites: detection must be quick, and
// every round after the first detection is wasted work.
constexpr size_t kRounds = 60;

TEST(HarnessSelfTest, DetectsPlantedSmmhSiftOffByOne) {
  {
    hooks::ScopedFault fault(&hooks::smmh_sift_off_by_one);
    const DifferentialReport broken = FuzzSmmhVsOracle(BaseSeed(), kRounds);
    EXPECT_GT(broken.failures, 0u)
        << "harness failed to detect the planted SMMH sift off-by-one";
  }
  const DifferentialReport clean = FuzzSmmhVsOracle(BaseSeed(), kRounds);
  EXPECT_EQ(clean.failures, 0u) << clean.first_divergence;
}

TEST(HarnessSelfTest, SmmhFaultAlsoSurfacesInSearchDifferential) {
  // The corrupted queue mis-orders pops, so the full pipeline visits
  // different vertices than the reference — the end-to-end harness must see
  // it too, not just the unit-level fuzz.
  {
    hooks::ScopedFault fault(&hooks::smmh_sift_off_by_one);
    const DifferentialReport broken =
        FuzzSearchDifferential(VisitedStructure::kHashTable, BaseSeed(), 120);
    EXPECT_GT(broken.failures, 0u)
        << "search differential failed to detect the SMMH fault";
  }
  const DifferentialReport clean =
      FuzzSearchDifferential(VisitedStructure::kHashTable, BaseSeed(), 120);
  EXPECT_EQ(clean.failures, 0u) << clean.first_divergence;
}

TEST(HarnessSelfTest, OracleDynamicIndexCatchesPlantedMutationDrops) {
  // The oracle is the reference the whole mutation differential leans on,
  // so it gets its own sensitivity proof: replay one mutation script into
  // the oracle and into two deliberately unfaithful twins — one drops a
  // delete, one drops an insert — and assert the oracle's view diverges
  // from both, then that a faithful replay matches it exactly.
  constexpr size_t kDim = 4;
  constexpr size_t kPoints = 32;
  RandomEngine rng(BaseSeed());
  std::vector<std::vector<float>> points;
  for (size_t i = 0; i < kPoints; ++i) {
    std::vector<float> p(kDim);
    for (float& x : p) x = static_cast<float>(rng.NextGaussian());
    points.push_back(std::move(p));
  }
  const std::vector<idx_t> deletions = {3, 7, 11};

  OracleDynamicIndex ref(Metric::kL2, kDim);
  OracleDynamicIndex faithful(Metric::kL2, kDim);
  OracleDynamicIndex dropped_delete(Metric::kL2, kDim);
  OracleDynamicIndex dropped_insert(Metric::kL2, kDim);
  for (size_t i = 0; i < kPoints; ++i) {
    const idx_t id = ref.Insert(points[i].data());
    EXPECT_EQ(faithful.Insert(points[i].data()), id);
    EXPECT_EQ(dropped_delete.Insert(points[i].data()), id);
    if (i != 10) dropped_insert.Insert(points[i].data());  // planted drop
  }
  for (const idx_t id : deletions) {
    EXPECT_TRUE(ref.Delete(id));
    EXPECT_TRUE(faithful.Delete(id));
    if (id != 7) EXPECT_TRUE(dropped_delete.Delete(id));  // planted drop
    EXPECT_TRUE(dropped_insert.Delete(id));
  }

  // The dropped delete shows up as a live tombstone: id 7 still answers
  // queries in the broken twin.
  EXPECT_FALSE(ref.IsLive(7));
  EXPECT_TRUE(dropped_delete.IsLive(7));
  EXPECT_NE(ref.live_count(), dropped_delete.live_count());
  const std::vector<Neighbor> near7 = dropped_delete.TopK(points[7].data(), 1);
  ASSERT_EQ(near7.size(), 1u);
  EXPECT_EQ(near7[0].id, 7u);
  EXPECT_NE(ref.TopK(points[7].data(), 1)[0].id, 7u);

  // The dropped insert shows up as id skew: every id after the gap points
  // at the wrong vector, so a full-set scan cannot agree with the oracle.
  EXPECT_NE(ref.num_points(), dropped_insert.num_points());
  const std::vector<Neighbor> near11 =
      ref.TopK(points[11].data(), 1);  // id 11 was deleted in both...
  const std::vector<Neighbor> skewed =
      dropped_insert.TopK(points[11].data(), 1);
  // ...but the skewed twin stores points[11] under id 10, which it never
  // tombstoned — exact-match distance 0 where the oracle reports > 0.
  ASSERT_EQ(skewed.size(), 1u);
  EXPECT_EQ(skewed[0].dist, 0.0f);
  EXPECT_GT(near11[0].dist, 0.0f);

  // A faithful replay is indistinguishable from the oracle.
  EXPECT_EQ(ref.num_points(), faithful.num_points());
  EXPECT_EQ(ref.LiveIds(), faithful.LiveIds());
  for (size_t q = 0; q < 8; ++q) {
    std::vector<float> query(kDim);
    for (float& x : query) x = static_cast<float>(rng.NextGaussian());
    const std::vector<Neighbor> a = ref.TopK(query.data(), 5);
    const std::vector<Neighbor> b = faithful.TopK(query.data(), 5);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]);
  }
}

TEST(HarnessSelfTest, DetectsPlantedDroppedReverseLinks) {
  // The planted mutation makes MutableIndex::Insert link the new vertex
  // outward but skip both the reverse edges and the connectivity repair, so
  // freshly inserted points become unreachable islands. The mutation
  // differential's post-insert ample-ef reachability probe must flag the
  // missing ids. Epoch-array rounds make the probe exact and unbounded.
  {
    hooks::ScopedFault fault(&hooks::mutation_drop_reverse_links);
    const DifferentialReport broken = FuzzMutationDifferential(
        VisitedStructure::kEpochArray, BaseSeed(), kRounds);
    EXPECT_GT(broken.failures, 0u)
        << "mutation differential failed to detect dropped reverse links";
  }
  const DifferentialReport clean = FuzzMutationDifferential(
      VisitedStructure::kEpochArray, BaseSeed(), kRounds);
  EXPECT_EQ(clean.failures, 0u) << clean.first_divergence;
}

TEST(HarnessSelfTest, DetectsPlantedHashSetDroppedGrowth) {
  {
    hooks::ScopedFault fault(&hooks::hash_set_skip_growth);
    const DifferentialReport broken = FuzzExactVisitedVsOracle(
        VisitedStructure::kHashTable, BaseSeed(), kRounds);
    EXPECT_GT(broken.failures, 0u)
        << "harness failed to detect the planted dropped hash-set resize";
  }
  const DifferentialReport clean = FuzzExactVisitedVsOracle(
      VisitedStructure::kHashTable, BaseSeed(), kRounds);
  EXPECT_EQ(clean.failures, 0u) << clean.first_divergence;
}

TEST(HarnessSelfTest, DroppedGrowthAlsoSurfacesInSaturationFuzz) {
  {
    hooks::ScopedFault fault(&hooks::hash_set_skip_growth);
    const DifferentialReport broken =
        FuzzOpenAddressingSaturation(BaseSeed(), kRounds);
    EXPECT_GT(broken.failures, 0u)
        << "saturation fuzz failed to detect the dropped resize";
  }
  const DifferentialReport clean =
      FuzzOpenAddressingSaturation(BaseSeed(), kRounds);
  EXPECT_EQ(clean.failures, 0u) << clean.first_divergence;
}

}  // namespace
}  // namespace song::harness
