// Harness self-test: proves the differential harness actually has teeth by
// planting two known bugs behind the test-only hooks in
// src/song/debug_hooks.h and asserting the oracle comparison catches both —
// then asserting the very same runners pass clean once the fault is lifted.
// A fuzz harness that cannot detect a planted off-by-one is worse than none:
// it would launder broken structures as "verified".

#include "gtest/gtest.h"
#include "harness/fuzz.h"
#include "song/debug_hooks.h"

namespace song::harness {
namespace {

// Smaller round counts than the real suites: detection must be quick, and
// every round after the first detection is wasted work.
constexpr size_t kRounds = 60;

TEST(HarnessSelfTest, DetectsPlantedSmmhSiftOffByOne) {
  {
    hooks::ScopedFault fault(&hooks::smmh_sift_off_by_one);
    const DifferentialReport broken = FuzzSmmhVsOracle(BaseSeed(), kRounds);
    EXPECT_GT(broken.failures, 0u)
        << "harness failed to detect the planted SMMH sift off-by-one";
  }
  const DifferentialReport clean = FuzzSmmhVsOracle(BaseSeed(), kRounds);
  EXPECT_EQ(clean.failures, 0u) << clean.first_divergence;
}

TEST(HarnessSelfTest, SmmhFaultAlsoSurfacesInSearchDifferential) {
  // The corrupted queue mis-orders pops, so the full pipeline visits
  // different vertices than the reference — the end-to-end harness must see
  // it too, not just the unit-level fuzz.
  {
    hooks::ScopedFault fault(&hooks::smmh_sift_off_by_one);
    const DifferentialReport broken =
        FuzzSearchDifferential(VisitedStructure::kHashTable, BaseSeed(), 120);
    EXPECT_GT(broken.failures, 0u)
        << "search differential failed to detect the SMMH fault";
  }
  const DifferentialReport clean =
      FuzzSearchDifferential(VisitedStructure::kHashTable, BaseSeed(), 120);
  EXPECT_EQ(clean.failures, 0u) << clean.first_divergence;
}

TEST(HarnessSelfTest, DetectsPlantedHashSetDroppedGrowth) {
  {
    hooks::ScopedFault fault(&hooks::hash_set_skip_growth);
    const DifferentialReport broken = FuzzExactVisitedVsOracle(
        VisitedStructure::kHashTable, BaseSeed(), kRounds);
    EXPECT_GT(broken.failures, 0u)
        << "harness failed to detect the planted dropped hash-set resize";
  }
  const DifferentialReport clean = FuzzExactVisitedVsOracle(
      VisitedStructure::kHashTable, BaseSeed(), kRounds);
  EXPECT_EQ(clean.failures, 0u) << clean.first_divergence;
}

TEST(HarnessSelfTest, DroppedGrowthAlsoSurfacesInSaturationFuzz) {
  {
    hooks::ScopedFault fault(&hooks::hash_set_skip_growth);
    const DifferentialReport broken =
        FuzzOpenAddressingSaturation(BaseSeed(), kRounds);
    EXPECT_GT(broken.failures, 0u)
        << "saturation fuzz failed to detect the dropped resize";
  }
  const DifferentialReport clean =
      FuzzOpenAddressingSaturation(BaseSeed(), kRounds);
  EXPECT_EQ(clean.failures, 0u) << clean.first_divergence;
}

}  // namespace
}  // namespace song::harness
