#include "harness/fuzz.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/random.h"
#include "core/status.h"
#include "graph/fixed_degree_graph.h"
#include "harness/oracles.h"
#include "harness/reference_search.h"
#include "song/bloom_filter.h"
#include "song/bounded_heap.h"
#include "song/cuckoo_filter.h"
#include "song/index_snapshot.h"
#include "song/mutable_index.h"
#include "song/open_addressing_set.h"
#include "song/search_core.h"

namespace song::harness {
namespace {

constexpr uint64_t kDefaultSeed = 0x534f4e472026ULL;  // "SONG" 2026

/// Stateless per-(stream, round) seed derivation so every round replays
/// independently of how many rounds preceded it.
uint64_t DeriveSeed(uint64_t seed, uint64_t stream, uint64_t round) {
  uint64_t s = seed ^ (stream * 0x9e3779b97f4a7c15ULL) ^
               ((round + 1) * 0xda942042e4dd58b5ULL);
  return SplitMix64(s);
}

std::string Ctx(const char* what, uint64_t seed, size_t round) {
  std::ostringstream os;
  os << what << " diverged (base_seed=0x" << std::hex << BaseSeed()
     << ", runner_seed=0x" << seed << std::dec << ", round=" << round
     << "; replay with SONG_FUZZ_SEED=0x" << std::hex << BaseSeed()
     << std::dec << "): ";
  return os.str();
}

std::string DescribeNeighbor(const Neighbor& n) {
  std::ostringstream os;
  os << "(" << n.dist << ", id=" << n.id << ")";
  return os.str();
}

}  // namespace

uint64_t BaseSeed() {
  static const uint64_t seed = [] {
    const char* env = std::getenv("SONG_FUZZ_SEED");
    if (env != nullptr && env[0] != '\0') {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(env, &end, 0);
      if (end != nullptr && *end == '\0') return static_cast<uint64_t>(v);
      std::fprintf(stderr,
                   "[harness] ignoring unparsable SONG_FUZZ_SEED='%s'\n", env);
    }
    return kDefaultSeed;
  }();
  return seed;
}

std::string SeedBanner() {
  std::ostringstream os;
  os << "[harness] fuzz base seed = 0x" << std::hex << BaseSeed() << std::dec
     << " (override with SONG_FUZZ_SEED=<u64>; failures log the exact seed "
        "and round to replay)";
  return os.str();
}

// ---------------------------------------------------------------------------
// Priority-queue fuzzers.
// ---------------------------------------------------------------------------

DifferentialReport FuzzSmmhVsOracle(uint64_t seed, size_t rounds) {
  DifferentialReport report;
  SymmetricMinMaxHeap heap;
  for (size_t round = 0; round < rounds; ++round) {
    const uint64_t rseed = DeriveSeed(seed, 0x51, round);
    RandomEngine rng(rseed);
    size_t capacity = 1 + rng.NextUint(64);
    heap.Reset(capacity);
    OracleBoundedQueue oracle(capacity);
    const std::string ctx = Ctx("SMMH", seed, round);
    bool round_ok = true;

    auto check_state = [&](const char* op) {
      ++report.checks;
      if (heap.size() != oracle.size()) {
        report.Fail(ctx + op + ": size " + std::to_string(heap.size()) +
                    " vs oracle " + std::to_string(oracle.size()));
        return false;
      }
      if (!heap.CheckInvariants()) {
        report.Fail(ctx + op + ": heap invariant violated at size " +
                    std::to_string(heap.size()));
        return false;
      }
      if (!oracle.empty()) {
        if (!(heap.Min() == oracle.Min())) {
          report.Fail(ctx + op + ": Min " + DescribeNeighbor(heap.Min()) +
                      " vs oracle " + DescribeNeighbor(oracle.Min()));
          return false;
        }
        if (!(heap.Max() == oracle.Max())) {
          report.Fail(ctx + op + ": Max " + DescribeNeighbor(heap.Max()) +
                      " vs oracle " + DescribeNeighbor(oracle.Max()));
          return false;
        }
      }
      return true;
    };

    const size_t ops = 40 + rng.NextUint(200);
    for (size_t op = 0; op < ops && round_ok; ++op) {
      const Neighbor x(static_cast<float>(rng.NextUint(32)),
                       static_cast<idx_t>(rng.NextUint(64)));
      switch (rng.NextUint(10)) {
        case 0:
        case 1:
        case 2:
        case 3: {
          Neighbor evicted_h, evicted_o;
          const bool was_full = oracle.full();
          const bool rh = heap.PushBounded(x, &evicted_h);
          const bool ro = oracle.PushBounded(x, &evicted_o);
          ++report.checks;
          if (rh != ro) {
            report.Fail(ctx + "PushBounded accept mismatch for " +
                        DescribeNeighbor(x));
            round_ok = false;
            break;
          }
          if (rh && was_full && !(evicted_h == evicted_o)) {
            report.Fail(ctx + "PushBounded evicted " +
                        DescribeNeighbor(evicted_h) + " vs oracle " +
                        DescribeNeighbor(evicted_o));
            round_ok = false;
            break;
          }
          round_ok = check_state("PushBounded");
          break;
        }
        case 4:
          if (!heap.full()) {
            heap.Push(x);
            oracle.Push(x);
            round_ok = check_state("Push");
          }
          break;
        case 5:
        case 6:
          if (!oracle.empty()) {
            const Neighbor ph = heap.PopMin();
            const Neighbor po = oracle.PopMin();
            ++report.checks;
            if (!(ph == po)) {
              report.Fail(ctx + "PopMin " + DescribeNeighbor(ph) +
                          " vs oracle " + DescribeNeighbor(po));
              round_ok = false;
              break;
            }
            round_ok = check_state("PopMin");
          }
          break;
        case 7:
          if (!oracle.empty()) {
            const Neighbor ph = heap.PopMax();
            const Neighbor po = oracle.PopMax();
            ++report.checks;
            if (!(ph == po)) {
              report.Fail(ctx + "PopMax " + DescribeNeighbor(ph) +
                          " vs oracle " + DescribeNeighbor(po));
              round_ok = false;
              break;
            }
            round_ok = check_state("PopMax");
          }
          break;
        case 8:
          if (rng.NextUint(8) == 0) {
            heap.Clear();
            oracle.Clear();
            round_ok = check_state("Clear");
          }
          break;
        case 9:
          if (rng.NextUint(16) == 0) {
            capacity = 1 + rng.NextUint(64);
            heap.Reset(capacity);
            oracle.Reset(capacity);
            round_ok = check_state("Reset");
          }
          break;
      }
    }
    // Full drain must come out ascending and element-for-element equal.
    while (round_ok && !oracle.empty()) {
      const Neighbor ph = heap.PopMin();
      const Neighbor po = oracle.PopMin();
      ++report.checks;
      if (!(ph == po)) {
        report.Fail(ctx + "drain PopMin " + DescribeNeighbor(ph) +
                    " vs oracle " + DescribeNeighbor(po));
        round_ok = false;
      }
    }
  }
  return report;
}

DifferentialReport FuzzTopKVsOracle(uint64_t seed, size_t rounds) {
  DifferentialReport report;
  BoundedMaxHeap heap;
  for (size_t round = 0; round < rounds; ++round) {
    const uint64_t rseed = DeriveSeed(seed, 0x52, round);
    RandomEngine rng(rseed);
    const size_t capacity = 1 + rng.NextUint(48);
    heap.Reset(capacity);
    OracleBoundedQueue oracle(capacity);
    const std::string ctx = Ctx("BoundedMaxHeap", seed, round);
    bool round_ok = true;

    const size_t ops = 30 + rng.NextUint(180);
    for (size_t op = 0; op < ops && round_ok; ++op) {
      const Neighbor x(static_cast<float>(rng.NextUint(24)),
                       static_cast<idx_t>(rng.NextUint(64)));
      Neighbor evicted_h, evicted_o;
      const bool was_full = oracle.full();
      const bool rh = heap.PushBounded(x, &evicted_h);
      const bool ro = oracle.PushBounded(x, &evicted_o);
      ++report.checks;
      if (rh != ro || (rh && was_full && !(evicted_h == evicted_o))) {
        report.Fail(ctx + "PushBounded mismatch for " + DescribeNeighbor(x));
        round_ok = false;
        break;
      }
      if (heap.size() != oracle.size() ||
          (!oracle.empty() && !(heap.Max() == oracle.Max()))) {
        report.Fail(ctx + "size/Max mismatch after " + DescribeNeighbor(x));
        round_ok = false;
        break;
      }
    }
    if (!round_ok) continue;
    const std::vector<Neighbor> got = heap.TakeSorted();
    const std::vector<Neighbor> want = oracle.Sorted();
    ++report.checks;
    if (got.size() != want.size() ||
        !std::equal(got.begin(), got.end(), want.begin(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a == b;
                    })) {
      report.Fail(ctx + "TakeSorted mismatch (" + std::to_string(got.size()) +
                  " vs " + std::to_string(want.size()) + " elements)");
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Visited-set fuzzers.
// ---------------------------------------------------------------------------

DifferentialReport FuzzExactVisitedVsOracle(VisitedStructure structure,
                                            uint64_t seed, size_t rounds) {
  DifferentialReport report;
  VisitedTable table;
  for (size_t round = 0; round < rounds; ++round) {
    const uint64_t rseed = DeriveSeed(seed, 0x53, round);
    RandomEngine rng(rseed);
    // Mix deliberately tight capacities (saturation regime) with ample ones.
    const bool tight = rng.NextUint(3) == 0;
    const size_t capacity =
        tight ? 8 + rng.NextUint(150) : 256 + rng.NextUint(512);
    const size_t key_range = std::max<size_t>(4, capacity * 3);
    table.Reset(structure, structure == VisitedStructure::kEpochArray
                               ? key_range
                               : capacity);
    // The epoch array is unbounded over [0, key_range); the hash table
    // saturates exactly at its element capacity.
    OracleVisitedSet oracle(
        structure == VisitedStructure::kEpochArray ? 0 : capacity);
    const std::string ctx = Ctx(VisitedStructureName(structure), seed, round);
    bool round_ok = true;

    const size_t ops = 3 * capacity + 50;
    for (size_t op = 0; op < ops && round_ok; ++op) {
      const idx_t key = static_cast<idx_t>(rng.NextUint(key_range));
      switch (rng.NextUint(8)) {
        case 0:
        case 1:
        case 2:
        case 3: {
          const bool rt = table.Insert(key);
          const bool ro = oracle.Insert(key);
          ++report.checks;
          if (rt != ro) {
            report.Fail(ctx + "Insert(" + std::to_string(key) + ") -> " +
                        std::to_string(rt) + " vs oracle " +
                        std::to_string(ro) + " at size " +
                        std::to_string(oracle.size()) + "/cap " +
                        std::to_string(capacity));
            round_ok = false;
          }
          break;
        }
        case 4:
        case 5: {
          const bool rt = table.Test(key);
          const bool ro = oracle.Test(key);
          ++report.checks;
          if (rt != ro) {
            report.Fail(ctx + "Test(" + std::to_string(key) + ") -> " +
                        std::to_string(rt) + " vs oracle " +
                        std::to_string(ro));
            round_ok = false;
          }
          break;
        }
        case 6: {
          table.Erase(key);
          oracle.Erase(key);
          ++report.checks;
          if (table.Test(key)) {
            report.Fail(ctx + "Test(" + std::to_string(key) +
                        ") true right after Erase");
            round_ok = false;
          }
          break;
        }
        case 7:
          if (rng.NextUint(20) == 0) {
            table.Clear();
            oracle.Clear();
          }
          break;
      }
      if (round_ok && table.size() != oracle.size()) {
        report.Fail(ctx + "size " + std::to_string(table.size()) +
                    " vs oracle " + std::to_string(oracle.size()));
        round_ok = false;
      }
    }
  }
  return report;
}

DifferentialReport FuzzOpenAddressingSaturation(uint64_t seed, size_t rounds) {
  DifferentialReport report;
  for (size_t round = 0; round < rounds; ++round) {
    const uint64_t rseed = DeriveSeed(seed, 0x54, round);
    RandomEngine rng(rseed);
    const size_t capacity = 8 + rng.NextUint(200);
    OpenAddressingSet set(capacity);
    OracleVisitedSet oracle(capacity);
    const std::string ctx = Ctx("OpenAddressingSet", seed, round);
    bool round_ok = true;

    // Phase 1: fill to exactly capacity with distinct keys; every insert
    // must succeed, the next distinct one must be rejected.
    for (idx_t key = 0; static_cast<size_t>(key) < capacity && round_ok;
         ++key) {
      ++report.checks;
      if (!set.Insert(key) || !oracle.Insert(key)) {
        report.Fail(ctx + "insert below capacity rejected at key " +
                    std::to_string(key));
        round_ok = false;
      }
    }
    if (round_ok) {
      ++report.checks;
      if (set.Insert(static_cast<idx_t>(capacity))) {
        report.Fail(ctx + "insert at capacity accepted");
        round_ok = false;
      }
      ++report.checks;
      if (!set.full() || set.size() != capacity) {
        report.Fail(ctx + "full()/size() wrong at capacity");
        round_ok = false;
      }
      // Probing for an absent key in a dense table must terminate false.
      ++report.checks;
      if (set.Contains(static_cast<idx_t>(capacity + 1))) {
        report.Fail(ctx + "phantom key reported present at capacity");
        round_ok = false;
      }
    }

    // Phase 2: erase/insert churn at high load — tombstone chains must keep
    // probes correct (no lost keys, no phantom keys, size in sync).
    const size_t key_range = capacity * 2;
    const size_t ops = 6 * capacity;
    const size_t slots_before = set.slot_count();
    for (size_t op = 0; op < ops && round_ok; ++op) {
      const idx_t key = static_cast<idx_t>(rng.NextUint(key_range));
      switch (rng.NextUint(4)) {
        case 0:
        case 1: {
          const bool rs = set.Insert(key);
          const bool ro = oracle.Insert(key);
          ++report.checks;
          if (rs != ro) {
            report.Fail(ctx + "churn Insert(" + std::to_string(key) +
                        ") -> " + std::to_string(rs) + " vs oracle " +
                        std::to_string(ro));
            round_ok = false;
          }
          break;
        }
        case 2: {
          const bool rs = set.Erase(key);
          const bool ro = oracle.Erase(key);
          ++report.checks;
          if (rs != ro) {
            report.Fail(ctx + "churn Erase(" + std::to_string(key) + ") -> " +
                        std::to_string(rs) + " vs oracle " +
                        std::to_string(ro));
            round_ok = false;
          }
          break;
        }
        case 3: {
          const bool rs = set.Contains(key);
          const bool ro = oracle.Test(key);
          ++report.checks;
          if (rs != ro) {
            report.Fail(ctx + "churn Contains(" + std::to_string(key) +
                        ") -> " + std::to_string(rs) + " vs oracle " +
                        std::to_string(ro));
            round_ok = false;
          }
          break;
        }
      }
      if (round_ok && set.size() != oracle.size()) {
        report.Fail(ctx + "churn size drift " + std::to_string(set.size()) +
                    " vs oracle " + std::to_string(oracle.size()));
        round_ok = false;
      }
    }
    ++report.checks;
    if (round_ok && set.slot_count() != slots_before) {
      report.Fail(ctx + "slot array reallocated during churn");
      round_ok = false;
    }

    // Phase 3: Clear must reuse the allocation and fully empty the table.
    if (round_ok) {
      set.Clear();
      ++report.checks;
      if (set.size() != 0 || set.slot_count() != slots_before ||
          set.Contains(0)) {
        report.Fail(ctx + "Clear left residue");
        round_ok = false;
      }
      ++report.checks;
      if (round_ok && !set.Insert(7)) {
        report.Fail(ctx + "insert after Clear rejected");
      }
    }
  }
  return report;
}

DifferentialReport FuzzCuckooVsOracle(uint64_t seed, size_t rounds,
                                      double max_fp_rate) {
  DifferentialReport report;
  for (size_t round = 0; round < rounds; ++round) {
    const uint64_t rseed = DeriveSeed(seed, 0x55, round);
    RandomEngine rng(rseed);
    const size_t capacity = 32 + rng.NextUint(256);
    CuckooFilter filter(capacity);
    const std::string ctx = Ctx("CuckooFilter", seed, round);
    bool round_ok = true;

    // Randomized insert/erase churn. While every insert has succeeded and
    // only inserted keys are erased, the filter must have no false
    // negatives (the visited-set contract the search relies on).
    std::multiset<idx_t> live;
    bool saturated = false;
    const size_t key_range = capacity * 4;
    const size_t ops = 4 * capacity;
    for (size_t op = 0; op < ops && round_ok; ++op) {
      if (rng.NextUint(3) != 0 || live.empty()) {
        const idx_t key = static_cast<idx_t>(rng.NextUint(key_range));
        if (filter.Insert(key)) {
          live.insert(key);
        } else {
          saturated = true;  // one victim fingerprint may now be dropped
        }
      } else {
        auto it = live.begin();
        std::advance(it, rng.NextUint(live.size()));
        const idx_t key = *it;
        live.erase(it);
        ++report.checks;
        if (!saturated && !filter.Erase(key)) {
          report.Fail(ctx + "Erase(" + std::to_string(key) +
                      ") of an inserted key found nothing");
          round_ok = false;
        }
      }
      if (!saturated && rng.NextUint(4) == 0 && !live.empty()) {
        auto it = live.begin();
        std::advance(it, rng.NextUint(live.size()));
        ++report.checks;
        if (!filter.Contains(*it)) {
          report.Fail(ctx + "false negative for live key " +
                      std::to_string(*it));
          round_ok = false;
        }
      }
    }
    if (!round_ok) continue;

    // Eviction-loop termination: inserting 10x capacity distinct keys must
    // return (kMaxKicks bound) and must report saturation at some point.
    filter.Clear();
    size_t failures = 0;
    for (idx_t key = 0; static_cast<size_t>(key) < 10 * capacity; ++key) {
      if (!filter.Insert(key + 1000000)) ++failures;
    }
    ++report.checks;
    if (failures == 0) {
      report.Fail(ctx + "no insert failure at 10x capacity overload");
      continue;
    }

    // False-positive rate at design load.
    filter.Clear();
    for (idx_t key = 0; static_cast<size_t>(key) < capacity; ++key) {
      filter.Insert(key);
    }
    size_t false_positives = 0;
    const size_t probes = 4000;
    for (size_t i = 0; i < probes; ++i) {
      const idx_t key = static_cast<idx_t>(2000000 + i);
      if (filter.Contains(key)) ++false_positives;
    }
    ++report.checks;
    const double rate =
        static_cast<double>(false_positives) / static_cast<double>(probes);
    if (rate > max_fp_rate) {
      std::ostringstream os;
      os << ctx << "false-positive rate " << rate << " exceeds bound "
         << max_fp_rate << " at design load " << capacity;
      report.Fail(os.str());
    }
  }
  return report;
}

DifferentialReport FuzzBloomVsOracle(uint64_t seed, size_t rounds) {
  DifferentialReport report;
  for (size_t round = 0; round < rounds; ++round) {
    const uint64_t rseed = DeriveSeed(seed, 0x56, round);
    RandomEngine rng(rseed);
    const size_t bits = 256u << rng.NextUint(6);
    BloomFilter filter(bits);
    const std::string ctx = Ctx("BloomFilter", seed, round);

    // Design load: ~10 bits/key. No false negative is tolerable, ever.
    const size_t n = std::max<size_t>(8, bits / 10);
    std::vector<idx_t> keys(n);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = static_cast<idx_t>(rng.NextUint(1u << 30));
      filter.Insert(keys[i]);
    }
    bool round_ok = true;
    for (const idx_t key : keys) {
      ++report.checks;
      if (!filter.Contains(key)) {
        report.Fail(ctx + "false negative for inserted key " +
                    std::to_string(key));
        round_ok = false;
        break;
      }
    }
    if (!round_ok) continue;

    // False-positive rate within 3x the analytic bound (+1% absolute slack).
    size_t false_positives = 0;
    const size_t probes = 2000;
    for (size_t i = 0; i < probes; ++i) {
      const idx_t key = static_cast<idx_t>((1u << 30) + i);
      if (filter.Contains(key)) ++false_positives;
    }
    const double rate =
        static_cast<double>(false_positives) / static_cast<double>(probes);
    const double bound =
        3.0 * BloomFilter::TheoreticalFpRate(filter.bit_count(),
                                            filter.num_hashes(), n) +
        0.01;
    ++report.checks;
    if (rate > bound) {
      std::ostringstream os;
      os << ctx << "false-positive rate " << rate << " exceeds " << bound
         << " (" << n << " keys in " << filter.bit_count() << " bits)";
      report.Fail(os.str());
      continue;
    }

    // Saturation: pushing 5 bits worth of keys per bit degrades toward
    // always-true Contains — but still never a false negative.
    for (size_t i = 0; i < 5 * bits; ++i) {
      filter.Insert(static_cast<idx_t>(rng.NextUint(1u << 30)));
    }
    for (size_t i = 0; i < 64; ++i) {
      ++report.checks;
      if (!filter.Contains(keys[i % keys.size()])) {
        report.Fail(ctx + "false negative after saturation");
        round_ok = false;
        break;
      }
    }
    if (!round_ok) continue;
    size_t still_false = 0;
    for (size_t i = 0; i < 256; ++i) {
      if (!filter.Contains(static_cast<idx_t>((1u << 30) + 500000 + i))) {
        ++still_false;
      }
    }
    ++report.checks;
    if (still_false > 16) {
      report.Fail(ctx + "saturated filter still answers false " +
                  std::to_string(still_false) + "/256 times");
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Search differential.
// ---------------------------------------------------------------------------

namespace {

struct FuzzInstance {
  Dataset points;
  std::vector<float> query;
  FixedDegreeGraph graph;
  Metric metric = Metric::kL2;
  idx_t entry = 0;
  size_t k = 1;
  SongSearchOptions options;
};

/// Randomized dataset + connected random graph + query + option set. All
/// randomness flows from `rng`; `structure` fixes the visited structure.
FuzzInstance MakeInstance(RandomEngine& rng, VisitedStructure structure) {
  FuzzInstance inst;
  const size_t n = 2 + rng.NextUint(300);
  const size_t dim = 1 + rng.NextUint(24);
  const size_t degree = 2 + rng.NextUint(10);
  inst.metric = static_cast<Metric>(rng.NextUint(3));

  inst.points = Dataset(n, dim);
  std::vector<float> row(dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      row[d] = static_cast<float>(rng.NextUniform(-1.0, 1.0));
    }
    row[0] += row[0] == 0.0f ? 0.5f : 0.0f;  // keep rows nonzero for cosine
    inst.points.SetRow(static_cast<idx_t>(i), row.data());
  }
  inst.query.resize(dim);
  for (size_t d = 0; d < dim; ++d) {
    inst.query[d] = static_cast<float>(rng.NextUniform(-1.0, 1.0));
  }
  if (inst.query[0] == 0.0f) inst.query[0] = 0.5f;

  // Ring edge guarantees connectivity; the rest is uniform random.
  std::vector<std::vector<idx_t>> adjacency(n);
  for (size_t v = 0; v < n; ++v) {
    adjacency[v].push_back(static_cast<idx_t>((v + 1) % n));
    const size_t extra = rng.NextUint(degree);
    for (size_t e = 0; e < extra; ++e) {
      const idx_t u = static_cast<idx_t>(rng.NextUint(n));
      if (u == v) continue;
      if (std::find(adjacency[v].begin(), adjacency[v].end(), u) ==
          adjacency[v].end()) {
        adjacency[v].push_back(u);
      }
    }
  }
  inst.graph = FixedDegreeGraph::FromAdjacency(adjacency, degree);

  inst.entry = static_cast<idx_t>(rng.NextUint(n));
  inst.k = 1 + rng.NextUint(std::min<size_t>(n, 32));
  inst.options.structure = structure;
  inst.options.queue_size = 1 + rng.NextUint(48);
  inst.options.selected_insertion = rng.NextUint(2) == 0;
  inst.options.visited_deletion = rng.NextUint(2) == 0;
  const size_t steps[4] = {1, 1, 2, 4};
  inst.options.multi_step_probe = steps[rng.NextUint(4)];
  if (structure == VisitedStructure::kHashTable) {
    // Alternate the paper's auto-sized (possibly saturating) capacity with
    // an ample one; the oracle models both exactly.
    inst.options.hash_capacity = rng.NextUint(2) == 0 ? 0 : n + 1;
  } else if (structure == VisitedStructure::kBloomFilter) {
    inst.options.bloom_bits =
        rng.NextUint(2) == 0 ? 0 : (1024u << rng.NextUint(4));
  }
  return inst;
}

std::string DescribeInstance(const FuzzInstance& inst) {
  std::ostringstream os;
  os << "[n=" << inst.points.num() << " dim=" << inst.points.dim()
     << " degree=" << inst.graph.degree() << " metric="
     << MetricName(inst.metric) << " entry=" << inst.entry << " k=" << inst.k
     << " queue=" << inst.options.queue_size
     << " sel=" << inst.options.selected_insertion
     << " del=" << inst.options.visited_deletion
     << " steps=" << inst.options.multi_step_probe
     << " cap=" << inst.options.hash_capacity << " structure="
     << VisitedStructureName(inst.options.structure) << "]";
  return os.str();
}

double RecallAgainst(const std::vector<Neighbor>& result,
                     const std::vector<Neighbor>& ground_truth) {
  if (ground_truth.empty()) return 1.0;
  std::unordered_set<idx_t> gt;
  for (const Neighbor& n : ground_truth) gt.insert(n.id);
  size_t hit = 0;
  for (const Neighbor& n : result) hit += gt.count(n.id);
  return static_cast<double>(hit) / static_cast<double>(gt.size());
}

}  // namespace

DifferentialReport FuzzSearchDifferential(VisitedStructure structure,
                                          uint64_t seed, size_t rounds) {
  DifferentialReport report;
  SongWorkspace workspace;  // reused across rounds: exercises stale-state bugs
  for (size_t round = 0; round < rounds; ++round) {
    const uint64_t rseed =
        DeriveSeed(seed, 0x60 + static_cast<uint64_t>(structure), round);
    RandomEngine rng(rseed);
    const FuzzInstance inst = MakeInstance(rng, structure);
    const std::string ctx = Ctx("SearchCore", seed, round);
    const size_t n = inst.points.num();
    const size_t dim = inst.points.dim();
    const DistanceFunc dist = GetDistanceFunc(inst.metric);

    std::vector<idx_t> visit_order;
    auto distance = [&](idx_t v) {
      visit_order.push_back(v);
      return dist(inst.query.data(), inst.points.Row(v), dim);
    };
    auto pure_distance = [&](idx_t v) {
      return dist(inst.query.data(), inst.points.Row(v), dim);
    };

    SearchStats stats;
    const std::vector<Neighbor> got =
        SongSearchCore(inst.graph, inst.entry, n, dim * sizeof(float),
                       distance, inst.k, inst.options, &workspace, &stats);

    const size_t ef = std::max(inst.options.queue_size, inst.k);
    const size_t oracle_capacity =
        structure == VisitedStructure::kHashTable
            ? internal::AutoHashCapacity(inst.options, ef, n)
            : 0;
    const ReferenceSearchResult want = ReferenceSongSearch(
        inst.graph, inst.entry, inst.k, inst.options, oracle_capacity,
        pure_distance);

    ++report.checks;
    if (visit_order != want.visit_order) {
      size_t i = 0;
      while (i < visit_order.size() && i < want.visit_order.size() &&
             visit_order[i] == want.visit_order[i]) {
        ++i;
      }
      std::ostringstream os;
      os << ctx << "visit order diverged at step " << i << " ("
         << visit_order.size() << " vs " << want.visit_order.size()
         << " visits) " << DescribeInstance(inst);
      report.Fail(os.str());
      continue;
    }
    ++report.checks;
    if (got.size() != want.results.size() ||
        !std::equal(got.begin(), got.end(), want.results.begin(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a == b;
                    })) {
      report.Fail(ctx + "result set mismatch " + DescribeInstance(inst));
      continue;
    }
    ++report.checks;
    if (stats.iterations != want.iterations ||
        stats.distance_computations != visit_order.size() ||
        stats.visited_insert_failures != want.visited_insert_failures) {
      std::ostringstream os;
      os << ctx << "stats mismatch (iterations " << stats.iterations << " vs "
         << want.iterations << ", dists " << stats.distance_computations
         << " vs " << visit_order.size() << ", insert failures "
         << stats.visited_insert_failures << " vs "
         << want.visited_insert_failures << ") " << DescribeInstance(inst);
      report.Fail(os.str());
    }
  }
  return report;
}

DifferentialReport FuzzProbabilisticSearchSanity(VisitedStructure structure,
                                                 uint64_t seed,
                                                 size_t rounds) {
  DifferentialReport report;
  SongWorkspace workspace;
  double recall_prob = 0.0;
  double recall_exact = 0.0;
  for (size_t round = 0; round < rounds; ++round) {
    const uint64_t rseed =
        DeriveSeed(seed, 0x70 + static_cast<uint64_t>(structure), round);
    RandomEngine rng(rseed);
    const FuzzInstance inst = MakeInstance(rng, structure);
    const std::string ctx = Ctx("ProbabilisticSearch", seed, round);
    const size_t n = inst.points.num();
    const size_t dim = inst.points.dim();
    const DistanceFunc dist = GetDistanceFunc(inst.metric);
    auto distance = [&](idx_t v) {
      return dist(inst.query.data(), inst.points.Row(v), dim);
    };

    const std::vector<Neighbor> got =
        SongSearchCore(inst.graph, inst.entry, n, dim * sizeof(float),
                       distance, inst.k, inst.options, &workspace, nullptr);

    bool round_ok = true;
    ++report.checks;
    if (got.size() > inst.k) {
      report.Fail(ctx + "more than k results " + DescribeInstance(inst));
      round_ok = false;
    }
    std::unordered_set<idx_t> ids;
    for (size_t i = 0; i < got.size() && round_ok; ++i) {
      ++report.checks;
      if (got[i].id >= n || !ids.insert(got[i].id).second) {
        report.Fail(ctx + "invalid or duplicate id " +
                    std::to_string(got[i].id) + " " + DescribeInstance(inst));
        round_ok = false;
        break;
      }
      if (i > 0 && !(got[i - 1] < got[i])) {
        report.Fail(ctx + "results not ascending " + DescribeInstance(inst));
        round_ok = false;
        break;
      }
      // Every reported distance must be genuine, not stale or corrupted.
      if (got[i].dist != distance(got[i].id)) {
        report.Fail(ctx + "fabricated distance for id " +
                    std::to_string(got[i].id) + " " + DescribeInstance(inst));
        round_ok = false;
        break;
      }
    }
    if (!round_ok) continue;

    // Exact-visited twin on the identical instance; aggregate recall of the
    // probabilistic structure must not beat it by more than noise (false
    // positives can only prune exploration).
    SongSearchOptions exact = inst.options;
    exact.structure = VisitedStructure::kHashTable;
    exact.hash_capacity = n + 1;
    const std::vector<Neighbor> exact_got =
        SongSearchCore(inst.graph, inst.entry, n, dim * sizeof(float),
                       distance, inst.k, exact, &workspace, nullptr);
    const std::vector<Neighbor> gt = BruteForceTopK(n, inst.k, distance);
    recall_prob += RecallAgainst(got, gt);
    recall_exact += RecallAgainst(exact_got, gt);
  }
  ++report.checks;
  if (rounds > 0 && recall_prob > recall_exact + 0.02 * rounds) {
    std::ostringstream os;
    os << Ctx("ProbabilisticSearch", seed, rounds)
       << "aggregate recall of " << VisitedStructureName(structure) << " ("
       << recall_prob / rounds << ") implausibly exceeds exact-visited ("
       << recall_exact / rounds << ")";
    report.Fail(os.str());
  }
  return report;
}

// ---------------------------------------------------------------------------
// Online-mutation differential.
// ---------------------------------------------------------------------------

namespace {

std::vector<float> RandomPoint(RandomEngine& rng, size_t dim) {
  std::vector<float> v(dim);
  for (size_t d = 0; d < dim; ++d) {
    v[d] = static_cast<float>(rng.NextUniform(-1.0, 1.0));
  }
  if (v[0] == 0.0f) v[0] = 0.5f;  // keep vectors nonzero for cosine
  return v;
}

/// Randomized per-query option set over the round's structure — the same
/// universe MakeInstance draws from, minus the instance geometry.
SongSearchOptions RandomMutationOptions(RandomEngine& rng,
                                        VisitedStructure structure, size_t n) {
  SongSearchOptions o;
  o.structure = structure;
  o.queue_size = 1 + rng.NextUint(48);
  o.selected_insertion = rng.NextUint(2) == 0;
  o.visited_deletion = rng.NextUint(2) == 0;
  const size_t steps[4] = {1, 1, 2, 4};
  o.multi_step_probe = steps[rng.NextUint(4)];
  if (structure == VisitedStructure::kHashTable) {
    o.hash_capacity = rng.NextUint(2) == 0 ? 0 : n + 1;
  } else if (structure == VisitedStructure::kBloomFilter) {
    o.bloom_bits = rng.NextUint(2) == 0 ? 0 : (1024u << rng.NextUint(4));
  }
  return o;
}

bool SameNeighbors(const std::vector<Neighbor>& a,
                   const std::vector<Neighbor>& b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(),
                    [](const Neighbor& x, const Neighbor& y) {
                      return x == y;
                    });
}

}  // namespace

DifferentialReport FuzzMutationDifferential(VisitedStructure structure,
                                            uint64_t seed, size_t rounds) {
  DifferentialReport report;
  SongWorkspace workspace;  // reused across rounds and snapshot versions
  const bool exact = structure == VisitedStructure::kHashTable ||
                     structure == VisitedStructure::kEpochArray;
  for (size_t round = 0; round < rounds; ++round) {
    const uint64_t rseed =
        DeriveSeed(seed, 0x80 + static_cast<uint64_t>(structure), round);
    RandomEngine rng(rseed);
    const std::string ctx = Ctx("Mutation", seed, round);
    bool round_ok = true;

    const size_t dim = 1 + rng.NextUint(16);
    const Metric metric = static_cast<Metric>(rng.NextUint(3));
    MutableIndexOptions mopts;
    mopts.degree = 3 + rng.NextUint(8);
    mopts.ef_construction = 8 + rng.NextUint(40);
    MutableIndex index(metric, dim, mopts);
    OracleDynamicIndex oracle(metric, dim);
    uint64_t expected_version = 0;

    // Half the rounds adopt a frozen connected graph (the upgrade path for
    // pre-built indexes); the rest grow from empty. The ring edge keeps the
    // adopted graph reachable from entry 0, matching what NswBuilder
    // guarantees and what online inserts maintain via RepairConnectivity.
    if (rng.NextUint(2) == 0) {
      const size_t n0 = 2 + rng.NextUint(50);
      Dataset points(n0, dim);
      for (size_t i = 0; i < n0; ++i) {
        const std::vector<float> p = RandomPoint(rng, dim);
        points.SetRow(static_cast<idx_t>(i), p.data());
        oracle.Insert(p.data());
      }
      std::vector<std::vector<idx_t>> adjacency(n0);
      for (size_t v = 0; v < n0; ++v) {
        adjacency[v].push_back(static_cast<idx_t>((v + 1) % n0));
        const size_t extra = rng.NextUint(mopts.degree);
        for (size_t e = 0; e < extra; ++e) {
          const idx_t u = static_cast<idx_t>(rng.NextUint(n0));
          if (u == v) continue;
          if (std::find(adjacency[v].begin(), adjacency[v].end(), u) ==
              adjacency[v].end()) {
            adjacency[v].push_back(u);
          }
        }
      }
      const Status adopted = index.AdoptFrozen(
          std::move(points),
          FixedDegreeGraph::FromAdjacency(adjacency, mopts.degree));
      ++report.checks;
      if (!adopted.ok()) {
        report.Fail(ctx + "AdoptFrozen failed: " + adopted.ToString());
        continue;
      }
      expected_version = 1;
    }

    auto check_counts = [&](const char* op) {
      ++report.checks;
      if (index.num_points() != oracle.num_points() ||
          index.live_points() != oracle.live_count() ||
          index.version() != expected_version) {
        std::ostringstream os;
        os << ctx << op << ": counts drifted (points " << index.num_points()
           << " vs " << oracle.num_points() << ", live "
           << index.live_points() << " vs " << oracle.live_count()
           << ", version " << index.version() << " vs " << expected_version
           << ")";
        report.Fail(os.str());
        return false;
      }
      return true;
    };

    // Ample-ef exact search from `query`: with every vertex reachable from
    // the entry (the RepairConnectivity invariant), an ef >= n epoch-array
    // search cannot terminate early, so its result must be *precisely* the
    // oracle's live set. This is the probe that catches the planted
    // drop-reverse-links mutation.
    auto check_all_live_reachable = [&](const float* query, const char* what) {
      const std::shared_ptr<const IndexSnapshot> snapshot = index.Acquire();
      SongSearchOptions ample = SongSearchOptions::CpuEngineered();
      ample.queue_size = snapshot->num_points() + 4;
      const std::vector<Neighbor> got = snapshot->Search(
          query, std::max<size_t>(1, oracle.live_count()), ample, &workspace);
      std::vector<idx_t> got_ids;
      got_ids.reserve(got.size());
      for (const Neighbor& n : got) got_ids.push_back(n.id);
      std::sort(got_ids.begin(), got_ids.end());
      ++report.checks;
      if (got_ids != oracle.LiveIds()) {
        std::ostringstream os;
        os << ctx << what << ": ample search returned " << got_ids.size()
           << " of " << oracle.live_count()
           << " live points (version " << snapshot->version()
           << ", n=" << snapshot->num_points() << ") — some live vertex is "
           << "unreachable or a dead one leaked through";
        report.Fail(os.str());
        return false;
      }
      return true;
    };

    // Mid-round pin for the end-of-round isolation replay.
    std::shared_ptr<const IndexSnapshot> pinned;
    std::vector<float> pinned_query;
    size_t pinned_k = 0;
    SongSearchOptions pinned_options;
    std::vector<Neighbor> pinned_result;

    const size_t ops = 20 + rng.NextUint(80);
    for (size_t op = 0; op < ops && round_ok; ++op) {
      const uint64_t kind = rng.NextUint(10);
      if (kind < 4) {
        // --- Insert. ---
        const std::vector<float> p = RandomPoint(rng, dim);
        const StatusOr<idx_t> inserted = index.Insert(p.data());
        ++report.checks;
        if (!inserted.ok()) {
          report.Fail(ctx + "Insert failed: " + inserted.status().ToString());
          round_ok = false;
          break;
        }
        const idx_t want_id = oracle.Insert(p.data());
        ++expected_version;
        ++report.checks;
        if (inserted.value() != want_id) {
          report.Fail(ctx + "Insert id " + std::to_string(inserted.value()) +
                      " vs oracle " + std::to_string(want_id));
          round_ok = false;
          break;
        }
        round_ok = check_counts("Insert") &&
                   check_all_live_reachable(p.data(), "post-insert");
      } else if (kind < 6) {
        // --- Delete (including double-delete probes). ---
        const std::vector<idx_t> live = oracle.LiveIds();
        if (live.empty()) {
          const Status s = index.Delete(0);
          ++report.checks;
          if (s.ok()) {
            report.Fail(ctx + "Delete on an empty/dead index succeeded");
            round_ok = false;
          }
          continue;
        }
        const idx_t victim = live[rng.NextUint(live.size())];
        const Status s = index.Delete(victim);
        oracle.Delete(victim);
        ++expected_version;
        ++report.checks;
        if (!s.ok()) {
          report.Fail(ctx + "Delete(" + std::to_string(victim) +
                      ") failed: " + s.ToString());
          round_ok = false;
          break;
        }
        round_ok = check_counts("Delete");
        if (round_ok && rng.NextUint(4) == 0) {
          const Status again = index.Delete(victim);
          ++report.checks;
          if (again.code() != StatusCode::kNotFound) {
            report.Fail(ctx + "double Delete(" + std::to_string(victim) +
                        ") returned " + again.ToString() +
                        " instead of NotFound");
            round_ok = false;
          }
        }
      } else if (kind < 9) {
        // --- Search differential. ---
        const std::vector<float> q = RandomPoint(rng, dim);
        const size_t k = 1 + rng.NextUint(12);
        const SongSearchOptions options =
            RandomMutationOptions(rng, structure, index.num_points());
        const std::shared_ptr<const IndexSnapshot> snapshot = index.Acquire();
        const std::vector<Neighbor> got =
            snapshot->Search(q.data(), k, options, &workspace);

        if (snapshot->live_points() == 0) {
          ++report.checks;
          if (!got.empty()) {
            report.Fail(ctx + "search on a fully-deleted index returned " +
                        std::to_string(got.size()) + " results");
            round_ok = false;
          }
          continue;
        }

        // The snapshot's tombstone view must track the oracle exactly.
        for (idx_t id = 0;
             round_ok && id < static_cast<idx_t>(snapshot->num_points());
             ++id) {
          if (snapshot->IsLive(id) != oracle.IsLive(id)) {
            ++report.checks;
            report.Fail(ctx + "IsLive(" + std::to_string(id) +
                        ") disagrees with the oracle");
            round_ok = false;
          }
        }
        if (!round_ok) break;

        // The searcher computes distances through its own BatchDistance, so
        // the mirror must too — bit-identical per row within a SIMD tier.
        const BatchDistance bd(metric, &snapshot->data());
        const float qn = bd.QueryNormSqr(q.data());
        const auto mirror = [&](idx_t v) { return bd.Compute(q.data(), qn, v); };

        ++report.checks;
        if (got.size() > k) {
          report.Fail(ctx + "search returned more than k results");
          round_ok = false;
          break;
        }
        for (size_t i = 0; i < got.size() && round_ok; ++i) {
          ++report.checks;
          if (got[i].id >= snapshot->num_points() ||
              !oracle.IsLive(got[i].id)) {
            report.Fail(ctx + "search returned dead or out-of-range id " +
                        std::to_string(got[i].id));
            round_ok = false;
            break;
          }
          if (i > 0 && !(got[i - 1] < got[i])) {
            report.Fail(ctx + "search results not strictly ascending");
            round_ok = false;
            break;
          }
          if (got[i].dist != mirror(got[i].id)) {
            report.Fail(ctx + "fabricated distance for id " +
                        std::to_string(got[i].id));
            round_ok = false;
            break;
          }
          // Payload integrity: the snapshot's row must be byte-equal to the
          // vector the oracle recorded at insert time.
          if (std::memcmp(snapshot->data().Row(got[i].id),
                          oracle.Vector(got[i].id),
                          dim * sizeof(float)) != 0) {
            report.Fail(ctx + "payload row for id " +
                        std::to_string(got[i].id) +
                        " differs from the inserted vector");
            round_ok = false;
            break;
          }
        }
        if (!round_ok) break;

        if (exact) {
          // Full mirror: reference search at the compensated k over the
          // snapshot graph, then the identical tombstone filter + truncate.
          const size_t k_eff = snapshot->CompensatedK(k);
          const size_t ef = std::max(options.queue_size, k_eff);
          const size_t cap =
              structure == VisitedStructure::kHashTable
                  ? internal::AutoHashCapacity(options, ef,
                                               snapshot->num_points())
                  : 0;
          const ReferenceSearchResult ref =
              ReferenceSongSearch(snapshot->graph(), snapshot->entry(), k_eff,
                                  options, cap, mirror);
          std::vector<Neighbor> want;
          want.reserve(std::min(k, ref.results.size()));
          for (const Neighbor& n : ref.results) {
            if (!snapshot->IsLive(n.id)) continue;
            want.push_back(n);
            if (want.size() == k) break;
          }
          ++report.checks;
          if (!SameNeighbors(got, want)) {
            std::ostringstream os;
            os << ctx << "search mismatch vs reference (" << got.size()
               << " vs " << want.size() << " results, n="
               << snapshot->num_points() << " live="
               << snapshot->live_points() << " k=" << k << " queue="
               << options.queue_size << " sel=" << options.selected_insertion
               << " del=" << options.visited_deletion << " steps="
               << options.multi_step_probe << " cap="
               << options.hash_capacity << " metric=" << MetricName(metric)
               << " structure=" << VisitedStructureName(structure) << ")";
            report.Fail(os.str());
            round_ok = false;
          }
        }
      } else {
        // --- Error-path probes (must not bump the version). ---
        switch (rng.NextUint(3)) {
          case 0: {
            const StatusOr<idx_t> r = index.Insert(nullptr);
            ++report.checks;
            if (r.ok()) {
              report.Fail(ctx + "Insert(nullptr) succeeded");
              round_ok = false;
            }
            break;
          }
          case 1: {
            std::vector<float> bad = RandomPoint(rng, dim);
            bad[rng.NextUint(dim)] = std::nanf("");
            const StatusOr<idx_t> r = index.Insert(bad.data());
            ++report.checks;
            if (r.ok()) {
              report.Fail(ctx + "Insert of a NaN vector succeeded");
              round_ok = false;
            }
            break;
          }
          case 2: {
            const idx_t bogus =
                static_cast<idx_t>(index.num_points() + 5 + rng.NextUint(10));
            const Status s = index.Delete(bogus);
            ++report.checks;
            if (s.code() != StatusCode::kOutOfRange) {
              report.Fail(ctx + "Delete(" + std::to_string(bogus) +
                          ") returned " + s.ToString() +
                          " instead of OutOfRange");
              round_ok = false;
            }
            break;
          }
        }
        if (round_ok) round_ok = check_counts("error probe");
      }

      // Maybe pin a snapshot now; it must replay bit-identically at round
      // end, after every later mutation.
      if (round_ok && pinned == nullptr && oracle.live_count() > 0 &&
          rng.NextUint(4) == 0) {
        pinned = index.Acquire();
        pinned_query = RandomPoint(rng, dim);
        pinned_k = 1 + rng.NextUint(8);
        pinned_options =
            RandomMutationOptions(rng, structure, pinned->num_points());
        pinned_result = pinned->Search(pinned_query.data(), pinned_k,
                                       pinned_options, &workspace);
      }
    }

    if (round_ok) {
      // Structural sanity of the final graph: in-range neighbor ids, no
      // self loops, no duplicate slots.
      const std::shared_ptr<const IndexSnapshot> snapshot = index.Acquire();
      const FixedDegreeGraph& graph = snapshot->graph();
      for (size_t v = 0; round_ok && v < graph.num_vertices(); ++v) {
        const std::vector<idx_t> row =
            graph.Neighbors(static_cast<idx_t>(v));
        std::set<idx_t> uniq(row.begin(), row.end());
        ++report.checks;
        if (uniq.size() != row.size() ||
            uniq.count(static_cast<idx_t>(v)) != 0 ||
            (!row.empty() && *uniq.rbegin() >= graph.num_vertices())) {
          report.Fail(ctx + "malformed adjacency row at vertex " +
                      std::to_string(v));
          round_ok = false;
        }
      }
    }

    if (round_ok && pinned != nullptr) {
      const std::vector<Neighbor> replay = pinned->Search(
          pinned_query.data(), pinned_k, pinned_options, &workspace);
      ++report.checks;
      if (!SameNeighbors(replay, pinned_result)) {
        report.Fail(ctx + "pinned snapshot (version " +
                    std::to_string(pinned->version()) +
                    ") replay differs after later mutations");
        round_ok = false;
      }
    }
    pinned.reset();

    // With every reader pin dropped, reclamation must drain the retired
    // list completely.
    index.ReclaimRetired();
    ++report.checks;
    if (round_ok && index.retired_versions() != 0) {
      report.Fail(ctx + std::to_string(index.retired_versions()) +
                  " retired versions survived reclamation with no reader");
    }
  }
  return report;
}

}  // namespace song::harness
